// Package ingrass is an incremental spectral graph sparsification library,
// a from-scratch Go implementation of inGRASS (Aghdaei & Feng, DAC 2024:
// "inGRASS: Incremental Graph Spectral Sparsification via Low-Resistance-
// Diameter Decomposition").
//
// A spectral sparsifier H of a weighted undirected graph G is a much
// sparser graph whose Laplacian quadratic form approximates G's, so linear
// solves, partitioning, and simulation on H stand in for G. When G keeps
// receiving new edges (new wires in a power grid, refined elements in a
// mesh, new links in a network), recomputing H from scratch is wasteful:
// inGRASS updates H in O(log N) time per inserted edge after a one-time
// near-linear setup.
//
// # Quick start
//
//	g := ingrass.NewGraph(4)
//	for _, e := range []ingrass.Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1}} {
//		if _, err := g.AddEdge(e.U, e.V, e.W); err != nil { ... }
//	}
//
//	inc, err := ingrass.NewIncremental(g, ingrass.Options{InitialDensity: 0.1})
//	if err != nil { ... }
//	report, err := inc.AddEdges([]ingrass.Edge{{U: 0, V: 2, W: 0.5}})
//	h := inc.Sparsifier() // the maintained sparse graph
//
// The library also exposes the from-scratch GRASS-style sparsifier
// (Sparsify), a relative condition number estimator (ConditionNumber), and
// deterministic generators for the benchmark families used in the paper's
// evaluation (Generate).
//
// For concurrent consumers, Service wraps the incremental sparsifier in a
// long-lived engine: reads (Solve, EffectiveResistance, ConditionNumber,
// SparsifierSnapshot) run against immutable copy-on-write snapshots with
// the preconditioner factorization cached per generation, while writes
// (AddEdges, DeleteEdges) flow through a coalescing asynchronous batcher.
// The same engine backs the HTTP front-end ("ingrass serve").
//
// # Durability
//
// With ServiceOptions.DataDir set, the service persists itself: every
// applied write batch is appended to a write-ahead log before its
// generation becomes visible, and Checkpoint captures the full state
// without stalling traffic. LoadService resumes a data directory at the
// exact generation the previous process reached — checkpoint plus WAL
// replay, no GRASS setup — with bit-identical sparsifier state. See the
// Example named "durability" for the full lifecycle and DESIGN.md for the
// durability invariants.
//
// # Architecture
//
// The public API wraps internal packages, each a self-contained substrate:
// graph storage and CSR kernels (internal/graph), CG/PCG solvers
// (internal/sparse), Krylov resistance embedding (internal/krylov),
// low-resistance-diameter decomposition (internal/lrd), the multilevel
// cluster-connectivity sketch (internal/sketch), spanning trees
// (internal/tree), the GRASS baseline (internal/grass), the inGRASS update
// engine (internal/core), condition-number estimation (internal/cond),
// dataset generation (internal/gen), and the concurrent serving engine
// (internal/service). See DESIGN.md for the full inventory and the
// per-experiment reproduction index.
package ingrass
