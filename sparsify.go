package ingrass

import (
	"context"
	"fmt"

	"ingrass/internal/cond"
	"ingrass/internal/core"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
)

// Options configures sparsification and incremental maintenance.
type Options struct {
	// InitialDensity is the off-tree edge budget of the initial sparsifier
	// as a fraction of |E_G| (the paper's D; tables use 0.10). Default 0.1.
	InitialDensity float64
	// TargetCond is the condition-number target C steering the update
	// phase's filtering level. 0 means: estimate kappa(G, H(0)) cheaply by
	// proxy — use 100, the paper's order of magnitude.
	TargetCond float64
	// KrylovOrder overrides the resistance-embedding subspace dimension
	// (0 = automatic, about log2 N).
	KrylovOrder int
	// Seed makes every randomized component deterministic.
	Seed uint64
	// Workers bounds goroutine parallelism (0 = GOMAXPROCS).
	Workers int
	// SimilarityFilter enables GRASS's redundant-cycle filtering when
	// building the initial sparsifier. Default true via NewIncremental.
	SimilarityFilter bool
}

func (o Options) normalized() Options {
	if o.InitialDensity == 0 {
		o.InitialDensity = 0.1
	}
	if o.TargetCond == 0 {
		o.TargetCond = 100
	}
	return o
}

func (o Options) lrdConfig() lrd.Config {
	return lrd.Config{
		Krylov: krylov.Config{Order: o.KrylovOrder, Seed: o.Seed, Workers: o.Workers},
	}
}

// Sparsify builds a spectral sparsifier of g from scratch with the
// GRASS-style algorithm (low-stretch spanning tree plus the highest-
// distortion off-tree edges). density is the off-tree budget as a fraction
// of g's edges.
func Sparsify(g *Graph, density float64, seed uint64) (*Graph, error) {
	res, err := grass.Sparsify(g.g, grass.Config{
		TargetDensity:    density,
		Tree:             grass.TreeLowStretch,
		SimilarityFilter: true,
		Seed:             seed,
	})
	if err != nil {
		return nil, err
	}
	return wrap(res.H), nil
}

// UpdateAction mirrors the three outcomes of the update-phase filter.
type UpdateAction int

const (
	// ActionIncluded means the edge was added to the sparsifier.
	ActionIncluded UpdateAction = iota
	// ActionMerged means the weight was folded into an existing edge.
	ActionMerged
	// ActionRedistributed means the weight was spread inside a cluster.
	ActionRedistributed
)

// String names the action.
func (a UpdateAction) String() string {
	switch a {
	case ActionIncluded:
		return "included"
	case ActionMerged:
		return "merged"
	case ActionRedistributed:
		return "redistributed"
	default:
		return fmt.Sprintf("UpdateAction(%d)", int(a))
	}
}

// UpdateReport summarizes one AddEdges batch.
type UpdateReport struct {
	Processed     int
	Included      int
	Merged        int
	Redistributed int
	// Actions lists the per-edge outcome in processing (descending
	// distortion) order.
	Actions []UpdateAction
}

// Incremental is an incrementally-maintained spectral sparsifier: the
// public handle over inGRASS's setup + update phases.
type Incremental struct {
	inner *core.Sparsifier
	opts  Options
}

// NewIncremental builds the initial sparsifier H(0) of g with the GRASS
// baseline, then runs inGRASS's setup phase (LRD decomposition + multilevel
// sketch) over it. g is captured by reference: AddEdges appends new edges
// to it.
func NewIncremental(g *Graph, opts Options) (*Incremental, error) {
	opts = opts.normalized()
	init, err := grass.Sparsify(g.g, grass.Config{
		TargetDensity:    opts.InitialDensity,
		Tree:             grass.TreeLowStretch,
		SimilarityFilter: true,
		Seed:             opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("ingrass: initial sparsifier: %w", err)
	}
	return NewIncrementalWith(g, wrap(init.H), opts)
}

// NewIncrementalWith runs the setup phase over a caller-provided initial
// sparsifier h of g (use this to bring your own H(0)).
func NewIncrementalWith(g, h *Graph, opts Options) (*Incremental, error) {
	opts = opts.normalized()
	inner, err := core.NewSparsifier(g.g, h.g, core.Config{
		TargetCond: opts.TargetCond,
		LRD:        opts.lrdConfig(),
	})
	if err != nil {
		return nil, err
	}
	return &Incremental{inner: inner, opts: opts}, nil
}

// AddEdges processes one batch of newly introduced edges: all are appended
// to the original graph, and the sparsifier is updated per the inGRASS
// filtering rules in O(log N) per edge.
func (inc *Incremental) AddEdges(edges []Edge) (UpdateReport, error) {
	batch := make([]graph.Edge, len(edges))
	for i, e := range edges {
		batch[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	decs, err := inc.inner.UpdateBatch(batch)
	if err != nil {
		return UpdateReport{}, err
	}
	rep := UpdateReport{Processed: len(decs), Actions: make([]UpdateAction, len(decs))}
	for i, d := range decs {
		switch d.Action {
		case core.Included:
			rep.Included++
			rep.Actions[i] = ActionIncluded
		case core.Merged:
			rep.Merged++
			rep.Actions[i] = ActionMerged
		case core.Redistributed:
			rep.Redistributed++
			rep.Actions[i] = ActionRedistributed
		}
	}
	return rep, nil
}

// DeleteReport summarizes one DeleteEdges batch.
type DeleteReport struct {
	Deleted int
	// FromSparsifier counts deletions that hit sparsifier edges;
	// Promoted counts replacement edges pulled into H to keep it spanning.
	FromSparsifier int
	Promoted       int
}

// DeleteEdges removes edges (identified by endpoints; the W field is
// ignored) from the graph and the sparsifier. This extends the paper, which
// handles insertions only: deletions are "soft" (the weight drops to a
// spectrally negligible epsilon), and a deletion that would disconnect the
// sparsifier promotes the most critical crossing edge as a replacement.
// Call Compact periodically on deletion-heavy streams.
func (inc *Incremental) DeleteEdges(edges []Edge) (DeleteReport, error) {
	batch := make([]graph.Edge, len(edges))
	for i, e := range edges {
		batch[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	results, err := inc.inner.DeleteEdges(batch)
	if err != nil {
		return DeleteReport{}, err
	}
	rep := DeleteReport{Deleted: len(results)}
	for _, r := range results {
		if r.InSparsifier {
			rep.FromSparsifier++
		}
		if r.Replacement >= 0 {
			rep.Promoted++
		}
	}
	return rep, nil
}

// Compact physically removes soft-deleted edges from both graphs and
// re-runs the setup phase. Edge indices change; prior snapshots remain
// valid copies.
func (inc *Incremental) Compact() error { return inc.inner.CompactDeleted() }

// Sparsifier returns the live sparsifier H. The returned handle shares
// storage with the Incremental; clone it for a snapshot.
func (inc *Incremental) Sparsifier() *Graph { return wrap(inc.inner.H) }

// Original returns the live original graph G (including all added edges).
func (inc *Incremental) Original() *Graph { return wrap(inc.inner.G) }

// Density returns the current off-tree density of H relative to G.
func (inc *Incremental) Density() float64 { return inc.inner.Density() }

// FilterLevel returns the LRD level used by the similarity filter.
func (inc *Incremental) FilterLevel() int { return inc.inner.FilterLevel() }

// Resparsify rebuilds the setup-phase structures from the current H,
// restoring embedding fidelity after long update streams.
func (inc *Incremental) Resparsify() error { return inc.inner.Resparsify() }

// ConditionNumber estimates the relative condition number kappa(L_G, L_H),
// the spectral-similarity measure used throughout the paper (smaller is
// better; 1 means spectrally identical). Both graphs must be connected and
// share the node set.
//
// It follows the GRASS-line convention: kappa is the largest generalized
// eigenvalue of the pencil (L_G, L_H), with the smallest clamped to 1 (for
// a subgraph sparsifier it is exactly 1). Use ConditionNumberBounds for
// the two-sided pencil.
func ConditionNumber(g, h *Graph, seed uint64) (float64, error) {
	res, err := cond.Estimate(context.Background(), g.g, h.g, cond.Options{Seed: seed, LambdaMaxOnly: true})
	if err != nil {
		return 0, err
	}
	return res.Kappa, nil
}

// ConditionNumberBounds estimates both extreme generalized eigenvalues of
// the pencil (L_G, L_H) and returns (lambdaMax, lambdaMin,
// kappa = lambdaMax/lambdaMin). A weight-adjusted sparsifier can have
// lambdaMin < 1, which this two-sided estimate exposes.
func ConditionNumberBounds(g, h *Graph, seed uint64) (lambdaMax, lambdaMin, kappa float64, err error) {
	res, err := cond.Estimate(context.Background(), g.g, h.g, cond.Options{Seed: seed})
	if err != nil {
		return 0, 0, 0, err
	}
	return res.LambdaMax, res.LambdaMin, res.Kappa, nil
}
