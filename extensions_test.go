package ingrass

import (
	"context"
	"math"
	"testing"
)

func TestDeleteEdgesPublic(t *testing.T) {
	g := paperFig1Graph(t)
	inc, err := NewIncremental(g, Options{InitialDensity: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Delete an edge that exists in G.
	e, err := g.Edge(0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := inc.DeleteEdges([]Edge{{U: e.U, V: e.V}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deleted != 1 {
		t.Fatalf("report %+v", rep)
	}
	// Deleting a non-edge errors.
	if _, err := inc.DeleteEdges([]Edge{{U: 0, V: 10}}); err == nil {
		// (0,10) is not an edge in a 4x4 grid
		t.Fatal("expected error for non-edge")
	}
	// Compact and keep going.
	if err := inc.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.AddEdges([]Edge{{U: 0, V: 15, W: 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestDeletionThenInsertionRoundTrip(t *testing.T) {
	g, err := GeneratePowerGrid(12, 12, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(g, Options{InitialDensity: 0.15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Delete a handful of sparsifier edges; H must remain usable for
	// solves and condition estimation after compaction.
	h := inc.Sparsifier()
	var victims []Edge
	for i := 0; i < 5; i++ {
		e, err := h.Edge(i * 7)
		if err != nil {
			t.Fatal(err)
		}
		victims = append(victims, Edge{U: e.U, V: e.V})
	}
	if _, err := inc.DeleteEdges(victims); err != nil {
		t.Fatal(err)
	}
	if err := inc.Compact(); err != nil {
		t.Fatal(err)
	}
	if !inc.Sparsifier().IsConnected() {
		t.Fatal("sparsifier must stay connected after deletions+compaction")
	}
	k, err := ConditionNumber(inc.Original(), inc.Sparsifier(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 0 || math.IsInf(k, 0) || math.IsNaN(k) {
		t.Fatalf("kappa %v", k)
	}
}

func TestSolveLaplacianPublic(t *testing.T) {
	g, err := GeneratePowerGrid(15, 15, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Sparsify(g, 0.15, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	b := make([]float64, n)
	b[0] = 1
	b[n-1] = -1
	x, stats, err := SolveLaplacian(context.Background(), g, h, b, SolveOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged || stats.Iterations == 0 || stats.PrecondUses == 0 {
		t.Fatalf("stats %+v", stats)
	}
	// The potential drop across the injection pair must be the effective
	// resistance, which on a connected positive-weight graph is positive
	// and finite.
	drop := x[0] - x[n-1]
	if drop <= 0 || math.IsInf(drop, 0) {
		t.Fatalf("voltage drop %v", drop)
	}
	// Residual check through the public quadratic form identity:
	// x'(L x) == x' b for the solved system (both mean-zero).
	q, err := g.QuadraticForm(x)
	if err != nil {
		t.Fatal(err)
	}
	var xb float64
	for i := range x {
		xb += x[i] * b[i]
	}
	if math.Abs(q-xb) > 1e-5*math.Abs(xb) {
		t.Fatalf("energy identity violated: x'Lx=%v x'b=%v", q, xb)
	}
}

func TestSolveLaplacianErrors(t *testing.T) {
	g := paperFig1Graph(t)
	h, err := Sparsify(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveLaplacian(context.Background(), g, h, make([]float64, 3), SolveOptions{}); err == nil {
		t.Fatal("expected rhs length error")
	}
	other := NewGraph(5)
	if _, _, err := SolveLaplacian(context.Background(), g, other, make([]float64, 16), SolveOptions{}); err == nil {
		t.Fatal("expected node mismatch error")
	}
}

func TestConditionNumberBoundsPublic(t *testing.T) {
	g := paperFig1Graph(t)
	lmax, lmin, kappa, err := ConditionNumberBounds(g, g.Clone(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lmax-1) > 0.01 || math.Abs(lmin-1) > 0.01 || math.Abs(kappa-1) > 0.02 {
		t.Fatalf("identity pencil bounds: %v %v %v", lmax, lmin, kappa)
	}
}
