package ingrass

// Benchmark harness: one benchmark per table and figure of the paper, plus
// the ablations called out in DESIGN.md and microbenchmarks for the O(log N)
// per-edge update claim. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks run at reduced scale (BenchScale) so the suite completes in
// minutes; cmd/experiments regenerates the full tables with condition
// numbers at any scale.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ingrass/internal/core"
	"ingrass/internal/gen"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/partition"
	"ingrass/internal/precond"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/tree"
	"ingrass/internal/vecmath"
)

// BenchScale shrinks the paper's graph sizes to benchmark-friendly ones.
const BenchScale = 0.1

var benchCases = []string{"g2_circuit", "fe_4elt2", "fe_sphere", "delaunay_n14", "social_ba"}

// cachedGraph memoizes generated benchmark graphs across benchmarks.
var cachedGraphs sync.Map // name -> *graph.Graph

func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	if g, ok := cachedGraphs.Load(name); ok {
		return g.(*graph.Graph)
	}
	tc, err := gen.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := tc.Build(BenchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	cachedGraphs.Store(name, g)
	return g
}

func benchSparsifier(b *testing.B, g *graph.Graph) *grass.Result {
	b.Helper()
	res, err := grass.Sparsify(g, grass.Config{
		TargetDensity:    0.10,
		Tree:             grass.TreeLowStretch,
		SimilarityFilter: true,
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func benchStream(b *testing.B, g *graph.Graph, count, batches int) [][]graph.Edge {
	b.Helper()
	s, err := gen.Stream(g, gen.StreamConfig{
		Kind:    gen.StreamLocal,
		Count:   count,
		Batches: batches,
		Seed:    7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// --- Table I -------------------------------------------------------------

// BenchmarkTable1Grass measures the from-scratch GRASS sparsification that
// Table I's left timing column reports.
func BenchmarkTable1Grass(b *testing.B) {
	for _, name := range benchCases {
		g := benchGraph(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportMetric(float64(g.NumEdges()), "edges")
			for i := 0; i < b.N; i++ {
				benchSparsifier(b, g)
			}
		})
	}
}

// BenchmarkTable1Setup measures inGRASS's one-time setup phase (Krylov
// embedding + LRD decomposition + multilevel sketch), Table I's right
// column.
func BenchmarkTable1Setup(b *testing.B) {
	for _, name := range benchCases {
		g := benchGraph(b, name)
		h := benchSparsifier(b, g).H
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gi := g.Clone()
				hi := h.Clone()
				b.StartTimer()
				if _, err := core.NewSparsifier(gi, hi, core.Config{
					TargetCond: 100,
					LRD:        lrd.Config{Krylov: krylov.Config{Seed: 1}},
				}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
			}
		})
	}
}

// --- Table II ------------------------------------------------------------

// BenchmarkTable2InGrassUpdates measures the 10-batch incremental update
// stream — the paper's inGRASS-T column.
func BenchmarkTable2InGrassUpdates(b *testing.B) {
	for _, name := range benchCases {
		g := benchGraph(b, name)
		init := benchSparsifier(b, g)
		count := int(0.24 * float64(g.NumEdges()))
		stream := benchStream(b, g, count, 10)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gi := g.Clone()
				hi := init.H.Clone()
				sp, err := core.NewSparsifier(gi, hi, core.Config{
					TargetCond: 100,
					LRD:        lrd.Config{Krylov: krylov.Config{Seed: 1}},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, batch := range stream {
					if _, err := sp.UpdateBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(count), "stream-edges")
		})
	}
}

// BenchmarkTable2GrassRerun measures re-running GRASS from scratch after
// every batch — the paper's GRASS-T column (the baseline inGRASS replaces).
func BenchmarkTable2GrassRerun(b *testing.B) {
	for _, name := range benchCases {
		g := benchGraph(b, name)
		count := int(0.24 * float64(g.NumEdges()))
		stream := benchStream(b, g, count, 10)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gi := g.Clone()
				b.StartTimer()
				for _, batch := range stream {
					for _, e := range batch {
						gi.AddEdge(e.U, e.V, e.W)
					}
					benchSparsifier(b, gi)
				}
			}
		})
	}
}

// --- Table III -----------------------------------------------------------

// BenchmarkTable3InitialDensity sweeps the initial sparsifier density on
// the G2_circuit analog, measuring the full update stream at each setting.
func BenchmarkTable3InitialDensity(b *testing.B) {
	g := benchGraph(b, "g2_circuit")
	count := int(0.3 * float64(g.NumEdges()))
	stream := benchStream(b, g, count, 10)
	for _, density := range []float64{0.127, 0.118, 0.09, 0.076, 0.066} {
		b.Run(fmt.Sprintf("D=%.3f", density), func(b *testing.B) {
			init, err := grass.Sparsify(g, grass.Config{
				TargetDensity: density, Tree: grass.TreeLowStretch,
				SimilarityFilter: true, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gi := g.Clone()
				hi := init.H.Clone()
				sp, err := core.NewSparsifier(gi, hi, core.Config{
					TargetCond: 100,
					LRD:        lrd.Config{Krylov: krylov.Config{Seed: 1}},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, batch := range stream {
					if _, err := sp.UpdateBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Fig. 4 --------------------------------------------------------------

// BenchmarkFig4Scalability sweeps Delaunay sizes, timing the update stream
// (the per-size GRASS rerun cost is BenchmarkTable2GrassRerun; together
// they reproduce Fig. 4's two series).
func BenchmarkFig4Scalability(b *testing.B) {
	for _, n := range []int{4000, 8000, 16000, 32000} {
		g, err := gen.Delaunay(n, 1)
		if err != nil {
			b.Fatal(err)
		}
		init, err := grass.Sparsify(g, grass.Config{
			TargetDensity: 0.10, Tree: grass.TreeLowStretch,
			SimilarityFilter: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		count := int(0.24 * float64(g.NumEdges()))
		stream, err := gen.Stream(g, gen.StreamConfig{Kind: gen.StreamLocal, Count: count, Batches: 10, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gi := g.Clone()
				hi := init.H.Clone()
				sp, err := core.NewSparsifier(gi, hi, core.Config{
					TargetCond: 100,
					LRD:        lrd.Config{Krylov: krylov.Config{Seed: 1}},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, batch := range stream {
					if _, err := sp.UpdateBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(count)/float64(b.Elapsed().Nanoseconds())*1e9*float64(b.N), "edges/s")
		})
	}
}

// --- Ablations (DESIGN.md section 5) --------------------------------------

// BenchmarkAblationTree compares the two spanning-tree backbones of the
// GRASS baseline.
func BenchmarkAblationTree(b *testing.B) {
	g := benchGraph(b, "delaunay_n14")
	for _, kind := range []struct {
		name string
		k    grass.TreeKind
	}{{"lowstretch", grass.TreeLowStretch}, {"maxweight", grass.TreeMaxWeight}} {
		b.Run(kind.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := grass.Sparsify(g, grass.Config{
					TargetDensity: 0.10, Tree: kind.k, SimilarityFilter: true, Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationKrylovOrder sweeps the resistance-embedding subspace
// dimension m (setup cost grows with m; estimation quality saturates).
func BenchmarkAblationKrylovOrder(b *testing.B) {
	g := benchGraph(b, "fe_4elt2")
	for _, m := range []int{8, 16, 24, 32} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := krylov.NewEmbedding(g, krylov.Config{Order: m, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWeightTransfer compares update throughput with the
// paper's weight transfer on versus pure discard.
func BenchmarkAblationWeightTransfer(b *testing.B) {
	g := benchGraph(b, "g2_circuit")
	init := benchSparsifier(b, g)
	stream := benchStream(b, g, int(0.2*float64(g.NumEdges())), 10)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"transfer", false}, {"discard", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gi := g.Clone()
				hi := init.H.Clone()
				sp, err := core.NewSparsifier(gi, hi, core.Config{
					TargetCond:            100,
					DisableWeightTransfer: mode.disable,
					LRD:                   lrd.Config{Krylov: krylov.Config{Seed: 1}},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, batch := range stream {
					if _, err := sp.UpdateBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Microbenchmarks -------------------------------------------------------

// BenchmarkUpdatePerEdge isolates the per-edge update cost across graph
// sizes — the paper's O(log N) claim. ns/op is per single-edge batch.
func BenchmarkUpdatePerEdge(b *testing.B) {
	for _, n := range []int{2000, 8000, 32000} {
		g, err := gen.Delaunay(n, 1)
		if err != nil {
			b.Fatal(err)
		}
		init, err := grass.Sparsify(g, grass.Config{
			TargetDensity: 0.10, Tree: grass.TreeLowStretch, SimilarityFilter: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		gi := g.Clone()
		hi := init.H.Clone()
		sp, err := core.NewSparsifier(gi, hi, core.Config{
			TargetCond: 100,
			LRD:        lrd.Config{Krylov: krylov.Config{Seed: 1}},
		})
		if err != nil {
			b.Fatal(err)
		}
		stream, err := gen.Stream(g, gen.StreamConfig{Kind: gen.StreamLocal, Count: 4096, Batches: 1, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		flat := stream[0]
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := flat[i%len(flat)]
				// Re-add the same pool cyclically; parallel edges are legal.
				if _, err := sp.UpdateBatch([]graph.Edge{e}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKrylovEmbedding measures setup phase 1 alone.
func BenchmarkKrylovEmbedding(b *testing.B) {
	g := benchGraph(b, "delaunay_n14")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := krylov.NewEmbedding(g, krylov.Config{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLRDBuild measures setup phase 2 alone.
func BenchmarkLRDBuild(b *testing.B) {
	g := benchGraph(b, "delaunay_n14")
	h := benchSparsifier(b, g).H
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lrd.Build(h, lrd.Config{Krylov: krylov.Config{Seed: 1}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLapSolve measures one Jacobi-PCG Laplacian solve, the inner
// kernel of exact resistance and condition-number estimation.
func BenchmarkLapSolve(b *testing.B) {
	g := benchGraph(b, "fe_4elt2")
	s := sparse.NewLaplacianSolver(g, solver.Options{Tol: 1e-6})
	rhs := make([]float64, g.NumNodes())
	vecmath.NewRNG(1).FillNormal(rhs)
	vecmath.CenterMean(rhs)
	dst := make([]float64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(context.Background(), dst, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreePathOracle measures O(1) tree resistance queries.
func BenchmarkTreePathOracle(b *testing.B) {
	g := benchGraph(b, "delaunay_n14")
	st := tree.LowStretch(g, 1)
	oracle := tree.NewPathOracle(st)
	n := g.NumNodes()
	r := vecmath.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = oracle.Resistance(r.Intn(n), r.Intn(n))
	}
}

// BenchmarkDelaunayGeneration measures the Bowyer-Watson triangulator.
func BenchmarkDelaunayGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.Delaunay(10000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFilterLevel sweeps the filtering level cap: shallow
// levels (fine clusters) include more edges per batch; deep levels filter
// aggressively. Measures the full update stream per setting.
func BenchmarkAblationFilterLevel(b *testing.B) {
	g := benchGraph(b, "fe_4elt2")
	init := benchSparsifier(b, g)
	stream := benchStream(b, g, int(0.2*float64(g.NumEdges())), 10)
	for _, cap := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("maxLevel=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gi := g.Clone()
				hi := init.H.Clone()
				sp, err := core.NewSparsifier(gi, hi, core.Config{
					TargetCond:     1e9, // let MaxFilterLevel dominate
					MaxFilterLevel: cap,
					LRD:            lrd.Config{Krylov: krylov.Config{Seed: 1}},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, batch := range stream {
					if _, err := sp.UpdateBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkPartitionSparsified compares spectral bisection on the full
// graph versus through the sparsifier (the examples/partition workflow).
func BenchmarkPartitionSparsified(b *testing.B) {
	g, err := gen.RandomGeometric(3000, 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	init := benchSparsifier(b, g)
	opts := partition.Options{Seed: 1, MaxIters: 25}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := partition.Bisect(context.Background(), g, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparsified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := partition.BisectWithSparsifier(context.Background(), g, init.H, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSolvePreconditioned compares Jacobi-PCG against the
// sparsifier-preconditioned flexible CG on a heterogeneous power grid.
// The sparsifier cuts OUTER iterations (see precond tests) but each outer
// step pays an inner truncated solve; at benchmark scale Jacobi wins on
// wall clock, and the sparsifier pays off as G grows denser relative to H
// (amortized further by reusing H across many right-hand sides).
func BenchmarkSolvePreconditioned(b *testing.B) {
	g := benchGraph(b, "g2_circuit")
	init := benchSparsifier(b, g)
	n := g.NumNodes()
	rhs := make([]float64, n)
	vecmath.NewRNG(2).FillNormal(rhs)
	vecmath.CenterMean(rhs)
	b.Run("jacobi", func(b *testing.B) {
		lop := sparse.NewLapOperator(g)
		proj := &sparse.ProjectedOperator{Inner: lop}
		pc := lop.Jacobi()
		for i := 0; i < b.N; i++ {
			x := make([]float64, n)
			if _, err := sparse.CG(context.Background(), proj, x, rhs, pc, nil, solver.Options{Tol: 1e-8, MaxIter: 10000}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparsifier", func(b *testing.B) {
		p, err := precond.Factorize(init.H, solver.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			x := make([]float64, n)
			if _, err := p.SolveGraph(context.Background(), g, x, rhs, solver.Options{Tol: 1e-8, MaxIter: 10000}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
