package ingrass

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"ingrass/internal/core"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/obs"
	"ingrass/internal/repl"
	"ingrass/internal/service"
	"ingrass/internal/wal"
)

// FsyncPolicy selects when the write-ahead log flushes appended records to
// stable storage (ServiceOptions.Fsync).
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every logged batch: a crash loses no
	// acknowledged write. This is the default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs at most once per FsyncEvery: a crash loses at
	// most that window of acknowledged writes.
	FsyncInterval
	// FsyncNever leaves flushing to the operating system.
	FsyncNever
)

// String renders the policy in the CLI's --fsync vocabulary
// (always, interval, never).
func (p FsyncPolicy) String() string { return wal.SyncPolicy(p).String() }

// ParseFsyncPolicy parses "always", "interval", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	p, err := wal.ParseSyncPolicy(s)
	return FsyncPolicy(p), err
}

// ServiceOptions configures a Service.
type ServiceOptions struct {
	// Options configures the underlying incremental sparsifier (initial
	// density, target condition number, seed, workers).
	Options
	// MaxBatch flushes the write batch once it holds this many edges
	// (default 128).
	MaxBatch int
	// FlushInterval flushes a non-empty batch after this much time even if
	// MaxBatch was not reached (default 2ms).
	FlushInterval time.Duration
	// QueueCapacity bounds enqueued-but-unflushed write requests; further
	// writers block (default 1024).
	QueueCapacity int
	// RetainSnapshots is how many recent generations stay addressable
	// (default 4).
	RetainSnapshots int
	// Solve is the engine-level default solve option set (tolerances,
	// iteration budgets, inner-solve knobs). Per-request SolveOptions
	// override it field-wise; Workers defaults to Options.Workers and,
	// when that is unset too, to GOMAXPROCS: per-snapshot factorizations
	// freeze the (clamped) count and dispatch into a persistent kernel
	// worker pool, so parallel solves are the allocation-free default
	// rather than an opt-in. Set Solve.Workers to 1 to force serial
	// solves.
	Solve SolveOptions

	// Batch configures the batched query engine: coalescing window, block
	// width, admission queue, executor workers, and whether single
	// Solve/EffectiveResistance calls ride the coalescing scheduler
	// (CoalesceSingles). Explicit SolveBatch/EffectiveResistanceBatch calls
	// use the blocked execution path regardless.
	Batch BatchOptions

	// DataDir, when non-empty, makes the service durable: every applied
	// write batch is appended to a write-ahead log in this directory before
	// its generation becomes visible, and Checkpoint persists the full
	// state there. NewService requires the directory to hold no prior
	// state (use LoadService to resume one); it writes an initial
	// generation-0 checkpoint so the directory is recoverable from the
	// first write on.
	DataDir string
	// Fsync is the WAL flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the flush interval for FsyncInterval (default 100ms).
	FsyncEvery time.Duration
	// SegmentBytes rotates WAL segments at this size (default 64 MiB).
	SegmentBytes int64

	// Maintenance configures the closed-loop maintenance controller: when
	// Enabled, the service watches its own health signals (solve iteration
	// trend, periodic condition-number estimates, edge churn) and re-runs the
	// inGRASS setup phase in the background — rebuilding the LRD embedding
	// and sketch on a copy-on-write snapshot without stalling writes — when a
	// threshold trips. See MaintenanceOptions.
	Maintenance MaintenanceOptions
}

// MaintenanceOptions configures closed-loop sparsifier maintenance. The
// incremental update path filters each new edge against the embedding
// computed at setup time; under sustained churn that embedding goes stale and
// solve iteration counts creep upward. The maintenance controller closes the
// loop: it evaluates health signals on a fixed cadence and, when one trips,
// rebuilds the setup basis from the current sparsifier in the background and
// swaps it in as a new generation (logged to the WAL before publication,
// exactly like a write batch).
//
// Every threshold is opt-in: a zero IterTarget, CondThreshold, or
// ChurnFactor disables that trigger. With Enabled false the controller never
// starts, but ForceResparsify still works.
type MaintenanceOptions struct {
	// Enabled starts the background controller goroutine.
	Enabled bool
	// Interval is the health-evaluation cadence (default 2s).
	Interval time.Duration
	// IterTarget is the mean solve iteration count the loop steers toward:
	// evaluations whose recent mean exceeds it trigger a rebuild, and
	// DensityTune adjusts sparsifier density against it. 0 disables the
	// iteration trigger.
	IterTarget float64
	// MinSolves is the fewest solves an evaluation window needs before its
	// iteration mean is trusted (default 8).
	MinSolves int
	// CondThreshold triggers a rebuild when the periodic condition-number
	// estimate kappa(L_G, L_H) exceeds it. 0 disables condition checks.
	CondThreshold float64
	// CondEvery runs the condition estimate every Nth evaluation (default 4);
	// it costs a few preconditioned solves.
	CondEvery int
	// CondIters bounds the power iterations per estimate (default 12; a warm
	// start from the previous estimate keeps a small budget accurate).
	CondIters int
	// CondSeed seeds the first (cold) estimate.
	CondSeed uint64
	// ChurnFactor triggers a rebuild once the edges applied since the current
	// basis reach ChurnFactor × (basis sparsifier edges). 0 disables the
	// churn trigger.
	ChurnFactor float64
	// CooldownTicks suppresses new triggers for this many evaluations after a
	// swap, letting the signals re-baseline (default 5).
	CooldownTicks int
	// DensityTune retunes the sparsifier's target condition number at each
	// rebuild so density tracks IterTarget: iterating hot makes the next
	// basis denser, running comfortably under target makes it sparser.
	DensityTune bool
	// TargetCondMin and TargetCondMax clamp the tuned target condition number
	// (defaults 10 and 1000).
	TargetCondMin, TargetCondMax float64
	// RetainAfterSwap trims retained snapshot generations to the newest N
	// right after a swap publishes, releasing factorizations built on the
	// superseded basis as soon as readers drain. Defaults to 1 when Enabled;
	// set it to RetainSnapshots to keep the full retention window across
	// swaps.
	RetainAfterSwap int
}

func (m MaintenanceOptions) internal() service.MaintenanceOptions {
	o := service.MaintenanceOptions{
		Enabled:         m.Enabled,
		Interval:        m.Interval,
		IterTarget:      m.IterTarget,
		MinSolves:       m.MinSolves,
		CondThreshold:   m.CondThreshold,
		CondEvery:       m.CondEvery,
		CondIters:       m.CondIters,
		CondSeed:        m.CondSeed,
		ChurnFactor:     m.ChurnFactor,
		CooldownTicks:   m.CooldownTicks,
		DensityTune:     m.DensityTune,
		TargetCondMin:   m.TargetCondMin,
		TargetCondMax:   m.TargetCondMax,
		RetainAfterSwap: m.RetainAfterSwap,
	}
	if m.Enabled && o.RetainAfterSwap == 0 {
		o.RetainAfterSwap = 1
	}
	return o
}

// walOptions builds the store configuration, registering the WAL timing
// histograms in reg so fsync and checkpoint latency show up on /metrics.
func (o ServiceOptions) walOptions(reg *obs.Registry) wal.Options {
	return wal.Options{
		SegmentBytes: o.SegmentBytes,
		Sync:         wal.SyncPolicy(o.Fsync),
		SyncEvery:    o.FsyncEvery,
		AppendDur: reg.Histogram("ingrass_wal_append_duration_seconds",
			"wall-clock latency of WAL batch appends (including any inline fsync)", obs.ScaleSeconds),
		SyncDur: reg.Histogram("ingrass_wal_fsync_duration_seconds",
			"wall-clock latency of WAL fsyncs", obs.ScaleSeconds),
		CheckpointDur: reg.Histogram("ingrass_checkpoint_duration_seconds",
			"wall-clock latency of full-state checkpoint writes", obs.ScaleSeconds),
	}
}

func (o ServiceOptions) engineOptions(sopts SolveOptions) service.Options {
	s := sopts.internal()
	if s.Workers <= 0 {
		s.Workers = o.Options.normalized().Workers
	}
	if s.Workers <= 0 {
		// Parallel solves are the default: the persistent kernel pool
		// clamps to GOMAXPROCS and keeps the warm path allocation-free, so
		// there is no longer a reason to default to serial.
		s.Workers = runtime.GOMAXPROCS(0)
	}
	return service.Options{
		MaxBatch:      o.MaxBatch,
		FlushInterval: o.FlushInterval,
		QueueCapacity: o.QueueCapacity,
		Retain:        o.RetainSnapshots,
		Solver:        s,
		Batch:         o.Batch.internal(),
		Maintenance:   o.Maintenance.internal(),
	}
}

// Service is the concurrent counterpart of Incremental: a long-lived engine
// that owns the incremental sparsifier, serves snapshot-isolated reads
// (Solve, EffectiveResistance, ConditionNumber, SparsifierSnapshot) from
// any number of goroutines, and applies writes (AddEdges, DeleteEdges)
// through a coalescing asynchronous batcher. Reads run against an immutable
// copy-on-write snapshot whose preconditioner factorization is cached per
// generation, so repeated solves on an unchanged graph skip setup.
type Service struct {
	eng       *service.Engine
	store     *wal.Store // nil without DataDir
	metrics   *obs.Registry
	batchOpts BatchOptions
	coalesce  bool // CoalesceSingles: single reads ride the scheduler

	// Replication roles (repl.go): at most one of these is set. A primary
	// ships its WAL through replPrimary; a follower Service (built by
	// Follow) applies the stream through follower and serves read-only.
	replPrimary  *repl.Primary
	replHandlers *ReplicationHandlers
	follower     *repl.Follower
}

// NewService builds the initial sparsifier H(0) of g (as NewIncremental
// does), runs the inGRASS setup phase, and starts the serving engine. The
// Service takes ownership of g: the caller must not touch it afterwards.
// Close the Service to stop the write pipeline.
//
// With ServiceOptions.DataDir set the service is durable (see Checkpoint
// and LoadService). NewService refuses a data directory that already holds
// state: silently rebuilding over an existing log would orphan it, and
// resuming it is LoadService's job.
func NewService(g *Graph, opts ServiceOptions) (*Service, error) {
	metrics := obs.NewRegistry()
	// Claim the data directory before the (potentially minutes-long) setup
	// phase, so a directory that already holds state fails fast.
	var store *wal.Store
	if opts.DataDir != "" {
		var err error
		store, err = wal.Open(opts.DataDir, opts.walOptions(metrics))
		if err != nil {
			return nil, fmt.Errorf("ingrass: open data dir: %w", err)
		}
		if !store.Empty() {
			store.Close()
			return nil, fmt.Errorf("%w: %s", ErrDataDirNotEmpty, opts.DataDir)
		}
	}
	fail := func(err error) (*Service, error) {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	o := opts.Options.normalized()
	init, err := grass.Sparsify(g.g, grass.Config{
		TargetDensity:    o.InitialDensity,
		Tree:             grass.TreeLowStretch,
		SimilarityFilter: true,
		Seed:             o.Seed,
	})
	if err != nil {
		return fail(fmt.Errorf("ingrass: initial sparsifier: %w", err))
	}
	sp, err := core.NewSparsifier(g.g, init.H, core.Config{
		TargetCond: o.TargetCond,
		LRD:        o.lrdConfig(),
		Workers:    o.Workers,
	})
	if err != nil {
		return fail(err)
	}
	eopts := opts.engineOptions(opts.Solve)
	eopts.Obs = metrics
	if store != nil {
		// The generation-0 checkpoint makes the directory recoverable
		// before the first write is ever logged.
		if err := store.WriteCheckpoint(wal.Checkpoint{Gen: 0, State: sp.PersistentState()}); err != nil {
			return fail(fmt.Errorf("ingrass: initial checkpoint: %w", err))
		}
		eopts.Store = store
	}
	return &Service{
		eng:       service.New(sp, eopts),
		store:     store,
		metrics:   metrics,
		batchOpts: opts.Batch,
		coalesce:  opts.Batch.CoalesceSingles,
	}, nil
}

// LoadService resumes a durable service from ServiceOptions.DataDir:
// it loads the newest checkpoint, replays the write-ahead-log tail through
// the identical update path, and starts serving at the exact generation the
// previous process last made durable — without re-running GRASS setup. The
// sparsifier configuration (target condition number, seeds, filter level)
// comes from the checkpoint, so opts.Options cannot alter the recovered
// algorithm state; runtime knobs come from opts as usual — batching, solve
// defaults, fsync policy, and Options.Workers (the solver-parallelism
// default when Solve.Workers is unset).
//
// A torn trailing WAL record (a crash mid-append) is detected by its CRC
// frame and truncated away; it carried a write that was never acknowledged.
// Damage anywhere else fails with an error matching ErrCorruptData.
func LoadService(opts ServiceOptions) (*Service, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("ingrass: LoadService requires DataDir")
	}
	metrics := obs.NewRegistry()
	store, err := wal.Open(opts.DataDir, opts.walOptions(metrics))
	if err != nil {
		return nil, fmt.Errorf("ingrass: open data dir: %w", err)
	}
	eopts := opts.engineOptions(opts.Solve)
	eopts.Obs = metrics
	eng, err := service.Recover(store, eopts)
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("ingrass: recover %s: %w", opts.DataDir, err)
	}
	return &Service{
		eng:       eng,
		store:     store,
		metrics:   metrics,
		batchOpts: opts.Batch,
		coalesce:  opts.Batch.CoalesceSingles,
	}, nil
}

// Checkpoint persists the service's full current state to the data
// directory and prunes the WAL records it covers, without stalling
// concurrent reads or writes (the state capture is an O(1) copy-on-write
// snapshot). It returns the generation the checkpoint covers. Checkpoint
// also restores durability after a degraded period (see ErrNotDurable).
func (s *Service) Checkpoint() (uint64, error) {
	gen, err := s.eng.Checkpoint()
	if err != nil {
		return gen, fmt.Errorf("ingrass: checkpoint: %w", err)
	}
	return gen, nil
}

// ForceResparsify rebuilds the setup basis (LRD embedding + sketch) from the
// current sparsifier in the background and swaps it in as a new generation,
// regardless of the maintenance controller's thresholds (or whether the
// controller is enabled at all). The rebuild runs on the calling goroutine
// against a copy-on-write snapshot, so concurrent reads and writes proceed
// unstalled; only the O(delta) adoption briefly holds the write lock. It
// returns the generation that published the swap. At most one rebuild runs
// per service: concurrent calls fail with ErrRebuildInProgress.
func (s *Service) ForceResparsify(ctx context.Context) (uint64, error) {
	gen, err := s.eng.Resparsify(ctx)
	if err != nil {
		return gen, fmt.Errorf("ingrass: resparsify: %w", err)
	}
	return gen, nil
}

// WriteResult reports one completed write request.
type WriteResult struct {
	// Generation is the snapshot generation in which the write became
	// visible to readers.
	Generation uint64 `json:"generation"`
	// Included/Merged/Redistributed count the inGRASS filter outcomes for
	// insertions.
	Included      int `json:"included"`
	Merged        int `json:"merged"`
	Redistributed int `json:"redistributed"`
	// Deleted/Promoted count deletion outcomes.
	Deleted  int `json:"deleted"`
	Promoted int `json:"promoted"`
}

func fromInternalResult(r service.WriteResult) WriteResult {
	return WriteResult{
		Generation:    r.Generation,
		Included:      r.Included,
		Merged:        r.Merged,
		Redistributed: r.Redistributed,
		Deleted:       r.Deleted,
		Promoted:      r.Promoted,
	}
}

// PendingWrite is the future for an asynchronous write.
type PendingWrite struct {
	p *service.Pending
}

// Done is closed once the write has been applied (or rejected).
func (w *PendingWrite) Done() <-chan struct{} { return w.p.Done() }

// Wait blocks until the write completes or ctx is cancelled.
func (w *PendingWrite) Wait(ctx context.Context) (WriteResult, error) {
	res, err := w.p.Wait(ctx)
	return fromInternalResult(res), err
}

func toInternalEdges(edges []Edge) []graph.Edge {
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// AddEdgesAsync enqueues an insertion batch and returns immediately; the
// batcher coalesces it with neighboring requests into one update pass.
//
// Within one flush window, all coalesced insertions apply before any
// deletions. For a delete-then-add of the same endpoint pair that lands in
// a single flush, the deletion still removes the oldest matching edge, so
// the outcome matches sequential execution; interleave a Flush between the
// two writes if strict ordering against a pathological parallel-edge
// history matters.
func (s *Service) AddEdgesAsync(edges []Edge) (*PendingWrite, error) {
	p, err := s.eng.AddAsync(toInternalEdges(edges))
	if err != nil {
		return nil, err
	}
	return &PendingWrite{p: p}, nil
}

// AddEdges enqueues an insertion batch and waits until it is applied and
// published.
func (s *Service) AddEdges(ctx context.Context, edges []Edge) (WriteResult, error) {
	res, err := s.eng.Add(ctx, toInternalEdges(edges))
	return fromInternalResult(res), err
}

// DeleteEdgesAsync enqueues a deletion batch (edges identified by
// endpoints; W is ignored).
func (s *Service) DeleteEdgesAsync(edges []Edge) (*PendingWrite, error) {
	p, err := s.eng.DeleteAsync(toInternalEdges(edges))
	if err != nil {
		return nil, err
	}
	return &PendingWrite{p: p}, nil
}

// DeleteEdges enqueues a deletion batch and waits until it is applied.
func (s *Service) DeleteEdges(ctx context.Context, edges []Edge) (WriteResult, error) {
	res, err := s.eng.Delete(ctx, toInternalEdges(edges))
	return fromInternalResult(res), err
}

// Solve computes x = L_G^+ b against the current snapshot. Safe for
// concurrent use; the returned stats carry the generation that served the
// solve. opts overrides the engine defaults field-wise for this request
// (a zero opts means engine defaults). ctx cancellation or deadline expiry
// aborts the solve within one outer iteration with an error matching
// ErrCancelled; ErrNoConvergence reports an exhausted iteration budget.
// Partial stats accompany both.
func (s *Service) Solve(ctx context.Context, b []float64, opts SolveOptions) ([]float64, SolveStats, error) {
	if err := s.readGate(); err != nil {
		return nil, SolveStats{}, err
	}
	snap := s.eng.Current()
	if s.coalesce {
		// Coalesced path: concurrent same-generation solves share one
		// blocked multi-RHS execution; the answer is bit-identical to the
		// direct path. On a cancelled wait the solution buffer is withheld —
		// its column may still be in flight inside the group.
		if len(b) != snap.G.NumNodes() {
			return nil, SolveStats{}, fmt.Errorf("ingrass: rhs length %d != %d nodes", len(b), snap.G.NumNodes())
		}
		x := make([]float64, len(b))
		ist, err := s.eng.SolveCoalesced(ctx, snap, x, b, opts.internal())
		if err != nil && ctx != nil && ctx.Err() != nil && !ist.Converged && ist.Iterations == 0 {
			x = nil
		}
		return x, fromInternalSolveStats(ist), err
	}
	x, st, err := snap.Solve(ctx, b, opts.internal())
	return x, fromInternalSolveStats(st), err
}

// SolveInto is Solve writing the solution into the caller-provided x
// (len(x) == len(b)). The warm path performs no allocation: all scratch
// comes from the snapshot's pooled workspaces, which is what keeps
// steady-state solve throughput garbage-free under heavy traffic.
func (s *Service) SolveInto(ctx context.Context, x, b []float64, opts SolveOptions) (SolveStats, error) {
	if err := s.readGate(); err != nil {
		return SolveStats{}, err
	}
	st, err := s.eng.Current().SolveInto(ctx, x, b, opts.internal())
	return fromInternalSolveStats(st), err
}

func fromInternalSolveStats(st service.SolveStats) SolveStats {
	return SolveStats{
		Iterations:  st.Iterations,
		Residual:    st.Residual,
		Converged:   st.Converged,
		PrecondUses: st.PrecondUses,
		Generation:  st.Generation,
	}
}

// EffectiveResistance computes the effective resistance between u and v on
// the current snapshot's original graph, returning the generation that
// served the query. ctx cancellation aborts the underlying solve.
func (s *Service) EffectiveResistance(ctx context.Context, u, v int) (float64, uint64, error) {
	if err := s.readGate(); err != nil {
		return 0, 0, err
	}
	snap := s.eng.Current()
	if s.coalesce {
		r, err := s.eng.ResistanceCoalesced(ctx, snap, u, v)
		return r, snap.Gen, err
	}
	r, err := snap.EffectiveResistance(ctx, u, v)
	return r, snap.Gen, err
}

// ConditionNumber estimates kappa(L_G, L_H) for the current snapshot. ctx
// cancellation aborts the power iteration between steps.
func (s *Service) ConditionNumber(ctx context.Context, seed uint64) (float64, error) {
	if err := s.readGate(); err != nil {
		return 0, err
	}
	return s.eng.Current().ConditionNumber(ctx, seed)
}

// SparsifierSnapshot returns the current generation's sparsifier H and its
// generation. The graph is an immutable snapshot: later writes to the
// service never affect it, and mutating it copies first. Each caller gets
// its own copy-on-write handle, so mutating it can never corrupt the
// published generation other readers still see.
func (s *Service) SparsifierSnapshot() (*Graph, uint64) {
	snap := s.eng.Current()
	return wrap(snap.ExportSparsifier().Snapshot()), snap.Gen
}

// SparsifierAt returns the sparsifier of a retained generation, if still
// addressable (see ServiceOptions.RetainSnapshots).
func (s *Service) SparsifierAt(gen uint64) (*Graph, bool) {
	snap, ok := s.eng.At(gen)
	if !ok {
		return nil, false
	}
	return wrap(snap.ExportSparsifier().Snapshot()), true
}

// OriginalSnapshot returns the current generation's original graph G.
func (s *Service) OriginalSnapshot() (*Graph, uint64) {
	snap := s.eng.Current()
	return wrap(snap.G.Snapshot()), snap.Gen
}

// Generation returns the currently served snapshot generation.
func (s *Service) Generation() uint64 { return s.eng.Current().Gen }

// Metrics returns the service's observability registry: every counter,
// gauge, and latency histogram the process maintains, ready for Prometheus
// text exposition (obs.Registry.WritePrometheus) or selective rendering
// (WriteText). The registry is the single source of truth — Stats is a
// point-in-time view over the same underlying values.
func (s *Service) Metrics() *obs.Registry { return s.metrics }

// LatencySummary digests a latency histogram for JSON reporting: count of
// samples, their sum, tail quantiles, and the maximum, all in seconds.
// Quantiles carry the histogram's bucket resolution (at most 12.5% relative
// error).
type LatencySummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

func fromSummary(s obs.Summary) LatencySummary {
	return LatencySummary{Count: s.Count, Sum: s.Sum, P50: s.P50, P90: s.P90,
		P99: s.P99, P999: s.P999, Max: s.Max}
}

// ServiceStats is a point-in-time copy of the engine counters.
type ServiceStats struct {
	Generation        uint64 `json:"generation"`
	Solves            uint64 `json:"solves"`
	SolveIters        uint64 `json:"solve_iters"`
	PrecondBuilds     uint64 `json:"precond_builds"`
	PrecondReuses     uint64 `json:"precond_reuses"`
	ResistanceQueries uint64 `json:"resistance_queries"`
	CondQueries       uint64 `json:"cond_queries"`
	SparsifierExports uint64 `json:"sparsifier_exports"`
	WriteRequests     uint64 `json:"write_requests"`
	WriteErrors       uint64 `json:"write_errors"`
	Flushes           uint64 `json:"flushes"`
	FlushedAdds       uint64 `json:"flushed_adds"`
	FlushedDeletes    uint64 `json:"flushed_deletes"`
	QueueDepth        int64  `json:"queue_depth"`
	// Solver failure-mode counters, one per finished solve column:
	// iteration-budget exhaustion (served as HTTP 422), deadline expiry
	// (408), and client cancellation (499).
	SolveNoConvergence    uint64 `json:"solve_no_convergence"`
	SolveDeadlineExceeded uint64 `json:"solve_deadline_exceeded"`
	SolveCancelled        uint64 `json:"solve_cancelled"`
	// SolveLatency digests the per-solve wall-clock histogram in seconds.
	SolveLatency LatencySummary `json:"solve_latency_seconds"`
	// Frozen-operator shape of the served generation: storage layout ("csr"
	// or "sell", "auto" until the first factorization), SELL padding
	// fraction, and arena bytes reserved across the G and H operators.
	OperatorFormat       string  `json:"operator_format"`
	OperatorPaddingRatio float64 `json:"operator_padding_ratio"`
	OperatorArenaBytes   uint64  `json:"operator_arena_bytes"`
	// Durability counters (zero without DataDir): logged batches, their
	// framed bytes, failed appends, completed checkpoints, and the
	// generation the newest checkpoint covers.
	WALAppends        uint64 `json:"wal_appends"`
	WALBytes          uint64 `json:"wal_bytes"`
	WALErrors         uint64 `json:"wal_errors"`
	Checkpoints       uint64 `json:"checkpoints"`
	LastCheckpointGen uint64 `json:"last_checkpoint_gen"`
	// Batched query engine counters: blocked groups executed, requests that
	// shared a group, mean right-hand sides per group, and requests admitted
	// to the scheduler but not yet executed.
	BatchesFormed     uint64  `json:"batches_formed"`
	RequestsCoalesced uint64  `json:"requests_coalesced"`
	AvgBlockFill      float64 `json:"avg_block_fill"`
	BatchQueueDepth   int64   `json:"batch_queue_depth"`
	// Closed-loop maintenance: trigger counts by reason, completed and failed
	// background rebuilds, the generation the newest swap published, the
	// controller state ("disabled", "idle", "rebuilding", "swapping",
	// "cooldown"), the (auto-tuned) target condition number, the
	// iteration-mean trend the loop steers by, the latest periodic kappa
	// estimate, and snapshots evicted by the post-swap GC pressure policy.
	MaintTriggersIterations uint64  `json:"maint_triggers_iterations"`
	MaintTriggersCond       uint64  `json:"maint_triggers_cond"`
	MaintTriggersChurn      uint64  `json:"maint_triggers_churn"`
	MaintTriggersManual     uint64  `json:"maint_triggers_manual"`
	MaintRebuilds           uint64  `json:"maint_rebuilds"`
	MaintFailures           uint64  `json:"maint_failures"`
	MaintLastGeneration     uint64  `json:"maint_last_generation"`
	MaintState              string  `json:"maint_state"`
	MaintTargetCond         float64 `json:"maint_target_cond"`
	MaintIterTrend          float64 `json:"maint_iter_trend"`
	MaintKappa              float64 `json:"maint_kappa"`
	GenerationsEvicted      uint64  `json:"generations_evicted"`
	// Sparsifier state for the current generation.
	Nodes           int     `json:"nodes"`
	GraphEdges      int     `json:"graph_edges"`
	SparsifierEdges int     `json:"sparsifier_edges"`
	Density         float64 `json:"density"`
	// Replication. Role is "standalone", "primary", or "follower". The
	// repl_* fields are zero outside their role: lag, readiness, and
	// apply/bootstrap/fetch counters describe a follower; follower counts,
	// retained bytes, and evictions describe a primary.
	Role                  string  `json:"role"`
	ReplLagGenerations    uint64  `json:"repl_lag_generations"`
	ReplLagSeconds        float64 `json:"repl_lag_seconds"`
	ReplReady             bool    `json:"repl_ready"`
	ReplStale             bool    `json:"repl_stale"`
	ReplAppliedRecords    uint64  `json:"repl_applied_records"`
	ReplBootstraps        uint64  `json:"repl_bootstraps"`
	ReplFetchErrors       uint64  `json:"repl_fetch_errors"`
	ReplGapRefusals       uint64  `json:"repl_gap_refusals"`
	ReplCRCErrors         uint64  `json:"repl_crc_errors"`
	ReplFollowers         int     `json:"repl_followers"`
	ReplRetainedBytes     int64   `json:"repl_retained_bytes"`
	ReplFollowerEvictions uint64  `json:"repl_follower_evictions"`
}

// Stats returns engine counters plus current-generation graph sizes.
func (s *Service) Stats() ServiceStats {
	v := s.eng.Stats()
	snap := s.eng.Current()
	out := ServiceStats{
		Generation:            v.Generation,
		Solves:                v.Solves,
		SolveIters:            v.SolveIters,
		PrecondBuilds:         v.PrecondBuilds,
		PrecondReuses:         v.PrecondReuses,
		ResistanceQueries:     v.ResistanceQueries,
		CondQueries:           v.CondQueries,
		SparsifierExports:     v.SparsifierExports,
		WriteRequests:         v.WriteRequests,
		WriteErrors:           v.WriteErrors,
		Flushes:               v.Flushes,
		FlushedAdds:           v.FlushedAdds,
		FlushedDeletes:        v.FlushedDeletes,
		QueueDepth:            v.QueueDepth,
		SolveNoConvergence:    v.SolveNoConvergence,
		SolveDeadlineExceeded: v.SolveDeadlineExceeded,
		SolveCancelled:        v.SolveCancelled,
		SolveLatency:          fromSummary(v.SolveLatency),
		OperatorFormat:        v.OperatorFormat,
		OperatorPaddingRatio:  v.OperatorPaddingRatio,
		OperatorArenaBytes:    v.OperatorArenaBytes,
		WALAppends:            v.WALAppends,
		WALBytes:              v.WALBytes,
		WALErrors:             v.WALErrors,
		Checkpoints:           v.Checkpoints,
		LastCheckpointGen:     v.LastCheckpointGen,
		BatchesFormed:         v.BatchesFormed,
		RequestsCoalesced:     v.RequestsCoalesced,
		AvgBlockFill:          v.AvgBlockFill,
		BatchQueueDepth:       v.BatchQueueDepth,

		MaintTriggersIterations: v.MaintTriggersIterations,
		MaintTriggersCond:       v.MaintTriggersCond,
		MaintTriggersChurn:      v.MaintTriggersChurn,
		MaintTriggersManual:     v.MaintTriggersManual,
		MaintRebuilds:           v.MaintRebuilds,
		MaintFailures:           v.MaintFailures,
		MaintLastGeneration:     v.MaintLastGeneration,
		MaintState:              v.MaintState,
		MaintTargetCond:         v.MaintTargetCond,
		MaintIterTrend:          v.MaintIterTrend,
		MaintKappa:              v.MaintKappa,
		GenerationsEvicted:      v.GenerationsEvicted,

		Nodes:           snap.G.NumNodes(),
		GraphEdges:      snap.G.NumEdges(),
		SparsifierEdges: snap.H.NumEdges(),
		Density:         graph.OffTreeDensity(snap.H.NumEdges(), snap.H.NumNodes(), snap.G.NumEdges()),

		Role:      s.Role(),
		ReplReady: s.Ready(),
	}
	if s.follower != nil {
		fs := s.follower.Stats()
		out.ReplLagGenerations = fs.LagGenerations
		out.ReplLagSeconds = fs.LagSeconds
		out.ReplStale = fs.Stale
		out.ReplAppliedRecords = fs.AppliedRecords
		out.ReplBootstraps = fs.Bootstraps
		out.ReplFetchErrors = fs.FetchErrors
		out.ReplGapRefusals = fs.GapRefusals
		out.ReplCRCErrors = fs.CRCErrors
	}
	if s.replPrimary != nil {
		out.ReplFollowers = s.replPrimary.Followers()
		out.ReplRetainedBytes = s.replPrimary.RetainedBytes()
		out.ReplFollowerEvictions = s.replPrimary.Evictions()
	}
	return out
}

// Flush blocks until every write enqueued before it has been applied and
// published.
func (s *Service) Flush(ctx context.Context) error { return s.eng.Flush(ctx) }

// Close stops the write pipeline after flushing already-enqueued writes,
// then syncs and closes the data directory (if any). Further writes fail;
// reads against already-obtained snapshots keep working.
func (s *Service) Close() {
	if s.follower != nil {
		s.follower.Stop()
	}
	if s.replPrimary != nil {
		s.replPrimary.Close()
	}
	s.eng.Close()
	if s.store != nil {
		s.store.Close()
	}
}
