package ingrass

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestServiceDurabilityRoundTrip drives the public durable lifecycle:
// NewService with a data directory, writes, an explicit checkpoint, more
// writes (so recovery exercises checkpoint ⊕ WAL replay), restart via
// LoadService, and equality of generation, graph sizes, and solve output.
func TestServiceDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := serviceGrid(t, 8, 8)
	n := g.NumNodes()
	opts := ServiceOptions{
		Options:  Options{InitialDensity: 0.1, Seed: 1, TargetCond: 50},
		MaxBatch: 1,
		DataDir:  dir,
		Fsync:    FsyncNever, // tests don't need the disk flushes
	}
	svc, err := NewService(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := svc.AddEdges(ctx, []Edge{{U: 0, V: 37, W: 2}, {U: 5, V: 60, W: 0.5}}); err != nil {
		t.Fatal(err)
	}
	ckGen, err := svc.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ckGen != 1 {
		t.Fatalf("checkpoint at gen %d, want 1", ckGen)
	}
	if _, err := svc.AddEdges(ctx, []Edge{{U: 9, V: 44, W: 1.5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.DeleteEdges(ctx, []Edge{{U: 0, V: 37}}); err != nil {
		t.Fatal(err)
	}
	wantStats := svc.Stats()
	if wantStats.WALAppends != 3 || wantStats.WALErrors != 0 {
		t.Fatalf("wal counters: %+v", wantStats)
	}
	b := make([]float64, n)
	b[0], b[n-1] = 1, -1
	wantX, _, err := svc.Solve(ctx, b, SolveOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// NewService must refuse to clobber the directory.
	if _, err := NewService(serviceGrid(t, 8, 8), opts); !errors.Is(err, ErrDataDirNotEmpty) {
		t.Fatalf("want ErrDataDirNotEmpty, got %v", err)
	}

	re, err := LoadService(ServiceOptions{DataDir: dir, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, want := re.Generation(), wantStats.Generation; got != want {
		t.Fatalf("recovered generation %d, want %d", got, want)
	}
	gotStats := re.Stats()
	if gotStats.GraphEdges != wantStats.GraphEdges || gotStats.SparsifierEdges != wantStats.SparsifierEdges ||
		gotStats.Nodes != wantStats.Nodes {
		t.Fatalf("recovered sizes %+v, want %+v", gotStats, wantStats)
	}
	gotX, _, err := re.Solve(ctx, b, SolveOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	var diff, norm float64
	for i := range gotX {
		d := gotX[i] - wantX[i]
		diff += d * d
		norm += wantX[i] * wantX[i]
	}
	if diff > 1e-18*(1+norm) {
		t.Fatalf("recovered solve diverges: ||dx||^2 = %g", diff)
	}

	// The reloaded service keeps accepting durable writes and checkpoints.
	if _, err := re.AddEdges(ctx, []Edge{{U: 1, V: 50, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadServiceErrors(t *testing.T) {
	if _, err := LoadService(ServiceOptions{}); err == nil {
		t.Fatal("want error without DataDir")
	}
	if _, err := LoadService(ServiceOptions{DataDir: t.TempDir()}); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint on empty dir, got %v", err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"never", FsyncNever}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("want error on unknown policy")
	}
}
