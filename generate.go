package ingrass

import (
	"ingrass/internal/gen"
	"ingrass/internal/graph"
)

// Generate builds one of the named benchmark graphs (synthetic analogs of
// the paper's SuiteSparse test cases; see TestCases for names). scale
// multiplies the default node count: 1.0 is laptop-friendly, the paper's
// sizes correspond to scale 10-100 for the large meshes.
func Generate(name string, scale float64, seed uint64) (*Graph, error) {
	tc, err := gen.Lookup(name)
	if err != nil {
		return nil, err
	}
	g, err := tc.Build(scale, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// TestCases lists the available benchmark names in Table I order.
func TestCases() []string {
	reg := gen.Registry()
	out := make([]string, len(reg))
	for i, tc := range reg {
		out[i] = tc.Name
	}
	return out
}

// GeneratePowerGrid builds a rows x cols power-delivery-network graph with
// viaFrac*N random inter-layer vias (G2/G3_circuit analog).
func GeneratePowerGrid(rows, cols int, viaFrac float64, seed uint64) (*Graph, error) {
	g, err := gen.PowerGrid(rows, cols, viaFrac, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// GenerateTriMesh builds a structured triangular finite-element mesh with
// grading toward row 0 (grade 1 = uniform).
func GenerateTriMesh(rows, cols int, grade float64, seed uint64) (*Graph, error) {
	g, err := gen.TriMesh(rows, cols, grade, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// GenerateDelaunay builds the Delaunay triangulation of n uniform random
// points in the unit square (delaunay_n* analog).
func GenerateDelaunay(n int, seed uint64) (*Graph, error) {
	g, err := gen.Delaunay(n, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// GenerateBarabasiAlbert builds a preferential-attachment graph with n
// nodes and m edges per arriving node (social-network analog).
func GenerateBarabasiAlbert(n, m int, seed uint64) (*Graph, error) {
	g, err := gen.BarabasiAlbert(n, m, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// GenerateRandomGeometric builds a random geometric graph: n points in the
// unit square, edges within the given radius, conductance 1/distance. Large
// radii produce dense graphs where sparsification pays off most. Only the
// largest connected component is returned, so the node count may be < n.
func GenerateRandomGeometric(n int, radius float64, seed uint64) (*Graph, error) {
	g, err := gen.RandomGeometric(n, radius, seed)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// NewEdgeStream draws count new (non-adjacent, non-duplicate) weighted
// edges for g, split into batches iterations. local selects short-range
// pairs (physical-design style) instead of uniform chords.
func NewEdgeStream(g *Graph, count, batches int, local bool, seed uint64) ([][]Edge, error) {
	kind := gen.StreamUniform
	if local {
		kind = gen.StreamLocal
	}
	bs, err := gen.Stream(g.g, gen.StreamConfig{Kind: kind, Count: count, Batches: batches, Seed: seed})
	if err != nil {
		return nil, err
	}
	out := make([][]Edge, len(bs))
	for i, b := range bs {
		out[i] = make([]Edge, len(b))
		for j, e := range b {
			out[i][j] = Edge{U: e.U, V: e.V, W: e.W}
		}
	}
	return out, nil
}

// internalGraph exposes the wrapped graph to the bench harness inside this
// module without widening the public API.
func (p *Graph) internalGraph() *graph.Graph { return p.g }
