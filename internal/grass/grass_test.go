package grass

import (
	"context"
	"math"
	"testing"

	"ingrass/internal/cond"
	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func weightedRandom(n, extra int, seed uint64) *graph.Graph {
	r := vecmath.NewRNG(seed)
	g := graph.New(n, n+extra)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[r.Intn(i)], r.Range(0.1, 10))
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, r.Range(0.1, 10))
		}
	}
	return g
}

func TestSparsifyBasics(t *testing.T) {
	g := grid(10, 10)
	res, err := Sparsify(g, Config{TargetDensity: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := res.H
	if h.NumNodes() != g.NumNodes() {
		t.Fatal("node set must be preserved")
	}
	if !graph.IsConnected(h) {
		t.Fatal("sparsifier must be connected")
	}
	wantOff := int(0.1 * float64(g.NumEdges()))
	if res.OffTree != wantOff {
		t.Fatalf("off-tree edges %d, want %d", res.OffTree, wantOff)
	}
	if res.TreeEdges != g.NumNodes()-1 {
		t.Fatalf("tree edges %d", res.TreeEdges)
	}
	if h.NumEdges() != res.TreeEdges+res.OffTree {
		t.Fatal("edge accounting broken")
	}
	// Density measure agrees.
	d := graph.OffTreeDensity(h.NumEdges(), g.NumNodes(), g.NumEdges())
	if math.Abs(d-0.1) > 0.01 {
		t.Fatalf("off-tree density %v", d)
	}
}

func TestDistortionOrdering(t *testing.T) {
	g := weightedRandom(100, 300, 2)
	res, err := Sparsify(g, Config{TargetDensity: 0.15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Without filtering, admitted distortions are non-increasing.
	for i := 1; i < len(res.Distortion); i++ {
		if res.Distortion[i] > res.Distortion[i-1]+1e-12 {
			t.Fatalf("distortions not sorted at %d: %v > %v", i, res.Distortion[i], res.Distortion[i-1])
		}
	}
}

func TestSimilarityFilterSkipsRedundant(t *testing.T) {
	// A graph with many parallel-ish candidate cycles: grid plus clique on
	// one corner region; the filter should mark some candidates redundant.
	g := grid(12, 12)
	res, err := Sparsify(g, Config{TargetDensity: 0.3, SimilarityFilter: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedRedundant == 0 {
		t.Fatal("expected the similarity filter to skip something on a dense grid")
	}
	// Budget still honored (backfill).
	wantOff := int(0.3 * float64(g.NumEdges()))
	if res.OffTree != wantOff {
		t.Fatalf("off-tree %d want %d", res.OffTree, wantOff)
	}
}

func TestDensityZeroGivesTree(t *testing.T) {
	g := grid(6, 6)
	res, err := Sparsify(g, Config{TargetDensity: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.OffTree != 0 || res.H.NumEdges() != g.NumNodes()-1 {
		t.Fatalf("expected pure tree, got %d edges", res.H.NumEdges())
	}
}

func TestHigherDensityLowersKappa(t *testing.T) {
	g := weightedRandom(80, 240, 5)
	sparse1, err := InitialSparsifier(g, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	sparse2, err := InitialSparsifier(g, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := cond.Estimate(context.Background(), g, sparse1.H, cond.Options{Seed: 1, MaxIters: 120})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := cond.Estimate(context.Background(), g, sparse2.H, cond.Options{Seed: 1, MaxIters: 120})
	if err != nil {
		t.Fatal(err)
	}
	if k2.Kappa >= k1.Kappa {
		t.Fatalf("denser sparsifier should have smaller kappa: %v vs %v", k2.Kappa, k1.Kappa)
	}
}

func TestMaxWeightTreeVariant(t *testing.T) {
	g := weightedRandom(60, 120, 6)
	res, err := Sparsify(g, Config{TargetDensity: 0.1, Tree: TreeMaxWeight, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(res.H) {
		t.Fatal("max-weight variant must span")
	}
}

func TestSparsifyErrors(t *testing.T) {
	if _, err := Sparsify(graph.New(0, 0), Config{}); err == nil {
		t.Fatal("expected empty-graph error")
	}
	g := grid(3, 3)
	if _, err := Sparsify(g, Config{TargetDensity: 1.5}); err == nil {
		t.Fatal("expected density range error")
	}
	if _, err := Sparsify(g, Config{TargetDensity: -0.1}); err == nil {
		t.Fatal("expected density range error")
	}
}

func TestSparsifierPreservesQuadraticFormRoughly(t *testing.T) {
	// For smooth test vectors the sparsifier's quadratic form should be
	// within a small factor of the original's (that is its whole point).
	g := grid(10, 10)
	res, err := InitialSparsifier(g, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Smooth vector: coordinates of grid position.
	x := make([]float64, g.NumNodes())
	for i := range x {
		x[i] = float64(i%10) + 0.5*float64(i/10)
	}
	vecmath.CenterMean(x)
	qg := g.QuadraticForm(x)
	qh := res.H.QuadraticForm(x)
	if qh > qg*1.0001 {
		t.Fatalf("subgraph quadratic form %v exceeds original %v", qh, qg)
	}
	if qh < qg/25 {
		t.Fatalf("sparsifier too weak on smooth vector: %v vs %v", qh, qg)
	}
}
