// Package grass implements a GRASS-style spectral sparsifier (Feng,
// DAC'16 / TCAD'20; similarity-aware filtering per DAC'18). It serves two
// roles in this repository: constructing the initial sparsifier H(0) that
// inGRASS's setup phase consumes, and acting as the "re-run from scratch"
// baseline that the paper's tables compare against.
//
// The algorithm:
//
//  1. Build a low-stretch (or maximum-weight) spanning tree of G.
//  2. Rank every off-tree edge by its spectral distortion — edge weight
//     times tree-path effective resistance, the quantity Lemma 3.2 shows
//     governs the Laplacian eigenvalue perturbation of adding the edge.
//  3. Greedily admit the highest-distortion edges until the off-tree
//     density target is met, optionally skipping edges whose tree path is
//     already covered by a previously admitted edge (similarity-aware
//     filtering: such edges close near-identical cycles and contribute
//     little new spectral information).
package grass

import (
	"fmt"
	"sort"

	"ingrass/internal/graph"
	"ingrass/internal/tree"
)

// TreeKind selects the spanning-tree backbone.
type TreeKind int

const (
	// TreeLowStretch uses the AKPW-style low-stretch tree (default).
	TreeLowStretch TreeKind = iota
	// TreeMaxWeight uses the Kruskal maximum-weight tree.
	TreeMaxWeight
)

// Config controls sparsification.
type Config struct {
	// TargetDensity is the off-tree edge budget as a fraction of |E_G|
	// (the paper's D measure). 0.1 reproduces the tables' 10% setting.
	TargetDensity float64
	// Tree selects the backbone algorithm.
	Tree TreeKind
	// SimilarityFilter enables cycle-coverage filtering of redundant edges.
	SimilarityFilter bool
	// CoverLimit is the number of admitted edges that may cover a tree edge
	// before further candidates crossing it are considered redundant.
	// Default 1; ignored unless SimilarityFilter.
	CoverLimit int
	// Seed drives the randomized low-stretch tree.
	Seed uint64
}

// Result is a constructed sparsifier plus diagnostics.
type Result struct {
	H *graph.Graph // sparsifier over the same node set
	// TreeEdges and OffTree count H's composition.
	TreeEdges int
	OffTree   int
	// Distortion[i] is the spectral distortion of H's i-th off-tree edge at
	// admission time (descending order of admission).
	Distortion []float64
	// SkippedRedundant counts candidates rejected by the similarity filter.
	SkippedRedundant int
}

// Sparsify builds a spectral sparsifier of g from scratch.
func Sparsify(g *graph.Graph, cfg Config) (*Result, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("grass: empty graph")
	}
	if cfg.TargetDensity < 0 || cfg.TargetDensity > 1 {
		return nil, fmt.Errorf("grass: target density %v out of [0,1]", cfg.TargetDensity)
	}
	if cfg.CoverLimit <= 0 {
		cfg.CoverLimit = 1
	}

	var st *tree.SpanningTree
	switch cfg.Tree {
	case TreeMaxWeight:
		st = tree.MaxWeight(g)
	default:
		st = tree.LowStretch(g, cfg.Seed)
	}
	oracle := tree.NewPathOracle(st)

	// Rank off-tree candidates by spectral distortion w * R_T.
	off := st.OffTreeEdges()
	type cand struct {
		edge       int
		distortion float64
	}
	cands := make([]cand, 0, len(off))
	for _, ei := range off {
		e := g.Edge(ei)
		d := e.W * oracle.Resistance(e.U, e.V)
		cands = append(cands, cand{edge: ei, distortion: d})
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].distortion > cands[b].distortion })

	budget := int(cfg.TargetDensity * float64(g.NumEdges()))
	if budget > len(cands) {
		budget = len(cands)
	}

	res := &Result{TreeEdges: len(st.EdgeIdx)}
	keep := append([]int(nil), st.EdgeIdx...)

	var cover []int
	if cfg.SimilarityFilter {
		cover = make([]int, g.NumEdges())
	}
	admit := func(c cand) {
		keep = append(keep, c.edge)
		res.Distortion = append(res.Distortion, c.distortion)
		res.OffTree++
	}

	var skipped []cand
	for _, c := range cands {
		if res.OffTree >= budget {
			break
		}
		if cfg.SimilarityFilter {
			e := g.Edge(c.edge)
			path := oracle.PathEdges(e.U, e.V)
			covered := len(path) > 0
			for _, te := range path {
				if cover[te] < cfg.CoverLimit {
					covered = false
					break
				}
			}
			if covered {
				res.SkippedRedundant++
				skipped = append(skipped, c)
				continue
			}
			for _, te := range path {
				cover[te]++
			}
		}
		admit(c)
	}
	// If filtering starved the budget, backfill with the best skipped
	// candidates so the density target is honored exactly.
	for _, c := range skipped {
		if res.OffTree >= budget {
			break
		}
		admit(c)
	}

	res.H = g.Subgraph(keep)
	return res, nil
}

// InitialSparsifier is the convenience entry point used across the
// experiment harness: a low-stretch-tree sparsifier with similarity
// filtering at the given off-tree density.
func InitialSparsifier(g *graph.Graph, density float64, seed uint64) (*Result, error) {
	return Sparsify(g, Config{
		TargetDensity:    density,
		Tree:             TreeLowStretch,
		SimilarityFilter: true,
		Seed:             seed,
	})
}
