package vecmath

import "fmt"

// Fused kernels: each replaces two or three of the primitive passes above
// with a single traversal. The conjugate-gradient inner loops are memory-
// bound — every separate Dot/AXPY/Norm2 call streams n-length vectors
// through the cache again — so fusing the update with the reduction that
// consumes it roughly halves the memory passes per iteration. Element-wise
// results match the unfused compositions exactly, so swapping a fused
// kernel in is bit-for-bit neutral on the vectors it writes; the property
// tests in fused_test.go pin that equivalence. Reduction order is
// dispatch-dependent: the pure-Go path folds left with one accumulator
// (matching the unfused composition), while the AVX2 path uses the 4-lane
// order documented in generic.go — deterministic in both cases.
//
// Each exported kernel validates lengths, then delegates to a *Body
// function that simd_amd64.go / simd_fallback.go resolve per build and CPU.

// AXPYDot computes dst += alpha*x and returns Dot(dst, y) over the updated
// dst, in one pass. With y = dst it yields the squared norm of the update —
// the residual-update-plus-convergence-check of CG — and in the Lanczos
// reorthogonalization chain it folds each projection's AXPY into the next
// basis vector's dot product.
func AXPYDot(dst []float64, alpha float64, x, y []float64) float64 {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic(fmt.Sprintf("vecmath: AXPYDot length mismatch %d/%d/%d", len(dst), len(x), len(y)))
	}
	return axpyDotBody(dst, alpha, x, y)
}

// AXPY2 performs the paired CG iterate/residual update
//
//	x += alpha*p ; r -= alpha*ap
//
// and returns the squared Euclidean norm of the updated r. One pass over
// four vectors replaces two AXPYs plus a Norm2 (three passes).
func AXPY2(x, r []float64, alpha float64, p, ap []float64) float64 {
	if len(x) != len(r) || len(x) != len(p) || len(x) != len(ap) {
		panic(fmt.Sprintf("vecmath: AXPY2 length mismatch %d/%d/%d/%d", len(x), len(r), len(p), len(ap)))
	}
	return axpy2Body(x, r, alpha, p, ap)
}

// AXPYPair computes dst += alpha*x + beta*y in one pass (the Lanczos
// three-term recurrence step, previously two AXPYs).
func AXPYPair(dst []float64, alpha float64, x []float64, beta float64, y []float64) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic(fmt.Sprintf("vecmath: AXPYPair length mismatch %d/%d/%d", len(dst), len(x), len(y)))
	}
	axpyPairBody(dst, alpha, x, beta, y)
}

// XPBYInto computes dst = x + beta*dst element-wise — the CG search-
// direction update p = z + beta*p that previously lived as an inline loop
// in cg.go.
func XPBYInto(dst, x []float64, beta float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("vecmath: XPBYInto length mismatch %d != %d", len(dst), len(x)))
	}
	xpbyIntoBody(dst, x, beta)
}

// Dot2 returns (a·x, a·y) in one pass over the three vectors.
func Dot2(a, x, y []float64) (ax, ay float64) {
	if len(a) != len(x) || len(a) != len(y) {
		panic(fmt.Sprintf("vecmath: Dot2 length mismatch %d/%d/%d", len(a), len(x), len(y)))
	}
	return dot2Body(a, x, y)
}

// DotNorm returns (a·b, b·b) in one pass: the preconditioned-residual inner
// product and the squared residual norm that CG needs together at entry,
// previously three separate passes (Dot plus two Norm2 evaluations).
func DotNorm(a, b []float64) (ab, bb float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: DotNorm length mismatch %d != %d", len(a), len(b)))
	}
	return dotNormBody(a, b)
}
