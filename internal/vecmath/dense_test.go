package vecmath

import (
	"math"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At = %v", m.At(0, 1))
	}
	row := m.Row(0)
	if len(row) != 3 || row[1] != 7 {
		t.Fatalf("Row = %v", row)
	}
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 7 {
		t.Fatal("Clone shares storage")
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestIsSymmetric(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	if !m.IsSymmetric(0) {
		t.Fatal("should be symmetric")
	}
	m.Set(1, 0, 2)
	if m.IsSymmetric(1e-12) {
		t.Fatal("should not be symmetric")
	}
	if NewDense(2, 3).IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}

// symEigCheck verifies A v_i = lambda_i v_i for all pairs.
func symEigCheck(t *testing.T, m *Dense, vals []float64, vecs *Dense, tol float64) {
	t.Helper()
	n := m.Rows
	av := make([]float64, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = vecs.At(i, j)
		}
		m.MulVec(av, col)
		for i := 0; i < n; i++ {
			if math.Abs(av[i]-vals[j]*col[i]) > tol {
				t.Fatalf("eigenpair %d residual %g at row %d", j, av[i]-vals[j]*col[i], i)
			}
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	m := NewDense(3, 3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	vals, vecs, err := SymEig(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
	symEigCheck(t, m, vals, vecs, 1e-10)
}

func TestSymEig2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewDense(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	vals, vecs, err := SymEig(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
	symEigCheck(t, m, vals, vecs, 1e-10)
}

func TestSymEigRandom(t *testing.T) {
	r := NewRNG(123)
	const n = 30
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	vals, vecs, err := SymEig(m)
	if err != nil {
		t.Fatal(err)
	}
	symEigCheck(t, m, vals, vecs, 1e-8)
	// Eigenvalues must come back sorted ascending.
	for i := 1; i < n; i++ {
		if vals[i] < vals[i-1] {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
	// Eigenvector matrix must be orthonormal.
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var d float64
			for k := 0; k < n; k++ {
				d += vecs.At(k, i) * vecs.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-9 {
				t.Fatalf("eigenvectors not orthonormal: <%d,%d> = %v", i, j, d)
			}
		}
	}
	// Trace must equal the eigenvalue sum.
	var tr, sum float64
	for i := 0; i < n; i++ {
		tr += m.At(i, i)
		sum += vals[i]
	}
	if math.Abs(tr-sum) > 1e-8 {
		t.Fatalf("trace %v != eigenvalue sum %v", tr, sum)
	}
}

func TestSymEigNonSquare(t *testing.T) {
	if _, _, err := SymEig(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSolveSPD(t *testing.T) {
	// SPD matrix [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
	m := NewDense(2, 2)
	m.Set(0, 0, 4)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := SolveSPD(m, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.0/11) > 1e-12 || math.Abs(x[1]-7.0/11) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSPDRandom(t *testing.T) {
	r := NewRNG(77)
	const n = 40
	// Build SPD as A'A + I.
	a := NewDense(n, n)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	spd := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.At(k, i) * a.At(k, j)
			}
			if i == j {
				s += 1
			}
			spd.Set(i, j, s)
		}
	}
	b := make([]float64, n)
	r.FillNormal(b)
	x, err := SolveSPD(spd, b)
	if err != nil {
		t.Fatal(err)
	}
	res := make([]float64, n)
	spd.MulVec(res, x)
	Sub(res, res, b)
	if Norm2(res) > 1e-8*Norm2(b) {
		t.Fatalf("residual too large: %v", Norm2(res))
	}
}

func TestSolveSPDNotPD(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, -1)
	if _, err := SolveSPD(m, []float64{1, 0}); err == nil {
		t.Fatal("expected positive-definiteness error")
	}
}

func TestPseudoInverseApply(t *testing.T) {
	// Path graph 0-1-2 Laplacian; L^+ b for b = e0 - e2 gives potential
	// difference x0 - x2 = effective resistance = 2 (unit weights).
	l := NewDense(3, 3)
	l.Set(0, 0, 1)
	l.Set(0, 1, -1)
	l.Set(1, 0, -1)
	l.Set(1, 1, 2)
	l.Set(1, 2, -1)
	l.Set(2, 1, -1)
	l.Set(2, 2, 1)
	b := []float64{1, 0, -1}
	x, err := PseudoInverseApply(l, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((x[0]-x[2])-2) > 1e-10 {
		t.Fatalf("R_eff(0,2) = %v, want 2", x[0]-x[2])
	}
	if math.Abs(Sum(x)) > 1e-10 {
		t.Fatalf("pseudo-inverse result not mean-centered: %v", x)
	}
}

func TestOrthonormalizeMGS(t *testing.T) {
	r := NewRNG(2)
	vs := make([][]float64, 5)
	for i := range vs {
		vs[i] = make([]float64, 20)
		r.FillNormal(vs[i])
	}
	kept := OrthonormalizeMGS(vs, 1e-10)
	if len(kept) != 5 {
		t.Fatalf("kept %d of 5 independent vectors", len(kept))
	}
	if OrthoCheck(kept) > 1e-10 {
		t.Fatalf("orthonormality deviation %v", OrthoCheck(kept))
	}
}

func TestOrthonormalizeMGSDropsDependent(t *testing.T) {
	v1 := []float64{1, 0, 0}
	v2 := []float64{2, 0, 0} // dependent on v1
	v3 := []float64{0, 1, 0}
	kept := OrthonormalizeMGS([][]float64{v1, v2, v3}, 1e-10)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	if OrthoCheck(kept) > 1e-12 {
		t.Fatalf("deviation %v", OrthoCheck(kept))
	}
}

func TestProjectOut(t *testing.T) {
	u := []float64{1, 0}
	v := []float64{3, 4}
	ProjectOut(v, u)
	if v[0] != 0 || v[1] != 4 {
		t.Fatalf("ProjectOut gave %v", v)
	}
}

func TestProjectOutOnes(t *testing.T) {
	v := []float64{1, 2, 3}
	ProjectOutOnes(v)
	if math.Abs(Sum(v)) > 1e-12 {
		t.Fatalf("sum %v", Sum(v))
	}
}
