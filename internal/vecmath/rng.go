package vecmath

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). Every stochastic component in the repository (Krylov
// start vectors, dataset generators, random baselines) draws from an RNG
// seeded explicitly, so experiments are reproducible run to run.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given value using the
// SplitMix64 expansion, which guarantees a well-mixed non-zero state for
// any seed, including 0.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform draw from [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw from {0, 1, ..., n-1}. It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vecmath: RNG.Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform draw from [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal draw using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Reject u1 == 0 to keep the logarithm finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// FillRademacher fills v with independent +1/-1 entries, the standard choice
// for Hutchinson-style sketches and Krylov start vectors.
func (r *RNG) FillRademacher(v []float64) {
	for i := range v {
		if r.Uint64()&1 == 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
}

// FillNormal fills v with independent standard normal entries.
func (r *RNG) FillNormal(v []float64) {
	for i := range v {
		v[i] = r.NormFloat64()
	}
}

// Perm returns a uniformly random permutation of {0, ..., n-1}
// (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place via the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
