//go:build !amd64 || purego

package vecmath

// Non-amd64 or purego builds: the pure-Go bodies are the only
// implementation. The purego tag exists so CI (and any cautious operator)
// can run the whole suite with assembly compiled out.
const simdSupported = false

func dotBody(a, b []float64) float64 { return dotGeneric(a, b) }

func axpyDotBody(dst []float64, alpha float64, x, y []float64) float64 {
	return axpyDotGeneric(dst, alpha, x, y)
}

func axpy2Body(x, r []float64, alpha float64, p, ap []float64) float64 {
	return axpy2Generic(x, r, alpha, p, ap)
}

func axpyPairBody(dst []float64, alpha float64, x []float64, beta float64, y []float64) {
	axpyPairGeneric(dst, alpha, x, beta, y)
}

func xpbyIntoBody(dst, x []float64, beta float64) { xpbyIntoGeneric(dst, x, beta) }

func dot2Body(a, x, y []float64) (ax, ay float64) { return dot2Generic(a, x, y) }

func dotNormBody(a, b []float64) (ab, bb float64) { return dotNormGeneric(a, b) }
