package vecmath

import "sync/atomic"

// SIMD dispatch state. On amd64 builds without the purego tag,
// simd_amd64.go probes CPUID at init and, when AVX2 plus OS YMM-state
// support are present, routes the hot kernel bodies (Dot, AXPYDot, AXPY2,
// AXPYPair, XPBYInto, Dot2, DotNorm — and through them the *Multi block
// kernels, which delegate per column) to hand-written AVX2 assembly.
// Everywhere else the pure-Go bodies in generic.go run unconditionally.
//
// The toggle exists for two callers: benchmarks that want to attribute
// format wins separately from ISA wins (`ingrass bench -simd=false`), and
// tests that pin SIMD/generic equivalence. It is process-global and safe
// for concurrent use; in-flight kernels observe either path, both of which
// are correct (see generic.go for the exact bit-level contract).
var simdActive atomic.Bool

func init() { simdActive.Store(simdSupported) }

// SIMDSupported reports whether this build and CPU can run the assembly
// kernel bodies (amd64, no purego tag, AVX2 with OS-enabled YMM state).
func SIMDSupported() bool { return simdSupported }

// SIMDActive reports whether kernel dispatch currently routes to the
// assembly bodies.
func SIMDActive() bool { return simdActive.Load() }

// SetSIMD enables or disables the assembly bodies and reports the resulting
// state. Enabling is a no-op when unsupported: the result is what actually
// took effect, so callers can log it honestly.
func SetSIMD(on bool) bool {
	simdActive.Store(on && simdSupported)
	return simdActive.Load()
}
