package vecmath

import (
	"fmt"
	"math"
)

// Dense is a small row-major dense matrix. It exists for the pieces of the
// pipeline where the problem dimension is tiny (Lanczos tridiagonal systems,
// test oracles on graphs with a few hundred nodes); all large-scale work in
// the repository is matrix-free.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense returns a zeroed rows x cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("vecmath: NewDense with negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the (i, j) entry.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) entry.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments the (i, j) entry by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = m * x.
func (m *Dense) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("vecmath: MulVec dims (%dx%d)*%d into %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, rv := range row {
			s += rv * x[j]
		}
		dst[i] = s
	}
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// SymEig computes all eigenvalues and eigenvectors of the symmetric matrix m
// using the cyclic Jacobi rotation method. It returns the eigenvalues in
// ascending order and a matrix whose COLUMNS are the corresponding
// orthonormal eigenvectors. m is not modified.
//
// Jacobi is O(n^3) per sweep and unconditionally stable; it is intended for
// the n <= ~1000 regime where it serves as the exact oracle against which
// the iterative estimators (Krylov resistance, pencil power iteration) are
// validated in tests.
func SymEig(m *Dense) (eigenvalues []float64, eigenvectors *Dense, err error) {
	if m.Rows != m.Cols {
		return nil, nil, fmt.Errorf("vecmath: SymEig on non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += a.At(i, j) * a.At(i, j)
			}
		}
		return s
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiag()
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if apq == 0 {
					continue
				}
				app := a.At(p, p)
				aqq := a.At(q, q)
				// Rotation angle that annihilates a[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				for k := 0; k < n; k++ {
					akp := a.At(k, p)
					akq := a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := a.At(p, k)
					aqk := a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	eigenvalues = make([]float64, n)
	for i := 0; i < n; i++ {
		eigenvalues[i] = a.At(i, i)
	}
	// Sort eigenvalues ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && eigenvalues[idx[j]] < eigenvalues[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = eigenvalues[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// SolveSPD solves the linear system m*x = b for a symmetric positive-definite
// m via Cholesky factorization, returning the solution. It is a test oracle
// for the iterative solvers in internal/sparse.
func SolveSPD(m *Dense, b []float64) ([]float64, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("vecmath: SolveSPD on non-square matrix")
	}
	n := m.Rows
	if len(b) != n {
		return nil, fmt.Errorf("vecmath: SolveSPD rhs length %d != %d", len(b), n)
	}
	// Lower-triangular Cholesky factor, computed in a copy.
	l := m.Clone()
	for j := 0; j < n; j++ {
		d := l.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("vecmath: SolveSPD matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := l.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution L' x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// PseudoInverseApply computes x = M^+ b for a symmetric positive
// SEMI-definite M whose null space is spanned by the all-ones vector (a
// connected-graph Laplacian). It works by deflating the constant mode and
// solving the remaining SPD system densely; intended for test oracles only.
func PseudoInverseApply(m *Dense, b []float64) ([]float64, error) {
	n := m.Rows
	// Regularize: (M + (1/n) * 1 1') is SPD and agrees with M on 1-perp.
	reg := m.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			reg.Add(i, j, 1/float64(n))
		}
	}
	bb := make([]float64, n)
	copy(bb, b)
	CenterMean(bb)
	x, err := SolveSPD(reg, bb)
	if err != nil {
		return nil, err
	}
	CenterMean(x)
	return x, nil
}
