// Package vecmath provides the dense linear-algebra kernels used across the
// repository: vector arithmetic, a deterministic random-number generator,
// modified Gram-Schmidt orthogonalization, small dense symmetric matrices,
// and a Jacobi eigensolver that serves as an exact oracle in tests.
//
// Everything here is allocation-conscious: the hot kernels write into
// caller-provided destinations so the iterative solvers built on top
// (conjugate gradients, Lanczos, power iteration) can run without garbage.
package vecmath

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The slices must have equal
// length. The accumulation order depends on the active dispatch path (see
// generic.go): deterministic either way, but SIMD and generic values can
// differ in low bits.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Dot length mismatch %d != %d", len(a), len(b)))
	}
	return dotBody(a, b)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// NormInf returns the maximum absolute entry of v, or 0 for an empty slice.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every entry of v by c in place.
func Scale(v []float64, c float64) {
	for i := range v {
		v[i] *= c
	}
}

// AXPY computes dst += alpha*x element-wise. dst and x must have equal length.
func AXPY(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("vecmath: AXPY length mismatch %d != %d", len(dst), len(x)))
	}
	for i, xv := range x {
		dst[i] += alpha * xv
	}
}

// Copy copies src into dst; the slices must have equal length.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecmath: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Zero sets every entry of v to 0.
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every entry of v to c.
func Fill(v []float64, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Sub computes dst = a - b element-wise.
func Sub(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("vecmath: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Add computes dst = a + b element-wise.
func Add(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("vecmath: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sum returns the sum of the entries of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// CenterMean subtracts the mean from every entry, making v orthogonal to the
// all-ones vector. Laplacian solvers use this to stay in range(L).
func CenterMean(v []float64) {
	m := Mean(v)
	for i := range v {
		v[i] -= m
	}
}

// Normalize scales v to unit Euclidean norm and returns the original norm.
// A zero vector is left unchanged and 0 is returned.
func Normalize(v []float64) float64 {
	n := Norm2(v)
	if n == 0 {
		return 0
	}
	Scale(v, 1/n)
	return n
}

// Basis writes the signed indicator b_pq = e_p - e_q into dst (which is
// zeroed first). Effective-resistance formulas are all phrased in terms of
// this vector.
func Basis(dst []float64, p, q int) {
	Zero(dst)
	dst[p] = 1
	dst[q] = -1
}
