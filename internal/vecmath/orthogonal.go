package vecmath

// OrthonormalizeMGS performs modified Gram-Schmidt on the given set of
// vectors in place, producing an orthonormal set spanning the same subspace.
// Vectors that become (numerically) linearly dependent are dropped; the
// returned slice aliases the surviving vectors in their original order.
//
// dropTol is the norm below which a vector is considered dependent after
// projection; a typical value is 1e-10 times the original norm scale.
func OrthonormalizeMGS(vectors [][]float64, dropTol float64) [][]float64 {
	kept := vectors[:0]
	for _, v := range vectors {
		for _, u := range kept {
			ProjectOut(v, u)
		}
		// A second projection pass ("twice is enough") restores
		// orthogonality lost to cancellation on ill-conditioned inputs.
		for _, u := range kept {
			ProjectOut(v, u)
		}
		if Norm2(v) <= dropTol {
			continue
		}
		Normalize(v)
		kept = append(kept, v)
	}
	return kept
}

// ProjectOut subtracts from v its component along the (assumed unit-norm)
// direction u: v -= (u . v) u.
func ProjectOut(v, u []float64) {
	AXPY(v, -Dot(u, v), u)
}

// ProjectOutOnes removes the constant component of v, i.e. projects v onto
// the orthogonal complement of the all-ones vector. This is the same
// operation as CenterMean; the alias documents intent at Krylov call sites
// where the ones vector is the Laplacian kernel.
func ProjectOutOnes(v []float64) {
	CenterMean(v)
}

// OrthoCheck returns the maximum absolute deviation from orthonormality of
// the given vectors: max over pairs |<u_i, u_j> - delta_ij|. Used in tests
// and debug assertions.
func OrthoCheck(vectors [][]float64) float64 {
	var worst float64
	for i := range vectors {
		for j := i; j < len(vectors); j++ {
			d := Dot(vectors[i], vectors[j])
			if i == j {
				d -= 1
			}
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
