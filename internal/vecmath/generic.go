package vecmath

// Pure-Go kernel bodies. These are the reference implementations behind the
// exported kernels in vector.go and fused.go: on amd64 builds without the
// purego tag, dispatch (simd_amd64.go) may route to the AVX2 assembly
// bodies instead; everywhere else these ARE the implementation.
//
// Contract with the assembly bodies:
//
//   - Element-wise outputs (the vector updates of AXPY2, AXPYDot, AXPYPair,
//     XPBYInto) are bit-identical between generic and SIMD: Go never fuses
//     float64 multiply-add on amd64, the assembly uses separate VMULPD /
//     VADDPD (never FMA), so both perform the same two roundings per
//     element.
//   - Reduction VALUES differ in accumulation order: generic folds left
//     with one accumulator; SIMD folds into 4 lanes (element i → lane i%4
//     over the first len&^3 elements), reduces (l0+l2)+(l1+l3), then
//     appends the scalar tail left-to-right. Both orders are deterministic
//     and fixed; the SIMD order is pinned bit-for-bit by the lane oracles
//     in simd_test.go. This mirrors the kernel.Pool contract, where pooled
//     reductions are deterministic per width but not bit-identical to
//     serial.
func dotGeneric(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

func axpyDotGeneric(dst []float64, alpha float64, x, y []float64) float64 {
	var s float64
	for i, xv := range x {
		d := dst[i] + alpha*xv
		dst[i] = d
		s += d * y[i]
	}
	return s
}

func axpy2Generic(x, r []float64, alpha float64, p, ap []float64) float64 {
	var s float64
	for i := range x {
		x[i] += alpha * p[i]
		ri := r[i] - alpha*ap[i]
		r[i] = ri
		s += ri * ri
	}
	return s
}

func axpyPairGeneric(dst []float64, alpha float64, x []float64, beta float64, y []float64) {
	for i := range dst {
		dst[i] += alpha*x[i] + beta*y[i]
	}
}

func xpbyIntoGeneric(dst, x []float64, beta float64) {
	for i := range dst {
		dst[i] = x[i] + beta*dst[i]
	}
}

func dot2Generic(a, x, y []float64) (ax, ay float64) {
	for i, av := range a {
		ax += av * x[i]
		ay += av * y[i]
	}
	return ax, ay
}

func dotNormGeneric(a, b []float64) (ab, bb float64) {
	for i, av := range a {
		bv := b[i]
		ab += av * bv
		bb += bv * bv
	}
	return ab, bb
}
