package vecmath

import (
	"math"
	"testing"
)

// Lane oracle: the pure-Go model of the AVX2 reduction order — element i
// feeds lane i%4 over the first len&^3 elements, lanes reduce as
// (l0+l2)+(l1+l3), the tail folds in left-to-right. Every SIMD reduction
// must match its oracle bit-for-bit; this is what makes the assembly's
// floating-point behavior a documented contract instead of an accident.
func laneOracle(n int, product func(i int) float64) float64 {
	var lane [4]float64
	v := n &^ 3
	for i := 0; i < v; i++ {
		lane[i%4] += product(i)
	}
	s := (lane[0] + lane[2]) + (lane[1] + lane[3])
	for i := v; i < n; i++ {
		s += product(i)
	}
	return s
}

var simdSizes = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 31, 100, 1000, 4097}

func simdVec(seed uint64, n int) []float64 {
	r := NewRNG(seed)
	v := make([]float64, n)
	r.FillNormal(v)
	for i := range v {
		if i%7 == 3 {
			v[i] = -v[i]
		}
	}
	return v
}

func withSIMD(t *testing.T, on bool) {
	t.Helper()
	prev := SIMDActive()
	SetSIMD(on)
	t.Cleanup(func() { SetSIMD(prev) })
}

func requireSIMD(t *testing.T) {
	t.Helper()
	if !SIMDSupported() {
		t.Skip("SIMD unsupported on this build/CPU (non-amd64, purego, or no AVX2)")
	}
	withSIMD(t, true)
}

func TestSetSIMDRespectsSupport(t *testing.T) {
	prev := SIMDActive()
	defer SetSIMD(prev)
	if got := SetSIMD(false); got {
		t.Fatal("SetSIMD(false) reported active")
	}
	if SIMDActive() {
		t.Fatal("SIMDActive after SetSIMD(false)")
	}
	got := SetSIMD(true)
	if got != SIMDSupported() {
		t.Fatalf("SetSIMD(true) = %v, want %v (support)", got, SIMDSupported())
	}
}

func TestDotMatchesLaneOracle(t *testing.T) {
	requireSIMD(t)
	for _, n := range simdSizes {
		a, b := simdVec(uint64(n)+1, n), simdVec(uint64(n)+2, n)
		want := laneOracle(n, func(i int) float64 { return a[i] * b[i] })
		if got := Dot(a, b); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("n=%d: Dot=%x oracle=%x", n, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestDot2MatchesLaneOracle(t *testing.T) {
	requireSIMD(t)
	for _, n := range simdSizes {
		a, x, y := simdVec(uint64(n)+3, n), simdVec(uint64(n)+4, n), simdVec(uint64(n)+5, n)
		wantAX := laneOracle(n, func(i int) float64 { return a[i] * x[i] })
		wantAY := laneOracle(n, func(i int) float64 { return a[i] * y[i] })
		ax, ay := Dot2(a, x, y)
		if math.Float64bits(ax) != math.Float64bits(wantAX) || math.Float64bits(ay) != math.Float64bits(wantAY) {
			t.Errorf("n=%d: Dot2 mismatch vs oracle", n)
		}
	}
}

func TestDotNormMatchesLaneOracle(t *testing.T) {
	requireSIMD(t)
	for _, n := range simdSizes {
		a, b := simdVec(uint64(n)+6, n), simdVec(uint64(n)+7, n)
		wantAB := laneOracle(n, func(i int) float64 { return a[i] * b[i] })
		wantBB := laneOracle(n, func(i int) float64 { return b[i] * b[i] })
		ab, bb := DotNorm(a, b)
		if math.Float64bits(ab) != math.Float64bits(wantAB) || math.Float64bits(bb) != math.Float64bits(wantBB) {
			t.Errorf("n=%d: DotNorm mismatch vs oracle", n)
		}
	}
}

// AXPYDot: the dst update must be bit-identical to the generic body (two
// roundings per element — the no-FMA rule); the reduction must match the
// lane oracle evaluated over the updated vector.
func TestAXPYDotSIMD(t *testing.T) {
	requireSIMD(t)
	const alpha = -1.375
	for _, n := range simdSizes {
		dst := simdVec(uint64(n)+8, n)
		x, y := simdVec(uint64(n)+9, n), simdVec(uint64(n)+10, n)
		ref := append([]float64(nil), dst...)
		axpyDotGeneric(ref, alpha, x, y)
		want := laneOracle(n, func(i int) float64 { return ref[i] * y[i] })
		got := AXPYDot(dst, alpha, x, y)
		for i := range dst {
			if math.Float64bits(dst[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("n=%d: dst[%d] SIMD %x != generic %x", n, i, math.Float64bits(dst[i]), math.Float64bits(ref[i]))
			}
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("n=%d: AXPYDot reduction %x != oracle %x", n, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestAXPY2SIMD(t *testing.T) {
	requireSIMD(t)
	const alpha = 0.8125
	for _, n := range simdSizes {
		x, r := simdVec(uint64(n)+11, n), simdVec(uint64(n)+12, n)
		p, ap := simdVec(uint64(n)+13, n), simdVec(uint64(n)+14, n)
		xr, rr := append([]float64(nil), x...), append([]float64(nil), r...)
		axpy2Generic(xr, rr, alpha, p, ap)
		want := laneOracle(n, func(i int) float64 { return rr[i] * rr[i] })
		got := AXPY2(x, r, alpha, p, ap)
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(xr[i]) || math.Float64bits(r[i]) != math.Float64bits(rr[i]) {
				t.Fatalf("n=%d: updated vectors differ from generic at %d", n, i)
			}
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("n=%d: AXPY2 reduction %x != oracle %x", n, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// Pure element-wise kernels must be bit-identical between SIMD and generic
// for every length, including signed zeros.
func TestAXPYPairAndXPBYIntoBitIdentical(t *testing.T) {
	requireSIMD(t)
	const alpha, beta = 2.5, -0.3125
	for _, n := range simdSizes {
		dst := simdVec(uint64(n)+15, n)
		x, y := simdVec(uint64(n)+16, n), simdVec(uint64(n)+17, n)
		if n > 2 {
			dst[1], x[1], y[1] = math.Copysign(0, -1), 0, math.Copysign(0, -1)
		}
		ref := append([]float64(nil), dst...)
		axpyPairGeneric(ref, alpha, x, beta, y)
		AXPYPair(dst, alpha, x, beta, y)
		for i := range dst {
			if math.Float64bits(dst[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("n=%d: AXPYPair dst[%d] %x != %x", n, i, math.Float64bits(dst[i]), math.Float64bits(ref[i]))
			}
		}

		dst2 := simdVec(uint64(n)+18, n)
		x2 := simdVec(uint64(n)+19, n)
		ref2 := append([]float64(nil), dst2...)
		xpbyIntoGeneric(ref2, x2, beta)
		XPBYInto(dst2, x2, beta)
		for i := range dst2 {
			if math.Float64bits(dst2[i]) != math.Float64bits(ref2[i]) {
				t.Fatalf("n=%d: XPBYInto dst[%d] differs", n, i)
			}
		}
	}
}

// With SIMD forced off, the exported kernels must be the generic bodies
// exactly — the fallback path is not allowed to drift.
func TestDisabledSIMDMatchesGenericExactly(t *testing.T) {
	withSIMD(t, false)
	for _, n := range []int{0, 5, 257} {
		a, b := simdVec(uint64(n)+20, n), simdVec(uint64(n)+21, n)
		if math.Float64bits(Dot(a, b)) != math.Float64bits(dotGeneric(a, b)) {
			t.Fatalf("n=%d: disabled Dot differs from generic", n)
		}
		ab1, bb1 := DotNorm(a, b)
		ab2, bb2 := dotNormGeneric(a, b)
		if ab1 != ab2 || bb1 != bb2 {
			t.Fatalf("n=%d: disabled DotNorm differs from generic", n)
		}
	}
}
