package vecmath

import (
	"testing"
	"testing/quick"
)

// The fused kernels promise bit-for-bit agreement with the unfused
// compositions they replace: element-wise expressions are identical and
// reductions accumulate in the same ascending order. These fuzz-style
// property tests pin that across random lengths and contents (including
// zeros, denormal-ish magnitudes, and sign mixes from the generator).

// fvec derives a deterministic pseudo-random vector from a seed.
func fvec(seed uint64, n int) []float64 {
	r := NewRNG(seed)
	v := make([]float64, n)
	r.FillNormal(v)
	// Sprinkle exact zeros and huge/tiny magnitudes.
	for i := 0; i < n; i += 7 {
		v[i] = 0
	}
	for i := 3; i < n; i += 11 {
		v[i] *= 1e150
	}
	for i := 5; i < n; i += 13 {
		v[i] *= 1e-150
	}
	return v
}

func quickCfg() *quick.Config { return &quick.Config{MaxCount: 60} }

func TestAXPYDotMatchesUnfused(t *testing.T) {
	f := func(seed uint64, szRaw uint8, alpha float64) bool {
		n := int(szRaw)%257 + 1
		dst0 := fvec(seed, n)
		x := fvec(seed+1, n)
		y := fvec(seed+2, n)

		fused := append([]float64(nil), dst0...)
		got := AXPYDot(fused, alpha, x, y)

		unfused := append([]float64(nil), dst0...)
		AXPY(unfused, alpha, x)
		want := Dot(unfused, y)

		for i := range fused {
			if fused[i] != unfused[i] {
				return false
			}
		}
		return got == want || (got != got && want != want) // NaN == NaN
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestAXPY2MatchesUnfused(t *testing.T) {
	f := func(seed uint64, szRaw uint8, alpha float64) bool {
		n := int(szRaw)%257 + 1
		x0, r0 := fvec(seed, n), fvec(seed+1, n)
		p, ap := fvec(seed+2, n), fvec(seed+3, n)

		x1 := append([]float64(nil), x0...)
		r1 := append([]float64(nil), r0...)
		got := AXPY2(x1, r1, alpha, p, ap)

		x2 := append([]float64(nil), x0...)
		r2 := append([]float64(nil), r0...)
		AXPY(x2, alpha, p)
		AXPY(r2, -alpha, ap)
		want := Dot(r2, r2)

		for i := range x1 {
			if x1[i] != x2[i] || r1[i] != r2[i] {
				return false
			}
		}
		return got == want || (got != got && want != want)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestAXPYPairMatchesUnfused(t *testing.T) {
	f := func(seed uint64, szRaw uint8, alpha, beta float64) bool {
		n := int(szRaw)%257 + 1
		dst0 := fvec(seed, n)
		x, y := fvec(seed+1, n), fvec(seed+2, n)

		fused := append([]float64(nil), dst0...)
		AXPYPair(fused, alpha, x, beta, y)

		// The fused expression is dst + (alpha*x + beta*y), which is NOT
		// the same rounding as two sequential AXPYs; compare against the
		// matching single-pass composition.
		for i := range fused {
			want := dst0[i] + (alpha*x[i] + beta*y[i])
			if fused[i] != want && !(fused[i] != fused[i] && want != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestXPBYIntoMatchesInlineLoop(t *testing.T) {
	f := func(seed uint64, szRaw uint8, beta float64) bool {
		n := int(szRaw)%257 + 1
		dst0 := fvec(seed, n)
		x := fvec(seed+1, n)

		fused := append([]float64(nil), dst0...)
		XPBYInto(fused, x, beta)
		for i := range fused {
			want := x[i] + beta*dst0[i] // the loop cg.go used to inline
			if fused[i] != want && !(fused[i] != fused[i] && want != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestDot2AndDotNormMatchUnfused(t *testing.T) {
	f := func(seed uint64, szRaw uint8) bool {
		n := int(szRaw)%257 + 1
		a, x, y := fvec(seed, n), fvec(seed+1, n), fvec(seed+2, n)

		ax, ay := Dot2(a, x, y)
		if ax != Dot(a, x) || ay != Dot(a, y) {
			return false
		}
		ab, bb := DotNorm(a, x)
		return ab == Dot(a, x) && bb == Dot(x, x)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFusedKernelPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AXPY2 must panic on length mismatch")
		}
	}()
	AXPY2(make([]float64, 3), make([]float64, 4), 1, make([]float64, 3), make([]float64, 3))
}
