//go:build !purego

// AVX2 bodies for the hot vecmath kernels. Shared rules (see generic.go for
// the full bit-level contract):
//
//   - NO FMA. Go never fuses float64 mul+add, so the generic bodies round
//     twice per multiply-add; VFMADD* rounds once and would break the
//     element-wise bit-identity between the SIMD and generic paths. Every
//     multiply-add here is an explicit VMULPD/VMULSD followed by
//     VADDPD/VSUBPD/VADDSD/VSUBSD.
//   - Reductions accumulate element i into lane i%4 of one YMM register
//     over the first len&^3 elements, reduce as (l0+l2)+(l1+l3) via
//     VEXTRACTF128+VADDPD+VHADDPD, then fold the scalar tail in ascending
//     order. simd_test.go pins this order with pure-Go lane oracles.
//   - Unaligned loads throughout (VMOVUPD); callers pass arbitrary slices.
//   - VZEROUPPER before every RET to avoid AVX/SSE transition stalls in
//     the surrounding Go code.

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
// Callers must have verified OSXSAVE first.
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotAVX2(a, b []float64) float64
TEXT ·dotAVX2(SB), NOSPLIT, $0-56
	MOVQ   a_base+0(FP), SI
	MOVQ   b_base+24(FP), DI
	MOVQ   a_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	MOVQ   CX, BX
	ANDQ   $-4, BX
	XORQ   AX, AX
	CMPQ   BX, $0
	JE     dotreduce

dotvec:
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD (DI)(AX*8), Y2
	VMULPD  Y2, Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ    $4, AX
	CMPQ    AX, BX
	JL      dotvec

dotreduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0

dottail:
	CMPQ   AX, CX
	JGE    dotdone
	VMOVSD (SI)(AX*8), X1
	VMULSD (DI)(AX*8), X1, X1
	VADDSD X1, X0, X0
	INCQ   AX
	JMP    dottail

dotdone:
	VMOVSD     X0, ret+48(FP)
	VZEROUPPER
	RET

// func axpyDotAVX2(dst []float64, alpha float64, x, y []float64) float64
// dst += alpha*x, then accumulate dot(dst', y).
TEXT ·axpyDotAVX2(SB), NOSPLIT, $0-88
	MOVQ         dst_base+0(FP), SI
	MOVQ         x_base+32(FP), DI
	MOVQ         y_base+56(FP), DX
	MOVQ         dst_len+8(FP), CX
	VBROADCASTSD alpha+24(FP), Y5
	VXORPD       Y0, Y0, Y0
	MOVQ         CX, BX
	ANDQ         $-4, BX
	XORQ         AX, AX
	CMPQ         BX, $0
	JE           adreduce

advec:
	VMOVUPD (DI)(AX*8), Y1
	VMULPD  Y5, Y1, Y1
	VMOVUPD (SI)(AX*8), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (SI)(AX*8)
	VMOVUPD (DX)(AX*8), Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  Y3, Y0, Y0
	ADDQ    $4, AX
	CMPQ    AX, BX
	JL      advec

adreduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0

adtail:
	CMPQ   AX, CX
	JGE    addone
	VMOVSD (DI)(AX*8), X1
	VMULSD X5, X1, X1
	VMOVSD (SI)(AX*8), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (SI)(AX*8)
	VMOVSD (DX)(AX*8), X3
	VMULSD X3, X2, X3
	VADDSD X3, X0, X0
	INCQ   AX
	JMP    adtail

addone:
	VMOVSD     X0, ret+80(FP)
	VZEROUPPER
	RET

// func axpy2AVX2(x, r []float64, alpha float64, p, ap []float64) float64
// x += alpha*p ; r -= alpha*ap ; accumulate dot(r', r').
TEXT ·axpy2AVX2(SB), NOSPLIT, $0-112
	MOVQ         x_base+0(FP), SI
	MOVQ         r_base+24(FP), DI
	MOVQ         p_base+56(FP), DX
	MOVQ         ap_base+80(FP), R8
	MOVQ         x_len+8(FP), CX
	VBROADCASTSD alpha+48(FP), Y5
	VXORPD       Y0, Y0, Y0
	MOVQ         CX, BX
	ANDQ         $-4, BX
	XORQ         AX, AX
	CMPQ         BX, $0
	JE           a2reduce

a2vec:
	VMOVUPD (DX)(AX*8), Y1
	VMULPD  Y5, Y1, Y1
	VMOVUPD (SI)(AX*8), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (SI)(AX*8)
	VMOVUPD (R8)(AX*8), Y3
	VMULPD  Y5, Y3, Y3
	VMOVUPD (DI)(AX*8), Y4
	VSUBPD  Y3, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	VMULPD  Y4, Y4, Y3
	VADDPD  Y3, Y0, Y0
	ADDQ    $4, AX
	CMPQ    AX, BX
	JL      a2vec

a2reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0

a2tail:
	CMPQ   AX, CX
	JGE    a2done
	VMOVSD (DX)(AX*8), X1
	VMULSD X5, X1, X1
	VMOVSD (SI)(AX*8), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (SI)(AX*8)
	VMOVSD (R8)(AX*8), X3
	VMULSD X5, X3, X3
	VMOVSD (DI)(AX*8), X4
	VSUBSD X3, X4, X4
	VMOVSD X4, (DI)(AX*8)
	VMULSD X4, X4, X3
	VADDSD X3, X0, X0
	INCQ   AX
	JMP    a2tail

a2done:
	VMOVSD     X0, ret+104(FP)
	VZEROUPPER
	RET

// func axpyPairAVX2(dst []float64, alpha float64, x []float64, beta float64, y []float64)
// dst += alpha*x + beta*y.
TEXT ·axpyPairAVX2(SB), NOSPLIT, $0-88
	MOVQ         dst_base+0(FP), SI
	MOVQ         x_base+32(FP), DI
	MOVQ         y_base+64(FP), DX
	MOVQ         dst_len+8(FP), CX
	VBROADCASTSD alpha+24(FP), Y5
	VBROADCASTSD beta+56(FP), Y6
	MOVQ         CX, BX
	ANDQ         $-4, BX
	XORQ         AX, AX
	CMPQ         BX, $0
	JE           aptail

apvec:
	VMOVUPD (DI)(AX*8), Y1
	VMULPD  Y5, Y1, Y1
	VMOVUPD (DX)(AX*8), Y2
	VMULPD  Y6, Y2, Y2
	VADDPD  Y2, Y1, Y1
	VMOVUPD (SI)(AX*8), Y3
	VADDPD  Y1, Y3, Y3
	VMOVUPD Y3, (SI)(AX*8)
	ADDQ    $4, AX
	CMPQ    AX, BX
	JL      apvec

aptail:
	CMPQ   AX, CX
	JGE    apdone
	VMOVSD (DI)(AX*8), X1
	VMULSD X5, X1, X1
	VMOVSD (DX)(AX*8), X2
	VMULSD X6, X2, X2
	VADDSD X2, X1, X1
	VMOVSD (SI)(AX*8), X3
	VADDSD X1, X3, X3
	VMOVSD X3, (SI)(AX*8)
	INCQ   AX
	JMP    aptail

apdone:
	VZEROUPPER
	RET

// func xpbyIntoAVX2(dst, x []float64, beta float64)
// dst = x + beta*dst.
TEXT ·xpbyIntoAVX2(SB), NOSPLIT, $0-56
	MOVQ         dst_base+0(FP), SI
	MOVQ         x_base+24(FP), DI
	MOVQ         dst_len+8(FP), CX
	VBROADCASTSD beta+48(FP), Y5
	MOVQ         CX, BX
	ANDQ         $-4, BX
	XORQ         AX, AX
	CMPQ         BX, $0
	JE           xptail

xpvec:
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y5, Y1, Y1
	VMOVUPD (DI)(AX*8), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (SI)(AX*8)
	ADDQ    $4, AX
	CMPQ    AX, BX
	JL      xpvec

xptail:
	CMPQ   AX, CX
	JGE    xpdone
	VMOVSD (SI)(AX*8), X1
	VMULSD X5, X1, X1
	VMOVSD (DI)(AX*8), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (SI)(AX*8)
	INCQ   AX
	JMP    xptail

xpdone:
	VZEROUPPER
	RET

// func dot2AVX2(a, x, y []float64) (ax, ay float64)
TEXT ·dot2AVX2(SB), NOSPLIT, $0-88
	MOVQ   a_base+0(FP), SI
	MOVQ   x_base+24(FP), DI
	MOVQ   y_base+48(FP), DX
	MOVQ   a_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   CX, BX
	ANDQ   $-4, BX
	XORQ   AX, AX
	CMPQ   BX, $0
	JE     d2reduce

d2vec:
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD (DI)(AX*8), Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  Y3, Y0, Y0
	VMOVUPD (DX)(AX*8), Y4
	VMULPD  Y4, Y2, Y4
	VADDPD  Y4, Y1, Y1
	ADDQ    $4, AX
	CMPQ    AX, BX
	JL      d2vec

d2reduce:
	VEXTRACTF128 $1, Y0, X2
	VADDPD       X2, X0, X0
	VHADDPD      X0, X0, X0
	VEXTRACTF128 $1, Y1, X2
	VADDPD       X2, X1, X1
	VHADDPD      X1, X1, X1

d2tail:
	CMPQ   AX, CX
	JGE    d2done
	VMOVSD (SI)(AX*8), X2
	VMOVSD (DI)(AX*8), X3
	VMULSD X3, X2, X3
	VADDSD X3, X0, X0
	VMOVSD (DX)(AX*8), X3
	VMULSD X3, X2, X3
	VADDSD X3, X1, X1
	INCQ   AX
	JMP    d2tail

d2done:
	VMOVSD     X0, ax+72(FP)
	VMOVSD     X1, ay+80(FP)
	VZEROUPPER
	RET

// func dotNormAVX2(a, b []float64) (ab, bb float64)
TEXT ·dotNormAVX2(SB), NOSPLIT, $0-64
	MOVQ   a_base+0(FP), SI
	MOVQ   b_base+24(FP), DI
	MOVQ   a_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   CX, BX
	ANDQ   $-4, BX
	XORQ   AX, AX
	CMPQ   BX, $0
	JE     dnreduce

dnvec:
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD (DI)(AX*8), Y3
	VMULPD  Y3, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMULPD  Y3, Y3, Y3
	VADDPD  Y3, Y1, Y1
	ADDQ    $4, AX
	CMPQ    AX, BX
	JL      dnvec

dnreduce:
	VEXTRACTF128 $1, Y0, X2
	VADDPD       X2, X0, X0
	VHADDPD      X0, X0, X0
	VEXTRACTF128 $1, Y1, X2
	VADDPD       X2, X1, X1
	VHADDPD      X1, X1, X1

dntail:
	CMPQ   AX, CX
	JGE    dndone
	VMOVSD (SI)(AX*8), X2
	VMOVSD (DI)(AX*8), X3
	VMULSD X3, X2, X2
	VADDSD X2, X0, X0
	VMULSD X3, X3, X3
	VADDSD X3, X1, X1
	INCQ   AX
	JMP    dntail

dndone:
	VMOVSD     X0, ab+48(FP)
	VMOVSD     X1, bb+56(FP)
	VZEROUPPER
	RET
