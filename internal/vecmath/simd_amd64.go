//go:build amd64 && !purego

package vecmath

// amd64 dispatch: route each kernel body to the AVX2 assembly when the CPU
// supports it and SetSIMD has not turned it off. The atomic load is a plain
// MOV on amd64 — noise next to even the smallest kernel invocation. The
// assembly handles every length (including n < 4) with a scalar tail whose
// accumulation order matches the documented lane contract in generic.go.
var simdSupported = cpuHasAVX2()

// cpuHasAVX2 probes CPUID directly (no dependency on x/sys): AVX2 needs
// the instruction set bit (leaf 7 EBX[5]) plus AVX and OSXSAVE (leaf 1
// ECX[28], ECX[27]) plus OS-enabled XMM|YMM state (XCR0 bits 1 and 2) —
// without the XGETBV check, YMM registers would fault on kernels the CPU
// nominally supports.
func cpuHasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

//go:noescape
func dotAVX2(a, b []float64) float64

//go:noescape
func axpyDotAVX2(dst []float64, alpha float64, x, y []float64) float64

//go:noescape
func axpy2AVX2(x, r []float64, alpha float64, p, ap []float64) float64

//go:noescape
func axpyPairAVX2(dst []float64, alpha float64, x []float64, beta float64, y []float64)

//go:noescape
func xpbyIntoAVX2(dst, x []float64, beta float64)

//go:noescape
func dot2AVX2(a, x, y []float64) (ax, ay float64)

//go:noescape
func dotNormAVX2(a, b []float64) (ab, bb float64)

func dotBody(a, b []float64) float64 {
	if simdActive.Load() {
		return dotAVX2(a, b)
	}
	return dotGeneric(a, b)
}

func axpyDotBody(dst []float64, alpha float64, x, y []float64) float64 {
	if simdActive.Load() {
		return axpyDotAVX2(dst, alpha, x, y)
	}
	return axpyDotGeneric(dst, alpha, x, y)
}

func axpy2Body(x, r []float64, alpha float64, p, ap []float64) float64 {
	if simdActive.Load() {
		return axpy2AVX2(x, r, alpha, p, ap)
	}
	return axpy2Generic(x, r, alpha, p, ap)
}

func axpyPairBody(dst []float64, alpha float64, x []float64, beta float64, y []float64) {
	if simdActive.Load() {
		axpyPairAVX2(dst, alpha, x, beta, y)
		return
	}
	axpyPairGeneric(dst, alpha, x, beta, y)
}

func xpbyIntoBody(dst, x []float64, beta float64) {
	if simdActive.Load() {
		xpbyIntoAVX2(dst, x, beta)
		return
	}
	xpbyIntoGeneric(dst, x, beta)
}

func dot2Body(a, x, y []float64) (ax, ay float64) {
	if simdActive.Load() {
		return dot2AVX2(a, x, y)
	}
	return dot2Generic(a, x, y)
}

func dotNormBody(a, b []float64) (ab, bb float64) {
	if simdActive.Load() {
		return dotNormAVX2(a, b)
	}
	return dotNormGeneric(a, b)
}
