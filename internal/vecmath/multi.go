package vecmath

import "fmt"

// Multi-vector kernels: column-wise application of the fused single-vector
// kernels above to a block of vectors. Each column keeps its own independent
// accumulator and is processed in ascending index order, so column j of a
// multi kernel is bit-identical to the corresponding single-vector kernel on
// column j alone — the property the blocked conjugate-gradient solvers rely
// on for their width-1 ≡ CG and masked ≡ independent guarantees. The win is
// not fewer memory passes (columns are distinct vectors) but one call — and,
// in the pooled variants in internal/kernel, one fork-join dispatch — per
// block instead of one per column.

func checkWidths(kernel string, b int, blocks ...[][]float64) {
	for _, blk := range blocks {
		if len(blk) != b {
			panic(fmt.Sprintf("vecmath: %s block width mismatch %d != %d", kernel, len(blk), b))
		}
	}
}

// DotMulti computes out[j] = Dot(a[j], b[j]) for every column.
func DotMulti(a, b [][]float64, out []float64) {
	checkWidths("DotMulti", len(a), b)
	for j := range a {
		out[j] = Dot(a[j], b[j])
	}
}

// DotNormMulti computes outAB[j], outBB[j] = DotNorm(a[j], b[j]) — the
// preconditioned inner product and squared residual norm every column of a
// blocked CG needs at entry.
func DotNormMulti(a, b [][]float64, outAB, outBB []float64) {
	checkWidths("DotNormMulti", len(a), b)
	for j := range a {
		outAB[j], outBB[j] = DotNorm(a[j], b[j])
	}
}

// Dot2Multi computes outAX[j], outAY[j] = Dot2(a[j], x[j], y[j]) — the
// paired products the blocked flexible CG's Polak-Ribiere beta needs.
func Dot2Multi(a, x, y [][]float64, outAX, outAY []float64) {
	checkWidths("Dot2Multi", len(a), x, y)
	for j := range a {
		outAX[j], outAY[j] = Dot2(a[j], x[j], y[j])
	}
}

// AXPY2Multi performs the paired CG update x[j] += alpha[j]*p[j],
// r[j] -= alpha[j]*ap[j] per column and writes the squared norm of each
// updated residual into outRnSq.
func AXPY2Multi(x, r [][]float64, alpha []float64, p, ap [][]float64, outRnSq []float64) {
	checkWidths("AXPY2Multi", len(x), r, p, ap)
	for j := range x {
		outRnSq[j] = AXPY2(x[j], r[j], alpha[j], p[j], ap[j])
	}
}

// XPBYIntoMulti computes dst[j] = x[j] + beta[j]*dst[j] per column (the CG
// search-direction update across a block).
func XPBYIntoMulti(dst, x [][]float64, beta []float64) {
	checkWidths("XPBYIntoMulti", len(dst), x)
	for j := range dst {
		XPBYInto(dst[j], x[j], beta[j])
	}
}
