package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{-7, 3, 5}); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Fatalf("NormInf(nil) = %v, want 0", got)
	}
}

func TestScaleAXPY(t *testing.T) {
	v := []float64{1, 2}
	Scale(v, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Fatalf("Scale gave %v", v)
	}
	AXPY(v, 2, []float64{1, 1})
	if v[0] != 5 || v[1] != 8 {
		t.Fatalf("AXPY gave %v", v)
	}
}

func TestSubAddSum(t *testing.T) {
	a := []float64{5, 7}
	b := []float64{2, 3}
	dst := make([]float64, 2)
	Sub(dst, a, b)
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Sub gave %v", dst)
	}
	Add(dst, a, b)
	if dst[0] != 7 || dst[1] != 10 {
		t.Fatalf("Add gave %v", dst)
	}
	if Sum(a) != 12 {
		t.Fatalf("Sum gave %v", Sum(a))
	}
}

func TestCenterMean(t *testing.T) {
	v := []float64{1, 2, 3, 6}
	CenterMean(v)
	if !almostEqual(Sum(v), 0, 1e-12) {
		t.Fatalf("CenterMean left sum %v", Sum(v))
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if n != 5 {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if !almostEqual(Norm2(v), 1, 1e-12) {
		t.Fatalf("normalized norm %v", Norm2(v))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
}

func TestBasis(t *testing.T) {
	v := make([]float64, 4)
	Basis(v, 1, 3)
	want := []float64{0, 1, 0, -1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Basis gave %v", v)
		}
	}
}

func TestFillZeroMean(t *testing.T) {
	v := make([]float64, 3)
	Fill(v, 2.5)
	if Mean(v) != 2.5 {
		t.Fatalf("Mean gave %v", Mean(v))
	}
	Zero(v)
	if Sum(v) != 0 {
		t.Fatalf("Zero left %v", v)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}

// Property: Cauchy-Schwarz |a.b| <= |a||b| holds for random vectors.
func TestDotCauchySchwarzProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological float inputs
			}
		}
		lhs := math.Abs(Dot(a, b))
		rhs := Norm2(a) * Norm2(b)
		return lhs <= rhs*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CenterMean is idempotent and makes the vector orthogonal to ones.
func TestCenterMeanProperty(t *testing.T) {
	f := func(v []float64) bool {
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		w := append([]float64{}, v...)
		CenterMean(w)
		scale := NormInf(w) + 1
		if math.Abs(Sum(w)) > 1e-9*scale*float64(len(w)+1) {
			return false
		}
		w2 := append([]float64{}, w...)
		CenterMean(w2)
		for i := range w {
			if math.Abs(w[i]-w2[i]) > 1e-9*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Intn(5)]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(5) badly skewed: value %d seen %d times", v, c)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGRademacher(t *testing.T) {
	r := NewRNG(5)
	v := make([]float64, 1000)
	r.FillRademacher(v)
	for _, x := range v {
		if x != 1 && x != -1 {
			t.Fatalf("Rademacher entry %v", x)
		}
	}
}

func TestRNGShuffle(t *testing.T) {
	r := NewRNG(9)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int{}, v...)
	r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := make(map[int]bool)
	for _, x := range v {
		seen[x] = true
	}
	if len(seen) != len(orig) {
		t.Fatalf("Shuffle lost elements: %v", v)
	}
}
