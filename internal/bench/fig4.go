package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"ingrass/internal/core"
	"ingrass/internal/gen"
	"ingrass/internal/grass"
)

// Fig4Point is one x-position of the paper's Fig. 4 runtime-scalability
// plot: total GRASS re-run time vs total inGRASS update time (and the
// update time including the one-time setup) across the iteration stream.
type Fig4Point struct {
	Name   string
	Nodes  int
	Edges  int
	GrassT time.Duration
	// InGrassT excludes setup; InGrassTotalT includes it (the paper plots
	// both series).
	InGrassT      time.Duration
	InGrassTotalT time.Duration
	Speedup       float64
}

// RunFig4 executes the scalability sweep over the given test cases
// (typically the Delaunay family in increasing size).
func RunFig4(names []string, p Params) ([]Fig4Point, error) {
	p = p.WithDefaults()
	points := make([]Fig4Point, 0, len(names))
	for _, name := range names {
		g0, err := buildCase(name, p)
		if err != nil {
			return nil, err
		}
		e0 := g0.NumEdges()
		pt := Fig4Point{Name: name, Nodes: g0.NumNodes(), Edges: e0}

		init, err := grass.Sparsify(g0, grassConfig(p.InitialDensity, p.Seed))
		if err != nil {
			return nil, err
		}
		streamCount := int((p.FinalDensity - p.InitialDensity) * float64(e0))
		if streamCount < p.Iterations {
			streamCount = p.Iterations
		}
		batches, err := gen.Stream(g0, gen.StreamConfig{
			Kind:      gen.StreamLocal,
			HopRadius: 10,
			WeightHi:  3,
			Count:     streamCount,
			Batches:   p.Iterations,
			Seed:      p.Seed + 0xA3,
		})
		if err != nil {
			return nil, err
		}

		// inGRASS: setup once, update per batch.
		gIn := g0.Clone()
		hIn := init.H.Clone()
		var sp *core.Sparsifier
		setupT, err := timeIt(func() error {
			sp, err = core.NewSparsifier(gIn, hIn, coreConfig(100, p))
			return err
		})
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			dt, err := timeIt(func() error {
				_, err := sp.UpdateBatch(b)
				return err
			})
			if err != nil {
				return nil, err
			}
			pt.InGrassT += dt
		}
		pt.InGrassTotalT = pt.InGrassT + setupT

		// GRASS: re-run per batch on the growing graph.
		gGrass := g0.Clone()
		for _, b := range batches {
			for _, e := range b {
				gGrass.AddEdge(e.U, e.V, e.W)
			}
			dt, err := timeIt(func() error {
				_, err := grass.Sparsify(gGrass, grassConfig(p.InitialDensity, p.Seed))
				return err
			})
			if err != nil {
				return nil, err
			}
			pt.GrassT += dt
		}
		if pt.InGrassT > 0 {
			pt.Speedup = float64(pt.GrassT) / float64(pt.InGrassT)
		}
		points = append(points, pt)
	}
	return points, nil
}

// FormatFig4 renders the scalability series as an aligned table plus an
// ASCII log-scale bar chart (the paper's Fig. 4 is a log-scale plot).
func FormatFig4(points []Fig4Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %12s %12s %14s %8s\n",
		"Test Case", "|V|", "|E|", "GRASS-T", "inGRASS-T", "inGRASS+setup", "Speedup")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s %10d %10d %11.3fs %11.4fs %13.3fs %7.1fx\n",
			p.Name, p.Nodes, p.Edges, p.GrassT.Seconds(), p.InGrassT.Seconds(),
			p.InGrassTotalT.Seconds(), p.Speedup)
	}
	b.WriteString("\nlog10(seconds), each column one test case: G=GRASS, i=inGRASS, +=inGRASS+setup\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s G %s\n", p.Name, logBar(p.GrassT))
		fmt.Fprintf(&b, "%-14s i %s\n", "", logBar(p.InGrassT))
		fmt.Fprintf(&b, "%-14s + %s\n", "", logBar(p.InGrassTotalT))
	}
	return b.String()
}

// logBar renders a duration as a bar of '#' proportional to
// log10(duration/1ms), clamped to [0, 60] columns.
func logBar(d time.Duration) string {
	ms := d.Seconds() * 1000
	if ms < 1 {
		ms = 1
	}
	n := int(10 * math.Log10(ms))
	if n < 1 {
		n = 1
	}
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}
