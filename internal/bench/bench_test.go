package bench

import (
	"strings"
	"testing"
)

// Tiny-scale smoke runs: the harness must produce structurally sane rows
// quickly. Shape assertions are deliberately lenient — tiny graphs are
// noisy — with the real shape checks recorded in EXPERIMENTS.md at scale 1.
func tinyParams() Params {
	return Params{
		Scale:      0.01,
		Seed:       1,
		Iterations: 3,
		CondIters:  25,
		CondTol:    1e-2,
	}.WithDefaults()
}

func TestRunTable1Smoke(t *testing.T) {
	rows, err := RunTable1([]string{"g2_circuit", "fe_4elt2"}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Nodes <= 0 || r.Edges <= 0 {
			t.Fatalf("bad sizes %+v", r)
		}
		if r.GrassT <= 0 || r.SetupT <= 0 {
			t.Fatalf("missing timings %+v", r)
		}
		if r.SetupErr != "" {
			t.Fatalf("setup failed: %s", r.SetupErr)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "g2_circuit") || !strings.Contains(out, "Setup") {
		t.Fatalf("format output wrong:\n%s", out)
	}
}

func TestRunTable1UnknownCase(t *testing.T) {
	if _, err := RunTable1([]string{"nope"}, tinyParams()); err == nil {
		t.Fatal("expected unknown-case error")
	}
}

func TestRunTable2Smoke(t *testing.T) {
	rows, err := RunTable2([]string{"fe_4elt2"}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Kappa0 <= 0 {
		t.Fatalf("kappa0 %v", r.Kappa0)
	}
	// Drift must not make things better.
	if r.KappaDrift < r.Kappa0*0.8 {
		t.Fatalf("frozen sparsifier cannot improve: %v -> %v", r.Kappa0, r.KappaDrift)
	}
	if r.D0 <= 0 || r.DFull <= r.D0 {
		t.Fatalf("density evolution wrong: %v -> %v", r.D0, r.DFull)
	}
	if r.InGrassD <= 0 || r.InGrassD > r.DFull {
		t.Fatalf("inGRASS density %v outside (0, %v]", r.InGrassD, r.DFull)
	}
	if r.GrassT <= 0 || r.InGrassT <= 0 || r.SetupT <= 0 {
		t.Fatalf("timings missing: %+v", r)
	}
	// The headline claim, held even at tiny scale: updating is much faster
	// than re-running.
	if r.Speedup <= 1 {
		t.Fatalf("speedup %v <= 1", r.Speedup)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "fe_4elt2") {
		t.Fatalf("format wrong:\n%s", out)
	}
}

func TestRunTable3Smoke(t *testing.T) {
	rows, err := RunTable3("g2_circuit", []float64{0.12, 0.07}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	// Lower initial density => larger (worse) initial kappa, usually.
	if rows[1].Kappa0 < rows[0].Kappa0*0.5 {
		t.Fatalf("kappa ordering very wrong: %v vs %v", rows[0].Kappa0, rows[1].Kappa0)
	}
	for _, r := range rows {
		if r.InGrassD <= 0 || r.GrassD <= 0 {
			t.Fatalf("missing densities %+v", r)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "GRASS-D") {
		t.Fatalf("format wrong:\n%s", out)
	}
}

func TestRunFig4Smoke(t *testing.T) {
	points, err := RunFig4([]string{"delaunay_n14", "delaunay_n15"}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %d", len(points))
	}
	for _, pt := range points {
		if pt.Speedup <= 1 {
			t.Fatalf("speedup %v <= 1 at %s", pt.Speedup, pt.Name)
		}
		if pt.InGrassTotalT <= pt.InGrassT {
			t.Fatal("total must include setup")
		}
	}
	out := FormatFig4(points)
	if !strings.Contains(out, "#") || !strings.Contains(out, "Speedup") {
		t.Fatalf("format wrong:\n%s", out)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.Scale != 1 || p.InitialDensity != 0.10 || p.FinalDensity != 0.34 || p.Iterations != 10 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	p2 := Params{Scale: 2, Iterations: 5}.WithDefaults()
	if p2.Scale != 2 || p2.Iterations != 5 {
		t.Fatalf("explicit values overridden: %+v", p2)
	}
}
