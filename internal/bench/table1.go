package bench

import (
	"fmt"
	"strings"
	"time"

	"ingrass/internal/core"
	"ingrass/internal/grass"
)

// Table1Row compares one GRASS from-scratch sparsification against one
// inGRASS setup (LRD decomposition + sketch) on the same graph — the
// paper's Table I.
type Table1Row struct {
	Name     string
	Nodes    int
	Edges    int
	GrassT   time.Duration // full sparsification from scratch
	SetupT   time.Duration // inGRASS one-time setup over H(0)
	SetupErr string        // non-empty if the setup failed
}

// RunTable1 executes the Table I experiment for the given test cases.
func RunTable1(names []string, p Params) ([]Table1Row, error) {
	p = p.WithDefaults()
	rows := make([]Table1Row, 0, len(names))
	for _, name := range names {
		g, err := buildCase(name, p)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges()}

		var init *grass.Result
		row.GrassT, err = timeIt(func() error {
			init, err = grass.Sparsify(g, grassConfig(p.InitialDensity, p.Seed))
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: GRASS on %s: %w", name, err)
		}

		row.SetupT, err = timeIt(func() error {
			_, err := core.NewSparsifier(g, init.H, coreConfig(100, p))
			return err
		})
		if err != nil {
			row.SetupErr = err.Error()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders rows like the paper's Table I.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %12s %12s\n", "Test Case", "|V|", "|E|", "GRASS (s)", "Setup (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10d %10d %12.3f %12.3f", r.Name, r.Nodes, r.Edges,
			r.GrassT.Seconds(), r.SetupT.Seconds())
		if r.SetupErr != "" {
			fmt.Fprintf(&b, "  ! %s", r.SetupErr)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
