package bench

import (
	"fmt"
	"strings"
	"time"

	"ingrass/internal/core"
	"ingrass/internal/gen"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/vecmath"
)

// Table2Row is one row of the paper's Table II: a 10-iteration incremental
// sparsification comparison between GRASS re-runs, inGRASS updates, and
// random edge inclusion, all tuned to the same target condition number.
type Table2Row struct {
	Name string
	// Density evolution: initial sparsifier density and the density H would
	// reach if every streamed edge were included.
	D0, DFull float64
	// Kappa0 is kappa(G(0), H(0)) — also the target; KappaDrift is the
	// kappa against the final G when H is left frozen (the paper's
	// "kappa(LG, LH)" drift column).
	Kappa0, KappaDrift float64
	// Final densities each method needs to restore the target kappa.
	GrassD, InGrassD, RandomD float64
	// KappaIn is the updated sparsifier's final kappa (quality check).
	KappaIn float64
	// Times: GRASS re-run total across iterations, inGRASS update total
	// (excluding setup), and the one-time setup.
	GrassT, InGrassT, SetupT time.Duration
	// Speedup = GrassT / InGrassT.
	Speedup float64
}

// RunTable2 executes the Table II experiment for the given test cases.
func RunTable2(names []string, p Params) ([]Table2Row, error) {
	p = p.WithDefaults()
	rows := make([]Table2Row, 0, len(names))
	for _, name := range names {
		row, err := runTable2Case(name, p)
		if err != nil {
			return nil, fmt.Errorf("bench: table 2 case %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runTable2Case(name string, p Params) (Table2Row, error) {
	g0, err := buildCase(name, p)
	if err != nil {
		return Table2Row{}, err
	}
	e0 := g0.NumEdges()
	row := Table2Row{Name: name}

	// Initial sparsifier H(0) at the paper's 10% density.
	init, err := grass.Sparsify(g0, grassConfig(p.InitialDensity, p.Seed))
	if err != nil {
		return row, err
	}
	h0 := init.H
	row.D0 = graph.OffTreeDensity(h0.NumEdges(), g0.NumNodes(), e0)

	// Target condition number := initial kappa (paper's protocol).
	row.Kappa0 = p.kappa(g0, h0)
	target := row.Kappa0
	if target <= 0 {
		target = 100
	}

	// Edge stream raising density from InitialDensity to FinalDensity.
	streamCount := int((p.FinalDensity - p.InitialDensity) * float64(e0))
	if streamCount < p.Iterations {
		streamCount = p.Iterations
	}
	batches, err := gen.Stream(g0, gen.StreamConfig{
		Kind:      gen.StreamLocal,
		HopRadius: 10,
		WeightHi:  3,
		Count:     streamCount,
		Batches:   p.Iterations,
		Seed:      p.Seed + 0x51,
	})
	if err != nil {
		return row, err
	}
	row.DFull = graph.OffTreeDensity(h0.NumEdges()+streamCount, g0.NumNodes(), e0+streamCount)

	// ---- inGRASS path ---------------------------------------------------
	gIn := g0.Clone()
	hIn := h0.Clone()
	var sp *core.Sparsifier
	row.SetupT, err = timeIt(func() error {
		sp, err = core.NewSparsifier(gIn, hIn, coreConfig(target, p))
		return err
	})
	if err != nil {
		return row, err
	}
	for _, batch := range batches {
		dt, err := timeIt(func() error {
			_, err := sp.UpdateBatch(batch)
			return err
		})
		if err != nil {
			return row, err
		}
		row.InGrassT += dt
	}
	eFinal := e0 + streamCount
	row.InGrassD = graph.OffTreeDensity(hIn.NumEdges(), gIn.NumNodes(), eFinal)
	row.KappaIn = p.kappa(gIn, hIn)

	// The fully-updated original graph (shared by the baselines).
	gFinal := gIn

	// Frozen-H drift: the paper's kappa column right-hand value.
	row.KappaDrift = p.kappa(gFinal, h0)

	// ---- GRASS-from-scratch path ---------------------------------------
	// First find the density GRASS needs on the final graph to restore the
	// target kappa (probing is not charged to GRASS-T, matching the paper's
	// use of GRASS as a tuned baseline).
	grassD := p.InitialDensity
	for {
		res, err := grass.Sparsify(gFinal, grassConfig(grassD, p.Seed))
		if err != nil {
			return row, err
		}
		k := p.kappa(gFinal, res.H)
		if (k > 0 && k <= target*1.05) || grassD >= p.FinalDensity {
			row.GrassD = graph.OffTreeDensity(res.H.NumEdges(), gFinal.NumNodes(), eFinal)
			break
		}
		grassD *= 1.2
	}
	// GRASS-T: re-sparsify from scratch after every batch, on the growing
	// graph, at the tuned density.
	gGrass := g0.Clone()
	for _, batch := range batches {
		for _, e := range batch {
			gGrass.AddEdge(e.U, e.V, e.W)
		}
		dt, err := timeIt(func() error {
			_, err := grass.Sparsify(gGrass, grassConfig(grassD, p.Seed))
			return err
		})
		if err != nil {
			return row, err
		}
		row.GrassT += dt
	}
	if row.InGrassT > 0 {
		row.Speedup = float64(row.GrassT) / float64(row.InGrassT)
	}

	// ---- Random baseline -------------------------------------------------
	// Include uniformly random subsets of the stream into H(0), growing the
	// fraction until the target kappa is restored.
	flat := make([]graph.Edge, 0, streamCount)
	for _, b := range batches {
		flat = append(flat, b...)
	}
	rng := vecmath.NewRNG(p.Seed + 0x77)
	perm := rng.Perm(len(flat))
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		hr := h0.Clone()
		take := int(frac * float64(len(flat)))
		for _, idx := range perm[:take] {
			e := flat[idx]
			hr.AddEdge(e.U, e.V, e.W)
		}
		k := p.kappa(gFinal, hr)
		row.RandomD = graph.OffTreeDensity(hr.NumEdges(), gFinal.NumNodes(), eFinal)
		if k > 0 && k <= target*1.05 {
			break
		}
	}
	return row, nil
}

// FormatTable2 renders rows like the paper's Table II.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %16s %8s %9s %8s %9s %10s %10s %8s\n",
		"Test Case", "Density(D)", "kappa(G,H)", "GRASS-D", "inGRASS-D", "Rand-D",
		"kappa-in", "GRASS-T", "inGRASS-T", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %5.1f%% -> %4.0f%% %7.0f -> %5.0f %7.1f%% %8.1f%% %7.1f%% %9.1f %9.3fs %9.4fs %7.1fx\n",
			r.Name, 100*r.D0, 100*r.DFull, r.Kappa0, r.KappaDrift,
			100*r.GrassD, 100*r.InGrassD, 100*r.RandomD, r.KappaIn,
			r.GrassT.Seconds(), r.InGrassT.Seconds(), r.Speedup)
	}
	return b.String()
}
