// Package bench is the experiment harness that regenerates the paper's
// evaluation artifacts — Table I (setup vs GRASS runtime), Table II
// (10-iteration incremental update comparison of GRASS / inGRASS / Random),
// Table III (robustness across initial densities), and Fig. 4 (runtime
// scalability) — on the synthetic benchmark families of internal/gen.
//
// The same runners back both cmd/experiments (full tables with condition
// numbers) and the root bench_test.go (testing.B timing rows).
package bench

import (
	"context"
	"fmt"
	"time"

	"ingrass/internal/cond"
	"ingrass/internal/core"
	"ingrass/internal/gen"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/solver"
)

// Params bundles the experiment knobs shared by all tables.
type Params struct {
	// Scale multiplies benchmark node counts (1.0 = laptop defaults).
	Scale float64
	// Seed drives all randomness.
	Seed uint64
	// InitialDensity is the off-tree density of H(0). Paper: 0.10.
	InitialDensity float64
	// FinalDensity is the density the stream would reach if every new edge
	// were included. Paper: ~0.34.
	FinalDensity float64
	// Iterations is the number of update batches. Paper: 10.
	Iterations int
	// CondIters / CondTol trade condition-number estimation accuracy for
	// speed.
	CondIters int
	CondTol   float64
	// Workers parallelizes inner kernels (0 = GOMAXPROCS).
	Workers int
}

// WithDefaults fills unset fields with the paper's settings.
func (p Params) WithDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.InitialDensity <= 0 {
		p.InitialDensity = 0.10
	}
	if p.FinalDensity <= 0 {
		p.FinalDensity = 0.34
	}
	if p.Iterations <= 0 {
		p.Iterations = 10
	}
	if p.CondIters <= 0 {
		p.CondIters = 40
	}
	if p.CondTol <= 0 {
		p.CondTol = 5e-3
	}
	return p
}

func (p Params) condOptions() cond.Options {
	return cond.Options{
		MaxIters: p.CondIters,
		Tol:      p.CondTol,
		Seed:     p.Seed,
		// The GRASS-line convention: kappa = lambda_max of the pencil (see
		// cond.Options.LambdaMaxOnly). The paper's tables use it.
		LambdaMaxOnly: true,
		// Loose inner solves: a table-grade kappa needs ~2 digits, and the
		// power iteration is self-correcting, so cap CG work tightly.
		Solver: solver.Options{Tol: 1e-5, MaxIter: 600, Workers: p.Workers},
	}
}

// kappa estimates kappa(G, H), returning NaN on failure rather than
// aborting a whole table.
func (p Params) kappa(g, h *graph.Graph) float64 {
	res, err := cond.Estimate(context.Background(), g, h, p.condOptions())
	if err != nil {
		return -1
	}
	return res.Kappa
}

// buildCase constructs the named benchmark graph.
func buildCase(name string, p Params) (*graph.Graph, error) {
	tc, err := gen.Lookup(name)
	if err != nil {
		return nil, err
	}
	g, err := tc.Build(p.Scale, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: building %s: %w", name, err)
	}
	return g, nil
}

// grassConfig is the from-scratch baseline configuration at a density.
func grassConfig(density float64, seed uint64) grass.Config {
	return grass.Config{
		TargetDensity:    density,
		Tree:             grass.TreeLowStretch,
		SimilarityFilter: true,
		Seed:             seed,
	}
}

// coreConfig is the inGRASS configuration for a condition target.
func coreConfig(target float64, p Params) core.Config {
	return core.Config{
		TargetCond: target,
		LRD: lrd.Config{
			Krylov: krylov.Config{Seed: p.Seed, Workers: p.Workers},
		},
	}
}

// timeIt runs f and returns its wall-clock duration.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}
