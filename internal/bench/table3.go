package bench

import (
	"fmt"
	"strings"

	"ingrass/internal/core"
	"ingrass/internal/gen"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
)

// Table3Row is one row of the paper's Table III: the G2_circuit-analog
// robustness study across initial sparsifier densities.
type Table3Row struct {
	D0, DFull          float64
	Kappa0, KappaDrift float64
	GrassD, InGrassD   float64
}

// RunTable3 executes the Table III experiment on the named test case
// (the paper uses the G2_circuit analog) across the given initial
// densities.
func RunTable3(name string, initialDensities []float64, p Params) ([]Table3Row, error) {
	p = p.WithDefaults()
	g0, err := buildCase(name, p)
	if err != nil {
		return nil, err
	}
	e0 := g0.NumEdges()

	// One shared stream sized for the paper's 32% full-inclusion density.
	streamCount := int((p.FinalDensity - 0.02) * float64(e0))
	batches, err := gen.Stream(g0, gen.StreamConfig{
		Kind:      gen.StreamLocal,
		HopRadius: 10,
		WeightHi:  3,
		Count:     streamCount,
		Batches:   p.Iterations,
		Seed:      p.Seed + 0x91,
	})
	if err != nil {
		return nil, err
	}
	gFinal := g0.Clone()
	for _, b := range batches {
		for _, e := range b {
			gFinal.AddEdge(e.U, e.V, e.W)
		}
	}
	eFinal := e0 + streamCount

	rows := make([]Table3Row, 0, len(initialDensities))
	for _, d0 := range initialDensities {
		init, err := grass.Sparsify(g0, grassConfig(d0, p.Seed))
		if err != nil {
			return nil, err
		}
		h0 := init.H
		row := Table3Row{
			D0:    graph.OffTreeDensity(h0.NumEdges(), g0.NumNodes(), e0),
			DFull: graph.OffTreeDensity(h0.NumEdges()+streamCount, g0.NumNodes(), eFinal),
		}
		row.Kappa0 = p.kappa(g0, h0)
		target := row.Kappa0
		if target <= 0 {
			target = 100
		}
		row.KappaDrift = p.kappa(gFinal, h0)

		// inGRASS updates.
		gIn := g0.Clone()
		hIn := h0.Clone()
		sp, err := core.NewSparsifier(gIn, hIn, coreConfig(target, p))
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			if _, err := sp.UpdateBatch(b); err != nil {
				return nil, err
			}
		}
		row.InGrassD = graph.OffTreeDensity(hIn.NumEdges(), gIn.NumNodes(), eFinal)

		// GRASS tuned on the final graph.
		grassD := d0
		for {
			res, err := grass.Sparsify(gFinal, grassConfig(grassD, p.Seed))
			if err != nil {
				return nil, err
			}
			k := p.kappa(gFinal, res.H)
			if (k > 0 && k <= target*1.05) || grassD >= p.FinalDensity {
				row.GrassD = graph.OffTreeDensity(res.H.NumEdges(), gFinal.NumNodes(), eFinal)
				break
			}
			grassD *= 1.2
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders rows like the paper's Table III.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%16s %18s %10s %11s\n", "Density (D)", "kappa(G,H)", "GRASS-D", "inGRASS-D")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.1f%% -> %4.0f%% %8.0f -> %5.0f %9.1f%% %10.1f%%\n",
			100*r.D0, 100*r.DFull, r.Kappa0, r.KappaDrift, 100*r.GrassD, 100*r.InGrassD)
	}
	return b.String()
}
