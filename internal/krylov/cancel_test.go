package krylov

import (
	"context"
	"errors"
	"testing"

	"ingrass/internal/solver"
	"ingrass/internal/sparse"
)

func TestLanczosCancelledBeforeStart(t *testing.T) {
	g := pathGraph(64)
	op := &sparse.ProjectedOperator{Inner: sparse.NewLapOperator(g)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Lanczos(ctx, op, 20, 1); !errors.Is(err, solver.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCancelled/context.Canceled, got %v", err)
	}
}

// cancelAfterOp cancels its context after a fixed number of applies, so the
// Lanczos loop observes cancellation mid-iteration.
type cancelAfterOp struct {
	inner  sparse.Operator
	cancel context.CancelFunc
	at     int
	count  int
}

func (c *cancelAfterOp) Dim() int { return c.inner.Dim() }

func (c *cancelAfterOp) Apply(dst, x []float64) {
	c.count++
	if c.count == c.at {
		c.cancel()
	}
	c.inner.Apply(dst, x)
}

func TestLanczosCancelMidIteration(t *testing.T) {
	g := pathGraph(128)
	inner := &sparse.ProjectedOperator{Inner: sparse.NewLapOperator(g)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	op := &cancelAfterOp{inner: inner, cancel: cancel, at: 3}
	_, err := Lanczos(ctx, op, 50, 1)
	if !errors.Is(err, solver.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	// The loop checks at the top of each step: at most one step after the
	// cancelling apply may run.
	if op.count > 4 {
		t.Fatalf("Lanczos ran %d applies past a cancel at apply 3", op.count)
	}
}
