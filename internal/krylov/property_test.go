package krylov

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

func randomConnected(seed uint64, n, extra int) *graph.Graph {
	r := vecmath.NewRNG(seed)
	g := graph.New(n, n+extra)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[r.Intn(i)], r.Range(0.1, 10))
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, r.Range(0.1, 10))
		}
	}
	return g
}

// Property: the embedded distance is a pseudo-metric — symmetric,
// non-negative, zero on the diagonal, triangle inequality (it is a squared
// Euclidean distance, so we check the sqrt form).
func TestEmbeddingPseudoMetricProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed, 25, 35)
		emb, err := NewEmbedding(g, Config{Seed: seed})
		if err != nil {
			return false
		}
		r := vecmath.NewRNG(seed ^ 0x31)
		for k := 0; k < 20; k++ {
			a, b, c := r.Intn(25), r.Intn(25), r.Intn(25)
			rab := emb.Resistance(a, b)
			if rab < 0 || rab != emb.Resistance(b, a) {
				return false
			}
			if a == b && rab != 0 {
				return false
			}
			// sqrt-triangle: d(a,c) <= d(a,b) + d(b,c) on the embedding.
			dab := math.Sqrt(rab)
			dbc := math.Sqrt(emb.Resistance(b, c))
			dac := math.Sqrt(emb.Resistance(a, c))
			if dac > dab+dbc+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the estimate never exceeds the exact resistance by much —
// Rayleigh-Ritz values over-estimate eigenvalues, so each term of Eq. (2)
// is damped; we assert a generous factor rather than exact domination.
func TestEmbeddingNoWildOvershootProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed, 20, 30)
		emb, err := NewEmbedding(g, Config{Seed: seed, Order: 16})
		if err != nil {
			return false
		}
		r := vecmath.NewRNG(seed ^ 0x91)
		// Conservative sanity: estimates stay finite and below the total
		// tree resistance (sum of all edge resistances), a crude universal
		// upper bound on any effective resistance in a connected graph.
		var totalRes float64
		for _, e := range g.Edges() {
			totalRes += 1 / e.W
		}
		for k := 0; k < 15; k++ {
			p, q := r.Intn(20), r.Intn(20)
			v := emb.Resistance(p, q)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			if v > 2*totalRes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lanczos Ritz values lie within the operator's spectral range
// for Laplacians (0 <= ritz <= 2*maxDegree by Gershgorin).
func TestLanczosRitzRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed, 20, 25)
		op := sparseProjected(g)
		res, err := Lanczos(context.Background(), op, 12, seed)
		if err != nil {
			return false
		}
		var maxDeg float64
		for v := 0; v < g.NumNodes(); v++ {
			if d := g.WeightedDegree(v); d > maxDeg {
				maxDeg = d
			}
		}
		lo, hi := res.ExtremeRitz()
		return lo >= -1e-9 && hi <= 2*maxDeg+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// sparseProjected builds the projected Laplacian operator used by the
// Lanczos property test.
func sparseProjected(g *graph.Graph) interface {
	Dim() int
	Apply(dst, x []float64)
} {
	return projectedLap{csr: graph.NewCSR(g)}
}

type projectedLap struct{ csr *graph.CSR }

func (p projectedLap) Dim() int { return p.csr.N }
func (p projectedLap) Apply(dst, x []float64) {
	p.csr.LapMul(dst, x)
	vecmath.CenterMean(dst)
}
