package krylov

import (
	"context"
	"fmt"

	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// LanczosResult holds the tridiagonal reduction produced by the Lanczos
// iteration and the derived Ritz values.
type LanczosResult struct {
	Alpha []float64 // diagonal of T, len k
	Beta  []float64 // off-diagonal of T, len k-1
	Ritz  []float64 // eigenvalues of T, ascending
}

// Lanczos runs k steps of the symmetric Lanczos iteration on op with full
// reorthogonalization (stable for the modest k used here), starting from a
// random vector orthogonal to the all-ones direction. The extreme Ritz
// values bound the extreme eigenvalues of op restricted to that subspace
// and converge to them rapidly; they feed the condition-number estimator.
//
// ctx is checked once per Lanczos step; a cancelled or expired context
// aborts with a solver.ErrCancelled-wrapped error.
func Lanczos(ctx context.Context, op sparse.Operator, k int, seed uint64) (*LanczosResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := op.Dim()
	if k <= 0 {
		return nil, fmt.Errorf("krylov: Lanczos order %d must be positive", k)
	}
	if k > n {
		k = n
	}
	rng := vecmath.NewRNG(seed)

	v := make([]float64, n)
	rng.FillNormal(v)
	vecmath.ProjectOutOnes(v)
	if vecmath.Normalize(v) == 0 {
		return nil, fmt.Errorf("krylov: start vector collapsed")
	}

	basis := make([][]float64, 0, k)
	alpha := make([]float64, 0, k)
	beta := make([]float64, 0, k)
	w := make([]float64, n)

	for j := 0; j < k; j++ {
		if err := solver.CheckCancel(ctx); err != nil {
			return nil, err
		}
		basis = append(basis, append([]float64(nil), v...))
		op.Apply(w, v)
		a := vecmath.Dot(v, w)
		alpha = append(alpha, a)
		// Three-term recurrence w -= a*v + beta_{j-1} * v_{j-1} in a single
		// fused pass, then full reorthogonalization with each projection's
		// AXPY folded into the next basis vector's dot product (AXPYDot):
		// the dominant O(k^2 n) reorthogonalization cost drops from two
		// passes per basis vector to one.
		if j > 0 {
			vecmath.AXPYPair(w, -a, v, -beta[j-1], basis[j-1])
		} else {
			vecmath.AXPY(w, -a, v)
		}
		c := vecmath.Dot(basis[0], w)
		for i := 0; i+1 < len(basis); i++ {
			c = vecmath.AXPYDot(w, -c, basis[i], basis[i+1])
		}
		vecmath.AXPY(w, -c, basis[len(basis)-1])
		vecmath.ProjectOutOnes(w)
		b := vecmath.Normalize(w)
		if b < 1e-12 {
			break // invariant subspace found
		}
		if j < k-1 {
			beta = append(beta, b)
		}
		copy(v, w)
	}

	m := len(alpha)
	t := vecmath.NewDense(m, m)
	for i := 0; i < m; i++ {
		t.Set(i, i, alpha[i])
		if i+1 < m && i < len(beta) {
			t.Set(i, i+1, beta[i])
			t.Set(i+1, i, beta[i])
		}
	}
	vals, _, err := vecmath.SymEig(t)
	if err != nil {
		return nil, err
	}
	return &LanczosResult{Alpha: alpha, Beta: beta, Ritz: vals}, nil
}

// ExtremeRitz returns the smallest and largest Ritz values.
func (r *LanczosResult) ExtremeRitz() (lo, hi float64) {
	if len(r.Ritz) == 0 {
		return 0, 0
	}
	return r.Ritz[0], r.Ritz[len(r.Ritz)-1]
}
