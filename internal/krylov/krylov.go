// Package krylov implements the scalable spectral machinery of the paper's
// setup phase: Krylov-subspace approximation of Laplacian eigenvectors
// (paper Eq. 3) used for fast effective-resistance estimation, plus a
// symmetric Lanczos iteration used for extreme-eigenvalue bounds.
//
// The resistance estimator never computes true eigenpairs. It builds an
// orthonormal basis u~_1..u~_m of the Krylov space of the (degree-
// normalized) adjacency operator, projects out the constant vector, and
// evaluates
//
//	R(p,q) ~= sum_i (u~_i' b_pq)^2 / (u~_i' L u~_i),
//
// which is Eq. (2) with Ritz vectors in place of eigenvectors. Per query
// the cost is O(m) with m = O(log N).
package krylov

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ingrass/internal/graph"
	"ingrass/internal/kernel"
	"ingrass/internal/vecmath"
)

// Config controls resistance-embedding construction.
type Config struct {
	// Order m is the Krylov subspace dimension. If 0, a default of
	// ceil(log2(N)) + 4 clamped to [8, 32] is used.
	Order int
	// Starts is the number of independent random start vectors whose Krylov
	// chains are concatenated before orthonormalization; more starts give a
	// richer subspace at proportional cost. Default 2.
	Starts int
	// Seed drives the deterministic RNG for start vectors.
	Seed uint64
	// Workers bounds the goroutines used for batch estimation; 0 means
	// GOMAXPROCS.
	Workers int
}

func (c Config) withDefaults(n int) Config {
	if c.Order == 0 {
		m := 4
		for s := n; s > 1; s >>= 1 {
			m++
		}
		if m < 8 {
			m = 8
		}
		if m > 32 {
			m = 32
		}
		c.Order = m
	}
	if c.Starts <= 0 {
		c.Starts = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Embedding is a per-node coordinate table in which squared Euclidean
// distance approximates effective resistance:
//
//	R(p,q) ~= || coord(p) - coord(q) ||^2.
//
// Coordinates are the Ritz vectors scaled by 1/sqrt(Rayleigh quotient).
type Embedding struct {
	N    int
	Dims int
	// coords is node-major: coords[v*Dims : (v+1)*Dims].
	coords []float64
}

// Coord returns node v's embedding row. Callers must not modify it.
func (e *Embedding) Coord(v int) []float64 {
	return e.coords[v*e.Dims : (v+1)*e.Dims]
}

// Resistance returns the embedded resistance estimate between p and q.
func (e *Embedding) Resistance(p, q int) float64 {
	if p == q {
		return 0
	}
	cp := e.Coord(p)
	cq := e.Coord(q)
	var s float64
	for i, a := range cp {
		d := a - cq[i]
		s += d * d
	}
	return s
}

// EstimateEdges evaluates the resistance estimate for each listed edge in
// parallel and returns the results in order.
func (e *Embedding) EstimateEdges(edges []graph.Edge, workers int) []float64 {
	out := make([]float64, len(edges))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(edges) < 1024 {
		for i, ed := range edges {
			out[i] = e.Resistance(ed.U, ed.V)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(edges) {
			break
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = e.Resistance(edges[i].U, edges[i].V)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// NewEmbedding builds the Krylov resistance embedding of g (paper setup
// phase 1). g must have at least one node; disconnected graphs are allowed
// (cross-component estimates are large but finite, which the LRD
// decomposition tolerates).
func NewEmbedding(g *graph.Graph, cfg Config) (*Embedding, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("krylov: empty graph")
	}
	cfg = cfg.withDefaults(n)
	csr := graph.NewCSR(g)
	rng := vecmath.NewRNG(cfg.Seed)

	// Setup-phase matrix products (the chain walks and the m Rayleigh-Ritz
	// Laplacian products) dispatch into the persistent kernel pool over an
	// nnz-balanced partition; both kernels are bit-identical to the serial
	// CSR products, so the embedding is deterministic for every Workers.
	kern := kernel.Shared(cfg.Workers)
	var part []int
	if kern != nil {
		part = csr.NNZPartition(kern.Workers())
	}

	// Lazy-walk application: dst = (x + D^{-1} A x) / 2. Power iterations
	// of this operator damp high-frequency (high Laplacian eigenvalue)
	// components, so the orthonormalized chain approximates the low end of
	// the Laplacian spectrum - the part that dominates Eq. (2). The lazy
	// 1/2 step keeps near-(-1) adjacency modes of bipartite graphs from
	// surviving the iteration.
	invDeg := make([]float64, n)
	for i, d := range csr.Degree {
		if d > 0 {
			invDeg[i] = 1 / d
		}
	}
	apply := func(dst, x []float64) {
		kern.AdjMul(csr, part, dst, x)
		for i := range dst {
			dst[i] = 0.5 * (x[i] + dst[i]*invDeg[i])
		}
	}

	perStart := (cfg.Order + cfg.Starts - 1) / cfg.Starts
	raw := make([][]float64, 0, cfg.Starts*perStart)
	cur := make([]float64, n)
	next := make([]float64, n)
	for s := 0; s < cfg.Starts; s++ {
		// A Rademacher draw can be constant on tiny graphs, which the
		// ones-projection annihilates; retry a few times before giving up
		// on this start.
		ok := false
		for attempt := 0; attempt < 8; attempt++ {
			rng.FillRademacher(cur)
			vecmath.ProjectOutOnes(cur)
			if vecmath.Normalize(cur) > 0 {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		for k := 0; k < perStart; k++ {
			raw = append(raw, append([]float64(nil), cur...))
			apply(next, cur)
			vecmath.ProjectOutOnes(next)
			if vecmath.Normalize(next) == 0 {
				break // chain collapsed (tiny graph)
			}
			cur, next = next, cur
		}
	}

	basis := vecmath.OrthonormalizeMGS(raw, 1e-9)
	if len(basis) == 0 && n >= 2 {
		// Deterministic fallback for degenerate tiny inputs: mean-centered
		// coordinate vectors span the whole complement of ones.
		lim := cfg.Order
		if lim > n-1 {
			lim = n - 1
		}
		raw = raw[:0]
		for i := 0; i < lim; i++ {
			v := make([]float64, n)
			v[i] = 1
			vecmath.ProjectOutOnes(v)
			raw = append(raw, v)
		}
		basis = vecmath.OrthonormalizeMGS(raw, 1e-9)
	}
	if len(basis) == 0 {
		return nil, fmt.Errorf("krylov: subspace collapsed (graph too small or degenerate)")
	}

	// Rayleigh-Ritz: project L into the subspace, T = Q' L Q, and
	// eigendecompose the small matrix. The Ritz pairs (theta_i, Q y_i) are
	// the subspace's best approximations to Laplacian eigenpairs, which is
	// what Eq. (2) actually consumes; using raw chain vectors instead
	// makes the sum basis-dependent and meaningless.
	m := len(basis)
	lq := make([][]float64, m)
	for j, q := range basis {
		lq[j] = make([]float64, n)
		kern.LapMul(csr, part, lq[j], q)
	}
	t := vecmath.NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := vecmath.Dot(basis[i], lq[j])
			t.Set(i, j, v)
			t.Set(j, i, v)
		}
	}
	theta, y, err := vecmath.SymEig(t)
	if err != nil {
		return nil, fmt.Errorf("krylov: Rayleigh-Ritz eigensolve: %w", err)
	}

	// Node-major coordinate table: coords[v][i] = (Q y_i)[v] / sqrt(theta_i).
	// Ritz values at numerical zero are null-space remnants and are skipped.
	coords := make([]float64, n*m)
	dims := m
	for i := 0; i < m; i++ {
		th := theta[i]
		if th <= 1e-12 {
			continue
		}
		scale := 1 / math.Sqrt(th)
		for j := 0; j < m; j++ {
			yji := y.At(j, i)
			if yji == 0 {
				continue
			}
			qj := basis[j]
			c := yji * scale
			for v := 0; v < n; v++ {
				coords[v*dims+i] += c * qj[v]
			}
		}
	}
	return &Embedding{N: n, Dims: dims, coords: coords}, nil
}
