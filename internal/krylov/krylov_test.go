package krylov

import (
	"context"
	"math"
	"sort"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n, n-1)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func gridGraph(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func TestEmbeddingBasicInvariants(t *testing.T) {
	g := gridGraph(8, 8)
	emb, err := NewEmbedding(g, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if emb.N != 64 || emb.Dims <= 0 {
		t.Fatalf("embedding shape N=%d dims=%d", emb.N, emb.Dims)
	}
	// Symmetry, identity, positivity.
	for _, pq := range [][2]int{{0, 63}, {5, 40}, {10, 11}} {
		p, q := pq[0], pq[1]
		a := emb.Resistance(p, q)
		b := emb.Resistance(q, p)
		if a != b {
			t.Fatalf("asymmetric estimate R(%d,%d)", p, q)
		}
		if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			t.Fatalf("bad estimate %v", a)
		}
	}
	if emb.Resistance(7, 7) != 0 {
		t.Fatal("self resistance must be 0")
	}
}

func TestEmbeddingDeterministic(t *testing.T) {
	g := gridGraph(6, 6)
	a, err := NewEmbedding(g, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEmbedding(g, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 36; v++ {
		ca, cb := a.Coord(v), b.Coord(v)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatal("same seed must give identical embeddings")
			}
		}
	}
}

func TestEmbeddingEmptyGraph(t *testing.T) {
	if _, err := NewEmbedding(graph.New(0, 0), Config{}); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

// The estimator's job is RANKING edges by resistance, not absolute accuracy.
// On a path graph the true resistance between i and j is |i-j|; check that
// the estimated values are strongly rank-correlated with distance.
func TestEmbeddingRankingOnPath(t *testing.T) {
	const n = 64
	g := pathGraph(n)
	emb, err := NewEmbedding(g, Config{Seed: 3, Order: 24})
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		est  float64
		dist int
	}
	var ps []pair
	for d := 1; d < n; d += 4 {
		ps = append(ps, pair{est: emb.Resistance(0, d), dist: d})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].est < ps[j].est })
	// After sorting by estimate, distances should be mostly increasing:
	// count inversions.
	inv := 0
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			if ps[i].dist > ps[j].dist {
				inv++
			}
		}
	}
	total := len(ps) * (len(ps) - 1) / 2
	if float64(inv) > 0.2*float64(total) {
		t.Fatalf("rank inversions %d/%d too high", inv, total)
	}
}

// On a small graph, compare against the exact resistance from the dense
// pseudo-inverse: estimates should be within a generous multiplicative band
// (they are subspace truncations, hence biased low).
func TestEmbeddingVsExactBand(t *testing.T) {
	g := gridGraph(5, 5)
	emb, err := NewEmbedding(g, Config{Seed: 5, Order: 20, Starts: 3})
	if err != nil {
		t.Fatal(err)
	}
	lap := sparse.NewLaplacianSolver(g, solver.Options{Tol: 1e-11})
	r := vecmath.NewRNG(1)
	var ratioSum float64
	count := 0
	for trial := 0; trial < 20; trial++ {
		p, q := r.Intn(25), r.Intn(25)
		if p == q {
			continue
		}
		exact, err := lap.SolvePair(context.Background(), p, q)
		if err != nil {
			t.Fatal(err)
		}
		est := emb.Resistance(p, q)
		ratio := est / exact
		if ratio > 1.5 {
			t.Fatalf("estimate %v exceeds exact %v by too much", est, exact)
		}
		ratioSum += ratio
		count++
	}
	if mean := ratioSum / float64(count); mean < 0.2 {
		t.Fatalf("estimates far too small on average: mean ratio %v", mean)
	}
}

func TestEstimateEdgesMatchesScalar(t *testing.T) {
	g := gridGraph(10, 10)
	emb, err := NewEmbedding(g, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	serial := emb.EstimateEdges(edges, 1)
	parallel := emb.EstimateEdges(edges, 4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel estimate differs at %d", i)
		}
		if want := emb.Resistance(edges[i].U, edges[i].V); serial[i] != want {
			t.Fatalf("batch estimate differs from scalar at %d", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(1 << 20)
	if c.Order < 8 || c.Order > 32 {
		t.Fatalf("default order %d out of range", c.Order)
	}
	if c.Starts != 2 || c.Workers <= 0 {
		t.Fatalf("defaults %+v", c)
	}
	c2 := Config{Order: 12, Starts: 5, Workers: 3}.withDefaults(100)
	if c2.Order != 12 || c2.Starts != 5 || c2.Workers != 3 {
		t.Fatalf("explicit config overridden: %+v", c2)
	}
}

func TestLanczosOnLaplacian(t *testing.T) {
	g := gridGraph(6, 6)
	op := sparse.NewLapOperator(g)
	res, err := Lanczos(context.Background(), &sparse.ProjectedOperator{Inner: op}, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.ExtremeRitz()
	// Exact spectrum from the dense oracle.
	dense := sparse.DenseLaplacian(g)
	vals, _, err := vecmath.SymEig(dense)
	if err != nil {
		t.Fatal(err)
	}
	lambda2 := vals[1]    // first non-zero
	lambdaMax := vals[35] // largest
	if hi > lambdaMax*1.0001 {
		t.Fatalf("Ritz max %v exceeds lambda_max %v", hi, lambdaMax)
	}
	if hi < 0.9*lambdaMax {
		t.Fatalf("Ritz max %v too far below lambda_max %v", hi, lambdaMax)
	}
	// Restricted to 1-perp, the smallest eigenvalue is lambda2; Lanczos
	// should land within a modest factor after 30 full-reorth steps.
	if lo < lambda2*0.99 {
		t.Fatalf("Ritz min %v below lambda_2 %v", lo, lambda2)
	}
	if lo > 3*lambda2 {
		t.Fatalf("Ritz min %v too far above lambda_2 %v", lo, lambda2)
	}
}

func TestLanczosErrors(t *testing.T) {
	g := pathGraph(4)
	op := sparse.NewLapOperator(g)
	if _, err := Lanczos(context.Background(), op, 0, 1); err == nil {
		t.Fatal("expected error for zero order")
	}
	// Order larger than dimension is clamped, not an error.
	if _, err := Lanczos(context.Background(), &sparse.ProjectedOperator{Inner: op}, 50, 1); err != nil {
		t.Fatal(err)
	}
}
