package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("app_requests_total", "requests served", Label{"endpoint", "solve"})
	c2 := reg.Counter("app_requests_total", "requests served", Label{"endpoint", "stats"})
	g := reg.Gauge("app_queue_depth", "requests awaiting execution")
	reg.GaugeFunc("app_generation", "served snapshot generation", func() float64 { return 7 })
	h := reg.Histogram("app_latency_seconds", "request latency", ScaleSeconds, Label{"endpoint", "solve"})

	c.Add(5)
	c2.Inc()
	g.Set(3)
	h.Observe(1500)          // 1.5us
	h.Observe(2_000_000)     // 2ms
	h.Observe(2_000_000)     // 2ms
	h.Observe(3_000_000_000) // 3s

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP app_requests_total requests served",
		"# TYPE app_requests_total counter",
		`app_requests_total{endpoint="solve"} 5`,
		`app_requests_total{endpoint="stats"} 1`,
		"# TYPE app_queue_depth gauge",
		"app_queue_depth 3",
		"app_generation 7",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{endpoint="solve",le="+Inf"} 4`,
		`app_latency_seconds_count{endpoint="solve"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// HELP/TYPE once per family even with multiple series.
	if n := strings.Count(out, "# TYPE app_requests_total"); n != 1 {
		t.Fatalf("TYPE emitted %d times", n)
	}

	// The output passes its own lint.
	if errs := LintExposition(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("self-lint failed: %v", errs)
	}
}

func TestRegistryPanicsOnConflicts(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("dup_total", "x", Label{"a", "1"})
	mustPanic("duplicate series", func() { reg.Counter("dup_total", "x", Label{"a", "1"}) })
	mustPanic("kind conflict", func() { reg.Gauge("dup_total", "x") })
	mustPanic("bad name", func() { reg.Counter("9bad", "x") })
	mustPanic("bad label", func() { reg.Counter("ok_total", "x", Label{"0bad", "v"}) })
}

func TestWriteTextFilters(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("aaa_batches_total", "batches").Add(9)
	reg.Counter("bbb_other_total", "other").Add(1)
	h := reg.Histogram("aaa_fill", "fill", ScaleNone)
	h.Observe(4)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf, "aaa_"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "aaa_batches_total 9") || strings.Contains(out, "bbb_other_total") {
		t.Fatalf("filtered summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "aaa_fill_count 1") || !strings.Contains(out, "aaa_fill_sum 4") {
		t.Fatalf("histogram summary wrong:\n%s", out)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "orphan_total 3\n",
		"duplicate TYPE":   "# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n",
		"duplicate series": "# TYPE x_total counter\nx_total{a=\"1\"} 1\nx_total{a=\"1\"} 2\n",
		"bad value":        "# TYPE x_total counter\nx_total abc\n",
		"unsorted buckets": "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
		"no +Inf":          "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"not cumulative":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 3\nh_count 5\n",
		"count mismatch":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 3\nh_count 4\n",
	}
	for name, input := range cases {
		if errs := LintExposition([]byte(input)); len(errs) == 0 {
			t.Errorf("%s: lint found nothing in %q", name, input)
		}
	}
	clean := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total{a=\"x\"} 1\nok_total{a=\"y\"} 2\n"
	if errs := LintExposition([]byte(clean)); len(errs) != 0 {
		t.Errorf("clean input flagged: %v", errs)
	}
}
