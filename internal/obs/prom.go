package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type for WritePrometheus output.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in Prometheus text
// exposition format: families sorted by name, one HELP/TYPE pair per
// family, histograms as cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			if f.kind == kindHistogram {
				writeHistogramSeries(bw, f.name, s)
				continue
			}
			bw.WriteString(f.name)
			writeLabels(bw, s.labels, "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.read()))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteText renders "name{labels} value" sample lines (no HELP/TYPE) for
// families whose name starts with any of the given prefixes — the shutdown
// summary path, guaranteed to agree with a concurrent scrape because it
// reads the identical series. Histograms render their _count and _sum.
func (r *Registry) WriteText(w io.Writer, prefixes ...string) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		matched := len(prefixes) == 0
		for _, p := range prefixes {
			if strings.HasPrefix(f.name, p) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		for _, s := range f.series {
			if f.kind == kindHistogram {
				h := s.hist
				bw.WriteString(f.name + "_count")
				writeLabels(bw, s.labels, "")
				fmt.Fprintf(bw, " %d\n", h.Count())
				bw.WriteString(f.name + "_sum")
				writeLabels(bw, s.labels, "")
				fmt.Fprintf(bw, " %s\n", formatValue(float64(h.Sum())*h.scale))
				continue
			}
			bw.WriteString(f.name)
			writeLabels(bw, s.labels, "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.read()))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogramSeries emits the cumulative bucket, sum, and count samples
// of one histogram series. Only non-empty buckets are emitted (plus +Inf),
// which keeps scrapes proportional to the observed value spread while
// remaining valid exposition (le values stay sorted and cumulative). A
// stored exemplar is appended to its bucket's line in OpenMetrics exemplar
// syntax (`# {trace_id="..."} value timestamp`).
func writeHistogramSeries(bw *bufio.Writer, name string, s *series) {
	h := s.hist
	ex := h.exemplar()
	var cum uint64
	h.buckets(func(idx int, upper int64, count uint64) {
		cum += count
		bw.WriteString(name + "_bucket")
		writeLabels(bw, s.labels, formatValue(float64(upper)*h.scale))
		fmt.Fprintf(bw, " %d", cum)
		if ex != nil && ex.Bucket == idx {
			fmt.Fprintf(bw, " # {trace_id=\"%s\"} %s %d.%03d",
				ex.TraceID, formatValue(float64(ex.Value)*h.scale),
				ex.UnixNano/1e9, (ex.UnixNano%1e9)/1e6)
			ex = nil
		}
		bw.WriteByte('\n')
	})
	total := h.Count()
	if total < cum {
		// A racing Observe bumped a bucket before the count; clamp so the
		// +Inf bucket stays cumulative-consistent within this scrape.
		total = cum
	}
	bw.WriteString(name + "_bucket")
	writeLabels(bw, s.labels, "+Inf")
	fmt.Fprintf(bw, " %d\n", total)
	bw.WriteString(name + "_sum")
	writeLabels(bw, s.labels, "")
	fmt.Fprintf(bw, " %s\n", formatValue(float64(h.Sum())*h.scale))
	bw.WriteString(name + "_count")
	writeLabels(bw, s.labels, "")
	fmt.Fprintf(bw, " %d\n", total)
}

// writeLabels renders a label set, appending an le label when non-empty.
func writeLabels(bw *bufio.Writer, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(l.Key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabelValue(l.Value))
		bw.WriteByte('"')
	}
	if le != "" {
		if !first {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="` + le + `"`)
	}
	bw.WriteByte('}')
}

// formatValue renders a float sample the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
