// Package obs is the repository's metrics core: allocation-free counters,
// gauges, and log-linear latency histograms behind a registry that renders
// both Prometheus text exposition (GET /metrics) and the JSON views the
// service's /stats endpoint and shutdown summaries are built from. One
// registry per serving process is the single source of truth — every number
// a log line prints and every number a scraper reads comes from the same
// underlying atomics, so the two can never disagree.
//
// Hot-path contract: recording — Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Observe — is a handful of atomic operations and never
// allocates (CI gates this at 0 allocs/op). Registration, by contrast, is
// startup-time work: it takes a lock, validates names, and may allocate
// freely. Instrument by registering handles once and recording through
// them, never by looking metrics up per event.
//
// Cardinality rules (enforced by convention, documented in DESIGN.md):
// label sets are fixed at registration, label values come from small closed
// vocabularies (endpoint names, outcome classes, status codes), and
// unbounded dimensions — snapshot generation, node ids, client addresses —
// are never labels. Generation is exposed as a gauge instead.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Values must come from a small fixed set
// (see the package cardinality rules).
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing value. The zero value is usable;
// registry-created counters are already wired for exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1. Never allocates.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Never allocates.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value (queue depths, in-flight
// requests). The zero value is usable.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Never allocates.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement). Never allocates.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind discriminates exposition families.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (label set, value source) member of a family.
type series struct {
	labels []Label
	read   func() float64 // counter/gauge sample
	hist   *Histogram     // histogram sample
}

// family groups all series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	series     []*series
}

// Registry holds registered metrics and renders them. All registration
// methods panic on invalid or conflicting definitions — a metric schema
// error is a programming bug, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds one series under name, creating the family on first use.
func (r *Registry) register(name, help string, kind metricKind, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range s.labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: metric %s: invalid label key %q", name, l.Key))
		}
	}
	// Labels sort at registration so duplicate detection and exposition are
	// order-independent.
	sort.Slice(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	key := labelKey(s.labels)
	for _, existing := range f.series {
		if labelKey(existing.labels) == key {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, key))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: labels, read: func() float64 { return float64(c.Value()) }})
	return c
}

// CounterFunc registers a counter whose value is sampled from fn at
// exposition time — the bridge for counters that already live as atomics
// elsewhere (engine stats, scheduler stats). fn must be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, &series{labels: labels, read: fn})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{labels: labels, read: func() float64 { return float64(g.Value()) }})
	return g
}

// GaugeFunc registers a gauge sampled from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{labels: labels, read: fn})
}

// Histogram registers and returns a log-linear histogram. scale converts
// recorded raw values to the exposed unit (ScaleSeconds for nanosecond
// observations under a _seconds name, ScaleNone for dimensionless values).
func (r *Registry) Histogram(name, help string, scale float64, labels ...Label) *Histogram {
	h := NewHistogram(scale)
	r.register(name, help, kindHistogram, &series{labels: labels, hist: h})
	return h
}

// snapshotFamilies copies the family list, sorted by name, so rendering
// never holds the registry lock while formatting.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// labelKey serializes a sorted label set for duplicate detection.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// validName reports whether s is a legal Prometheus metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
