package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestQuantileBoundsTrueQuantile is the histogram's accuracy property: for
// arbitrary sample sets, the recorded quantile is an upper bound on the
// true sample quantile and overshoots it by at most one bucket's
// resolution (12.5% relative, +1 for integer bucket edges).
func TestQuantileBoundsTrueQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0.5, 0.9, 0.99, 0.999, 1.0}
	for trial := 0; trial < 50; trial++ {
		n := 100 + rng.Intn(5000)
		samples := make([]int64, n)
		h := NewHistogram(ScaleNone)
		for i := range samples {
			var v int64
			switch trial % 3 {
			case 0: // uniform small
				v = int64(rng.Intn(1000))
			case 1: // log-uniform over the full latency range
				v = int64(1) << uint(rng.Intn(40))
				v += rng.Int63n(v + 1)
			default: // heavy-tailed
				v = int64(rng.ExpFloat64() * 1e6)
			}
			samples[i] = v
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range quantiles {
			rank := int(float64(n)*q+0.9999) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= n {
				rank = n - 1
			}
			truth := samples[rank]
			got := h.Quantile(q)
			if got < truth {
				t.Fatalf("trial %d q=%g: estimate %d below true quantile %d", trial, q, got, truth)
			}
			bound := truth + truth/8 + 1
			if got > bound {
				t.Fatalf("trial %d q=%g: estimate %d exceeds resolution bound %d (true %d)",
					trial, q, got, bound, truth)
			}
		}
	}
}

// TestBucketIndexBounds pins the bucket mapping invariants: every value
// falls in a bucket whose inclusive upper bound is >= the value, and the
// next bucket's bound is strictly larger.
func TestBucketIndexBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	check := func(v int64) {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, i)
		}
		if bucketBounds[i] < v {
			t.Fatalf("value %d: bound %d below value", v, bucketBounds[i])
		}
		if i > 0 && bucketBounds[i-1] >= v {
			t.Fatalf("value %d: previous bound %d should be below it", v, bucketBounds[i-1])
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for trial := 0; trial < 100000; trial++ {
		check(rng.Int63n(int64(1) << 42))
	}
	if got := bucketIndex(int64(1) << 50); got != numBuckets-1 {
		t.Fatalf("overflow value: bucket %d, want %d", got, numBuckets-1)
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("negative value: bucket %d, want 0", got)
	}
	for i := 1; i < numBuckets; i++ {
		if bucketBounds[i] <= bucketBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d then %d", i, bucketBounds[i-1], bucketBounds[i])
		}
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many goroutines
// (run under -race in CI) and checks the totals reconcile exactly.
func TestHistogramConcurrentRecord(t *testing.T) {
	const goroutines = 16
	const perG = 20000
	h := NewHistogram(ScaleSeconds)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count %d, want %d", got, goroutines*perG)
	}
	var cum uint64
	h.buckets(func(_ int, _ int64, c uint64) { cum += c })
	if cum != goroutines*perG {
		t.Fatalf("bucket sum %d, want %d", cum, goroutines*perG)
	}
}

// TestWarmPathAllocationFree is the CI allocation gate for the metric hot
// path: counter inc, gauge set, and histogram record must be 0 allocs/op.
func TestWarmPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("obs_test_ops_total", "test counter")
	g := reg.Gauge("obs_test_depth", "test gauge")
	h := reg.Histogram("obs_test_latency_seconds", "test histogram", ScaleSeconds)
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		g.Add(-1)
		h.Observe(123456)
		h.ObserveDuration(42 * time.Microsecond)
	}); allocs != 0 {
		t.Fatalf("metric hot path allocates: %v allocs/op", allocs)
	}
	// Nil receivers are the unregistered-instrumentation path; they must be
	// free too.
	var nc *Counter
	var nh *Histogram
	if allocs := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		nh.Observe(1)
	}); allocs != 0 {
		t.Fatalf("nil-receiver path allocates: %v allocs/op", allocs)
	}
}

func TestSummaryEmptyAndScale(t *testing.T) {
	h := NewHistogram(ScaleSeconds)
	if s := h.Summarize(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	h.ObserveDuration(time.Millisecond)
	s := h.Summarize()
	if s.Count != 1 {
		t.Fatalf("count %d", s.Count)
	}
	// 1ms recorded in ns, exposed in seconds: within bucket resolution.
	if s.P50 < 1e-3 || s.P50 > 1.2e-3 {
		t.Fatalf("p50 %g not ~1ms in seconds", s.P50)
	}
}
