package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear in base 2 with histSub linear
// sub-buckets per octave. Values below histFirst get an exact bucket each;
// a value v >= histFirst with highest bit at position exp lands in the
// sub-bucket indexed by the histSubBits bits after the leading one. The
// relative width of any bucket is at most 1/histSub = 12.5%, so a quantile
// read off the bucket upper bound overestimates the true sample quantile by
// at most 12.5% (plus 1 for integer rounding) and never underestimates it —
// the property the histogram tests pin down.
//
// With histMaxExp = 42 the layout spans 1ns to ~73 minutes at nanosecond
// recording; larger values clamp into one overflow bucket. The whole count
// array is (16 + 39*8 + 1) * 8 bytes ≈ 2.6 KiB per histogram.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits       // linear sub-buckets per octave
	histFirst   = 1 << (histSubBits + 1) // exact buckets for small values
	histMinExp  = histSubBits + 1        // first log-linear octave
	histMaxExp  = 42                     // clamp octave
	numBuckets  = histFirst + (histMaxExp-histMinExp)*histSub + 1
)

// bucketBounds[i] is the largest value bucket i can hold (inclusive); the
// final overflow bucket reports +Inf.
var bucketBounds = func() [numBuckets]int64 {
	var b [numBuckets]int64
	for v := 0; v < histFirst; v++ {
		b[v] = int64(v)
	}
	i := histFirst
	for exp := histMinExp; exp < histMaxExp; exp++ {
		for sub := 1; sub <= histSub; sub++ {
			// Bucket covers [2^exp + (sub-1)*2^(exp-histSubBits),
			//                2^exp +  sub   *2^(exp-histSubBits)).
			b[i] = int64(1)<<uint(exp) + int64(sub)<<uint(exp-histSubBits) - 1
			i++
		}
	}
	b[numBuckets-1] = math.MaxInt64
	return b
}()

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histFirst {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	if exp >= histMaxExp {
		return numBuckets - 1
	}
	sub := int(v>>uint(exp-histSubBits)) & (histSub - 1)
	return histFirst + (exp-histMinExp)*histSub + sub
}

// Histogram is a concurrent log-linear histogram over non-negative int64
// values (typically durations in nanoseconds). Observing is three atomic
// adds and never allocates; every method is safe on a nil receiver so
// call sites can instrument unconditionally whether or not a registry was
// attached.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Int64
	count  atomic.Uint64
	// scale converts raw recorded values to the exposed unit at rendering
	// time (ScaleSeconds for ns -> s); recording stays integer-only.
	scale float64
	// ex is the most recent exemplar (a retained trace attached to the
	// bucket its latency fell in). Lazily set; nil until SetExemplar.
	ex atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it, exposed
// on the matching _bucket line in OpenMetrics exemplar syntax so a
// dashboard can jump from a latency bucket to the flight-recorder trace.
type Exemplar struct {
	Bucket   int    // bucket index the value fell in
	Value    int64  // raw (unscaled) observed value
	TraceID  string // 32-hex trace ID
	UnixNano int64  // when the exemplar was recorded
}

// SetExemplar attaches trace traceID as the exemplar for raw value v.
// Called only on the trace-retention path, so the allocation is off the
// hot path; the store itself is one atomic pointer swap.
func (h *Histogram) SetExemplar(v int64, traceID string) {
	if h == nil || traceID == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	h.ex.Store(&Exemplar{
		Bucket:   bucketIndex(v),
		Value:    v,
		TraceID:  traceID,
		UnixNano: time.Now().UnixNano(),
	})
}

// exemplar returns the current exemplar, or nil.
func (h *Histogram) exemplar() *Exemplar {
	if h == nil {
		return nil
	}
	return h.ex.Load()
}

// Unit scales for NewHistogram / Registry.Histogram.
const (
	// ScaleSeconds exposes nanosecond observations as seconds.
	ScaleSeconds = 1e-9
	// ScaleNone exposes raw values unchanged (counts, widths).
	ScaleNone = 1.0
)

// NewHistogram returns a standalone histogram (use Registry.Histogram to
// also expose it).
func NewHistogram(scale float64) *Histogram {
	if scale <= 0 {
		scale = ScaleNone
	}
	return &Histogram{scale: scale}
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records d at nanosecond resolution.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the raw (unscaled) sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the q-quantile (0 < q <= 1) in raw units: the upper
// bound of the bucket holding the ceil(q*count)-th smallest observation.
// It is an upper bound on the true sample quantile, within one bucket's
// resolution (<= 12.5% relative). Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return bucketBounds[i]
		}
	}
	return bucketBounds[numBuckets-1]
}

// QuantileInterpolated returns the q-quantile (0 < q <= 1) in raw units,
// linearly interpolated within the bucket holding the rank. Unlike
// Quantile it does not snap to the bucket's upper bound — which turned
// every reported p50 into a power-of-two boundary (0.134217727s = raw
// 2^27-1 ns) — so it can land below the true sample quantile by up to one
// bucket width. The error is bounded either way by the bucket's relative
// width, RelErrBound. Returns 0 with no observations.
func (h *Histogram) QuantileInterpolated(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := int64(0)
			if i > 0 {
				lo = bucketBounds[i-1] + 1
			}
			if i == numBuckets-1 {
				// Overflow bucket: no finite upper bound to interpolate to.
				return lo
			}
			hi := bucketBounds[i]
			frac := float64(rank-cum) / float64(c)
			return lo + int64(frac*float64(hi-lo)+0.5)
		}
		cum += c
	}
	return bucketBounds[numBuckets-1]
}

// RelErrBound is the histogram's quantile accuracy contract: any reported
// quantile is within this relative error of the true sample quantile
// (plus 1 for integer bucket edges), set by the 1/histSub bucket width.
const RelErrBound = 1.0 / histSub

// Summary is a point-in-time quantile digest in exposed (scaled) units,
// JSON-friendly for /stats and SLO reports. Quantiles are interpolated
// within buckets; each is within RelErr relative error of the true sample
// quantile (the digest's accuracy contract, stated in-band so report
// readers do not mistake bucket resolution for measurement).
type Summary struct {
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	P999   float64 `json:"p999"`
	Max    float64 `json:"max"`
	RelErr float64 `json:"rel_err_bound,omitempty"`
}

// Summarize digests the histogram. Concurrent observers may skew Count
// against the quantiles by a few samples; fine for reporting.
func (h *Histogram) Summarize() Summary {
	if h == nil || h.count.Load() == 0 {
		return Summary{}
	}
	s := h.scale
	return Summary{
		Count:  h.count.Load(),
		Sum:    float64(h.sum.Load()) * s,
		P50:    float64(h.QuantileInterpolated(0.50)) * s,
		P90:    float64(h.QuantileInterpolated(0.90)) * s,
		P99:    float64(h.QuantileInterpolated(0.99)) * s,
		P999:   float64(h.QuantileInterpolated(0.999)) * s,
		Max:    float64(h.Quantile(1.0)) * s,
		RelErr: RelErrBound,
	}
}

// buckets invokes fn for every non-empty bucket in ascending order with the
// bucket's index, inclusive upper bound (raw units), and count.
func (h *Histogram) buckets(fn func(idx int, upper int64, count uint64)) {
	for i := 0; i < numBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			fn(i, bucketBounds[i], c)
		}
	}
}
