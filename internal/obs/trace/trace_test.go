package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func newTestRecorder(opts Options) *Recorder {
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	return NewRecorder(opts)
}

// TestTraceparentRoundTrip pins the propagation header: a live span renders
// a version-00 traceparent that parses back to the same trace ID, the
// span's own ID as parent, and the retention flag.
func TestTraceparentRoundTrip(t *testing.T) {
	r := newTestRecorder(Options{SampleRate: 1})
	root := r.StartRequest("solve", Remote{})
	if !root.Tracing() {
		t.Fatal("root span not tracing")
	}
	child := root.StartChild(SpanRouterClient)
	hdr := child.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("traceparent %q not version-00/55-char", hdr)
	}
	remote, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("own traceparent %q does not parse", hdr)
	}
	if remote.ID != root.TraceID() {
		t.Fatalf("trace ID mismatch: %v vs %v", remote.ID, root.TraceID())
	}
	if remote.SpanID != child.ID() {
		t.Fatalf("parent span ID %x, want child's %x", remote.SpanID, child.ID())
	}
	if !remote.Forced {
		t.Fatal("SampleRate=1 trace must propagate the retention flag")
	}
	child.End()
	r.Finish(root, 200)

	for _, bad := range []string{
		"",
		"00-000000000000000000000000000000ab-00f067aa0ba902b7-0",  // short
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-4bf92f3577b34da6a3ce929d0e0g4736-00f067aa0ba902b7-01", // bad hex
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("malformed traceparent %q accepted", bad)
		}
	}
}

// TestContinuedTraceKeepsID: a request continuing a remote traceparent
// keeps the upstream trace ID and snapshots the root with the upstream
// span as parent — the linkage a stitched cross-process trace relies on.
func TestContinuedTraceKeepsID(t *testing.T) {
	up := newTestRecorder(Options{SampleRate: 1})
	upRoot := up.StartRequest("solve", Remote{})
	client := upRoot.StartChild(SpanRouterClient)
	remote, ok := ParseTraceparent(client.Traceparent())
	if !ok {
		t.Fatal("traceparent did not parse")
	}

	down := newTestRecorder(Options{SampleRate: -1, Seed: 7}) // negative = head sampling off
	downRoot := down.StartRequest("solve", remote)
	if downRoot.TraceID() != upRoot.TraceID() {
		t.Fatal("continued trace changed ID")
	}
	snap := down.Finish(downRoot, 200)
	if snap == nil {
		t.Fatal("propagated trace must be retained downstream")
	}
	if snap.Reason != ReasonPropagated {
		t.Fatalf("reason %q, want %q", snap.Reason, ReasonPropagated)
	}
	if snap.Spans[0].Parent != formatSpanID(remote.SpanID) {
		t.Fatalf("root parent %s, want upstream client span %s",
			snap.Spans[0].Parent, formatSpanID(remote.SpanID))
	}
	// Distinct processes sharing a trace ID must still mint distinct span
	// IDs (the per-incarnation seed).
	if snap.Spans[0].ID == formatSpanID(upRoot.ID()) {
		t.Fatal("downstream root span ID collides with upstream root")
	}
}

// TestRetentionPolicy walks the reason ladder: errors always retain,
// head-sampled traces retain as "sampled", slow traces retain as "slow",
// and a fast clean request is discarded once the K-slowest list is full of
// slower ones.
func TestRetentionPolicy(t *testing.T) {
	r := newTestRecorder(Options{
		SampleRate:    -1, // head sampling off (0 would default to 0.01)
		SlowThreshold: time.Hour,
		KeepSlow:      1,
	})

	// First request on an endpoint always qualifies (list not yet full).
	root := r.StartRequest("solve", Remote{})
	time.Sleep(2 * time.Millisecond)
	snap := r.Finish(root, 200)
	if snap == nil || snap.Reason != ReasonSlow {
		t.Fatalf("first request: snap=%v, want slow retention", snap)
	}
	bar := snap.DurationNanos

	// A faster clean request must now be discarded.
	root = r.StartRequest("solve", Remote{})
	if snap := r.Finish(root, 200); snap != nil && snap.DurationNanos < bar {
		t.Fatalf("fast request retained: %+v", snap)
	}

	// Errors retain regardless.
	root = r.StartRequest("solve", Remote{})
	snap = r.Finish(root, 422)
	if snap == nil || snap.Reason != ReasonError {
		t.Fatalf("error request: snap=%+v, want error retention", snap)
	}
	if snap.Status != 422 {
		t.Fatalf("status %d, want 422", snap.Status)
	}

	// Head sampling retains with reason "sampled".
	rs := newTestRecorder(Options{SampleRate: 1, SlowThreshold: time.Hour})
	root = rs.StartRequest("solve", Remote{})
	snap = rs.Finish(root, 200)
	if snap == nil || snap.Reason != ReasonSampled {
		t.Fatalf("sampled request: snap=%+v, want sampled retention", snap)
	}

	// Debug view serves what was retained.
	if got := len(r.Debug(TraceID{}, "solve")); got < 2 {
		t.Fatalf("Debug returned %d traces, want >= 2", got)
	}
	if got := len(r.Debug(TraceID{}, "nope")); got != 0 {
		t.Fatalf("Debug for unknown endpoint returned %d traces", got)
	}
}

// TestSpanBufferOverflow: the fixed span buffer drops (and counts) spans
// past MaxSpans instead of allocating or corrupting.
func TestSpanBufferOverflow(t *testing.T) {
	r := newTestRecorder(Options{SampleRate: 1})
	root := r.StartRequest("solve", Remote{})
	for i := 0; i < MaxSpans+10; i++ {
		s := root.StartChild(SpanSolveInner)
		s.End()
	}
	snap := r.Finish(root, 200)
	if snap == nil {
		t.Fatal("sampled trace not retained")
	}
	if snap.DroppedSpans != 11 { // 10 over + the root slot already used
		t.Fatalf("dropped %d spans, want 11", snap.DroppedSpans)
	}
	if len(snap.Spans) != MaxSpans {
		t.Fatalf("snapshot has %d spans, want %d", len(snap.Spans), MaxSpans)
	}
}

// TestStaleHandleNeutralized: a Span handle held past Finish must not
// write into the recycled buffer's next incarnation.
func TestStaleHandleNeutralized(t *testing.T) {
	r := newTestRecorder(Options{SampleRate: 1})
	root := r.StartRequest("solve", Remote{})
	stale := root.StartChild(SpanSolveOuter)
	r.Finish(root, 200)

	// The pool will hand the same Trace back; the epoch bump must make the
	// stale handle inert.
	root2 := r.StartRequest("edges_add", Remote{})
	stale.SetAttr(AttrIterations, 999)
	stale.End()
	if stale.ID() != 0 {
		t.Fatal("stale handle still reports a span ID")
	}
	snap := r.Finish(root2, 200)
	if snap == nil {
		t.Fatal("second trace not retained")
	}
	for _, s := range snap.Spans {
		if s.Attrs["iterations"] == 999 {
			t.Fatal("stale handle wrote into the recycled trace")
		}
	}
}

// TestZeroSpanInert: the zero Span (untraced path) must no-op every method.
func TestZeroSpanInert(t *testing.T) {
	var s Span
	if s.Tracing() {
		t.Fatal("zero span claims to be tracing")
	}
	c := s.StartChild(SpanSolveOuter)
	c.SetAttr(AttrIterations, 3)
	c.End()
	if c.Tracing() || c.ID() != 0 || s.Traceparent() != "" {
		t.Fatal("zero span chain not inert")
	}
	if got := FromContext(context.Background()); got.Tracing() {
		t.Fatal("FromContext on bare context returned a live span")
	}
}

// TestSpanOpsAllocationFree is the pooled-span allocation gate: with
// tracing ON, starting, annotating, and ending spans allocates nothing —
// the only allocations in the pipeline are request setup (NewContext) and
// retention (snapshot).
func TestSpanOpsAllocationFree(t *testing.T) {
	r := newTestRecorder(Options{SampleRate: 1})
	root := r.StartRequest("solve", Remote{})
	defer r.Finish(root, 200)
	ctx := NewContext(context.Background(), root)

	if allocs := testing.AllocsPerRun(1000, func() {
		s := FromContext(ctx)
		c := s.StartChild(SpanSolveInner) // overflows quickly; both paths alloc-free
		c.SetAttr(AttrIterations, 7)
		c.End()
	}); allocs != 0 {
		t.Fatalf("span hot path allocates %v/op, want 0", allocs)
	}
}

// TestAttrOverwriteAndCap: same-key SetAttr overwrites, and at most
// maxAttrs distinct keys stick.
func TestAttrOverwriteAndCap(t *testing.T) {
	r := newTestRecorder(Options{SampleRate: 1})
	root := r.StartRequest("solve", Remote{})
	root.SetAttr(AttrIterations, 1)
	root.SetAttr(AttrIterations, 2)
	root.SetAttr(AttrWidth, 3)
	root.SetAttr(AttrInnerUses, 4)
	root.SetAttr(AttrGeneration, 5)
	root.SetAttr(AttrBytes, 6) // 5th distinct key (after status lands at Finish: 4 slots)
	snap := r.Finish(root, 200)
	if snap == nil {
		t.Fatal("trace not retained")
	}
	attrs := snap.Spans[0].Attrs
	if attrs["iterations"] != 2 {
		t.Fatalf("iterations = %d, want overwrite to 2", attrs["iterations"])
	}
	if len(attrs) > maxAttrs {
		t.Fatalf("%d attrs stuck, cap is %d", len(attrs), maxAttrs)
	}
}
