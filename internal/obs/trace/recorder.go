package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"ingrass/internal/obs"
)

// Options configures a Recorder. The zero value gets sensible defaults
// from NewRecorder.
type Options struct {
	// SampleRate is the head-sampling probability in [0, 1]: the fraction
	// of requests retained (and flagged for downstream retention)
	// regardless of outcome. Errors and tail-latency traces are retained
	// independently of it. Default 0.01.
	SampleRate float64

	// SlowThreshold retains any request at least this slow. Default 250ms.
	SlowThreshold time.Duration

	// SlowThresholdFor overrides SlowThreshold per endpoint.
	SlowThresholdFor map[string]time.Duration

	// KeepSlow is the per-endpoint capacity of the K-slowest list.
	// Default 8.
	KeepSlow int

	// KeepErrors is the per-endpoint failed-trace ring capacity.
	// Default 16.
	KeepErrors int

	// KeepSampled is the per-endpoint ring capacity for head-sampled and
	// propagated traces. Default 16.
	KeepSampled int

	// Seed fixes the trace-ID and sampling RNG stream for tests. 0 means
	// "derive from the clock once at construction".
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.SampleRate == 0 {
		o.SampleRate = 0.01
	}
	if o.SampleRate < 0 {
		o.SampleRate = 0
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	if o.KeepSlow == 0 {
		o.KeepSlow = 8
	}
	if o.KeepErrors == 0 {
		o.KeepErrors = 16
	}
	if o.KeepSampled == 0 {
		o.KeepSampled = 16
	}
	if o.Seed == 0 {
		o.Seed = uint64(time.Now().UnixNano()) | 1
	}
	return o
}

// Remote is an upstream trace reference parsed from a traceparent header.
type Remote struct {
	ID     TraceID
	SpanID uint64
	// Forced carries the upstream retention hint (traceparent flag bit 0):
	// the upstream decided to retain this trace, so we must too, or the
	// stitched cross-process view would have holes.
	Forced bool
}

// Retention reasons, in decision order.
const (
	ReasonError      = "error"
	ReasonPropagated = "propagated"
	ReasonSampled    = "sampled"
	ReasonSlow       = "slow"
)

// Recorder owns the trace pool, the sampling policy, and the flight
// recorder. A nil *Recorder is valid and records nothing.
type Recorder struct {
	opts Options

	pool sync.Pool

	// idCtr feeds trace-ID generation; rngState feeds the head-sampling
	// draw. Both lock-free.
	idCtr    atomic.Uint64
	rngState atomic.Uint64
	// sampleBar is SampleRate scaled to uint64 space: a draw below the
	// bar is sampled. 0 disables head sampling.
	sampleBar uint64

	flight flight

	// Metrics (nil-safe until RegisterMetrics).
	started      *obs.Counter
	retained     [4]*obs.Counter // indexed like reasonIndex
	droppedSpans *obs.Counter
}

// NewRecorder builds a Recorder with opts (zero fields defaulted).
func NewRecorder(opts Options) *Recorder {
	o := opts.withDefaults()
	r := &Recorder{opts: o}
	if o.SampleRate >= 1 {
		r.sampleBar = ^uint64(0)
	} else {
		r.sampleBar = uint64(o.SampleRate * float64(1<<63) * 2)
	}
	r.idCtr.Store(splitmix64(o.Seed))
	r.rngState.Store(splitmix64(o.Seed^0xd1b54a32d192ed03) | 1)
	r.pool.New = func() any { return &Trace{rec: r} }
	r.flight.init(o)
	return r
}

// RegisterMetrics registers the recorder's counters in reg.
func (r *Recorder) RegisterMetrics(reg *obs.Registry) {
	if r == nil {
		return
	}
	r.started = reg.Counter("ingrass_trace_started_total",
		"Requests that recorded a trace")
	for i, reason := range []string{ReasonError, ReasonPropagated, ReasonSampled, ReasonSlow} {
		r.retained[i] = reg.Counter("ingrass_trace_retained_total",
			"Traces retained in the flight recorder by reason",
			obs.Label{Key: "reason", Value: reason})
	}
	r.droppedSpans = reg.Counter("ingrass_trace_dropped_spans_total",
		"Spans dropped because a trace's span buffer overflowed")
}

func reasonIndex(reason string) int {
	switch reason {
	case ReasonError:
		return 0
	case ReasonPropagated:
		return 1
	case ReasonSampled:
		return 2
	default:
		return 3
	}
}

// rand64 is a lock-free xorshift step over shared state. Contention can
// duplicate draws under races; sampling does not need independence that
// strong.
func (r *Recorder) rand64() uint64 {
	x := r.rngState.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rngState.Store(x)
	return splitmix64(x)
}

// newTraceID derives a fresh 128-bit ID from the counter stream.
func (r *Recorder) newTraceID() TraceID {
	c := r.idCtr.Add(1)
	id := TraceID{Hi: splitmix64(c), Lo: splitmix64(c ^ 0x6a09e667f3bcc909)}
	if id.Hi == 0 {
		id.Hi = 1
	}
	if id.Lo == 0 {
		id.Lo = 1
	}
	return id
}

// StartRequest begins a trace for one request on endpoint, continuing
// remote if it is non-zero. The returned Span is the root; pass it to
// Finish exactly once. A nil Recorder returns the inert zero Span.
func (r *Recorder) StartRequest(endpoint string, remote Remote) Span {
	if r == nil {
		return Span{}
	}
	t := r.pool.Get().(*Trace)
	t.endpoint = endpoint
	t.spanSeed = r.rand64()
	t.startWall = time.Now().UnixNano()
	t.start = time.Now()
	t.n.Store(0)
	t.dropped.Store(0)
	if remote.ID.IsZero() {
		t.id = r.newTraceID()
		t.remoteParent = 0
		t.propagated = false
		t.forced = r.sampleBar != 0 && r.rand64() < r.sampleBar
	} else {
		t.id = remote.ID
		t.remoteParent = remote.SpanID
		t.propagated = remote.Forced
		t.forced = remote.Forced || (r.sampleBar != 0 && r.rand64() < r.sampleBar)
	}
	if r.started != nil {
		r.started.Inc()
	}
	return t.startSpan(SpanHTTPRequest, -1, 0)
}

// slowThreshold returns the retention latency bar for endpoint.
func (r *Recorder) slowThreshold(endpoint string) time.Duration {
	if d, ok := r.opts.SlowThresholdFor[endpoint]; ok {
		return d
	}
	return r.opts.SlowThreshold
}

// Finish ends the root span, applies the retention policy, and recycles
// the trace buffer. It returns the retained snapshot, or nil when the
// trace was discarded. status is the HTTP status of the response.
func (r *Recorder) Finish(root Span, status int) *TraceSnapshot {
	if r == nil || !root.live() || root.idx != 0 {
		return nil
	}
	t := root.t
	root.SetAttr(AttrStatus, int64(status))
	root.End()
	dur := time.Duration(t.spans[0].end.Load())

	reason := ""
	switch {
	case status >= 400:
		reason = ReasonError
	case t.propagated:
		reason = ReasonPropagated
	case t.forced:
		reason = ReasonSampled
	case dur >= r.slowThreshold(t.endpoint):
		reason = ReasonSlow
	}

	var snap *TraceSnapshot
	if reason != "" || r.flight.qualifiesSlow(t.endpoint, int64(dur)) {
		if reason == "" {
			reason = ReasonSlow
		}
		snap = t.snapshot(reason, status)
		r.flight.add(snap)
		if c := r.retained[reasonIndex(reason)]; c != nil {
			c.Inc()
		}
	}
	if d := t.dropped.Load(); d != 0 && r.droppedSpans != nil {
		r.droppedSpans.Add(uint64(d))
	}

	// Invalidate outstanding Span handles, then recycle. A straggler
	// holding a handle from the old epoch will fail its live() check.
	t.epoch.Add(1)
	r.pool.Put(t)
	return snap
}

// Debug returns the flight recorder's current contents, optionally
// filtered by trace ID (zero = all) and endpoint ("" = all).
func (r *Recorder) Debug(id TraceID, endpoint string) []*TraceSnapshot {
	if r == nil {
		return nil
	}
	return r.flight.collect(id, endpoint)
}
