package trace

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying span. This allocates (context value +
// boxing) and belongs in request setup, never inside a solve loop.
func NewContext(ctx context.Context, span Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, span)
}

// FromContext returns the span carried by ctx, or the inert zero Span.
// Allocation-free: the warm solve path calls this on every request and
// must stay 0 allocs/op.
func FromContext(ctx context.Context) Span {
	if s, ok := ctx.Value(ctxKey{}).(Span); ok {
		return s
	}
	return Span{}
}

// TraceparentHeader is the propagation header name (W3C Trace Context).
const TraceparentHeader = "traceparent"

const hexDigits = "0123456789abcdef"

// Traceparent renders the propagation header value for requests sent
// downstream while s is live: version 00, the trace ID, s as the parent
// span, and flag bit 0 carrying the retention hint.
func (s Span) Traceparent() string {
	if !s.live() {
		return ""
	}
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	putHex64(buf[3:19], s.t.id.Hi)
	putHex64(buf[19:35], s.t.id.Lo)
	buf[35] = '-'
	putHex64(buf[36:52], s.ID())
	buf[52], buf[53] = '-', '0'
	if s.t.forced {
		buf[54] = '1'
	} else {
		buf[54] = '0'
	}
	return string(buf[:])
}

func putHex64(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// ParseTraceparent parses a traceparent header value. It accepts version
// 00 with the standard 32-hex trace ID, 16-hex parent span ID, and 2-hex
// flags; anything else returns ok=false (the request starts a new trace).
func ParseTraceparent(v string) (Remote, bool) {
	if len(v) != 55 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return Remote{}, false
	}
	hi, ok1 := parseHex64(v[3:19])
	lo, ok2 := parseHex64(v[19:35])
	span, ok3 := parseHex64(v[36:52])
	flags, ok4 := parseHex8(v[53:55])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return Remote{}, false
	}
	id := TraceID{Hi: hi, Lo: lo}
	if id.IsZero() || span == 0 {
		return Remote{}, false
	}
	return Remote{ID: id, SpanID: span, Forced: flags&1 != 0}, true
}

// ParseTraceID parses a 32-hex trace ID (the /debug/requests ?trace= form).
func ParseTraceID(v string) (TraceID, bool) {
	if len(v) != 32 {
		return TraceID{}, false
	}
	hi, ok1 := parseHex64(v[:16])
	lo, ok2 := parseHex64(v[16:])
	if !ok1 || !ok2 {
		return TraceID{}, false
	}
	id := TraceID{Hi: hi, Lo: lo}
	return id, !id.IsZero()
}

func parseHex64(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		d, ok := hexVal(s[i])
		if !ok {
			return 0, false
		}
		v = v<<4 | uint64(d)
	}
	return v, true
}

func parseHex8(s string) (uint8, bool) {
	hi, ok1 := hexVal(s[0])
	lo, ok2 := hexVal(s[1])
	if !ok1 || !ok2 {
		return 0, false
	}
	return hi<<4 | lo, true
}

func hexVal(c byte) (uint8, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
