// Package trace is a request-scoped span recorder built for the hot path:
// span buffers are pooled and fixed-capacity, span names and attribute keys
// come from closed vocabularies, timestamps are monotonic offsets from the
// trace epoch, and every per-span operation is a handful of atomic stores —
// no locks, no allocation, race-detector clean even when a batch executor
// finishes a span after the HTTP handler has returned.
//
// The lifecycle is tail-sampled: every request records spans while in
// flight (recording is cheap enough to be always-on), and the retention
// decision — error, tail latency, propagated hint, or probabilistic — is
// made once at Finish. Retained traces are snapshot-copied (the only
// allocation in the pipeline) into the flight recorder; the pooled buffer
// is recycled either way. A per-trace epoch counter neutralizes writes from
// stragglers holding Span handles into a recycled buffer.
package trace

import (
	"sync/atomic"
	"time"
)

// SpanName is the closed vocabulary of span names. The zero value is
// reserved as "invalid" so a snapshot can detect a claimed-but-unwritten
// slot (a racing StartChild that lost to Finish).
type SpanName uint8

const (
	spanInvalid SpanName = iota

	// SpanHTTPRequest is the server-side root span of one HTTP request.
	SpanHTTPRequest
	// SpanRouterClient covers one forward attempt from the router to a
	// backend (a retried read produces two).
	SpanRouterClient
	// SpanBatchGroup covers one request's ride through the coalescing
	// scheduler: queue wait from Submit to group execution, then the
	// blocked solve itself.
	SpanBatchGroup
	// SpanSolveOuter is the outer (flexible) CG solve for one column.
	SpanSolveOuter
	// SpanSolveInner is one truncated inner preconditioner application.
	SpanSolveInner
	// SpanWALAppend covers encoding + writing one WAL batch record.
	SpanWALAppend
	// SpanWALFsync is the fsync portion of a WAL append (SyncAlways).
	SpanWALFsync

	numSpanNames
)

var spanNames = [numSpanNames]string{
	spanInvalid:      "invalid",
	SpanHTTPRequest:  "http_request",
	SpanRouterClient: "router_client",
	SpanBatchGroup:   "batch_group",
	SpanSolveOuter:   "solve_outer",
	SpanSolveInner:   "solve_inner",
	SpanWALAppend:    "wal_append",
	SpanWALFsync:     "wal_fsync",
}

// String returns the wire name of s ("invalid" for out-of-vocabulary).
func (s SpanName) String() string {
	if s >= numSpanNames {
		return "invalid"
	}
	return spanNames[s]
}

// AttrKey is the closed vocabulary of span attribute keys. Values are
// non-negative integers packed next to the key in one atomic word.
type AttrKey uint8

const (
	attrInvalid AttrKey = iota
	// AttrIterations is the outer CG iteration count of a solve span.
	AttrIterations
	// AttrInnerUses counts preconditioner applications in a solve span.
	AttrInnerUses
	// AttrWidth is the coalesced block width of a batch-group span.
	AttrWidth
	// AttrQueueWaitNS is time from Submit to group execution start.
	AttrQueueWaitNS
	// AttrStatus is the HTTP status code of a request or client span.
	AttrStatus
	// AttrBackend is the router's backend index for a client span.
	AttrBackend
	// AttrGeneration is the graph generation a span observed.
	AttrGeneration
	// AttrBytes is the payload size of a WAL append span.
	AttrBytes

	numAttrKeys
)

var attrKeys = [numAttrKeys]string{
	attrInvalid:     "invalid",
	AttrIterations:  "iterations",
	AttrInnerUses:   "inner_uses",
	AttrWidth:       "width",
	AttrQueueWaitNS: "queue_wait_ns",
	AttrStatus:      "status",
	AttrBackend:     "backend",
	AttrGeneration:  "generation",
	AttrBytes:       "bytes",
}

// String returns the wire name of k.
func (k AttrKey) String() string {
	if k >= numAttrKeys {
		return "invalid"
	}
	return attrKeys[k]
}

// MaxSpans bounds one trace's span buffer. A warm solve records one outer
// span plus one inner span per preconditioner application (tens for a
// healthy basis); the cap absorbs an order of magnitude more before spans
// are counted as dropped rather than recorded.
const MaxSpans = 192

// maxAttrs is the per-span attribute slot count.
const maxAttrs = 4

// TraceID is a 128-bit trace identifier.
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether id is the zero (absent) ID.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// spanRecord is one span slot. Every field is atomic so a span may be
// started, annotated, and ended from a different goroutine than the one
// that snapshots or recycles the trace; the race detector sees only
// atomic operations.
//
// meta packs the span name in bits 0-7 and (parent index + 1) in bits
// 8-15; meta==0 marks a slot that was claimed but not yet written.
// start/end are nanosecond offsets from the trace's monotonic epoch;
// end==0 means "not yet ended". attrs pack an AttrKey in bits 56-63 and a
// non-negative value in bits 0-55.
type spanRecord struct {
	meta  atomic.Uint64
	start atomic.Int64
	end   atomic.Int64
	attrs [maxAttrs]atomic.Uint64
}

const attrValueMask = (uint64(1) << 56) - 1

// Trace is one pooled request trace: a fixed span buffer plus identity
// and epoch bookkeeping. It is created and recycled only by a Recorder.
type Trace struct {
	rec      *Recorder
	id       TraceID
	endpoint string
	// remoteParent is the span ID of the upstream caller's span when the
	// trace was continued from a traceparent header (0 when locally
	// rooted). The root span snapshots with this as its parent.
	remoteParent uint64
	// forced is the head decision: retain at Finish regardless of
	// latency/status, either because the upstream flagged the trace
	// (propagated) or the local head sample drew it.
	forced     bool
	propagated bool
	// spanSeed salts span-ID derivation per trace incarnation. Without it
	// span IDs would be a pure function of (trace ID, slot index), and the
	// router and a backend continuing the same trace would mint identical
	// IDs for the same slot — colliding across processes.
	spanSeed  uint64
	startWall int64     // UnixNano at StartRequest, for cross-process ordering
	start     time.Time // monotonic epoch

	epoch   atomic.Uint32 // incremented on recycle; stale Span handles no-op
	n       atomic.Int32  // claimed span slots
	dropped atomic.Uint32 // spans lost to buffer overflow
	spans   [MaxSpans]spanRecord
}

// Span is a lightweight handle into a trace's span buffer. The zero Span
// is valid and inert: every method is a no-op, so call sites need no nil
// checks and the untraced path stays branch-plus-return cheap.
type Span struct {
	t     *Trace
	idx   int32
	epoch uint32
}

// Tracing reports whether the span is live (attached to a trace).
func (s Span) Tracing() bool { return s.t != nil }

// live reports whether the handle still addresses the trace incarnation
// it was created for.
func (s Span) live() bool {
	return s.t != nil && s.t.epoch.Load() == s.epoch
}

// splitmix64 is the SplitMix64 finalizer; used to derive span IDs and
// trace IDs from counters without allocation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// spanID derives the wire ID of span idx arithmetically from the trace ID
// and the per-incarnation seed so no per-span ID needs storing. Index 0
// (the root) is included.
func (t *Trace) spanID(idx int32) uint64 {
	id := splitmix64(t.id.Lo ^ t.spanSeed ^ (uint64(idx)+1)*0x2545f4914f6cdd1d)
	if id == 0 {
		id = 1
	}
	return id
}

// startSpan claims a slot and initializes it. parentIdx < 0 means "no
// parent" (the root). Returns the zero Span on overflow.
func (t *Trace) startSpan(name SpanName, parentIdx int32, startOffset int64) Span {
	idx := t.n.Add(1) - 1
	if idx >= MaxSpans {
		t.n.Add(-1) // undo so the counter can't creep toward overflow
		t.dropped.Add(1)
		return Span{}
	}
	rec := &t.spans[idx]
	rec.start.Store(startOffset)
	rec.end.Store(0)
	for i := range rec.attrs {
		rec.attrs[i].Store(0)
	}
	// meta is written last: a snapshot that observes meta==0 skips the
	// half-initialized slot.
	rec.meta.Store(uint64(name) | uint64(parentIdx+1)<<8)
	return Span{t: t, idx: idx, epoch: t.epoch.Load()}
}

// offsetSince converts an absolute time to a nanosecond offset from the
// trace epoch (clamped non-negative so a backdated start before the trace
// began cannot produce a negative offset).
func (t *Trace) offsetSince(at time.Time) int64 {
	d := at.Sub(t.start)
	if d < 0 {
		d = 0
	}
	return int64(d)
}

// StartChild starts a child span of s starting now.
func (s Span) StartChild(name SpanName) Span {
	if !s.live() {
		return Span{}
	}
	return s.t.startSpan(name, s.idx, int64(time.Since(s.t.start)))
}

// StartChildSince starts a child span backdated to start. Used for spans
// whose beginning predates the code that records them (queue wait measured
// from Submit time, an append measured from before the syscall).
func (s Span) StartChildSince(name SpanName, start time.Time) Span {
	if !s.live() {
		return Span{}
	}
	return s.t.startSpan(name, s.idx, s.t.offsetSince(start))
}

// End marks the span as ended now.
func (s Span) End() {
	if !s.live() {
		return
	}
	end := int64(time.Since(s.t.start))
	if end == 0 {
		end = 1 // end==0 means "unfinished"; a 0ns span rounds up
	}
	s.t.spans[s.idx].end.Store(end)
}

// EndAt marks the span as ended at t (aligning, say, a fsync span's end
// with the measured sync duration).
func (s Span) EndAt(at time.Time) {
	if !s.live() {
		return
	}
	end := s.t.offsetSince(at)
	if end == 0 {
		end = 1
	}
	s.t.spans[s.idx].end.Store(end)
}

// SetAttr records key=val on the span. Values are clamped to [0, 2^56);
// at most maxAttrs distinct keys stick (later keys are dropped). Setting
// the same key twice overwrites.
func (s Span) SetAttr(key AttrKey, val int64) {
	if !s.live() || key == attrInvalid || key >= numAttrKeys {
		return
	}
	if val < 0 {
		val = 0
	}
	packed := uint64(key)<<56 | (uint64(val) & attrValueMask)
	rec := &s.t.spans[s.idx]
	for i := range rec.attrs {
		cur := rec.attrs[i].Load()
		if cur == 0 {
			if rec.attrs[i].CompareAndSwap(0, packed) {
				return
			}
			cur = rec.attrs[i].Load()
		}
		if AttrKey(cur>>56) == key {
			rec.attrs[i].Store(packed)
			return
		}
	}
}

// TraceID returns the ID of the span's trace (zero for an inert span).
func (s Span) TraceID() TraceID {
	if s.t == nil {
		return TraceID{}
	}
	return s.t.id
}

// ID returns the span's wire ID (0 for an inert span).
func (s Span) ID() uint64 {
	if !s.live() {
		return 0
	}
	return s.t.spanID(s.idx)
}

// Forced reports whether the trace carries the head-sample/propagation
// retention hint (and should propagate it downstream).
func (s Span) Forced() bool {
	return s.t != nil && s.t.forced
}
