package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// SpanSnapshot is one span in a retained trace, with absolute wall-clock
// nanoseconds so spans from different processes order on one timeline.
type SpanSnapshot struct {
	ID            string           `json:"id"`
	Parent        string           `json:"parent,omitempty"`
	Name          string           `json:"name"`
	StartUnixNano int64            `json:"start_unix_nano"`
	DurationNanos int64            `json:"duration_ns"`
	Unfinished    bool             `json:"unfinished,omitempty"`
	Attrs         map[string]int64 `json:"attrs,omitempty"`
}

// TraceSnapshot is one retained request trace as served by
// GET /debug/requests.
type TraceSnapshot struct {
	TraceID       string         `json:"trace_id"`
	Endpoint      string         `json:"endpoint"`
	Status        int            `json:"status"`
	Reason        string         `json:"reason"`
	StartUnixNano int64          `json:"start_unix_nano"`
	DurationNanos int64          `json:"duration_ns"`
	DroppedSpans  uint32         `json:"dropped_spans,omitempty"`
	Spans         []SpanSnapshot `json:"spans"`
	// Remote holds backend-side continuations of this trace; only the
	// router fills it, by fetching each backend's /debug/requests for
	// this trace ID and stitching the result.
	Remote []RemoteTrace `json:"remote,omitempty"`
}

// RemoteTrace is a backend's portion of a stitched cross-process trace.
type RemoteTrace struct {
	Backend string           `json:"backend"`
	Traces  []*TraceSnapshot `json:"traces"`
}

// DebugRequests is the GET /debug/requests response body.
type DebugRequests struct {
	Traces []*TraceSnapshot `json:"traces"`
}

// FormatTraceID renders id as the 32-hex traceparent form.
func FormatTraceID(id TraceID) string {
	return fmt.Sprintf("%016x%016x", id.Hi, id.Lo)
}

// formatSpanID renders a span ID as 16 hex digits.
func formatSpanID(id uint64) string {
	return fmt.Sprintf("%016x", id)
}

// snapshot copies the trace's span buffer into an immutable TraceSnapshot.
// This is the single allocating step of the pipeline and runs only for
// retained traces.
func (t *Trace) snapshot(reason string, status int) *TraceSnapshot {
	n := int(t.n.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	snap := &TraceSnapshot{
		TraceID:       FormatTraceID(t.id),
		Endpoint:      t.endpoint,
		Status:        status,
		Reason:        reason,
		StartUnixNano: t.startWall,
		DroppedSpans:  t.dropped.Load(),
		Spans:         make([]SpanSnapshot, 0, n),
	}
	for i := 0; i < n; i++ {
		rec := &t.spans[i]
		meta := rec.meta.Load()
		if meta == 0 {
			continue // claimed but never written (raced with Finish)
		}
		name := SpanName(meta & 0xff)
		parent := int32(meta>>8) - 1
		start := rec.start.Load()
		end := rec.end.Load()
		ss := SpanSnapshot{
			ID:            formatSpanID(t.spanID(int32(i))),
			Name:          name.String(),
			StartUnixNano: t.startWall + start,
		}
		switch {
		case parent >= 0:
			ss.Parent = formatSpanID(t.spanID(parent))
		case i == 0 && t.remoteParent != 0:
			ss.Parent = formatSpanID(t.remoteParent)
		}
		if end == 0 {
			ss.Unfinished = true
		} else {
			ss.DurationNanos = end - start
		}
		for a := range rec.attrs {
			packed := rec.attrs[a].Load()
			if packed == 0 {
				continue
			}
			if ss.Attrs == nil {
				ss.Attrs = make(map[string]int64, maxAttrs)
			}
			ss.Attrs[AttrKey(packed>>56).String()] = int64(packed & attrValueMask)
		}
		snap.Spans = append(snap.Spans, ss)
		if i == 0 {
			snap.DurationNanos = ss.DurationNanos
		}
	}
	return snap
}

// flight retains traces per endpoint in three bounded buckets: a sorted
// K-slowest list, a failed-trace ring, and a sampled/propagated ring.
// Shards take their mutex only when a trace is actually retained or the
// debug endpoint reads; the per-request qualification check is one atomic
// load.
type flight struct {
	keepSlow, keepErrors, keepSampled int

	mu     sync.RWMutex
	shards map[string]*flightShard
}

type flightShard struct {
	// slowBar is the duration a new trace must exceed to displace the
	// fastest member of a full slow list; MaxInt64-avoiding sentinel 0
	// means "list not full, everything qualifies".
	slowBar atomic.Int64

	mu      sync.Mutex
	slow    []*TraceSnapshot // sorted ascending by duration
	errors  ring
	sampled ring
}

type ring struct {
	buf []*TraceSnapshot
	pos int
}

func (rg *ring) add(s *TraceSnapshot) {
	rg.buf[rg.pos%len(rg.buf)] = s
	rg.pos++
}

func (rg *ring) collect(out []*TraceSnapshot) []*TraceSnapshot {
	for _, s := range rg.buf {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

func (f *flight) init(o Options) {
	f.keepSlow = o.KeepSlow
	f.keepErrors = o.KeepErrors
	f.keepSampled = o.KeepSampled
	f.shards = make(map[string]*flightShard)
}

func (f *flight) shard(endpoint string, create bool) *flightShard {
	f.mu.RLock()
	sh := f.shards[endpoint]
	f.mu.RUnlock()
	if sh != nil || !create {
		return sh
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if sh = f.shards[endpoint]; sh == nil {
		sh = &flightShard{
			errors:  ring{buf: make([]*TraceSnapshot, f.keepErrors)},
			sampled: ring{buf: make([]*TraceSnapshot, f.keepSampled)},
		}
		f.shards[endpoint] = sh
	}
	return sh
}

// qualifiesSlow reports whether a trace of duration dur would enter the
// endpoint's K-slowest list. Lock-free: one atomic load against the bar.
func (f *flight) qualifiesSlow(endpoint string, dur int64) bool {
	sh := f.shard(endpoint, false)
	if sh == nil {
		return true // no shard yet: the list is trivially not full
	}
	return dur > sh.slowBar.Load()
}

func (f *flight) add(s *TraceSnapshot) {
	sh := f.shard(s.Endpoint, true)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch s.Reason {
	case ReasonError:
		sh.errors.add(s)
	case ReasonSampled, ReasonPropagated:
		sh.sampled.add(s)
	default: // ReasonSlow
		i := sort.Search(len(sh.slow), func(i int) bool {
			return sh.slow[i].DurationNanos >= s.DurationNanos
		})
		sh.slow = append(sh.slow, nil)
		copy(sh.slow[i+1:], sh.slow[i:])
		sh.slow[i] = s
		if len(sh.slow) > f.keepSlow {
			copy(sh.slow, sh.slow[1:])
			sh.slow = sh.slow[:f.keepSlow]
		}
		if len(sh.slow) == f.keepSlow {
			sh.slowBar.Store(sh.slow[0].DurationNanos)
		}
	}
}

// collect returns retained traces, filtered by trace ID (zero = all) and
// endpoint ("" = all), newest first.
func (f *flight) collect(id TraceID, endpoint string) []*TraceSnapshot {
	want := ""
	if !id.IsZero() {
		want = FormatTraceID(id)
	}
	f.mu.RLock()
	shards := make([]*flightShard, 0, len(f.shards))
	for ep, sh := range f.shards {
		if endpoint != "" && ep != endpoint {
			continue
		}
		shards = append(shards, sh)
	}
	f.mu.RUnlock()

	var out []*TraceSnapshot
	for _, sh := range shards {
		sh.mu.Lock()
		out = append(out, sh.slow...)
		out = sh.errors.collect(out)
		out = sh.sampled.collect(out)
		sh.mu.Unlock()
	}
	if want != "" {
		kept := out[:0]
		for _, s := range out {
			if s.TraceID == want {
				kept = append(kept, s)
			}
		}
		out = kept
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].StartUnixNano > out[j].StartUnixNano
	})
	return out
}

// Handler serves the flight recorder as GET /debug/requests JSON.
// Query parameters: trace=<32 hex> filters to one trace ID, endpoint=<ep>
// to one endpoint.
func (r *Recorder) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		var id TraceID
		if q := req.URL.Query().Get("trace"); q != "" {
			parsed, ok := ParseTraceID(q)
			if !ok {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			id = parsed
		}
		w.Header().Set("Content-Type", "application/json")
		traces := r.Debug(id, req.URL.Query().Get("endpoint"))
		if traces == nil {
			traces = []*TraceSnapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(DebugRequests{Traces: traces})
	}
}
