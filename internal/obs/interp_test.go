package obs

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestQuantileInterpolatedRelErr is the digest accuracy contract from the
// loadgen SLO report: quantiles interpolated within buckets are within
// RelErrBound relative error of the exact quantile of the sorted samples,
// in BOTH directions (Quantile only promises an upper bound; interpolation
// must also not undershoot by more than a bucket width).
func TestQuantileInterpolatedRelErr(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	quantiles := []float64{0.5, 0.9, 0.99, 0.999}
	for trial := 0; trial < 50; trial++ {
		n := 100 + rng.Intn(5000)
		samples := make([]int64, n)
		h := NewHistogram(ScaleNone)
		for i := range samples {
			var v int64
			switch trial % 3 {
			case 0: // uniform small
				v = int64(rng.Intn(1000))
			case 1: // log-uniform over the full latency range
				v = int64(1) << uint(rng.Intn(40))
				v += rng.Int63n(v + 1)
			default: // heavy-tailed
				v = int64(rng.ExpFloat64() * 1e6)
			}
			samples[i] = v
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range quantiles {
			rank := int(float64(n)*q+0.9999) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= n {
				rank = n - 1
			}
			truth := samples[rank]
			got := h.QuantileInterpolated(q)
			slack := int64(float64(truth)*RelErrBound) + 1
			if got < truth-slack || got > truth+slack {
				t.Fatalf("trial %d q=%g: interpolated %d outside [%d, %d] (true %d)",
					trial, q, got, truth-slack, truth+slack, truth)
			}
		}
	}
}

// TestQuantileInterpolatedNotBucketBound pins the bug the interpolation
// fixed: a digest over a spread of samples inside one octave must not snap
// to the bucket's upper bound the way Quantile does.
func TestQuantileInterpolatedNotBucketBound(t *testing.T) {
	h := NewHistogram(ScaleNone)
	// 1000 samples spread across [1<<20, 1<<21): many land in the same
	// log-linear bucket, so the p50 read off bucket upper bounds is badly
	// quantized.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		h.Observe(1<<20 + rng.Int63n(1<<20))
	}
	ub := h.Quantile(0.5)
	in := h.QuantileInterpolated(0.5)
	if in > ub {
		t.Fatalf("interpolated p50 %d above bucket-bound p50 %d", in, ub)
	}
	if in == ub {
		t.Fatalf("interpolated p50 %d still snapped to the bucket bound", in)
	}
	// Empty and single-sample edge cases.
	e := NewHistogram(ScaleNone)
	if e.QuantileInterpolated(0.5) != 0 {
		t.Fatal("empty histogram p50 != 0")
	}
	e.Observe(0)
	if got := e.QuantileInterpolated(0.5); got != 0 {
		t.Fatalf("all-zero histogram p50 = %d", got)
	}
}

// TestSummarizeUsesInterpolationAndStatesError: the JSON digest carries its
// accuracy contract in-band.
func TestSummarizeUsesInterpolationAndStatesError(t *testing.T) {
	h := NewHistogram(ScaleNone)
	for i := int64(1); i <= 1000; i++ {
		h.Observe(1 << 20)
	}
	s := h.Summarize()
	if s.RelErr != RelErrBound {
		t.Fatalf("RelErr %g, want %g", s.RelErr, RelErrBound)
	}
	slack := (1 << 20) * RelErrBound
	if s.P50 < (1<<20)-slack || s.P50 > (1<<20)+slack {
		t.Fatalf("p50 %g not within %g of 2^20", s.P50, slack)
	}
}

// TestExemplarExposition: a histogram with an exemplar renders the
// OpenMetrics ` # {trace_id="…"}` annotation on exactly the matching
// _bucket line, and the result passes the lint.
func TestExemplarExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("app_latency_seconds", "request latency", ScaleSeconds)
	h.Observe(1500)
	h.Observe(2_000_000)
	h.SetExemplar(2_000_000, "4bf92f3577b34da6a3ce929d0e0e4736")

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var exLines []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " # {") {
			exLines = append(exLines, line)
		}
	}
	if len(exLines) != 1 {
		t.Fatalf("want exactly 1 exemplar line, got %d:\n%s", len(exLines), out)
	}
	if !strings.HasPrefix(exLines[0], "app_latency_seconds_bucket{") {
		t.Fatalf("exemplar not on a _bucket line: %q", exLines[0])
	}
	if !strings.Contains(exLines[0], `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.002`) {
		t.Fatalf("exemplar annotation wrong: %q", exLines[0])
	}
	if errs := LintExposition(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("exemplar exposition failed lint: %v", errs)
	}
}

// TestLintExemplarPlacement: the lint accepts exemplars only on _bucket
// lines and only with valid syntax.
func TestLintExemplarPlacement(t *testing.T) {
	bad := map[string]string{
		"exemplar on counter": "# TYPE x_total counter\nx_total 1 # {trace_id=\"ab\"} 1\n",
		"exemplar on gauge":   "# TYPE g gauge\ng 1 # {trace_id=\"ab\"} 1\n",
		"missing labels":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # trace 1\nh_sum 1\nh_count 1\n",
		"bad exemplar value":  "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"} nope\nh_sum 1\nh_count 1\n",
	}
	for name, input := range bad {
		if errs := LintExposition([]byte(input)); len(errs) == 0 {
			t.Errorf("%s: lint found nothing in %q", name, input)
		}
	}
	clean := "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"} 0.5 1700000000.123\nh_sum 1\nh_count 1\n"
	if errs := LintExposition([]byte(clean)); len(errs) != 0 {
		t.Errorf("clean exemplar flagged: %v", errs)
	}
}
