package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LintExposition is a promtool-free structural check of Prometheus text
// exposition data (version 0.0.4), used by the CI metrics-lint step and the
// `ingrass metricslint` subcommand. It verifies that:
//
//   - every line is a valid comment, HELP, TYPE, or sample line;
//   - each family declares HELP and TYPE exactly once, before its samples;
//   - no family or series (name + label set) appears twice;
//   - sample names match their declared family (allowing the _bucket/_sum/
//     _count suffixes only on histogram families);
//   - histogram le buckets are sorted, cumulative, and end at +Inf, with
//     _count equal to the +Inf bucket;
//   - metric and label names are well-formed and sample values parse.
//
// It returns one error per violation (nil-length means the input is clean).
func LintExposition(data []byte) []error {
	var errs []error
	addErr := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type familyState struct {
		typ      string
		hasHelp  bool
		hasType  bool
		helpLine int
	}
	families := make(map[string]*familyState)
	seenSeries := make(map[string]int)

	type histSeries struct {
		line    int
		buckets []struct {
			le  float64
			cum float64
			inf bool
		}
		count    float64
		hasCount bool
	}
	hists := make(map[string]*histSeries) // keyed by family + non-le labels

	// baseFamily resolves a sample name to its declared family.
	baseFamily := func(name string) (string, string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(name, suf); fam != name {
				if st, ok := families[fam]; ok && st.typ == "histogram" {
					return fam, suf
				}
			}
		}
		return name, ""
	}

	lines := strings.Split(string(data), "\n")
	for i, raw := range lines {
		ln := i + 1
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Other comments are legal and ignored.
				continue
			}
			name := fields[2]
			if !validName(name) {
				addErr(ln, "invalid metric name %q in %s", name, fields[1])
				continue
			}
			st := families[name]
			if st == nil {
				st = &familyState{}
				families[name] = st
			}
			switch fields[1] {
			case "HELP":
				if st.hasHelp {
					addErr(ln, "duplicate HELP for family %s (first at line %d)", name, st.helpLine)
				}
				st.hasHelp, st.helpLine = true, ln
			case "TYPE":
				if st.hasType {
					addErr(ln, "duplicate TYPE for family %s", name)
				}
				if len(fields) < 4 {
					addErr(ln, "TYPE for %s missing a type", name)
					continue
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					st.typ = fields[3]
				default:
					addErr(ln, "unknown TYPE %q for %s", fields[3], name)
				}
				st.hasType = true
			}
			continue
		}

		name, labels, value, exemplar, err := parseSample(line)
		if err != nil {
			addErr(ln, "%v", err)
			continue
		}
		fam, suffix := baseFamily(name)
		if exemplar != "" {
			if suffix != "_bucket" {
				addErr(ln, "exemplar on non-bucket sample %s", name)
			} else if eerr := validateExemplar(exemplar); eerr != nil {
				addErr(ln, "sample %s: %v", name, eerr)
			}
		}
		st := families[fam]
		if st == nil || !st.hasType {
			addErr(ln, "sample %s has no preceding TYPE declaration", name)
			continue
		}
		if st.typ == "histogram" && suffix == "" {
			addErr(ln, "bare sample %s on histogram family", name)
			continue
		}
		if st.typ != "histogram" && suffix != "" {
			// Unreachable via baseFamily, kept for clarity.
			addErr(ln, "suffix sample %s on %s family", name, st.typ)
			continue
		}

		nonLE := make([]string, 0, len(labels))
		var le string
		var hasLE bool
		for _, l := range labels {
			if l.Key == "le" {
				le, hasLE = l.Value, true
				continue
			}
			nonLE = append(nonLE, l.Key+"="+l.Value)
		}
		sort.Strings(nonLE)
		seriesKey := name + "{" + strings.Join(nonLE, ",") + "}"
		if hasLE {
			seriesKey += "{le=" + le + "}"
		}
		if prev, dup := seenSeries[seriesKey]; dup {
			addErr(ln, "duplicate series %s (first at line %d)", seriesKey, prev)
		}
		seenSeries[seriesKey] = ln

		if st.typ != "histogram" {
			continue
		}
		hkey := fam + "{" + strings.Join(nonLE, ",") + "}"
		hs := hists[hkey]
		if hs == nil {
			hs = &histSeries{line: ln}
			hists[hkey] = hs
		}
		switch suffix {
		case "_bucket":
			if !hasLE {
				addErr(ln, "histogram bucket %s missing le label", seriesKey)
				continue
			}
			inf := le == "+Inf"
			bound := 0.0
			if !inf {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					addErr(ln, "unparseable le %q", le)
					continue
				}
			}
			hs.buckets = append(hs.buckets, struct {
				le  float64
				cum float64
				inf bool
			}{bound, value, inf})
		case "_count":
			hs.count, hs.hasCount = value, true
		}
	}

	for key, hs := range hists {
		if len(hs.buckets) == 0 {
			errs = append(errs, fmt.Errorf("histogram %s has no buckets", key))
			continue
		}
		last := hs.buckets[len(hs.buckets)-1]
		if !last.inf {
			errs = append(errs, fmt.Errorf("histogram %s does not end at le=\"+Inf\"", key))
		}
		for i := 1; i < len(hs.buckets); i++ {
			prev, cur := hs.buckets[i-1], hs.buckets[i]
			if prev.inf {
				errs = append(errs, fmt.Errorf("histogram %s has buckets after le=\"+Inf\"", key))
				break
			}
			if !cur.inf && cur.le <= prev.le {
				errs = append(errs, fmt.Errorf("histogram %s le buckets not sorted (%g after %g)", key, cur.le, prev.le))
			}
			if cur.cum < prev.cum {
				errs = append(errs, fmt.Errorf("histogram %s buckets not cumulative (%g after %g)", key, cur.cum, prev.cum))
			}
		}
		if hs.hasCount && last.inf && hs.count != last.cum {
			errs = append(errs, fmt.Errorf("histogram %s _count %g != +Inf bucket %g", key, hs.count, last.cum))
		}
	}
	return errs
}

// parseSample splits one sample line into name, labels, value, and any
// trailing OpenMetrics exemplar (the portion after " # ", "" if absent).
func parseSample(line string) (string, []Label, float64, string, error) {
	var exemplar string
	if hash := strings.Index(line, " # "); hash >= 0 {
		exemplar = line[hash+3:]
		line = line[:hash]
	}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return "", nil, 0, "", fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	if !validName(name) {
		return "", nil, 0, "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[nameEnd:]
	var labels []Label
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return "", nil, 0, "", fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		labels, err = parseLabels(rest[1:close])
		if err != nil {
			return "", nil, 0, "", err
		}
		rest = rest[close+1:]
	}
	valStr := strings.TrimSpace(rest)
	// Optional timestamp after the value.
	if sp := strings.IndexByte(valStr, ' '); sp >= 0 {
		valStr = valStr[:sp]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return "", nil, 0, "", fmt.Errorf("unparseable value %q in %q", valStr, line)
	}
	return name, labels, v, exemplar, nil
}

// validateExemplar checks the OpenMetrics exemplar syntax this exposition
// emits: `{label="value",...} value [timestamp]`.
func validateExemplar(s string) error {
	if len(s) == 0 || s[0] != '{' {
		return fmt.Errorf("malformed exemplar %q: missing label set", s)
	}
	close := strings.Index(s, "}")
	if close < 0 {
		return fmt.Errorf("malformed exemplar %q: unterminated label set", s)
	}
	if _, err := parseLabels(s[1:close]); err != nil {
		return fmt.Errorf("malformed exemplar %q: %v", s, err)
	}
	fields := strings.Fields(s[close+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("malformed exemplar %q: want value [timestamp]", s)
	}
	for _, f := range fields {
		if _, err := parseValue(f); err != nil {
			return fmt.Errorf("malformed exemplar %q: unparseable %q", s, f)
		}
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k="v",k2="v2"`. Escapes inside values are honored.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i+1])
				}
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
			val.WriteByte(s[i])
		}
		if i == len(s) {
			return nil, fmt.Errorf("unterminated value for label %s", key)
		}
		out = append(out, Label{Key: key, Value: val.String()})
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}
