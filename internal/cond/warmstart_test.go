package cond

import (
	"context"
	"math"
	"testing"
)

// TestWarmStartConverges is the maintenance loop's estimator contract: after
// a cold estimate, re-running on a slightly perturbed pencil seeded with the
// previous Result.Vector must (a) agree with a full-budget cold estimate and
// (b) get there within a small iteration budget — the property that makes a
// periodic 12-iteration drift check affordable.
func TestWarmStartConverges(t *testing.T) {
	g := grid(8, 8)
	h := g.Clone()
	// Thin H: scale alternating edges to distort the pencil away from 1.
	for i := 0; i < h.NumEdges(); i += 3 {
		h.ScaleWeight(i, 0.25)
	}
	ctx := context.Background()

	cold, err := Estimate(ctx, g, h, Options{Seed: 3, LambdaMaxOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Vector) != g.NumNodes() {
		t.Fatalf("Result.Vector has %d entries, want %d", len(cold.Vector), g.NumNodes())
	}
	var norm float64
	for _, v := range cold.Vector {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-8 {
		t.Fatalf("Result.Vector norm^2 = %v, want 1", norm)
	}

	// Perturb the pencil slightly — what one maintenance interval of churn
	// does — then estimate warm with a tight budget vs cold with a full one.
	h2 := h.Clone()
	for i := 1; i < h2.NumEdges(); i += 7 {
		h2.ScaleWeight(i, 1.1)
	}
	full, err := Estimate(ctx, g, h2, Options{Seed: 4, LambdaMaxOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Estimate(ctx, g, h2, Options{
		MaxIters:      12,
		Seed:          4,
		LambdaMaxOnly: true,
		StartVector:   cold.Vector,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(warm.Kappa-full.Kappa) / full.Kappa; rel > 0.02 {
		t.Fatalf("warm kappa %v vs full %v (rel err %v)", warm.Kappa, full.Kappa, rel)
	}
	if warm.ItersMax > 12 {
		t.Fatalf("warm start used %d iterations, budget 12", warm.ItersMax)
	}
}

// TestWarmStartDegenerateFallsBack: a useless start vector (wrong length, or
// one that deflates to nothing) must fall back to the random start rather
// than poisoning the iteration.
func TestWarmStartDegenerateFallsBack(t *testing.T) {
	g := grid(6, 6)
	h := g.Clone()
	for i := 0; i < h.NumEdges(); i += 2 {
		h.ScaleWeight(i, 0.5)
	}
	ctx := context.Background()
	want, err := Estimate(ctx, g, h, Options{Seed: 9, LambdaMaxOnly: true})
	if err != nil {
		t.Fatal(err)
	}

	// Wrong length: ignored.
	short, err := Estimate(ctx, g, h, Options{Seed: 9, LambdaMaxOnly: true, StartVector: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(short.Kappa-want.Kappa)/want.Kappa > 1e-6 {
		t.Fatalf("short start vector changed the cold path: %v vs %v", short.Kappa, want.Kappa)
	}

	// Constant vector: deflation against ones collapses it to zero, which
	// must fall back to the seeded random start, not divide by zero.
	ones := make([]float64, g.NumNodes())
	for i := range ones {
		ones[i] = 1
	}
	flat, err := Estimate(ctx, g, h, Options{Seed: 9, LambdaMaxOnly: true, StartVector: ones})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(flat.Kappa) || math.IsInf(flat.Kappa, 0) {
		t.Fatalf("degenerate start produced kappa %v", flat.Kappa)
	}
	if math.Abs(flat.Kappa-want.Kappa)/want.Kappa > 1e-6 {
		t.Fatalf("collapsed start vector diverged from cold path: %v vs %v", flat.Kappa, want.Kappa)
	}
}
