// Package cond estimates the relative condition number kappa(L_G, L_H) —
// the spectral-similarity metric reported in all of the paper's tables. It
// is the ratio of the extreme generalized eigenvalues of the pencil
// L_G u = lambda L_H u restricted to the complement of the all-ones vector.
//
// The estimator runs power iterations on the operators L_H^+ L_G (largest
// eigenvalue) and L_G^+ L_H (reciprocal of the smallest), with every
// pseudo-inverse application performed by a Jacobi-preconditioned conjugate
// gradient solve. A dense oracle over the deflated pencil is provided for
// validation on small graphs.
package cond

import (
	"context"
	"fmt"
	"math"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// Options configures the estimator.
type Options struct {
	// MaxIters bounds power iterations per extreme. Default 60.
	MaxIters int
	// Tol is the relative Rayleigh-quotient change at which iteration
	// stops. Default 1e-3 (three significant figures, plenty for tables).
	Tol float64
	// Solver configures the inner pseudo-inverse solves (tolerance default
	// 1e-6) and Laplacian-application parallelism (Solver.Workers, frozen
	// into both pencil operators' kernel pools for the whole estimate).
	Solver solver.Options
	// Seed drives the random start vector.
	Seed uint64
	// StartVector, when non-nil with one entry per node, seeds the
	// lambda_max power iteration in place of the random draw (it is
	// deflated against ones and normalized first; a collapsed vector falls
	// back to the random start). Feeding back Result.Vector from a previous
	// estimate warm-starts the iteration: the maintenance loop's periodic
	// drift checks converge in a couple of iterations this way, because the
	// pencil's top eigenvector moves slowly under incremental edge churn.
	StartVector []float64
	// LambdaMaxOnly reports kappa = lambda_max(L_H^+ L_G), clamping
	// lambda_min to 1. This is the convention of the GRASS line of papers,
	// where H starts as a subgraph of G (lambda_min = 1 exactly) and
	// subsequent weight adjustments are judged only by how well they pull
	// the large generalized eigenvalues down. The paper's tables are
	// reproduced under this convention; leave it false for the honest
	// two-sided pencil estimate.
	LambdaMaxOnly bool
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 60
	}
	if o.Tol <= 0 {
		o.Tol = 1e-3
	}
	if o.Solver.Tol == 0 {
		o.Solver.Tol = 1e-6
	}
	return o
}

// Result reports the pencil extremes and their ratio.
type Result struct {
	LambdaMax float64
	LambdaMin float64
	Kappa     float64
	// Iterations actually used for (max, min).
	ItersMax, ItersMin int
	// Vector is the final lambda_max iterate (unit norm, ones-deflated).
	// Pass it as Options.StartVector to warm-start the next estimate on a
	// slightly mutated pencil.
	Vector []float64
}

// Estimate computes kappa(L_G, L_H). Both graphs must have the same node
// count and be connected; otherwise the pencil has spurious zero/infinite
// eigenvalues and an error is returned. ctx is threaded into every inner
// solve and checked once per power iteration; cancellation aborts with a
// solver.ErrCancelled-wrapped error.
func Estimate(ctx context.Context, g, h *graph.Graph, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g.NumNodes() != h.NumNodes() {
		return Result{}, fmt.Errorf("cond: node counts differ: %d vs %d", g.NumNodes(), h.NumNodes())
	}
	n := g.NumNodes()
	if n < 2 {
		return Result{LambdaMax: 1, LambdaMin: 1, Kappa: 1}, nil
	}
	if !graph.IsConnected(g) {
		return Result{}, fmt.Errorf("cond: G is disconnected")
	}
	if !graph.IsConnected(h) {
		return Result{}, fmt.Errorf("cond: H is disconnected (sparsifier must span)")
	}
	o := opts.withDefaults()

	gOp := sparse.NewLapOperator(g)
	gOp.SetWorkers(o.Solver.Workers)
	gOp.SetFormat(o.Solver.Format)
	hOp := sparse.NewLapOperator(h)
	hOp.SetWorkers(o.Solver.Workers)
	hOp.SetFormat(o.Solver.Format)
	hSolver := sparse.NewLaplacianSolver(h, o.Solver)
	gSolver := sparse.NewLaplacianSolver(g, o.Solver)

	lmax, itMax, vec, err := pencilPower(ctx, gOp, hSolver, o, o.StartVector)
	if err != nil {
		return Result{}, fmt.Errorf("cond: lambda_max: %w", err)
	}
	res := Result{LambdaMax: lmax, LambdaMin: 1, ItersMax: itMax, Vector: vec}
	if !o.LambdaMaxOnly {
		// The inverse pencil swaps the roles of G and H.
		linvMin, itMin, _, err := pencilPower(ctx, hOp, gSolver, o, nil)
		if err != nil {
			return Result{}, fmt.Errorf("cond: lambda_min: %w", err)
		}
		res.LambdaMin = 1 / linvMin
		res.ItersMin = itMin
	}
	res.Kappa = res.LambdaMax / res.LambdaMin
	return res, nil
}

// pencilPower runs power iteration for the largest eigenvalue of
// solveB^+ applied after opA, i.e. the largest lambda of A u = lambda B u.
// The Rayleigh quotient used is (x'Ax)/(x'Bx), evaluated matrix-free.
// start, when usable (right length, non-degenerate after deflation), seeds
// the iteration; the final iterate is returned alongside the estimate.
func pencilPower(ctx context.Context, opA sparse.Operator, solveB *sparse.LaplacianSolver, o Options, start []float64) (float64, int, []float64, error) {
	n := opA.Dim()
	x := make([]float64, n)
	ax := make([]float64, n)
	y := make([]float64, n)
	seeded := false
	if len(start) == n {
		copy(x, start)
		vecmath.ProjectOutOnes(x)
		seeded = vecmath.Normalize(x) > 0
	}
	if !seeded {
		rng := vecmath.NewRNG(o.Seed + 0x5bd1)
		rng.FillNormal(x)
		vecmath.ProjectOutOnes(x)
		if vecmath.Normalize(x) == 0 {
			return 0, 0, nil, fmt.Errorf("start vector collapsed")
		}
	}

	prev := 0.0
	rho := 0.0
	iters := 0
	for k := 0; k < o.MaxIters; k++ {
		if err := solver.CheckCancel(ctx); err != nil {
			return rho, iters, nil, err
		}
		iters = k + 1
		opA.Apply(ax, x)
		num := vecmath.Dot(x, ax) // x' A x

		// den = x' B x via the solver's forward operator; reuse y as scratch.
		solveB.ApplyLap(y, x)
		den := vecmath.Dot(x, y)
		if den <= 0 {
			return 0, iters, nil, fmt.Errorf("pencil denominator %g not positive", den)
		}
		rho = num / den

		// Next iterate: y = B^+ A x. A loose inner solve only slows
		// convergence of the outer iteration; ignore ErrNoConvergence. A
		// cancelled inner solve, however, leaves y = 0 and would otherwise
		// masquerade as convergence via the Normalize break below — check
		// the context before interpreting the iterate.
		_, _ = solveB.Solve(ctx, y, ax)
		if err := solver.CheckCancel(ctx); err != nil {
			return rho, iters, nil, err
		}
		vecmath.ProjectOutOnes(y)
		if vecmath.Normalize(y) == 0 {
			break
		}
		copy(x, y)
		if prev > 0 && math.Abs(rho-prev) <= o.Tol*rho {
			break
		}
		prev = rho
	}
	return rho, iters, append([]float64(nil), x...), nil
}

// DensePencil returns the ascending generalized eigenvalues of the pencil
// (L_G, L_H) on the complement of ones, computed densely. It is a test
// oracle for small graphs (n <= a few hundred).
func DensePencil(g, h *graph.Graph) ([]float64, error) {
	n := g.NumNodes()
	if n != h.NumNodes() {
		return nil, fmt.Errorf("cond: node counts differ")
	}
	if n < 2 {
		return nil, nil
	}
	lg := sparse.DenseLaplacian(g)
	lh := sparse.DenseLaplacian(h)

	// Orthonormal basis Q of the ones-complement: mean-centered coordinate
	// vectors, orthonormalized.
	raw := make([][]float64, 0, n-1)
	for i := 0; i < n-1; i++ {
		v := make([]float64, n)
		v[i] = 1
		vecmath.ProjectOutOnes(v)
		raw = append(raw, v)
	}
	q := vecmath.OrthonormalizeMGS(raw, 1e-12)
	m := len(q)

	project := func(l *vecmath.Dense) *vecmath.Dense {
		out := vecmath.NewDense(m, m)
		tmp := make([]float64, n)
		for j := 0; j < m; j++ {
			l.MulVec(tmp, q[j])
			for i := 0; i < m; i++ {
				out.Set(i, j, vecmath.Dot(q[i], tmp))
			}
		}
		return out
	}
	a := project(lg)
	b := project(lh)

	// B^{-1/2} via its eigendecomposition.
	bvals, bvecs, err := vecmath.SymEig(b)
	if err != nil {
		return nil, err
	}
	for _, v := range bvals {
		if v <= 1e-12 {
			return nil, fmt.Errorf("cond: H Laplacian singular on ones-complement (disconnected?)")
		}
	}
	// S = V diag(1/sqrt(d)) V'
	s := vecmath.NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var acc float64
			for k := 0; k < m; k++ {
				acc += bvecs.At(i, k) * bvecs.At(j, k) / math.Sqrt(bvals[k])
			}
			s.Set(i, j, acc)
		}
	}
	// C = S A S, symmetric; its eigenvalues are the pencil eigenvalues.
	sa := vecmath.NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var acc float64
			for k := 0; k < m; k++ {
				acc += s.At(i, k) * a.At(k, j)
			}
			sa.Set(i, j, acc)
		}
	}
	c := vecmath.NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var acc float64
			for k := 0; k < m; k++ {
				acc += sa.At(i, k) * s.At(k, j)
			}
			c.Set(i, j, acc)
		}
	}
	// Symmetrize against round-off before the eigensolve.
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			v := 0.5 * (c.At(i, j) + c.At(j, i))
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
	vals, _, err := vecmath.SymEig(c)
	if err != nil {
		return nil, err
	}
	return vals, nil
}
