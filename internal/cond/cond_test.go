package cond

import (
	"context"
	"math"
	"testing"

	"ingrass/internal/graph"
)

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func TestIdenticalGraphsKappaOne(t *testing.T) {
	g := grid(5, 5)
	res, err := Estimate(context.Background(), g, g.Clone(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Kappa-1) > 1e-3 {
		t.Fatalf("kappa(G,G) = %v, want 1", res.Kappa)
	}
}

func TestScaledGraphKappaOne(t *testing.T) {
	// H = 2G pointwise: pencil eigenvalues all 1/2, kappa still 1.
	g := grid(4, 4)
	h := g.Clone()
	for i := range h.Edges() {
		h.ScaleWeight(i, 2)
	}
	res, err := Estimate(context.Background(), g, h, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Kappa-1) > 1e-3 {
		t.Fatalf("kappa = %v, want 1", res.Kappa)
	}
	if math.Abs(res.LambdaMax-0.5) > 1e-3 {
		t.Fatalf("lambda_max = %v, want 0.5", res.LambdaMax)
	}
}

func TestEstimateMatchesDenseOracle(t *testing.T) {
	g := grid(4, 5)
	// H: spanning-tree-ish subgraph (drop some edges) keeping connectivity.
	h := graph.New(g.NumNodes(), g.NumEdges())
	uf := graph.NewUnionFind(g.NumNodes())
	for _, e := range g.Edges() {
		if uf.Union(e.U, e.V) {
			h.AddEdge(e.U, e.V, e.W)
		}
	}
	// Add back a couple of off-tree edges.
	added := 0
	for _, e := range g.Edges() {
		if added >= 3 {
			break
		}
		if _, ok := h.FindEdge(e.U, e.V); !ok {
			h.AddEdge(e.U, e.V, e.W)
			added++
		}
	}

	vals, err := DensePencil(g, h)
	if err != nil {
		t.Fatal(err)
	}
	wantMin, wantMax := vals[0], vals[len(vals)-1]
	wantKappa := wantMax / wantMin

	res, err := Estimate(context.Background(), g, h, Options{Seed: 3, MaxIters: 200, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// Power iteration approaches extremes from inside; 10% agreement is
	// plenty for table-grade estimates.
	if math.Abs(res.Kappa-wantKappa) > 0.1*wantKappa {
		t.Fatalf("kappa estimate %v vs oracle %v", res.Kappa, wantKappa)
	}
	if res.LambdaMax > wantMax*1.001 {
		t.Fatalf("lambda_max %v exceeds oracle %v", res.LambdaMax, wantMax)
	}
	if res.LambdaMin < wantMin*0.999 {
		t.Fatalf("lambda_min %v below oracle %v", res.LambdaMin, wantMin)
	}
}

func TestSubgraphPencilBounds(t *testing.T) {
	// For a subgraph H <= G with identical weights, x'L_Hx <= x'L_Gx, so
	// every pencil eigenvalue >= 1 and lambda_min == 1.
	g := grid(5, 5)
	h := graph.New(g.NumNodes(), 0)
	uf := graph.NewUnionFind(g.NumNodes())
	for _, e := range g.Edges() {
		if uf.Union(e.U, e.V) {
			h.AddEdge(e.U, e.V, e.W)
		}
	}
	vals, err := DensePencil(g, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v < 1-1e-8 {
			t.Fatalf("pencil eigenvalue %v below 1 for subgraph H", v)
		}
	}
	res, err := Estimate(context.Background(), g, h, Options{Seed: 4, MaxIters: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.LambdaMin < 0.98 || res.LambdaMin > 1.05 {
		t.Fatalf("lambda_min = %v, want ~1", res.LambdaMin)
	}
	if res.Kappa < 1 {
		t.Fatalf("kappa %v < 1", res.Kappa)
	}
}

func TestSparserTreeHasLargerKappa(t *testing.T) {
	// Dropping off-tree edges must increase kappa: the tree alone is a
	// worse approximation than tree + extras.
	g := grid(6, 6)
	tree := graph.New(g.NumNodes(), 0)
	uf := graph.NewUnionFind(g.NumNodes())
	var off []graph.Edge
	for _, e := range g.Edges() {
		if uf.Union(e.U, e.V) {
			tree.AddEdge(e.U, e.V, e.W)
		} else {
			off = append(off, e)
		}
	}
	richer := tree.Clone()
	for i := 0; i < len(off)/2; i++ {
		richer.AddEdge(off[i].U, off[i].V, off[i].W)
	}
	kTree, err := Estimate(context.Background(), g, tree, Options{Seed: 5, MaxIters: 150})
	if err != nil {
		t.Fatal(err)
	}
	kRich, err := Estimate(context.Background(), g, richer, Options{Seed: 5, MaxIters: 150})
	if err != nil {
		t.Fatal(err)
	}
	if kRich.Kappa >= kTree.Kappa {
		t.Fatalf("adding edges should reduce kappa: tree %v, richer %v", kTree.Kappa, kRich.Kappa)
	}
}

func TestEstimateErrors(t *testing.T) {
	g := grid(3, 3)
	if _, err := Estimate(context.Background(), g, grid(2, 2), Options{}); err == nil {
		t.Fatal("expected node-count mismatch error")
	}
	disconnected := graph.New(9, 1)
	disconnected.AddEdge(0, 1, 1)
	if _, err := Estimate(context.Background(), g, disconnected, Options{}); err == nil {
		t.Fatal("expected disconnected-H error")
	}
	if _, err := Estimate(context.Background(), disconnected, g, Options{}); err == nil {
		t.Fatal("expected disconnected-G error")
	}
}

func TestTinyGraphs(t *testing.T) {
	g := graph.New(1, 0)
	res, err := Estimate(context.Background(), g, g.Clone(), Options{})
	if err != nil || res.Kappa != 1 {
		t.Fatalf("single node: %+v err=%v", res, err)
	}
	g2 := graph.New(2, 1)
	g2.AddEdge(0, 1, 1)
	h2 := graph.New(2, 1)
	h2.AddEdge(0, 1, 4)
	res2, err := Estimate(context.Background(), g2, h2, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Kappa-1) > 1e-6 || math.Abs(res2.LambdaMax-0.25) > 1e-6 {
		t.Fatalf("2-node pencil: %+v", res2)
	}
}

func TestDensePencilIdentity(t *testing.T) {
	g := grid(3, 4)
	vals, err := DensePencil(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != g.NumNodes()-1 {
		t.Fatalf("pencil has %d eigenvalues, want %d", len(vals), g.NumNodes()-1)
	}
	for _, v := range vals {
		if math.Abs(v-1) > 1e-8 {
			t.Fatalf("identity pencil eigenvalue %v != 1", v)
		}
	}
}

func TestDensePencilWeightPerturbation(t *testing.T) {
	// Strengthening one H edge by delta shifts some eigenvalue below 1.
	g := grid(3, 3)
	h := g.Clone()
	h.ScaleWeight(0, 5)
	vals, err := DensePencil(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] >= 1-1e-9 {
		t.Fatalf("expected an eigenvalue below 1, got min %v", vals[0])
	}
	// And kappa > 1.
	if vals[len(vals)-1]/vals[0] <= 1 {
		t.Fatal("kappa must exceed 1 after perturbation")
	}
}
