// Package partition implements spectral graph bisection — one of the
// downstream applications the paper's introduction motivates (network
// partitioning/decomposition). The Fiedler vector (eigenvector of the
// second-smallest Laplacian eigenvalue) is computed by inverse power
// iteration, each step a preconditioned CG solve; thresholding it at its
// median yields a balanced cut whose weight approximates the sparsest
// balanced cut.
//
// The sparsifier connection: computing the Fiedler vector on the SPARSIFIER
// H instead of G costs proportionally fewer CG operations per iteration and
// yields a near-identical partition whenever kappa(L_G, L_H) is small —
// demonstrated in the package tests and examples/partition.
package partition

import (
	"context"
	"fmt"
	"sort"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// Options controls Fiedler-vector computation.
type Options struct {
	// MaxIters bounds inverse power iterations. Default 50.
	MaxIters int
	// Tol stops iteration when the iterate rotates by less than Tol
	// (1 - |<x_k, x_{k-1}>|). Default 1e-6.
	Tol float64
	// Solver configures the inner solves (tolerance default 1e-6) and
	// Laplacian-product parallelism (Solver.Workers, frozen into the
	// solver's persistent kernel pool for the whole inverse power
	// iteration).
	Solver solver.Options
	// Seed drives the random start vector.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Solver.Tol == 0 {
		o.Solver.Tol = 1e-6
	}
	return o
}

// Fiedler computes (an approximation of) the Fiedler vector of g by
// inverse power iteration: x <- normalize(project(L^+ x)). The smallest
// nonzero eigenvalue's eigenvector dominates because L^+ inverts the
// spectrum on the complement of ones. g must be connected. ctx is checked
// once per power iteration and threaded into the inner solves.
func Fiedler(ctx context.Context, g *graph.Graph, opts Options) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("partition: graph too small")
	}
	if !graph.IsConnected(g) {
		return nil, fmt.Errorf("partition: graph must be connected")
	}
	o := opts.withDefaults()
	lap := sparse.NewLaplacianSolver(g, o.Solver)

	rng := vecmath.NewRNG(o.Seed + 0xF1ED)
	x := make([]float64, n)
	next := make([]float64, n)
	rng.FillNormal(x)
	vecmath.ProjectOutOnes(x)
	if vecmath.Normalize(x) == 0 {
		return nil, fmt.Errorf("partition: start vector collapsed")
	}
	for k := 0; k < o.MaxIters; k++ {
		if err := solver.CheckCancel(ctx); err != nil {
			return nil, err
		}
		if _, err := lap.Solve(ctx, next, x); err != nil {
			// Loose inner solves only slow the outer convergence.
			_ = err
		}
		// A cancelled inner solve leaves next = 0, which the Normalize
		// break below would misread as convergence; report it instead.
		if err := solver.CheckCancel(ctx); err != nil {
			return nil, err
		}
		vecmath.ProjectOutOnes(next)
		if vecmath.Normalize(next) == 0 {
			break
		}
		dot := vecmath.Dot(next, x)
		copy(x, next)
		if 1-abs(dot) < o.Tol {
			break
		}
	}
	return x, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Bisection is a two-way partition of a graph's nodes.
type Bisection struct {
	// Side[v] is 0 or 1.
	Side []int
	// CutWeight is the total weight of edges crossing the partition.
	CutWeight float64
	// Sizes counts nodes per side.
	Sizes [2]int
	// Conductance is CutWeight / min(vol0, vol1) with vol the sum of
	// weighted degrees on a side.
	Conductance float64
}

// Bisect spectrally bisects g: Fiedler vector, median threshold (exactly
// balanced on odd/even sizes up to one node).
func Bisect(ctx context.Context, g *graph.Graph, opts Options) (*Bisection, error) {
	fiedler, err := Fiedler(ctx, g, opts)
	if err != nil {
		return nil, err
	}
	return SplitByVector(g, fiedler), nil
}

// BisectWithSparsifier computes the Fiedler vector on the sparsifier h but
// evaluates and returns the induced partition of g — the cheap-partitioning
// workflow the sparsifier enables. h must share g's node set.
func BisectWithSparsifier(ctx context.Context, g, h *graph.Graph, opts Options) (*Bisection, error) {
	if g.NumNodes() != h.NumNodes() {
		return nil, fmt.Errorf("partition: node count mismatch %d vs %d", g.NumNodes(), h.NumNodes())
	}
	fiedler, err := Fiedler(ctx, h, opts)
	if err != nil {
		return nil, err
	}
	return SplitByVector(g, fiedler), nil
}

// SplitByVector thresholds the given node scores at their median and
// evaluates the induced bisection of g.
func SplitByVector(g *graph.Graph, score []float64) *Bisection {
	n := g.NumNodes()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return score[idx[a]] < score[idx[b]] })
	b := &Bisection{Side: make([]int, n)}
	for rank, v := range idx {
		if rank >= n/2 {
			b.Side[v] = 1
		}
	}
	return evaluate(g, b)
}

// evaluate fills the cut metrics of b.
func evaluate(g *graph.Graph, b *Bisection) *Bisection {
	var vol [2]float64
	b.Sizes = [2]int{}
	for v, s := range b.Side {
		b.Sizes[s]++
		vol[s] += g.WeightedDegree(v)
	}
	b.CutWeight = 0
	for _, e := range g.Edges() {
		if b.Side[e.U] != b.Side[e.V] {
			b.CutWeight += e.W
		}
	}
	minVol := vol[0]
	if vol[1] < minVol {
		minVol = vol[1]
	}
	if minVol > 0 {
		b.Conductance = b.CutWeight / minVol
	}
	return b
}
