package partition

import (
	"context"
	"math"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/vecmath"
)

// twoCliquesBridge builds two k-cliques joined by one weak edge: the
// canonical graph whose optimal bisection is obvious.
func twoCliquesBridge(k int) *graph.Graph {
	g := graph.New(2*k, k*k)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			g.AddEdge(a, b, 5)
			g.AddEdge(k+a, k+b, 5)
		}
	}
	g.AddEdge(0, k, 0.1)
	return g
}

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func TestFiedlerErrors(t *testing.T) {
	if _, err := Fiedler(context.Background(), graph.New(1, 0), Options{}); err == nil {
		t.Fatal("expected too-small error")
	}
	dis := graph.New(4, 1)
	dis.AddEdge(0, 1, 1)
	if _, err := Fiedler(context.Background(), dis, Options{}); err == nil {
		t.Fatal("expected disconnected error")
	}
}

func TestFiedlerSeparatesCliques(t *testing.T) {
	g := twoCliquesBridge(8)
	f, err := Fiedler(context.Background(), g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All of clique A on one sign, all of clique B on the other.
	signA := f[0] > 0
	for v := 1; v < 8; v++ {
		if (f[v] > 0) != signA {
			t.Fatalf("clique A not sign-coherent at node %d", v)
		}
	}
	for v := 8; v < 16; v++ {
		if (f[v] > 0) == signA {
			t.Fatalf("clique B on the same side at node %d", v)
		}
	}
	// Mean-zero, unit-norm.
	if math.Abs(vecmath.Sum(f)) > 1e-6 {
		t.Fatalf("Fiedler vector not mean-zero: %v", vecmath.Sum(f))
	}
	if math.Abs(vecmath.Norm2(f)-1) > 1e-6 {
		t.Fatalf("Fiedler vector not normalized: %v", vecmath.Norm2(f))
	}
}

func TestBisectCliques(t *testing.T) {
	g := twoCliquesBridge(10)
	b, err := Bisect(context.Background(), g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Sizes[0] != 10 || b.Sizes[1] != 10 {
		t.Fatalf("unbalanced: %v", b.Sizes)
	}
	// The only cut edge should be the bridge.
	if math.Abs(b.CutWeight-0.1) > 1e-9 {
		t.Fatalf("cut weight %v, want 0.1 (bridge only)", b.CutWeight)
	}
	if b.Conductance <= 0 {
		t.Fatal("conductance must be positive")
	}
}

func TestBisectGridBalanced(t *testing.T) {
	g := grid(12, 12)
	b, err := Bisect(context.Background(), g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b.Sizes[0] != 72 || b.Sizes[1] != 72 {
		t.Fatalf("unbalanced: %v", b.Sizes)
	}
	// A 12x12 grid's balanced spectral cut should be close to a straight
	// line: 12 edges (allow slack for discrete effects).
	if b.CutWeight > 20 {
		t.Fatalf("grid cut weight %v too large", b.CutWeight)
	}
}

func TestBisectWithSparsifierQuality(t *testing.T) {
	// Partitioning through the sparsifier must land within a small factor
	// of the full-graph spectral cut.
	g := grid(14, 14)
	init, err := grass.InitialSparsifier(g, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Bisect(context.Background(), g, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	viaH, err := BisectWithSparsifier(context.Background(), g, init.H, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if viaH.Sizes[0] != viaH.Sizes[1] {
		t.Fatalf("sparsifier partition unbalanced: %v", viaH.Sizes)
	}
	if viaH.CutWeight > 3*full.CutWeight+1 {
		t.Fatalf("sparsifier cut %v vs full %v: too much quality loss",
			viaH.CutWeight, full.CutWeight)
	}
}

func TestBisectWithSparsifierErrors(t *testing.T) {
	g := grid(4, 4)
	if _, err := BisectWithSparsifier(context.Background(), g, grid(3, 3), Options{}); err == nil {
		t.Fatal("expected node mismatch error")
	}
}

func TestSplitByVectorEvaluation(t *testing.T) {
	// Path 0-1-2-3 with scores forcing {0,1} vs {2,3}: one cut edge.
	g := graph.New(4, 3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 1)
	b := SplitByVector(g, []float64{-2, -1, 1, 2})
	if b.Side[0] != b.Side[1] || b.Side[2] != b.Side[3] || b.Side[0] == b.Side[2] {
		t.Fatalf("sides %v", b.Side)
	}
	if b.CutWeight != 2 {
		t.Fatalf("cut %v, want 2", b.CutWeight)
	}
	// Conductance = 2 / min(vol) = 2 / 4.
	if math.Abs(b.Conductance-0.5) > 1e-12 {
		t.Fatalf("conductance %v", b.Conductance)
	}
}
