package core

import (
	"testing"

	"ingrass/internal/graph"
)

func TestApplyBatchAddsThenDeletes(t *testing.T) {
	g, s := setup(t, 8, 8, 0.1, 50)
	n := g.NumNodes()
	adds := []graph.Edge{
		{U: 0, V: n - 1, W: 2},
		{U: 1, V: n - 2, W: 1.5},
	}
	dels := []graph.Edge{
		{U: 0, V: 1}, // a grid edge present in G from the start
	}
	before := s.Stats()
	res, err := s.ApplyBatch(adds, dels)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Additions) != len(adds) {
		t.Fatalf("got %d add decisions, want %d", len(res.Additions), len(adds))
	}
	if len(res.Deletions) != len(dels) {
		t.Fatalf("got %d delete results, want %d", len(res.Deletions), len(dels))
	}
	after := s.Stats()
	if after.Processed != before.Processed+len(adds) {
		t.Fatalf("processed %d -> %d", before.Processed, after.Processed)
	}
	if after.Deleted != before.Deleted+len(dels) {
		t.Fatalf("deleted %d -> %d", before.Deleted, after.Deleted)
	}
}

func TestApplyBatchDeleteOfSameBatchAdd(t *testing.T) {
	g, s := setup(t, 6, 6, 0.1, 50)
	n := g.NumNodes()
	e := graph.Edge{U: 0, V: n - 1, W: 3}
	res, err := s.ApplyBatch([]graph.Edge{e}, []graph.Edge{{U: e.U, V: e.V}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Additions) != 1 || len(res.Deletions) != 1 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
}

func TestApplyBatchInvalidAddLeavesStateUntouched(t *testing.T) {
	g, s := setup(t, 6, 6, 0.1, 50)
	edges, weight := g.NumEdges(), g.TotalWeight()
	_, err := s.ApplyBatch([]graph.Edge{{U: 0, V: 0, W: 1}}, nil)
	if err == nil {
		t.Fatal("want error for self-loop")
	}
	if g.NumEdges() != edges || g.TotalWeight() != weight {
		t.Fatal("failed batch mutated G")
	}
}

func TestApplyBatchInvalidDeleteReportsAppliedAdds(t *testing.T) {
	g, s := setup(t, 6, 6, 0.1, 50)
	n := g.NumNodes()
	res, err := s.ApplyBatch(
		[]graph.Edge{{U: 2, V: n - 3, W: 1}},
		[]graph.Edge{{U: 0, V: 0}}, // invalid: no such edge
	)
	if err == nil {
		t.Fatal("want error for bad deletion")
	}
	if len(res.Additions) != 1 {
		t.Fatalf("applied additions not reported: %+v", res)
	}
}

func TestApplyBatchEmpty(t *testing.T) {
	_, s := setup(t, 4, 4, 0.1, 50)
	res, err := s.ApplyBatch(nil, nil)
	if err != nil || len(res.Additions) != 0 || len(res.Deletions) != 0 {
		t.Fatalf("empty batch: %+v, %v", res, err)
	}
}
