package core

import (
	"fmt"
	"math"
	"sort"

	"ingrass/internal/graph"
)

// Edge deletion is an EXTENSION beyond the paper (which handles only
// insertions; deletions appear as future work in the dynamic-sparsifier
// literature it cites). The implementation uses "soft deletion": a deleted
// edge's weight is reduced to a negligible epsilon relative to the graph's
// mean weight, which makes it spectrally invisible (its contribution to
// every quadratic form is ~1e-12 of typical) while preserving the stable
// edge indexing that the multilevel sketch relies on.
//
// When a deletion spectrally disconnects the sparsifier (the deleted edge
// was load-bearing, e.g. a tree edge), the highest-distortion original-graph
// edge crossing the resulting cut is promoted into H as a replacement, so H
// keeps spanning G.

// softDeleteFactor scales the mean weight down to the tombstone weight.
const softDeleteFactor = 1e-12

// DeleteResult describes how one deletion was handled.
type DeleteResult struct {
	Edge graph.Edge
	// InSparsifier reports whether the edge was present in H.
	InSparsifier bool
	// Replacement is the H edge index of a promoted replacement edge, or -1.
	Replacement int
}

// DeleteEdges removes the given edges from G (and from H when present).
// Each entry identifies an edge by endpoints; the weight field is ignored.
// Unknown or already-deleted edges produce an error before any mutation.
//
// Deletions are rarer than insertions in the incremental-EDA setting; this
// implementation favors correctness over speed and costs O(|H|) per
// deletion that requires a replacement search (bridge deletions), O(deg)
// otherwise.
func (s *Sparsifier) DeleteEdges(edges []graph.Edge) ([]DeleteResult, error) {
	// Validate first: all-or-nothing.
	type target struct {
		gIdx, hIdx int
	}
	targets := make([]target, len(edges))
	for i, e := range edges {
		gi, ok := s.G.FindEdge(e.U, e.V)
		if !ok {
			return nil, fmt.Errorf("core: DeleteEdges: no edge (%d, %d) in G", e.U, e.V)
		}
		if s.G.Edge(gi).W <= s.tombstoneWeight()*10 {
			return nil, fmt.Errorf("core: DeleteEdges: edge (%d, %d) already deleted", e.U, e.V)
		}
		hi := -1
		if idx, ok := s.H.FindEdge(e.U, e.V); ok {
			hi = idx
		}
		targets[i] = target{gIdx: gi, hIdx: hi}
	}

	results := make([]DeleteResult, 0, len(edges))
	for i, e := range edges {
		t := targets[i]
		res := DeleteResult{Edge: e, Replacement: -1}
		s.G.SetWeight(t.gIdx, s.tombstoneWeight())
		if t.hIdx >= 0 {
			res.InSparsifier = true
			s.H.SetWeight(t.hIdx, s.tombstoneWeight())
			if rep, ok := s.replaceIfBridge(e.U, e.V); ok {
				res.Replacement = rep
			}
		}
		s.stats.Deleted++
		results = append(results, res)
	}
	return results, nil
}

// tombstoneWeight returns the soft-deletion weight for the current graph.
func (s *Sparsifier) tombstoneWeight() float64 {
	mean := s.G.TotalWeight() / float64(s.G.NumEdges()+1)
	if mean <= 0 {
		mean = 1
	}
	return mean * softDeleteFactor
}

// replaceIfBridge checks whether u and v became spectrally disconnected in
// H (reachable only through tombstoned edges) and, if so, promotes the
// highest-distortion live G edge crossing the cut into H. Returns the new H
// edge index.
func (s *Sparsifier) replaceIfBridge(u, v int) (int, bool) {
	side := s.liveReachable(u)
	if side[v] {
		return -1, false // still connected through live edges
	}
	// Candidates: live G edges with exactly one endpoint on u's side.
	tomb := s.tombstoneWeight() * 10
	type cand struct {
		e graph.Edge
		d float64
	}
	var best cand
	found := false
	for _, e := range s.G.Edges() {
		if e.W <= tomb {
			continue
		}
		if side[e.U] == side[e.V] {
			continue
		}
		d := e.W * s.dec.ResistanceBound(e.U, e.V)
		if math.IsInf(d, 1) {
			d = e.W * 1e18 // unknown bound: strongly prefer reconnecting
		}
		if !found || d > best.d {
			best = cand{e: e, d: d}
			found = true
		}
	}
	if !found {
		return -1, false // G itself is cut; nothing can reconnect H
	}
	ei := s.H.AddEdge(best.e.U, best.e.V, best.e.W)
	s.sk.Register(ei)
	s.stats.Promoted++
	return ei, true
}

// liveReachable returns the set of nodes reachable from start in H through
// edges with non-tombstone weight.
func (s *Sparsifier) liveReachable(start int) []bool {
	tomb := s.tombstoneWeight() * 10
	seen := make([]bool, s.H.NumNodes())
	seen[start] = true
	stack := []int{start}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range s.H.Adj(x) {
			if seen[a.To] || s.H.Edge(a.Edge).W <= tomb {
				continue
			}
			seen[a.To] = true
			stack = append(stack, a.To)
		}
	}
	return seen
}

// CompactDeleted rebuilds G and H without tombstoned edges and re-runs the
// setup phase, returning the (possibly re-indexed) sparsifier. Long
// deletion streams should compact periodically: tombstones cost memory and
// slightly pollute resistance estimates.
func (s *Sparsifier) CompactDeleted() error {
	tomb := s.tombstoneWeight() * 10
	liveIdx := func(g *graph.Graph) []int {
		out := make([]int, 0, g.NumEdges())
		for i, e := range g.Edges() {
			if e.W > tomb {
				out = append(out, i)
			}
		}
		sort.Ints(out)
		return out
	}
	newG := s.G.Subgraph(liveIdx(s.G))
	newH := s.H.Subgraph(liveIdx(s.H))
	rebuilt, err := NewSparsifier(newG, newH, s.cfg)
	if err != nil {
		return fmt.Errorf("core: compaction rebuild: %w", err)
	}
	stats := s.stats
	*s = *rebuilt
	s.stats = stats
	return nil
}
