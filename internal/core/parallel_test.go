package core

import (
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/vecmath"
)

// Parallel distortion estimation must produce identical decisions to the
// serial path (the estimates are pure functions; only their evaluation is
// fanned out).
func TestParallelBatchMatchesSerial(t *testing.T) {
	g := grid(16, 16)
	init, err := grass.InitialSparsifier(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}

	build := func(workers int) *Sparsifier {
		s, err := NewSparsifier(g.Clone(), init.H.Clone(), Config{
			TargetCond: 60,
			Workers:    workers,
			LRD:        lrd.Config{Krylov: krylov.Config{Seed: 2}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial := build(1)
	parallel := build(8)

	// A batch large enough to trigger the parallel path.
	r := vecmath.NewRNG(3)
	var batch []graph.Edge
	seen := map[uint64]bool{}
	for len(batch) < 400 {
		u, v := r.Intn(g.NumNodes()), r.Intn(g.NumNodes())
		if u == v || g.HasEdge(u, v) || seen[graph.KeyOf(u, v)] {
			continue
		}
		seen[graph.KeyOf(u, v)] = true
		batch = append(batch, graph.Edge{U: u, V: v, W: r.Range(0.5, 2)})
	}

	d1, err := serial.UpdateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := parallel.UpdateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("decision counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].Edge != d2[i].Edge || d1[i].Action != d2[i].Action ||
			d1[i].Distortion != d2[i].Distortion {
			t.Fatalf("decision %d differs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
	if serial.H.NumEdges() != parallel.H.NumEdges() {
		t.Fatal("resulting sparsifiers differ in size")
	}
	if serial.Stats() != parallel.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", serial.Stats(), parallel.Stats())
	}
}
