package core

import (
	"math"
	"testing"
	"testing/quick"

	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/vecmath"
)

// buildRandomSystem creates (G, Sparsifier) over a random connected graph.
func buildRandomSystem(seed uint64, n, extra int, target float64) (*graph.Graph, *Sparsifier, error) {
	r := vecmath.NewRNG(seed)
	g := graph.New(n, n+extra)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[r.Intn(i)], r.Range(0.1, 10))
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, r.Range(0.1, 10))
		}
	}
	init, err := grass.InitialSparsifier(g, 0.12, seed)
	if err != nil {
		return nil, nil, err
	}
	s, err := NewSparsifier(g, init.H, Config{
		TargetCond: target,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: seed ^ 0x1}},
	})
	return g, s, err
}

// randomBatch draws fresh (non-adjacent) edges for g.
func randomBatch(g *graph.Graph, count int, seed uint64) []graph.Edge {
	r := vecmath.NewRNG(seed)
	var out []graph.Edge
	tries := 0
	for len(out) < count && tries < 100*count {
		tries++
		u, v := r.Intn(g.NumNodes()), r.Intn(g.NumNodes())
		if u == v || g.HasEdge(u, v) {
			continue
		}
		out = append(out, graph.Edge{U: u, V: v, W: r.Range(0.5, 2)})
	}
	return out
}

// Property: weight conservation — after any update batch, H's total weight
// equals its old total plus the batch's total (every action conserves the
// new conductance, whether included, merged, or redistributed).
func TestWeightConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, s, err := buildRandomSystem(seed, 40, 80, 60)
		if err != nil {
			return false
		}
		batch := randomBatch(g, 15, seed^0x2)
		var batchW float64
		for _, e := range batch {
			batchW += e.W
		}
		before := s.H.TotalWeight()
		decs, err := s.UpdateBatch(batch)
		if err != nil || len(decs) != len(batch) {
			return false
		}
		after := s.H.TotalWeight()
		return math.Abs(after-(before+batchW)) <= 1e-6*(1+after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: G always receives every batch edge; H only grows by the
// included count; the sketch stays consistent (each included edge is
// findable as a connecting edge afterwards).
func TestUpdateAccountingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, s, err := buildRandomSystem(seed, 35, 60, 40)
		if err != nil {
			return false
		}
		gEdges := g.NumEdges()
		hEdges := s.H.NumEdges()
		batch := randomBatch(g, 12, seed^0x3)
		decs, err := s.UpdateBatch(batch)
		if err != nil {
			return false
		}
		included := 0
		for _, d := range decs {
			if d.Action == Included {
				included++
				// The included edge must now connect its clusters.
				if s.sk.PairCount(s.filterLevel, d.Edge.U, d.Edge.V) == 0 &&
					!s.sk.SameCluster(s.filterLevel, d.Edge.U, d.Edge.V) {
					return false
				}
			}
		}
		return g.NumEdges() == gEdges+len(batch) && s.H.NumEdges() == hEdges+included
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: idempotent redundancy — submitting the same edge twice never
// includes it twice (the second copy must merge or redistribute).
func TestRepeatEdgeNeverIncludedTwiceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, s, err := buildRandomSystem(seed, 30, 50, 50)
		if err != nil {
			return false
		}
		batch := randomBatch(g, 5, seed^0x4)
		if len(batch) == 0 {
			return true
		}
		if _, err := s.UpdateBatch(batch); err != nil {
			return false
		}
		// Resubmit identical endpoints (now parallel edges in G).
		decs, err := s.UpdateBatch(batch)
		if err != nil {
			return false
		}
		for _, d := range decs {
			if d.Action == Included {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: H remains connected through arbitrary update streams whenever
// H(0) was connected.
func TestConnectivityPreservedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, s, err := buildRandomSystem(seed, 30, 40, 30)
		if err != nil {
			return false
		}
		if !graph.IsConnected(s.H) {
			return true // skip rare disconnected H(0)
		}
		for round := 0; round < 3; round++ {
			batch := randomBatch(g, 8, seed^uint64(round+5))
			if _, err := s.UpdateBatch(batch); err != nil {
				return false
			}
		}
		return graph.IsConnected(s.H)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: deeper target condition numbers never choose a shallower
// filter level (monotonicity of FilterLevel in C).
func TestFilterLevelMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		_, s, err := buildRandomSystem(seed, 40, 60, 10)
		if err != nil {
			return false
		}
		d := s.Decomposition()
		prev := 0
		for _, c := range []float64{4, 16, 64, 256, 1024} {
			l := d.FilterLevel(c)
			if l < prev {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
