package core

import "ingrass/internal/graph"

// BatchResult reports one coalesced write batch.
type BatchResult struct {
	Additions []Decision
	Deletions []DeleteResult
}

// ApplyBatch applies one coalesced write batch: all insertions in a single
// UpdateBatch pass, then all deletions in a single DeleteEdges pass. The
// concurrent service layer flushes its coalesced insertions through this
// hook (it applies deletions per request instead, for exact error
// isolation), and publishes a fresh snapshot only after the whole batch
// lands, so readers never observe a half-applied batch.
//
// Ordering adds before deletes means a batch may insert an edge and delete
// it again in the same flush. Each phase validates fully before mutating:
// an invalid insertion fails the batch with nothing applied; an invalid
// deletion fails after the additions have landed, and the returned
// BatchResult still carries those applied additions so the caller can
// account for them.
func (s *Sparsifier) ApplyBatch(adds, dels []graph.Edge) (BatchResult, error) {
	var res BatchResult
	if len(adds) > 0 {
		decs, err := s.UpdateBatch(adds)
		if err != nil {
			return res, err
		}
		res.Additions = decs
	}
	if len(dels) > 0 {
		dres, err := s.DeleteEdges(dels)
		if err != nil {
			return res, err
		}
		res.Deletions = dres
	}
	return res, nil
}
