package core

import (
	"math"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// streamEdges generates a deterministic pseudo-random update stream over the
// node set [0, n): mostly new long-range edges with varied weights.
func streamEdges(n, count int, seed uint64) []graph.Edge {
	rng := vecmath.NewRNG(seed)
	out := make([]graph.Edge, 0, count)
	for len(out) < count {
		u := int(rng.Uint64() % uint64(n))
		v := int(rng.Uint64() % uint64(n))
		if u == v {
			continue
		}
		w := 0.25 + 2*rng.Float64()
		out = append(out, graph.Edge{U: u, V: v, W: w})
	}
	return out
}

func graphsBitEqual(t *testing.T, name string, a, b *graph.Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: size mismatch %v vs %v", name, a, b)
	}
	for i := range a.Edges() {
		ea, eb := a.Edge(i), b.Edge(i)
		if ea.U != eb.U || ea.V != eb.V || math.Float64bits(ea.W) != math.Float64bits(eb.W) {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", name, i, ea, eb)
		}
	}
}

// TestRestoreReplaysIdentically is the core determinism contract behind WAL
// recovery: capture a sparsifier mid-stream, restore it from the captured
// state, feed both the identical remaining stream (insertions and
// deletions), and demand bit-identical graphs, decisions, and counters.
func TestRestoreReplaysIdentically(t *testing.T) {
	_, live := setup(t, 10, 10, 0.1, 50)
	n := live.G.NumNodes()

	// Phase 1: shared prefix, applied to the live engine only.
	prefix := streamEdges(n, 120, 7)
	if _, err := live.ApplyBatch(prefix[:60], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := live.DeleteEdges([]graph.Edge{prefix[3], prefix[17]}); err != nil {
		t.Fatal(err)
	}
	if _, err := live.ApplyBatch(prefix[60:], nil); err != nil {
		t.Fatal(err)
	}

	// Capture and restore.
	st := live.PersistentState()
	restored, err := RestoreSparsifier(st)
	if err != nil {
		t.Fatal(err)
	}
	if restored.FilterLevel() != live.FilterLevel() {
		t.Fatalf("filter level %d vs %d", restored.FilterLevel(), live.FilterLevel())
	}
	if restored.Stats() != live.Stats() {
		t.Fatalf("stats diverge at capture: %+v vs %+v", restored.Stats(), live.Stats())
	}
	graphsBitEqual(t, "G at capture", restored.G, live.G)
	graphsBitEqual(t, "H at capture", restored.H, live.H)

	// Phase 2: identical suffix on both engines; every decision must match.
	suffix := streamEdges(n, 150, 99)
	for k := 0; k < len(suffix); k += 30 {
		batch := suffix[k : k+30]
		dLive, err := live.ApplyBatch(append([]graph.Edge(nil), batch...), nil)
		if err != nil {
			t.Fatal(err)
		}
		dRest, err := restored.ApplyBatch(append([]graph.Edge(nil), batch...), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(dLive.Additions) != len(dRest.Additions) {
			t.Fatalf("batch %d: decision counts %d vs %d", k, len(dLive.Additions), len(dRest.Additions))
		}
		for i := range dLive.Additions {
			a, b := dLive.Additions[i], dRest.Additions[i]
			if a.Edge != b.Edge || a.Action != b.Action || a.Target != b.Target ||
				math.Float64bits(a.Distortion) != math.Float64bits(b.Distortion) {
				t.Fatalf("batch %d decision %d: %+v vs %+v", k, i, a, b)
			}
		}
		// Interleave a deletion every other batch.
		if (k/30)%2 == 0 {
			del := []graph.Edge{batch[1]}
			rLive, errLive := live.DeleteEdges(del)
			rRest, errRest := restored.DeleteEdges(del)
			if (errLive == nil) != (errRest == nil) {
				t.Fatalf("batch %d delete: err %v vs %v", k, errLive, errRest)
			}
			if errLive == nil {
				for i := range rLive {
					if rLive[i] != rRest[i] {
						t.Fatalf("batch %d delete result %d: %+v vs %+v", k, i, rLive[i], rRest[i])
					}
				}
			}
		}
	}

	if live.Stats() != restored.Stats() {
		t.Fatalf("final stats diverge: %+v vs %+v", live.Stats(), restored.Stats())
	}
	graphsBitEqual(t, "final G", restored.G, live.G)
	graphsBitEqual(t, "final H", restored.H, live.H)
}

// TestRestoreAfterResparsify checks that the replay basis follows a
// Resparsify: the rebuilt decomposition's input graph becomes the new HBase.
func TestRestoreAfterResparsify(t *testing.T) {
	_, live := setup(t, 8, 8, 0.1, 50)
	n := live.G.NumNodes()
	if _, err := live.ApplyBatch(streamEdges(n, 80, 3), nil); err != nil {
		t.Fatal(err)
	}
	if err := live.Resparsify(); err != nil {
		t.Fatal(err)
	}
	st := live.PersistentState()
	if st.HBase.NumEdges() != live.H.NumEdges() {
		t.Fatalf("HBase has %d edges, H has %d right after resparsify",
			st.HBase.NumEdges(), live.H.NumEdges())
	}
	restored, err := RestoreSparsifier(st)
	if err != nil {
		t.Fatal(err)
	}
	batch := streamEdges(n, 40, 5)
	dLive, err := live.ApplyBatch(append([]graph.Edge(nil), batch...), nil)
	if err != nil {
		t.Fatal(err)
	}
	dRest, err := restored.ApplyBatch(append([]graph.Edge(nil), batch...), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dLive.Additions {
		if dLive.Additions[i] != dRest.Additions[i] {
			t.Fatalf("decision %d: %+v vs %+v", i, dLive.Additions[i], dRest.Additions[i])
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	_, live := setup(t, 6, 6, 0.1, 50)
	good := live.PersistentState()

	bad := good
	bad.G = nil
	if _, err := RestoreSparsifier(bad); err == nil {
		t.Fatal("want error on nil G")
	}

	bad = good
	bad.HBase = graph.New(good.G.NumNodes()+1, 0)
	if _, err := RestoreSparsifier(bad); err == nil {
		t.Fatal("want error on node-count mismatch")
	}

	bad = good
	bad.FilterLevel = 0
	if _, err := RestoreSparsifier(bad); err == nil {
		t.Fatal("want error on filter level 0")
	}
}
