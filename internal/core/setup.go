package core

import (
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/lrd"
	"ingrass/internal/sketch"
)

// SetupBasis is a setup phase (LRD decomposition + multilevel sketch) built
// offline against a frozen copy-on-write snapshot of the sparsifier. It is
// the unit of background maintenance: a controller snapshots H, runs
// BuildSetup without holding any engine lock, and the writer later adopts
// the result in O(delta) via AdoptSetup — the only in-lock work is
// registering the edges admitted while the build ran.
//
// A basis is single-use: AdoptSetup consumes it.
type SetupBasis struct {
	cfg   Config
	hBase *graph.Graph
	dec   *lrd.Decomposition
	sk    *sketch.Structure
}

// BuildSetup runs the setup phase (lrd.Build + sketch indexing) over the
// frozen sparsifier snapshot hBase. It mutates nothing and may run
// concurrently with updates to the live sparsifier the snapshot was taken
// from. cfg.TargetCond selects the filtering level the adopting sparsifier
// will use; the other fields must match the adopter's configuration.
func BuildSetup(hBase *graph.Graph, cfg Config) (*SetupBasis, error) {
	if hBase.NumNodes() == 0 {
		return nil, fmt.Errorf("core: empty setup basis")
	}
	cfg = cfg.withDefaults()
	dec, err := lrd.Build(hBase, cfg.LRD)
	if err != nil {
		return nil, fmt.Errorf("core: basis LRD: %w", err)
	}
	sk, err := sketch.New(dec, hBase)
	if err != nil {
		return nil, fmt.Errorf("core: basis sketch: %w", err)
	}
	return &SetupBasis{cfg: cfg, hBase: hBase, dec: dec, sk: sk}, nil
}

// TargetCond returns the target condition number the basis was built for.
func (b *SetupBasis) TargetCond() float64 { return b.cfg.TargetCond }

// HBase returns the frozen sparsifier snapshot the basis was built from. It
// is the replay anchor a durable maintenance record must carry (see
// internal/wal): rebuilding from these exact bytes and re-registering the
// live sparsifier's later edges reconstructs the adopted state bit-exactly.
func (b *SetupBasis) HBase() *graph.Graph { return b.hBase }

// AdoptSetup swaps the sparsifier's setup structures for a basis built
// offline on an earlier snapshot of its own H. The sketch is advanced over
// the edges H gained since the snapshot (endpoint-only registration, so the
// result is bit-identical to a fresh setup over the current H — the
// persist.go invariant), the filtering level is recomputed for the basis's
// TargetCond, and the basis's snapshot becomes the new persistence anchor
// (hBase). G, H, and the accumulated counters are untouched.
//
// The caller must guarantee b.hBase is a snapshot of this sparsifier's H:
// the live H must extend it by index (soft deletion never removes edges, so
// every historical snapshot is an index prefix of the present).
func (s *Sparsifier) AdoptSetup(b *SetupBasis) error {
	if b.sk == nil {
		return fmt.Errorf("core: setup basis already adopted")
	}
	if b.hBase.NumNodes() != s.H.NumNodes() {
		return fmt.Errorf("core: basis has %d nodes, sparsifier %d", b.hBase.NumNodes(), s.H.NumNodes())
	}
	if b.hBase.NumEdges() > s.H.NumEdges() {
		return fmt.Errorf("core: basis indexes %d edges, sparsifier has only %d", b.hBase.NumEdges(), s.H.NumEdges())
	}
	if err := b.sk.Advance(s.H); err != nil {
		return err
	}
	s.cfg = b.cfg
	s.dec = b.dec
	s.sk = b.sk
	s.hBase = b.hBase
	s.filterLevel = b.dec.FilterLevel(b.cfg.TargetCond)
	if b.cfg.MaxFilterLevel > 0 && s.filterLevel > b.cfg.MaxFilterLevel {
		s.filterLevel = b.cfg.MaxFilterLevel
	}
	b.sk = nil
	return nil
}

// AdoptBasis rebuilds the setup structures from the given frozen snapshot
// and adopts them with TargetCond overriding the configured target. It is
// the WAL-replay entry point for maintenance records: replaying
// AdoptBasis(rec.HBase, rec.TargetCond) after the preceding batches
// reproduces, bit for bit, the state a live background swap left behind,
// because the live swap was BuildSetup on those same snapshot bytes plus an
// endpoint-only sketch catch-up.
func (s *Sparsifier) AdoptBasis(hBase *graph.Graph, targetCond float64) error {
	cfg := s.cfg
	cfg.TargetCond = targetCond
	b, err := BuildSetup(hBase, cfg)
	if err != nil {
		return err
	}
	return s.AdoptSetup(b)
}

// Config returns the sparsifier's (normalized) configuration.
func (s *Sparsifier) Config() Config { return s.cfg }
