// Package core implements the inGRASS algorithm (paper Section III): the
// paper's primary contribution. Given an original graph G(0), its initial
// sparsifier H(0) (from internal/grass), and a target condition number C,
// the setup phase builds a multilevel resistance embedding of H(0) via LRD
// decomposition plus a multilevel cluster-connectivity sketch; the update
// phase then processes streams of newly inserted edges in O(log N) each:
//
//   - Spectral distortion estimation: a new edge's distortion is its
//     weight times the resistance-diameter bound of the first LRD level at
//     which its endpoints share a cluster (Eq. 6 with the embedding bound
//     in place of the exact effective resistance). Batches are processed
//     in descending distortion order so the most spectrally-critical edges
//     are considered first.
//
//   - Spectral similarity filtering at level L (the deepest level whose
//     largest cluster has at most C/2 nodes): an edge internal to a level-L
//     cluster is discarded and its weight redistributed over that cluster's
//     sparsifier edges; an edge between two clusters already connected in H
//     is discarded and its weight merged into the existing connecting edge;
//     everything else is spectrally unique and is appended to H.
package core

import (
	"fmt"
	"sort"
	"sync"

	"ingrass/internal/graph"
	"ingrass/internal/lrd"
	"ingrass/internal/sketch"
)

// Config controls a Sparsifier.
type Config struct {
	// TargetCond is the desired relative condition number C. It determines
	// the filtering level; larger C filters more aggressively (coarser
	// clusters). Default 100.
	TargetCond float64
	// LRD configures the setup-phase decomposition.
	LRD lrd.Config
	// MaxFilterLevel, if positive, caps the filtering level regardless of
	// TargetCond (ablation hook).
	MaxFilterLevel int
	// DisableWeightTransfer drops the weight of discarded edges instead of
	// folding it into existing sparsifier edges (ablation hook: transfer
	// keeps H's total conductance aligned with G's but can overweight
	// popular regions, trading lambda_min for lambda_max).
	DisableWeightTransfer bool
	// Workers parallelizes the batch distortion-estimation pass (the
	// "parallel-friendly" aspect the paper highlights: per-edge estimates
	// are independent O(log N) embedding lookups). 0 or 1 = serial.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.TargetCond <= 0 {
		c.TargetCond = 100
	}
	return c
}

// Action describes what the update phase did with one new edge.
type Action int

const (
	// Included: the edge was spectrally unique and was added to H.
	Included Action = iota
	// Merged: clusters already connected; weight added to the existing edge.
	Merged
	// Redistributed: intra-cluster edge; weight spread over cluster edges.
	Redistributed
)

// String renders the action name.
func (a Action) String() string {
	switch a {
	case Included:
		return "included"
	case Merged:
		return "merged"
	case Redistributed:
		return "redistributed"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Decision records the handling of one new edge (diagnostics and tests).
type Decision struct {
	Edge       graph.Edge
	Action     Action
	Distortion float64
	// Target is the H edge index that received the weight for Merged, or
	// the new edge's H index for Included, or -1 for Redistributed.
	Target int
}

// Stats accumulates update-phase counters across batches.
type Stats struct {
	Processed     int
	Included      int
	Merged        int
	Redistributed int
	// Deleted counts soft-deleted edges; Promoted counts replacement edges
	// pulled into H after bridge deletions (extension; see delete.go).
	Deleted  int
	Promoted int
}

// Sparsifier is the incremental sparsifier state. It owns both the original
// graph G (new edges are appended to it) and the sparsifier H.
type Sparsifier struct {
	G *graph.Graph
	H *graph.Graph

	cfg         Config
	dec         *lrd.Decomposition
	sk          *sketch.Structure
	filterLevel int
	stats       Stats

	// hBase is a copy-on-write snapshot of H as it was when dec/sk were
	// built (setup or the latest Resparsify/CompactDeleted). It is the
	// replay basis for durable persistence: rebuilding the decomposition
	// from hBase and re-registering H's later edges in index order
	// reconstructs dec/sk exactly (see persist.go).
	hBase *graph.Graph

	scratchIntra []int
}

// NewSparsifier runs the setup phase over the initial sparsifier h of g.
// Both graphs must share the node set; h must be connected (a spanning
// sparsifier), as the paper assumes.
func NewSparsifier(g, h *graph.Graph, cfg Config) (*Sparsifier, error) {
	if g.NumNodes() != h.NumNodes() {
		return nil, fmt.Errorf("core: G has %d nodes, H has %d", g.NumNodes(), h.NumNodes())
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	cfg = cfg.withDefaults()
	dec, err := lrd.Build(h, cfg.LRD)
	if err != nil {
		return nil, fmt.Errorf("core: setup LRD: %w", err)
	}
	sk, err := sketch.New(dec, h)
	if err != nil {
		return nil, fmt.Errorf("core: setup sketch: %w", err)
	}
	s := &Sparsifier{G: g, H: h, cfg: cfg, dec: dec, sk: sk, hBase: h.Snapshot()}
	s.filterLevel = dec.FilterLevel(cfg.TargetCond)
	if cfg.MaxFilterLevel > 0 && s.filterLevel > cfg.MaxFilterLevel {
		s.filterLevel = cfg.MaxFilterLevel
	}
	return s, nil
}

// FilterLevel returns the LRD level used by similarity filtering.
func (s *Sparsifier) FilterLevel() int { return s.filterLevel }

// Decomposition exposes the setup-phase LRD hierarchy (read-only).
func (s *Sparsifier) Decomposition() *lrd.Decomposition { return s.dec }

// Stats returns accumulated update counters.
func (s *Sparsifier) Stats() Stats { return s.stats }

// EstimateDistortion returns the spectral-distortion estimate the update
// phase would assign to a new edge (u, v, w): w times the embedding's
// resistance bound.
func (s *Sparsifier) EstimateDistortion(e graph.Edge) float64 {
	return e.W * s.dec.ResistanceBound(e.U, e.V)
}

// UpdateBatch processes one iteration of newly introduced edges: appends
// them all to G, sorts them by estimated spectral distortion (descending),
// and applies the filtering rules to decide membership in H. It returns the
// per-edge decisions in processing order.
//
// Edges referencing unknown nodes are rejected with an error before any
// mutation. Edges whose endpoints lie in different components of H(0) are
// always included (their distortion bound is infinite: nothing in H
// approximates them).
func (s *Sparsifier) UpdateBatch(batch []graph.Edge) ([]Decision, error) {
	n := s.G.NumNodes()
	for _, e := range batch {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V || !(e.W > 0) {
			return nil, fmt.Errorf("core: invalid new edge %+v", e)
		}
	}
	// Order by estimated distortion, most critical first (paper III-C1).
	// Estimates are independent embedding lookups, so large batches fan
	// out across workers.
	type scored struct {
		e graph.Edge
		d float64
	}
	work := make([]scored, len(batch))
	if w := s.cfg.Workers; w > 1 && len(batch) >= 256 {
		var wg sync.WaitGroup
		chunk := (len(batch) + w - 1) / w
		for k := 0; k < w; k++ {
			lo := k * chunk
			if lo >= len(batch) {
				break
			}
			hi := lo + chunk
			if hi > len(batch) {
				hi = len(batch)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					work[i] = scored{e: batch[i], d: s.EstimateDistortion(batch[i])}
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i, e := range batch {
			work[i] = scored{e: e, d: s.EstimateDistortion(e)}
		}
	}
	sort.SliceStable(work, func(a, b int) bool { return work[a].d > work[b].d })

	decisions := make([]Decision, 0, len(work))
	for _, it := range work {
		s.G.AddEdge(it.e.U, it.e.V, it.e.W)
		d := s.applyOne(it.e, it.d)
		decisions = append(decisions, d)
	}
	return decisions, nil
}

// applyOne runs the level-L filtering rules for a single new edge.
func (s *Sparsifier) applyOne(e graph.Edge, distortion float64) Decision {
	L := s.filterLevel
	dec := Decision{Edge: e, Distortion: distortion, Target: -1}
	s.stats.Processed++

	switch {
	case s.sk.SameCluster(L, e.U, e.V):
		// Intra-cluster: the sparsifier already connects these nodes well
		// (resistance bounded by the cluster diameter). Spread the new
		// conductance proportionally over the cluster's internal edges.
		s.scratchIntra = s.sk.IntraClusterEdges(L, e.U, s.scratchIntra[:0])
		if len(s.scratchIntra) == 0 {
			// Defensive: a multi-node cluster always has internal sparsifier
			// edges (it was formed by contracting them), but if the
			// hierarchy was built from a different H, fall back to include.
			break
		}
		if !s.cfg.DisableWeightTransfer {
			var total float64
			for _, ei := range s.scratchIntra {
				total += s.H.Edge(ei).W
			}
			if total <= 0 {
				break
			}
			factor := 1 + e.W/total
			for _, ei := range s.scratchIntra {
				s.H.ScaleWeight(ei, factor)
			}
		}
		dec.Action = Redistributed
		s.stats.Redistributed++
		return dec

	default:
		if pairEdges := s.sk.PairEdges(L, e.U, e.V); len(pairEdges) > 0 {
			// Redundant inter-cluster edge: spread the weight across every
			// sparsifier edge already crossing this cluster pair,
			// proportionally to their weights. Dumping it all on one
			// representative would overweight that edge relative to G and
			// drive the pencil's smallest eigenvalue toward zero.
			if !s.cfg.DisableWeightTransfer {
				var total float64
				for _, ei := range pairEdges {
					total += s.H.Edge(ei).W
				}
				if total <= 0 {
					break
				}
				factor := 1 + e.W/total
				for _, ei := range pairEdges {
					s.H.ScaleWeight(ei, factor)
				}
			}
			dec.Action = Merged
			dec.Target = pairEdges[0]
			s.stats.Merged++
			return dec
		}
	}

	// Spectrally unique: include in H and index at every level.
	ei := s.H.AddEdge(e.U, e.V, e.W)
	s.sk.Register(ei)
	dec.Action = Included
	dec.Target = ei
	s.stats.Included++
	return dec
}

// Density returns the current off-tree density of H relative to G
// (the paper's D measure).
func (s *Sparsifier) Density() float64 {
	return graph.OffTreeDensity(s.H.NumEdges(), s.H.NumNodes(), s.G.NumEdges())
}

// Resparsify rebuilds the setup-phase structures from the CURRENT H. Long
// streams slowly invalidate the embedding (H's resistances drift as edges
// accumulate); the paper treats setup as a one-time cost, but a production
// deployment can periodically amortize a rebuild. Counters are preserved.
func (s *Sparsifier) Resparsify() error {
	return s.AdoptBasis(s.H.Snapshot(), s.cfg.TargetCond)
}
