package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/vecmath"
)

// applyStream drives a sparsifier through a deterministic add/delete stream
// in fixed-size batches, deleting one earlier stream edge every fourth batch.
func applyStream(t *testing.T, s *Sparsifier, stream []graph.Edge, batchSize int) {
	t.Helper()
	for k := 0; k+batchSize <= len(stream); k += batchSize {
		batch := stream[k : k+batchSize]
		if _, err := s.ApplyBatch(append([]graph.Edge(nil), batch...), nil); err != nil {
			t.Fatal(err)
		}
		if (k/batchSize)%4 == 3 {
			if _, err := s.DeleteEdges([]graph.Edge{batch[0]}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// decisionsBitEqual demands two decision streams match exactly, including the
// float bits of the distortion estimates that drove them.
func decisionsBitEqual(t *testing.T, tag string, a, b []Decision) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: decision counts %d vs %d", tag, len(a), len(b))
	}
	for i := range a {
		if a[i].Edge != b[i].Edge || a[i].Action != b[i].Action || a[i].Target != b[i].Target ||
			math.Float64bits(a[i].Distortion) != math.Float64bits(b[i].Distortion) {
			t.Fatalf("%s: decision %d: %+v vs %+v", tag, i, a[i], b[i])
		}
	}
}

// roundTrip simulates the WAL boundary: the snapshot a maintenance record
// carries arrives at replay as freshly decoded bytes, not the same pointer.
func roundTrip(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	out, err := graph.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSwapEquivalenceProperty is the maintenance subsystem's correctness
// anchor: a background rebuild — BuildSetup on a frozen snapshot of H while
// further edges land, then AdoptSetup with its endpoint-only sketch catch-up —
// must leave the sparsifier in exactly the state AdoptBasis produces from the
// serialized snapshot bytes (the WAL-replay path). Both engines then face an
// identical suffix stream and must emit bit-identical decisions and graphs,
// across seeds and initial densities.
func TestSwapEquivalenceProperty(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		for _, density := range []float64{0.1, 0.3} {
			t.Run(fmt.Sprintf("seed=%d/density=%g", seed, density), func(t *testing.T) {
				g1, live := buildGridPair(t, seed, density)
				g2, replayed := buildGridPair(t, seed, density)
				graphsBitEqual(t, "initial G", g1, g2)

				n := live.G.NumNodes()
				prefix := streamEdges(n, 96, seed^0x10)
				applyStream(t, live, prefix, 8)
				applyStream(t, replayed, prefix, 8)

				// The live engine snapshots H and starts the offline build;
				// the delta stream lands while the build runs.
				hSnap := live.H.Snapshot()
				basis, err := BuildSetup(hSnap, live.Config())
				if err != nil {
					t.Fatal(err)
				}
				delta := streamEdges(n, 24, seed^0x20)
				applyStream(t, live, delta, 8)
				applyStream(t, replayed, delta, 8)
				if err := live.AdoptSetup(basis); err != nil {
					t.Fatal(err)
				}

				// The replayed engine adopts from the snapshot's serialized
				// bytes — what a recovery replaying the maintenance record does.
				if err := replayed.AdoptBasis(roundTrip(t, hSnap), basis.TargetCond()); err != nil {
					t.Fatal(err)
				}

				if live.FilterLevel() != replayed.FilterLevel() {
					t.Fatalf("filter levels %d vs %d", live.FilterLevel(), replayed.FilterLevel())
				}
				graphsBitEqual(t, "H after swap", live.H, replayed.H)

				// The decisive check: identical downstream behavior.
				suffix := streamEdges(n, 80, seed^0x30)
				for k := 0; k+10 <= len(suffix); k += 10 {
					batch := suffix[k : k+10]
					dLive, err := live.ApplyBatch(append([]graph.Edge(nil), batch...), nil)
					if err != nil {
						t.Fatal(err)
					}
					dRep, err := replayed.ApplyBatch(append([]graph.Edge(nil), batch...), nil)
					if err != nil {
						t.Fatal(err)
					}
					decisionsBitEqual(t, fmt.Sprintf("suffix batch %d", k), dLive.Additions, dRep.Additions)
				}
				graphsBitEqual(t, "final G", live.G, replayed.G)
				graphsBitEqual(t, "final H", live.H, replayed.H)
				if live.Stats() != replayed.Stats() {
					t.Fatalf("stats diverge: %+v vs %+v", live.Stats(), replayed.Stats())
				}
			})
		}
	}
}

// buildGridPair builds a random-graph sparsifier with fully deterministic
// seeds so two calls with the same arguments are bit-identical.
func buildGridPair(t *testing.T, seed uint64, density float64) (*graph.Graph, *Sparsifier) {
	t.Helper()
	const n, extra = 60, 120
	r := vecmath.NewRNG(seed)
	g := graph.New(n, n+extra)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[r.Intn(i)], r.Range(0.1, 10))
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, r.Range(0.1, 10))
		}
	}
	init, err := grass.InitialSparsifier(g, density, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparsifier(g, init.H, Config{
		TargetCond: 50,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: seed ^ 0x1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

// TestAdoptSetupValidation pins the guard rails: a basis is single-use, must
// match the sparsifier's node count, and can never index more edges than the
// live H holds.
func TestAdoptSetupValidation(t *testing.T) {
	_, s := setup(t, 8, 8, 0.1, 50)
	basis, err := BuildSetup(s.H.Snapshot(), s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdoptSetup(basis); err != nil {
		t.Fatal(err)
	}
	if err := s.AdoptSetup(basis); err == nil {
		t.Fatal("want error adopting a consumed basis")
	}

	// Node-count mismatch.
	small := graph.New(4, 3)
	small.AddEdge(0, 1, 1)
	small.AddEdge(1, 2, 1)
	small.AddEdge(2, 3, 1)
	if err := s.AdoptBasis(small, 50); err == nil {
		t.Fatal("want error on node-count mismatch")
	}

	// A basis from a future H (more edges than the adopter) must be refused.
	_, ahead := setup(t, 8, 8, 0.1, 50)
	if _, err := ahead.ApplyBatch(streamEdges(ahead.G.NumNodes(), 40, 9), nil); err != nil {
		t.Fatal(err)
	}
	_, behind := setup(t, 8, 8, 0.1, 50)
	b2, err := BuildSetup(ahead.H.Snapshot(), ahead.Config())
	if err != nil {
		t.Fatal(err)
	}
	if behind.H.NumEdges() < ahead.H.NumEdges() {
		if err := behind.AdoptSetup(b2); err == nil {
			t.Fatal("want error adopting a basis ahead of H")
		}
	}
}

// TestAdoptBasisMatchesResparsify: adopting a basis built from the current H
// is exactly Resparsify (which is implemented through the same path); the
// test pins that equivalence against regressions in either entry point.
func TestAdoptBasisMatchesResparsify(t *testing.T) {
	_, a := setup(t, 8, 8, 0.1, 50)
	_, b := setup(t, 8, 8, 0.1, 50)
	stream := streamEdges(a.G.NumNodes(), 60, 11)
	applyStream(t, a, stream, 6)
	applyStream(t, b, stream, 6)

	if err := a.Resparsify(); err != nil {
		t.Fatal(err)
	}
	if err := b.AdoptBasis(b.H.Snapshot(), b.Config().TargetCond); err != nil {
		t.Fatal(err)
	}
	if a.FilterLevel() != b.FilterLevel() {
		t.Fatalf("filter levels %d vs %d", a.FilterLevel(), b.FilterLevel())
	}
	suffix := streamEdges(a.G.NumNodes(), 30, 12)
	dA, err := a.ApplyBatch(append([]graph.Edge(nil), suffix...), nil)
	if err != nil {
		t.Fatal(err)
	}
	dB, err := b.ApplyBatch(append([]graph.Edge(nil), suffix...), nil)
	if err != nil {
		t.Fatal(err)
	}
	decisionsBitEqual(t, "post-resparsify", dA.Additions, dB.Additions)
	graphsBitEqual(t, "final H", a.H, b.H)
}
