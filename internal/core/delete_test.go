package core

import (
	"context"
	"testing"

	"ingrass/internal/cond"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/vecmath"
)

func deletionSetup(t *testing.T) (*graph.Graph, *Sparsifier) {
	t.Helper()
	g := grid(10, 10)
	init, err := grass.InitialSparsifier(g, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparsifier(g, init.H, Config{
		TargetCond: 50,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestDeleteValidation(t *testing.T) {
	_, s := deletionSetup(t)
	if _, err := s.DeleteEdges([]graph.Edge{{U: 0, V: 55}}); err == nil {
		t.Fatal("deleting a non-edge must error")
	}
	// Valid delete, then double-delete errors.
	if _, err := s.DeleteEdges([]graph.Edge{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteEdges([]graph.Edge{{U: 0, V: 1}}); err == nil {
		t.Fatal("double deletion must error")
	}
}

func TestDeleteNonSparsifierEdge(t *testing.T) {
	g, s := deletionSetup(t)
	// Find a G edge absent from H.
	var target graph.Edge
	found := false
	for _, e := range g.Edges() {
		if _, ok := s.H.FindEdge(e.U, e.V); !ok {
			target = e
			found = true
			break
		}
	}
	if !found {
		t.Skip("H contains every G edge at this density")
	}
	hEdges := s.H.NumEdges()
	res, err := s.DeleteEdges([]graph.Edge{target})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].InSparsifier {
		t.Fatal("edge was not in H")
	}
	if res[0].Replacement != -1 {
		t.Fatal("no replacement expected")
	}
	if s.H.NumEdges() != hEdges {
		t.Fatal("H must be untouched")
	}
	// G weight tombstoned.
	gi, _ := g.FindEdge(target.U, target.V)
	if g.Edge(gi).W > s.tombstoneWeight()*10 {
		t.Fatal("G edge not tombstoned")
	}
}

func TestDeleteBridgePromotesReplacement(t *testing.T) {
	// Build a sparsifier that is exactly a spanning tree: every edge is a
	// bridge, so deleting any in-H edge must promote a replacement.
	g := grid(8, 8)
	init, err := grass.Sparsify(g, grass.Config{TargetDensity: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparsifier(g, init.H, Config{
		TargetCond: 50,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Delete a tree edge that exists in G (all H edges are G edges here).
	he := s.H.Edge(0)
	res, err := s.DeleteEdges([]graph.Edge{{U: he.U, V: he.V}})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].InSparsifier {
		t.Fatal("tree edge must be in H")
	}
	if res[0].Replacement < 0 {
		t.Fatal("bridge deletion must promote a replacement")
	}
	// H must remain spectrally connected: all nodes reachable through live
	// edges.
	reach := s.liveReachable(0)
	for v, ok := range reach {
		if !ok {
			t.Fatalf("node %d disconnected after replacement", v)
		}
	}
	if s.Stats().Promoted != 1 || s.Stats().Deleted != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestDeleteKeepsKappaFinite(t *testing.T) {
	g, s := deletionSetup(t)
	// Delete a handful of random existing edges.
	r := vecmath.NewRNG(5)
	deleted := 0
	for deleted < 8 {
		e := g.Edge(r.Intn(g.NumEdges()))
		if e.W <= s.tombstoneWeight()*10 {
			continue
		}
		if _, err := s.DeleteEdges([]graph.Edge{{U: e.U, V: e.V}}); err != nil {
			continue // already deleted via another index
		}
		deleted++
	}
	res, err := cond.Estimate(context.Background(), s.G, s.H, cond.Options{Seed: 6, MaxIters: 60, LambdaMaxOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kappa <= 0 || res.Kappa > 1e4 {
		t.Fatalf("kappa exploded after deletions: %v", res.Kappa)
	}
}

func TestCompactDeleted(t *testing.T) {
	g, s := deletionSetup(t)
	gEdges := g.NumEdges()
	hEdges := s.H.NumEdges()
	// Delete two known edges, one definitely in H (take H's first edge).
	he := s.H.Edge(0)
	if _, err := s.DeleteEdges([]graph.Edge{{U: he.U, V: he.V}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CompactDeleted(); err != nil {
		t.Fatal(err)
	}
	if s.G.NumEdges() >= gEdges {
		t.Fatalf("compaction did not shrink G: %d >= %d", s.G.NumEdges(), gEdges)
	}
	// H lost the deleted edge but may have gained a replacement.
	if s.H.NumEdges() > hEdges {
		t.Fatalf("H grew beyond replacement bound: %d > %d", s.H.NumEdges(), hEdges)
	}
	// Counters survive, and updates still work after compaction.
	if s.Stats().Deleted != 1 {
		t.Fatalf("stats lost: %+v", s.Stats())
	}
	if _, err := s.UpdateBatch([]graph.Edge{{U: 0, V: s.G.NumNodes() - 1, W: 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllOrNothing(t *testing.T) {
	g, s := deletionSetup(t)
	e0 := g.Edge(0)
	before := g.Edge(0).W
	// Batch with one valid and one invalid entry: nothing changes.
	_, err := s.DeleteEdges([]graph.Edge{
		{U: e0.U, V: e0.V},
		{U: 0, V: 55}, // not an edge
	})
	if err == nil {
		t.Fatal("expected validation error")
	}
	if g.Edge(0).W != before {
		t.Fatal("failed batch must not mutate")
	}
}
