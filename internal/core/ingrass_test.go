package core

import (
	"context"
	"math"
	"testing"

	"ingrass/internal/cond"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/vecmath"
)

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

// setup builds (G, H(0), Sparsifier) for a grid.
func setup(t *testing.T, rows, cols int, density, targetCond float64) (*graph.Graph, *Sparsifier) {
	t.Helper()
	g := grid(rows, cols)
	init, err := grass.InitialSparsifier(g, density, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparsifier(g, init.H, Config{
		TargetCond: targetCond,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestSetupBasics(t *testing.T) {
	g, s := setup(t, 8, 8, 0.1, 50)
	if s.G != g {
		t.Fatal("G not retained")
	}
	if s.FilterLevel() < 1 || s.FilterLevel() >= s.Decomposition().Levels {
		t.Fatalf("filter level %d out of range", s.FilterLevel())
	}
	if s.Density() <= 0 {
		t.Fatalf("density %v", s.Density())
	}
}

func TestNewSparsifierErrors(t *testing.T) {
	g := grid(3, 3)
	if _, err := NewSparsifier(g, grid(2, 2), Config{}); err == nil {
		t.Fatal("expected node mismatch error")
	}
	if _, err := NewSparsifier(graph.New(0, 0), graph.New(0, 0), Config{}); err == nil {
		t.Fatal("expected empty graph error")
	}
}

func TestUpdateBatchValidation(t *testing.T) {
	_, s := setup(t, 5, 5, 0.1, 50)
	bad := [][]graph.Edge{
		{{U: 0, V: 0, W: 1}},
		{{U: -1, V: 3, W: 1}},
		{{U: 0, V: 99, W: 1}},
		{{U: 0, V: 1, W: 0}},
		{{U: 0, V: 1, W: -2}},
	}
	for i, b := range bad {
		if _, err := s.UpdateBatch(b); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	// No mutation happened.
	if s.Stats().Processed != 0 {
		t.Fatal("failed batch must not mutate state")
	}
}

// The three filtering outcomes of Fig. 3: include (unique), merge
// (redundant inter-cluster), redistribute (intra-cluster).
func TestFigure3FilteringSemantics(t *testing.T) {
	g, s := setup(t, 8, 8, 0.12, 30)
	L := s.FilterLevel()
	d := s.Decomposition()

	// Find an intra-cluster pair (same cluster at L, no existing G edge).
	intraP, intraQ := -1, -1
	for p := 0; p < g.NumNodes() && intraP < 0; p++ {
		for q := p + 1; q < g.NumNodes(); q++ {
			if d.ClusterID(L, p) == d.ClusterID(L, q) && !g.HasEdge(p, q) {
				intraP, intraQ = p, q
				break
			}
		}
	}
	// Find a connected inter-cluster pair: take an existing H edge crossing
	// clusters and pick nearby non-adjacent nodes in the same two clusters.
	mergeP, mergeQ := -1, -1
	for _, e := range s.H.Edges() {
		cu, cv := d.ClusterID(L, e.U), d.ClusterID(L, e.V)
		if cu == cv {
			continue
		}
		// Another node pair spanning the same cluster pair.
		for p := 0; p < g.NumNodes() && mergeP < 0; p++ {
			if d.ClusterID(L, p) != cu {
				continue
			}
			for q := 0; q < g.NumNodes(); q++ {
				if d.ClusterID(L, q) == cv && !g.HasEdge(p, q) && p != q {
					mergeP, mergeQ = p, q
					break
				}
			}
		}
		if mergeP >= 0 {
			break
		}
	}

	if intraP < 0 || mergeP < 0 {
		t.Skip("grid clustering did not expose both scenarios at this seed")
	}

	hEdgesBefore := s.H.NumEdges()
	hWeightBefore := s.H.TotalWeight()
	decs, err := s.UpdateBatch([]graph.Edge{
		{U: intraP, V: intraQ, W: 0.5},
		{U: mergeP, V: mergeQ, W: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawRedistribute, sawMerge bool
	for _, dec := range decs {
		switch dec.Action {
		case Redistributed:
			sawRedistribute = true
			if dec.Target != -1 {
				t.Fatal("redistributed decision should have no target edge")
			}
		case Merged:
			sawMerge = true
			if dec.Target < 0 || dec.Target >= s.H.NumEdges() {
				t.Fatalf("merge target %d invalid", dec.Target)
			}
		}
	}
	if !sawRedistribute || !sawMerge {
		t.Fatalf("expected redistribute+merge, got %+v", decs)
	}
	// Neither action adds edges to H; both conserve total weight exactly.
	if s.H.NumEdges() != hEdgesBefore {
		t.Fatalf("H gained edges: %d -> %d", hEdgesBefore, s.H.NumEdges())
	}
	if math.Abs(s.H.TotalWeight()-(hWeightBefore+0.5+0.7)) > 1e-9 {
		t.Fatalf("weight not conserved: %v -> %v", hWeightBefore, s.H.TotalWeight())
	}
	// G received both edges regardless.
	if !g.HasEdge(intraP, intraQ) || !g.HasEdge(mergeP, mergeQ) {
		t.Fatal("new edges missing from G")
	}
}

func TestUniqueEdgeIncluded(t *testing.T) {
	g, s := setup(t, 10, 10, 0.08, 20)
	d := s.Decomposition()
	L := s.FilterLevel()

	// Find a cluster pair not connected in H.
	p, q := -1, -1
	for a := 0; a < g.NumNodes() && p < 0; a += 3 {
		for b := a + 1; b < g.NumNodes(); b += 3 {
			if d.ClusterID(L, a) != d.ClusterID(L, b) && s.sk.PairCount(L, a, b) == 0 && !g.HasEdge(a, b) {
				p, q = a, b
				break
			}
		}
	}
	if p < 0 {
		t.Skip("no unconnected cluster pair at this seed")
	}
	before := s.H.NumEdges()
	decs, err := s.UpdateBatch([]graph.Edge{{U: p, V: q, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if decs[0].Action != Included {
		t.Fatalf("expected inclusion, got %v", decs[0].Action)
	}
	if s.H.NumEdges() != before+1 {
		t.Fatal("H edge count unchanged after inclusion")
	}
	// Second identical edge must now be merged (cluster pair connected).
	decs2, err := s.UpdateBatch([]graph.Edge{{U: p, V: q, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if decs2[0].Action != Merged {
		t.Fatalf("repeat edge should merge, got %v", decs2[0].Action)
	}
	if s.H.NumEdges() != before+1 {
		t.Fatal("merge must not add edges")
	}
}

func TestBatchSortedByDistortion(t *testing.T) {
	_, s := setup(t, 8, 8, 0.1, 40)
	batch := []graph.Edge{
		{U: 0, V: 1, W: 0.001}, // tiny distortion (adjacent, light)
		{U: 0, V: 63, W: 5},    // big distortion (far, heavy)
		{U: 0, V: 7, W: 1},
	}
	decs, err := s.UpdateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(decs); i++ {
		if decs[i].Distortion > decs[i-1].Distortion+1e-12 {
			t.Fatalf("decisions not distortion-sorted: %v", decs)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	g, s := setup(t, 8, 8, 0.1, 40)
	r := vecmath.NewRNG(3)
	var batch []graph.Edge
	for len(batch) < 30 {
		u, v := r.Intn(g.NumNodes()), r.Intn(g.NumNodes())
		if u != v && !g.HasEdge(u, v) {
			batch = append(batch, graph.Edge{U: u, V: v, W: r.Range(0.5, 2)})
		}
	}
	decs, err := s.UpdateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Processed != 30 {
		t.Fatalf("processed %d", st.Processed)
	}
	if st.Included+st.Merged+st.Redistributed != 30 {
		t.Fatalf("stats don't add up: %+v", st)
	}
	if len(decs) != 30 {
		t.Fatalf("decisions %d", len(decs))
	}
}

// End-to-end quality: after a stream of updates, inGRASS's H must track G's
// condition number far better than ignoring the updates, with far fewer
// edges than including everything.
func TestIncrementalQuality(t *testing.T) {
	g := grid(12, 12)
	init, err := grass.InitialSparsifier(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	kappa0, err := cond.Estimate(context.Background(), g, init.H, cond.Options{Seed: 4, MaxIters: 80})
	if err != nil {
		t.Fatal(err)
	}
	frozen := init.H.Clone() // sparsifier left un-updated

	s, err := NewSparsifier(g, init.H, Config{
		TargetCond: kappa0.Kappa,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stream: random long-range chords.
	r := vecmath.NewRNG(6)
	var stream []graph.Edge
	for len(stream) < 80 {
		u, v := r.Intn(g.NumNodes()), r.Intn(g.NumNodes())
		if u != v && !g.HasEdge(u, v) {
			stream = append(stream, graph.Edge{U: u, V: v, W: r.Range(0.5, 3)})
		}
	}
	for i := 0; i < len(stream); i += 20 {
		end := i + 20
		if end > len(stream) {
			end = len(stream)
		}
		if _, err := s.UpdateBatch(stream[i:end]); err != nil {
			t.Fatal(err)
		}
	}

	kappaUpdated, err := cond.Estimate(context.Background(), s.G, s.H, cond.Options{Seed: 7, MaxIters: 80})
	if err != nil {
		t.Fatal(err)
	}
	kappaFrozen, err := cond.Estimate(context.Background(), s.G, frozen, cond.Options{Seed: 7, MaxIters: 80})
	if err != nil {
		t.Fatal(err)
	}
	if kappaUpdated.Kappa >= kappaFrozen.Kappa {
		t.Fatalf("updates did not help: updated %v vs frozen %v", kappaUpdated.Kappa, kappaFrozen.Kappa)
	}
	// And H stayed sparse: not every stream edge was included.
	if st := s.Stats(); st.Included == st.Processed {
		t.Fatal("filter admitted every edge; no sparsification happening")
	}
}

func TestResparsify(t *testing.T) {
	g, s := setup(t, 8, 8, 0.1, 40)
	r := vecmath.NewRNG(8)
	var batch []graph.Edge
	for len(batch) < 20 {
		u, v := r.Intn(g.NumNodes()), r.Intn(g.NumNodes())
		if u != v && !g.HasEdge(u, v) {
			batch = append(batch, graph.Edge{U: u, V: v, W: 1})
		}
	}
	if _, err := s.UpdateBatch(batch); err != nil {
		t.Fatal(err)
	}
	statsBefore := s.Stats()
	if err := s.Resparsify(); err != nil {
		t.Fatal(err)
	}
	if s.Stats() != statsBefore {
		t.Fatal("rebuild must preserve counters")
	}
	// Updates keep working after a rebuild.
	if _, err := s.UpdateBatch([]graph.Edge{{U: 0, V: 62, W: 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestActionString(t *testing.T) {
	if Included.String() != "included" || Merged.String() != "merged" ||
		Redistributed.String() != "redistributed" {
		t.Fatal("action names wrong")
	}
	if Action(9).String() == "" {
		t.Fatal("unknown action should still render")
	}
}

func TestDisconnectedInitialSparsifierPairIncluded(t *testing.T) {
	// H(0) disconnected: a new edge bridging components has infinite
	// distortion bound and must be included.
	g := graph.New(6, 8)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	h := g.Clone()
	s, err := NewSparsifier(g, h, Config{TargetCond: 10, LRD: lrd.Config{Krylov: krylov.Config{Seed: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	decs, err := s.UpdateBatch([]graph.Edge{{U: 2, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if decs[0].Action != Included {
		t.Fatalf("bridge edge must be included, got %v", decs[0].Action)
	}
	if math.IsInf(decs[0].Distortion, 1) == false {
		t.Fatalf("bridge distortion should be +Inf, got %v", decs[0].Distortion)
	}
}
