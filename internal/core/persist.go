package core

import (
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/lrd"
	"ingrass/internal/sketch"
)

// PersistentState is everything a Sparsifier needs to be reconstructed
// exactly: the three graphs (current G, current H, and the setup-basis
// hBase), the normalized configuration, the chosen filter level, and the
// cumulative counters. The multilevel LRD decomposition and the
// cluster-connectivity sketch are deliberately NOT serialized — they are a
// deterministic function of (HBase, Config) plus the index-ordered
// registration of H's post-setup edges, so RestoreSparsifier rebuilds them
// instead. That keeps the on-disk format small (three edge lists) and
// immune to internal layout changes in lrd/sketch.
type PersistentState struct {
	// Config is the sparsifier configuration after default normalization.
	Config Config
	// FilterLevel is the similarity-filtering level in use.
	FilterLevel int
	// Stats are the cumulative update counters.
	Stats Stats
	// G and H are the current original graph and sparsifier.
	G, H *graph.Graph
	// HBase is the sparsifier as it was when the decomposition was last
	// (re)built: at setup, or at the latest Resparsify/CompactDeleted.
	HBase *graph.Graph
}

// PersistentState captures the sparsifier's durable state. The returned
// graphs are O(1) copy-on-write snapshots: taking them never blocks on graph
// size, and later mutations of the live sparsifier are invisible to the
// captured state — which is what lets a server checkpoint while it keeps
// serving writes.
func (s *Sparsifier) PersistentState() PersistentState {
	return PersistentState{
		Config:      s.cfg,
		FilterLevel: s.filterLevel,
		Stats:       s.stats,
		G:           s.G.Snapshot(),
		H:           s.H.Snapshot(),
		HBase:       s.hBase.Snapshot(),
	}
}

// RestoreSparsifier reconstructs a Sparsifier from a captured state. The
// reconstruction is exact: lrd.Build and sketch.New are deterministic given
// identical inputs, HBase carries the decomposition's input graph with
// bit-exact weights, and indexing the current H registers its edges in
// index order — the same order the live engine registered them in (Register
// is always called immediately after H.AddEdge, and AddEdge appends).
// A restored sparsifier therefore makes bit-identical filtering decisions
// on any subsequent update stream, which is what write-ahead-log replay
// relies on.
//
// RestoreSparsifier takes ownership of the graphs in st.
func RestoreSparsifier(st PersistentState) (*Sparsifier, error) {
	if st.G == nil || st.H == nil || st.HBase == nil {
		return nil, fmt.Errorf("core: restore: missing graph state")
	}
	n := st.G.NumNodes()
	if st.H.NumNodes() != n || st.HBase.NumNodes() != n {
		return nil, fmt.Errorf("core: restore: node counts disagree (G=%d, H=%d, HBase=%d)",
			n, st.H.NumNodes(), st.HBase.NumNodes())
	}
	if n == 0 {
		return nil, fmt.Errorf("core: restore: empty graph")
	}
	if st.H.NumEdges() < st.HBase.NumEdges() {
		return nil, fmt.Errorf("core: restore: H has %d edges but HBase has %d (H only ever grows)",
			st.H.NumEdges(), st.HBase.NumEdges())
	}
	dec, err := lrd.Build(st.HBase, st.Config.LRD)
	if err != nil {
		return nil, fmt.Errorf("core: restore LRD: %w", err)
	}
	sk, err := sketch.New(dec, st.H)
	if err != nil {
		return nil, fmt.Errorf("core: restore sketch: %w", err)
	}
	if st.FilterLevel < 1 || st.FilterLevel >= dec.Levels {
		return nil, fmt.Errorf("core: restore: filter level %d outside hierarchy [1, %d)",
			st.FilterLevel, dec.Levels)
	}
	return &Sparsifier{
		G:           st.G,
		H:           st.H,
		cfg:         st.Config,
		dec:         dec,
		sk:          sk,
		filterLevel: st.FilterLevel,
		stats:       st.Stats,
		hBase:       st.HBase,
	}, nil
}
