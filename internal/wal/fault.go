package wal

import "bytes"

// Fault-injection support for the durability test tier. Two failure shapes
// cover the interesting recovery space:
//
//   - Options.FailAppend (wal.go) rejects an append before any byte reaches
//     the file — a clean I/O error. The engine's response is its sticky
//     degraded mode (writes keep applying in memory, acknowledged
//     ErrNotDurable, healed by the next checkpoint).
//
//   - CrashAppend below writes a PREFIX of a framed record and then closes
//     the store with no fsync — the on-disk image of a process killed
//     mid-append. Recovery must classify the torn frame as crash damage and
//     truncate it away (the record was never acknowledged), not report
//     corruption.
//
// Both are exported from the package proper (not a _test.go file) because
// the service-layer soak and crash tests drive them from other packages.

// CrashAppend frames rec, writes only the first n bytes of the frame to the
// active segment, and abandons the store as a crashed process would: the
// file is closed without a sync and every later method returns ErrClosed.
// n >= the frame length writes the whole frame (a crash after the write but
// before the acknowledgement); n = 0 writes nothing. Reopening the
// directory afterwards exercises the torn-tail repair path.
func (st *Store) CrashAppend(rec BatchRecord, n int) error {
	payload, err := rec.encodePayload()
	if err != nil {
		return err
	}
	var frame bytes.Buffer
	if _, err := writeFrame(&frame, payload); err != nil {
		return err
	}
	b := frame.Bytes()
	if n > len(b) {
		n = len(b)
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	if n > 0 {
		if _, err := st.active.Write(b[:n]); err != nil {
			st.mu.Unlock()
			return err
		}
	}
	st.closed = true
	err = st.active.Close()
	st.mu.Unlock()
	if st.flushQuit != nil {
		close(st.flushQuit)
		st.flushWG.Wait()
	}
	return err
}

// FrameSize returns the framed on-disk size of rec in bytes, so crash tests
// can aim CrashAppend at precise tear offsets (mid-header, mid-payload, one
// byte short of complete).
func FrameSize(rec BatchRecord) (int, error) {
	payload, err := rec.encodePayload()
	if err != nil {
		return 0, err
	}
	return frameHeaderSize + len(payload), nil
}
