package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ingrass/internal/graph"
)

// TestRetainRefPinsSegmentsAgainstPruning is the regression test for the
// shipper/pruner race: a checkpoint used to delete every covered sealed
// segment even while a reader held a position inside them. With a retention
// ref the prune floor stops at the slowest ref.
func TestRetainRefPinsSegmentsAgainstPruning(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sp := testSparsifier(t, 3, 3)
	for gen := uint64(1); gen <= 10; gen++ {
		if _, err := st.Append(rec(gen, []graph.Edge{{U: int(gen % 9), V: 0, W: 1}})); err != nil {
			t.Fatal(err)
		}
	}

	ref := st.Retain(4)
	if err := st.WriteCheckpoint(Checkpoint{Gen: 10, State: sp.PersistentState()}); err != nil {
		t.Fatal(err)
	}
	// Records 5..10 must still be readable through the pin.
	var gens []uint64
	last, n, err := st.IterateFrom(4, func(g uint64, payload []byte) error {
		gens = append(gens, g)
		if _, derr := DecodeRecord(payload); derr != nil {
			return derr
		}
		return nil
	})
	if err != nil || last != 10 || n != 6 {
		t.Fatalf("IterateFrom(4) = last %d, n %d, err %v (gens %v)", last, n, err, gens)
	}
	for i, g := range gens {
		if g != uint64(5+i) {
			t.Fatalf("gens out of order: %v", gens)
		}
	}
	// Pruning did advance below the pin: generation 0's view is gone.
	if _, _, err := st.IterateFrom(0, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrPruned) {
		t.Fatalf("IterateFrom(0) after partial prune: %v, want ErrPruned", err)
	}

	// Releasing the ref lets the next checkpoint prune everything covered.
	ref.Release()
	if err := st.WriteCheckpoint(Checkpoint{Gen: 10, State: sp.PersistentState()}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.IterateFrom(4, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrPruned) {
		t.Fatalf("IterateFrom(4) after release: %v, want ErrPruned", err)
	}
	if pg := st.PrunedGen(); pg == 0 {
		t.Fatal("PrunedGen still 0 after pruning")
	}
	// The tail above the horizon stays readable.
	if _, n, err := st.IterateFrom(st.PrunedGen(), func(uint64, []byte) error { return nil }); err != nil || n < 0 {
		t.Fatalf("IterateFrom(horizon): n %d, err %v", n, err)
	}
}

func TestRetainRefNeverRetreats(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ref := st.Retain(5)
	ref.Update(3)
	if g := ref.Gen(); g != 5 {
		t.Fatalf("Update retreated the ref to %d", g)
	}
	ref.Update(8)
	if g := ref.Gen(); g != 8 {
		t.Fatalf("Update did not advance: %d", g)
	}
	ref.Release()
	ref.Release() // double release is harmless
}

// TestIterateFromSegmentBoundaries covers the seams: a record landing
// exactly at a seal, iteration resuming from every position, and an empty
// sealed segment file in the directory.
func TestIterateFromSegmentBoundaries(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1 seals after every record: each sealed segment holds
	// exactly one record, so every record sits at a segment boundary.
	st, err := Open(dir, Options{SegmentBytes: 1, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const total = 6
	for gen := uint64(1); gen <= total; gen++ {
		if _, err := st.Append(rec(gen, []graph.Edge{{U: int(gen), V: 0, W: 1}})); err != nil {
			t.Fatal(err)
		}
	}
	for from := uint64(0); from <= total; from++ {
		var gens []uint64
		last, n, err := st.IterateFrom(from, func(g uint64, _ []byte) error {
			gens = append(gens, g)
			return nil
		})
		if err != nil {
			t.Fatalf("IterateFrom(%d): %v", from, err)
		}
		if n != int(total-from) {
			t.Fatalf("IterateFrom(%d) saw %d records (%v)", from, n, gens)
		}
		wantLast := uint64(total)
		if from == total {
			wantLast = from
		}
		if last != wantLast {
			t.Fatalf("IterateFrom(%d) last %d", from, last)
		}
		for i, g := range gens {
			if g != from+uint64(i)+1 {
				t.Fatalf("IterateFrom(%d) out of order: %v", from, gens)
			}
		}
	}
	st.Close()

	// An empty sealed segment (a crash between segment creation and first
	// append) must not derail iteration after reopen.
	if err := os.WriteFile(segmentPath(dir, 99), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var n int
	if _, n, err = st2.IterateFrom(0, func(uint64, []byte) error { n++; return nil }); err != nil {
		t.Fatalf("IterateFrom over empty segment: %v", err)
	}
	if n != total {
		t.Fatalf("saw %d records with empty segment present, want %d", n, total)
	}
}

// TestIterateFromToleratesTornActiveTail: a torn frame at the tail of the
// active segment is an append in progress, not corruption — iteration stops
// cleanly after the complete records.
func TestIterateFromToleratesTornActiveTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for gen := uint64(1); gen <= 3; gen++ {
		if _, err := st.Append(rec(gen, []graph.Edge{{U: int(gen), V: 0, W: 1}})); err != nil {
			t.Fatal(err)
		}
	}
	// Write half a frame straight to the active file — the on-disk shape of
	// an append in progress (the store stays open; CrashAppend would close
	// it, and a live shipper iterates against a live store).
	torn := rec(4, []graph.Edge{{U: 4, V: 0, W: 1}})
	payload, err := torn.encodePayload()
	if err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if _, err := writeFrame(&frame, payload); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(st.cur.path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame.Bytes()[:frame.Len()/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	last, n, err := st.IterateFrom(0, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatalf("IterateFrom over torn tail: %v", err)
	}
	if last != 3 || n != 3 {
		t.Fatalf("torn tail leaked: last %d, n %d", last, n)
	}
}

// A torn frame in a SEALED segment is corruption, not an append in
// progress.
func TestIterateFromSealedCorruptionIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 1, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for gen := uint64(1); gen <= 3; gen++ {
		if _, err := st.Append(rec(gen, []graph.Edge{{U: int(gen), V: 0, W: 1}})); err != nil {
			t.Fatal(err)
		}
	}
	defer st.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segmentPrefix+"*"))
	if len(segs) < 2 {
		t.Fatalf("want sealed segments, got %v", segs)
	}
	// Flip a payload byte in the first (sealed) segment.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.IterateFrom(0, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sealed corruption surfaced as %v, want ErrCorrupt", err)
	}
}

func TestAppendSignalWakesTailReader(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sig := st.AppendSignal()
	select {
	case <-sig:
		t.Fatal("signal fired before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-sig:
		case <-time.After(5 * time.Second):
			t.Error("append signal never fired")
		}
	}()
	if _, err := st.Append(rec(1, []graph.Edge{{U: 0, V: 1, W: 1}})); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestCheckpointBytesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, _, err := st.CheckpointBytes(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("CheckpointBytes before checkpoint: %v", err)
	}
	sp := testSparsifier(t, 3, 3)
	if err := st.WriteCheckpoint(Checkpoint{Gen: 7, State: sp.PersistentState()}); err != nil {
		t.Fatal(err)
	}
	data, gen, err := st.CheckpointBytes()
	if err != nil || gen != 7 {
		t.Fatalf("CheckpointBytes: gen %d, err %v", gen, err)
	}
	ck, err := ParseCheckpoint(data)
	if err != nil || ck.Gen != 7 {
		t.Fatalf("ParseCheckpoint: gen %d, err %v", ck.Gen, err)
	}
	// A flipped byte must not parse.
	data[len(data)/2] ^= 0x01
	if _, err := ParseCheckpoint(data); err == nil {
		t.Fatal("ParseCheckpoint accepted a corrupted image")
	}
}

func TestCoverableBytesTracksRetainedSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 1, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for gen := uint64(1); gen <= 6; gen++ {
		if _, err := st.Append(rec(gen, []graph.Edge{{U: int(gen), V: 0, W: 1}})); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing is checkpoint-covered yet.
	if b := st.CoverableBytes(0); b != 0 {
		t.Fatalf("CoverableBytes before checkpoint = %d", b)
	}
	ref := st.Retain(0) // pin everything so the checkpoint prunes nothing
	defer ref.Release()
	sp := testSparsifier(t, 3, 3)
	if err := st.WriteCheckpoint(Checkpoint{Gen: 6, State: sp.PersistentState()}); err != nil {
		t.Fatal(err)
	}
	all := st.CoverableBytes(0)
	if all <= 0 {
		t.Fatalf("CoverableBytes(0) = %d after covering checkpoint", all)
	}
	// Advancing the position monotonically shrinks the held bytes.
	prev := all
	for g := uint64(1); g <= 6; g++ {
		b := st.CoverableBytes(g)
		if b > prev {
			t.Fatalf("CoverableBytes(%d) = %d grew past %d", g, b, prev)
		}
		prev = b
	}
	if prev != 0 {
		t.Fatalf("CoverableBytes(lastGen) = %d, want 0", prev)
	}
}
