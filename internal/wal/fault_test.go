package wal

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"ingrass/internal/graph"
)

func maintRec(gen uint64, target float64, h *graph.Graph) BatchRecord {
	return BatchRecord{Gen: gen, Maint: &MaintRecord{TargetCond: target, HBase: h}}
}

func TestMaintRecordRoundTrip(t *testing.T) {
	sp := testSparsifier(t, 6, 6)
	in := maintRec(7, 42.5, sp.H.Snapshot())
	payload, err := in.encodePayload()
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Gen != 7 || out.Maint == nil {
		t.Fatalf("round trip mangled shape: %+v", out)
	}
	if math.Float64bits(out.Maint.TargetCond) != math.Float64bits(42.5) {
		t.Fatalf("target cond %v", out.Maint.TargetCond)
	}
	a, b := in.Maint.HBase, out.Maint.HBase
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("graph shape %v vs %v", a, b)
	}
	for i := range a.Edges() {
		ea, eb := a.Edge(i), b.Edge(i)
		if ea.U != eb.U || ea.V != eb.V || math.Float64bits(ea.W) != math.Float64bits(eb.W) {
			t.Fatalf("edge %d: %+v vs %+v", i, ea, eb)
		}
	}
	// recordGen peeks maintenance records too (the open scan walks them).
	gen, err := recordGen(payload)
	if err != nil || gen != 7 {
		t.Fatalf("recordGen = %d, %v", gen, err)
	}

	// Unencodable shapes fail loudly instead of writing garbage.
	if _, err := (BatchRecord{Gen: 1, Maint: &MaintRecord{}}).encodePayload(); err == nil {
		t.Fatal("want error for maintenance record without a graph")
	}
	bad := maintRec(1, 10, sp.H.Snapshot())
	bad.Adds = []graph.Edge{{U: 0, V: 1, W: 1}}
	if _, err := bad.encodePayload(); err == nil {
		t.Fatal("want error for maintenance record carrying batch edges")
	}
}

// TestFailAppendInjection: the clean-I/O-error fault. The injected failure
// must surface from Append without any byte reaching the segment, and
// clearing the hook must restore normal appends at an unbroken offset.
func TestFailAppendInjection(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected append failure")
	armed := true
	st, err := Open(dir, Options{Sync: SyncNever, FailAppend: func(BatchRecord) error {
		if armed {
			return boom
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(rec(1, []graph.Edge{{U: 0, V: 1, W: 1}})); !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	armed = false
	if _, err := st.Append(rec(1, []graph.Edge{{U: 0, V: 1, W: 1}})); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The failed append left no trace: exactly one record on disk.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	count := 0
	if err := st2.Replay(0, func(BatchRecord) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("want 1 surviving record, got %d", count)
	}
}

// TestCrashMidMaintRecord sweeps tear offsets through a maintenance record's
// frame — nothing written, mid-header, mid-graph-payload, one byte short —
// and demands every reopen classifies the tear as an unacknowledged torn
// tail: the preceding batch records survive, the maintenance record is
// truncated away, and the store accepts appends again.
func TestCrashMidMaintRecord(t *testing.T) {
	sp := testSparsifier(t, 6, 6)
	mrec := maintRec(3, 50, sp.H.Snapshot())
	frameLen, err := FrameSize(mrec)
	if err != nil {
		t.Fatal(err)
	}
	if frameLen <= frameHeaderSize {
		t.Fatalf("frame suspiciously small: %d", frameLen)
	}
	tears := []int{0, frameHeaderSize / 2, frameHeaderSize + 1, frameLen / 2, frameLen - 1}
	for _, n := range tears {
		t.Run(fmt.Sprintf("tear=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, Options{Sync: SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			for gen := uint64(1); gen <= 2; gen++ {
				if _, err := st.Append(rec(gen, []graph.Edge{{U: int(gen), V: 0, W: 1}})); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.CrashAppend(mrec, n); err != nil {
				t.Fatal(err)
			}
			// The crashed store is dead.
			if _, err := st.Append(rec(4, nil)); !errors.Is(err, ErrClosed) {
				t.Fatalf("want ErrClosed after crash, got %v", err)
			}

			st2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			var gens []uint64
			if err := st2.Replay(0, func(r BatchRecord) error {
				if r.Maint != nil {
					t.Fatalf("torn maintenance record replayed at tear %d", n)
				}
				gens = append(gens, r.Gen)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(gens) != 2 || gens[0] != 1 || gens[1] != 2 {
				t.Fatalf("surviving records %v", gens)
			}
			// The repaired store continues at the pre-crash generation.
			if _, err := st2.Append(maintRec(3, 50, sp.H.Snapshot())); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashAfterFullMaintFrame: a crash after the last byte landed is not a
// tear — the complete record must survive the reopen.
func TestCrashAfterFullMaintFrame(t *testing.T) {
	sp := testSparsifier(t, 6, 6)
	mrec := maintRec(1, 75, sp.H.Snapshot())
	frameLen, err := FrameSize(mrec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CrashAppend(mrec, frameLen); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	found := false
	if err := st2.Replay(0, func(r BatchRecord) error {
		if r.Maint != nil && r.Gen == 1 && r.Maint.TargetCond == 75 {
			found = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("complete maintenance record lost on reopen")
	}
}

// TestRestoreStateWithMaintRecord: end-to-end replay through a maintenance
// record. A live sparsifier logs a batch, swaps its basis (logging the swap),
// then logs another batch; RestoreState must reproduce the live H bit for
// bit — the decode → AdoptBasis path and the in-process swap agree exactly.
func TestRestoreStateWithMaintRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sp := testSparsifier(t, 6, 6)
	if err := st.WriteCheckpoint(Checkpoint{Gen: 0, State: sp.PersistentState()}); err != nil {
		t.Fatal(err)
	}
	b1 := []graph.Edge{{U: 0, V: 25, W: 2}, {U: 5, V: 30, W: 0.5}, {U: 7, V: 31, W: 1.2}}
	if _, err := sp.ApplyBatch(append([]graph.Edge(nil), b1...), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(rec(1, b1)); err != nil {
		t.Fatal(err)
	}

	// The swap: rebuild from the current snapshot (what the service's writer
	// does through core.BuildSetup/AdoptSetup) and log the same image.
	hSnap := sp.H.Snapshot()
	if err := sp.AdoptBasis(hSnap, 60); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(maintRec(2, 60, hSnap)); err != nil {
		t.Fatal(err)
	}

	b2 := []graph.Edge{{U: 2, V: 33, W: 0.8}, {U: 11, V: 29, W: 1.9}}
	if _, err := sp.ApplyBatch(append([]graph.Edge(nil), b2...), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(rec(3, b2)); err != nil {
		t.Fatal(err)
	}

	got, gen, err := st.RestoreState()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("recovered gen %d", gen)
	}
	if got.Stats() != sp.Stats() {
		t.Fatalf("stats %+v vs %+v", got.Stats(), sp.Stats())
	}
	if got.FilterLevel() != sp.FilterLevel() {
		t.Fatalf("filter level %d vs %d", got.FilterLevel(), sp.FilterLevel())
	}
	if got.Config().TargetCond != 60 {
		t.Fatalf("replayed TargetCond %v", got.Config().TargetCond)
	}
	for i := range sp.H.Edges() {
		a, b := got.H.Edge(i), sp.H.Edge(i)
		if a.U != b.U || a.V != b.V || math.Float64bits(a.W) != math.Float64bits(b.W) {
			t.Fatalf("H edge %d: %+v vs %+v", i, a, b)
		}
	}
}
