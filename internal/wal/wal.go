// Package wal is the durability subsystem: a write-ahead log of applied
// edge batches plus binary checkpoints of the full sparsifier state, stored
// together in one data directory. The serving layer (internal/service)
// appends one BatchRecord per applied write batch *before* publishing the
// batch's snapshot generation to readers, and periodically persists a
// Checkpoint taken from O(1) copy-on-write snapshots, so recovery is
//
//	state = latest checkpoint  ⊕  replay of the WAL records after it
//
// and a restarted server reaches the exact pre-crash generation without
// re-running GRASS setup.
//
// # On-disk layout
//
// A data directory contains numbered log segments and checkpoint files:
//
//	wal-00000001.log            append-only record segments
//	wal-00000002.log            (rotated at Options.SegmentBytes; a fresh
//	...                          segment also starts after every checkpoint)
//	checkpoint-00000000000000000042.ckpt
//
// Every WAL record is framed as
//
//	'R'  (1 byte marker)
//	len  (uint32 LE, payload length)
//	crc  (uint32 LE, IEEE CRC-32 of the payload)
//	payload
//
// and the payload encodes one applied batch (see record.go). A torn final
// record — the crash landed mid-write — fails the marker/length/CRC check
// and is truncated away on open; the write it carried was never
// acknowledged (acknowledgement happens only after a successful append), so
// truncation loses nothing a client was promised. A crash can tear at most
// the very last frame on disk (each append completes before the next
// begins, and segments seal only after a complete append), so an invalid
// frame that is *followed by valid frames*, or that sits in any segment but
// the last, cannot be crash damage and is reported as ErrCorrupt instead of
// silently dropped.
//
// Checkpoint files are written to a temporary name, fsynced, and atomically
// renamed, so a crash mid-checkpoint leaves the previous checkpoint intact.
// After a successful checkpoint the store seals the active segment and
// deletes every sealed segment whose records are all covered by the
// checkpoint.
//
// # Fsync policy
//
// Options.Sync picks the durability/latency trade-off: SyncAlways fsyncs
// after every appended record (a crash loses nothing acknowledged),
// SyncInterval fsyncs at most once per Options.SyncEvery (a crash loses at
// most that window), SyncNever leaves flushing to the OS page cache.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"ingrass/internal/obs"
)

// Typed failures of the durability layer.
var (
	// ErrCorrupt reports framing or checksum damage that cannot be
	// explained by a torn final write (which is repaired silently).
	ErrCorrupt = errors.New("wal: corrupt data")
	// ErrNoCheckpoint reports a recovery attempt against a data directory
	// that holds no (readable) checkpoint.
	ErrNoCheckpoint = errors.New("wal: no checkpoint in data directory")
	// ErrClosed reports use of a closed Store.
	ErrClosed = errors.New("wal: store closed")
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery, amortizing
	// the disk flush over a burst of batches.
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS flushes at its leisure.
	SyncNever
)

// String renders the policy in the CLI's --fsync vocabulary.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the CLI's --fsync vocabulary.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// Options configures a Store.
type Options struct {
	// SegmentBytes rotates the active log segment once it exceeds this
	// size. Default 64 MiB.
	SegmentBytes int64
	// Sync is the fsync policy for appended records. Default SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the flush interval for SyncInterval. Default 100ms.
	SyncEvery time.Duration

	// AppendDur, SyncDur, and CheckpointDur, when non-nil, receive
	// nanosecond wall-clock timings of record appends (framing through
	// fsync), explicit fsyncs of the active segment, and checkpoint writes.
	// obs histograms observe safely through nil receivers, so the store
	// records unconditionally and an unwired store pays three predicted
	// branches per append.
	AppendDur     *obs.Histogram
	SyncDur       *obs.Histogram
	CheckpointDur *obs.Histogram

	// FailAppend is a fault-injection hook for tests (see fault.go): when
	// non-nil it runs under the store lock before any bytes of an append
	// reach the file, and a non-nil return fails the Append with no on-disk
	// effect — the shape of an ENOSPC-class error. Production code leaves
	// it nil.
	FailAppend func(BatchRecord) error
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	return o
}

// Record framing constants.
const (
	recordMarker    = byte('R')
	frameHeaderSize = 1 + 4 + 4 // marker + length + crc
	// maxRecordBytes bounds a single record payload; a framed length beyond
	// it is treated as corruption rather than attempted as an allocation.
	maxRecordBytes = 1 << 30
)

var crcTable = crc32.IEEETable

// writeFrame frames payload and writes it to w, returning the bytes written.
func writeFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [frameHeaderSize]byte
	hdr[0] = recordMarker
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return frameHeaderSize + len(payload), nil
}

// errTorn marks a frame-read failure consistent with a torn trailing write:
// clean EOF mid-frame, a bad marker, an implausible length, or a CRC
// mismatch. Callers translate it to either silent truncation (tail of the
// last segment) or ErrCorrupt (anywhere else).
var errTorn = errors.New("wal: torn or invalid frame")

// readFrame reads one framed payload from r. It returns (nil, io.EOF) at a
// clean segment end and (nil, errTorn) for anything that does not parse as
// a complete, checksummed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn
	}
	if hdr[0] != recordMarker {
		return nil, errTorn
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, errTorn
	}
	length := binary.LittleEndian.Uint32(hdr[1:5])
	if length > maxRecordBytes {
		return nil, errTorn
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTorn
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[5:9]) {
		return nil, errTorn
	}
	return payload, nil
}
