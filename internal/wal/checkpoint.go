package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"ingrass/internal/core"
	"ingrass/internal/graph"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
)

// Checkpoint is a durable image of the full engine state at one generation.
// Together with the WAL records after Gen it reconstructs the exact
// pre-crash engine: RestoreSparsifier rebuilds the LRD decomposition and
// sketch deterministically from State.HBase, so neither needs an on-disk
// representation.
type Checkpoint struct {
	// Gen is the snapshot generation the state corresponds to.
	Gen uint64
	// State is the captured sparsifier state (graphs are COW snapshots).
	State core.PersistentState
}

// Checkpoint file layout:
//
//	magic   [8]byte  "IGCKPT01"
//	body    (see encodeCheckpoint)
//	crc     uint32 LE, IEEE CRC-32 over body
//
// The body stores the generation, the normalized core.Config, the filter
// level, the cumulative counters, and the three graphs (HBase, G, H) in the
// binary graph format (internal/graph.WriteBinary). Floats are stored as
// IEEE-754 bit patterns: recovery is bit-exact by construction.
var checkpointMagic = [8]byte{'I', 'G', 'C', 'K', 'P', 'T', '0', '1'}

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// encodeCheckpoint serializes the body (everything between magic and CRC).
func encodeCheckpoint(ck Checkpoint) ([]byte, error) {
	var b []byte
	b = appendUvarint(b, ck.Gen)

	cfg := ck.State.Config
	b = appendF64(b, cfg.TargetCond)
	b = appendUvarint(b, uint64(cfg.MaxFilterLevel))
	b = appendBool(b, cfg.DisableWeightTransfer)
	b = appendUvarint(b, uint64(cfg.Workers))
	b = appendF64(b, cfg.LRD.InitialDiameter)
	b = appendF64(b, cfg.LRD.Growth)
	b = appendUvarint(b, uint64(cfg.LRD.MaxLevels))
	b = appendUvarint(b, uint64(cfg.LRD.Krylov.Order))
	b = appendUvarint(b, uint64(cfg.LRD.Krylov.Starts))
	b = binary.LittleEndian.AppendUint64(b, cfg.LRD.Krylov.Seed)
	b = appendUvarint(b, uint64(cfg.LRD.Krylov.Workers))

	b = appendUvarint(b, uint64(ck.State.FilterLevel))

	st := ck.State.Stats
	b = appendUvarint(b, uint64(st.Processed))
	b = appendUvarint(b, uint64(st.Included))
	b = appendUvarint(b, uint64(st.Merged))
	b = appendUvarint(b, uint64(st.Redistributed))
	b = appendUvarint(b, uint64(st.Deleted))
	b = appendUvarint(b, uint64(st.Promoted))

	var gb bytes.Buffer
	for _, g := range []*graph.Graph{ck.State.HBase, ck.State.G, ck.State.H} {
		if g == nil {
			return nil, fmt.Errorf("wal: checkpoint state missing a graph")
		}
		gb.Reset()
		if err := graph.WriteBinary(&gb, g); err != nil {
			return nil, err
		}
		b = appendUvarint(b, uint64(gb.Len()))
		b = append(b, gb.Bytes()...)
	}
	return b, nil
}

// decodeCheckpoint parses a body produced by encodeCheckpoint.
func decodeCheckpoint(body []byte) (Checkpoint, error) {
	var ck Checkpoint
	r := &byteReader{b: body}
	uv := func(dst *int) error {
		x, err := r.uvarint()
		if err == nil {
			*dst = int(x)
		}
		return err
	}
	f64 := func(dst *float64) error {
		x, err := r.u64()
		if err == nil {
			*dst = math.Float64frombits(x)
		}
		return err
	}
	boolean := func(dst *bool) error {
		if r.off >= len(r.b) {
			return fmt.Errorf("wal: checkpoint truncated at offset %d", r.off)
		}
		*dst = r.b[r.off] != 0
		r.off++
		return nil
	}

	var err error
	if ck.Gen, err = r.uvarint(); err != nil {
		return ck, err
	}
	var cfg core.Config
	var lcfg lrd.Config
	var kcfg krylov.Config
	steps := []func() error{
		func() error { return f64(&cfg.TargetCond) },
		func() error { return uv(&cfg.MaxFilterLevel) },
		func() error { return boolean(&cfg.DisableWeightTransfer) },
		func() error { return uv(&cfg.Workers) },
		func() error { return f64(&lcfg.InitialDiameter) },
		func() error { return f64(&lcfg.Growth) },
		func() error { return uv(&lcfg.MaxLevels) },
		func() error { return uv(&kcfg.Order) },
		func() error { return uv(&kcfg.Starts) },
		func() error {
			x, err := r.u64()
			kcfg.Seed = x
			return err
		},
		func() error { return uv(&kcfg.Workers) },
		func() error { return uv(&ck.State.FilterLevel) },
		func() error { return uv(&ck.State.Stats.Processed) },
		func() error { return uv(&ck.State.Stats.Included) },
		func() error { return uv(&ck.State.Stats.Merged) },
		func() error { return uv(&ck.State.Stats.Redistributed) },
		func() error { return uv(&ck.State.Stats.Deleted) },
		func() error { return uv(&ck.State.Stats.Promoted) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return ck, err
		}
	}
	lcfg.Krylov = kcfg
	cfg.LRD = lcfg
	ck.State.Config = cfg

	for _, dst := range []**graph.Graph{&ck.State.HBase, &ck.State.G, &ck.State.H} {
		size, err := r.uvarint()
		if err != nil {
			return ck, err
		}
		if uint64(r.off)+size > uint64(len(r.b)) {
			return ck, fmt.Errorf("wal: checkpoint graph block overruns body")
		}
		g, err := graph.ReadBinary(bytes.NewReader(r.b[r.off : r.off+int(size)]))
		if err != nil {
			return ck, err
		}
		r.off += int(size)
		*dst = g
	}
	if r.off != len(body) {
		return ck, fmt.Errorf("wal: %d trailing bytes after checkpoint", len(body)-r.off)
	}
	return ck, nil
}

// marshalCheckpoint produces the full file contents (magic + body + CRC).
func marshalCheckpoint(ck Checkpoint) ([]byte, error) {
	body, err := encodeCheckpoint(ck)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(checkpointMagic)+len(body)+4)
	out = append(out, checkpointMagic[:]...)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, crcTable))
	return out, nil
}

// unmarshalCheckpoint validates magic and CRC, then decodes the body.
func unmarshalCheckpoint(data []byte) (Checkpoint, error) {
	var ck Checkpoint
	if len(data) < len(checkpointMagic)+4 {
		return ck, fmt.Errorf("%w: checkpoint file too short", ErrCorrupt)
	}
	if !bytes.Equal(data[:len(checkpointMagic)], checkpointMagic[:]) {
		return ck, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	body := data[len(checkpointMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != want {
		return ck, fmt.Errorf("%w: checkpoint CRC mismatch", ErrCorrupt)
	}
	ck, err := decodeCheckpoint(body)
	if err != nil {
		return ck, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return ck, nil
}
