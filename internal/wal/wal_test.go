package wal

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"

	"ingrass/internal/core"
)

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func testSparsifier(t *testing.T, rows, cols int) *core.Sparsifier {
	t.Helper()
	g := grid(rows, cols)
	init, err := grass.InitialSparsifier(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := core.NewSparsifier(g, init.H, core.Config{
		TargetCond: 50,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func rec(gen uint64, adds []graph.Edge, dels ...[]graph.Edge) BatchRecord {
	return BatchRecord{Gen: gen, Adds: adds, DelBatches: dels}
}

func TestRecordRoundTrip(t *testing.T) {
	in := rec(42,
		[]graph.Edge{{U: 0, V: 5, W: 1.5}, {U: 3, V: 9, W: 0.1}},
		[]graph.Edge{{U: 1, V: 2}},
		[]graph.Edge{{U: 7, V: 8}, {U: 2, V: 4}},
	)
	out, err := decodeRecord(in.encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Gen != in.Gen || len(out.Adds) != 2 || len(out.DelBatches) != 2 {
		t.Fatalf("round trip mangled shape: %+v", out)
	}
	for i := range in.Adds {
		if out.Adds[i].U != in.Adds[i].U || out.Adds[i].V != in.Adds[i].V ||
			math.Float64bits(out.Adds[i].W) != math.Float64bits(in.Adds[i].W) {
			t.Fatalf("add %d: %+v vs %+v", i, out.Adds[i], in.Adds[i])
		}
	}
	if out.DelBatches[1][1] != (graph.Edge{U: 2, V: 4}) {
		t.Fatalf("delete batch mangled: %+v", out.DelBatches)
	}
	// Empty record encodes and decodes too.
	empty, err := decodeRecord(rec(1, nil).encode(nil))
	if err != nil || empty.Gen != 1 || empty.Adds != nil || empty.DelBatches != nil {
		t.Fatalf("empty record: %+v, %v", empty, err)
	}
}

func TestAppendReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := []BatchRecord{
		rec(1, []graph.Edge{{U: 0, V: 1, W: 1}}),
		rec(2, nil, []graph.Edge{{U: 0, V: 1}}),
		rec(3, []graph.Edge{{U: 2, V: 3, W: 0.5}, {U: 4, V: 5, W: 2}}),
	}
	for _, r := range want {
		if _, err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if st.LastGen() != 3 {
		t.Fatalf("LastGen %d", st.LastGen())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var got []BatchRecord
	if err := st2.Replay(0, func(r BatchRecord) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Gen != want[i].Gen || len(got[i].Adds) != len(want[i].Adds) ||
			len(got[i].DelBatches) != len(want[i].DelBatches) {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Filtered replay skips covered generations.
	var tail []uint64
	if err := st2.Replay(2, func(r BatchRecord) error { tail = append(tail, r.Gen); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0] != 3 {
		t.Fatalf("Replay(2) saw %v", tail)
	}
	// Appends continue after the last recovered generation.
	if _, err := st2.Append(rec(4, []graph.Edge{{U: 1, V: 2, W: 1}})); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRotationAndPruning(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation every couple of records.
	st, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for gen := uint64(1); gen <= 10; gen++ {
		if _, err := st.Append(rec(gen, []graph.Edge{{U: int(gen), V: 0, W: 1}})); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segmentPrefix+"*"))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	// Replay still sees all ten records, in order, across segments.
	var gens []uint64
	if err := st.Replay(0, func(r BatchRecord) error { gens = append(gens, r.Gen); return nil }); err != nil {
		t.Fatal(err)
	}
	for i, g := range gens {
		if g != uint64(i+1) {
			t.Fatalf("replay order broken: %v", gens)
		}
	}
	if len(gens) != 10 {
		t.Fatalf("replayed %d records", len(gens))
	}
	st.Close()
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for gen := uint64(1); gen <= 3; gen++ {
		if _, err := st.Append(rec(gen, []graph.Edge{{U: int(gen), V: 0, W: 1}})); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	seg := segmentPath(dir, 1)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("partial frame", func(t *testing.T) {
		d2 := t.TempDir()
		// Copy with the last record cut mid-payload.
		if err := os.WriteFile(segmentPath(d2, 1), full[:len(full)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(d2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		var gens []uint64
		if err := st2.Replay(0, func(r BatchRecord) error { gens = append(gens, r.Gen); return nil }); err != nil {
			t.Fatal(err)
		}
		if len(gens) != 2 || gens[1] != 2 {
			t.Fatalf("want records 1,2 after torn-tail truncation, got %v", gens)
		}
		// The truncated store accepts new appends at the right offset.
		if _, err := st2.Append(rec(3, []graph.Edge{{U: 9, V: 0, W: 1}})); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("corrupted tail payload", func(t *testing.T) {
		d2 := t.TempDir()
		mangled := append([]byte(nil), full...)
		mangled[len(mangled)-1] ^= 0xFF // CRC of final record now fails
		if err := os.WriteFile(segmentPath(d2, 1), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(d2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		count := 0
		if err := st2.Replay(0, func(BatchRecord) error { count++; return nil }); err != nil {
			t.Fatal(err)
		}
		if count != 2 {
			t.Fatalf("want 2 surviving records, got %d", count)
		}
	})

	t.Run("mid-segment corruption in the last segment is fatal", func(t *testing.T) {
		// Damage the FIRST record but leave valid records after it: a torn
		// write can only be the final frame, so this must be ErrCorrupt —
		// truncating here would silently drop acknowledged records 2 and 3.
		d2 := t.TempDir()
		mangled := append([]byte(nil), full...)
		mangled[frameHeaderSize+2] ^= 0xFF
		if err := os.WriteFile(segmentPath(d2, 1), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(d2, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("want corruption error, got %v", err)
		}
	})

	t.Run("mid-file corruption is fatal", func(t *testing.T) {
		d2 := t.TempDir()
		mangled := append([]byte(nil), full...)
		mangled[frameHeaderSize+2] ^= 0xFF // damage the FIRST record's payload
		if err := os.WriteFile(segmentPath(d2, 1), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		// A valid second segment after the damaged one means the damage is
		// not a torn tail.
		stTmp, err := Open(t.TempDir(), Options{Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		stTmp.Append(rec(4, []graph.Edge{{U: 1, V: 0, W: 1}}))
		stTmp.Close()
		data, _ := os.ReadFile(segmentPath(stTmp.Dir(), 1))
		if err := os.WriteFile(segmentPath(d2, 2), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(d2, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("want corruption error, got %v", err)
		}
	})
}

func TestCheckpointRoundTripAndPruning(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sp := testSparsifier(t, 6, 6)
	adds := []graph.Edge{{U: 0, V: 20, W: 1.5}, {U: 3, V: 17, W: 0.7}}
	if _, err := sp.ApplyBatch(adds, nil); err != nil {
		t.Fatal(err)
	}
	for gen := uint64(1); gen <= 5; gen++ {
		if _, err := st.Append(rec(gen, []graph.Edge{{U: int(gen), V: 0, W: 1}})); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := st.LoadCheckpoint(); err != ErrNoCheckpoint {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
	if err := st.WriteCheckpoint(Checkpoint{Gen: 5, State: sp.PersistentState()}); err != nil {
		t.Fatal(err)
	}
	// Covered segments are gone; later appends land in a fresh segment.
	if _, err := st.Append(rec(6, []graph.Edge{{U: 6, V: 0, W: 1}})); err != nil {
		t.Fatal(err)
	}
	var gens []uint64
	ckGen, ok := st.CheckpointGen()
	if !ok || ckGen != 5 {
		t.Fatalf("checkpoint gen %d, %v", ckGen, ok)
	}
	if err := st.Replay(ckGen, func(r BatchRecord) error { gens = append(gens, r.Gen); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0] != 6 {
		t.Fatalf("post-checkpoint replay saw %v", gens)
	}

	ck, err := st.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Gen != 5 {
		t.Fatalf("loaded checkpoint gen %d", ck.Gen)
	}
	restored, err := core.RestoreSparsifier(ck.State)
	if err != nil {
		t.Fatal(err)
	}
	if restored.G.NumEdges() != sp.G.NumEdges() || restored.H.NumEdges() != sp.H.NumEdges() {
		t.Fatalf("restored sizes %v/%v vs %v/%v",
			restored.G.NumEdges(), restored.H.NumEdges(), sp.G.NumEdges(), sp.H.NumEdges())
	}
	if restored.Stats() != sp.Stats() {
		t.Fatalf("restored stats %+v vs %+v", restored.Stats(), sp.Stats())
	}
	for i := range sp.G.Edges() {
		a, b := restored.G.Edge(i), sp.G.Edge(i)
		if a.U != b.U || a.V != b.V || math.Float64bits(a.W) != math.Float64bits(b.W) {
			t.Fatalf("G edge %d: %+v vs %+v", i, a, b)
		}
	}

	// A corrupted checkpoint is detected, not silently half-loaded.
	path := checkpointPath(dir, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadCheckpoint(); err == nil {
		t.Fatal("want error loading corrupted checkpoint")
	}
}

func TestOpenRemovesStrayCheckpointTmp(t *testing.T) {
	dir := t.TempDir()
	stray := checkpointPath(dir, 7) + ".tmp"
	if err := os.WriteFile(stray, []byte("half-written state"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray tmp checkpoint not cleaned up: %v", err)
	}
	// The stray tmp must not count as a checkpoint.
	if _, ok := st.CheckpointGen(); ok {
		t.Fatal("tmp file was treated as a checkpoint")
	}
}

func TestSyncIntervalFlusher(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for gen := uint64(1); gen <= 3; gen++ {
		if _, err := st.Append(rec(gen, []graph.Edge{{U: int(gen), V: 0, W: 1}})); err != nil {
			t.Fatal(err)
		}
	}
	// Wait a few intervals so the background flusher runs with dirty state,
	// then make sure appends, checkpoint rotation, and close all still work.
	time.Sleep(25 * time.Millisecond)
	sp := testSparsifier(t, 6, 6)
	if err := st.WriteCheckpoint(Checkpoint{Gen: 3, State: sp.PersistentState()}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(rec(4, []graph.Edge{{U: 4, V: 0, W: 1}})); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything after the checkpoint is still replayable.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var gens []uint64
	if err := st2.Replay(3, func(r BatchRecord) error { gens = append(gens, r.Gen); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0] != 4 {
		t.Fatalf("replay after interval-sync run saw %v", gens)
	}
}

func TestRestoreState(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sp := testSparsifier(t, 6, 6)
	if err := st.WriteCheckpoint(Checkpoint{Gen: 0, State: sp.PersistentState()}); err != nil {
		t.Fatal(err)
	}
	// Apply two batches to the live engine, logging each.
	b1 := []graph.Edge{{U: 0, V: 25, W: 2}, {U: 5, V: 30, W: 0.5}}
	if _, err := sp.ApplyBatch(append([]graph.Edge(nil), b1...), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(rec(1, b1)); err != nil {
		t.Fatal(err)
	}
	del := []graph.Edge{{U: 0, V: 25}}
	if _, err := sp.DeleteEdges(del); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(rec(2, nil, del)); err != nil {
		t.Fatal(err)
	}

	got, gen, err := st.RestoreState()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("recovered gen %d", gen)
	}
	if got.Stats() != sp.Stats() {
		t.Fatalf("stats %+v vs %+v", got.Stats(), sp.Stats())
	}
	for i := range sp.H.Edges() {
		a, b := got.H.Edge(i), sp.H.Edge(i)
		if a.U != b.U || a.V != b.V || math.Float64bits(a.W) != math.Float64bits(b.W) {
			t.Fatalf("H edge %d: %+v vs %+v", i, a, b)
		}
	}

	// A generation gap (simulating records lost while durability was
	// degraded without a healing checkpoint) fails loudly.
	if _, err := st.Append(rec(9, []graph.Edge{{U: 1, V: 3, W: 1}})); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.RestoreState(); err == nil {
		t.Fatal("want generation-gap error")
	}
}
