package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"ingrass/internal/graph"
)

// BatchRecord is one applied write batch: everything the engine mutated in
// a single flush, in application order. Replaying the record against the
// state the previous generation left behind reproduces generation Gen
// exactly: Adds go through one core.ApplyBatch pass (which re-sorts by
// distortion deterministically), then each deletion batch goes through
// core.DeleteEdges in order. Only *applied* mutations are logged — requests
// that failed validation never reach the WAL, so replay cannot fail where
// the original didn't.
type BatchRecord struct {
	// Gen is the snapshot generation this batch produced.
	Gen uint64
	// Adds are the inserted edges of the batch, in coalesced enqueue order.
	Adds []graph.Edge
	// DelBatches are the applied deletion requests, in application order.
	// Deletions identify edges by endpoints; weights are not stored.
	DelBatches [][]graph.Edge
	// Maint, when non-nil, makes this a maintenance record: the generation
	// was produced by a background setup-basis swap, not a write batch. A
	// maintenance record carries no edges (Adds and DelBatches must be
	// empty).
	Maint *MaintRecord
}

// MaintRecord is the durable image of one background re-sparsification
// swap. Replaying core.AdoptBasis(HBase, TargetCond) after the preceding
// batch records reproduces the post-swap engine state bit-exactly: the live
// swap built its LRD decomposition and sketch from these same frozen
// snapshot bytes, and the sketch catch-up over later edges registers only
// (immutable) endpoints, so replay and live converge on identical
// structures (the persist.go invariant).
type MaintRecord struct {
	// TargetCond is the (possibly auto-tuned) target condition number the
	// rebuilt basis used.
	TargetCond float64
	// HBase is the frozen sparsifier snapshot the basis was built from.
	// The full graph is stored: sparsifier weights mutate in place (merge
	// and redistribution scaling, deletion tombstones), so no edge-count
	// prefix of the current sparsifier can reconstruct it.
	HBase *graph.Graph
}

// Record payload versions. A version-1 record is an applied write batch; a
// version-2 record is a maintenance swap.
const (
	recordVersion      = 1
	recordVersionMaint = 2
)

// appendUvarint appends x in unsigned LEB128.
func appendUvarint(b []byte, x uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	return append(b, tmp[:n]...)
}

// encode serializes the record payload (the frame adds length + CRC).
//
// Payload layout:
//
//	version     uvarint (currently 1)
//	gen         uvarint
//	nAdds       uvarint
//	adds        nAdds × { u uvarint, v uvarint, w uint64 LE (Float64bits) }
//	nDelBatches uvarint
//	delBatches  nDelBatches × { n uvarint, n × { u uvarint, v uvarint } }
//
// Maintenance records (version 2) instead carry the swap image:
//
//	version    uvarint (2)
//	gen        uvarint
//	targetCond uint64 LE (Float64bits)
//	hbaseLen   uvarint
//	hbase      binary graph (internal/graph.WriteBinary)
func (r BatchRecord) encode(buf []byte) []byte {
	buf = appendUvarint(buf[:0], recordVersion)
	buf = appendUvarint(buf, r.Gen)
	buf = appendUvarint(buf, uint64(len(r.Adds)))
	for _, e := range r.Adds {
		buf = appendUvarint(buf, uint64(e.U))
		buf = appendUvarint(buf, uint64(e.V))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.W))
	}
	buf = appendUvarint(buf, uint64(len(r.DelBatches)))
	for _, batch := range r.DelBatches {
		buf = appendUvarint(buf, uint64(len(batch)))
		for _, e := range batch {
			buf = appendUvarint(buf, uint64(e.U))
			buf = appendUvarint(buf, uint64(e.V))
		}
	}
	return buf
}

// encodePayload serializes the record payload in the version its contents
// demand, returning an error for an unencodable record (a maintenance
// record missing its graph or mixing in batch edges).
func (r BatchRecord) encodePayload() ([]byte, error) {
	if r.Maint == nil {
		return r.encode(nil), nil
	}
	if r.Maint.HBase == nil {
		return nil, fmt.Errorf("wal: maintenance record without basis graph")
	}
	if len(r.Adds) > 0 || len(r.DelBatches) > 0 {
		return nil, fmt.Errorf("wal: maintenance record must not carry batch edges")
	}
	buf := appendUvarint(nil, recordVersionMaint)
	buf = appendUvarint(buf, r.Gen)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Maint.TargetCond))
	var gb bytes.Buffer
	if err := graph.WriteBinary(&gb, r.Maint.HBase); err != nil {
		return nil, err
	}
	buf = appendUvarint(buf, uint64(gb.Len()))
	buf = append(buf, gb.Bytes()...)
	return buf, nil
}

// byteReader walks an in-memory payload; every read error means the framed
// CRC lied about the payload's integrity, which callers surface as
// corruption.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: record truncated at offset %d", r.off)
	}
	r.off += n
	return x, nil
}

func (r *byteReader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("wal: record truncated at offset %d", r.off)
	}
	x := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return x, nil
}

// decodeRecord parses a framed payload back into a BatchRecord.
func decodeRecord(payload []byte) (BatchRecord, error) {
	var rec BatchRecord
	r := &byteReader{b: payload}
	ver, err := r.uvarint()
	if err != nil {
		return rec, err
	}
	switch ver {
	case recordVersion:
	case recordVersionMaint:
		return decodeMaintRecord(r, payload)
	default:
		return rec, fmt.Errorf("wal: record version %d not supported", ver)
	}
	if rec.Gen, err = r.uvarint(); err != nil {
		return rec, err
	}
	nAdds, err := r.uvarint()
	if err != nil {
		return rec, err
	}
	if nAdds > uint64(len(payload)) {
		return rec, fmt.Errorf("wal: record claims %d adds in %d bytes", nAdds, len(payload))
	}
	if nAdds > 0 {
		rec.Adds = make([]graph.Edge, nAdds)
		for i := range rec.Adds {
			u, err := r.uvarint()
			if err != nil {
				return rec, err
			}
			v, err := r.uvarint()
			if err != nil {
				return rec, err
			}
			w, err := r.u64()
			if err != nil {
				return rec, err
			}
			rec.Adds[i] = graph.Edge{U: int(u), V: int(v), W: math.Float64frombits(w)}
		}
	}
	nBatches, err := r.uvarint()
	if err != nil {
		return rec, err
	}
	if nBatches > uint64(len(payload)) {
		return rec, fmt.Errorf("wal: record claims %d delete batches in %d bytes", nBatches, len(payload))
	}
	if nBatches > 0 {
		rec.DelBatches = make([][]graph.Edge, nBatches)
		for b := range rec.DelBatches {
			n, err := r.uvarint()
			if err != nil {
				return rec, err
			}
			if n > uint64(len(payload)) {
				return rec, fmt.Errorf("wal: delete batch claims %d edges in %d bytes", n, len(payload))
			}
			batch := make([]graph.Edge, n)
			for i := range batch {
				u, err := r.uvarint()
				if err != nil {
					return rec, err
				}
				v, err := r.uvarint()
				if err != nil {
					return rec, err
				}
				batch[i] = graph.Edge{U: int(u), V: int(v)}
			}
			rec.DelBatches[b] = batch
		}
	}
	if r.off != len(payload) {
		return rec, fmt.Errorf("wal: %d trailing bytes after record", len(payload)-r.off)
	}
	return rec, nil
}

// decodeMaintRecord parses a version-2 payload after its version byte.
func decodeMaintRecord(r *byteReader, payload []byte) (BatchRecord, error) {
	var rec BatchRecord
	var err error
	if rec.Gen, err = r.uvarint(); err != nil {
		return rec, err
	}
	tc, err := r.u64()
	if err != nil {
		return rec, err
	}
	size, err := r.uvarint()
	if err != nil {
		return rec, err
	}
	if uint64(r.off)+size > uint64(len(payload)) {
		return rec, fmt.Errorf("wal: maintenance record graph block overruns payload")
	}
	g, err := graph.ReadBinary(bytes.NewReader(payload[r.off : r.off+int(size)]))
	if err != nil {
		return rec, err
	}
	r.off += int(size)
	if r.off != len(payload) {
		return rec, fmt.Errorf("wal: %d trailing bytes after maintenance record", len(payload)-r.off)
	}
	rec.Maint = &MaintRecord{TargetCond: math.Float64frombits(tc), HBase: g}
	return rec, nil
}

// recordGen peeks only the generation out of a payload (used by the open
// scan, which validates framing without materializing edge slices).
func recordGen(payload []byte) (uint64, error) {
	r := &byteReader{b: payload}
	ver, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if ver != recordVersion && ver != recordVersionMaint {
		return 0, fmt.Errorf("wal: record version %d not supported", ver)
	}
	return r.uvarint()
}
