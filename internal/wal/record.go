package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"ingrass/internal/graph"
)

// BatchRecord is one applied write batch: everything the engine mutated in
// a single flush, in application order. Replaying the record against the
// state the previous generation left behind reproduces generation Gen
// exactly: Adds go through one core.ApplyBatch pass (which re-sorts by
// distortion deterministically), then each deletion batch goes through
// core.DeleteEdges in order. Only *applied* mutations are logged — requests
// that failed validation never reach the WAL, so replay cannot fail where
// the original didn't.
type BatchRecord struct {
	// Gen is the snapshot generation this batch produced.
	Gen uint64
	// Adds are the inserted edges of the batch, in coalesced enqueue order.
	Adds []graph.Edge
	// DelBatches are the applied deletion requests, in application order.
	// Deletions identify edges by endpoints; weights are not stored.
	DelBatches [][]graph.Edge
}

// recordVersion is bumped on incompatible payload changes.
const recordVersion = 1

// appendUvarint appends x in unsigned LEB128.
func appendUvarint(b []byte, x uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	return append(b, tmp[:n]...)
}

// encode serializes the record payload (the frame adds length + CRC).
//
// Payload layout:
//
//	version     uvarint (currently 1)
//	gen         uvarint
//	nAdds       uvarint
//	adds        nAdds × { u uvarint, v uvarint, w uint64 LE (Float64bits) }
//	nDelBatches uvarint
//	delBatches  nDelBatches × { n uvarint, n × { u uvarint, v uvarint } }
func (r BatchRecord) encode(buf []byte) []byte {
	buf = appendUvarint(buf[:0], recordVersion)
	buf = appendUvarint(buf, r.Gen)
	buf = appendUvarint(buf, uint64(len(r.Adds)))
	for _, e := range r.Adds {
		buf = appendUvarint(buf, uint64(e.U))
		buf = appendUvarint(buf, uint64(e.V))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.W))
	}
	buf = appendUvarint(buf, uint64(len(r.DelBatches)))
	for _, batch := range r.DelBatches {
		buf = appendUvarint(buf, uint64(len(batch)))
		for _, e := range batch {
			buf = appendUvarint(buf, uint64(e.U))
			buf = appendUvarint(buf, uint64(e.V))
		}
	}
	return buf
}

// byteReader walks an in-memory payload; every read error means the framed
// CRC lied about the payload's integrity, which callers surface as
// corruption.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: record truncated at offset %d", r.off)
	}
	r.off += n
	return x, nil
}

func (r *byteReader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("wal: record truncated at offset %d", r.off)
	}
	x := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return x, nil
}

// decodeRecord parses a framed payload back into a BatchRecord.
func decodeRecord(payload []byte) (BatchRecord, error) {
	var rec BatchRecord
	r := &byteReader{b: payload}
	ver, err := r.uvarint()
	if err != nil {
		return rec, err
	}
	if ver != recordVersion {
		return rec, fmt.Errorf("wal: record version %d not supported", ver)
	}
	if rec.Gen, err = r.uvarint(); err != nil {
		return rec, err
	}
	nAdds, err := r.uvarint()
	if err != nil {
		return rec, err
	}
	if nAdds > uint64(len(payload)) {
		return rec, fmt.Errorf("wal: record claims %d adds in %d bytes", nAdds, len(payload))
	}
	if nAdds > 0 {
		rec.Adds = make([]graph.Edge, nAdds)
		for i := range rec.Adds {
			u, err := r.uvarint()
			if err != nil {
				return rec, err
			}
			v, err := r.uvarint()
			if err != nil {
				return rec, err
			}
			w, err := r.u64()
			if err != nil {
				return rec, err
			}
			rec.Adds[i] = graph.Edge{U: int(u), V: int(v), W: math.Float64frombits(w)}
		}
	}
	nBatches, err := r.uvarint()
	if err != nil {
		return rec, err
	}
	if nBatches > uint64(len(payload)) {
		return rec, fmt.Errorf("wal: record claims %d delete batches in %d bytes", nBatches, len(payload))
	}
	if nBatches > 0 {
		rec.DelBatches = make([][]graph.Edge, nBatches)
		for b := range rec.DelBatches {
			n, err := r.uvarint()
			if err != nil {
				return rec, err
			}
			if n > uint64(len(payload)) {
				return rec, fmt.Errorf("wal: delete batch claims %d edges in %d bytes", n, len(payload))
			}
			batch := make([]graph.Edge, n)
			for i := range batch {
				u, err := r.uvarint()
				if err != nil {
					return rec, err
				}
				v, err := r.uvarint()
				if err != nil {
					return rec, err
				}
				batch[i] = graph.Edge{U: int(u), V: int(v)}
			}
			rec.DelBatches[b] = batch
		}
	}
	if r.off != len(payload) {
		return rec, fmt.Errorf("wal: %d trailing bytes after record", len(payload)-r.off)
	}
	return rec, nil
}

// recordGen peeks only the generation out of a payload (used by the open
// scan, which validates framing without materializing edge slices).
func recordGen(payload []byte) (uint64, error) {
	r := &byteReader{b: payload}
	ver, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if ver != recordVersion {
		return 0, fmt.Errorf("wal: record version %d not supported", ver)
	}
	return r.uvarint()
}
