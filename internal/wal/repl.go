package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Replication support: the primary-side shipper (internal/repl) reads the
// log concurrently with live appends and checkpoint pruning, which the
// original single-process recovery path never had to survive. Three
// mechanisms make that safe:
//
//   - Retention refs (Retain) pin every record above a generation against
//     checkpoint-time pruning. RestoreState takes one across its
//     checkpoint-load → replay window too: the historical race was a
//     checkpoint landing between LoadCheckpoint and Replay and deleting a
//     segment the replay was about to read.
//
//   - prunedGen records the highest generation that pruning may have removed
//     from the log. A reader asking for older records gets ErrPruned and
//     must re-bootstrap from the checkpoint instead — the
//     checkpoint-redirect contract the follower protocol is built on.
//
//   - IterateFrom reads outside the store lock (streams can outlive any
//     reasonable critical section) but tolerates the two races that
//     permits: a torn frame at the tail of the active segment is an append
//     in progress (clean stop, not corruption), and a vanished active
//     segment is the damaged-segment drop (clean stop; the next call
//     redirects through prunedGen).

// ErrPruned reports a read positioned below the pruning horizon: the
// records were deleted under a covering checkpoint. Recover by loading the
// checkpoint (CheckpointBytes) and resuming from its generation.
var ErrPruned = errors.New("wal: requested records pruned; re-bootstrap from checkpoint")

// RetainRef pins every record with generation > Gen against pruning while
// held. Refs are advisory ownership tokens, not iterators: take one, read,
// Update it forward as progress is acknowledged, Release when done.
type RetainRef struct {
	st  *Store
	gen uint64
}

// Retain registers a retention ref at afterGen.
func (st *Store) Retain(afterGen uint64) *RetainRef {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.retainLocked(afterGen)
}

func (st *Store) retainLocked(afterGen uint64) *RetainRef {
	r := &RetainRef{st: st, gen: afterGen}
	if st.retains == nil {
		st.retains = make(map[*RetainRef]struct{})
	}
	st.retains[r] = struct{}{}
	return r
}

// Gen returns the ref's current floor generation.
func (r *RetainRef) Gen() uint64 {
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	return r.gen
}

// Update advances the floor (it never retreats: records once released to
// pruning cannot be re-pinned).
func (r *RetainRef) Update(gen uint64) {
	r.st.mu.Lock()
	if gen > r.gen {
		r.gen = gen
	}
	r.st.mu.Unlock()
}

// Release drops the pin. Releasing twice is harmless.
func (r *RetainRef) Release() {
	r.st.mu.Lock()
	delete(r.st.retains, r)
	r.st.mu.Unlock()
}

// retainFloorLocked returns the lowest floor among live refs.
func (st *Store) retainFloorLocked() (uint64, bool) {
	var floor uint64
	found := false
	for ref := range st.retains {
		if !found || ref.gen < floor {
			floor, found = ref.gen, true
		}
	}
	return floor, found
}

// PrunedGen returns the highest generation pruning may have removed from
// the log. Records above it are guaranteed readable via IterateFrom.
func (st *Store) PrunedGen() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.prunedGen
}

// CoverableBytes returns the total size of sealed segments that are covered
// by the latest checkpoint (so prunable in principle) but sit above
// afterGen — the bytes a retention ref at afterGen is holding against GC.
// The primary's retention cap evicts a follower when this grows too large.
func (st *Store) CoverableBytes(afterGen uint64) int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var total int64
	for _, s := range st.sealed {
		if s.maxGen <= st.ckGen && s.maxGen > afterGen {
			total += s.bytes
		}
	}
	return total
}

// AppendSignal returns a channel closed by the next successful Append —
// the long-poll primitive behind tail streaming. Grab the channel BEFORE
// checking for new records, or a racing append's wakeup is lost.
func (st *Store) AppendSignal() <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.appendSig == nil {
		st.appendSig = make(chan struct{})
	}
	return st.appendSig
}

func (st *Store) signalAppendLocked() {
	if st.appendSig != nil {
		close(st.appendSig)
		st.appendSig = nil
	}
}

// IterateFrom streams the payload of every record with Gen > afterGen, in
// order, to fn, without decoding them (the shipper re-frames raw payloads
// onto the wire). It returns the last generation delivered and the record
// count. The walk runs outside the store lock under a retention ref; it
// ends cleanly at the tail of the active segment even when that tail is a
// frame mid-append. ErrPruned reports afterGen below the pruning horizon;
// a non-tail framing failure is ErrCorrupt.
func (st *Store) IterateFrom(afterGen uint64, fn func(gen uint64, payload []byte) error) (uint64, int, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return afterGen, 0, ErrClosed
	}
	if afterGen < st.prunedGen {
		st.mu.Unlock()
		return afterGen, 0, ErrPruned
	}
	ref := st.retainLocked(afterGen)
	paths := make([]string, 0, len(st.sealed)+1)
	for _, s := range st.sealed {
		if s.maxGen > afterGen { // empty sealed segments (maxGen 0) skip too
			paths = append(paths, s.path)
		}
	}
	activePath := st.cur.path
	paths = append(paths, activePath)
	st.mu.Unlock()
	defer ref.Release()

	last, n := afterGen, 0
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) && path == activePath {
				// The damaged-segment drop removed the active file under
				// us; everything it held is checkpoint-covered. Stop here —
				// the caller's next fetch goes through the redirect.
				return last, n, nil
			}
			return last, n, err
		}
		br := bufio.NewReaderSize(f, 1<<16)
		for {
			payload, ferr := readFrame(br)
			if ferr == io.EOF {
				break
			}
			if ferr != nil {
				f.Close()
				if path == activePath {
					// An append in progress: its frame is partially on
					// disk. Not damage — the record completes (or is
					// truncated away) before any later byte lands.
					return last, n, nil
				}
				return last, n, fmt.Errorf("%w: segment %s failed stream read", ErrCorrupt, path)
			}
			g, derr := recordGen(payload)
			if derr != nil {
				f.Close()
				return last, n, fmt.Errorf("%w: %v", ErrCorrupt, derr)
			}
			if g <= afterGen {
				continue
			}
			if err := fn(g, payload); err != nil {
				f.Close()
				return last, n, err
			}
			last, n = g, n+1
		}
		f.Close()
		ref.Update(last)
	}
	return last, n, nil
}

// CheckpointBytes returns the newest checkpoint's raw file contents and its
// generation, for shipping to a bootstrapping follower. Only the envelope
// (magic + CRC) is verified here; the follower decodes. If the file
// vanishes mid-read (superseded by a newer checkpoint and removed), the
// read retries against the new one.
func (st *Store) CheckpointBytes() ([]byte, uint64, error) {
	for {
		st.mu.Lock()
		hasCk, gen := st.hasCk, st.ckGen
		st.mu.Unlock()
		if !hasCk {
			return nil, 0, ErrNoCheckpoint
		}
		data, err := os.ReadFile(checkpointPath(st.dir, gen))
		if err != nil {
			if os.IsNotExist(err) {
				st.mu.Lock()
				moved := st.ckGen != gen
				st.mu.Unlock()
				if moved {
					continue
				}
			}
			return nil, 0, err
		}
		if err := verifyCheckpointEnvelope(data); err != nil {
			return nil, 0, err
		}
		return data, gen, nil
	}
}

// verifyCheckpointEnvelope checks magic and CRC without decoding the body.
func verifyCheckpointEnvelope(data []byte) error {
	if len(data) < len(checkpointMagic)+4 {
		return fmt.Errorf("%w: checkpoint file too short", ErrCorrupt)
	}
	if !bytes.Equal(data[:len(checkpointMagic)], checkpointMagic[:]) {
		return fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	body := data[len(checkpointMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != want {
		return fmt.Errorf("%w: checkpoint CRC mismatch", ErrCorrupt)
	}
	return nil
}

// ParseCheckpoint decodes a checkpoint file image (as served by
// CheckpointBytes) back into a Checkpoint, validating magic and CRC.
func ParseCheckpoint(data []byte) (Checkpoint, error) {
	return unmarshalCheckpoint(data)
}

// DecodeRecord parses a record payload (as delivered by IterateFrom or the
// replication stream) back into a BatchRecord.
func DecodeRecord(payload []byte) (BatchRecord, error) {
	return decodeRecord(payload)
}
