package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ingrass/internal/core"
)

const (
	segmentPrefix    = "wal-"
	segmentSuffix    = ".log"
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".ckpt"
)

// segment is one sealed (read-only) log file.
type segment struct {
	path    string
	seq     uint64
	maxGen  uint64 // highest record generation inside (0 if empty)
	records int
	bytes   int64 // valid framed bytes (retention-cap accounting)
}

// Store is the on-disk durability state of one engine: a directory of WAL
// segments plus checkpoint files. All methods are safe for concurrent use;
// Append and WriteCheckpoint may race freely because recovery filters
// replay by generation, not by file position.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	sealed []segment // ascending seq
	active *os.File
	cur    segment // the active segment's bookkeeping
	curLen int64

	lastGen uint64 // highest generation appended to the WAL
	ckGen   uint64 // latest checkpoint generation
	hasCk   bool
	closed  bool
	// dirty marks unsynced appended bytes in the active segment (the
	// SyncInterval flusher's work queue).
	dirty bool
	// damaged marks an active segment whose tail may hold a partial frame
	// from a failed append that could not be truncated away. Appending
	// behind such garbage would be fatal later: the next Open would stop
	// scanning at the torn frame and silently truncate every record after
	// it. So while damaged, Append refuses, and the next WriteCheckpoint
	// (which covers every record the segment holds) abandons the segment
	// and starts a fresh one.
	damaged bool

	// retains are the live retention refs pinning records against pruning;
	// prunedGen is the highest generation pruning may have removed (see
	// repl.go). appendSig, when non-nil, is closed by the next successful
	// append — the long-poll wakeup for tail streaming.
	retains   map[*RetainRef]struct{}
	prunedGen uint64
	appendSig chan struct{}

	// SyncInterval background flusher lifecycle.
	flushQuit chan struct{}
	flushWG   sync.WaitGroup
}

// Open opens (creating if needed) the data directory, validates every
// segment, truncates a torn trailing record, and positions the store for
// appends. Corruption anywhere but the tail of the last segment returns
// ErrCorrupt.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{dir: dir, opts: opts.withDefaults()}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, checkpointSuffix+".tmp"):
			// A crash between the tmp write and the rename left a stray
			// state-sized file; no later checkpoint reuses its name.
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, segmentPrefix) && strings.HasSuffix(name, segmentSuffix):
			seqStr := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
			seq, err := strconv.ParseUint(seqStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: unparseable segment name %q", ErrCorrupt, name)
			}
			segs = append(segs, segment{path: filepath.Join(dir, name), seq: seq})
		case strings.HasPrefix(name, checkpointPrefix) && strings.HasSuffix(name, checkpointSuffix):
			genStr := strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix)
			gen, err := strconv.ParseUint(genStr, 10, 64)
			if err != nil {
				continue // stray file; ignore
			}
			if !st.hasCk || gen > st.ckGen {
				st.ckGen, st.hasCk = gen, true
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })

	// Validate each segment; repair the last one's tail if torn. A torn
	// write can only be the final frame of the final segment — anything
	// else is corruption and recovery must not silently drop records.
	for i := range segs {
		last := i == len(segs)-1
		maxGen, records, validLen, err := scanSegment(segs[i].path, st.lastGen)
		if err != nil {
			if err == errTorn && last {
				if terr := os.Truncate(segs[i].path, validLen); terr != nil {
					return nil, terr
				}
			} else if err == errTorn || err == errCorruptMid {
				return nil, fmt.Errorf("%w: segment %s damaged before its tail", ErrCorrupt, segs[i].path)
			} else {
				return nil, err
			}
		}
		segs[i].maxGen = maxGen
		segs[i].records = records
		segs[i].bytes = validLen
		if maxGen > st.lastGen {
			st.lastGen = maxGen
		}
	}

	// Records at or below the newest checkpoint may have been pruned by a
	// previous process; assume conservatively that they were. Replication
	// readers always resume from a checkpoint generation, so the pessimism
	// costs at most one redundant checkpoint re-bootstrap.
	if st.hasCk {
		st.prunedGen = st.ckGen
	}

	// The highest-numbered segment becomes the active one; everything
	// before it is sealed.
	if len(segs) == 0 {
		if err := st.openFreshSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		st.sealed = segs[:len(segs)-1]
		tail := segs[len(segs)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		st.active, st.cur, st.curLen = f, tail, info.Size()
	}

	// SyncInterval's loss bound ("at most SyncEvery") needs a wall-clock
	// flusher: without one, the last write before an idle period would stay
	// unsynced indefinitely.
	if st.opts.Sync == SyncInterval {
		st.flushQuit = make(chan struct{})
		st.flushWG.Add(1)
		go st.flushLoop()
	}
	return st, nil
}

// flushLoop fsyncs the active segment every SyncEvery while it has
// unsynced appends (SyncInterval policy only).
func (st *Store) flushLoop() {
	defer st.flushWG.Done()
	ticker := time.NewTicker(st.opts.SyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st.mu.Lock()
			if !st.closed && st.dirty {
				s0 := time.Now()
				err := st.active.Sync()
				st.opts.SyncDur.ObserveSince(s0)
				if err == nil {
					st.dirty = false
				}
			}
			st.mu.Unlock()
		case <-st.flushQuit:
			return
		}
	}
}

// errCorruptMid marks an invalid frame that is followed by further valid
// frames. A crash tears at most the very last frame (each append completes
// before the next begins), so valid data *after* the damage proves this is
// real corruption — truncating there would silently discard acknowledged
// records.
var errCorruptMid = errors.New("wal: damaged frame followed by valid data")

// scanSegment walks one segment, checking frames and generation
// monotonicity. It returns the highest generation seen, the record count,
// and the byte offset up to which the segment is valid; err is errTorn when
// the walk stopped at a torn trailing frame and errCorruptMid when the
// invalid frame has valid frames after it.
func scanSegment(path string, prevGen uint64) (maxGen uint64, records int, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	fail := func() error {
		if hasValidFrameAfter(data, int(validLen)+1) {
			return errCorruptMid
		}
		return errTorn
	}
	br := bytes.NewReader(data)
	gen := prevGen
	for {
		payload, ferr := readFrame(br)
		if ferr == io.EOF {
			return maxGen, records, validLen, nil
		}
		if ferr != nil {
			return maxGen, records, validLen, fail()
		}
		g, derr := recordGen(payload)
		if derr != nil || g <= gen {
			// Undecodable-but-checksummed, or generation going backwards:
			// classify by what follows, like any other bad frame.
			return maxGen, records, validLen, fail()
		}
		gen, maxGen = g, g
		records++
		validLen += int64(frameHeaderSize + len(payload))
	}
}

// hasValidFrameAfter reports whether any complete, checksummed frame starts
// at or after offset from — the discriminator between a torn tail (nothing
// valid can follow) and mid-segment damage.
func hasValidFrameAfter(data []byte, from int) bool {
	for i := from; i+frameHeaderSize <= len(data); i++ {
		if data[i] != recordMarker {
			continue
		}
		length := binary.LittleEndian.Uint32(data[i+1 : i+5])
		if length > maxRecordBytes || i+frameHeaderSize+int(length) > len(data) {
			continue
		}
		payload := data[i+frameHeaderSize : i+frameHeaderSize+int(length)]
		if crc32.Checksum(payload, crcTable) == binary.LittleEndian.Uint32(data[i+5:i+9]) {
			return true
		}
	}
	return false
}

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix))
}

func checkpointPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", checkpointPrefix, gen, checkpointSuffix))
}

// openFreshSegmentLocked creates and activates segment seq.
func (st *Store) openFreshSegmentLocked(seq uint64) error {
	path := segmentPath(st.dir, seq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	st.active = f
	st.cur = segment{path: path, seq: seq}
	st.curLen = 0
	return nil
}

// sealActiveLocked fsyncs and closes the active segment, moving it to the
// sealed list, and opens the next one.
func (st *Store) sealActiveLocked() error {
	if err := st.active.Sync(); err != nil {
		return err
	}
	if err := st.active.Close(); err != nil {
		return err
	}
	st.cur.bytes = st.curLen
	st.sealed = append(st.sealed, st.cur)
	st.dirty = false
	return st.openFreshSegmentLocked(st.cur.seq + 1)
}

// Append frames rec, writes it to the active segment, applies the fsync
// policy, and rotates the segment if it outgrew Options.SegmentBytes. It
// returns the framed size in bytes.
func (st *Store) Append(rec BatchRecord) (int, error) {
	n, _, err := st.AppendTimed(rec)
	return n, err
}

// AppendTimed is Append, additionally reporting how long the fsync took
// (zero unless the policy is SyncAlways). The write path's tracer uses it
// to carve an fsync span out of the append span without a second clock
// read inside the store.
func (st *Store) AppendTimed(rec BatchRecord) (int, time.Duration, error) {
	start := time.Now()
	defer st.opts.AppendDur.ObserveSince(start)
	payload, err := rec.encodePayload()
	if err != nil {
		return 0, 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, 0, ErrClosed
	}
	if st.damaged {
		return 0, 0, fmt.Errorf("wal: active segment damaged by an earlier failed append; a checkpoint must rotate it first")
	}
	if f := st.opts.FailAppend; f != nil {
		if err := f(rec); err != nil {
			return 0, 0, err
		}
	}
	n, err := writeFrame(st.active, payload)
	if err != nil {
		// A partial frame may be on disk. Cut the file back to its
		// pre-append length so the segment stays cleanly framed; if even
		// that fails, quarantine the segment — appending behind torn bytes
		// would make the next Open truncate every later record away.
		if terr := st.active.Truncate(st.curLen); terr != nil {
			st.damaged = true
		}
		return 0, 0, err
	}
	st.curLen += int64(n)
	if rec.Gen > st.lastGen {
		st.lastGen = rec.Gen
	}
	if rec.Gen > st.cur.maxGen {
		st.cur.maxGen = rec.Gen
	}
	st.cur.records++
	st.signalAppendLocked()

	var syncDur time.Duration
	switch st.opts.Sync {
	case SyncAlways:
		s0 := time.Now()
		err := st.active.Sync()
		syncDur = time.Since(s0)
		st.opts.SyncDur.Observe(int64(syncDur))
		if err != nil {
			return n, syncDur, err
		}
	case SyncInterval:
		st.dirty = true // the flusher syncs within SyncEvery
	}
	if st.curLen >= st.opts.SegmentBytes {
		if err := st.sealActiveLocked(); err != nil {
			return n, syncDur, err
		}
	}
	return n, syncDur, nil
}

// Replay streams every record with Gen > afterGen, in order, to fn. It is
// intended to run once before the engine starts appending; fn must not call
// back into the Store.
func (st *Store) Replay(afterGen uint64, fn func(BatchRecord) error) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	paths := make([]string, 0, len(st.sealed)+1)
	for _, s := range st.sealed {
		paths = append(paths, s.path)
	}
	paths = append(paths, st.cur.path)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		br := bufio.NewReaderSize(f, 1<<16)
		for {
			payload, ferr := readFrame(br)
			if ferr == io.EOF {
				break
			}
			if ferr != nil {
				// Open already repaired torn tails; anything here is real.
				f.Close()
				return fmt.Errorf("%w: segment %s failed re-read", ErrCorrupt, path)
			}
			rec, derr := decodeRecord(payload)
			if derr != nil {
				f.Close()
				return fmt.Errorf("%w: %v", ErrCorrupt, derr)
			}
			if rec.Gen <= afterGen {
				continue
			}
			if err := fn(rec); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// WriteCheckpoint atomically persists ck (temp file + fsync + rename), then
// prunes: older checkpoint files are removed, the active segment is sealed,
// and every sealed segment fully covered by the checkpoint is deleted.
// Record appends may interleave with a checkpoint in either order — replay
// filters by generation, so a record at or below the checkpoint generation
// is skipped wherever it lives.
func (st *Store) WriteCheckpoint(ck Checkpoint) error {
	start := time.Now()
	defer st.opts.CheckpointDur.ObserveSince(start)
	data, err := marshalCheckpoint(ck)
	if err != nil {
		return err
	}
	// The state-sized write and its fsync run outside st.mu so concurrent
	// Appends — and with them every write acknowledgement — never stall on
	// checkpoint I/O. Only the cheap rename, bookkeeping, and pruning
	// happen under the lock.
	final := checkpointPath(st.dir, ck.Gen)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return err
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		os.Remove(tmp)
		return ErrClosed
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(st.dir)

	prevCkGen, hadCk := st.ckGen, st.hasCk
	if !st.hasCk || ck.Gen > st.ckGen {
		st.ckGen, st.hasCk = ck.Gen, true
	}
	// Remove the superseded checkpoint (only after the new one is durable).
	if hadCk && prevCkGen != ck.Gen {
		os.Remove(checkpointPath(st.dir, prevCkGen))
	}
	switch {
	case st.damaged && st.cur.maxGen <= ck.Gen:
		// Every record the quarantined segment holds is covered by this
		// checkpoint (Append has refused since the damage), so the segment
		// — torn bytes and all — can be dropped wholesale and appending
		// resumes in a fresh one.
		st.active.Close()
		os.Remove(st.cur.path)
		if st.cur.maxGen > st.prunedGen {
			st.prunedGen = st.cur.maxGen
		}
		if err := st.openFreshSegmentLocked(st.cur.seq + 1); err != nil {
			return err
		}
		st.damaged, st.dirty = false, false
	case st.cur.records > 0:
		// Seal the active segment so covered history can be dropped.
		if err := st.sealActiveLocked(); err != nil {
			return err
		}
	}
	// Delete every sealed segment whose records all predate the checkpoint
	// AND sit below every live retention ref: a replication fetch or a
	// recovery replay in flight must never lose a file out from under it
	// (the pre-ref race: prune between LoadCheckpoint and Replay).
	floor := st.ckGen
	if f, ok := st.retainFloorLocked(); ok && f < floor {
		floor = f
	}
	kept := st.sealed[:0]
	for _, s := range st.sealed {
		if s.maxGen <= floor {
			os.Remove(s.path)
			if s.maxGen > st.prunedGen {
				st.prunedGen = s.maxGen
			}
			continue
		}
		kept = append(kept, s)
	}
	st.sealed = kept
	syncDir(st.dir)
	return nil
}

// LoadCheckpoint reads the newest checkpoint in the directory. It returns
// ErrNoCheckpoint if none exists and ErrCorrupt if the newest one fails its
// CRC (an older intact checkpoint, had it survived pruning, could not be
// paired with the already-truncated WAL, so no fallback is attempted).
func (st *Store) LoadCheckpoint() (Checkpoint, error) {
	for {
		st.mu.Lock()
		hasCk, gen := st.hasCk, st.ckGen
		st.mu.Unlock()
		if !hasCk {
			return Checkpoint{}, ErrNoCheckpoint
		}
		data, err := os.ReadFile(checkpointPath(st.dir, gen))
		if err != nil {
			// A concurrent checkpoint supersedes and removes the file we
			// targeted; retry against the newer one.
			if os.IsNotExist(err) {
				st.mu.Lock()
				moved := st.ckGen != gen
				st.mu.Unlock()
				if moved {
					continue
				}
			}
			return Checkpoint{}, err
		}
		return unmarshalCheckpoint(data)
	}
}

// Empty reports whether the directory holds no durable state at all —
// neither a checkpoint nor any WAL record.
func (st *Store) Empty() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return !st.hasCk && st.lastGen == 0 && st.cur.records == 0 && len(st.sealed) == 0
}

// LastGen returns the highest generation recorded anywhere in the store.
func (st *Store) LastGen() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.hasCk && st.ckGen > st.lastGen {
		return st.ckGen
	}
	return st.lastGen
}

// CheckpointGen returns the latest checkpoint generation, if any.
func (st *Store) CheckpointGen() (uint64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ckGen, st.hasCk
}

// Dir returns the data directory path.
func (st *Store) Dir() string { return st.dir }

// Sync forces an fsync of the active segment regardless of policy.
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	s0 := time.Now()
	err := st.active.Sync()
	st.opts.SyncDur.ObserveSince(s0)
	if err != nil {
		return err
	}
	st.dirty = false
	return nil
}

// Close fsyncs and closes the active segment. Further use returns ErrClosed.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	err := st.active.Sync()
	if cerr := st.active.Close(); err == nil {
		err = cerr
	}
	st.mu.Unlock()
	if st.flushQuit != nil {
		close(st.flushQuit)
		st.flushWG.Wait()
	}
	return err
}

// RestoreState is the recovery entry point below the service layer: load
// the newest checkpoint and fold the WAL tail back into a Sparsifier by
// replaying each record the way the engine applied it (one ApplyBatch pass
// for the adds, then each deletion batch in order). It returns the rebuilt
// sparsifier and the generation it represents.
func (st *Store) RestoreState() (*core.Sparsifier, uint64, error) {
	// Pin the log at the current checkpoint generation for the whole
	// load-then-replay window: a checkpoint written in between must not
	// prune a segment the replay below is about to read.
	st.mu.Lock()
	var pin uint64
	if st.hasCk {
		pin = st.ckGen
	}
	ref := st.retainLocked(pin)
	st.mu.Unlock()
	defer ref.Release()

	ck, err := st.LoadCheckpoint()
	if err != nil {
		return nil, 0, err
	}
	sp, err := core.RestoreSparsifier(ck.State)
	if err != nil {
		return nil, 0, err
	}
	gen := ck.Gen
	err = st.Replay(ck.Gen, func(rec BatchRecord) error {
		if rec.Gen != gen+1 {
			return fmt.Errorf("%w: generation gap in WAL (have %d, next record %d)", ErrCorrupt, gen, rec.Gen)
		}
		if rec.Maint != nil {
			// A maintenance record replays the background setup-basis swap
			// exactly as the live engine performed it: rebuild from the
			// recorded snapshot, then catch the sketch up over the edges
			// the preceding batch records appended.
			if err := sp.AdoptBasis(rec.Maint.HBase, rec.Maint.TargetCond); err != nil {
				return fmt.Errorf("wal: replay gen %d maintenance swap: %w", rec.Gen, err)
			}
			gen = rec.Gen
			return nil
		}
		if len(rec.Adds) > 0 {
			if _, err := sp.ApplyBatch(rec.Adds, nil); err != nil {
				return fmt.Errorf("wal: replay gen %d adds: %w", rec.Gen, err)
			}
		}
		for i, batch := range rec.DelBatches {
			if _, err := sp.DeleteEdges(batch); err != nil {
				return fmt.Errorf("wal: replay gen %d delete batch %d: %w", rec.Gen, i, err)
			}
		}
		gen = rec.Gen
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return sp, gen, nil
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
// Errors are ignored: not every filesystem supports directory fsync, and
// the worst case is the pre-rename state after a crash.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
