// Package solver defines the request-scoped solve contract shared by every
// layer of the stack: one Options struct that flows from the HTTP handler
// down to the innermost conjugate-gradient loop unchanged, pooled fixed-size
// scratch Workspaces that eliminate steady-state allocation on the hot solve
// path, and the typed errors that survive layer crossings via errors.Is.
//
// The contract is three values threaded together through every solver entry
// point:
//
//   - a context.Context (cancellation / deadline, checked once per
//     iteration by CG, flexible CG, and Lanczos),
//   - an Options value (tolerances, iteration budgets, worker counts),
//   - a *Workspace checked out from a Pool owned by the long-lived
//     operator or factorization the solve runs against.
//
// Workspaces are goroutine-confined while checked out; Pools are safe for
// concurrent use.
package solver

import (
	"context"
	"errors"
	"fmt"
)

// ErrNoConvergence is returned when an iterative solve exhausts its
// iteration budget before reaching the requested tolerance. The partial
// solution is still returned alongside it, since downstream estimators can
// often tolerate loose solves.
var ErrNoConvergence = errors.New("solver: iteration limit reached before convergence")

// ErrCancelled is returned (wrapped) when a solve is aborted by context
// cancellation or deadline expiry. Use errors.Is(err, ErrCancelled) to
// detect it; the wrapped chain also matches the specific context error
// (context.Canceled or context.DeadlineExceeded).
var ErrCancelled = errors.New("solver: solve cancelled")

// Cancelled wraps a context error so that errors.Is matches both
// ErrCancelled and the specific cause.
func Cancelled(cause error) error {
	return fmt.Errorf("%w: %w", ErrCancelled, cause)
}

// CheckCancel returns the wrapped cancellation error if ctx is done, nil
// otherwise. It is the per-iteration check every solver loop runs.
func CheckCancel(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return Cancelled(err)
	}
	return nil
}

// Options is the one knob set for the whole solver stack. A zero value
// means "all defaults". The same struct configures the outer solve (Tol,
// MaxIter), the preconditioner's truncated inner solve (InnerTol,
// InnerIters), and operator parallelism (Workers), so a request body like
// {"tol": 1e-6, "max_iter": 500} reaches the innermost loop without
// translation layers.
type Options struct {
	// Tol is the relative residual target ||r|| <= Tol*||b||. Default 1e-8.
	Tol float64
	// MaxIter bounds outer iterations. If 0, a default of 10*n clamped to
	// [50, 20000] is derived; an explicit caller-supplied value is used
	// verbatim and never clamped.
	MaxIter int
	// InnerTol is the relative-residual target of the preconditioner's
	// truncated inner solve. Default 1e-2 — the outer flexible CG tolerates
	// loose inner solves.
	InnerTol float64
	// InnerIters caps the inner solve's iterations per preconditioner
	// application. Default 25.
	InnerIters int
	// Workers bounds goroutines for parallel operator application; 0 means
	// serial. It is honored at operator/factorization construction time:
	// shared factorizations freeze their worker count, so a per-request
	// override cannot race against concurrent solves.
	Workers int
	// Format selects the frozen operator's sparse storage layout. Like
	// Workers it is honored at operator/factorization construction time
	// (sparse.LapOperator.SetFormat): FormatAuto lets the freeze path pick
	// by padding-ratio heuristic, FormatCSR/FormatSELL force a layout.
	Format Format
}

// Format names a frozen sparse-operator storage layout.
type Format uint8

const (
	// FormatAuto defers the CSR/SELL choice to the freeze-time heuristic
	// (operator size and predicted SELL padding ratio).
	FormatAuto Format = iota
	// FormatCSR forces the row-major compressed-sparse-row layout.
	FormatCSR
	// FormatSELL forces the sliced-ELLPACK (SELL-C-σ) layout.
	FormatSELL
)

// String returns the CLI/metrics name of the format.
func (f Format) String() string {
	switch f {
	case FormatCSR:
		return "csr"
	case FormatSELL:
		return "sell"
	default:
		return "auto"
	}
}

// ParseFormat maps a CLI/JSON name onto a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "auto":
		return FormatAuto, nil
	case "csr":
		return FormatCSR, nil
	case "sell":
		return FormatSELL, nil
	}
	return FormatAuto, fmt.Errorf("solver: unknown operator format %q (want auto, csr, or sell)", s)
}

// WithDefaults fills unset fields for a system of dimension n. Only the
// derived MaxIter default is clamped to 20000; an explicit MaxIter passes
// through untouched.
func (o Options) WithDefaults(n int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		m := 10 * n
		if m > 20000 {
			m = 20000
		}
		if m < 50 {
			m = 50
		}
		o.MaxIter = m
	}
	if o.InnerTol <= 0 {
		o.InnerTol = 1e-2
	}
	if o.InnerIters <= 0 {
		o.InnerIters = 25
	}
	return o
}

// Override returns o with every field explicitly set in req replacing o's
// value. It is how engine-level defaults merge with per-request options.
func (o Options) Override(req Options) Options {
	if req.Tol > 0 {
		o.Tol = req.Tol
	}
	if req.MaxIter > 0 {
		o.MaxIter = req.MaxIter
	}
	if req.InnerTol > 0 {
		o.InnerTol = req.InnerTol
	}
	if req.InnerIters > 0 {
		o.InnerIters = req.InnerIters
	}
	if req.Workers > 0 {
		o.Workers = req.Workers
	}
	if req.Format != FormatAuto {
		o.Format = req.Format
	}
	return o
}

// Inner derives the option set for the preconditioner's truncated inner
// solve. Call it on an Options that already has defaults applied, so
// InnerIters/InnerTol are set.
func (o Options) Inner() Options {
	return Options{Tol: o.InnerTol, MaxIter: o.InnerIters, Workers: o.Workers, Format: o.Format}
}
