package solver

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestWithDefaultsDerived(t *testing.T) {
	o := Options{}.WithDefaults(100)
	if o.Tol != 1e-8 {
		t.Fatalf("Tol default %g", o.Tol)
	}
	if o.MaxIter != 1000 {
		t.Fatalf("derived MaxIter %d, want 1000", o.MaxIter)
	}
	if o.InnerTol != 1e-2 || o.InnerIters != 25 {
		t.Fatalf("inner defaults %g/%d", o.InnerTol, o.InnerIters)
	}
	if got := (Options{}).WithDefaults(2).MaxIter; got != 50 {
		t.Fatalf("small-n floor %d, want 50", got)
	}
	if got := (Options{}).WithDefaults(1 << 20).MaxIter; got != 20000 {
		t.Fatalf("derived cap %d, want 20000", got)
	}
}

// Regression for the old sparse.CGOptions.withDefaults bug: an explicit
// caller-supplied MaxIter above 20000 must pass through verbatim — only the
// derived default is clamped.
func TestWithDefaultsExplicitMaxIterNotClamped(t *testing.T) {
	o := Options{MaxIter: 123456}.WithDefaults(1 << 20)
	if o.MaxIter != 123456 {
		t.Fatalf("explicit MaxIter clamped to %d", o.MaxIter)
	}
	o = Options{MaxIter: 3}.WithDefaults(100)
	if o.MaxIter != 3 {
		t.Fatalf("explicit small MaxIter overridden to %d", o.MaxIter)
	}
}

func TestOverrideAndInner(t *testing.T) {
	base := Options{Tol: 1e-8, MaxIter: 100, InnerTol: 1e-2, InnerIters: 25, Workers: 4}
	eff := base.Override(Options{Tol: 1e-4, InnerIters: 7})
	if eff.Tol != 1e-4 || eff.MaxIter != 100 || eff.InnerIters != 7 || eff.Workers != 4 {
		t.Fatalf("override merge wrong: %+v", eff)
	}
	in := eff.Inner()
	if in.Tol != 1e-2 || in.MaxIter != 7 || in.Workers != 4 {
		t.Fatalf("inner derivation wrong: %+v", in)
	}
}

func TestCancelledWrapping(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Cancelled(ctx.Err())
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("errors.Is(err, ErrCancelled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

func TestWorkspaceFrames(t *testing.T) {
	ws := NewWorkspace(8)
	a := ws.Take()
	mark := ws.Mark()
	b := ws.Take()
	c := ws.Take()
	if len(a) != 8 || len(b) != 8 || len(c) != 8 {
		t.Fatal("wrong vector length")
	}
	b[0] = 42
	ws.Release(mark)
	// The next Take after a release reuses the released slot.
	d := ws.Take()
	if &d[0] != &b[0] {
		t.Fatal("released slot not reused")
	}
	if ws.Mark() != 2 {
		t.Fatalf("mark %d after release+take, want 2", ws.Mark())
	}
}

func TestWorkspaceReleasePanics(t *testing.T) {
	ws := NewWorkspace(4)
	ws.Take()
	defer func() {
		if recover() == nil {
			t.Fatal("Release past used did not panic")
		}
	}()
	ws.Release(5)
}

func TestPoolDimMismatchPanics(t *testing.T) {
	p := NewPool(4)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-pool Put did not panic")
		}
	}()
	p.Put(NewWorkspace(8))
}

// TestPoolHammer drives the workspace pool from many goroutines under the
// race detector: every checkout must be exclusively owned while held.
func TestPoolHammer(t *testing.T) {
	const n = 64
	p := NewPool(n)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for it := 0; it < 200; it++ {
				ws := p.Get()
				mark := ws.Mark()
				v1 := ws.Take()
				v2 := ws.Take()
				for i := range v1 {
					v1[i] = float64(id)
					v2[i] = float64(it)
				}
				for i := range v1 {
					if v1[i] != float64(id) || v2[i] != float64(it) {
						panic("workspace shared between goroutines")
					}
				}
				ws.Release(mark)
				p.Put(ws)
			}
		}(g)
	}
	wg.Wait()
}
