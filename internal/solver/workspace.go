package solver

import (
	"fmt"
	"sync"
)

// Workspace is a bump allocator over scratch vectors of one fixed length.
// Solver layers Take vectors as they need them and Release back to a Mark
// when their frame ends, so nested solves (outer FCG -> preconditioner ->
// inner CG) reuse the same backing slots on every application instead of
// growing without bound.
//
// A Workspace is goroutine-confined: exactly one solve call tree may use it
// at a time. Check workspaces out of a Pool for concurrent use.
type Workspace struct {
	n    int
	vecs [][]float64
	used int
}

// NewWorkspace returns an empty workspace for vectors of length n. Backing
// storage is allocated lazily on first Take and retained for reuse.
func NewWorkspace(n int) *Workspace {
	return &Workspace{n: n}
}

// Dim returns the vector length this workspace serves.
func (w *Workspace) Dim() int { return w.n }

// Take returns the next scratch vector of length Dim. Contents are
// unspecified; callers must fully initialize before reading.
func (w *Workspace) Take() []float64 {
	if w.used == len(w.vecs) {
		w.vecs = append(w.vecs, make([]float64, w.n))
	}
	v := w.vecs[w.used]
	w.used++
	return v
}

// Mark records the current frame position for a later Release.
func (w *Workspace) Mark() int { return w.used }

// Release returns every vector taken since the given Mark. Released slices
// must no longer be referenced by the caller.
func (w *Workspace) Release(mark int) {
	if mark < 0 || mark > w.used {
		panic(fmt.Sprintf("solver: Release(%d) outside [0, %d]", mark, w.used))
	}
	w.used = mark
}

// Pool hands out Workspaces of one dimension. It is sync.Pool-backed, so
// checked-in workspaces are reused across solves (zero steady-state
// allocation on warm paths) but can be reclaimed by the garbage collector
// under memory pressure. Pools are safe for concurrent use; the Workspaces
// they return are not — one checkout, one goroutine.
type Pool struct {
	n int
	p sync.Pool
}

// NewPool returns a pool of workspaces for vectors of length n.
func NewPool(n int) *Pool {
	pl := &Pool{n: n}
	pl.p.New = func() any { return NewWorkspace(n) }
	return pl
}

// Dim returns the vector length this pool serves.
func (p *Pool) Dim() int { return p.n }

// Get checks a workspace out; pair with Put, typically via defer.
func (p *Pool) Get() *Workspace {
	return p.p.Get().(*Workspace)
}

// Put returns a workspace to the pool, releasing all frames. The caller
// must not use ws (or any slice taken from it) afterwards.
func (p *Pool) Put(ws *Workspace) {
	if ws == nil {
		return
	}
	if ws.n != p.n {
		panic(fmt.Sprintf("solver: workspace of dim %d returned to pool of dim %d", ws.n, p.n))
	}
	ws.used = 0
	p.p.Put(ws)
}
