package precond

import (
	"context"
	"math"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// TestSolveBlockMatchesSolve: every column of a blocked preconditioned
// solve must agree with an independent Solve of that column — the lockstep
// recurrences (outer flexible CG and the truncated blocked inner solves)
// are per-column independent, so the agreement is bit-for-bit.
func TestSolveBlockMatchesSolve(t *testing.T) {
	g, h := testPair(t, 10, 10)
	n := g.NumNodes()
	fact, err := Factorize(h, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gop := sparse.NewLapOperator(g)
	proj := &sparse.ProjectedOperator{Inner: gop}

	const w = 4
	rng := vecmath.NewRNG(3)
	bs := make([][]float64, w)
	xs := make([][]float64, w)
	for j := range bs {
		bs[j] = make([]float64, n)
		rng.FillNormal(bs[j])
		xs[j] = make([]float64, n)
	}
	out := make([]sparse.ColumnResult, w)
	inner, err := fact.SolveBlock(context.Background(), proj, xs, bs, out, nil, solver.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if inner == 0 {
		t.Fatal("blocked solve reported zero preconditioner applications")
	}

	for j := 0; j < w; j++ {
		if out[j].Err != nil || !out[j].Converged {
			t.Fatalf("column %d: %+v", j, out[j])
		}
		solo := make([]float64, n)
		res, err := fact.Solve(context.Background(), proj, solo, bs[j], solver.Options{Tol: 1e-8})
		if err != nil {
			t.Fatalf("column %d solo: %v", j, err)
		}
		if res.Outer.Iterations != out[j].Iterations {
			t.Errorf("column %d: %d blocked iterations vs %d solo", j, out[j].Iterations, res.Outer.Iterations)
		}
		for i := range solo {
			if math.Float64bits(solo[i]) != math.Float64bits(xs[j][i]) {
				t.Fatalf("column %d deviates from independent solve at entry %d: %g vs %g",
					j, i, xs[j][i], solo[i])
			}
		}
	}
}

// testPair builds a grid graph and a sparser preconditioning graph (the
// grid's spanning structure plus a few extra edges).
func testPair(t *testing.T, r, c int) (*graph.Graph, *graph.Graph) {
	t.Helper()
	g := graph.New(r*c, 2*r*c)
	h := graph.New(r*c, r*c+r)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
				// h keeps most of g: a close subgraph preconditions well, so
				// the blocked-vs-solo comparison exercises converging solves.
				if (i+j)%4 != 0 {
					h.AddEdge(id(i, j), id(i, j+1), 1)
				}
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
				h.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g, h
}
