package precond

import (
	"context"
	"fmt"
	"sync"

	"ingrass/internal/obs/trace"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// blockSolveState is the per-call mutable half of a blocked solve: the
// scratch workspace, the request context, and the header arenas and
// BlockScratch bookkeeping both nesting levels of a blocked solve need. It
// implements sparse.BlockPreconditioner — one truncated blocked Jacobi-PCG
// on L_H per application, traversing the sparsifier CSR once per inner
// iteration for the whole active column set. States are pooled on the
// Factorization and confined to one solve call tree while checked out.
type blockSolveState struct {
	f            *Factorization
	ws           *solver.Workspace
	ctx          context.Context
	inner        solver.Options
	applications int
	callerProj   sparse.ProjectedOperator

	outerSC  sparse.BlockScratch
	innerSC  sparse.BlockScratch
	outerRHS [][]float64 // header arena for the centered outer rhs block
	innerRHS [][]float64 // header arena for each preconditioner application
	innerDst [][]float64
	innerOut []sparse.ColumnResult

	// spans holds one outer-solve span per original column; inner-solve
	// children are attributed through the active-column mapping the outer
	// solver pushes via SetActiveColumns. traced gates the bookkeeping so
	// untraced blocks pay one boolean check per application.
	spans      [sparse.MaxBlockWidth]trace.Span
	activeCols [sparse.MaxBlockWidth]int
	activeN    int
	traced     bool
}

// headers returns arena resliced to m entries, reusing its backing storage.
func headers(arena *[][]float64, m int) [][]float64 {
	h := (*arena)[:0]
	for i := 0; i < m; i++ {
		h = append(h, nil)
	}
	*arena = h
	return h
}

// PrecondBlock computes dst[j] ~= L_H^+ src[j] (mean-centered) for the
// whole active column set by one truncated blocked Jacobi-PCG. Column j's
// arithmetic is bit-identical to the single-column solveState.Precond, so
// blocked and independent solves agree column-for-column; convergence
// failures of the truncated solve are expected and benign, exactly as in
// the single-vector path.
// SetActiveColumns records which original columns the next PrecondBlock
// application covers (sparse.ActiveColumnsAware).
func (st *blockSolveState) SetActiveColumns(cols []int) {
	if !st.traced {
		return
	}
	st.activeN = copy(st.activeCols[:], cols)
}

func (st *blockSolveState) PrecondBlock(dst, src [][]float64) {
	st.applications++
	var innerSpans [sparse.MaxBlockWidth]trace.Span
	m := len(src)
	if st.traced && st.activeN == m {
		for i := 0; i < m; i++ {
			innerSpans[i] = st.spans[st.activeCols[i]].StartChild(trace.SpanSolveInner)
		}
		defer func() {
			for i := 0; i < m; i++ {
				innerSpans[i].End()
			}
		}()
	}
	mark := st.ws.Mark()
	defer st.ws.Release(mark)
	rhs := headers(&st.innerRHS, m)
	for j := 0; j < m; j++ {
		rhs[j] = st.ws.Take()
		copy(rhs[j], src[j])
		vecmath.CenterMean(rhs[j])
		vecmath.Zero(dst[j])
	}
	if cap(st.innerOut) < m {
		st.innerOut = make([]sparse.ColumnResult, m)
	}
	_ = sparse.BlockCG(st.ctx, st.f.proj, sparse.BlockSpec{
		X: dst, B: rhs, Out: st.innerOut[:m],
	}, st.f.hop.Jacobi(), st.ws, &st.innerSC, st.inner)
	for j := 0; j < m; j++ {
		vecmath.CenterMean(dst[j])
	}
}

var _ sparse.BlockPreconditioner = (*blockSolveState)(nil)

// blockStatePool wraps sync.Pool with typed checkout for blocked states.
type blockStatePool struct {
	p sync.Pool
}

func (bp *blockStatePool) get() *blockSolveState { return bp.p.Get().(*blockSolveState) }
func (bp *blockStatePool) put(st *blockSolveState) {
	st.ctx = nil
	st.callerProj.Inner = nil
	st.spans = [sparse.MaxBlockWidth]trace.Span{}
	st.activeN = 0
	st.traced = false
	bp.p.Put(st)
}

// SolveBlock runs one blocked flexible-CG solve of sys x[j] = b[j] for up
// to sparse.MaxBlockWidth right-hand sides, preconditioned by truncated
// blocked inner solves of L_H: each outer iteration applies the system
// operator once to the whole block, and each preconditioner application
// runs one blocked inner solve — so the CSR structures of G and H are each
// traversed once per iteration for all columns, instead of once per column.
//
// Per-column semantics mirror Solve exactly: every b[j] is mean-centered
// internally, every solution written into x[j] is mean-zero, and column j's
// arithmetic is bit-identical to an independent Solve of that column (the
// lockstep recurrences are mathematically independent; see sparse.BlockCG).
// opts overrides the factorization defaults field-wise for the whole group
// — coalesced requests must share option sets, which the batch scheduler
// guarantees. colCtx optionally carries one context per column: a cancelled
// column is masked out of the block within one outer iteration and recorded
// in out, without disturbing the remaining columns; ctx cancels the whole
// group. out receives one ColumnResult per column; the returned int is the
// number of (blocked) preconditioner applications. The returned error is
// reserved for structural failures and whole-group cancellation.
//
// Safe for any number of concurrent callers; each call checks a private
// blocked solve state out of the factorization's pool, and the warm path
// allocates nothing.
func (f *Factorization) SolveBlock(ctx context.Context, sys sparse.Operator, xs, bs [][]float64, out []sparse.ColumnResult, colCtx []context.Context, opts solver.Options) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if sys.Dim() != f.n {
		return 0, fmt.Errorf("precond: system dim %d != sparsifier dim %d", sys.Dim(), f.n)
	}
	w := len(xs)
	if len(bs) != w || len(out) != w {
		return 0, fmt.Errorf("precond: SolveBlock widths xs=%d bs=%d out=%d", w, len(bs), len(out))
	}
	for j := 0; j < w; j++ {
		if len(xs[j]) != f.n || len(bs[j]) != f.n {
			return 0, fmt.Errorf("precond: SolveBlock column %d dims x=%d b=%d n=%d", j, len(xs[j]), len(bs[j]), f.n)
		}
	}
	eff := f.opts.Override(opts)

	st := f.bp.get()
	defer f.bp.put(st)
	st.ctx = ctx
	st.inner = eff.Inner()
	st.applications = 0
	st.traced = false
	st.activeN = 0
	for j := 0; j < w; j++ {
		c := ctx
		if colCtx != nil && colCtx[j] != nil {
			c = colCtx[j]
		}
		st.spans[j] = trace.FromContext(c).StartChild(trace.SpanSolveOuter)
		if st.spans[j].Tracing() {
			st.traced = true
		}
	}

	op, ok := sys.(*sparse.ProjectedOperator)
	if !ok {
		st.callerProj.Inner = sys
		op = &st.callerProj
	}

	mark := st.ws.Mark()
	defer st.ws.Release(mark)
	rhs := headers(&st.outerRHS, w)
	for j := 0; j < w; j++ {
		rhs[j] = st.ws.Take()
		copy(rhs[j], bs[j])
		vecmath.CenterMean(rhs[j])
		vecmath.Zero(xs[j])
	}
	err := sparse.BlockFlexibleCG(ctx, op, sparse.BlockSpec{
		X: xs, B: rhs, ColCtx: colCtx, Out: out,
	}, st, st.ws, &st.outerSC, eff)
	for j := 0; j < w; j++ {
		vecmath.CenterMean(xs[j])
		st.spans[j].SetAttr(trace.AttrIterations, int64(out[j].Iterations))
		st.spans[j].SetAttr(trace.AttrInnerUses, int64(st.applications))
		st.spans[j].End()
	}
	return st.applications, err
}
