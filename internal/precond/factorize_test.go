package precond

import (
	"math"
	"sync"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// ring builds a weighted cycle with a few chords: connected, well-conditioned.
func ring(n int) *graph.Graph {
	g := graph.New(n, 2*n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1+float64(i%3))
	}
	for i := 0; i < n; i += 5 {
		g.AddEdge(i, (i+n/2)%n, 0.5)
	}
	return g
}

func rhsFor(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	vecmath.CenterMean(b)
	return b
}

func TestFactorizeMatchesDirectPath(t *testing.T) {
	g := ring(60)
	h := g // self-preconditioning is fine for an equivalence check
	b := rhsFor(60)

	direct, err := New(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xDirect := make([]float64, 60)
	resDirect, err := direct.Solve(g, xDirect, b, &sparse.CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}

	fact, err := Factorize(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xFact := make([]float64, 60)
	resFact, err := fact.NewSolver().SolveSystem(sparse.NewLapOperator(g), xFact, b, &sparse.CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatalf("factorized solve: %v", err)
	}
	if !resDirect.Outer.Converged || !resFact.Outer.Converged {
		t.Fatalf("convergence: direct=%v fact=%v", resDirect.Outer.Converged, resFact.Outer.Converged)
	}
	for i := range xDirect {
		if math.Abs(xDirect[i]-xFact[i]) > 1e-6 {
			t.Fatalf("solutions diverge at %d: %v vs %v", i, xDirect[i], xFact[i])
		}
	}
}

// TestFactorizationConcurrentSolves shares one factorization across many
// goroutines, each with a private solver handle, under the race detector.
func TestFactorizationConcurrentSolves(t *testing.T) {
	g := ring(80)
	fact, err := Factorize(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gop := sparse.NewLapOperator(g)
	b := rhsFor(80)

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				x := make([]float64, 80)
				res, err := fact.NewSolver().SolveSystem(gop, x, b, &sparse.CGOptions{Tol: 1e-8})
				if err != nil || !res.Outer.Converged {
					t.Errorf("concurrent solve failed: %v (converged=%v)", err, res.Outer.Converged)
					return
				}
				if res.InnerUses <= 0 {
					t.Errorf("preconditioner was never applied")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestFactorizeEmpty(t *testing.T) {
	if _, err := Factorize(graph.New(0, 0), Options{}); err == nil {
		t.Fatal("want error for empty sparsifier")
	}
}
