package precond

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// ring builds a weighted cycle with a few chords: connected, well-conditioned.
func ring(n int) *graph.Graph {
	g := graph.New(n, 2*n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1+float64(i%3))
	}
	for i := 0; i < n; i += 5 {
		g.AddEdge(i, (i+n/2)%n, 0.5)
	}
	return g
}

func rhsFor(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	vecmath.CenterMean(b)
	return b
}

func TestSolveGraphMatchesSolve(t *testing.T) {
	g := ring(60)
	h := g // self-preconditioning is fine for an equivalence check
	b := rhsFor(60)

	fact, err := Factorize(h, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	xGraph := make([]float64, 60)
	resGraph, err := fact.SolveGraph(context.Background(), g, xGraph, b, solver.Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("graph solve: %v", err)
	}

	xOp := make([]float64, 60)
	resOp, err := fact.Solve(context.Background(), sparse.NewLapOperator(g), xOp, b, solver.Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("operator solve: %v", err)
	}
	if !resGraph.Outer.Converged || !resOp.Outer.Converged {
		t.Fatalf("convergence: graph=%v op=%v", resGraph.Outer.Converged, resOp.Outer.Converged)
	}
	for i := range xGraph {
		if math.Abs(xGraph[i]-xOp[i]) > 1e-6 {
			t.Fatalf("solutions diverge at %d: %v vs %v", i, xGraph[i], xOp[i])
		}
	}
}

// TestFactorizationConcurrentSolves shares one factorization across many
// goroutines under the race detector: each call checks out a private pooled
// solve state, so no two in-flight solves may share scratch.
func TestFactorizationConcurrentSolves(t *testing.T) {
	g := ring(80)
	fact, err := Factorize(g, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gop := sparse.NewLapOperator(g)
	b := rhsFor(80)

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				x := make([]float64, 80)
				res, err := fact.Solve(context.Background(), gop, x, b, solver.Options{Tol: 1e-8})
				if err != nil || !res.Outer.Converged {
					t.Errorf("concurrent solve failed: %v (converged=%v)", err, res.Outer.Converged)
					return
				}
				if res.InnerUses <= 0 {
					t.Errorf("preconditioner was never applied")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestFactorizeEmpty(t *testing.T) {
	if _, err := Factorize(graph.New(0, 0), solver.Options{}); err == nil {
		t.Fatal("want error for empty sparsifier")
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	fact, err := Factorize(ring(20), solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gop := sparse.NewLapOperator(ring(30))
	if _, err := fact.Solve(context.Background(), gop, make([]float64, 30), make([]float64, 30), solver.Options{}); err == nil {
		t.Fatal("want system-dimension error")
	}
	gop20 := sparse.NewLapOperator(ring(20))
	if _, err := fact.Solve(context.Background(), gop20, make([]float64, 5), make([]float64, 20), solver.Options{}); err == nil {
		t.Fatal("want vector-dimension error")
	}
}

// TestSolveCancelledContext verifies the acceptance contract: a solve
// issued with an already-cancelled context returns an ErrCancelled-matching
// error without running any outer iteration.
func TestSolveCancelledContext(t *testing.T) {
	g := ring(120)
	fact, err := Factorize(g, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gop := sparse.NewLapOperator(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, 120)
	res, err := fact.Solve(ctx, gop, x, rhsFor(120), solver.Options{})
	if !errors.Is(err, solver.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCancelled/context.Canceled, got %v", err)
	}
	if res.Outer.Iterations != 0 {
		t.Fatalf("cancelled solve ran %d iterations", res.Outer.Iterations)
	}
}
