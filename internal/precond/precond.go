// Package precond turns a spectral sparsifier into a preconditioner for
// Laplacian solves — the application that motivates the whole GRASS line:
// solving L_G x = b with conjugate gradients preconditioned by (inexact)
// solves of the much sparser L_H converges in O(sqrt(kappa(L_G, L_H)))
// outer iterations, and a good sparsifier keeps that kappa small while the
// inner solves stay cheap.
//
// The preconditioner runs a truncated Jacobi-PCG on the sparsifier per
// application, so it is mildly nonlinear; use it with sparse.FlexibleCG.
package precond

import (
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// Sparsifier is a Laplacian preconditioner backed by a sparsifier graph.
type Sparsifier struct {
	solver *sparse.LaplacianSolver
	// Applications counts preconditioner invocations.
	Applications int
}

// Options configures the inner (sparsifier) solve per application.
type Options struct {
	// InnerIters caps the inner PCG iterations per application. Small
	// values (10-40) are typical: the preconditioner only needs to capture
	// the sparsifier's action approximately. Default 25.
	InnerIters int
	// InnerTol is the inner relative-residual target. Default 1e-2 — the
	// outer FCG tolerates loose inner solves.
	InnerTol float64
	// Workers parallelizes the inner Laplacian products.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.InnerIters <= 0 {
		o.InnerIters = 25
	}
	if o.InnerTol <= 0 {
		o.InnerTol = 1e-2
	}
	return o
}

// New builds a preconditioner from the sparsifier h (which must span the
// node set of the system's graph and be connected).
func New(h *graph.Graph, opts Options) (*Sparsifier, error) {
	if h.NumNodes() == 0 {
		return nil, fmt.Errorf("precond: empty sparsifier")
	}
	o := opts.withDefaults()
	s := sparse.NewLaplacianSolver(h, &sparse.CGOptions{
		Tol:     o.InnerTol,
		MaxIter: o.InnerIters,
	}, o.Workers)
	return &Sparsifier{solver: s}, nil
}

// Apply computes dst ~= L_H^+ src (mean-centered). Convergence failures of
// the truncated inner solve are expected and benign: the partial iterate is
// still an SPD-like contraction that FlexibleCG accepts.
func (p *Sparsifier) Apply(dst, src []float64) {
	p.Applications++
	_, _ = p.solver.Solve(dst, src)
}

// SolveResult reports a preconditioned solve.
type SolveResult struct {
	Outer     sparse.CGResult
	InnerUses int
}

// Solve runs FlexibleCG on L_G x = b with this preconditioner. b is
// mean-centered internally (Laplacian systems are only consistent on the
// complement of ones); the solution is mean-zero.
func (p *Sparsifier) Solve(g *graph.Graph, x, b []float64, opts *sparse.CGOptions) (SolveResult, error) {
	return p.SolveSystem(sparse.NewLapOperator(g), x, b, opts)
}

// SolveSystem is Solve with a caller-provided frozen system operator,
// letting repeated solves against the same G skip the per-call CSR
// construction (the service layer caches one operator per snapshot
// generation).
func (p *Sparsifier) SolveSystem(sys sparse.Operator, x, b []float64, opts *sparse.CGOptions) (SolveResult, error) {
	op := &sparse.ProjectedOperator{Inner: sys}
	rhs := append([]float64(nil), b...)
	vecmath.CenterMean(rhs)
	vecmath.Zero(x)
	before := p.Applications
	res, err := sparse.FlexibleCG(op, x, rhs, func(dst, src []float64) {
		p.Apply(dst, src)
	}, opts)
	vecmath.CenterMean(x)
	return SolveResult{Outer: res, InnerUses: p.Applications - before}, err
}
