// Package precond turns a spectral sparsifier into a preconditioner for
// Laplacian solves — the application that motivates the whole GRASS line:
// solving L_G x = b with conjugate gradients preconditioned by (inexact)
// solves of the much sparser L_H converges in O(sqrt(kappa(L_G, L_H)))
// outer iterations, and a good sparsifier keeps that kappa small while the
// inner solves stay cheap.
//
// The preconditioner runs a truncated Jacobi-PCG on the sparsifier per
// application, so it is mildly nonlinear; the outer solve is
// sparse.FlexibleCG. Factorization is the shared, immutable half; each
// Solve call checks a pooled, goroutine-confined solve state (workspace +
// counters) out of the factorization, so the warm solve path allocates
// nothing.
package precond

import (
	"context"
	"sync"

	"ingrass/internal/obs/trace"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// SolveResult reports a preconditioned solve.
type SolveResult struct {
	Outer     sparse.CGResult
	InnerUses int
}

// solveState is the per-call mutable half of a solve: the scratch
// workspace, the request context, and the application counter. It
// implements sparse.Preconditioner (one truncated inner PCG on L_H per
// application). States are pooled on the Factorization and confined to one
// solve call tree while checked out.
type solveState struct {
	f            *Factorization
	ws           *solver.Workspace
	ctx          context.Context
	inner        solver.Options
	applications int
	// callerProj is a reusable projection wrapper for system operators
	// that arrive unprojected, avoiding a per-solve allocation.
	callerProj sparse.ProjectedOperator
	// span is the request's outer-solve span; each preconditioner
	// application records an inner-solve child under it. Inert (all span
	// operations no-op) when the request carries no trace.
	span trace.Span
}

// Precond computes dst ~= L_H^+ src (mean-centered) by a truncated inner
// Jacobi-PCG. Convergence failures of the truncated solve are expected and
// benign: the partial iterate is still an SPD-like contraction that the
// outer flexible CG accepts. A cancelled context makes the inner solve
// return immediately; the outer loop then observes the same context and
// aborts.
func (st *solveState) Precond(dst, src []float64) {
	st.applications++
	defer st.span.StartChild(trace.SpanSolveInner).End()
	mark := st.ws.Mark()
	defer st.ws.Release(mark)
	rhs := st.ws.Take()
	copy(rhs, src)
	vecmath.CenterMean(rhs)
	vecmath.Zero(dst)
	_, _ = sparse.CG(st.ctx, st.f.proj, dst, rhs, st.f.hop.Jacobi(), st.ws, st.inner)
	vecmath.CenterMean(dst)
}

var _ sparse.Preconditioner = (*solveState)(nil)

// statePool wraps sync.Pool with typed checkout.
type statePool struct {
	p sync.Pool
}

func (sp *statePool) get() *solveState { return sp.p.Get().(*solveState) }
func (sp *statePool) put(st *solveState) {
	st.ctx = nil
	st.callerProj.Inner = nil
	st.span = trace.Span{}
	sp.p.Put(st)
}
