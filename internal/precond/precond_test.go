package precond

import (
	"context"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	rng := vecmath.NewRNG(9)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), rng.Range(0.2, 5))
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), rng.Range(0.2, 5))
			}
		}
	}
	return g
}

func TestFactorizeErrors(t *testing.T) {
	if _, err := Factorize(graph.New(0, 0), solver.Options{}); err == nil {
		t.Fatal("expected empty-sparsifier error")
	}
}

func TestSolveCorrectness(t *testing.T) {
	g := grid(15, 15)
	init, err := grass.InitialSparsifier(g, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Factorize(init.H, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	b := make([]float64, n)
	vecmath.NewRNG(2).FillNormal(b)
	vecmath.CenterMean(b)
	x := make([]float64, n)
	res, err := p.SolveGraph(context.Background(), g, x, b, solver.Options{Tol: 1e-9, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outer.Converged {
		t.Fatalf("no convergence: %+v", res)
	}
	// Verify the residual directly.
	lx := make([]float64, n)
	g.LapMul(lx, x)
	vecmath.Sub(lx, lx, b)
	if vecmath.Norm2(lx) > 1e-7*vecmath.Norm2(b) {
		t.Fatalf("residual %v", vecmath.Norm2(lx))
	}
	if res.InnerUses == 0 {
		t.Fatal("preconditioner never used")
	}
}

func TestSparsifierPrecondBeatsJacobi(t *testing.T) {
	// On a heterogeneous grid, the sparsifier preconditioner should cut
	// outer iterations versus Jacobi alone — the whole point of spectral
	// sparsification.
	g := grid(25, 25)
	init, err := grass.InitialSparsifier(g, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	b := make([]float64, n)
	vecmath.NewRNG(3).FillNormal(b)
	vecmath.CenterMean(b)

	// Jacobi-PCG baseline.
	lop := sparse.NewLapOperator(g)
	proj := &sparse.ProjectedOperator{Inner: lop}
	xJ := make([]float64, n)
	resJ, err := sparse.CG(context.Background(), proj, xJ, b, lop.Jacobi(), nil,
		solver.Options{Tol: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}

	// Sparsifier-preconditioned FCG.
	p, err := Factorize(init.H, solver.Options{InnerIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	xS := make([]float64, n)
	resS, err := p.Solve(context.Background(), proj, xS, b, solver.Options{Tol: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if resS.Outer.Iterations >= resJ.Iterations {
		t.Fatalf("sparsifier precond did not reduce outer iterations: %d vs %d",
			resS.Outer.Iterations, resJ.Iterations)
	}
}

func TestFlexibleCGZeroRHS(t *testing.T) {
	g := grid(4, 4)
	op := &sparse.ProjectedOperator{Inner: sparse.NewLapOperator(g)}
	x := make([]float64, g.NumNodes())
	vecmath.Fill(x, 3)
	res, err := sparse.FlexibleCG(context.Background(), op, x, make([]float64, g.NumNodes()), nil, nil, solver.Options{})
	if err != nil || !res.Converged {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if vecmath.Norm2(x) != 0 {
		t.Fatal("zero rhs must give zero solution")
	}
}

func TestFlexibleCGMatchesCGUnpreconditioned(t *testing.T) {
	g := grid(8, 8)
	op := &sparse.ProjectedOperator{Inner: sparse.NewLapOperator(g)}
	n := g.NumNodes()
	b := make([]float64, n)
	vecmath.NewRNG(4).FillNormal(b)
	vecmath.CenterMean(b)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	r1, err1 := sparse.CG(context.Background(), op, x1, b, nil, nil, solver.Options{Tol: 1e-10})
	r2, err2 := sparse.FlexibleCG(context.Background(), op, x2, b, nil, nil, solver.Options{Tol: 1e-10})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if !r1.Converged || !r2.Converged {
		t.Fatal("both must converge")
	}
	// Same solution up to tolerance.
	for i := range x1 {
		if d := x1[i] - x2[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("solutions differ at %d", i)
		}
	}
}

func TestFlexibleCGDimensionError(t *testing.T) {
	g := grid(3, 3)
	op := sparse.NewLapOperator(g)
	if _, err := sparse.FlexibleCG(context.Background(), op, make([]float64, 2), make([]float64, 9), nil, nil, solver.Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}
