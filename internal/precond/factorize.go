package precond

import (
	"context"
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/obs/trace"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// Factorization is the reusable, immutable half of a sparsifier
// preconditioner: the frozen CSR view of H, its projected operator and
// Jacobi diagonal, and the engine-level solve defaults. Building it is the
// expensive part (O(N+E) CSR assembly); everything it holds is read-only
// afterwards, so one Factorization can back any number of concurrent
// solves. The service layer builds one per snapshot generation and keys its
// cache on that generation, which is how repeated solves against an
// unchanged graph skip re-factorization.
//
// Per-call mutable state (scratch workspace, counters) lives in a pooled
// solveState checked out for the duration of each Solve, so warm solves
// allocate nothing.
type Factorization struct {
	n    int
	hop  *sparse.LapOperator
	proj *sparse.ProjectedOperator
	opts solver.Options // defaults applied; Workers frozen here
	sp   statePool
	bp   blockStatePool // blocked solve states (SolveBlock)
}

// Factorize freezes the sparsifier h into a reusable preconditioner
// factorization. opts supplies the engine-level defaults every solve
// against this factorization starts from — in particular InnerTol /
// InnerIters for the truncated inner solve and Workers for parallel
// Laplacian application (frozen at factorize time; per-request Workers
// overrides are ignored on shared factorizations because the operator is
// shared across concurrent solves).
func Factorize(h *graph.Graph, opts solver.Options) (*Factorization, error) {
	if h.NumNodes() == 0 {
		return nil, fmt.Errorf("precond: empty sparsifier")
	}
	hop := sparse.NewLapOperator(h)
	hop.SetWorkers(opts.Workers)
	hop.SetFormat(opts.Format)
	f := &Factorization{
		n:    h.NumNodes(),
		hop:  hop,
		proj: &sparse.ProjectedOperator{Inner: hop},
		opts: opts.WithDefaults(h.NumNodes()),
	}
	f.sp.p.New = func() any {
		return &solveState{f: f, ws: solver.NewWorkspace(f.n)}
	}
	f.bp.p.New = func() any {
		return &blockSolveState{f: f, ws: solver.NewWorkspace(f.n)}
	}
	return f, nil
}

// Dim returns the node count of the factorized sparsifier.
func (f *Factorization) Dim() int { return f.n }

// Operator returns the frozen Laplacian operator of the factorized
// sparsifier. Callers may inspect its format/arena stats or install an
// SpMV observer before the factorization is shared; the operator itself is
// read-only.
func (f *Factorization) Operator() *sparse.LapOperator { return f.hop }

// Options returns the factorization's effective (defaults-applied) options.
func (f *Factorization) Options() solver.Options { return f.opts }

// Solve runs flexible CG on sys x = b preconditioned by truncated inner
// solves of L_H. b is mean-centered internally (Laplacian systems are only
// consistent on the complement of ones); the solution written into x is
// mean-zero. sys must have dimension Dim; if it is not already a
// *sparse.ProjectedOperator it is projected in place without allocating.
//
// opts overrides the factorization defaults field-wise for this request
// (Tol, MaxIter, InnerTol, InnerIters; Workers is frozen — see Factorize).
// ctx aborts the outer loop (and truncates the inner solve) within one
// iteration of cancellation, returning partial stats alongside a
// solver.ErrCancelled-wrapped error.
//
// Safe for any number of concurrent callers; each call checks a private
// solve state out of the factorization's pool.
func (f *Factorization) Solve(ctx context.Context, sys sparse.Operator, x, b []float64, opts solver.Options) (SolveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if sys.Dim() != f.n {
		return SolveResult{}, fmt.Errorf("precond: system dim %d != sparsifier dim %d", sys.Dim(), f.n)
	}
	if len(x) != f.n || len(b) != f.n {
		return SolveResult{}, fmt.Errorf("precond: Solve dims x=%d b=%d n=%d", len(x), len(b), f.n)
	}
	eff := f.opts.Override(opts)

	st := f.sp.get()
	defer f.sp.put(st)
	st.ctx = ctx
	st.inner = eff.Inner()
	st.applications = 0
	st.span = trace.FromContext(ctx).StartChild(trace.SpanSolveOuter)

	op, ok := sys.(*sparse.ProjectedOperator)
	if !ok {
		st.callerProj.Inner = sys
		op = &st.callerProj
	}

	mark := st.ws.Mark()
	defer st.ws.Release(mark)
	rhs := st.ws.Take()
	copy(rhs, b)
	vecmath.CenterMean(rhs)
	vecmath.Zero(x)
	res, err := sparse.FlexibleCG(ctx, op, x, rhs, st, st.ws, eff)
	vecmath.CenterMean(x)
	st.span.SetAttr(trace.AttrIterations, int64(res.Iterations))
	st.span.SetAttr(trace.AttrInnerUses, int64(st.applications))
	st.span.End()
	return SolveResult{Outer: res, InnerUses: st.applications}, err
}

// SolveGraph is Solve against a one-shot graph G: it freezes G's Laplacian
// operator per call (O(N+E)), so prefer Solve with a cached operator for
// repeated systems.
func (f *Factorization) SolveGraph(ctx context.Context, g *graph.Graph, x, b []float64, opts solver.Options) (SolveResult, error) {
	eff := f.opts.Override(opts)
	gop := sparse.NewLapOperator(g)
	gop.SetWorkers(eff.Workers)
	gop.SetFormat(eff.Format)
	return f.Solve(ctx, gop, x, b, opts)
}
