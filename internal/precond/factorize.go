package precond

import (
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/sparse"
)

// Factorization is the reusable, immutable half of a sparsifier
// preconditioner: the frozen CSR view of H and the solve configuration.
// Building it is the expensive part of precond.New (O(N+E) CSR assembly);
// everything it holds is read-only afterwards, so one Factorization can
// back any number of concurrent solves. The service layer builds one per
// snapshot generation and keys its cache on that generation, which is how
// repeated solves against an unchanged graph skip re-factorization.
type Factorization struct {
	n    int
	hop  *sparse.LapOperator
	opts Options
}

// Factorize freezes the sparsifier h into a reusable preconditioner
// factorization. opts mirrors New.
func Factorize(h *graph.Graph, opts Options) (*Factorization, error) {
	if h.NumNodes() == 0 {
		return nil, fmt.Errorf("precond: empty sparsifier")
	}
	hop := sparse.NewLapOperator(h)
	hop.Workers = opts.Workers
	return &Factorization{n: h.NumNodes(), hop: hop, opts: opts.withDefaults()}, nil
}

// Dim returns the node count of the factorized sparsifier.
func (f *Factorization) Dim() int { return f.n }

// NewSolver returns a goroutine-confined preconditioner handle over the
// shared factorization. It only allocates scratch vectors — no CSR pass —
// so per-solve instantiation costs O(N) allocation, not O(N+E) setup. The
// returned Sparsifier must not be shared across goroutines (it carries
// scratch state and counters); the Factorization itself may be.
func (f *Factorization) NewSolver() *Sparsifier {
	return &Sparsifier{
		solver: sparse.NewLaplacianSolverFromOperator(f.hop, &sparse.CGOptions{
			Tol:     f.opts.InnerTol,
			MaxIter: f.opts.InnerIters,
		}),
	}
}
