package service

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// TestStressConcurrentReadersLiveWriter is the acceptance stress test: 16
// concurrent readers issue solves, resistance queries, condition-number
// checks, and sparsifier exports while a writer streams insert and delete
// batches through the coalescing batcher. It must pass under -race.
//
// Snapshot isolation is checked with weight markers: every insert request
// carries markerEdges edges sharing one unique weight, so any snapshot must
// contain either all of a request's edges or none of them — a partial count
// means a reader observed a half-applied batch.
func TestStressConcurrentReadersLiveWriter(t *testing.T) {
	const (
		rows, cols  = 12, 12
		writes      = 120
		markerEdges = 4
		readers     = 16
	)
	e := newEngine(t, rows, cols, Options{MaxBatch: 32, FlushInterval: 200 * time.Microsecond})
	ctx := ctxT(t)
	n := rows * cols

	marker := func(i int) float64 { return 2 + float64(i)*1e-3 }

	writerDone := make(chan struct{})
	var writeFailures atomic.Int64
	var pendings []*Pending
	go func() {
		defer close(writerDone)
		rng := uint64(1)
		next := func(mod int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int(rng>>33) % mod
		}
		for i := 0; i < writes; i++ {
			edges := make([]graph.Edge, markerEdges)
			for k := range edges {
				u := next(n)
				v := (u + 1 + next(n-1)) % n
				edges[k] = graph.Edge{U: u, V: v, W: marker(i)}
			}
			p, err := e.AddAsync(edges)
			if err != nil {
				writeFailures.Add(1)
				continue
			}
			pendings = append(pendings, p)
			if i%10 == 9 {
				if _, err := p.Wait(ctx); err != nil {
					writeFailures.Add(1)
				}
			}
			time.Sleep(time.Millisecond) // pace the stream so reads interleave
			// Every sixth request, also delete a distinct original grid
			// edge (row i/6, horizontal), exercising the delete path and
			// bridge replacement against live readers.
			if i%6 == 0 {
				r := (i / 6) % rows
				c := (i / 6) % (cols - 1)
				dp, err := e.DeleteAsync([]graph.Edge{{U: r*cols + c, V: r*cols + c + 1}})
				if err != nil {
					writeFailures.Add(1)
				} else {
					pendings = append(pendings, dp)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	var readErrors atomic.Int64
	var isolationViolations atomic.Int64
	var solvesDone atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			b := make([]float64, n)
			for i := range b {
				b[i] = math.Sin(float64(id*31 + i))
			}
			vecmath.CenterMean(b)
			iter := 0
			for {
				// Run at least a few operations even if the writer finishes
				// quickly, then drain until it is done.
				if iter >= 8 {
					select {
					case <-writerDone:
						return
					default:
					}
				}
				iter++
				snap := e.Current()
				switch (id + iter) % 4 {
				case 0, 1:
					x, st, err := snap.Solve(context.Background(), b, solver.Options{Tol: 1e-6})
					if err != nil || !st.Converged || len(x) != n || st.Generation != snap.Gen {
						readErrors.Add(1)
						return
					}
					solvesDone.Add(1)
				case 2:
					u, v := (id*7+iter)%n, (id*13+iter*3)%n
					res, err := snap.EffectiveResistance(context.Background(), u, v)
					if err != nil || (u != v && !(res > 0)) || math.IsNaN(res) {
						readErrors.Add(1)
						return
					}
				case 3:
					// Export the sparsifier and audit snapshot isolation:
					// every marker weight must appear 0 or markerEdges times.
					h := snap.ExportSparsifier()
					if err := h.Validate(); err != nil {
						readErrors.Add(1)
						return
					}
					counts := make(map[float64]int)
					for _, edge := range snap.G.Edges() {
						if edge.W >= 2 {
							counts[edge.W]++
						}
					}
					for w, c := range counts {
						if c != markerEdges {
							t.Errorf("marker %v seen %d times in gen %d, want %d (half-applied batch visible)",
								w, c, snap.Gen, markerEdges)
							isolationViolations.Add(1)
							return
						}
					}
				}
				if id == 0 && iter%64 == 0 {
					if _, err := snap.ConditionNumber(context.Background(), 1); err != nil {
						readErrors.Add(1)
						return
					}
				}
			}
		}(r)
	}

	<-writerDone
	wg.Wait()
	if writeFailures.Load() != 0 {
		t.Fatalf("%d write enqueues failed", writeFailures.Load())
	}
	if readErrors.Load() != 0 {
		t.Fatalf("%d read operations failed", readErrors.Load())
	}
	if isolationViolations.Load() != 0 {
		t.Fatalf("%d snapshot-isolation violations", isolationViolations.Load())
	}
	for _, p := range pendings {
		if _, err := p.Wait(ctx); err != nil {
			t.Fatalf("write failed: %v", err)
		}
	}
	if err := e.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Final state: every insert request fully visible.
	final := e.Current()
	counts := make(map[float64]int)
	for _, edge := range final.G.Edges() {
		if edge.W >= 2 {
			counts[edge.W]++
		}
	}
	for i := 0; i < writes; i++ {
		if counts[marker(i)] != markerEdges {
			t.Fatalf("final state: marker %d has %d/%d edges", i, counts[marker(i)], markerEdges)
		}
	}

	st := e.Stats()
	if st.Flushes == 0 || st.Flushes >= st.WriteRequests {
		t.Fatalf("coalescing ineffective: %d flushes for %d requests", st.Flushes, st.WriteRequests)
	}
	// Factorizations are bounded by generations, not by solves: the cache
	// must have absorbed the overwhelming majority of solves.
	if st.PrecondBuilds > st.Generation+1 {
		t.Fatalf("%d factorizations for %d generations", st.PrecondBuilds, st.Generation)
	}
	if st.Solves > 0 && st.PrecondReuses == 0 {
		t.Fatalf("no preconditioner reuse across %d solves", st.Solves)
	}

	// Repeated solves on the now-quiescent generation must reuse a single
	// factorization (the acceptance criterion's cache assertion).
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	vecmath.CenterMean(b)
	before := e.Stats()
	const repeats = 10
	for i := 0; i < repeats; i++ {
		if _, _, err := final.Solve(context.Background(), b, solver.Options{Tol: 1e-8}); err != nil {
			t.Fatal(err)
		}
	}
	after := e.Stats()
	if builds := after.PrecondBuilds - before.PrecondBuilds; builds > 1 {
		t.Fatalf("%d factorizations for %d repeated solves on one generation", builds, repeats)
	}
	if reuses := after.PrecondReuses - before.PrecondReuses; reuses < repeats-1 {
		t.Fatalf("only %d/%d repeated solves reused the factorization", reuses, repeats)
	}
	t.Logf("stress: %d solves, %d flushes for %d requests, %d generations, %d builds / %d reuses",
		solvesDone.Load(), st.Flushes, st.WriteRequests, st.Generation, after.PrecondBuilds, after.PrecondReuses)
}
