package service

import (
	"errors"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/wal"
)

// replicaFromStore snapshots the primary's newest checkpoint into a fresh
// replica engine, the way a bootstrapping follower does.
func replicaFromStore(t *testing.T, store *wal.Store) *Engine {
	t.Helper()
	ck, err := store.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(ck, Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Close)
	return rep
}

// catchUp streams every record above the replica's generation from the
// primary's store into the replica.
func catchUp(t *testing.T, store *wal.Store, rep *Engine) {
	t.Helper()
	from := rep.Current().Gen
	if _, _, err := store.IterateFrom(from, func(_ uint64, payload []byte) error {
		rec, err := wal.DecodeRecord(payload)
		if err != nil {
			return err
		}
		return rep.ApplyRecord(rec)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaMirrorsPrimaryBitExactly is the replication acceptance
// property: a replica bootstrapped from a checkpoint and caught up through
// ApplyRecord holds bit-identical graph and sparsifier state to the primary
// at the same generation — the records replay through the same path
// recovery uses.
func TestReplicaMirrorsPrimaryBitExactly(t *testing.T) {
	e, store := newDurableEngine(t, 6, 6, Options{MaxBatch: 1}, t.TempDir(), wal.Options{Sync: wal.SyncNever})
	stream := makeStream(36, 30, 7)

	// First half, then a checkpoint the replica bootstraps from.
	for _, op := range stream[:15] {
		applyOp(t, e, op)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep := replicaFromStore(t, store)
	if got, want := rep.Current().Gen, e.Current().Gen; got != want {
		t.Fatalf("bootstrap generation %d, primary %d", got, want)
	}

	// Second half lands only in the primary's WAL; the replica catches up
	// record by record.
	for _, op := range stream[15:] {
		applyOp(t, e, op)
	}
	catchUp(t, store, rep)

	ps, rs := e.Current(), rep.Current()
	if ps.Gen != rs.Gen {
		t.Fatalf("generation diverged: primary %d, replica %d", ps.Gen, rs.Gen)
	}
	sameGraphBits(t, "G", ps.G, rs.G)
	sameGraphBits(t, "H", ps.H, rs.H)

	// Reads work on the replica; writes do not.
	if _, err := rep.Add(ctxT(t), []graph.Edge{{U: 0, V: 1, W: 1}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica Add: %v, want ErrReadOnly", err)
	}
	if _, err := rep.Delete(ctxT(t), []graph.Edge{{U: 0, V: 1}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica Delete: %v, want ErrReadOnly", err)
	}
}

func TestApplyRecordGuards(t *testing.T) {
	e, store := newDurableEngine(t, 4, 4, Options{MaxBatch: 1}, t.TempDir(), wal.Options{Sync: wal.SyncNever})
	for _, op := range makeStream(16, 5, 3) {
		applyOp(t, e, op)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep := replicaFromStore(t, store)
	gen := rep.Current().Gen

	// A gap is refused and applies nothing.
	gap := wal.BatchRecord{Gen: gen + 2, Adds: []graph.Edge{{U: 0, V: 1, W: 1}}}
	if err := rep.ApplyRecord(gap); !errors.Is(err, ErrGenerationGap) {
		t.Fatalf("gap record: %v, want ErrGenerationGap", err)
	}
	if rep.Current().Gen != gen {
		t.Fatalf("gap refusal still moved the generation to %d", rep.Current().Gen)
	}

	// A duplicate (at or below current) is silently skipped.
	dup := wal.BatchRecord{Gen: gen, Adds: []graph.Edge{{U: 0, V: 1, W: 99}}}
	if err := rep.ApplyRecord(dup); err != nil {
		t.Fatalf("duplicate record: %v", err)
	}
	if rep.Current().Gen != gen {
		t.Fatalf("duplicate moved the generation to %d", rep.Current().Gen)
	}

	// ApplyRecord against a writable engine is refused outright.
	if err := e.ApplyRecord(wal.BatchRecord{Gen: e.Current().Gen + 1}); err == nil {
		t.Fatal("ApplyRecord on a writable engine succeeded")
	}
}

func TestResetReplicaMonotonic(t *testing.T) {
	e, store := newDurableEngine(t, 4, 4, Options{MaxBatch: 1}, t.TempDir(), wal.Options{Sync: wal.SyncNever})
	for _, op := range makeStream(16, 8, 5) {
		applyOp(t, e, op)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep := replicaFromStore(t, store)
	ck, err := store.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Rebasing onto a checkpoint at (or below) the current generation would
	// let published generations retreat.
	if err := rep.ResetReplica(ck); !errors.Is(err, ErrGenerationGap) {
		t.Fatalf("ResetReplica onto same gen: %v, want ErrGenerationGap", err)
	}

	// Advance the primary past the replica and re-checkpoint: now the
	// rebase is the legitimate re-bootstrap path and must land on the new
	// generation with bit-identical state.
	for _, op := range makeStream(16, 6, 9) {
		applyOp(t, e, op)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ck2, err := store.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.ResetReplica(ck2); err != nil {
		t.Fatal(err)
	}
	ps, rs := e.Current(), rep.Current()
	if ps.Gen != rs.Gen {
		t.Fatalf("re-bootstrap generation %d, primary %d", rs.Gen, ps.Gen)
	}
	sameGraphBits(t, "G", ps.G, rs.G)
	sameGraphBits(t, "H", ps.H, rs.H)
}
