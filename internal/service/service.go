// Package service turns the single-threaded inGRASS sparsifier (internal/
// core) into a long-lived concurrent engine: many readers issue Laplacian
// solves, effective-resistance queries, condition-number checks, and
// sparsifier exports against immutable copy-on-write snapshots, while one
// writer goroutine drains a coalescing batcher that applies insert/delete
// requests in batches (flushed by edge count or time window), bumps the
// snapshot generation, and completes futures back to the callers.
//
// The concurrency architecture, in one paragraph: core.Sparsifier is the
// only mutable state and is touched exclusively by the batcher goroutine
// under Engine.mu. After each applied batch the engine takes O(1)
// copy-on-write snapshots of G and H (internal/graph.Snapshot) and
// publishes them through a registry; readers grab the current Snapshot and
// run entirely against it, so a read is isolated from every later write.
// The per-snapshot preconditioner factorization (internal/precond.
// Factorize) is built lazily once per generation and shared by all of that
// generation's solves — repeated solves on an unchanged graph skip the
// O(N+E) setup entirely, which the PrecondBuilds/PrecondReuses counters
// make observable.
//
// When Options.Store is set, the engine is durable: every applied batch is
// appended to the write-ahead log (internal/wal) *before* its generation is
// published to readers or its futures complete, Checkpoint persists the
// full state from O(1) copy-on-write snapshots without stalling writers,
// and Recover rebuilds an engine from checkpoint ⊕ WAL replay so a restart
// resumes at the exact pre-crash generation.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"sync"
	"sync/atomic"

	"ingrass/internal/batch"
	"ingrass/internal/core"
	"ingrass/internal/graph"
	"ingrass/internal/obs"
	"ingrass/internal/obs/trace"
	"ingrass/internal/solver"
	"ingrass/internal/wal"
)

// Options configures an Engine.
type Options struct {
	// MaxBatch flushes the write batch once it holds this many edges.
	// Default 128.
	MaxBatch int
	// FlushInterval flushes a non-empty batch after this much time even if
	// MaxBatch was not reached. Default 2ms.
	FlushInterval time.Duration
	// QueueCapacity bounds enqueued-but-unflushed write requests; further
	// writers block (backpressure). Default 1024.
	QueueCapacity int
	// Retain is how many recent snapshots stay addressable by generation.
	// Default 4.
	Retain int
	// Solver is the engine-level solve default set: it configures every
	// per-snapshot preconditioner factorization (inner tolerances, worker
	// counts) and is the base that per-request options override.
	Solver solver.Options
	// Store, when non-nil, makes the engine durable: each applied batch is
	// appended to the store's WAL before its generation is published. The
	// engine does not own the store; the caller closes it after Close.
	Store *wal.Store
	// InitialGeneration is the generation the engine starts serving at
	// (non-zero after recovery, so generation numbers stay aligned with the
	// checkpoint and WAL records on disk).
	InitialGeneration uint64
	// Batch configures the batched query engine: the scheduler that
	// coalesces concurrent same-generation solve and resistance requests
	// into blocked multi-RHS executions (window, block size, admission
	// queue, executor workers).
	Batch batch.Options
	// Obs, when non-nil, is the metrics registry the engine exposes itself
	// through: the atomic counters are bridged as CounterFunc/GaugeFunc
	// reads and the solve-latency / iteration / block-fill histograms are
	// created in it (see metrics.go). Nil disables exposition; the hot
	// paths still record through nil-safe histogram handles at the cost of
	// a few predicted branches.
	Obs *obs.Registry
	// Maintenance configures the closed-loop maintenance controller
	// (maintenance.go). The zero value leaves the controller off; manual
	// Resparsify calls still work.
	Maintenance MaintenanceOptions
	// ReadOnly builds a replica engine (see replica.go): no batcher
	// goroutine, no maintenance loop, and every write path returns
	// ErrReadOnly. State advances only through ApplyRecord, which replays
	// primary WAL records through the bit-exact recovery code path.
	ReadOnly bool
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 128
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 1024
	}
	if o.Retain <= 0 {
		o.Retain = 4
	}
	o.Maintenance = o.Maintenance.withDefaults()
	return o
}

// Engine is the concurrent sparsifier service around one core.Sparsifier.
// Create it with New, write through Add/Delete (or their Async variants),
// read through Current()/At() snapshots, and Close it when done.
type Engine struct {
	opts  Options
	sp    *core.Sparsifier
	mu    sync.Mutex // guards sp and snapshot publication
	reg   *Registry
	stats Stats
	sched *batch.Scheduler[*Snapshot]

	// Durability state. walBroken flips on the first failed WAL append and
	// stays set — a log with a gap must not accept later records, or replay
	// would reconstruct the wrong graph — until a successful Checkpoint
	// captures the full state and thereby covers the gap. It is read by the
	// batcher under mu and cleared by Checkpoint under mu.
	walBroken atomic.Bool
	// ckptMu serializes checkpoints (the encode + file write can be long;
	// two interleaved checkpoints would just waste I/O).
	ckptMu sync.Mutex

	// Maintenance state: maintFlight is the single-rebuild-in-flight latch,
	// maintMon the controller's cross-evaluation memory, and churnBase /
	// basisEdges anchor the churn trigger at the current setup basis.
	maintFlight atomic.Bool
	maintMon    maintMonitor
	churnBase   atomic.Uint64
	basisEdges  atomic.Uint64

	reqs chan *request
	quit chan struct{}
	wg   sync.WaitGroup
	// sendMu serializes enqueues against Close: Close takes the write side
	// once, after which no request can slip into the channel behind the
	// batcher's final drain and strand its future.
	sendMu sync.RWMutex
	closed atomic.Bool
}

// Durability errors.
var (
	// ErrNotDurable accompanies an otherwise-successful write whose WAL
	// append failed: the write IS applied and visible to readers, but it
	// would not survive a crash until the next successful Checkpoint. It is
	// returned alongside a valid WriteResult.
	ErrNotDurable = errors.New("service: write applied but not durable (WAL append failed)")
	// ErrNoStore reports a durability operation on an engine that was
	// built without a wal.Store.
	ErrNoStore = errors.New("service: engine has no durable store")
)

// errNotDurableWrap tags a WAL append failure with the ErrNotDurable class.
func errNotDurableWrap(err error) error {
	return fmt.Errorf("%w: %v", ErrNotDurable, err)
}

// New wraps an already-set-up sparsifier in an engine and publishes the
// generation-0 snapshot. The engine takes ownership of sp: the caller must
// not touch it (or its graphs) afterwards.
func New(sp *core.Sparsifier, opts Options) *Engine {
	e := &Engine{
		opts: opts.withDefaults(),
		sp:   sp,
		quit: make(chan struct{}),
	}
	e.reqs = make(chan *request, e.opts.QueueCapacity)
	e.reg = NewRegistry(e.opts.Retain)
	e.stats.generation.Store(e.opts.InitialGeneration)
	e.stats.lastCheckpoint.Store(e.opts.InitialGeneration)
	e.reg.Publish(newSnapshot(e.opts.InitialGeneration, sp.G.Snapshot(), sp.H.Snapshot(), &e.stats, e.opts.Solver))
	if e.opts.Obs != nil {
		// Histograms first: the block-fill hook rides in Batch options, which
		// batch.New copies by value. The counter bridges come after the
		// scheduler exists because they sample it.
		e.initHistograms(e.opts.Obs)
	}
	e.sched = batch.New(e.opts.Batch, e.execGroup)
	if e.opts.Obs != nil {
		e.registerBridges(e.opts.Obs)
	}
	// Anchor the maintenance signals at the initial basis.
	e.basisEdges.Store(uint64(sp.H.NumEdges()))
	e.stats.maintTargetCond.Store(math.Float64bits(sp.Config().TargetCond))
	e.stats.maintState.Store(int32(e.idleMaintState()))
	if !e.opts.ReadOnly {
		e.wg.Add(1)
		go e.run()
		if e.opts.Maintenance.Enabled {
			e.wg.Add(1)
			go e.maintLoop()
		}
	}
	return e
}

// Recover rebuilds an engine from a durable store: it loads the newest
// checkpoint, replays the WAL records past it through the sparsifier
// (identical code path to the original applications, so the reconstruction
// is bit-exact), and starts the engine at the recovered generation with the
// store attached for further logging. The caller still owns the store.
func Recover(store *wal.Store, opts Options) (*Engine, error) {
	sp, gen, err := store.RestoreState()
	if err != nil {
		return nil, err
	}
	opts.Store = store
	opts.InitialGeneration = gen
	return New(sp, opts), nil
}

// Checkpoint persists the engine's full current state to the store and
// prunes the WAL records it covers. The state capture is O(1) copy-on-write
// snapshots taken under the write lock — writers never wait on the
// encoding or the disk. A successful checkpoint also repairs a degraded
// WAL (see ErrNotDurable): once the full state is on disk, the unlogged
// suffix is covered and appending may resume.
func (e *Engine) Checkpoint() (uint64, error) {
	if e.opts.Store == nil {
		return 0, ErrNoStore
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()

	e.mu.Lock()
	gen := e.stats.generation.Load()
	state := e.sp.PersistentState()
	e.mu.Unlock()

	if err := e.opts.Store.WriteCheckpoint(wal.Checkpoint{Gen: gen, State: state}); err != nil {
		return gen, err
	}
	// Heal a degraded WAL only if nothing was applied since the capture:
	// a batch applied while the checkpoint file was being written is not in
	// the checkpoint and (being unlogged while broken) not in the WAL, so
	// the gap would persist. The next checkpoint gets it.
	e.mu.Lock()
	if e.stats.generation.Load() == gen {
		e.walBroken.Store(false)
	}
	e.mu.Unlock()
	e.stats.checkpoints.Add(1)
	e.stats.lastCheckpoint.Store(gen)
	return gen, nil
}

// nodeCount reads the (append-only) node count for static validation.
func (e *Engine) nodeCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sp.G.NumNodes()
}

// Current returns the latest published snapshot.
func (e *Engine) Current() *Snapshot { return e.reg.Current() }

// At returns a retained snapshot by generation.
func (e *Engine) At(gen uint64) (*Snapshot, bool) { return e.reg.At(gen) }

// Generations lists the retained snapshot generations, oldest first.
func (e *Engine) Generations() []uint64 { return e.reg.Generations() }

// Stats returns a copy of the engine counters, including the batched query
// engine's scheduler counters.
func (e *Engine) Stats() StatsView {
	v := e.stats.View()
	bv := e.sched.Stats()
	v.BatchesFormed = bv.BatchesFormed
	v.RequestsCoalesced = bv.RequestsCoalesced
	v.AvgBlockFill = bv.AvgBlockFill()
	v.BatchQueueDepth = bv.QueueDepth
	return v
}

// CoreStats returns the underlying sparsifier's cumulative update counters.
func (e *Engine) CoreStats() core.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sp.Stats()
}

func (e *Engine) enqueue(kind opKind, edges []graph.Edge, span trace.Span) (*Pending, error) {
	if e.opts.ReadOnly {
		return nil, ErrReadOnly
	}
	e.sendMu.RLock()
	defer e.sendMu.RUnlock()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	r := &request{kind: kind, edges: edges, p: newPending(), span: span}
	e.stats.writeRequests.Add(1)
	e.stats.queueDepth.Add(1)
	select {
	case e.reqs <- r:
		return r.p, nil
	case <-e.quit:
		e.stats.queueDepth.Add(-1)
		return nil, ErrClosed
	}
}

// AddAsync enqueues an insertion request and returns its future. The edge
// slice is captured; the caller must not reuse it.
func (e *Engine) AddAsync(edges []graph.Edge) (*Pending, error) {
	if err := validateAdds(edges, e.nodeCount()); err != nil {
		return nil, err
	}
	return e.enqueue(opAdd, edges, trace.Span{})
}

// DeleteAsync enqueues a deletion request (edges identified by endpoints).
func (e *Engine) DeleteAsync(edges []graph.Edge) (*Pending, error) {
	if len(edges) == 0 {
		return nil, errEmptyBatch
	}
	return e.enqueue(opDelete, edges, trace.Span{})
}

// Add enqueues an insertion and waits for its flush. A span carried by ctx
// rides into the batcher so the flush can attribute WAL append/fsync spans
// to the request's trace.
func (e *Engine) Add(ctx context.Context, edges []graph.Edge) (WriteResult, error) {
	if err := validateAdds(edges, e.nodeCount()); err != nil {
		return WriteResult{}, err
	}
	p, err := e.enqueue(opAdd, edges, trace.FromContext(ctx))
	if err != nil {
		return WriteResult{}, err
	}
	return p.Wait(ctx)
}

// Delete enqueues a deletion and waits for its flush.
func (e *Engine) Delete(ctx context.Context, edges []graph.Edge) (WriteResult, error) {
	if len(edges) == 0 {
		return WriteResult{}, errEmptyBatch
	}
	p, err := e.enqueue(opDelete, edges, trace.FromContext(ctx))
	if err != nil {
		return WriteResult{}, err
	}
	return p.Wait(ctx)
}

// Flush enqueues a barrier and waits until every write enqueued before it
// has been applied and published.
func (e *Engine) Flush(ctx context.Context) error {
	p, err := e.enqueue(opBarrier, nil, trace.Span{})
	if err != nil {
		return err
	}
	_, err = p.Wait(ctx)
	return err
}

// Close stops the batcher after flushing already-enqueued writes. Further
// writes fail with ErrClosed; reads against existing snapshots keep
// working.
func (e *Engine) Close() {
	e.sendMu.Lock()
	already := e.closed.Swap(true)
	e.sendMu.Unlock()
	if already {
		return
	}
	close(e.quit)
	e.wg.Wait()
	e.sched.Close()
}
