package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"ingrass/internal/cond"
	"ingrass/internal/core"
	"ingrass/internal/solver"
	"ingrass/internal/wal"
)

// Closed-loop sparsifier maintenance: the subsystem that acts on the
// engine's own health signals. A controller evaluates three degradation
// signals per tick — the mean outer CG iteration count of recent solves
// (from the same counters the solve histograms feed), a periodic
// warm-started cond.Estimate of kappa(L_G, L_H), and the edge churn applied
// since the current setup basis was built — and when a knob trips it
// schedules a background re-sparsification: core.BuildSetup runs on an O(1)
// copy-on-write snapshot of H with no engine lock held, and the finished
// basis is handed to the single writer goroutine, which adopts it in
// O(edges admitted during the build), bumps the generation, logs a
// maintenance WAL record before publication (the same WAL-before-publish
// contract write batches honor), and publishes the new snapshot.
//
// The trigger state machine: Idle → Rebuilding (offline build in progress)
// → Swapping (basis queued behind the writer) → Cooldown (suppressing
// re-triggers for CooldownTicks evaluations) → Idle. Manual Resparsify
// calls run the same Rebuilding/Swapping path without touching cooldown.

// ErrRebuildInProgress reports a re-sparsification request while another
// rebuild is already running; at most one basis build is in flight per
// engine.
var ErrRebuildInProgress = errors.New("service: re-sparsification already in progress")

// MaintReason classifies what tripped a rebuild.
type MaintReason int

const (
	// MaintNone: no trigger fired.
	MaintNone MaintReason = iota
	// MaintReasonIters: recent mean solve iterations exceeded IterTarget.
	MaintReasonIters
	// MaintReasonCond: the periodic kappa estimate exceeded CondThreshold.
	MaintReasonCond
	// MaintReasonChurn: edges applied since the basis exceeded
	// ChurnFactor × basis edges.
	MaintReasonChurn
	// MaintReasonManual: an explicit Resparsify call.
	MaintReasonManual
)

// String renders the reason in the metrics label vocabulary.
func (r MaintReason) String() string {
	switch r {
	case MaintNone:
		return "none"
	case MaintReasonIters:
		return "iterations"
	case MaintReasonCond:
		return "cond"
	case MaintReasonChurn:
		return "churn"
	case MaintReasonManual:
		return "manual"
	default:
		return "unknown"
	}
}

// MaintState is the controller's observable state.
type MaintState int32

const (
	// MaintDisabled: the engine runs no maintenance controller.
	MaintDisabled MaintState = iota
	// MaintIdle: monitoring, no trigger active.
	MaintIdle
	// MaintRebuilding: an offline basis build is running on a snapshot.
	MaintRebuilding
	// MaintSwapping: a finished basis is queued behind the writer.
	MaintSwapping
	// MaintCooldown: a swap landed recently; triggers are suppressed.
	MaintCooldown
)

// String renders the state for /stats.
func (s MaintState) String() string {
	switch s {
	case MaintDisabled:
		return "disabled"
	case MaintIdle:
		return "idle"
	case MaintRebuilding:
		return "rebuilding"
	case MaintSwapping:
		return "swapping"
	case MaintCooldown:
		return "cooldown"
	default:
		return "unknown"
	}
}

// MaintHooks are deterministic test seams into the maintenance pipeline.
// Production engines leave them zero.
type MaintHooks struct {
	// AfterBuild runs after the offline basis build completes, before the
	// swap is enqueued — the window where the writer-stall regression test
	// parks a rebuild to prove writes flow freely around it.
	AfterBuild func()
	// BeforeLog runs on the writer goroutine after the basis is adopted but
	// before the maintenance WAL record is appended. A non-nil return
	// simulates a crash in that window: the swap is neither logged nor
	// published, and the WAL flips to its sticky degraded mode (the
	// in-memory state has diverged from what the log describes, so later
	// appends would be replayed against the wrong basis).
	BeforeLog func() error
	// OnReport receives every controller health evaluation (ticker loop
	// only; direct HealthCheck callers get the report as a return value).
	OnReport func(MaintReport, error)
}

// MaintenanceOptions configures the closed-loop controller.
type MaintenanceOptions struct {
	// Enabled starts the controller goroutine.
	Enabled bool
	// Interval is the health-evaluation cadence. Default 2s.
	Interval time.Duration
	// IterTarget is the mean outer CG iterations per solve the loop steers
	// toward: evaluations whose recent mean exceeds it trigger a rebuild,
	// and DensityTune adjusts the filter threshold against it. 0 disables
	// the iteration trigger (and tuning).
	IterTarget float64
	// MinSolves is the fewest solves an evaluation window needs before its
	// iteration mean is trusted. Default 8.
	MinSolves int
	// CondThreshold triggers a rebuild when the periodic kappa estimate
	// exceeds it. 0 disables condition-number checks entirely.
	CondThreshold float64
	// CondEvery runs the kappa estimate every Nth evaluation (it costs a
	// few preconditioned solves). Default 4.
	CondEvery int
	// CondIters bounds the power iterations per estimate; the warm start
	// from the previous estimate's vector makes a small budget accurate.
	// Default 12.
	CondIters int
	// CondSeed seeds the first (cold) estimate.
	CondSeed uint64
	// ChurnFactor triggers a rebuild once the edges applied since the
	// current basis reach ChurnFactor × (basis sparsifier edges). 0
	// disables the churn trigger.
	ChurnFactor float64
	// CooldownTicks suppresses new triggers for this many evaluations after
	// a swap, letting the signals re-baseline. Default 5. Measured in
	// ticks, not wall time, so injected-tick tests stay deterministic.
	CooldownTicks int
	// DensityTune retunes the basis TargetCond at each rebuild so the
	// filter threshold tracks IterTarget: iterating hot → lower TargetCond
	// (denser sparsifier), comfortably under target → higher (sparser).
	DensityTune bool
	// TargetCondMin and TargetCondMax clamp the tuned TargetCond.
	// Defaults 10 and 1000.
	TargetCondMin, TargetCondMax float64
	// RetainAfterSwap, when positive, trims the snapshot registry to the
	// newest N generations right after a swap publishes — the GC pressure
	// policy: pre-swap factorizations are built on a superseded basis, and
	// trimming drops the registry's references so their arena reservations
	// and workspace pools free as soon as readers drain. 0 keeps the
	// engine's normal Retain behavior.
	RetainAfterSwap int
	// Ticks, when non-nil, replaces the wall-clock ticker — the
	// deterministic clock injection used by controller tests. Closing the
	// channel stops the controller.
	Ticks <-chan time.Time
	// Hooks are the test seams above.
	Hooks MaintHooks
}

func (m MaintenanceOptions) withDefaults() MaintenanceOptions {
	if m.Interval <= 0 {
		m.Interval = 2 * time.Second
	}
	if m.MinSolves <= 0 {
		m.MinSolves = 8
	}
	if m.CondEvery <= 0 {
		m.CondEvery = 4
	}
	if m.CondIters <= 0 {
		m.CondIters = 12
	}
	if m.CooldownTicks <= 0 {
		m.CooldownTicks = 5
	}
	if m.TargetCondMin <= 0 {
		m.TargetCondMin = 10
	}
	if m.TargetCondMax <= 0 {
		m.TargetCondMax = 1000
	}
	return m
}

// MaintReport is the outcome of one health evaluation.
type MaintReport struct {
	// Reason is the trigger that fired (MaintNone if the engine is healthy).
	Reason MaintReason
	// Triggered reports that a rebuild ran and swapped successfully.
	Triggered bool
	// Suppressed reports a fired trigger that was not acted on (cooldown
	// window, or a rebuild already in flight).
	Suppressed bool
	// Generation is the post-swap generation when Triggered.
	Generation uint64
	// IterMean is the window's mean outer iterations per solve (0 when the
	// window held no solves).
	IterMean float64
	// Kappa is the condition estimate when this evaluation measured one.
	Kappa float64
	// Churn is the edges applied since the current basis.
	Churn uint64
}

// maintMonitor is the controller's cross-evaluation memory.
type maintMonitor struct {
	mu         sync.Mutex
	lastSolves uint64
	lastIters  uint64
	sinceCond  int
	cooldown   int
	condVec    []float64 // warm start for the next kappa estimate
}

// healthSample is one evaluation's inputs, separated from the engine so the
// trigger policy is a pure, table-testable function.
type healthSample struct {
	Solves     uint64  // solves completed in the window
	Iters      uint64  // their summed outer iterations
	Churn      uint64  // edges applied since the current basis
	BasisEdges int     // sparsifier edges when the basis was built
	Kappa      float64 // condition estimate, 0 if not measured this tick
}

// evaluate applies the trigger policy to one sample, returning the fired
// reason (MaintNone if healthy) and the window's iteration mean. Signal
// precedence is iterations > cond > churn: the iteration count is the
// user-visible cost the loop exists to bound, kappa is its leading
// indicator, and churn is the model-free backstop.
func (m MaintenanceOptions) evaluate(s healthSample) (MaintReason, float64) {
	var mean float64
	if s.Solves > 0 {
		mean = float64(s.Iters) / float64(s.Solves)
	}
	if m.IterTarget > 0 && s.Solves >= uint64(m.MinSolves) && mean > m.IterTarget {
		return MaintReasonIters, mean
	}
	if m.CondThreshold > 0 && s.Kappa > m.CondThreshold {
		return MaintReasonCond, mean
	}
	if m.ChurnFactor > 0 && s.BasisEdges > 0 && float64(s.Churn) >= m.ChurnFactor*float64(s.BasisEdges) {
		return MaintReasonChurn, mean
	}
	return MaintNone, mean
}

// tuneTargetCond moves the filter threshold toward the iteration target:
// the next basis's TargetCond is the current one divided by the (clamped)
// ratio of observed mean iterations to the target. Running hot shrinks
// TargetCond — a deeper filter level, denser sparsifier, cheaper solves;
// running cool grows it — sparser H, cheaper updates. The per-rebuild
// adjustment is capped at 2× in either direction so one noisy window
// cannot slam the knob, and the result is clamped to [lo, hi].
func tuneTargetCond(cur, mean, target, lo, hi float64) float64 {
	if mean <= 0 || target <= 0 {
		return cur
	}
	ratio := mean / target
	if ratio > 2 {
		ratio = 2
	} else if ratio < 0.5 {
		ratio = 0.5
	}
	next := cur / ratio
	if next < lo {
		next = lo
	}
	if next > hi {
		next = hi
	}
	return next
}

// maintLoop is the controller goroutine: one health evaluation per tick
// until the engine closes (or an injected tick channel closes).
func (e *Engine) maintLoop() {
	defer e.wg.Done()
	m := e.opts.Maintenance
	tickC := m.Ticks
	if tickC == nil {
		t := time.NewTicker(m.Interval)
		defer t.Stop()
		tickC = t.C
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-e.quit
		cancel()
	}()
	for {
		select {
		case <-e.quit:
			return
		case _, ok := <-tickC:
			if !ok {
				return
			}
		}
		rep, err := e.HealthCheck(ctx)
		if h := m.Hooks.OnReport; h != nil {
			h(rep, err)
		}
	}
}

// HealthCheck runs one maintenance evaluation synchronously: sample the
// health signals, and if a trigger fires outside the cooldown window, run
// the full background rebuild + swap before returning. It is exactly what
// a controller tick executes; tests drive it directly for determinism. The
// returned error reports a failed kappa estimate or a failed rebuild —
// both leave the engine serving its current state.
func (e *Engine) HealthCheck(ctx context.Context) (MaintReport, error) {
	m := e.opts.Maintenance
	mon := &e.maintMon
	mon.mu.Lock()
	solves := e.stats.solves.Load()
	iters := e.stats.solveIters.Load()
	sample := healthSample{
		Solves:     solves - mon.lastSolves,
		Iters:      iters - mon.lastIters,
		Churn:      e.stats.flushedAdds.Load() + e.stats.flushedDeletes.Load() - e.churnBase.Load(),
		BasisEdges: int(e.basisEdges.Load()),
	}
	mon.lastSolves, mon.lastIters = solves, iters

	var condErr error
	if m.CondThreshold > 0 {
		mon.sinceCond++
		if mon.sinceCond >= m.CondEvery {
			mon.sinceCond = 0
			snap := e.Current()
			e.stats.condQueries.Add(1)
			res, err := cond.Estimate(ctx, snap.G, snap.H, cond.Options{
				MaxIters:      m.CondIters,
				Seed:          m.CondSeed,
				LambdaMaxOnly: true,
				StartVector:   mon.condVec,
				Solver:        solver.Options{Workers: e.opts.Solver.Workers},
			})
			if err != nil {
				condErr = err
			} else {
				sample.Kappa = res.Kappa
				mon.condVec = res.Vector
				e.stats.maintKappa.Store(math.Float64bits(res.Kappa))
			}
		}
	}

	reason, mean := m.evaluate(sample)
	if sample.Solves > 0 {
		e.stats.maintIterTrend.Store(math.Float64bits(mean))
	}
	rep := MaintReport{Reason: reason, IterMean: mean, Kappa: sample.Kappa, Churn: sample.Churn}
	cooling := mon.cooldown > 0
	if cooling {
		mon.cooldown--
		if mon.cooldown == 0 {
			e.stats.maintState.CompareAndSwap(int32(MaintCooldown), int32(MaintIdle))
		}
	}
	mon.mu.Unlock()

	if reason == MaintNone {
		return rep, condErr
	}
	if cooling {
		rep.Suppressed = true
		return rep, condErr
	}
	gen, err := e.resparsify(ctx, reason)
	if err != nil {
		if errors.Is(err, ErrRebuildInProgress) {
			rep.Suppressed = true
			return rep, condErr
		}
		return rep, err
	}
	rep.Triggered = true
	rep.Generation = gen
	mon.mu.Lock()
	mon.cooldown = m.CooldownTicks
	mon.mu.Unlock()
	e.stats.maintState.CompareAndSwap(int32(MaintIdle), int32(MaintCooldown))
	return rep, nil
}

// Resparsify forces a background re-sparsification: rebuild the setup
// basis (LRD decomposition + sketch) from a COW snapshot of the current
// sparsifier and swap it in as a new generation. The build runs on the
// calling goroutine without any engine lock; only the O(delta) adoption
// runs on the writer. Returns the generation that published the swap.
// At most one rebuild runs at a time (ErrRebuildInProgress otherwise).
func (e *Engine) Resparsify(ctx context.Context) (uint64, error) {
	return e.resparsify(ctx, MaintReasonManual)
}

func (e *Engine) resparsify(ctx context.Context, reason MaintReason) (uint64, error) {
	if e.opts.ReadOnly {
		return 0, ErrReadOnly
	}
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if !e.maintFlight.CompareAndSwap(false, true) {
		return 0, ErrRebuildInProgress
	}
	defer e.maintFlight.Store(false)
	e.stats.noteMaintTrigger(reason)
	e.stats.maintState.Store(int32(MaintRebuilding))
	defer func() {
		// Cooldown (if any) is installed by HealthCheck after this returns.
		e.stats.maintState.Store(int32(e.idleMaintState()))
	}()

	// The rebuild inputs are O(1) COW captures; the writer is blocked only
	// for the two snapshot headers, never for the build.
	e.mu.Lock()
	hSnap := e.sp.H.Snapshot()
	cfg := e.sp.Config()
	e.mu.Unlock()

	if e.opts.Maintenance.DensityTune {
		m := e.opts.Maintenance
		mean := math.Float64frombits(e.stats.maintIterTrend.Load())
		cfg.TargetCond = tuneTargetCond(cfg.TargetCond, mean, m.IterTarget, m.TargetCondMin, m.TargetCondMax)
	}

	start := time.Now()
	basis, err := core.BuildSetup(hSnap, cfg)
	e.stats.maintRebuildDur.ObserveSince(start)
	if err != nil {
		e.stats.maintFailures.Add(1)
		return 0, err
	}
	if h := e.opts.Maintenance.Hooks.AfterBuild; h != nil {
		h()
	}

	e.stats.maintState.Store(int32(MaintSwapping))
	p, err := e.enqueueMaint(basis)
	if err != nil {
		e.stats.maintFailures.Add(1)
		return 0, err
	}
	select {
	case <-p.done:
		res, err := p.Result()
		if err != nil {
			return 0, err
		}
		return res.Generation, nil
	case <-ctx.Done():
		// The queued swap may still land; only this waiter gives up.
		return 0, ctx.Err()
	case <-e.quit:
		return 0, ErrClosed
	}
}

// idleMaintState is what "not actively rebuilding" reads as for this
// engine's configuration.
func (e *Engine) idleMaintState() MaintState {
	if e.opts.Maintenance.Enabled {
		return MaintIdle
	}
	return MaintDisabled
}

// enqueueMaint hands a finished basis to the writer goroutine. Routing the
// swap through the batcher — rather than applying it here — keeps the WAL's
// generation sequence totally ordered by construction: one goroutine
// assigns generations and appends records, for write batches and
// maintenance swaps alike.
func (e *Engine) enqueueMaint(basis *core.SetupBasis) (*Pending, error) {
	e.sendMu.RLock()
	defer e.sendMu.RUnlock()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	r := &request{kind: opMaintain, basis: basis, p: newPending()}
	select {
	case e.reqs <- r:
		return r.p, nil
	case <-e.quit:
		return nil, ErrClosed
	}
}

// applyMaintenance runs on the writer goroutine: adopt the basis under the
// write lock (cheap: sketch catch-up over the edges admitted during the
// build), then follow the exact WAL-before-publish sequence write batches
// use — log the swap record, publish the snapshot, complete the future.
func (e *Engine) applyMaintenance(r *request) {
	start := time.Now()
	e.mu.Lock()
	if err := e.sp.AdoptSetup(r.basis); err != nil {
		e.mu.Unlock()
		e.stats.maintFailures.Add(1)
		r.p.complete(WriteResult{}, err)
		return
	}
	gen := e.stats.generation.Add(1)
	snap := newSnapshot(gen, e.sp.G.Snapshot(), e.sp.H.Snapshot(), &e.stats, e.opts.Solver)
	var walRec *wal.BatchRecord
	if e.opts.Store != nil && !e.walBroken.Load() {
		walRec = &wal.BatchRecord{Gen: gen, Maint: &wal.MaintRecord{
			TargetCond: r.basis.TargetCond(),
			HBase:      r.basis.HBase(),
		}}
	}
	// Re-baseline the churn signal at the new basis.
	e.churnBase.Store(e.stats.flushedAdds.Load() + e.stats.flushedDeletes.Load())
	e.basisEdges.Store(uint64(e.sp.H.NumEdges()))
	e.mu.Unlock()
	e.stats.maintSwapDur.ObserveSince(start)

	if h := e.opts.Maintenance.Hooks.BeforeLog; h != nil {
		if err := h(); err != nil {
			// Simulated crash between adoption and the log append. A real
			// crash takes the adopted in-memory state with it — recovery
			// replays the log as if the rebuild never started. The test
			// process lives on with state the log will never describe, so
			// poison the WAL exactly as a failed append would: no later
			// record may land behind the missing one.
			e.walBroken.Store(true)
			e.stats.maintFailures.Add(1)
			r.p.complete(WriteResult{}, err)
			return
		}
	}
	var walErr error
	if walRec != nil {
		n, err := e.opts.Store.Append(*walRec)
		if err != nil {
			e.walBroken.Store(true)
			e.stats.walErrors.Add(1)
			walErr = errNotDurableWrap(err)
		} else {
			e.stats.walAppends.Add(1)
			e.stats.walBytes.Add(uint64(n))
		}
	} else if e.opts.Store != nil {
		walErr = ErrNotDurable
	}
	e.reg.Publish(snap)
	e.stats.maintRebuilds.Add(1)
	e.stats.maintLastGen.Store(gen)
	e.stats.maintTargetCond.Store(math.Float64bits(r.basis.TargetCond()))
	if keep := e.opts.Maintenance.RetainAfterSwap; keep > 0 {
		// GC pressure: generations older than the swap carry factorizations
		// of a superseded basis; dropping the registry's references lets
		// their arenas and workspace pools free once readers drain.
		e.stats.gensEvicted.Add(uint64(e.reg.TrimTo(keep)))
	}
	r.p.complete(WriteResult{Generation: gen}, walErr)
}
