package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ingrass/internal/batch"
	"ingrass/internal/obs/trace"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// The engine side of the batched query engine: the coalescing scheduler
// (internal/batch) keyed by snapshot generation, and the group executor
// that turns each sealed group — a mix of solve and effective-resistance
// requests against one snapshot — into a single blocked multi-RHS solve.

// groupScratch is the per-execution scratch a group needs beyond the pooled
// solve state: column headers, per-column contexts, and per-column results.
// Pooled so steady-state group execution stays allocation-light.
type groupScratch struct {
	xs, bs [][]float64
	cctx   []context.Context
	out    []sparse.ColumnResult
	spans  []trace.Span
}

func (gs *groupScratch) ensure(w int) {
	if cap(gs.out) < w {
		gs.xs = make([][]float64, w)
		gs.bs = make([][]float64, w)
		gs.cctx = make([]context.Context, w)
		gs.out = make([]sparse.ColumnResult, w)
		gs.spans = make([]trace.Span, w)
	}
	gs.xs, gs.bs = gs.xs[:w], gs.bs[:w]
	gs.cctx, gs.out = gs.cctx[:w], gs.out[:w]
	gs.spans = gs.spans[:w]
}

var groupScratchPool = sync.Pool{New: func() any { return &groupScratch{} }}

// execGroup runs one sealed group as a blocked solve against its pinned
// snapshot. Solve requests bring their own buffers; resistance requests
// draw basis right-hand sides and solution columns from the snapshot's
// pooled workspaces. All requests of a group share one option set (the
// scheduler keys groups by generation and option set), and each request's
// context rides in as its column's context.
func (e *Engine) execGroup(snap *Snapshot, reqs []*batch.Req) {
	w := len(reqs)
	gs := groupScratchPool.Get().(*groupScratch)
	defer groupScratchPool.Put(gs)
	gs.ensure(w)

	var ws *solver.Workspace
	var pool *solver.Pool
	defer func() {
		if ws != nil {
			pool.Put(ws)
		}
	}()
	// Traced requests get a batch-group span backdated to their Submit
	// time, so the span covers queue wait and the blocked execution; the
	// column's context is re-wrapped so the outer-solve span nests under
	// it. Untraced requests (the common case when sampling is off) skip
	// all of this — FromContext on their context yields the inert Span.
	execStart := time.Now()
	for i, r := range reqs {
		gs.cctx[i] = r.Ctx
		gs.spans[i] = trace.Span{}
		if parent := trace.FromContext(r.Ctx); parent.Tracing() {
			g := parent.StartChildSince(trace.SpanBatchGroup, r.SubmittedAt())
			g.SetAttr(trace.AttrWidth, int64(w))
			g.SetAttr(trace.AttrQueueWaitNS, int64(execStart.Sub(r.SubmittedAt())))
			g.SetAttr(trace.AttrGeneration, int64(snap.Gen))
			gs.spans[i] = g
			gs.cctx[i] = trace.NewContext(r.Ctx, g)
		}
		if r.Kind == batch.KindPair {
			if ws == nil {
				if err := snap.ensureFactorized(); err != nil {
					for _, rq := range reqs {
						rq.Err = err
					}
					return
				}
				pool = snap.gop.Workspaces()
				ws = pool.Get()
			}
			b := ws.Take()
			vecmath.Basis(b, r.U, r.V)
			gs.bs[i] = b
			gs.xs[i] = ws.Take()
			snap.stats.resistQueries.Add(1)
		} else {
			gs.xs[i], gs.bs[i] = r.X, r.B
		}
	}

	// The group context is deliberately background: individual cancellations
	// mask their own column, and a group must outlive any one requester.
	bst, err := snap.SolveBlockInto(context.Background(), gs.xs, gs.bs, gs.out, gs.cctx, reqs[0].Opts)
	for i := range reqs {
		gs.spans[i].End()
	}
	for i, r := range reqs {
		if err != nil {
			r.Err = err
			continue
		}
		cr := gs.out[i]
		r.Iterations = cr.Iterations
		r.Residual = cr.Residual
		r.Converged = cr.Converged
		r.InnerUses = bst.InnerUses
		r.Err = cr.Err
		if r.Kind == batch.KindPair && cr.Err == nil {
			r.Resistance = gs.xs[i][r.U] - gs.xs[i][r.V]
		}
	}
}

// wrapSubmitErr classifies a scheduler admission failure: a request whose
// own context expired while blocked on the admission queue is a
// cancellation (HTTP 499/408 via solver.ErrCancelled), exactly as if it
// had been cancelled mid-solve; ErrClosed passes through.
func wrapSubmitErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return solver.Cancelled(err)
	}
	return err
}

// SolveCoalesced submits one solve against snap through the coalescing
// scheduler and waits: concurrent solves against the same generation with
// the same option set share one blocked multi-RHS execution (the scheduler
// keys groups by both). The result is bit-identical to snap.SolveInto with
// the same options. If ctx expires while the request is queued or in
// flight, the solve's column is masked within one iteration; x must then be
// considered poisoned until the request's group drains (the caller-provided
// buffer may still be written briefly).
func (e *Engine) SolveCoalesced(ctx context.Context, snap *Snapshot, x, b []float64, opts solver.Options) (SolveStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := snap.G.NumNodes()
	if len(b) != n {
		return SolveStats{}, fmt.Errorf("service: rhs length %d != %d nodes", len(b), n)
	}
	if len(x) != len(b) {
		return SolveStats{}, fmt.Errorf("service: solution length %d != rhs length %d", len(x), len(b))
	}
	r := &batch.Req{Ctx: ctx, Kind: batch.KindSolve, X: x, B: b, Opts: opts}
	if err := e.sched.Submit(ctx, snap.Gen, snap, r, false); err != nil {
		return SolveStats{}, wrapSubmitErr(err)
	}
	if err := r.Wait(ctx); err != nil {
		return SolveStats{Generation: snap.Gen}, solver.Cancelled(err)
	}
	st := SolveStats{
		Generation:  snap.Gen,
		Iterations:  r.Iterations,
		Residual:    r.Residual,
		Converged:   r.Converged,
		PrecondUses: r.InnerUses,
	}
	return st, r.Err
}

// ResistanceCoalesced submits one effective-resistance query through the
// scheduler; concurrent same-generation queries (and solves) share one
// blocked execution.
func (e *Engine) ResistanceCoalesced(ctx context.Context, snap *Snapshot, u, v int) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := snap.G.NumNodes()
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, fmt.Errorf("service: resistance endpoints (%d, %d) out of range [0, %d)", u, v, n)
	}
	if u == v {
		snap.stats.resistQueries.Add(1)
		return 0, nil
	}
	r := &batch.Req{Ctx: ctx, Kind: batch.KindPair, U: u, V: v}
	if err := e.sched.Submit(ctx, snap.Gen, snap, r, false); err != nil {
		return 0, wrapSubmitErr(err)
	}
	if err := r.Wait(ctx); err != nil {
		return 0, solver.Cancelled(err)
	}
	return r.Resistance, r.Err
}

// SolveBlock runs an explicit blocked solve against snap (the
// Service.SolveBatch path), recording it in the block-fill stats. Width is
// capped at sparse.MaxBlockWidth; the public layer chunks wider batches.
func (e *Engine) SolveBlock(ctx context.Context, snap *Snapshot, xs, bs [][]float64, out []sparse.ColumnResult, opts solver.Options) (BlockSolveStats, error) {
	st, err := snap.SolveBlockInto(ctx, xs, bs, out, nil, opts)
	if err == nil {
		e.sched.RecordDirect(len(xs))
	}
	return st, err
}

// BatchStats snapshots the scheduler counters.
func (e *Engine) BatchStats() batch.StatsView { return e.sched.Stats() }
