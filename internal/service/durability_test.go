package service

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ingrass/internal/core"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
	"ingrass/internal/wal"
)

// newDurableEngine builds an engine identical to newEngine but attached to
// a store in dir, with an initial generation-0 checkpoint so the store is
// recoverable from the first write on.
func newDurableEngine(t testing.TB, rows, cols int, opts Options, dir string, wopts wal.Options) (*Engine, *wal.Store) {
	t.Helper()
	g := grid(rows, cols)
	init, err := grass.InitialSparsifier(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := core.NewSparsifier(g, init.H, core.Config{
		TargetCond: 50,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := wal.Open(dir, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteCheckpoint(wal.Checkpoint{Gen: 0, State: sp.PersistentState()}); err != nil {
		t.Fatal(err)
	}
	opts.Store = store
	e := New(sp, opts)
	t.Cleanup(func() {
		e.Close()
		store.Close()
	})
	return e, store
}

func sameGraphBits(t *testing.T, name string, a, b *graph.Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: size mismatch %v vs %v", name, a, b)
	}
	for i := range a.Edges() {
		ea, eb := a.Edge(i), b.Edge(i)
		if ea.U != eb.U || ea.V != eb.V || math.Float64bits(ea.W) != math.Float64bits(eb.W) {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", name, i, ea, eb)
		}
	}
}

// streamOp is one step of a synthetic workload.
type streamOp struct {
	del   bool
	edges []graph.Edge
}

// makeStream builds a deterministic interleaved add/delete workload over
// [0, n). Deletions only target pairs previously added (and not yet
// exhausted), so every request succeeds on a correct engine.
func makeStream(n, ops int, seed uint64) []streamOp {
	rng := vecmath.NewRNG(seed)
	live := map[uint64]int{} // canonical pair key -> deletable count
	dead := map[uint64]bool{}
	var keys []uint64
	keyEdges := map[uint64]graph.Edge{}
	var out []streamOp
	for len(out) < ops {
		if len(keys) > 0 && rng.Intn(5) == 0 {
			// Delete one previously added pair.
			ki := rng.Intn(len(keys))
			k := keys[ki]
			e := keyEdges[k]
			out = append(out, streamOp{del: true, edges: []graph.Edge{{U: e.U, V: e.V}}})
			live[k]--
			if live[k] == 0 {
				keys[ki] = keys[len(keys)-1]
				keys = keys[:len(keys)-1]
				delete(live, k)
				dead[k] = true
			}
			continue
		}
		batch := make([]graph.Edge, 1+rng.Intn(4))
		for i := range batch {
			u, v := rng.Intn(n), rng.Intn(n)
			for u == v {
				v = rng.Intn(n)
			}
			e := graph.Edge{U: u, V: v, W: 0.25 + 2*rng.Float64()}
			batch[i] = e
			k := graph.KeyOf(u, v)
			// A pair is deletable at most once, and never after it has been
			// soft-deleted: duplicate pairs coalesce in the core, and a
			// re-added pair aliases the tombstone left by its deletion, so a
			// second delete of either kind would fail.
			if live[k] == 0 && !dead[k] {
				keys = append(keys, k)
				live[k] = 1
			}
			keyEdges[k] = e
		}
		out = append(out, streamOp{edges: batch})
	}
	return out
}

func applyOp(t *testing.T, e *Engine, op streamOp) {
	t.Helper()
	ctx := ctxT(t)
	var err error
	if op.del {
		_, err = e.Delete(ctx, append([]graph.Edge(nil), op.edges...))
	} else {
		_, err = e.Add(ctx, append([]graph.Edge(nil), op.edges...))
	}
	if err != nil {
		t.Fatalf("apply %+v: %v", op, err)
	}
}

// TestRecoveryMatchesUninterruptedRun is the acceptance property test: a
// random add/delete stream runs through a durable engine with a checkpoint
// at a random midpoint; the process then "crashes" (the in-memory engine is
// dropped, only the data directory survives); recovery must land on the
// exact generation with identical sparsifier stats, bit-identical graphs,
// and matching solve output compared to an uninterrupted in-memory run.
func TestRecoveryMatchesUninterruptedRun(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		seed := seed
		t.Run("", func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{MaxBatch: 1} // one flush per request in both engines
			durable, store := newDurableEngine(t, 8, 8, opts, dir, wal.Options{Sync: wal.SyncNever})
			reference := newEngine(t, 8, 8, opts)

			n := durable.Current().G.NumNodes()
			stream := makeStream(n, 60, seed)
			ckAt := int(vecmath.NewRNG(seed^0xC0FFEE).Intn(len(stream)-2)) + 1

			for i, op := range stream {
				applyOp(t, durable, op)
				applyOp(t, reference, op)
				if i == ckAt {
					if gen, err := durable.Checkpoint(); err != nil {
						t.Fatalf("checkpoint at op %d (gen %d): %v", i, gen, err)
					}
				}
			}

			wantGen := durable.Current().Gen
			if refGen := reference.Current().Gen; wantGen != refGen {
				t.Fatalf("durable engine at gen %d, reference at %d", wantGen, refGen)
			}
			wantStats := durable.CoreStats()
			rhs := warmRHS(n)
			wantX := make([]float64, n)
			if _, err := durable.Current().SolveInto(ctxT(t), wantX, rhs, solver.Options{Tol: 1e-10}); err != nil {
				t.Fatal(err)
			}

			// Crash: drop the engine; only the files survive. (Close flushes
			// the already-acknowledged writes; torn-tail crashes are covered
			// by TestRecoveryTruncatesTornFinalRecord.)
			durable.Close()
			store.Close()

			store2, err := wal.Open(dir, wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			recovered, err := Recover(store2, Options{MaxBatch: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				recovered.Close()
				store2.Close()
			}()

			if got := recovered.Current().Gen; got != wantGen {
				t.Fatalf("recovered at generation %d, want %d", got, wantGen)
			}
			if got := recovered.CoreStats(); got != wantStats {
				t.Fatalf("recovered stats %+v, want %+v", got, wantStats)
			}
			refSnap := reference.Current()
			recSnap := recovered.Current()
			sameGraphBits(t, "G", recSnap.G, refSnap.G)
			sameGraphBits(t, "H", recSnap.H, refSnap.H)

			gotX := make([]float64, n)
			if _, err := recSnap.SolveInto(ctxT(t), gotX, rhs, solver.Options{Tol: 1e-10}); err != nil {
				t.Fatal(err)
			}
			num, den := 0.0, vecmath.Norm2(wantX)
			for i := range gotX {
				d := gotX[i] - wantX[i]
				num += d * d
			}
			if math.Sqrt(num) > 1e-9*(1+den) {
				t.Fatalf("recovered solve diverges: ||dx|| = %g", math.Sqrt(num))
			}

			// The recovered engine keeps serving writes and stays replayable.
			applyOp(t, recovered, streamOp{edges: []graph.Edge{{U: 0, V: n - 1, W: 1.5}}})
			if got := recovered.Current().Gen; got != wantGen+1 {
				t.Fatalf("post-recovery write at gen %d, want %d", got, wantGen+1)
			}
		})
	}
}

// TestRecoveryTruncatesTornFinalRecord simulates a crash mid-append: the
// last WAL record is chopped mid-payload. Recovery must drop exactly that
// record (whose write was never acknowledged) and land on the previous
// generation with a consistent engine, rather than failing or corrupting.
func TestRecoveryTruncatesTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	e, store := newDurableEngine(t, 8, 8, Options{MaxBatch: 1}, dir, wal.Options{Sync: wal.SyncNever})
	n := e.Current().G.NumNodes()
	for _, op := range makeStream(n, 10, 21) {
		applyOp(t, e, op)
	}
	genBefore := e.Current().Gen
	e.Close()
	store.Close()

	// Chop bytes off the single segment's tail, landing mid-record.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(store2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		rec.Close()
		store2.Close()
	}()
	if got := rec.Current().Gen; got != genBefore-1 {
		t.Fatalf("recovered at gen %d, want %d (torn record dropped)", got, genBefore-1)
	}
	if err := rec.Current().G.Validate(); err != nil {
		t.Fatalf("recovered G invalid: %v", err)
	}
	if err := rec.Current().H.Validate(); err != nil {
		t.Fatalf("recovered H invalid: %v", err)
	}
	x := make([]float64, n)
	if _, err := rec.Current().SolveInto(ctxT(t), x, warmRHS(n), solver.Options{Tol: 1e-8}); err != nil {
		t.Fatalf("solve on recovered engine: %v", err)
	}
}

// TestRecoverRequiresCheckpoint: an empty data directory is not recoverable.
func TestRecoverRequiresCheckpoint(t *testing.T) {
	store, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := Recover(store, Options{}); !errors.Is(err, wal.ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

// TestCheckpointDoesNotStallWriters checkpoints concurrently with a live
// write stream (under -race this also audits the snapshot/stats capture):
// every interleaving must leave a recoverable store whose replay reaches
// the final generation.
func TestCheckpointDoesNotStallWriters(t *testing.T) {
	dir := t.TempDir()
	e, store := newDurableEngine(t, 8, 8, Options{MaxBatch: 4}, dir, wal.Options{Sync: wal.SyncNever})
	n := e.Current().G.NumNodes()
	stream := makeStream(n, 40, 5)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := e.Checkpoint(); err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
		}
	}()
	for _, op := range stream {
		applyOp(t, e, op)
	}
	wg.Wait()

	if err := e.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	finalGen := e.Current().Gen
	finalStats := e.CoreStats()
	st := e.Stats()
	if st.Checkpoints != 6 {
		t.Fatalf("checkpoint counter %d", st.Checkpoints)
	}
	if st.WALErrors != 0 {
		t.Fatalf("unexpected WAL errors: %d", st.WALErrors)
	}
	e.Close()
	store.Close()

	store2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(store2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		rec.Close()
		store2.Close()
	}()
	if got := rec.Current().Gen; got != finalGen {
		t.Fatalf("recovered gen %d, want %d", got, finalGen)
	}
	if got := rec.CoreStats(); got != finalStats {
		t.Fatalf("recovered stats %+v, want %+v", got, finalStats)
	}
}

// TestCheckpointWithoutStore: engines without a store refuse Checkpoint.
func TestCheckpointWithoutStore(t *testing.T) {
	e := newEngine(t, 6, 6, Options{})
	if _, err := e.Checkpoint(); !errors.Is(err, ErrNoStore) {
		t.Fatalf("want ErrNoStore, got %v", err)
	}
}
