package service

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"ingrass/internal/core"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func newEngine(t testing.TB, rows, cols int, opts Options) *Engine {
	t.Helper()
	g := grid(rows, cols)
	init, err := grass.InitialSparsifier(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := core.NewSparsifier(g, init.H, core.Config{
		TargetCond: 50,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(sp, opts)
	t.Cleanup(e.Close)
	return e
}

func ctxT(t testing.TB) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestWriteBecomesVisibleAfterFlush(t *testing.T) {
	e := newEngine(t, 8, 8, Options{})
	ctx := ctxT(t)
	snap0 := e.Current()
	if snap0.Gen != 0 {
		t.Fatalf("initial generation %d", snap0.Gen)
	}
	edges0 := snap0.G.NumEdges()

	res, err := e.Add(ctx, []graph.Edge{{U: 0, V: 63, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation == 0 {
		t.Fatalf("write completed without a generation bump: %+v", res)
	}
	if got := res.Included + res.Merged + res.Redistributed; got != 1 {
		t.Fatalf("one edge should yield one decision, got %+v", res)
	}
	snap1 := e.Current()
	if snap1.Gen < res.Generation {
		t.Fatalf("current gen %d behind write gen %d", snap1.Gen, res.Generation)
	}
	if snap1.G.NumEdges() != edges0+1 {
		t.Fatalf("G edges %d -> %d, want +1", edges0, snap1.G.NumEdges())
	}
	// The old snapshot is untouched.
	if snap0.G.NumEdges() != edges0 {
		t.Fatal("generation-0 snapshot mutated")
	}
}

func TestCoalescingSingleFlush(t *testing.T) {
	// Long interval + large MaxBatch: nothing flushes until the barrier.
	e := newEngine(t, 6, 6, Options{MaxBatch: 10_000, FlushInterval: time.Hour})
	ctx := ctxT(t)
	var pendings []*Pending
	for i := 0; i < 20; i++ {
		p, err := e.AddAsync([]graph.Edge{{U: i % 36, V: (i + 7) % 36, W: 1 + float64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	if err := e.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	gens := map[uint64]bool{}
	for _, p := range pendings {
		res, err := p.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		gens[res.Generation] = true
	}
	if len(gens) != 1 {
		t.Fatalf("coalesced writes landed in %d generations, want 1", len(gens))
	}
	if st := e.Stats(); st.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", st.Flushes)
	}
}

func TestErrorIsolation(t *testing.T) {
	e := newEngine(t, 6, 6, Options{MaxBatch: 10_000, FlushInterval: time.Hour})
	ctx := ctxT(t)
	good, err := e.AddAsync([]graph.Edge{{U: 0, V: 35, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Deleting a nonexistent edge fails at flush time; it must not poison
	// the coalesced good request.
	bad, err := e.DeleteAsync([]graph.Edge{{U: 0, V: 34}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := good.Wait(ctx); err != nil {
		t.Fatalf("good request failed: %v", err)
	}
	if _, err := bad.Wait(ctx); err == nil {
		t.Fatal("bad delete unexpectedly succeeded")
	}
	if st := e.Stats(); st.WriteErrors != 1 {
		t.Fatalf("write errors = %d, want 1", st.WriteErrors)
	}
}

func TestAddValidationUpFront(t *testing.T) {
	e := newEngine(t, 4, 4, Options{})
	if _, err := e.AddAsync([]graph.Edge{{U: 0, V: 0, W: 1}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := e.AddAsync([]graph.Edge{{U: 0, V: 99, W: 1}}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := e.AddAsync(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestDeleteFlow(t *testing.T) {
	e := newEngine(t, 6, 6, Options{})
	ctx := ctxT(t)
	if _, err := e.Add(ctx, []graph.Edge{{U: 0, V: 35, W: 2}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Delete(ctx, []graph.Edge{{U: 0, V: 35}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Fatalf("deleted = %d, want 1", res.Deleted)
	}
	if cs := e.CoreStats(); cs.Deleted != 1 {
		t.Fatalf("core deleted = %d", cs.Deleted)
	}
}

func TestRegistryRetention(t *testing.T) {
	e := newEngine(t, 6, 6, Options{Retain: 2})
	ctx := ctxT(t)
	for i := 0; i < 4; i++ {
		if _, err := e.Add(ctx, []graph.Edge{{U: i, V: 35 - i, W: 1}}); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	cur := e.Current()
	if _, ok := e.At(cur.Gen); !ok {
		t.Fatal("current generation not addressable")
	}
	if _, ok := e.At(0); ok {
		t.Fatal("generation 0 should have been evicted with Retain=2")
	}
	gens := e.Generations()
	if len(gens) != 2 {
		t.Fatalf("retained %d generations, want 2: %v", len(gens), gens)
	}
}

func TestSolveAgainstSnapshot(t *testing.T) {
	e := newEngine(t, 8, 8, Options{})
	snap := e.Current()
	n := snap.G.NumNodes()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Cos(float64(3 * i))
	}
	vecmath.CenterMean(b)
	x, st, err := snap.Solve(context.Background(), b, solver.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Generation != snap.Gen || st.PrecondUses <= 0 {
		t.Fatalf("solve stats: %+v", st)
	}
	// Check the residual directly against the snapshot Laplacian.
	r := make([]float64, n)
	snap.G.LapMul(r, x)
	vecmath.Sub(r, b, r)
	if rel := vecmath.Norm2(r) / vecmath.Norm2(b); rel > 1e-6 {
		t.Fatalf("relative residual %v", rel)
	}
}

func TestPrecondCachePerGeneration(t *testing.T) {
	e := newEngine(t, 8, 8, Options{})
	snap := e.Current()
	b := make([]float64, snap.G.NumNodes())
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	vecmath.CenterMean(b)
	before := e.Stats()
	const solves = 8
	for i := 0; i < solves; i++ {
		if _, _, err := snap.Solve(context.Background(), b, solver.Options{Tol: 1e-8}); err != nil {
			t.Fatal(err)
		}
	}
	after := e.Stats()
	if builds := after.PrecondBuilds - before.PrecondBuilds; builds != 1 {
		t.Fatalf("%d factorizations for %d solves on one generation, want 1", builds, solves)
	}
	if reuses := after.PrecondReuses - before.PrecondReuses; reuses != solves-1 {
		t.Fatalf("%d reuses, want %d", reuses, solves-1)
	}
}

func TestEffectiveResistance(t *testing.T) {
	e := newEngine(t, 6, 6, Options{})
	snap := e.Current()
	r, err := snap.EffectiveResistance(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 || r >= 1 {
		// Adjacent unit-weight grid nodes: parallel paths force R < 1.
		t.Fatalf("resistance %v out of (0, 1)", r)
	}
	rBack, err := snap.EffectiveResistance(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-rBack) > 1e-6 {
		t.Fatalf("asymmetric resistance: %v vs %v", r, rBack)
	}
	if same, err := snap.EffectiveResistance(context.Background(), 3, 3); err != nil || same != 0 {
		t.Fatalf("self resistance: %v, %v", same, err)
	}
	if _, err := snap.EffectiveResistance(context.Background(), -1, 2); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

func TestConditionNumberOnSnapshot(t *testing.T) {
	e := newEngine(t, 6, 6, Options{})
	k, err := e.Current().ConditionNumber(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 || math.IsInf(k, 0) || math.IsNaN(k) {
		t.Fatalf("kappa = %v", k)
	}
}

func TestCloseRejectsNewWritesAndFlushesPending(t *testing.T) {
	e := newEngine(t, 6, 6, Options{MaxBatch: 10_000, FlushInterval: time.Hour})
	p, err := e.AddAsync([]graph.Edge{{U: 0, V: 35, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := p.Result(); err != nil {
		t.Fatalf("pending write dropped at close: %v", err)
	}
	if _, err := e.AddAsync([]graph.Edge{{U: 1, V: 34, W: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close write: %v", err)
	}
	if err := e.Flush(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close flush: %v", err)
	}
	e.Close() // idempotent
}

func TestMaxBatchTriggersFlush(t *testing.T) {
	e := newEngine(t, 6, 6, Options{MaxBatch: 4, FlushInterval: time.Hour})
	ctx := ctxT(t)
	edges := []graph.Edge{
		{U: 0, V: 20, W: 1}, {U: 1, V: 21, W: 1},
		{U: 2, V: 22, W: 1}, {U: 3, V: 23, W: 1},
	}
	// 4 edges reach MaxBatch: the flush happens without barrier or timer.
	res, err := e.Add(ctx, edges)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation == 0 {
		t.Fatal("batch did not flush on MaxBatch")
	}
}
