package service

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ingrass/internal/batch"
	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// blockRHS builds w distinct mean-zero right-hand sides.
func blockRHS(n, w int, seed int) [][]float64 {
	bs := make([][]float64, w)
	for j := range bs {
		bs[j] = make([]float64, n)
		for i := range bs[j] {
			bs[j][i] = math.Sin(float64(i*(j+seed+1) + seed))
		}
		vecmath.CenterMean(bs[j])
	}
	return bs
}

// TestSolveBlockIntoMatchesSolveInto: every column of a snapshot's blocked
// solve must be bit-identical to an independent SolveInto against the same
// snapshot — coalescing must never change an answer.
func TestSolveBlockIntoMatchesSolveInto(t *testing.T) {
	e := newEngine(t, 16, 16, Options{})
	snap := e.Current()
	n := snap.G.NumNodes()
	const w = 4
	bs := blockRHS(n, w, 1)
	xs := blockRHS(n, w, 9) // nonzero garbage; must be overwritten
	out := make([]sparse.ColumnResult, w)
	ctx := context.Background()
	opts := solver.Options{Tol: 1e-8}
	bst, err := snap.SolveBlockInto(ctx, xs, bs, out, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bst.Generation != snap.Gen || bst.InnerUses == 0 {
		t.Fatalf("block stats: %+v", bst)
	}
	for j := 0; j < w; j++ {
		if out[j].Err != nil || !out[j].Converged {
			t.Fatalf("column %d: %+v", j, out[j])
		}
		solo := make([]float64, n)
		st, err := snap.SolveInto(ctx, solo, bs[j], opts)
		if err != nil {
			t.Fatal(err)
		}
		if st.Iterations != out[j].Iterations {
			t.Errorf("column %d: %d blocked vs %d solo iterations", j, out[j].Iterations, st.Iterations)
		}
		for i := range solo {
			if math.Float64bits(solo[i]) != math.Float64bits(xs[j][i]) {
				t.Fatalf("column %d entry %d: blocked %g != solo %g", j, i, xs[j][i], solo[i])
			}
		}
	}
}

// TestWarmSolveAllocationFreeBlocked is the blocked counterpart of the
// warm-solve allocation gate: once the factorization, the pooled blocked
// solve state, and the workspaces are warm, a width-4 SolveBlockInto must
// not allocate.
func TestWarmSolveAllocationFreeBlocked(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are not meaningful")
	}
	e := newEngine(t, 16, 16, Options{})
	snap := e.Current()
	n := snap.G.NumNodes()
	const w = 4
	bs := blockRHS(n, w, 1)
	xs := blockRHS(n, w, 5)
	out := make([]sparse.ColumnResult, w)
	ctx := context.Background()
	opts := solver.Options{Tol: 1e-8}
	for i := 0; i < 3; i++ {
		if _, err := snap.SolveBlockInto(ctx, xs, bs, out, nil, opts); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := snap.SolveBlockInto(ctx, xs, bs, out, nil, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1.0 {
		t.Fatalf("warm blocked SolveBlockInto allocates %.2f objects/op, want ~0", allocs)
	}
}

// TestSolveCoalescedGroupsRequests: concurrent same-generation solves
// through the scheduler must coalesce into shared blocked groups, answer
// identically to direct solves, and show up in the scheduler counters.
func TestSolveCoalescedGroupsRequests(t *testing.T) {
	e := newEngine(t, 16, 16, Options{Batch: batch.Options{Window: 2 * time.Millisecond, MaxBlock: 8}})
	snap := e.Current()
	n := snap.G.NumNodes()
	const clients = 8
	bs := blockRHS(n, clients, 2)
	xs := make([][]float64, clients)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	stats := make([]SolveStats, clients)
	for c := 0; c < clients; c++ {
		xs[c] = make([]float64, n)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stats[c], errs[c] = e.SolveCoalesced(context.Background(), snap, xs[c], bs[c], solver.Options{})
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if errs[c] != nil || !stats[c].Converged {
			t.Fatalf("client %d: err=%v stats=%+v", c, errs[c], stats[c])
		}
		if stats[c].Generation != snap.Gen {
			t.Fatalf("client %d served by generation %d, submitted against %d", c, stats[c].Generation, snap.Gen)
		}
		solo := make([]float64, n)
		if _, err := snap.SolveInto(context.Background(), solo, bs[c], solver.Options{}); err != nil {
			t.Fatal(err)
		}
		for i := range solo {
			if math.Float64bits(solo[i]) != math.Float64bits(xs[c][i]) {
				t.Fatalf("client %d: coalesced answer differs from direct solve", c)
			}
		}
	}
	v := e.Stats()
	if v.BatchesFormed == 0 || v.BatchesFormed >= clients {
		t.Fatalf("8 concurrent solves formed %d batches; want coalescing (1..7)", v.BatchesFormed)
	}
	if v.RequestsCoalesced == 0 {
		t.Fatal("no requests recorded as coalesced")
	}
	if v.AvgBlockFill <= 1 {
		t.Fatalf("average block fill %.2f, want > 1", v.AvgBlockFill)
	}
}

// TestResistanceCoalescedMatchesDirect: scheduled resistance queries mix
// into blocked groups and agree with the direct path.
func TestResistanceCoalescedMatchesDirect(t *testing.T) {
	e := newEngine(t, 12, 12, Options{Batch: batch.Options{Window: time.Millisecond}})
	snap := e.Current()
	ctx := context.Background()
	pairs := [][2]int{{0, 5}, {1, 77}, {3, 140}, {9, 9}, {140, 3}}
	var wg sync.WaitGroup
	got := make([]float64, len(pairs))
	errs := make([]error, len(pairs))
	for i, p := range pairs {
		wg.Add(1)
		go func(i int, u, v int) {
			defer wg.Done()
			got[i], errs[i] = e.ResistanceCoalesced(ctx, snap, u, v)
		}(i, p[0], p[1])
	}
	wg.Wait()
	for i, p := range pairs {
		if errs[i] != nil {
			t.Fatalf("pair %v: %v", p, errs[i])
		}
		want, err := snap.EffectiveResistance(ctx, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[i]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("pair %v: coalesced %g vs direct %g", p, got[i], want)
		}
	}
	if got[3] != 0 {
		t.Fatalf("u==v resistance = %g, want 0", got[3])
	}
	// Symmetry through the batched path.
	if math.Abs(got[2]-got[4]) > 1e-9 {
		t.Fatalf("resistance not symmetric through batching: %g vs %g", got[2], got[4])
	}
}

// TestCoalescedCancellationMasksColumn: cancelling one request of a group
// must not disturb its groupmates.
func TestCoalescedCancellationMasksColumn(t *testing.T) {
	e := newEngine(t, 16, 16, Options{Batch: batch.Options{Window: 5 * time.Millisecond, MaxBlock: 4}})
	snap := e.Current()
	n := snap.G.NumNodes()
	bs := blockRHS(n, 2, 3)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	var wg sync.WaitGroup
	var okErr, badErr error
	var okStats SolveStats
	x0, x1 := make([]float64, n), make([]float64, n)
	wg.Add(2)
	go func() {
		defer wg.Done()
		okStats, okErr = e.SolveCoalesced(context.Background(), snap, x0, bs[0], solver.Options{})
	}()
	go func() {
		defer wg.Done()
		_, badErr = e.SolveCoalesced(cancelled, snap, x1, bs[1], solver.Options{})
	}()
	wg.Wait()
	if okErr != nil || !okStats.Converged {
		t.Fatalf("healthy groupmate: err=%v stats=%+v", okErr, okStats)
	}
	if badErr == nil {
		t.Fatal("cancelled request returned nil error")
	}
}

// TestSchedulerHammer is the -race stress: 16 goroutines mixing coalesced
// singles, explicit blocked solves, and coalesced resistance queries while
// a writer streams edge insertions underneath, bumping generations. Every
// result is verified against the exact snapshot the request was submitted
// with, which catches any group spanning a generation bump.
func TestSchedulerHammer(t *testing.T) {
	e := newEngine(t, 16, 16, Options{
		MaxBatch: 4,
		Batch:    batch.Options{Window: 500 * time.Microsecond, MaxBlock: 4},
	})
	n := e.Current().G.NumNodes()
	ctx := context.Background()

	stop := make(chan struct{})
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		rng := vecmath.NewRNG(99)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u := int(rng.Uint64() % uint64(n))
			v := int(rng.Uint64() % uint64(n))
			if u == v {
				continue
			}
			if _, err := e.Add(ctx, []graph.Edge{{U: u, V: v, W: 1 + float64(i%7)}}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var gens atomic.Int64
	verify := func(id, it int, snap *Snapshot, x, b []float64) {
		lx := make([]float64, n)
		snap.G.LapMul(lx, x)
		vecmath.Sub(lx, lx, b)
		if vecmath.Norm2(lx) > 1e-5*vecmath.Norm2(b) {
			t.Errorf("goroutine %d iter %d gen %d: residual %g against submitted snapshot — group spanned generations?",
				id, it, snap.Gen, vecmath.Norm2(lx))
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			firstGen := e.Current().Gen
			for it := 0; it < 12; it++ {
				snap := e.Current()
				if snap.Gen != firstGen {
					gens.Add(1)
				}
				switch it % 3 {
				case 0: // coalesced single
					b := blockRHS(n, 1, id*100+it)[0]
					x := make([]float64, n)
					st, err := e.SolveCoalesced(ctx, snap, x, b, solver.Options{})
					if err != nil || !st.Converged {
						t.Errorf("goroutine %d iter %d: coalesced err=%v st=%+v", id, it, err, st)
						return
					}
					if st.Generation != snap.Gen {
						t.Errorf("goroutine %d iter %d: served by gen %d, submitted gen %d", id, it, st.Generation, snap.Gen)
						return
					}
					verify(id, it, snap, x, b)
				case 1: // explicit blocked batch
					const w = 3
					bs := blockRHS(n, w, id*100+it)
					xs := make([][]float64, w)
					for j := range xs {
						xs[j] = make([]float64, n)
					}
					out := make([]sparse.ColumnResult, w)
					bst, err := e.SolveBlock(ctx, snap, xs, bs, out, solver.Options{})
					if err != nil || bst.Generation != snap.Gen {
						t.Errorf("goroutine %d iter %d: block err=%v bst=%+v", id, it, err, bst)
						return
					}
					for j := 0; j < w; j++ {
						if out[j].Err != nil {
							t.Errorf("goroutine %d iter %d col %d: %v", id, it, j, out[j].Err)
							return
						}
						verify(id, it, snap, xs[j], bs[j])
					}
				case 2: // coalesced resistance
					u, v := (id*7+it)%n, (id*13+it*3+1)%n
					if u == v {
						continue
					}
					res, err := e.ResistanceCoalesced(ctx, snap, u, v)
					if err != nil {
						t.Errorf("goroutine %d iter %d: resistance err=%v", id, it, err)
						return
					}
					if res <= 0 {
						t.Errorf("goroutine %d iter %d: resistance %g <= 0", id, it, res)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writerDone.Wait()
	if gens.Load() == 0 {
		t.Log("warning: no generation bumps observed during hammer (writer too slow?)")
	}
	v := e.Stats()
	if v.BatchesFormed == 0 {
		t.Fatal("hammer formed no batches")
	}
	if v.BatchQueueDepth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", v.BatchQueueDepth)
	}
}

// TestCoalescedAfterClose: submissions after Close fail cleanly.
func TestCoalescedAfterClose(t *testing.T) {
	e := newEngine(t, 8, 8, Options{})
	snap := e.Current()
	n := snap.G.NumNodes()
	e.Close()
	b := blockRHS(n, 1, 1)[0]
	if _, err := e.SolveCoalesced(context.Background(), snap, make([]float64, n), b, solver.Options{}); err == nil {
		t.Fatal("solve through closed engine succeeded")
	}
}
