package service

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"

	"ingrass/internal/kernel"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// withProcs widens GOMAXPROCS for one test so worker counts above this
// machine's core count survive the kernel pool's clamp and the parallel
// dispatch path genuinely runs.
func withProcs(t testing.TB, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestWarmSolveAllocationFreeParallel extends the allocation-regression
// gate to parallel solves — impossible before the persistent kernel pool,
// when every parallel SpMV spawned goroutines and a channel (the reason
// Workers > 1 was excluded from the 0-alloc gate). With the pool, a warm
// Workers=4 solve must allocate exactly as much as a serial one: nothing.
//
// The 60x60 grid is deliberate: its SpMV work (~21k) exceeds
// kernel.SpMVCutover, so every Laplacian product in the solve genuinely
// dispatches into the pool — on a smaller graph the cutover would route
// everything through the serial bypass and this gate would assert nothing
// about the parallel path. (The pooled vector kernels' own zero-alloc gate
// lives in internal/kernel, which drives them directly above VecCutover.)
func TestWarmSolveAllocationFreeParallel(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are not meaningful")
	}
	withProcs(t, 4)
	e := newEngine(t, 60, 60, Options{Solver: solver.Options{Workers: 4}})
	snap := e.Current()
	n := snap.G.NumNodes()
	if work := snap.G.NumEdges()*2 + 2*n; work < kernel.SpMVCutover {
		t.Fatalf("gate graph too small to dispatch into the pool: work %d < cutover %d",
			work, kernel.SpMVCutover)
	}
	rhs := warmRHS(n)
	x := make([]float64, n)
	ctx := context.Background()
	opts := solver.Options{Tol: 1e-8}

	for i := 0; i < 3; i++ {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1.0 {
		t.Fatalf("warm parallel SolveInto allocates %.2f objects/op, want ~0", allocs)
	}
}

// TestParallelSolveSharedPoolHammer drives 16 concurrent solves through
// one snapshot whose factorization dispatches into a single shared kernel
// pool, under -race in CI. Every solve must converge to the right answer:
// cross-talk between fork-join operations (a worker finishing one solve's
// SpMV while another solve publishes) would corrupt residuals long before
// the race detector fires.
func TestParallelSolveSharedPoolHammer(t *testing.T) {
	withProcs(t, 4)
	// Above kernel.SpMVCutover, so the solves genuinely share pooled
	// dispatch (see TestWarmSolveAllocationFreeParallel); few iterations
	// because each solve at this size is substantial.
	e := newEngine(t, 60, 60, Options{Solver: solver.Options{Workers: 4}})
	snap := e.Current()
	n := snap.G.NumNodes()
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rhs := make([]float64, n)
			x := make([]float64, n)
			lx := make([]float64, n)
			for it := 0; it < 2; it++ {
				for i := range rhs {
					rhs[i] = math.Sin(float64(i*(id+3) + it))
				}
				vecmath.CenterMean(rhs)
				st, err := snap.SolveInto(ctx, x, rhs, solver.Options{Tol: 1e-6})
				if err != nil || !st.Converged {
					t.Errorf("goroutine %d iter %d: err=%v converged=%v", id, it, err, st.Converged)
					return
				}
				snap.G.LapMul(lx, x)
				vecmath.Sub(lx, lx, rhs)
				if vecmath.Norm2(lx) > 1e-4*vecmath.Norm2(rhs) {
					t.Errorf("goroutine %d iter %d: residual %g — kernel pool cross-talk?",
						id, it, vecmath.Norm2(lx))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
