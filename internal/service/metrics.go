package service

import (
	"math"

	"ingrass/internal/kernel"
	"ingrass/internal/obs"
	"ingrass/internal/solver"
)

// The engine's exposition wiring. The obs registry is the single source of
// truth for every number the process reports: counters that already live as
// engine atomics are bridged as CounterFunc/GaugeFunc reads over those same
// atomics (so the JSON stats view and a Prometheus scrape can never
// disagree), and the latency/shape histograms are created here and recorded
// into by the hot paths through nil-safe handles.
//
// Metric naming follows the conventions DESIGN.md's Observability section
// documents: one `ingrass_` namespace, `_total` on counters, base-unit
// suffixes (`_seconds`) on histograms, and label values drawn only from
// small closed vocabularies. The snapshot generation is a gauge, never a
// label.

// initHistograms creates the engine-owned histograms in reg and installs
// the batch scheduler's block-fill hook. It must run before the scheduler
// is constructed (the hook rides in batch.Options).
func (e *Engine) initHistograms(reg *obs.Registry) {
	e.stats.solveDur = reg.Histogram("ingrass_solve_duration_seconds",
		"wall-clock latency of single-RHS Laplacian solves", obs.ScaleSeconds)
	e.stats.blockDur = reg.Histogram("ingrass_solve_block_duration_seconds",
		"wall-clock latency of blocked multi-RHS solve executions", obs.ScaleSeconds)
	e.stats.solveIterH = reg.Histogram("ingrass_solve_iterations",
		"outer FCG iterations per solve column", obs.ScaleNone)
	blockFill := reg.Histogram("ingrass_batch_block_fill",
		"right-hand sides per executed blocked group", obs.ScaleNone)
	e.opts.Batch.OnGroup = func(w int) { blockFill.Observe(int64(w)) }
	e.stats.spmvDurCSR = reg.Histogram("ingrass_spmv_duration_seconds",
		"wall-clock latency of frozen-operator SpMV applications by storage format",
		obs.ScaleSeconds, obs.Label{Key: "format", Value: "csr"})
	e.stats.spmvDurSELL = reg.Histogram("ingrass_spmv_duration_seconds",
		"wall-clock latency of frozen-operator SpMV applications by storage format",
		obs.ScaleSeconds, obs.Label{Key: "format", Value: "sell"})
	e.stats.maintRebuildDur = reg.Histogram("ingrass_maintenance_rebuild_duration_seconds",
		"wall-clock latency of offline setup-basis rebuilds (no engine lock held)", obs.ScaleSeconds)
	e.stats.maintSwapDur = reg.Histogram("ingrass_maintenance_swap_duration_seconds",
		"in-lock latency of setup-basis adoptions on the writer goroutine", obs.ScaleSeconds)
}

// registerBridges exposes the engine's existing atomic counters through reg.
// It must run after the scheduler exists (the batch bridges sample it).
func (e *Engine) registerBridges(reg *obs.Registry) {
	ctr := func(name, help string, load func() uint64, labels ...obs.Label) {
		reg.CounterFunc(name, help, func() float64 { return float64(load()) }, labels...)
	}
	ctr("ingrass_solves_total", "completed Laplacian solve columns", e.stats.solves.Load)
	ctr("ingrass_solve_iterations_total", "cumulative outer FCG iterations", e.stats.solveIters.Load)
	ctr("ingrass_solve_failures_total", "solves by failure mode",
		e.stats.solveNoConv.Load, obs.Label{Key: "mode", Value: "no_convergence"})
	ctr("ingrass_solve_failures_total", "solves by failure mode",
		e.stats.solveDeadline.Load, obs.Label{Key: "mode", Value: "deadline_exceeded"})
	ctr("ingrass_solve_failures_total", "solves by failure mode",
		e.stats.solveCancel.Load, obs.Label{Key: "mode", Value: "cancelled"})
	ctr("ingrass_precond_builds_total", "preconditioner factorizations built", e.stats.precondBuilds.Load)
	ctr("ingrass_precond_reuses_total", "solves that reused a cached factorization", e.stats.precondReuses.Load)
	ctr("ingrass_resistance_queries_total", "effective-resistance queries", e.stats.resistQueries.Load)
	ctr("ingrass_cond_queries_total", "condition-number estimates", e.stats.condQueries.Load)
	ctr("ingrass_sparsifier_exports_total", "sparsifier exports", e.stats.exports.Load)
	ctr("ingrass_write_requests_total", "enqueued write requests", e.stats.writeRequests.Load)
	ctr("ingrass_write_errors_total", "write requests that failed validation or application", e.stats.writeErrors.Load)
	ctr("ingrass_flushes_total", "applied write batches", e.stats.flushes.Load)
	ctr("ingrass_flushed_edges_total", "edges carried by applied batches",
		e.stats.flushedAdds.Load, obs.Label{Key: "op", Value: "add"})
	ctr("ingrass_flushed_edges_total", "edges carried by applied batches",
		e.stats.flushedDeletes.Load, obs.Label{Key: "op", Value: "delete"})
	ctr("ingrass_wal_appends_total", "batches appended to the write-ahead log", e.stats.walAppends.Load)
	ctr("ingrass_wal_bytes_total", "framed bytes appended to the write-ahead log", e.stats.walBytes.Load)
	ctr("ingrass_wal_errors_total", "failed WAL appends (durability degraded until checkpoint)", e.stats.walErrors.Load)
	ctr("ingrass_checkpoints_total", "completed checkpoints", e.stats.checkpoints.Load)
	ctr("ingrass_kernel_forks_total", "fork-join dispatches into the shared kernel pools", kernel.SharedForks)

	ctr("ingrass_maintenance_triggers_total", "maintenance rebuilds triggered by signal",
		e.stats.maintTrigIters.Load, obs.Label{Key: "reason", Value: "iterations"})
	ctr("ingrass_maintenance_triggers_total", "maintenance rebuilds triggered by signal",
		e.stats.maintTrigCond.Load, obs.Label{Key: "reason", Value: "cond"})
	ctr("ingrass_maintenance_triggers_total", "maintenance rebuilds triggered by signal",
		e.stats.maintTrigChurn.Load, obs.Label{Key: "reason", Value: "churn"})
	ctr("ingrass_maintenance_triggers_total", "maintenance rebuilds triggered by signal",
		e.stats.maintTrigManual.Load, obs.Label{Key: "reason", Value: "manual"})
	ctr("ingrass_maintenance_rebuilds_total", "background setup-basis swaps published", e.stats.maintRebuilds.Load)
	ctr("ingrass_maintenance_failures_total", "background rebuilds aborted at any stage", e.stats.maintFailures.Load)
	ctr("ingrass_generations_evicted_total", "snapshots evicted by the post-swap GC pressure policy", e.stats.gensEvicted.Load)

	reg.GaugeFunc("ingrass_generation", "snapshot generation currently served",
		func() float64 { return float64(e.stats.generation.Load()) })
	reg.GaugeFunc("ingrass_last_checkpoint_generation", "generation covered by the newest checkpoint",
		func() float64 { return float64(e.stats.lastCheckpoint.Load()) })
	reg.GaugeFunc("ingrass_write_queue_depth", "write requests awaiting a flush",
		func() float64 { return float64(e.stats.queueDepth.Load()) })
	reg.GaugeFunc("ingrass_maintenance_state", "controller state (0=disabled 1=idle 2=rebuilding 3=swapping 4=cooldown)",
		func() float64 { return float64(e.stats.maintState.Load()) })
	reg.GaugeFunc("ingrass_maintenance_last_generation", "generation published by the newest basis swap",
		func() float64 { return float64(e.stats.maintLastGen.Load()) })
	reg.GaugeFunc("ingrass_maintenance_target_cond", "target condition number of the current setup basis (density knob position)",
		func() float64 { return math.Float64frombits(e.stats.maintTargetCond.Load()) })
	reg.GaugeFunc("ingrass_maintenance_iteration_trend", "mean outer FCG iterations per solve over the latest evaluation window",
		func() float64 { return math.Float64frombits(e.stats.maintIterTrend.Load()) })
	reg.GaugeFunc("ingrass_maintenance_kappa", "latest periodic condition-number estimate",
		func() float64 { return math.Float64frombits(e.stats.maintKappa.Load()) })

	// Operator build info: one series per storage format, 1 on the format the
	// served generation froze (build-info idiom — the label carries the value).
	opFmt := func(want solver.Format) func() float64 {
		return func() float64 {
			if solver.Format(e.stats.opFormat.Load()) == want {
				return 1
			}
			return 0
		}
	}
	reg.GaugeFunc("ingrass_operator_format", "storage format of the served generation's frozen operators (1 = active)",
		opFmt(solver.FormatCSR), obs.Label{Key: "format", Value: "csr"})
	reg.GaugeFunc("ingrass_operator_format", "storage format of the served generation's frozen operators (1 = active)",
		opFmt(solver.FormatSELL), obs.Label{Key: "format", Value: "sell"})
	reg.GaugeFunc("ingrass_operator_sell_padding_ratio", "padding fraction of the SELL-frozen operator (0 under CSR)",
		func() float64 { return math.Float64frombits(e.stats.opPadding.Load()) })
	reg.GaugeFunc("ingrass_operator_arena_reserved_bytes", "arena bytes reserved by the served generation's frozen operators",
		func() float64 { return float64(e.stats.arenaBytes.Load()) })

	ctr("ingrass_batch_groups_total", "executed blocked multi-RHS groups",
		func() uint64 { return e.sched.Stats().BatchesFormed })
	ctr("ingrass_batch_columns_total", "right-hand sides across all blocked groups",
		func() uint64 { return e.sched.Stats().ColumnsTotal })
	ctr("ingrass_batch_requests_coalesced_total", "requests that shared a group with others",
		func() uint64 { return e.sched.Stats().RequestsCoalesced })
	reg.GaugeFunc("ingrass_batch_queue_depth", "requests admitted to the scheduler but not yet executed",
		func() float64 { return float64(e.sched.Stats().QueueDepth) })
}
