package service

import (
	"errors"
	"fmt"
	"math"

	"ingrass/internal/core"
	"ingrass/internal/wal"
)

// Replica engines are the follower side of the replication tier
// (internal/repl): a read-only Engine whose state advances exclusively by
// replaying the primary's WAL records through the exact code path recovery
// uses — so a follower at generation G is bit-identical to the primary at
// generation G, the invariant TestRestoreReplaysIdentically already proves
// for restarts. Every read path (snapshots, solves, the batched query
// scheduler) works unchanged; every write path returns ErrReadOnly.

// Replica errors.
var (
	// ErrReadOnly reports a mutation on a read-only replica engine; writes
	// go to the primary.
	ErrReadOnly = errors.New("service: read-only replica; writes go to the primary")
	// ErrGenerationGap reports an ApplyRecord whose generation does not
	// directly follow the replica's: applying it would silently diverge
	// from the primary. The follower must re-fetch (or re-bootstrap from a
	// checkpoint) instead.
	ErrGenerationGap = errors.New("service: replication record out of sequence")
)

// NewReplica builds a read-only engine from a primary checkpoint image.
// The replica starts serving at the checkpoint generation immediately;
// catch-up happens record by record through ApplyRecord.
func NewReplica(ck wal.Checkpoint, opts Options) (*Engine, error) {
	sp, err := core.RestoreSparsifier(ck.State)
	if err != nil {
		return nil, err
	}
	opts.ReadOnly = true
	opts.Store = nil
	opts.InitialGeneration = ck.Gen
	return New(sp, opts), nil
}

// ApplyRecord replays one primary WAL record against the replica and
// publishes the resulting generation. Records must arrive in exact
// generation order: a gap returns ErrGenerationGap and applies nothing
// (the divergence guard — a missed record would make every later
// generation silently wrong). A record at or below the current generation
// is a harmless duplicate and is skipped.
func (e *Engine) ApplyRecord(rec wal.BatchRecord) error {
	if !e.opts.ReadOnly {
		return errors.New("service: ApplyRecord on a writable engine")
	}
	if e.closed.Load() {
		return ErrClosed
	}
	e.mu.Lock()
	gen := e.stats.generation.Load()
	if rec.Gen <= gen {
		e.mu.Unlock()
		return nil
	}
	if rec.Gen != gen+1 {
		e.mu.Unlock()
		return fmt.Errorf("%w: replica at %d, record %d", ErrGenerationGap, gen, rec.Gen)
	}
	if rec.Maint != nil {
		if err := e.sp.AdoptBasis(rec.Maint.HBase, rec.Maint.TargetCond); err != nil {
			e.mu.Unlock()
			return fmt.Errorf("service: apply gen %d maintenance swap: %w", rec.Gen, err)
		}
		e.stats.maintRebuilds.Add(1)
		e.stats.maintLastGen.Store(rec.Gen)
		e.stats.maintTargetCond.Store(math.Float64bits(rec.Maint.TargetCond))
	} else {
		if len(rec.Adds) > 0 {
			if _, err := e.sp.ApplyBatch(rec.Adds, nil); err != nil {
				e.mu.Unlock()
				return fmt.Errorf("service: apply gen %d adds: %w", rec.Gen, err)
			}
			e.stats.flushedAdds.Add(uint64(len(rec.Adds)))
		}
		for i, batch := range rec.DelBatches {
			if _, err := e.sp.DeleteEdges(batch); err != nil {
				e.mu.Unlock()
				return fmt.Errorf("service: apply gen %d delete batch %d: %w", rec.Gen, i, err)
			}
			e.stats.flushedDeletes.Add(uint64(len(batch)))
		}
	}
	e.stats.flushes.Add(1)
	e.stats.generation.Store(rec.Gen)
	snap := newSnapshot(rec.Gen, e.sp.G.Snapshot(), e.sp.H.Snapshot(), &e.stats, e.opts.Solver)
	e.mu.Unlock()
	e.reg.Publish(snap)
	return nil
}

// ResetReplica rebases the replica onto a newer checkpoint image — the
// re-bootstrap path after the primary pruned past the replica's position.
// The engine object (and with it the metrics bridges and query scheduler)
// stays; only the sparsifier state and generation are replaced. A
// checkpoint at or below the current generation is refused: generations
// published to readers must stay monotonic.
func (e *Engine) ResetReplica(ck wal.Checkpoint) error {
	if !e.opts.ReadOnly {
		return errors.New("service: ResetReplica on a writable engine")
	}
	if e.closed.Load() {
		return ErrClosed
	}
	sp, err := core.RestoreSparsifier(ck.State)
	if err != nil {
		return err
	}
	e.mu.Lock()
	if ck.Gen <= e.stats.generation.Load() {
		e.mu.Unlock()
		return fmt.Errorf("%w: re-bootstrap checkpoint %d behind replica %d",
			ErrGenerationGap, ck.Gen, e.stats.generation.Load())
	}
	e.sp = sp
	e.stats.generation.Store(ck.Gen)
	snap := newSnapshot(ck.Gen, sp.G.Snapshot(), sp.H.Snapshot(), &e.stats, e.opts.Solver)
	e.mu.Unlock()
	e.reg.Publish(snap)
	return nil
}
