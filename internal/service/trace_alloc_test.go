package service

import (
	"context"
	"testing"

	"ingrass/internal/obs/trace"
	"ingrass/internal/solver"
)

// TestWarmSolveAllocationFreeTracingOff is the sampling-off property from
// the tracing design: a solve on a context that carries no span must record
// zero spans into an active recorder AND stay allocation-free — the
// untraced path is one context lookup returning the inert zero Span.
func TestWarmSolveAllocationFreeTracingOff(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are not meaningful")
	}
	rec := trace.NewRecorder(trace.Options{SampleRate: 1, Seed: 3})
	root := rec.StartRequest("solve", trace.Remote{})

	e := newEngine(t, 16, 16, Options{})
	snap := e.Current()
	n := snap.G.NumNodes()
	rhs := warmRHS(n)
	x := make([]float64, n)
	ctx := context.Background() // deliberately NOT carrying root
	opts := solver.Options{Tol: 1e-8}

	for i := 0; i < 3; i++ {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1.0 {
		t.Fatalf("untraced warm SolveInto allocates %.2f objects/op, want ~0", allocs)
	}

	ts := rec.Finish(root, 200)
	if ts == nil {
		t.Fatal("sampled trace not retained")
	}
	if len(ts.Spans) != 1 {
		t.Fatalf("untraced solves leaked %d spans into the trace (want only the root)", len(ts.Spans))
	}
}

// TestWarmSolveAllocationFreeTracingOn is the sampling-ON allocation gate:
// with a live span in the request context, the pooled span recorder must
// add zero allocations to the warm solve path. The traced context is built
// once at request setup (NewContext allocates there, by design); everything
// per-solve — StartChild, SetAttr, End, including the span-buffer overflow
// path once MaxSpans is hit — is atomics only.
func TestWarmSolveAllocationFreeTracingOn(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are not meaningful")
	}
	rec := trace.NewRecorder(trace.Options{SampleRate: 1, Seed: 3})
	root := rec.StartRequest("solve", trace.Remote{})
	if !root.Tracing() {
		t.Fatal("SampleRate=1 root not tracing")
	}

	e := newEngine(t, 16, 16, Options{})
	snap := e.Current()
	n := snap.G.NumNodes()
	rhs := warmRHS(n)
	x := make([]float64, n)
	ctx := trace.NewContext(context.Background(), root) // once, at "request setup"
	opts := solver.Options{Tol: 1e-8}

	for i := 0; i < 3; i++ {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1.0 {
		t.Fatalf("traced warm SolveInto allocates %.2f objects/op, want ~0", allocs)
	}

	ts := rec.Finish(root, 200)
	if ts == nil {
		t.Fatal("sampled trace not retained")
	}
	// The solves above must actually have recorded solve spans (the gate is
	// meaningless if the traced path silently no-opped).
	var outer, inner int
	for _, s := range ts.Spans {
		switch s.Name {
		case "solve_outer":
			outer++
		case "solve_inner":
			inner++
		}
	}
	if outer == 0 || inner == 0 {
		t.Fatalf("traced solves recorded %d outer / %d inner spans, want both > 0", outer, inner)
	}
}
