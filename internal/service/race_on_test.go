//go:build race

package service

// raceEnabled reports whether the race detector is active. sync.Pool
// deliberately drops items under -race to widen interleavings, so
// allocation-count assertions are only meaningful without it.
const raceEnabled = true
