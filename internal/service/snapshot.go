package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ingrass/internal/cond"
	"ingrass/internal/graph"
	"ingrass/internal/precond"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// Snapshot is one immutable generation of the service's state: copy-on-write
// views of the original graph G and the sparsifier H taken after a write
// batch fully landed, plus a lazily-built, generation-cached preconditioner
// factorization. All read operations (solves, resistance queries,
// condition-number checks, exports) run against a Snapshot and therefore
// never observe a half-applied batch.
type Snapshot struct {
	// Gen is the generation number: it increments once per applied write
	// batch.
	Gen uint64
	// G and H are the frozen original graph and sparsifier for this
	// generation. They must be treated as read-only.
	G, H *graph.Graph

	stats *Stats
	sopts solver.Options

	// The factorized preconditioner and the frozen, projected system
	// operator are built on first use and shared by every subsequent solve
	// on this generation — the "skip setup on repeated solves" cache.
	once    sync.Once
	gop     *sparse.LapOperator
	proj    *sparse.ProjectedOperator
	fact    *precond.Factorization
	factErr error
}

func newSnapshot(gen uint64, g, h *graph.Graph, stats *Stats, sopts solver.Options) *Snapshot {
	return &Snapshot{Gen: gen, G: g, H: h, stats: stats, sopts: sopts}
}

// ensureFactorized builds the per-generation solve state exactly once and
// accounts builds vs reuses.
func (s *Snapshot) ensureFactorized() error {
	first := false
	s.once.Do(func() {
		first = true
		gop := sparse.NewLapOperator(s.G)
		gop.SetWorkers(s.sopts.Workers)
		gop.SetFormat(s.sopts.Format)
		if f := s.stats.spmvObserver(gop.Format()); f != nil {
			gop.SetSpMVObserver(f)
		}
		s.gop = gop
		s.proj = &sparse.ProjectedOperator{Inner: gop}
		s.fact, s.factErr = precond.Factorize(s.H, s.sopts)
		if s.factErr == nil {
			hop := s.fact.Operator()
			if f := s.stats.spmvObserver(hop.Format()); f != nil {
				hop.SetSpMVObserver(f)
			}
			s.stats.noteOperators(gop, hop)
		}
		s.stats.precondBuilds.Add(1)
	})
	if !first && s.factErr == nil {
		s.stats.precondReuses.Add(1)
	}
	return s.factErr
}

// SolveStats reports one snapshot solve.
type SolveStats struct {
	Generation  uint64
	Iterations  int
	Residual    float64
	Converged   bool
	PrecondUses int
}

// SolveInto computes x = L_G^+ b against this snapshot via sparsifier-
// preconditioned flexible CG, writing the solution into the caller-provided
// x. It is safe to call from any number of goroutines; each call checks a
// pooled, goroutine-confined solve state out of the shared factorization,
// so the warm path allocates nothing. opts overrides the engine solve
// defaults field-wise for this request; ctx aborts the solve within one
// iteration of cancellation (partial stats are still returned).
func (s *Snapshot) SolveInto(ctx context.Context, x, b []float64, opts solver.Options) (SolveStats, error) {
	if len(b) != s.G.NumNodes() {
		return SolveStats{}, fmt.Errorf("service: rhs length %d != %d nodes", len(b), s.G.NumNodes())
	}
	if len(x) != len(b) {
		return SolveStats{}, fmt.Errorf("service: solution length %d != rhs length %d", len(x), len(b))
	}
	if err := s.ensureFactorized(); err != nil {
		return SolveStats{}, err
	}
	start := time.Now()
	res, err := s.fact.Solve(ctx, s.proj, x, b, opts)
	st := SolveStats{
		Generation:  s.Gen,
		Iterations:  res.Outer.Iterations,
		Residual:    res.Outer.Residual,
		Converged:   res.Outer.Converged,
		PrecondUses: res.InnerUses,
	}
	s.stats.solves.Add(1)
	s.stats.solveIters.Add(uint64(res.Outer.Iterations))
	s.stats.solveDur.ObserveSince(start)
	s.stats.solveIterH.Observe(int64(res.Outer.Iterations))
	s.stats.recordSolveOutcome(err)
	return st, err
}

// BlockSolveStats reports the group-level outcome of one blocked solve.
type BlockSolveStats struct {
	Generation uint64
	// InnerUses counts blocked preconditioner applications — each one is a
	// truncated inner solve shared by the whole active column set.
	InnerUses int
}

// SolveBlockInto computes x[j] = L_G^+ b[j] for a whole block of right-hand
// sides in one blocked flexible-CG solve against this snapshot: the CSR
// structures of G and H are traversed once per iteration for all columns
// instead of once per column, which is where the batched query engine's
// throughput comes from. Per-column outcomes land in out; colCtx optionally
// cancels single columns (masked without aborting the group — see
// sparse.BlockSpec). Column j's result is bit-identical to an independent
// SolveInto of b[j] with the same options.
//
// Safe for any number of concurrent goroutines; the warm path allocates
// nothing (the per-call blocked solve state is pooled on the shared
// factorization). Blocks wider than sparse.MaxBlockWidth are rejected;
// chunking is the caller's job (the public API chunks transparently).
func (s *Snapshot) SolveBlockInto(ctx context.Context, xs, bs [][]float64, out []sparse.ColumnResult, colCtx []context.Context, opts solver.Options) (BlockSolveStats, error) {
	n := s.G.NumNodes()
	w := len(xs)
	if len(bs) != w || len(out) != w {
		return BlockSolveStats{}, fmt.Errorf("service: block widths xs=%d bs=%d out=%d", w, len(bs), len(out))
	}
	for j := 0; j < w; j++ {
		if len(bs[j]) != n || len(xs[j]) != n {
			return BlockSolveStats{}, fmt.Errorf("service: block column %d dims x=%d b=%d vs %d nodes", j, len(xs[j]), len(bs[j]), n)
		}
	}
	if err := s.ensureFactorized(); err != nil {
		return BlockSolveStats{}, err
	}
	start := time.Now()
	inner, err := s.fact.SolveBlock(ctx, s.proj, xs, bs, out, colCtx, opts)
	elapsed := time.Since(start)
	s.stats.blockDur.Observe(int64(elapsed))
	for j := 0; j < w; j++ {
		s.stats.solves.Add(1)
		s.stats.solveIters.Add(uint64(out[j].Iterations))
		s.stats.solveIterH.Observe(int64(out[j].Iterations))
		// Each coalesced column experienced the block's duration as its
		// service time; recording it keeps solve_duration_seconds_count in
		// step with solves_total whichever path a solve took.
		s.stats.solveDur.Observe(int64(elapsed))
		cerr := err
		if cerr == nil {
			cerr = out[j].Err
		}
		s.stats.recordSolveOutcome(cerr)
	}
	return BlockSolveStats{Generation: s.Gen, InnerUses: inner}, err
}

// Solve is SolveInto with a freshly allocated solution vector.
func (s *Snapshot) Solve(ctx context.Context, b []float64, opts solver.Options) ([]float64, SolveStats, error) {
	if len(b) != s.G.NumNodes() {
		return nil, SolveStats{}, fmt.Errorf("service: rhs length %d != %d nodes", len(b), s.G.NumNodes())
	}
	x := make([]float64, len(b))
	st, err := s.SolveInto(ctx, x, b, opts)
	if err != nil {
		return x, st, err
	}
	return x, st, nil
}

// EffectiveResistance computes the effective resistance between u and v on
// this snapshot's original graph, reusing the cached preconditioner.
// Scratch comes from the snapshot operator's workspace pool, so warm
// queries allocate nothing.
func (s *Snapshot) EffectiveResistance(ctx context.Context, u, v int) (float64, error) {
	n := s.G.NumNodes()
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, fmt.Errorf("service: resistance endpoints (%d, %d) out of range [0, %d)", u, v, n)
	}
	s.stats.resistQueries.Add(1)
	if u == v {
		return 0, nil
	}
	if err := s.ensureFactorized(); err != nil {
		return 0, err
	}
	pool := s.gop.Workspaces()
	ws := pool.Get()
	defer pool.Put(ws)
	b := ws.Take()
	x := ws.Take()
	vecmath.Basis(b, u, v)
	if _, err := s.fact.Solve(ctx, s.proj, x, b, solver.Options{}); err != nil {
		return 0, err
	}
	return x[u] - x[v], nil
}

// ConditionNumber estimates kappa(L_G, L_H) for this snapshot — the
// spectral-similarity health check. ctx cancellation aborts the power
// iteration between steps.
func (s *Snapshot) ConditionNumber(ctx context.Context, seed uint64) (float64, error) {
	s.stats.condQueries.Add(1)
	res, err := cond.Estimate(ctx, s.G, s.H, cond.Options{
		Seed:          seed,
		LambdaMaxOnly: true,
		Solver:        solver.Options{Workers: s.sopts.Workers},
	})
	if err != nil {
		return 0, err
	}
	return res.Kappa, nil
}

// ExportSparsifier returns this generation's sparsifier view (read-only).
func (s *Snapshot) ExportSparsifier() *graph.Graph {
	s.stats.exports.Add(1)
	return s.H
}

// Registry retains the most recent snapshots by generation so slightly
// stale readers (e.g. an HTTP client paging through an export while writes
// continue) can pin a generation. Older generations are evicted; their
// memory is reclaimed once readers drop them.
type Registry struct {
	mu     sync.RWMutex
	retain int
	ring   []*Snapshot // most recent last
	cur    *Snapshot
}

// NewRegistry retains up to retain snapshots (minimum 1).
func NewRegistry(retain int) *Registry {
	if retain < 1 {
		retain = 1
	}
	return &Registry{retain: retain}
}

// Publish installs snap as the current snapshot.
func (r *Registry) Publish(snap *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cur = snap
	r.ring = append(r.ring, snap)
	if len(r.ring) > r.retain {
		r.ring = append(r.ring[:0], r.ring[len(r.ring)-r.retain:]...)
	}
}

// Current returns the latest snapshot.
func (r *Registry) Current() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur
}

// TrimTo evicts all but the newest keep retained snapshots (minimum 1),
// returning how many were dropped. The maintenance swap path uses it as a
// GC pressure valve: generations predating a basis swap hold
// factorizations of a superseded embedding, and clearing the registry's
// references (the backing slots are nilled, not just re-sliced) lets their
// arena reservations and workspace pools free as soon as pinned readers
// drain. The current snapshot is never evicted.
func (r *Registry) TrimTo(keep int) int {
	if keep < 1 {
		keep = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) <= keep {
		return 0
	}
	dropped := len(r.ring) - keep
	kept := copy(r.ring, r.ring[dropped:])
	for i := kept; i < len(r.ring); i++ {
		r.ring[i] = nil
	}
	r.ring = r.ring[:kept]
	return dropped
}

// At returns the retained snapshot with the given generation, if any.
func (r *Registry) At(gen uint64) (*Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := len(r.ring) - 1; i >= 0; i-- {
		if r.ring[i].Gen == gen {
			return r.ring[i], true
		}
	}
	return nil, false
}

// Generations lists the retained generations, oldest first.
func (r *Registry) Generations() []uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]uint64, len(r.ring))
	for i, s := range r.ring {
		out[i] = s.Gen
	}
	return out
}
