package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
	"ingrass/internal/wal"
)

func warmRHS(n int) []float64 {
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}
	vecmath.CenterMean(rhs)
	return rhs
}

// TestWarmSolveAllocationFree is the allocation-regression gate from the
// roadmap's bounded-per-request-work goal: once the per-generation
// factorization and the workspace pools are warm, SolveInto must not
// allocate — all scratch comes from pooled workspaces. The budget of 1.0
// absorbs rare pool refills when GC empties a sync.Pool mid-run; the
// steady-state count is 0.
func TestWarmSolveAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are not meaningful")
	}
	e := newEngine(t, 16, 16, Options{})
	snap := e.Current()
	n := snap.G.NumNodes()
	rhs := warmRHS(n)
	x := make([]float64, n)
	ctx := context.Background()
	opts := solver.Options{Tol: 1e-8}

	// Warm the factorization, the state pool, and the workspace pools.
	for i := 0; i < 3; i++ {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(50, func() {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1.0 {
		t.Fatalf("warm SolveInto allocates %.2f objects/op, want ~0", allocs)
	}
}

// TestWarmSolveAllocationFreeSELL pins the same zero-allocation budget on
// the SELL-frozen operator path: the arena-backed SELL build happens once at
// factorization, so warm solves through the column-major chunk kernels must
// be exactly as allocation-free as the CSR path.
func TestWarmSolveAllocationFreeSELL(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are not meaningful")
	}
	e := newEngine(t, 16, 16, Options{Solver: solver.Options{Format: solver.FormatSELL}})
	snap := e.Current()
	if err := snap.ensureFactorized(); err != nil {
		t.Fatal(err)
	}
	if got := snap.gop.Format(); got != solver.FormatSELL {
		t.Fatalf("engine froze %v, want forced SELL", got)
	}
	n := snap.G.NumNodes()
	rhs := warmRHS(n)
	x := make([]float64, n)
	ctx := context.Background()
	opts := solver.Options{Tol: 1e-8}

	for i := 0; i < 3; i++ {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(50, func() {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1.0 {
		t.Fatalf("warm SELL SolveInto allocates %.2f objects/op, want ~0", allocs)
	}
}

// TestWarmSolveAllocationFreeWithWAL pins the same zero-allocation budget
// with durability enabled: the WAL sits on the write path only, so warm
// solves must not pick up a single allocation from it — even on an engine
// that has logged writes and checkpointed.
func TestWarmSolveAllocationFreeWithWAL(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are not meaningful")
	}
	e, _ := newDurableEngine(t, 16, 16, Options{MaxBatch: 1}, t.TempDir(), wal.Options{})
	n := e.Current().G.NumNodes()
	// Exercise the durable write path so the engine is past generation 0.
	ctx := context.Background()
	if _, err := e.Add(ctx, []graph.Edge{{U: 0, V: n - 1, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap := e.Current()
	rhs := warmRHS(n)
	x := make([]float64, n)
	opts := solver.Options{Tol: 1e-8}
	for i := 0; i < 3; i++ {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1.0 {
		t.Fatalf("warm SolveInto with WAL allocates %.2f objects/op, want ~0", allocs)
	}
}

// TestWarmResistanceAllocationFree covers the second read path that used
// to allocate rhs/solution vectors per query.
func TestWarmResistanceAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are not meaningful")
	}
	e := newEngine(t, 12, 12, Options{})
	snap := e.Current()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := snap.EffectiveResistance(ctx, 0, 5); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := snap.EffectiveResistance(ctx, 0, 5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1.0 {
		t.Fatalf("warm EffectiveResistance allocates %.2f objects/op, want ~0", allocs)
	}
}

// TestSolveCancelledContext is the service-level acceptance check: a solve
// issued with an already-cancelled context returns an ErrCancelled-matching
// error without consuming any iteration budget.
func TestSolveCancelledContext(t *testing.T) {
	e := newEngine(t, 12, 12, Options{})
	snap := e.Current()
	rhs := warmRHS(snap.G.NumNodes())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, st, err := snap.Solve(ctx, rhs, solver.Options{})
	if !errors.Is(err, solver.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCancelled/context.Canceled, got %v", err)
	}
	if st.Iterations != 0 {
		t.Fatalf("cancelled solve reported %d iterations", st.Iterations)
	}
	if _, err := snap.EffectiveResistance(ctx, 0, 1); !errors.Is(err, solver.ErrCancelled) {
		t.Fatalf("resistance on cancelled ctx: want ErrCancelled, got %v", err)
	}
	if _, err := snap.ConditionNumber(ctx, 1); !errors.Is(err, solver.ErrCancelled) {
		t.Fatalf("cond on cancelled ctx: want ErrCancelled, got %v", err)
	}
}

// TestSolvePerRequestOptions checks that the unified options reach the
// innermost loop: a one-iteration budget must abort with ErrNoConvergence
// after exactly one outer iteration.
func TestSolvePerRequestOptions(t *testing.T) {
	e := newEngine(t, 12, 12, Options{})
	snap := e.Current()
	rhs := warmRHS(snap.G.NumNodes())
	_, st, err := snap.Solve(context.Background(), rhs, solver.Options{Tol: 1e-14, MaxIter: 1})
	if !errors.Is(err, solver.ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
	if st.Iterations != 1 {
		t.Fatalf("MaxIter=1 ran %d iterations", st.Iterations)
	}
}

// TestWorkspacePoolHammer drives concurrent solves against one snapshot
// under -race: every pooled solve state and workspace checkout must be
// exclusively owned while in flight, and every solution must be correct
// (detecting scratch shared across goroutines, which would corrupt
// results long before the race detector fires).
func TestWorkspacePoolHammer(t *testing.T) {
	e := newEngine(t, 16, 16, Options{})
	snap := e.Current()
	n := snap.G.NumNodes()
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rhs := make([]float64, n)
			x := make([]float64, n)
			lx := make([]float64, n)
			for it := 0; it < 25; it++ {
				// Distinct RHS per goroutine+iteration so cross-talk between
				// workspaces shows up as a wrong residual.
				for i := range rhs {
					rhs[i] = math.Sin(float64(i*(id+1) + it))
				}
				vecmath.CenterMean(rhs)
				st, err := snap.SolveInto(ctx, x, rhs, solver.Options{Tol: 1e-8})
				if err != nil || !st.Converged {
					t.Errorf("goroutine %d iter %d: err=%v converged=%v", id, it, err, st.Converged)
					return
				}
				snap.G.LapMul(lx, x)
				vecmath.Sub(lx, lx, rhs)
				if vecmath.Norm2(lx) > 1e-6*vecmath.Norm2(rhs) {
					t.Errorf("goroutine %d iter %d: residual %g — workspace corruption?",
						id, it, vecmath.Norm2(lx))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkSolveWarm reports ns/op and allocs/op for the warm solve path;
// CI's allocation smoke step runs it with -benchmem and the companion
// TestWarmSolveAllocationFree asserts the budget.
func BenchmarkSolveWarm(b *testing.B) {
	e := newEngine(b, 16, 16, Options{})
	snap := e.Current()
	n := snap.G.NumNodes()
	rhs := warmRHS(n)
	x := make([]float64, n)
	ctx := context.Background()
	opts := solver.Options{Tol: 1e-8}
	if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.SolveInto(ctx, x, rhs, opts); err != nil {
			b.Fatal(err)
		}
	}
}
