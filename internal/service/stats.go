package service

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"

	"ingrass/internal/obs"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
)

// Stats holds the engine's lock-free counters. Readers and the writer
// goroutine bump them concurrently; View materializes a consistent-enough
// plain struct for reporting (individual counters are exact, cross-counter
// skew of a few operations is acceptable for monitoring).
type Stats struct {
	generation     atomic.Uint64
	solves         atomic.Uint64
	solveIters     atomic.Uint64
	precondBuilds  atomic.Uint64
	precondReuses  atomic.Uint64
	resistQueries  atomic.Uint64
	condQueries    atomic.Uint64
	exports        atomic.Uint64
	writeRequests  atomic.Uint64
	writeErrors    atomic.Uint64
	flushes        atomic.Uint64
	flushedAdds    atomic.Uint64
	flushedDeletes atomic.Uint64
	queueDepth     atomic.Int64

	// Solver failure-mode counters, classified per finished solve (or solve
	// column): exhausted iteration budgets, deadline expiries, and client
	// cancellations — the 422/408/499 classes at the HTTP layer.
	solveNoConv   atomic.Uint64
	solveDeadline atomic.Uint64
	solveCancel   atomic.Uint64

	// Durability counters (zero on engines without a store).
	walAppends     atomic.Uint64
	walBytes       atomic.Uint64
	walErrors      atomic.Uint64
	checkpoints    atomic.Uint64
	lastCheckpoint atomic.Uint64

	// Closed-loop maintenance counters (maintenance.go). Triggers are
	// split by reason; rebuilds count published swaps, failures any stage
	// that aborted one. The Float64bits gauges track the tuned TargetCond
	// knob, the iteration-mean trend the tuner steers by, and the latest
	// kappa estimate.
	maintTrigIters  atomic.Uint64
	maintTrigCond   atomic.Uint64
	maintTrigChurn  atomic.Uint64
	maintTrigManual atomic.Uint64
	maintRebuilds   atomic.Uint64
	maintFailures   atomic.Uint64
	maintLastGen    atomic.Uint64
	maintState      atomic.Int32
	maintTargetCond atomic.Uint64 // Float64bits
	maintIterTrend  atomic.Uint64 // Float64bits
	maintKappa      atomic.Uint64 // Float64bits
	gensEvicted     atomic.Uint64

	// Frozen-operator shape of the generation currently served, recorded at
	// factorization time: the storage format of the G operator, its SELL
	// padding ratio (Float64bits), and the arena bytes reserved across the
	// G and H operators (0 when CSR-frozen, which allocates on the heap).
	opFormat   atomic.Uint32
	opPadding  atomic.Uint64
	arenaBytes atomic.Uint64

	// Latency/shape histograms, created when a metrics registry is attached
	// (Options.Obs) and nil otherwise — every observe site records
	// unconditionally through the nil-safe receivers, so the unwired cost is
	// a few predicted branches.
	solveDur   *obs.Histogram // per single-RHS solve, ns
	blockDur   *obs.Histogram // per blocked multi-RHS execution, ns
	solveIterH *obs.Histogram // outer FCG iterations per solve column

	// Per-format SpMV duration histograms; frozen operators of each format
	// feed their own series, so /metrics attributes kernel time to the
	// layout that produced it.
	spmvDurCSR  *obs.Histogram
	spmvDurSELL *obs.Histogram

	// Maintenance pipeline latencies: the offline basis build (lock-free)
	// and the in-lock adoption swap.
	maintRebuildDur *obs.Histogram
	maintSwapDur    *obs.Histogram
}

// noteMaintTrigger counts one fired maintenance trigger by reason.
func (s *Stats) noteMaintTrigger(r MaintReason) {
	switch r {
	case MaintReasonIters:
		s.maintTrigIters.Add(1)
	case MaintReasonCond:
		s.maintTrigCond.Add(1)
	case MaintReasonChurn:
		s.maintTrigChurn.Add(1)
	case MaintReasonManual:
		s.maintTrigManual.Add(1)
	}
}

// noteOperators records the frozen shape of a generation's operators after
// factorization.
func (s *Stats) noteOperators(gop, hop *sparse.LapOperator) {
	s.opFormat.Store(uint32(gop.Format()))
	s.opPadding.Store(math.Float64bits(gop.PaddingRatio()))
	_, gr, _ := gop.ArenaStats()
	_, hr, _ := hop.ArenaStats()
	s.arenaBytes.Store(uint64(gr + hr))
}

// spmvObserver returns the SpMV wall-time observer for operators frozen in
// format f, or nil when no metrics registry is attached (keeping the hot
// path free of timing calls).
func (s *Stats) spmvObserver(f solver.Format) func(time.Duration) {
	h := s.spmvDurCSR
	if f == solver.FormatSELL {
		h = s.spmvDurSELL
	}
	if h == nil {
		return nil
	}
	return func(d time.Duration) { h.Observe(int64(d)) }
}

// recordSolveOutcome classifies one finished solve (or solve column) into
// the failure-mode counters. Deadline expiry is checked before the general
// cancellation class because solver.Cancelled wraps both causes under
// ErrCancelled.
func (s *Stats) recordSolveOutcome(err error) {
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.solveDeadline.Add(1)
	case errors.Is(err, solver.ErrCancelled):
		s.solveCancel.Add(1)
	case errors.Is(err, solver.ErrNoConvergence):
		s.solveNoConv.Add(1)
	}
}

// StatsView is a plain copy of the counters, JSON-friendly for /stats.
type StatsView struct {
	// Generation is the snapshot generation currently being served.
	Generation uint64 `json:"generation"`
	// Solves counts completed Laplacian solves; SolveIters their total
	// outer FCG iterations.
	Solves     uint64 `json:"solves"`
	SolveIters uint64 `json:"solve_iters"`
	// PrecondBuilds counts preconditioner factorizations; PrecondReuses
	// counts solves that reused an already-factorized generation. Reuses
	// dominating builds is the cached-preconditioner path working.
	PrecondBuilds uint64 `json:"precond_builds"`
	PrecondReuses uint64 `json:"precond_reuses"`
	// ResistanceQueries / CondQueries / SparsifierExports count the other
	// read endpoints.
	ResistanceQueries uint64 `json:"resistance_queries"`
	CondQueries       uint64 `json:"cond_queries"`
	SparsifierExports uint64 `json:"sparsifier_exports"`
	// WriteRequests counts enqueued write requests; WriteErrors those that
	// failed validation or application.
	WriteRequests uint64 `json:"write_requests"`
	WriteErrors   uint64 `json:"write_errors"`
	// Flushes counts batch applications; FlushedAdds / FlushedDeletes the
	// edges they carried. Flushes << WriteRequests means coalescing works.
	Flushes        uint64 `json:"flushes"`
	FlushedAdds    uint64 `json:"flushed_adds"`
	FlushedDeletes uint64 `json:"flushed_deletes"`
	// QueueDepth is the number of write requests awaiting a flush.
	QueueDepth int64 `json:"queue_depth"`
	// Solver failure-mode counters: iteration-budget exhaustion (HTTP 422),
	// deadline expiry (408), and client cancellation (499).
	SolveNoConvergence    uint64 `json:"solve_no_convergence"`
	SolveDeadlineExceeded uint64 `json:"solve_deadline_exceeded"`
	SolveCancelled        uint64 `json:"solve_cancelled"`
	// SolveLatency digests the per-solve wall-clock histogram in seconds.
	// Zero until a metrics registry is attached (Options.Obs).
	SolveLatency obs.Summary `json:"solve_latency_seconds"`
	// OperatorFormat names the frozen sparse layout ("csr" or "sell") of the
	// generation currently served; OperatorPaddingRatio its SELL padding
	// fraction (0 for CSR) and OperatorArenaBytes the arena bytes reserved
	// across the G and H operators (0 when CSR-frozen).
	OperatorFormat       string  `json:"operator_format"`
	OperatorPaddingRatio float64 `json:"operator_padding_ratio"`
	OperatorArenaBytes   uint64  `json:"operator_arena_bytes"`
	// WALAppends / WALBytes count batches logged to the write-ahead log and
	// their framed size; WALErrors counts failed appends (each one degrades
	// durability until the next successful checkpoint). Checkpoints counts
	// completed checkpoints and LastCheckpointGen the generation the newest
	// one covers.
	WALAppends        uint64 `json:"wal_appends"`
	WALBytes          uint64 `json:"wal_bytes"`
	WALErrors         uint64 `json:"wal_errors"`
	Checkpoints       uint64 `json:"checkpoints"`
	LastCheckpointGen uint64 `json:"last_checkpoint_gen"`
	// Batched query engine counters (filled from the scheduler by
	// Engine.Stats): BatchesFormed counts executed blocked groups,
	// RequestsCoalesced the requests that shared a group with others,
	// AvgBlockFill the mean right-hand sides per group, and BatchQueueDepth
	// the requests admitted but not yet executed. AvgBlockFill near the
	// configured MaxBlock under load means coalescing is working.
	BatchesFormed     uint64  `json:"batches_formed"`
	RequestsCoalesced uint64  `json:"requests_coalesced"`
	AvgBlockFill      float64 `json:"avg_block_fill"`
	BatchQueueDepth   int64   `json:"batch_queue_depth"`
	// Closed-loop maintenance: trigger counts by reason, completed /
	// failed background rebuilds, the generation the newest swap
	// published, the controller state, the (auto-tuned) TargetCond knob
	// position, the iteration-mean trend the loop steers by, the latest
	// periodic kappa estimate, and snapshots evicted by the post-swap GC
	// pressure policy.
	MaintTriggersIterations uint64  `json:"maint_triggers_iterations"`
	MaintTriggersCond       uint64  `json:"maint_triggers_cond"`
	MaintTriggersChurn      uint64  `json:"maint_triggers_churn"`
	MaintTriggersManual     uint64  `json:"maint_triggers_manual"`
	MaintRebuilds           uint64  `json:"maint_rebuilds"`
	MaintFailures           uint64  `json:"maint_failures"`
	MaintLastGeneration     uint64  `json:"maint_last_generation"`
	MaintState              string  `json:"maint_state"`
	MaintTargetCond         float64 `json:"maint_target_cond"`
	MaintIterTrend          float64 `json:"maint_iter_trend"`
	MaintKappa              float64 `json:"maint_kappa"`
	GenerationsEvicted      uint64  `json:"generations_evicted"`
}

// View snapshots the counters.
func (s *Stats) View() StatsView {
	return StatsView{
		Generation:            s.generation.Load(),
		Solves:                s.solves.Load(),
		SolveIters:            s.solveIters.Load(),
		PrecondBuilds:         s.precondBuilds.Load(),
		PrecondReuses:         s.precondReuses.Load(),
		ResistanceQueries:     s.resistQueries.Load(),
		CondQueries:           s.condQueries.Load(),
		SparsifierExports:     s.exports.Load(),
		WriteRequests:         s.writeRequests.Load(),
		WriteErrors:           s.writeErrors.Load(),
		Flushes:               s.flushes.Load(),
		FlushedAdds:           s.flushedAdds.Load(),
		FlushedDeletes:        s.flushedDeletes.Load(),
		QueueDepth:            s.queueDepth.Load(),
		SolveNoConvergence:    s.solveNoConv.Load(),
		SolveDeadlineExceeded: s.solveDeadline.Load(),
		SolveCancelled:        s.solveCancel.Load(),
		SolveLatency:          s.solveDur.Summarize(),
		OperatorFormat:        solver.Format(s.opFormat.Load()).String(),
		OperatorPaddingRatio:  math.Float64frombits(s.opPadding.Load()),
		OperatorArenaBytes:    s.arenaBytes.Load(),
		WALAppends:            s.walAppends.Load(),
		WALBytes:              s.walBytes.Load(),
		WALErrors:             s.walErrors.Load(),
		Checkpoints:           s.checkpoints.Load(),
		LastCheckpointGen:     s.lastCheckpoint.Load(),

		MaintTriggersIterations: s.maintTrigIters.Load(),
		MaintTriggersCond:       s.maintTrigCond.Load(),
		MaintTriggersChurn:      s.maintTrigChurn.Load(),
		MaintTriggersManual:     s.maintTrigManual.Load(),
		MaintRebuilds:           s.maintRebuilds.Load(),
		MaintFailures:           s.maintFailures.Load(),
		MaintLastGeneration:     s.maintLastGen.Load(),
		MaintState:              MaintState(s.maintState.Load()).String(),
		MaintTargetCond:         math.Float64frombits(s.maintTargetCond.Load()),
		MaintIterTrend:          math.Float64frombits(s.maintIterTrend.Load()),
		MaintKappa:              math.Float64frombits(s.maintKappa.Load()),
		GenerationsEvicted:      s.gensEvicted.Load(),
	}
}
