package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ingrass/internal/core"
	"ingrass/internal/graph"
	"ingrass/internal/obs/trace"
	"ingrass/internal/wal"
)

// ErrClosed is returned for writes enqueued after Close.
var ErrClosed = errors.New("service: engine closed")

// errEmptyBatch rejects write requests that carry no edges.
var errEmptyBatch = errors.New("service: empty edge batch")

type opKind int

const (
	opAdd opKind = iota
	opDelete
	opBarrier
	// opMaintain carries a finished setup basis from a background rebuild;
	// the batcher flushes the pending batch and adopts it (maintenance.go),
	// so generation assignment and WAL appends stay single-writer-ordered.
	opMaintain
)

// WriteResult reports one completed write request.
type WriteResult struct {
	// Generation is the snapshot generation in which the write became
	// visible to readers.
	Generation uint64
	// Add-path counters (per the inGRASS filter).
	Included, Merged, Redistributed int
	// Delete-path counters.
	Deleted, Promoted int
}

// Pending is the future completed when a write request's batch flushes.
type Pending struct {
	done chan struct{}
	res  WriteResult
	err  error
}

func newPending() *Pending { return &Pending{done: make(chan struct{})} }

// Done is closed once the request has been applied (or rejected).
func (p *Pending) Done() <-chan struct{} { return p.done }

// Wait blocks until the request completes or ctx is cancelled.
func (p *Pending) Wait(ctx context.Context) (WriteResult, error) {
	select {
	case <-p.done:
		return p.res, p.err
	case <-ctx.Done():
		return WriteResult{}, ctx.Err()
	}
}

// Result returns the outcome; it must only be called after Done is closed.
func (p *Pending) Result() (WriteResult, error) { return p.res, p.err }

func (p *Pending) complete(res WriteResult, err error) {
	p.res, p.err = res, err
	close(p.done)
}

type request struct {
	kind  opKind
	edges []graph.Edge
	basis *core.SetupBasis // opMaintain only
	p     *Pending
	// span is the submitting request's trace span (inert when untraced);
	// the flush hangs WAL append/fsync spans under it.
	span trace.Span
}

// run is the single writer goroutine: it drains the request channel,
// coalesces requests until the batch reaches MaxBatch edges or the flush
// window elapses, applies each batch under the write lock (all insertions
// through one core.ApplyBatch pass; deletions per request, for exact error
// isolation), publishes a fresh snapshot, and completes the futures.
func (e *Engine) run() {
	defer e.wg.Done()
	var (
		batch      []*request
		batchEdges int
		timer      *time.Timer
		timerC     <-chan time.Time
	)
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	flush := func() {
		stopTimer()
		if len(batch) > 0 {
			e.flush(batch)
			batch, batchEdges = nil, 0
		}
	}
	accept := func(r *request) {
		if r.kind == opMaintain {
			// The swap is ordered after everything already accepted: flush
			// the pending batch first, then adopt.
			flush()
			e.applyMaintenance(r)
			return
		}
		batch = append(batch, r)
		batchEdges += len(r.edges)
		if r.kind == opBarrier || batchEdges >= e.opts.MaxBatch {
			flush()
			return
		}
		if timer == nil {
			timer = time.NewTimer(e.opts.FlushInterval)
			timerC = timer.C
		}
	}
	for {
		select {
		case r := <-e.reqs:
			accept(r)
		case <-timerC:
			timer, timerC = nil, nil
			flush()
		case <-e.quit:
			// Graceful shutdown: drain whatever is already enqueued and
			// flush it, so accepted writes are never silently dropped.
			for {
				select {
				case r := <-e.reqs:
					if r.kind == opMaintain {
						// Best-effort by design: the engine is going away, so
						// the rebuilt basis is simply dropped.
						r.p.complete(WriteResult{}, ErrClosed)
						continue
					}
					batch = append(batch, r)
				default:
					flush()
					return
				}
			}
		}
	}
}

// edgeKey identifies an edge payload for attributing coalesced decisions
// back to the requests that carried them.
type edgeKey struct {
	u, v int
	w    float64
}

// flush applies one coalesced batch and publishes the resulting snapshot.
func (e *Engine) flush(batch []*request) {
	var adds, dels []graph.Edge
	n := e.nodeCount()
	for _, r := range batch {
		switch r.kind {
		case opAdd:
			// Static validation up front so one malformed request fails
			// alone instead of poisoning the coalesced UpdateBatch.
			if err := validateAdds(r.edges, n); err != nil {
				r.p.complete(WriteResult{}, err)
				e.stats.writeErrors.Add(1)
				e.stats.queueDepth.Add(-1)
				r.kind, r.p = opBarrier, nil // consumed; skip during application
				continue
			}
			adds = append(adds, r.edges...)
		case opDelete:
			dels = append(dels, r.edges...)
		}
	}

	e.mu.Lock()
	var (
		decisions []decisionLite
		addErr    error
	)
	if len(adds) > 0 {
		res, err := e.sp.ApplyBatch(adds, nil)
		if err != nil {
			// Should be unreachable given the static validation above, but
			// fail the whole add phase rather than guessing.
			addErr = err
		} else {
			decs := res.Additions
			decisions = make([]decisionLite, 0, len(decs))
			for _, d := range decs {
				decisions = append(decisions, decisionLite{
					key:    edgeKey{u: d.Edge.U, v: d.Edge.V, w: d.Edge.W},
					action: d.Action,
				})
			}
		}
	}
	byKey := make(map[edgeKey][]int)
	for i, d := range decisions {
		byKey[d.key] = append(byKey[d.key], i)
	}

	// Delete requests apply per request: deletion validation depends on the
	// evolving state (an edge deleted by an earlier request in the same
	// flush must fail the later duplicate), and per-request application
	// gives exact error isolation at delete-stream rates.
	type delOutcome struct {
		res WriteResult
		err error
	}
	delResults := make(map[*request]delOutcome)
	for _, r := range batch {
		if r.kind != opDelete {
			continue
		}
		out := delOutcome{}
		results, err := e.sp.DeleteEdges(r.edges)
		if err != nil {
			out.err = err
		} else {
			out.res.Deleted = len(results)
			for _, dr := range results {
				if dr.Replacement >= 0 {
					out.res.Promoted++
				}
			}
		}
		delResults[r] = out
	}

	mutated := len(adds) > 0 && addErr == nil
	// Applied deletion batches in application order — exactly what WAL
	// replay must re-run after the coalesced adds.
	var appliedDels [][]graph.Edge
	for _, r := range batch {
		if r.kind != opDelete {
			continue
		}
		if out := delResults[r]; out.err == nil {
			mutated = true
			appliedDels = append(appliedDels, r.edges)
		}
	}

	// Generation bump and COW snapshots happen under the same critical
	// section as the application itself, so a concurrent Checkpoint always
	// captures (state, generation) pairs consistently. Publication is
	// deferred until after the WAL append: readers and futures must not
	// observe a generation whose record might not survive a crash.
	var snap *Snapshot
	var walRec *wal.BatchRecord
	if mutated {
		gen := e.stats.generation.Add(1)
		snap = newSnapshot(gen, e.sp.G.Snapshot(), e.sp.H.Snapshot(), &e.stats, e.opts.Solver)
		if e.opts.Store != nil && !e.walBroken.Load() {
			walRec = &wal.BatchRecord{Gen: gen, DelBatches: appliedDels}
			if addErr == nil && len(adds) > 0 {
				walRec.Adds = adds
			}
		}
	} else {
		snap = e.reg.Current()
	}
	e.mu.Unlock()

	// WAL-before-publish: log the applied batch, then make it visible.
	var walErr error
	if walRec != nil {
		appendStart := time.Now()
		n, syncDur, err := e.opts.Store.AppendTimed(*walRec)
		appendEnd := time.Now()
		// One append durably covers every coalesced request: each traced
		// request gets the append (and its fsync share) in its own trace.
		for _, r := range batch {
			if !r.span.Tracing() {
				continue
			}
			as := r.span.StartChildSince(trace.SpanWALAppend, appendStart)
			as.SetAttr(trace.AttrBytes, int64(n))
			as.SetAttr(trace.AttrGeneration, int64(walRec.Gen))
			if syncDur > 0 {
				fs := as.StartChildSince(trace.SpanWALFsync, appendEnd.Add(-syncDur))
				fs.EndAt(appendEnd)
			}
			as.EndAt(appendEnd)
		}
		if err != nil {
			// Sticky: a gapped log must not grow (replay would be wrong).
			// The next successful Checkpoint covers the gap and re-arms.
			e.walBroken.Store(true)
			e.stats.walErrors.Add(1)
			walErr = fmt.Errorf("%w: %v", ErrNotDurable, err)
		} else {
			e.stats.walAppends.Add(1)
			e.stats.walBytes.Add(uint64(n))
		}
	} else if mutated && e.opts.Store != nil {
		// Degraded mode: the write is applied but goes unlogged.
		walErr = ErrNotDurable
	}
	if mutated {
		e.reg.Publish(snap)
	}

	// Complete futures outside the write lock.
	for _, r := range batch {
		switch r.kind {
		case opAdd:
			res := WriteResult{Generation: snap.Gen}
			var err error
			if addErr != nil {
				err = addErr
			} else {
				for _, edge := range r.edges {
					k := edgeKey{u: edge.U, v: edge.V, w: edge.W}
					idxs := byKey[k]
					if len(idxs) == 0 {
						err = fmt.Errorf("service: internal: decision missing for edge %+v", edge)
						break
					}
					d := decisions[idxs[0]]
					byKey[k] = idxs[1:]
					switch d.action {
					case core.Included:
						res.Included++
					case core.Merged:
						res.Merged++
					case core.Redistributed:
						res.Redistributed++
					}
				}
			}
			if err != nil {
				e.stats.writeErrors.Add(1)
				r.p.complete(WriteResult{}, err)
			} else {
				e.stats.flushedAdds.Add(uint64(len(r.edges)))
				r.p.complete(res, walErr)
			}
			e.stats.queueDepth.Add(-1)
		case opDelete:
			out := delResults[r]
			out.res.Generation = snap.Gen
			if out.err != nil {
				e.stats.writeErrors.Add(1)
				r.p.complete(WriteResult{}, out.err)
			} else {
				e.stats.flushedDeletes.Add(uint64(len(r.edges)))
				r.p.complete(out.res, walErr)
			}
			e.stats.queueDepth.Add(-1)
		case opBarrier:
			if r.p != nil {
				r.p.complete(WriteResult{Generation: snap.Gen}, nil)
				e.stats.queueDepth.Add(-1)
			}
		}
	}
	e.stats.flushes.Add(1)
}

type decisionLite struct {
	key    edgeKey
	action core.Action
}

func validateAdds(edges []graph.Edge, n int) error {
	if len(edges) == 0 {
		return errEmptyBatch
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("service: endpoint out of range: (%d, %d) with %d nodes", e.U, e.V, n)
		}
		if e.U == e.V {
			return fmt.Errorf("service: self-loop (%d, %d) rejected", e.U, e.V)
		}
		if !(e.W > 0) {
			return fmt.Errorf("service: weight %v must be positive", e.W)
		}
	}
	return nil
}
