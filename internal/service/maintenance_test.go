package service

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
	"ingrass/internal/wal"
)

// --- trigger policy (pure function) ---------------------------------------

func TestEvaluateTriggerPolicy(t *testing.T) {
	m := MaintenanceOptions{
		IterTarget:    40,
		MinSolves:     8,
		CondThreshold: 100,
		ChurnFactor:   0.5,
	}
	cases := []struct {
		name string
		s    healthSample
		want MaintReason
		mean float64
	}{
		{"healthy", healthSample{Solves: 10, Iters: 200, BasisEdges: 100}, MaintNone, 20},
		{"iters over target", healthSample{Solves: 10, Iters: 500, BasisEdges: 100}, MaintReasonIters, 50},
		{"iters ignored under MinSolves", healthSample{Solves: 4, Iters: 400, BasisEdges: 100}, MaintNone, 100},
		{"cond over threshold", healthSample{Solves: 10, Iters: 200, Kappa: 150, BasisEdges: 100}, MaintReasonCond, 20},
		{"churn over factor", healthSample{Solves: 10, Iters: 200, Churn: 50, BasisEdges: 100}, MaintReasonChurn, 20},
		{"churn just under", healthSample{Solves: 10, Iters: 200, Churn: 49, BasisEdges: 100}, MaintNone, 20},
		// Precedence: iterations beat cond beat churn when several trip.
		{"iters beats cond", healthSample{Solves: 10, Iters: 500, Kappa: 150, Churn: 99, BasisEdges: 100}, MaintReasonIters, 50},
		{"cond beats churn", healthSample{Solves: 10, Iters: 200, Kappa: 150, Churn: 99, BasisEdges: 100}, MaintReasonCond, 20},
		{"no solves no iters trigger", healthSample{Solves: 0, Iters: 0, Churn: 99, BasisEdges: 100}, MaintReasonChurn, 0},
	}
	for _, tc := range cases {
		reason, mean := m.evaluate(tc.s)
		if reason != tc.want || mean != tc.mean {
			t.Errorf("%s: got (%v, %v), want (%v, %v)", tc.name, reason, mean, tc.want, tc.mean)
		}
	}

	// Disabled signals never fire.
	var off MaintenanceOptions
	if reason, _ := off.evaluate(healthSample{Solves: 100, Iters: 1e6, Kappa: 1e9, Churn: 1e6, BasisEdges: 1}); reason != MaintNone {
		t.Errorf("zero options fired %v", reason)
	}
}

func TestTuneTargetCond(t *testing.T) {
	cases := []struct {
		cur, mean, target, lo, hi, want float64
	}{
		{50, 100, 50, 10, 1000, 25},   // 2x over target -> halve
		{50, 25, 50, 10, 1000, 100},   // 2x under -> double
		{50, 500, 50, 10, 1000, 25},   // adjustment capped at 2x per rebuild
		{50, 1, 50, 10, 1000, 100},    // cap in the other direction
		{15, 100, 50, 10, 1000, 10},   // clamped at lo
		{800, 10, 50, 10, 1000, 1000}, // clamped at hi
		{50, 0, 50, 10, 1000, 50},     // no solves -> no change
		{50, 60, 0, 10, 1000, 50},     // no target -> no change
		{50, 50, 50, 10, 1000, 50},    // on target -> unchanged
	}
	for _, tc := range cases {
		if got := tuneTargetCond(tc.cur, tc.mean, tc.target, tc.lo, tc.hi); got != tc.want {
			t.Errorf("tune(%v, mean=%v, target=%v) = %v, want %v", tc.cur, tc.mean, tc.target, got, tc.want)
		}
	}
}

// --- manual resparsify -----------------------------------------------------

func TestManualResparsify(t *testing.T) {
	e := newEngine(t, 8, 8, Options{MaxBatch: 1})
	n := e.Current().G.NumNodes()
	for _, op := range makeStream(n, 30, 5) {
		applyOp(t, e, op)
	}
	before := e.Current().Gen
	gen, err := e.Resparsify(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if gen != before+1 || e.Current().Gen != gen {
		t.Fatalf("swap at gen %d (was %d), current %d", gen, before, e.Current().Gen)
	}
	v := e.Stats()
	if v.MaintRebuilds != 1 || v.MaintTriggersManual != 1 || v.MaintLastGeneration != gen {
		t.Fatalf("stats after swap: %+v", v)
	}
	if v.MaintState != "disabled" {
		t.Fatalf("controller state %q on a maintenance-disabled engine", v.MaintState)
	}
	// The swapped generation serves solves.
	x := make([]float64, n)
	if _, err := e.Current().SolveInto(ctxT(t), x, warmRHS(n), solver.Options{Tol: 1e-8}); err != nil {
		t.Fatal(err)
	}
	// Writes continue across the swap.
	applyOp(t, e, streamOp{edges: []graph.Edge{{U: 0, V: n - 1, W: 1.25}}})
	if got := e.Current().Gen; got != gen+1 {
		t.Fatalf("post-swap write at gen %d, want %d", got, gen+1)
	}
}

func TestResparsifySingleFlight(t *testing.T) {
	parked := make(chan struct{})
	release := make(chan struct{})
	e := newEngine(t, 8, 8, Options{MaxBatch: 1, Maintenance: MaintenanceOptions{
		Hooks: MaintHooks{AfterBuild: func() { close(parked); <-release }},
	}})
	type res struct {
		gen uint64
		err error
	}
	first := make(chan res, 1)
	go func() {
		gen, err := e.Resparsify(ctxT(t))
		first <- res{gen, err}
	}()
	<-parked
	if _, err := e.Resparsify(ctxT(t)); !errors.Is(err, ErrRebuildInProgress) {
		t.Fatalf("want ErrRebuildInProgress, got %v", err)
	}
	close(release)
	r := <-first
	if r.err != nil {
		t.Fatal(r.err)
	}
	if v := e.Stats(); v.MaintRebuilds != 1 {
		t.Fatalf("rebuilds %d", v.MaintRebuilds)
	}
}

func TestResparsifyAfterClose(t *testing.T) {
	e := newEngine(t, 6, 6, Options{MaxBatch: 1})
	e.Close()
	if _, err := e.Resparsify(ctxT(t)); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

// --- the deterministic soak ------------------------------------------------

// soakWindow runs the per-window solve probe: solvesPerWindow solves with
// deterministic right-hand sides, returning the mean outer iteration count.
func soakWindow(t *testing.T, e *Engine, window int, solves int) float64 {
	t.Helper()
	n := e.Current().G.NumNodes()
	rng := vecmath.NewRNG(0x50AC ^ uint64(window)*0x9E3779B97F4A7C15)
	total := 0
	snap := e.Current()
	for s := 0; s < solves; s++ {
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Range(-1, 1)
		}
		vecmath.CenterMean(b)
		x := make([]float64, n)
		st, err := snap.SolveInto(ctxT(t), x, b, solver.Options{Tol: 1e-8})
		if err != nil {
			t.Fatalf("window %d solve %d: %v", window, s, err)
		}
		total += st.Iterations
	}
	return float64(total) / float64(solves)
}

// TestMaintenanceSoakBoundsIterations is the acceptance soak: a 2000-op
// churn stream over a 16x16 grid runs through two engines fed identical
// operations. The maintained engine evaluates its health after every window
// of probe solves (the exact code path a controller tick runs) with an
// iteration-target trigger; the baseline engine runs open-loop. Maintenance
// must fire at least once, keep the final-window iteration mean near the
// target, and the baseline must degrade well past the maintained engine —
// the closed loop is what bounds solve cost under churn.
func TestMaintenanceSoakBoundsIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	const (
		rows, cols      = 16, 16
		ops             = 2000
		windowOps       = 100
		solvesPerWindow = 6
		streamSeed      = 7
	)

	// Calibrate the trigger against this workload's healthy baseline: probe
	// the freshly built engine's iteration mean, then target 1.5x it. A
	// throwaway engine keeps the soak engines' solve counters clean.
	probe := newEngine(t, rows, cols, Options{MaxBatch: 1})
	m0 := soakWindow(t, probe, 0, solvesPerWindow)
	probe.Close()
	target := 1.5 * m0

	maintained := newEngine(t, rows, cols, Options{MaxBatch: 1, Maintenance: MaintenanceOptions{
		IterTarget:    target,
		MinSolves:     4,
		CooldownTicks: 1,
	}})
	baseline := newEngine(t, rows, cols, Options{MaxBatch: 1})

	n := rows * cols
	stream := makeStream(n, ops, streamSeed)
	var maintMeans, baseMeans []float64
	for i, op := range stream {
		applyOp(t, maintained, op)
		applyOp(t, baseline, op)
		if (i+1)%windowOps == 0 {
			w := (i + 1) / windowOps
			mm := soakWindow(t, maintained, w, solvesPerWindow)
			bm := soakWindow(t, baseline, w, solvesPerWindow)
			maintMeans = append(maintMeans, mm)
			baseMeans = append(baseMeans, bm)
			// The controller tick: evaluate and, if over target, rebuild.
			if _, err := maintained.HealthCheck(ctxT(t)); err != nil {
				t.Fatalf("health check at window %d: %v", w, err)
			}
		}
	}
	t.Logf("healthy mean %.1f, target %.1f", m0, target)
	t.Logf("maintained windows: %.0f", maintMeans)
	t.Logf("baseline windows:   %.0f", baseMeans)

	v := maintained.Stats()
	if v.MaintRebuilds < 1 || v.MaintTriggersIterations < 1 {
		t.Fatalf("maintenance never fired: %+v", v)
	}
	mFinal := maintMeans[len(maintMeans)-1]
	bFinal := baseMeans[len(baseMeans)-1]
	if mFinal > 1.6*target {
		t.Fatalf("maintained engine not bounded: final mean %.1f vs target %.1f", mFinal, target)
	}
	if bFinal < 1.3*mFinal {
		t.Fatalf("baseline (%.1f) did not degrade past maintained (%.1f)", bFinal, mFinal)
	}
	if bFinal < 1.3*baseMeans[0] {
		t.Fatalf("baseline never degraded: first %.1f, final %.1f", baseMeans[0], bFinal)
	}
	if bv := baseline.Stats(); bv.MaintRebuilds != 0 {
		t.Fatalf("open-loop engine rebuilt %d times", bv.MaintRebuilds)
	}
}

// --- controller loop with injected clock ----------------------------------

// TestControllerInjectedTicks drives the background controller through an
// injected tick channel — no wall-clock timers anywhere — and walks the full
// trigger state machine: healthy tick, churn-triggered rebuild, cooldown
// suppression, cooldown expiry.
func TestControllerInjectedTicks(t *testing.T) {
	ticks := make(chan time.Time)
	reports := make(chan MaintReport, 16)
	e := newEngine(t, 8, 8, Options{MaxBatch: 1, Maintenance: MaintenanceOptions{
		Enabled:       true,
		ChurnFactor:   0.05,
		CooldownTicks: 2,
		Ticks:         ticks,
		Hooks:         MaintHooks{OnReport: func(r MaintReport, err error) { reports <- r }},
	}})
	n := e.Current().G.NumNodes()
	churn := func(ops int, seed uint64) {
		for _, op := range makeStream(n, ops, seed) {
			applyOp(t, e, op)
		}
	}
	tick := func() MaintReport {
		t.Helper()
		select {
		case ticks <- time.Time{}:
		case <-time.After(10 * time.Second):
			t.Fatal("controller stopped accepting ticks")
		}
		select {
		case r := <-reports:
			return r
		case <-time.After(10 * time.Second):
			t.Fatal("no report from controller tick")
			return MaintReport{}
		}
	}

	if v := e.Stats(); v.MaintState != "idle" {
		t.Fatalf("initial state %q", v.MaintState)
	}

	// Tick 1: no churn yet — healthy.
	if r := tick(); r.Reason != MaintNone || r.Triggered || r.Suppressed {
		t.Fatalf("healthy tick: %+v", r)
	}

	// Churn past the factor, tick again: rebuild fires.
	churn(12, 31)
	r := tick()
	if r.Reason != MaintReasonChurn || !r.Triggered || r.Generation == 0 {
		t.Fatalf("churn tick: %+v", r)
	}
	if v := e.Stats(); v.MaintState != "cooldown" || v.MaintTriggersChurn != 1 || v.MaintRebuilds != 1 {
		t.Fatalf("post-trigger stats: state=%q %+v", v.MaintState, v)
	}

	// More churn during cooldown: the trigger fires but is suppressed.
	churn(12, 37)
	if r := tick(); r.Reason != MaintReasonChurn || !r.Suppressed || r.Triggered {
		t.Fatalf("cooldown tick: %+v", r)
	}
	// Second cooldown tick expires the window...
	if r := tick(); !r.Suppressed && r.Reason != MaintNone {
		t.Fatalf("second cooldown tick: %+v", r)
	}
	if v := e.Stats(); v.MaintState != "idle" {
		t.Fatalf("state after cooldown expiry: %q", v.MaintState)
	}
	// ...and the still-outstanding churn fires on the next tick.
	if r := tick(); r.Reason != MaintReasonChurn || !r.Triggered {
		t.Fatalf("post-cooldown tick: %+v", r)
	}
	if v := e.Stats(); v.MaintRebuilds != 2 {
		t.Fatalf("rebuilds %d, want 2", v.MaintRebuilds)
	}

	// Closing the tick channel stops the controller; Close must not hang on
	// it (t.Cleanup runs e.Close after this).
	close(ticks)
}

// TestCondTriggerAndWarmKappa: the periodic condition estimate runs on its
// CondEvery cadence, lands in the kappa gauge, and trips the cond trigger.
func TestCondTriggerAndWarmKappa(t *testing.T) {
	// CondEvery 2: the first evaluation must skip the estimate.
	e := newEngine(t, 8, 8, Options{MaxBatch: 1, Maintenance: MaintenanceOptions{
		CondThreshold: 1.05,
		CondEvery:     2,
		CondIters:     40,
		CondSeed:      5,
		CooldownTicks: 1,
	}})
	rep, err := e.HealthCheck(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kappa != 0 || rep.Reason != MaintNone {
		t.Fatalf("first tick should skip the estimate: %+v", rep)
	}
	rep, err = e.HealthCheck(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kappa <= 1 {
		t.Fatalf("second tick kappa %v, want > 1", rep.Kappa)
	}
	if rep.Reason != MaintReasonCond || !rep.Triggered {
		t.Fatalf("cond trigger: %+v", rep)
	}
	v := e.Stats()
	if v.MaintKappa != rep.Kappa {
		t.Fatalf("kappa gauge %v vs report %v", v.MaintKappa, rep.Kappa)
	}
	if v.MaintTriggersCond != 1 || v.MaintRebuilds != 1 {
		t.Fatalf("stats: %+v", v)
	}
	if v.CondQueries == 0 {
		t.Fatal("estimate not accounted in cond_queries")
	}
}

// TestDensityTuneAdjustsTargetCond: with DensityTune on and the engine
// iterating far over target, the rebuilt basis must carry a halved (capped
// adjustment) target condition number — the density knob moving toward
// cheaper solves.
func TestDensityTuneAdjustsTargetCond(t *testing.T) {
	e := newEngine(t, 8, 8, Options{MaxBatch: 1, Maintenance: MaintenanceOptions{
		IterTarget:    1, // any real solve iterates past this
		MinSolves:     1,
		DensityTune:   true,
		CooldownTicks: 1,
	}})
	if got := e.Stats().MaintTargetCond; got != 50 {
		t.Fatalf("initial target cond gauge %v, want 50 (engine config)", got)
	}
	n := e.Current().G.NumNodes()
	x := make([]float64, n)
	if _, err := e.Current().SolveInto(ctxT(t), x, warmRHS(n), solver.Options{Tol: 1e-8}); err != nil {
		t.Fatal(err)
	}
	rep, err := e.HealthCheck(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != MaintReasonIters || !rep.Triggered {
		t.Fatalf("report: %+v", rep)
	}
	if got := e.Stats().MaintTargetCond; got != 25 {
		t.Fatalf("tuned target cond %v, want 25 (50 / capped ratio 2)", got)
	}
	if got := e.Stats().MaintIterTrend; got <= 1 {
		t.Fatalf("iteration trend gauge %v", got)
	}
}

// --- writer stall regression ----------------------------------------------

// TestWritesFlowDuringRebuild is the no-stall regression: a rebuild parked
// indefinitely in its offline phase (AfterBuild hook) must not block the
// write pipeline. Every write issued while the rebuild is parked completes
// under a bound that a stalled writer could never meet, and the swap lands
// strictly after them.
func TestWritesFlowDuringRebuild(t *testing.T) {
	parked := make(chan struct{})
	release := make(chan struct{})
	e := newEngine(t, 12, 12, Options{MaxBatch: 1, Maintenance: MaintenanceOptions{
		Hooks: MaintHooks{AfterBuild: func() { close(parked); <-release }},
	}})
	n := e.Current().G.NumNodes()

	type res struct {
		gen uint64
		err error
	}
	swapped := make(chan res, 1)
	go func() {
		gen, err := e.Resparsify(ctxT(t))
		swapped <- res{gen, err}
	}()
	<-parked

	// The rebuild is parked (no engine lock held). Writes must flow.
	const writes = 40
	rng := vecmath.NewRNG(77)
	lat := make([]time.Duration, 0, writes)
	var lastWriteGen uint64
	for i := 0; i < writes; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (u + 1) % n
		}
		start := time.Now()
		wr, err := e.Add(ctxT(t), []graph.Edge{{U: u, V: v, W: 1 + rng.Float64()}})
		if err != nil {
			t.Fatalf("write %d during parked rebuild: %v", i, err)
		}
		lat = append(lat, time.Since(start))
		lastWriteGen = wr.Generation
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if p99 := lat[len(lat)*99/100]; p99 > time.Second {
		t.Fatalf("p99 write latency %v during parked rebuild", p99)
	}

	close(release)
	r := <-swapped
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.gen <= lastWriteGen {
		t.Fatalf("swap gen %d not after the %d writes (last gen %d)", r.gen, writes, lastWriteGen)
	}
	// The adopted basis accounts for every edge admitted during the build:
	// the swapped generation still serves correct solves.
	x := make([]float64, n)
	if _, err := e.Current().SolveInto(ctxT(t), x, warmRHS(n), solver.Options{Tol: 1e-8}); err != nil {
		t.Fatal(err)
	}
}

// --- durability: crash mid-rebuild, replay after swap ----------------------

// TestCrashMidRebuildRecovery injects a crash in the window between basis
// adoption and the WAL append (the BeforeLog hook). The swap must be neither
// logged nor published, the WAL must flip to its sticky degraded mode, and
// recovery from the directory must land bit-identically on the state of a
// control engine that never attempted maintenance — the rebuild simply never
// happened, durably speaking.
func TestCrashMidRebuildRecovery(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected crash before maintenance log append")
	e, store := newDurableEngine(t, 8, 8, Options{MaxBatch: 1, Maintenance: MaintenanceOptions{
		Hooks: MaintHooks{BeforeLog: func() error { return boom }},
	}}, dir, wal.Options{Sync: wal.SyncNever})
	control := newEngine(t, 8, 8, Options{MaxBatch: 1})

	n := e.Current().G.NumNodes()
	for _, op := range makeStream(n, 40, 13) {
		applyOp(t, e, op)
		applyOp(t, control, op)
	}
	preGen := e.Current().Gen

	if _, err := e.Resparsify(ctxT(t)); !errors.Is(err, boom) {
		t.Fatalf("want injected crash error, got %v", err)
	}
	if got := e.Current().Gen; got != preGen {
		t.Fatalf("crashed swap published gen %d (was %d)", got, preGen)
	}
	if v := e.Stats(); v.MaintRebuilds != 0 || v.MaintFailures != 1 {
		t.Fatalf("stats after crashed swap: %+v", v)
	}
	// Durability is now degraded, stickily: the next write applies but
	// reports ErrNotDurable (the in-memory basis diverged from the log).
	if _, err := e.Add(ctxT(t), []graph.Edge{{U: 0, V: n - 1, W: 2}}); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("want ErrNotDurable after crashed swap, got %v", err)
	}

	e.Close()
	store.Close()
	store2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Recover(store2, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		recovered.Close()
		store2.Close()
	}()

	// Recovery = the stream without the rebuild (and without the unlogged
	// degraded-mode write): exactly the control engine's state.
	if got := recovered.Current().Gen; got != preGen {
		t.Fatalf("recovered gen %d, want %d", got, preGen)
	}
	if got, want := recovered.CoreStats(), control.CoreStats(); got != want {
		t.Fatalf("recovered stats %+v, want %+v", got, want)
	}
	sameGraphBits(t, "G", recovered.Current().G, control.Current().G)
	sameGraphBits(t, "H", recovered.Current().H, control.Current().H)
}

// TestReplayAfterSwapMatchesLive: the happy-path durability property. A
// stream runs with a successful mid-stream swap (logged as a maintenance
// record); recovery must reproduce the live engine bit for bit — the decode →
// AdoptBasis replay path and the in-process BuildSetup/AdoptSetup path
// converge on identical state.
func TestReplayAfterSwapMatchesLive(t *testing.T) {
	dir := t.TempDir()
	e, store := newDurableEngine(t, 8, 8, Options{MaxBatch: 1}, dir, wal.Options{Sync: wal.SyncNever})
	n := e.Current().G.NumNodes()
	stream := makeStream(n, 60, 17)
	for _, op := range stream[:35] {
		applyOp(t, e, op)
	}
	swapGen, err := e.Resparsify(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range stream[35:] {
		applyOp(t, e, op)
	}
	wantGen := e.Current().Gen
	wantStats := e.CoreStats()
	wantG := e.Current().G.Snapshot()
	wantH := e.Current().H.Snapshot()

	e.Close()
	store.Close()
	store2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Recover(store2, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		recovered.Close()
		store2.Close()
	}()

	if got := recovered.Current().Gen; got != wantGen {
		t.Fatalf("recovered gen %d, want %d (swap at %d)", got, wantGen, swapGen)
	}
	if got := recovered.CoreStats(); got != wantStats {
		t.Fatalf("recovered stats %+v, want %+v", got, wantStats)
	}
	sameGraphBits(t, "G", recovered.Current().G, wantG)
	sameGraphBits(t, "H", recovered.Current().H, wantH)

	// Post-recovery, the engine keeps writing AND keeps swapping durably.
	applyOp(t, recovered, streamOp{edges: []graph.Edge{{U: 1, V: n - 2, W: 0.75}}})
	if _, err := recovered.Resparsify(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if got := recovered.Current().Gen; got != wantGen+2 {
		t.Fatalf("post-recovery gen %d, want %d", got, wantGen+2)
	}
}

// --- GC pressure policy ----------------------------------------------------

func TestRegistryTrimTo(t *testing.T) {
	r := NewRegistry(8)
	for gen := uint64(1); gen <= 6; gen++ {
		r.Publish(newSnapshot(gen, nil, nil, &Stats{}, solver.Options{}))
	}
	if dropped := r.TrimTo(10); dropped != 0 {
		t.Fatalf("TrimTo above size dropped %d", dropped)
	}
	if dropped := r.TrimTo(2); dropped != 4 {
		t.Fatalf("TrimTo(2) dropped %d, want 4", dropped)
	}
	if gens := r.Generations(); len(gens) != 2 || gens[0] != 5 || gens[1] != 6 {
		t.Fatalf("retained %v", gens)
	}
	if r.Current().Gen != 6 {
		t.Fatalf("current %d after trim", r.Current().Gen)
	}
	// Minimum 1: the current snapshot is never evicted.
	if dropped := r.TrimTo(0); dropped != 1 {
		t.Fatalf("TrimTo(0) dropped %d, want 1", dropped)
	}
	if gens := r.Generations(); len(gens) != 1 || gens[0] != 6 {
		t.Fatalf("retained %v", gens)
	}
}

// TestRetainAfterSwapEvicts: the post-swap GC pressure policy drops the
// registry's references to pre-swap generations (whose factorizations were
// built on the superseded basis), while the normal Retain window keeps them
// on engines without the policy.
func TestRetainAfterSwapEvicts(t *testing.T) {
	e := newEngine(t, 6, 6, Options{MaxBatch: 1, Retain: 4, Maintenance: MaintenanceOptions{
		RetainAfterSwap: 1,
	}})
	n := e.Current().G.NumNodes()
	for _, op := range makeStream(n, 5, 23) {
		applyOp(t, e, op)
	}
	preGens := e.Generations()
	if len(preGens) != 4 {
		t.Fatalf("retained %v before swap, want 4", preGens)
	}
	gen, err := e.Resparsify(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if gens := e.Generations(); len(gens) != 1 || gens[0] != gen {
		t.Fatalf("retained %v after swap, want [%d]", gens, gen)
	}
	if _, ok := e.At(preGens[len(preGens)-1]); ok {
		t.Fatal("pre-swap generation still addressable after eviction")
	}
	if v := e.Stats(); v.GenerationsEvicted != 3 {
		t.Fatalf("generations_evicted %d, want 3", v.GenerationsEvicted)
	}

	// Without the policy the swap keeps the retention window.
	e2 := newEngine(t, 6, 6, Options{MaxBatch: 1, Retain: 4})
	for _, op := range makeStream(n, 5, 23) {
		applyOp(t, e2, op)
	}
	if _, err := e2.Resparsify(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if gens := e2.Generations(); len(gens) != 4 {
		t.Fatalf("default engine retained %v after swap, want 4", gens)
	}
	if v := e2.Stats(); v.GenerationsEvicted != 0 {
		t.Fatalf("default engine evicted %d", v.GenerationsEvicted)
	}
}

// --- concurrency hammer (run with -race) -----------------------------------

// TestMaintenanceConcurrencyHammer mixes readers, writers, health checks,
// and repeated forced swaps. Correctness bar: no data race (the -race run in
// CI), every read is served by a consistent snapshot, and the engine is
// still coherent afterwards.
func TestMaintenanceConcurrencyHammer(t *testing.T) {
	e := newEngine(t, 8, 8, Options{MaxBatch: 8, FlushInterval: 200 * time.Microsecond,
		Maintenance: MaintenanceOptions{IterTarget: 5, MinSolves: 1, CooldownTicks: 1}})
	n := e.Current().G.NumNodes()
	ctx := ctxT(t)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	// Writers.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			rng := vecmath.NewRNG(seed)
			for i := 0; i < 60; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				if _, err := e.Add(ctx, []graph.Edge{{U: u, V: v, W: 0.5 + rng.Float64()}}); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(uint64(w) + 41)
	}
	// Readers.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			rng := vecmath.NewRNG(seed)
			b := make([]float64, n)
			x := make([]float64, n)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range b {
					b[i] = rng.Range(-1, 1)
				}
				vecmath.CenterMean(b)
				if _, err := e.Current().SolveInto(ctx, x, b, solver.Options{Tol: 1e-6}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(uint64(r) + 61)
	}
	// Maintenance: repeated forced swaps and health evaluations.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 5; i++ {
			if _, err := e.Resparsify(ctx); err != nil && !errors.Is(err, ErrRebuildInProgress) {
				t.Errorf("resparsify: %v", err)
				return
			}
			if _, err := e.HealthCheck(ctx); err != nil {
				t.Errorf("health check: %v", err)
				return
			}
		}
	}()

	// Writers and the maintenance loop bound the run; readers spin until
	// both finish, then are told to stop.
	writers.Wait()
	close(stop)
	readers.Wait()

	// Post-hammer coherence: a write, a swap, and a solve all still work.
	if _, err := e.Add(ctx, []graph.Edge{{U: 0, V: n - 1, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resparsify(ctx); err != nil && !errors.Is(err, ErrRebuildInProgress) {
		t.Fatal(err)
	}
	x := make([]float64, n)
	if _, err := e.Current().SolveInto(ctx, x, warmRHS(n), solver.Options{Tol: 1e-8}); err != nil {
		t.Fatal(err)
	}
	if err := e.Current().H.Validate(); err != nil {
		t.Fatalf("H incoherent after hammer: %v", err)
	}
}
