package service

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// BenchmarkSolveThroughput measures snapshot-isolated solve throughput at
// 1, 4, and 16 concurrent readers sharing one generation's cached
// factorization. ns/op is per solve; the solves/s metric is aggregate
// throughput across all readers.
func BenchmarkSolveThroughput(b *testing.B) {
	for _, readers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			e := newEngine(b, 16, 16, Options{})
			snap := e.Current()
			n := snap.G.NumNodes()
			rhs := make([]float64, n)
			for i := range rhs {
				rhs[i] = math.Sin(float64(i))
			}
			vecmath.CenterMean(rhs)
			// Warm the per-generation factorization outside the timer.
			if _, _, err := snap.Solve(context.Background(), rhs, solver.Options{Tol: 1e-8}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, _, err := snap.Solve(context.Background(), rhs, solver.Options{Tol: 1e-8}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "solves/s")
		})
	}
}
