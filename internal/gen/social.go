package gen

import (
	"fmt"
	"math"
	"sort"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// BarabasiAlbert builds a preferential-attachment graph with n nodes, each
// new node attaching m edges to existing nodes with probability
// proportional to degree (the classic social-network model). Weights are
// log-uniform in [0.5, 2). The result is connected by construction.
func BarabasiAlbert(n, m int, seed uint64) (*graph.Graph, error) {
	if n < 2 || m < 1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs n >= 2, m >= 1")
	}
	if m >= n {
		return nil, fmt.Errorf("gen: BarabasiAlbert m=%d must be < n=%d", m, n)
	}
	r := vecmath.NewRNG(seed)
	g := graph.New(n, n*m)
	// Repeated-node trick: targets drawn uniformly from this list realize
	// degree-proportional sampling.
	pool := make([]int, 0, 2*n*m)
	w := func() float64 { return math.Pow(2, r.Range(-1, 1)) }

	// Seed clique over the first m+1 nodes.
	for i := 0; i <= m && i < n; i++ {
		for j := i + 1; j <= m && j < n; j++ {
			g.AddEdge(i, j, w())
			pool = append(pool, i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		attached := map[int]bool{}
		for len(attached) < m {
			t := pool[r.Intn(len(pool))]
			if t != v && !attached[t] {
				attached[t] = true
			}
		}
		// Deterministic insertion order for reproducibility.
		ts := make([]int, 0, m)
		for t := range attached {
			ts = append(ts, t)
		}
		sort.Ints(ts)
		for _, t := range ts {
			g.AddEdge(v, t, w())
			pool = append(pool, v, t)
		}
	}
	return g, nil
}

// RandomGeometric builds a random geometric graph: n points uniform in the
// unit square, edges between pairs within the given radius, conductance
// 1/distance. Only the largest connected component is returned (sub-
// critical radii fragment), so the node count of the result may be < n.
func RandomGeometric(n int, radius float64, seed uint64) (*graph.Graph, error) {
	if n < 2 || radius <= 0 {
		return nil, fmt.Errorf("gen: RandomGeometric needs n >= 2 and radius > 0")
	}
	r := vecmath.NewRNG(seed)
	px := make([]float64, n)
	py := make([]float64, n)
	for i := range px {
		px[i] = r.Float64()
		py[i] = r.Float64()
	}
	// Cell grid for neighbor search.
	cell := radius
	cols := int(1/cell) + 1
	buckets := make(map[int][]int)
	key := func(cx, cy int) int { return cy*cols + cx }
	for i := range px {
		cx, cy := int(px[i]/cell), int(py[i]/cell)
		buckets[key(cx, cy)] = append(buckets[key(cx, cy)], i)
	}
	g := graph.New(n, 4*n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx, cy := int(px[i]/cell), int(py[i]/cell)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[key(cx+dx, cy+dy)] {
					if j <= i {
						continue
					}
					ddx, ddy := px[i]-px[j], py[i]-py[j]
					d2 := ddx*ddx + ddy*ddy
					if d2 <= r2 && d2 > 0 {
						g.AddEdge(i, j, 1/math.Sqrt(d2))
					}
				}
			}
		}
	}
	lc, _ := graph.LargestComponent(g)
	return lc, nil
}
