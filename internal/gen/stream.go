package gen

import (
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// StreamKind selects how new edges are drawn.
type StreamKind int

const (
	// StreamUniform draws uniformly random non-adjacent node pairs —
	// long-range chords that perturb the spectrum strongly (matching the
	// large kappa drift the paper's Table II shows when updates are
	// ignored).
	StreamUniform StreamKind = iota
	// StreamLocal draws pairs within a small hop radius of each other —
	// the incremental-wire pattern of physical design updates.
	StreamLocal
)

// StreamConfig controls edge-stream generation.
type StreamConfig struct {
	Kind StreamKind
	// Count is the total number of new edges to draw.
	Count int
	// Batches splits the stream into equal iterations (paper: 10).
	Batches int
	// WeightLo/WeightHi bound the uniform weight draw, expressed as
	// multiples of the host graph's MEAN edge weight so streams perturb
	// every benchmark family comparably. Defaults [0.5, 2).
	WeightLo, WeightHi float64
	// HopRadius bounds StreamLocal pair distance. Default 4.
	HopRadius int
	// Seed drives the RNG.
	Seed uint64
}

// Stream draws a batch-partitioned stream of NEW edges for g: pairs that
// are not currently adjacent (parallel edges never appear in the stream,
// matching the paper's "newly introduced edges"). The same pair may not
// appear twice across the stream.
func Stream(g *graph.Graph, cfg StreamConfig) ([][]graph.Edge, error) {
	n := g.NumNodes()
	if n < 3 {
		return nil, fmt.Errorf("gen: Stream needs at least 3 nodes")
	}
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("gen: Stream count %d must be positive", cfg.Count)
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 1
	}
	if cfg.WeightHi <= cfg.WeightLo {
		cfg.WeightLo, cfg.WeightHi = 0.5, 2.0
	}
	if cfg.HopRadius <= 0 {
		cfg.HopRadius = 4
	}
	meanW := 1.0
	if g.NumEdges() > 0 {
		meanW = g.TotalWeight() / float64(g.NumEdges())
	}
	r := vecmath.NewRNG(cfg.Seed)

	used := make(map[uint64]bool, cfg.Count)
	edges := make([]graph.Edge, 0, cfg.Count)
	attempts := 0
	maxAttempts := 200*cfg.Count + 10000

	drawLocal := func() (int, int, bool) {
		u := r.Intn(n)
		// Random walk of length <= HopRadius from u.
		v := u
		steps := 1 + r.Intn(cfg.HopRadius)
		for s := 0; s < steps; s++ {
			adj := g.Adj(v)
			if len(adj) == 0 {
				return 0, 0, false
			}
			v = adj[r.Intn(len(adj))].To
		}
		return u, v, u != v
	}

	for len(edges) < cfg.Count {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("gen: Stream could not find %d fresh pairs (graph too dense?)", cfg.Count)
		}
		var u, v int
		var ok bool
		if cfg.Kind == StreamLocal {
			u, v, ok = drawLocal()
			if !ok {
				continue
			}
		} else {
			u, v = r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
		}
		key := graph.KeyOf(u, v)
		if used[key] || g.HasEdge(u, v) {
			continue
		}
		used[key] = true
		edges = append(edges, graph.Edge{U: u, V: v, W: meanW * r.Range(cfg.WeightLo, cfg.WeightHi)})
	}

	// Partition into batches.
	out := make([][]graph.Edge, cfg.Batches)
	per := (len(edges) + cfg.Batches - 1) / cfg.Batches
	for b := 0; b < cfg.Batches; b++ {
		lo := b * per
		hi := lo + per
		if lo > len(edges) {
			lo = len(edges)
		}
		if hi > len(edges) {
			hi = len(edges)
		}
		out[b] = edges[lo:hi]
	}
	return out, nil
}
