package gen

import (
	"fmt"
	"sort"
)

// TestCase is a named benchmark generator mirroring one of the paper's
// SuiteSparse test cases. Scale multiplies the default node count (Scale 1
// is laptop-friendly; the paper's sizes correspond to Scale ~100 for the
// large meshes).
type TestCase struct {
	Name string
	// Family describes the graph class for reporting.
	Family string
	// Build generates the graph at the given scale with the given seed.
	Build func(scale float64, seed uint64) (*G, error)
}

// Registry returns all named test cases in the order of the paper's
// Table I.
func Registry() []TestCase {
	scaled := func(base int, scale float64) int {
		v := int(float64(base) * scale)
		if v < 16 {
			v = 16
		}
		return v
	}
	sq := func(n int) int { // side of an n-node square grid
		s := 1
		for s*s < n {
			s++
		}
		return s
	}
	return []TestCase{
		{Name: "g3_circuit", Family: "power grid", Build: func(sc float64, seed uint64) (*G, error) {
			s := sq(scaled(40000, sc))
			return PowerGrid(s, s, 0.05, seed)
		}},
		{Name: "g2_circuit", Family: "power grid", Build: func(sc float64, seed uint64) (*G, error) {
			s := sq(scaled(10000, sc))
			return PowerGrid(s, s, 0.05, seed)
		}},
		{Name: "fe_4elt2", Family: "FE mesh", Build: func(sc float64, seed uint64) (*G, error) {
			s := sq(scaled(6400, sc))
			return TriMesh(s, s, 1.6, seed)
		}},
		{Name: "fe_ocean", Family: "FE mesh", Build: func(sc float64, seed uint64) (*G, error) {
			n := scaled(20000, sc)
			rings := sq(n)
			return SphereMesh(rings, rings+1, seed)
		}},
		{Name: "fe_sphere", Family: "FE mesh", Build: func(sc float64, seed uint64) (*G, error) {
			n := scaled(8100, sc)
			rings := sq(n)
			return SphereMesh(rings, rings, seed)
		}},
		{Name: "delaunay_n14", Family: "Delaunay", Build: func(sc float64, seed uint64) (*G, error) {
			return Delaunay(scaled(16384, sc), seed)
		}},
		{Name: "delaunay_n15", Family: "Delaunay", Build: func(sc float64, seed uint64) (*G, error) {
			return Delaunay(scaled(32768, sc), seed)
		}},
		{Name: "delaunay_n16", Family: "Delaunay", Build: func(sc float64, seed uint64) (*G, error) {
			return Delaunay(scaled(65536, sc), seed)
		}},
		{Name: "delaunay_n17", Family: "Delaunay", Build: func(sc float64, seed uint64) (*G, error) {
			return Delaunay(scaled(131072, sc), seed)
		}},
		{Name: "delaunay_n18", Family: "Delaunay", Build: func(sc float64, seed uint64) (*G, error) {
			return Delaunay(scaled(262144, sc), seed)
		}},
		{Name: "m6", Family: "FE mesh", Build: func(sc float64, seed uint64) (*G, error) {
			s := sq(scaled(90000, sc))
			return TriMesh(s, s, 1.0, seed)
		}},
		{Name: "333sp", Family: "FE mesh", Build: func(sc float64, seed uint64) (*G, error) {
			s := sq(scaled(90000, sc))
			return TriMesh(s, s, 2.2, seed)
		}},
		{Name: "as365", Family: "FE mesh", Build: func(sc float64, seed uint64) (*G, error) {
			s := sq(scaled(95000, sc))
			return TriMesh(s, s, 1.3, seed)
		}},
		{Name: "naca15", Family: "FE mesh", Build: func(sc float64, seed uint64) (*G, error) {
			s := sq(scaled(25000, sc))
			return TriMesh(s, s, 3.0, seed)
		}},
		{Name: "social_ba", Family: "social network", Build: func(sc float64, seed uint64) (*G, error) {
			return BarabasiAlbert(scaled(20000, sc), 4, seed)
		}},
	}
}

// Lookup returns the named test case or an error listing valid names.
func Lookup(name string) (TestCase, error) {
	for _, tc := range Registry() {
		if tc.Name == name {
			return tc, nil
		}
	}
	names := make([]string, 0)
	for _, tc := range Registry() {
		names = append(names, tc.Name)
	}
	sort.Strings(names)
	return TestCase{}, fmt.Errorf("gen: unknown test case %q (valid: %v)", name, names)
}
