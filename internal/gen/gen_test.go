package gen

import (
	"math"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

func TestPowerGridBasics(t *testing.T) {
	g, err := PowerGrid(20, 30, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 600 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	if !graph.IsConnected(g) {
		t.Fatal("power grid must be connected")
	}
	// Base grid edges plus vias.
	base := 20*29 + 19*30
	if g.NumEdges() < base {
		t.Fatalf("edges %d below base grid %d", g.NumEdges(), base)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerGridErrors(t *testing.T) {
	if _, err := PowerGrid(1, 5, 0, 1); err == nil {
		t.Fatal("expected size error")
	}
}

func TestPowerGridDeterminism(t *testing.T) {
	a, _ := PowerGrid(10, 10, 0.1, 7)
	b, _ := PowerGrid(10, 10, 0.1, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed gave different graphs")
	}
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Fatal("same seed gave different edges")
		}
	}
}

func TestTriMesh(t *testing.T) {
	g, err := TriMesh(15, 20, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 300 || !graph.IsConnected(g) {
		t.Fatalf("trimesh %v connected=%v", g, graph.IsConnected(g))
	}
	// Each cell contributes a diagonal: edges = h + v + cells.
	want := 15*19 + 14*20 + 14*19
	if g.NumEdges() != want {
		t.Fatalf("edges %d want %d", g.NumEdges(), want)
	}
	if _, err := TriMesh(1, 2, 1, 0); err == nil {
		t.Fatal("expected size error")
	}
}

func TestSphereMesh(t *testing.T) {
	g, err := SphereMesh(10, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2+9*12 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	if !graph.IsConnected(g) {
		t.Fatal("sphere must be connected")
	}
	if _, err := SphereMesh(2, 5, 0); err == nil {
		t.Fatal("expected size error")
	}
}

func TestDelaunaySmallBruteForce(t *testing.T) {
	// Verify the empty-circumcircle property by brute force on a small
	// instance: no input point strictly inside any triangle's circumcircle.
	const n = 60
	r := vecmath.NewRNG(11)
	px := make([]float64, n)
	py := make([]float64, n)
	for i := range px {
		px[i] = r.Float64()
		py[i] = r.Float64()
	}
	tris, err := triangulate(px, py, vecmath.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range tris {
		a, b, c := tr[0], tr[1], tr[2]
		// Ensure CCW before testing.
		if orient2d(px[a], py[a], px[b], py[b], px[c], py[c]) <= 0 {
			t.Fatalf("triangle %v not CCW", tr)
		}
		for p := 0; p < n; p++ {
			if p == a || p == b || p == c {
				continue
			}
			if inCircumcircle(px[a], py[a], px[b], py[b], px[c], py[c], px[p]-1e-12, py[p]) &&
				inCircumcircle(px[a], py[a], px[b], py[b], px[c], py[c], px[p]+1e-12, py[p]) {
				t.Fatalf("point %d strictly inside circumcircle of %v", p, tr)
			}
		}
	}
}

func TestDelaunayGraphProperties(t *testing.T) {
	g, err := Delaunay(500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	if !graph.IsConnected(g) {
		t.Fatal("Delaunay triangulation must be connected")
	}
	// Planar: |E| <= 3n - 6; triangulation of points in general position
	// is close to that bound.
	if g.NumEdges() > 3*500-6 {
		t.Fatalf("edges %d violate planarity", g.NumEdges())
	}
	if g.NumEdges() < 2*500 {
		t.Fatalf("edges %d suspiciously few for a triangulation", g.NumEdges())
	}
	if _, err := Delaunay(2, 0); err == nil {
		t.Fatal("expected n >= 3 error")
	}
}

func TestDelaunayDeterminism(t *testing.T) {
	a, err := Delaunay(300, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Delaunay(300, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed gave different triangulations")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(500, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 || !graph.IsConnected(g) {
		t.Fatal("BA graph must span and connect")
	}
	// Power-law-ish: max degree much larger than median.
	s := graph.Summarize(g)
	if s.MaxDegree < 5*3 {
		t.Fatalf("max degree %d too small for preferential attachment", s.MaxDegree)
	}
	if _, err := BarabasiAlbert(5, 5, 0); err == nil {
		t.Fatal("expected m < n error")
	}
	if _, err := BarabasiAlbert(1, 1, 0); err == nil {
		t.Fatal("expected n error")
	}
}

func TestRandomGeometric(t *testing.T) {
	g, err := RandomGeometric(800, 0.08, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("largest component must be connected")
	}
	if g.NumNodes() < 400 {
		t.Fatalf("largest component suspiciously small: %d", g.NumNodes())
	}
	if _, err := RandomGeometric(1, 0.1, 0); err == nil {
		t.Fatal("expected n error")
	}
	if _, err := RandomGeometric(10, 0, 0); err == nil {
		t.Fatal("expected radius error")
	}
}

func TestStreamUniform(t *testing.T) {
	g, err := PowerGrid(20, 20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	batches, err := Stream(g, StreamConfig{Kind: StreamUniform, Count: 100, Batches: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 10 {
		t.Fatalf("batches %d", len(batches))
	}
	seen := map[uint64]bool{}
	total := 0
	for _, b := range batches {
		for _, e := range b {
			total++
			if e.U == e.V {
				t.Fatal("self loop in stream")
			}
			if g.HasEdge(e.U, e.V) {
				t.Fatal("stream pair already adjacent")
			}
			k := graph.KeyOf(e.U, e.V)
			if seen[k] {
				t.Fatal("duplicate pair in stream")
			}
			seen[k] = true
			meanW := g.TotalWeight() / float64(g.NumEdges())
			if e.W < 0.5*meanW || e.W >= 2.0*meanW {
				t.Fatalf("weight %v outside default range around mean %v", e.W, meanW)
			}
		}
	}
	if total != 100 {
		t.Fatalf("total %d", total)
	}
}

func TestStreamLocalStaysLocal(t *testing.T) {
	g, err := PowerGrid(30, 30, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	batches, err := Stream(g, StreamConfig{Kind: StreamLocal, Count: 50, Batches: 5, HopRadius: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		for _, e := range b {
			// On a grid, hop distance >= Manhattan distance.
			ui, uj := e.U/30, e.U%30
			vi, vj := e.V/30, e.V%30
			manhattan := math.Abs(float64(ui-vi)) + math.Abs(float64(uj-vj))
			if manhattan > 3 {
				t.Fatalf("local stream pair %d-%d at distance %v", e.U, e.V, manhattan)
			}
		}
	}
}

func TestStreamErrors(t *testing.T) {
	g, _ := PowerGrid(3, 3, 0, 1)
	if _, err := Stream(g, StreamConfig{Count: 0}); err == nil {
		t.Fatal("expected count error")
	}
	tiny := graph.New(2, 1)
	tiny.AddEdge(0, 1, 1)
	if _, err := Stream(tiny, StreamConfig{Count: 1}); err == nil {
		t.Fatal("expected size error")
	}
	// Requesting more fresh pairs than exist must fail, not loop.
	k4 := graph.New(4, 6)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.AddEdge(i, j, 1)
		}
	}
	if _, err := Stream(k4, StreamConfig{Count: 5}); err == nil {
		t.Fatal("expected exhaustion error on complete graph")
	}
}

func TestRegistryAllBuildable(t *testing.T) {
	for _, tc := range Registry() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			g, err := tc.Build(0.01, 1) // 1% scale: tiny but structural
			if err != nil {
				t.Fatal(err)
			}
			if g.NumNodes() < 10 {
				t.Fatalf("%s too small: %d nodes", tc.Name, g.NumNodes())
			}
			if !graph.IsConnected(g) {
				t.Fatalf("%s disconnected at small scale", tc.Name)
			}
			if tc.Family == "" {
				t.Fatal("missing family")
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("g2_circuit"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nonexistent"); err == nil {
		t.Fatal("expected unknown-name error")
	}
}
