package gen

import (
	"fmt"
	"math"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// Delaunay builds the Delaunay triangulation of n uniform random points in
// the unit square (delaunay_n* analog) and returns it as a graph whose edge
// conductances are the reciprocal edge lengths. The triangulator is an
// incremental Bowyer-Watson with walking point location, O(n log n)
// expected on shuffled uniform input.
func Delaunay(n int, seed uint64) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: Delaunay needs n >= 3, got %d", n)
	}
	r := vecmath.NewRNG(seed)
	px := make([]float64, n)
	py := make([]float64, n)
	for i := 0; i < n; i++ {
		px[i] = r.Float64()
		py[i] = r.Float64()
	}
	tri, err := triangulate(px, py, r)
	if err != nil {
		return nil, err
	}
	g := graph.New(n, 3*n)
	seen := make(map[uint64]bool, 3*n)
	for _, t := range tri {
		for k := 0; k < 3; k++ {
			u, v := t[k], t[(k+1)%3]
			key := graph.KeyOf(u, v)
			if seen[key] {
				continue
			}
			seen[key] = true
			d := math.Hypot(px[u]-px[v], py[u]-py[v])
			if d < 1e-12 {
				d = 1e-12
			}
			g.AddEdge(u, v, 1/d)
		}
	}
	return g, nil
}

// triangle is a Bowyer-Watson triangle: CCW vertices and the neighbor
// across the edge opposite each vertex (neighbor[i] faces edge
// (v[(i+1)%3], v[(i+2)%3])).
type triangle struct {
	v     [3]int
	n     [3]int
	alive bool
}

// orient2d returns twice the signed area of (a,b,c): positive if CCW.
func orient2d(ax, ay, bx, by, cx, cy float64) float64 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// inCircumcircle reports whether point p lies strictly inside the
// circumcircle of the CCW triangle (a, b, c).
func inCircumcircle(ax, ay, bx, by, cx, cy, px, py float64) bool {
	adx, ady := ax-px, ay-py
	bdx, bdy := bx-px, by-py
	cdx, cdy := cx-px, cy-py
	ad := adx*adx + ady*ady
	bd := bdx*bdx + bdy*bdy
	cd := cdx*cdx + cdy*cdy
	det := adx*(bdy*cd-bd*cdy) - ady*(bdx*cd-bd*cdx) + ad*(bdx*cdy-bdy*cdx)
	return det > 0
}

// triangulate runs Bowyer-Watson over the given points and returns the
// vertex triples of the final triangles (super-triangle removed). The RNG
// shuffles the insertion order, which keeps both the walk length and the
// cavity sizes small in expectation.
func triangulate(px, py []float64, r *vecmath.RNG) ([][3]int, error) {
	n := len(px)
	// Append a super-triangle comfortably containing the unit square.
	const big = 64.0
	sx := []float64{-big, big, 0.5}
	sy := []float64{-big, -big, big}
	x := append(append([]float64{}, px...), sx...)
	y := append(append([]float64{}, py...), sy...)
	s0, s1, s2 := n, n+1, n+2

	tris := make([]triangle, 0, 2*n+8)
	tris = append(tris, triangle{v: [3]int{s0, s1, s2}, n: [3]int{-1, -1, -1}, alive: true})
	last := 0 // walk start hint

	order := r.Perm(n)

	// locate returns the index of a live triangle containing point p,
	// walking from the hint. maxSteps guards against cycles from float
	// degeneracy; on failure fall back to linear scan.
	locate := func(pxi, pyi float64) int {
		t := last
		if !tris[t].alive {
			for i := len(tris) - 1; i >= 0; i-- {
				if tris[i].alive {
					t = i
					break
				}
			}
		}
		maxSteps := 4 * (len(tris) + 16)
		for step := 0; step < maxSteps; step++ {
			tr := &tris[t]
			moved := false
			for k := 0; k < 3; k++ {
				a := tr.v[(k+1)%3]
				b := tr.v[(k+2)%3]
				if orient2d(x[a], y[a], x[b], y[b], pxi, pyi) < 0 {
					nb := tr.n[k]
					if nb >= 0 {
						t = nb
						moved = true
						break
					}
				}
			}
			if !moved {
				return t
			}
		}
		// Degenerate walk: brute-force scan.
		for i := range tris {
			tr := &tris[i]
			if !tr.alive {
				continue
			}
			inside := true
			for k := 0; k < 3; k++ {
				a := tr.v[(k+1)%3]
				b := tr.v[(k+2)%3]
				if orient2d(x[a], y[a], x[b], y[b], pxi, pyi) < -1e-12 {
					inside = false
					break
				}
			}
			if inside {
				return i
			}
		}
		return -1
	}

	cavity := make([]int, 0, 16)
	inCavity := make(map[int]bool, 16)
	stack := make([]int, 0, 16)

	for _, p := range order {
		pxi, pyi := x[p], y[p]
		t0 := locate(pxi, pyi)
		if t0 < 0 {
			return nil, fmt.Errorf("gen: point location failed for point %d", p)
		}

		// Grow the cavity: all connected triangles whose circumcircle
		// contains p.
		cavity = cavity[:0]
		for k := range inCavity {
			delete(inCavity, k)
		}
		stack = append(stack[:0], t0)
		inCavity[t0] = true
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cavity = append(cavity, t)
			for k := 0; k < 3; k++ {
				nb := tris[t].n[k]
				if nb < 0 || inCavity[nb] {
					continue
				}
				tv := tris[nb].v
				if inCircumcircle(x[tv[0]], y[tv[0]], x[tv[1]], y[tv[1]], x[tv[2]], y[tv[2]], pxi, pyi) {
					inCavity[nb] = true
					stack = append(stack, nb)
				}
			}
		}

		// Boundary edges of the cavity with their outer neighbors.
		type bedge struct {
			a, b  int // directed so that cavity interior is on the left
			outer int
		}
		var boundary []bedge
		for _, t := range cavity {
			for k := 0; k < 3; k++ {
				nb := tris[t].n[k]
				if nb >= 0 && inCavity[nb] {
					continue
				}
				a := tris[t].v[(k+1)%3]
				b := tris[t].v[(k+2)%3]
				boundary = append(boundary, bedge{a: a, b: b, outer: nb})
			}
		}
		for _, t := range cavity {
			tris[t].alive = false
		}

		// Fan of new triangles (p, a, b) over the boundary. Wire internal
		// adjacency via the directed-edge map p->a and p->b.
		edgeOwner := make(map[[2]int]int, 2*len(boundary))
		firstNew := -1
		for _, be := range boundary {
			nt := triangle{v: [3]int{p, be.a, be.b}, n: [3]int{be.outer, -1, -1}, alive: true}
			ti := len(tris)
			tris = append(tris, nt)
			if firstNew < 0 {
				firstNew = ti
			}
			// Fix the outer neighbor's back-pointer for exactly this shared
			// edge: the outer triangle (CCW) holds it directed as (b, a).
			if be.outer >= 0 {
				out := &tris[be.outer]
				for k := 0; k < 3; k++ {
					if out.v[(k+1)%3] == be.b && out.v[(k+2)%3] == be.a {
						out.n[k] = ti
						break
					}
				}
			}
			// Internal wiring: the new triangle's edge (p, a) pairs with a
			// sibling's edge (a, p) = its (p, b) side, and vice versa.
			if sib, ok := edgeOwner[[2]int{be.a, p}]; ok {
				// sibling has directed edge (b=a_here): sibling's edge (p,b)
				// is opposite its vertex index 1 (edge (b,p) faces v[1]=a).
				tris[ti].n[2] = sib // edge (p,a) is opposite v[2]=b
				tris[sib].n[1] = ti // sibling's edge (b,p) is opposite v[1]=a
			} else {
				edgeOwner[[2]int{p, be.a}] = ti
			}
			if sib, ok := edgeOwner[[2]int{p, be.b}]; ok {
				tris[ti].n[1] = sib
				tris[sib].n[2] = ti
			} else {
				edgeOwner[[2]int{be.b, p}] = ti
			}
		}
		last = firstNew
	}

	// Collect final triangles, dropping any that touch the super-triangle.
	out := make([][3]int, 0, 2*n)
	for i := range tris {
		t := &tris[i]
		if !t.alive {
			continue
		}
		if t.v[0] >= n || t.v[1] >= n || t.v[2] >= n {
			continue
		}
		out = append(out, t.v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("gen: triangulation produced no interior triangles")
	}
	return out, nil
}
