package gen

import "ingrass/internal/graph"

// G is shorthand for the graph type every generator returns.
type G = graph.Graph
