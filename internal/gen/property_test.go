package gen

import (
	"testing"
	"testing/quick"

	"ingrass/internal/graph"
)

// Property: streams never contain self-loops, duplicates, or pairs already
// adjacent in the host graph, across families and seeds.
func TestStreamFreshnessProperty(t *testing.T) {
	f := func(seed uint64, local bool) bool {
		g, err := PowerGrid(12, 12, 0.05, seed)
		if err != nil {
			return false
		}
		kind := StreamUniform
		if local {
			kind = StreamLocal
		}
		batches, err := Stream(g, StreamConfig{Kind: kind, Count: 40, Batches: 4, Seed: seed})
		if err != nil {
			return false
		}
		seen := map[uint64]bool{}
		total := 0
		for _, b := range batches {
			for _, e := range b {
				total++
				if e.U == e.V || e.W <= 0 {
					return false
				}
				if g.HasEdge(e.U, e.V) {
					return false
				}
				k := graph.KeyOf(e.U, e.V)
				if seen[k] {
					return false
				}
				seen[k] = true
			}
		}
		return total == 40
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch partitioning covers the whole stream with balanced batch
// sizes (within one of each other, except a possibly short tail).
func TestStreamBatchBalanceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := TriMesh(10, 10, 1, seed)
		if err != nil {
			return false
		}
		for _, batches := range []int{1, 3, 7, 10} {
			bs, err := Stream(g, StreamConfig{Count: 50, Batches: batches, Seed: seed})
			if err != nil {
				return false
			}
			if len(bs) != batches {
				return false
			}
			total := 0
			for _, b := range bs {
				total += len(b)
			}
			if total != 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: all registry generators produce connected graphs with positive
// weights at small scales, deterministically in the seed.
func TestRegistryDeterminismProperty(t *testing.T) {
	f := func(seedRaw uint64) bool {
		seed := seedRaw%100 + 1
		for _, name := range []string{"g2_circuit", "fe_4elt2", "delaunay_n14"} {
			tc, err := Lookup(name)
			if err != nil {
				return false
			}
			a, err := tc.Build(0.01, seed)
			if err != nil {
				return false
			}
			b, err := tc.Build(0.01, seed)
			if err != nil {
				return false
			}
			if a.NumEdges() != b.NumEdges() || a.NumNodes() != b.NumNodes() {
				return false
			}
			for i := range a.Edges() {
				if a.Edge(i) != b.Edge(i) {
					return false
				}
			}
			if !graph.IsConnected(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// Property: Delaunay triangulations of any seed satisfy Euler-consistent
// edge bounds for planar graphs and span all points.
func TestDelaunayPlanarityProperty(t *testing.T) {
	f := func(seedRaw uint64) bool {
		n := 50 + int(seedRaw%200)
		g, err := Delaunay(n, seedRaw)
		if err != nil {
			return false
		}
		if g.NumNodes() != n {
			return false
		}
		if g.NumEdges() > 3*n-6 {
			return false
		}
		return graph.IsConnected(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
