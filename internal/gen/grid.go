// Package gen generates the synthetic benchmark families standing in for
// the paper's SuiteSparse test cases (the module is offline, so downloading
// the originals is impossible; DESIGN.md documents the substitution):
//
//   - Power-grid graphs (G2_circuit / G3_circuit analogs): 2-D grids with
//     via stubs and log-uniform conductances, the structure of on-chip
//     power delivery networks.
//   - Structured triangular FE meshes (fe_4elt2 / M6 / 333SP / AS365 /
//     NACA15 analogs), including graded variants, and UV-sphere meshes
//     (fe_sphere / fe_ocean analogs).
//   - Delaunay triangulations of uniform random points (delaunay_n*
//     analogs), built with an incremental Bowyer-Watson triangulator.
//   - Barabasi-Albert preferential attachment and random geometric graphs
//     (the "social networks" the abstract mentions).
//
// All generators are deterministic in their seed.
package gen

import (
	"fmt"
	"math"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// PowerGrid builds a rows x cols power-delivery-style grid: nearest
// neighbor connections with log-uniform conductances in [10^-1, 10^1],
// plus viaFrac*N random "via" edges connecting nodes a few rows apart
// (modeling inter-layer stitching). The result is connected.
func PowerGrid(rows, cols int, viaFrac float64, seed uint64) (*graph.Graph, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("gen: PowerGrid needs at least 2x2, got %dx%d", rows, cols)
	}
	r := vecmath.NewRNG(seed)
	n := rows * cols
	g := graph.New(n, 2*n+int(viaFrac*float64(n)))
	id := func(i, j int) int { return i*cols + j }
	conduct := func() float64 { return math.Pow(10, r.Range(-1, 1)) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				g.AddEdge(id(i, j), id(i, j+1), conduct())
			}
			if i+1 < rows {
				g.AddEdge(id(i, j), id(i+1, j), conduct())
			}
		}
	}
	vias := int(viaFrac * float64(n))
	for k := 0; k < vias; k++ {
		i := r.Intn(rows)
		j := r.Intn(cols)
		di := 2 + r.Intn(4) // stitch 2-5 rows away
		ii := i + di
		if ii >= rows {
			ii = i - di
			if ii < 0 {
				continue
			}
		}
		u, v := id(i, j), id(ii, j)
		if u != v && !g.HasEdge(u, v) {
			// Vias are low-resistance: heavier than average.
			g.AddEdge(u, v, math.Pow(10, r.Range(0, 1.3)))
		}
	}
	return g, nil
}

// TriMesh builds a structured triangular mesh on a rows x cols lattice:
// grid edges plus one diagonal per cell, with conductance inversely
// proportional to edge length under an optional grading that compresses
// node spacing toward one side (FE meshes refine near features; grade=1 is
// uniform, grade>1 refines toward row 0).
func TriMesh(rows, cols int, grade float64, seed uint64) (*graph.Graph, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("gen: TriMesh needs at least 2x2, got %dx%d", rows, cols)
	}
	if grade <= 0 {
		grade = 1
	}
	r := vecmath.NewRNG(seed)
	n := rows * cols
	g := graph.New(n, 3*n)
	id := func(i, j int) int { return i*cols + j }
	// Node positions with grading along rows.
	y := make([]float64, rows)
	for i := range y {
		t := float64(i) / float64(rows-1)
		y[i] = math.Pow(t, grade)
	}
	pos := func(i, j int) (float64, float64) {
		return float64(j) / float64(cols-1), y[i]
	}
	w := func(u, v int) float64 {
		ux, uy := pos(u/cols, u%cols)
		vx, vy := pos(v/cols, v%cols)
		d := math.Hypot(ux-vx, uy-vy)
		if d < 1e-9 {
			d = 1e-9
		}
		return 1 / d
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			u := id(i, j)
			if j+1 < cols {
				g.AddEdge(u, id(i, j+1), w(u, id(i, j+1)))
			}
			if i+1 < rows {
				g.AddEdge(u, id(i+1, j), w(u, id(i+1, j)))
			}
			if i+1 < rows && j+1 < cols {
				// Alternate the diagonal direction randomly, as unstructured
				// FE meshes do.
				if r.Uint64()&1 == 0 {
					g.AddEdge(u, id(i+1, j+1), w(u, id(i+1, j+1)))
				} else {
					g.AddEdge(id(i, j+1), id(i+1, j), w(id(i, j+1), id(i+1, j)))
				}
			}
		}
	}
	return g, nil
}

// SphereMesh builds a UV-sphere mesh with the given number of latitude
// rings and longitudinal segments (fe_sphere analog): quad faces split by
// one diagonal, poles joined to their adjacent ring, conductance 1/chord
// length.
func SphereMesh(rings, segments int, seed uint64) (*graph.Graph, error) {
	if rings < 3 || segments < 3 {
		return nil, fmt.Errorf("gen: SphereMesh needs rings>=3, segments>=3")
	}
	r := vecmath.NewRNG(seed)
	// Nodes: 2 poles + (rings-1) * segments.
	n := 2 + (rings-1)*segments
	g := graph.New(n, 4*n)
	north, south := 0, 1
	id := func(ring, seg int) int { return 2 + (ring-1)*segments + (seg%segments+segments)%segments }
	coord := func(v int) (x, y, z float64) {
		if v == north {
			return 0, 0, 1
		}
		if v == south {
			return 0, 0, -1
		}
		k := v - 2
		ring := k/segments + 1
		seg := k % segments
		theta := math.Pi * float64(ring) / float64(rings)
		phi := 2 * math.Pi * float64(seg) / float64(segments)
		return math.Sin(theta) * math.Cos(phi), math.Sin(theta) * math.Sin(phi), math.Cos(theta)
	}
	w := func(u, v int) float64 {
		ux, uy, uz := coord(u)
		vx, vy, vz := coord(v)
		d := math.Sqrt((ux-vx)*(ux-vx) + (uy-vy)*(uy-vy) + (uz-vz)*(uz-vz))
		if d < 1e-9 {
			d = 1e-9
		}
		return 1 / d
	}
	add := func(u, v int) {
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v, w(u, v))
		}
	}
	for seg := 0; seg < segments; seg++ {
		add(north, id(1, seg))
		add(south, id(rings-1, seg))
	}
	for ring := 1; ring < rings; ring++ {
		for seg := 0; seg < segments; seg++ {
			add(id(ring, seg), id(ring, seg+1))
			if ring+1 < rings {
				add(id(ring, seg), id(ring+1, seg))
				// Random diagonal, as in TriMesh.
				if r.Uint64()&1 == 0 {
					add(id(ring, seg), id(ring+1, seg+1))
				} else {
					add(id(ring, seg+1), id(ring+1, seg))
				}
			}
		}
	}
	return g, nil
}
