package sparse

import (
	"context"
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// LaplacianSolver bundles a graph Laplacian with a Jacobi-preconditioned CG
// configuration. Scratch for every solve is checked out of the underlying
// operator's workspace pool per call, so the many repeated solves issued by
// resistance queries and condition-number pencils run allocation-free once
// the pool is warm.
//
// All solves are performed in the orthogonal complement of the all-ones
// vector: right-hand sides are mean-centered on entry and solutions are
// mean-centered on exit, which is exactly the pseudo-inverse action
// x = L^+ b for a connected graph.
//
// The solver handle itself is goroutine-confined (it carries counters);
// many handles can share one LapOperator.
type LaplacianSolver struct {
	op   *ProjectedOperator
	jac  *Jacobi
	pool *solver.Pool
	opts solver.Options
	n    int

	// Solve statistics, accumulated across calls.
	Solves     int
	TotalIters int
}

// NewLaplacianSolver freezes g and prepares a solver. A zero opts means
// defaults (tol 1e-8); opts.Workers > 1 enables parallel Laplacian
// application.
func NewLaplacianSolver(g *graph.Graph, opts solver.Options) *LaplacianSolver {
	lop := NewLapOperator(g)
	lop.SetWorkers(opts.Workers)
	lop.SetFormat(opts.Format)
	return NewLaplacianSolverFromOperator(lop, opts)
}

// NewLaplacianSolverFromOperator prepares a solver around an already-frozen
// Laplacian operator, skipping the O(N+E) CSR construction. The returned
// solver shares the operator's Jacobi preconditioner and workspace pool, so
// many goroutine-confined solvers can share one operator: that is how the
// service layer hands each concurrent reader a private solve handle over a
// single per-snapshot factorization.
func NewLaplacianSolverFromOperator(lop *LapOperator, opts solver.Options) *LaplacianSolver {
	n := lop.Dim()
	return &LaplacianSolver{
		op:   &ProjectedOperator{Inner: lop},
		jac:  lop.Jacobi(),
		pool: lop.Workspaces(),
		opts: opts.WithDefaults(n),
		n:    n,
	}
}

// Dim returns the system dimension.
func (s *LaplacianSolver) Dim() int { return s.n }

// Options returns the solver's effective (defaults-applied) options.
func (s *LaplacianSolver) Options() solver.Options { return s.opts }

// ApplyLap computes dst = L x using the solver's frozen Laplacian (the
// forward operator, not its pseudo-inverse). Pencil estimators need both
// directions and reuse the same CSR through this method.
func (s *LaplacianSolver) ApplyLap(dst, x []float64) {
	s.op.Inner.Apply(dst, x)
}

// Solve computes x = L^+ b into dst. b is not modified (dst may alias b).
// dst, b must have length Dim(). Returns the CG diagnostics;
// solver.ErrNoConvergence is reported but dst still holds the best iterate,
// and a cancelled ctx aborts with a solver.ErrCancelled-wrapped error.
func (s *LaplacianSolver) Solve(ctx context.Context, dst, b []float64) (CGResult, error) {
	if len(dst) != s.n || len(b) != s.n {
		return CGResult{}, fmt.Errorf("sparse: Solve dims dst=%d b=%d n=%d", len(dst), len(b), s.n)
	}
	ws := s.pool.Get()
	defer s.pool.Put(ws)
	rhs := ws.Take()
	copy(rhs, b)
	vecmath.CenterMean(rhs)
	vecmath.Zero(dst)
	res, err := CG(ctx, s.op, dst, rhs, s.jac, ws, s.opts)
	vecmath.CenterMean(dst)
	s.Solves++
	s.TotalIters += res.Iterations
	return res, err
}

// SolvePair computes the potential difference x_p - x_q where x = L^+ b_pq.
// This is exactly the effective resistance between p and q.
func (s *LaplacianSolver) SolvePair(ctx context.Context, p, q int) (float64, error) {
	if p == q {
		return 0, nil
	}
	ws := s.pool.Get()
	defer s.pool.Put(ws)
	rhs := ws.Take()
	sol := ws.Take()
	vecmath.Basis(rhs, p, q)
	vecmath.CenterMean(rhs)
	vecmath.Zero(sol)
	_, err := CG(ctx, s.op, sol, rhs, s.jac, ws, s.opts)
	s.Solves++
	return sol[p] - sol[q], err
}
