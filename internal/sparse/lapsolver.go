package sparse

import (
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// LaplacianSolver bundles a graph Laplacian with a Jacobi-preconditioned CG
// configuration and reusable scratch space, so the many repeated solves
// issued by resistance queries and condition-number pencils avoid
// per-solve allocation.
//
// All solves are performed in the orthogonal complement of the all-ones
// vector: right-hand sides are mean-centered on entry and solutions are
// mean-centered on exit, which is exactly the pseudo-inverse action
// x = L^+ b for a connected graph.
type LaplacianSolver struct {
	op      *ProjectedOperator
	precond func(dst, x []float64)
	opts    CGOptions
	n       int

	// Solve statistics, accumulated across calls.
	Solves     int
	TotalIters int

	rhs []float64
	sol []float64
}

// NewLaplacianSolver freezes g and prepares a solver. opts may be nil for
// defaults (tol 1e-8). Workers > 1 enables parallel Laplacian application.
func NewLaplacianSolver(g *graph.Graph, opts *CGOptions, workers int) *LaplacianSolver {
	lop := NewLapOperator(g)
	lop.Workers = workers
	return NewLaplacianSolverFromOperator(lop, opts)
}

// NewLaplacianSolverFromOperator prepares a solver around an already-frozen
// Laplacian operator, skipping the O(N+E) CSR construction. The returned
// solver owns only its scratch vectors, so many solvers can share one
// operator: that is how the service layer hands each concurrent reader a
// private solve handle over a single per-snapshot factorization.
func NewLaplacianSolverFromOperator(lop *LapOperator, opts *CGOptions) *LaplacianSolver {
	n := lop.Dim()
	s := &LaplacianSolver{
		op:      &ProjectedOperator{Inner: lop},
		precond: JacobiPrecond(lop.Diagonal()),
		opts:    opts.withDefaults(n),
		n:       n,
	}
	s.opts.Precond = s.precond
	s.rhs = make([]float64, s.n)
	s.sol = make([]float64, s.n)
	return s
}

// Dim returns the system dimension.
func (s *LaplacianSolver) Dim() int { return s.n }

// ApplyLap computes dst = L x using the solver's frozen Laplacian (the
// forward operator, not its pseudo-inverse). Pencil estimators need both
// directions and reuse the same CSR through this method.
func (s *LaplacianSolver) ApplyLap(dst, x []float64) {
	s.op.Inner.Apply(dst, x)
}

// Solve computes x = L^+ b into dst. b is not modified. dst, b must have
// length Dim(). Returns the CG diagnostics; ErrNoConvergence is reported
// but dst still holds the best iterate.
func (s *LaplacianSolver) Solve(dst, b []float64) (CGResult, error) {
	if len(dst) != s.n || len(b) != s.n {
		return CGResult{}, fmt.Errorf("sparse: Solve dims dst=%d b=%d n=%d", len(dst), len(b), s.n)
	}
	copy(s.rhs, b)
	vecmath.CenterMean(s.rhs)
	vecmath.Zero(s.sol)
	res, err := CG(s.op, s.sol, s.rhs, &s.opts)
	vecmath.CenterMean(s.sol)
	copy(dst, s.sol)
	s.Solves++
	s.TotalIters += res.Iterations
	return res, err
}

// SolvePair computes the potential difference x_p - x_q where x = L^+ b_pq.
// This is exactly the effective resistance between p and q.
func (s *LaplacianSolver) SolvePair(p, q int) (float64, error) {
	if p == q {
		return 0, nil
	}
	vecmath.Basis(s.rhs, p, q)
	vecmath.CenterMean(s.rhs)
	vecmath.Zero(s.sol)
	_, err := CG(s.op, s.sol, s.rhs, &s.opts)
	s.Solves++
	if err != nil {
		return s.sol[p] - s.sol[q], err
	}
	return s.sol[p] - s.sol[q], nil
}
