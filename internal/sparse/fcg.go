package sparse

import (
	"context"
	"fmt"
	"math"

	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// FlexibleCG solves A x = b by the flexible (Polak-Ribiere) preconditioned
// conjugate gradient method. Unlike standard PCG, FCG tolerates a
// preconditioner that is itself an iterative solve (e.g. a truncated CG on
// a sparsifier Laplacian) and therefore varies slightly from application to
// application — exactly the setting of sparsifier-preconditioned solvers.
//
// x is the start guess and is overwritten. pre must be a (possibly inexact)
// SPD-like map; pass nil for none. ctx is checked once per iteration: a
// cancelled or expired context aborts with a solver.ErrCancelled-wrapped
// error and partial stats. Scratch comes from ws; pass nil to allocate a
// private workspace (cold paths only).
func FlexibleCG(ctx context.Context, a Operator, x, b []float64, pre Preconditioner, ws *solver.Workspace, opts solver.Options) (CGResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := a.Dim()
	if len(x) != n || len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: FlexibleCG dimension mismatch x=%d b=%d n=%d", len(x), len(b), n)
	}
	if ws == nil {
		ws = solver.NewWorkspace(n)
	} else if ws.Dim() != n {
		return CGResult{}, fmt.Errorf("sparse: FlexibleCG workspace dim %d != n=%d", ws.Dim(), n)
	}
	if err := solver.CheckCancel(ctx); err != nil {
		return CGResult{}, err
	}
	o := opts.WithDefaults(n)

	normB := vecmath.Norm2(b)
	if normB == 0 {
		vecmath.Zero(x)
		return CGResult{Converged: true}, nil
	}
	target := o.Tol * normB

	mark := ws.Mark()
	defer ws.Release(mark)
	r := ws.Take()
	z := ws.Take()
	p := ws.Take()
	ap := ws.Take()

	kp := KernelsOf(a)

	a.Apply(r, x)
	vecmath.Sub(r, b, r)

	apply := func(dst, src []float64) {
		if pre != nil {
			pre.Precond(dst, src)
		} else {
			copy(dst, src)
		}
	}

	apply(z, r)
	copy(p, z)
	zr, rnSq := kp.DotNorm(z, r)

	rn := math.Sqrt(rnSq)
	res := CGResult{Residual: rn / normB}
	if rn <= target {
		res.Converged = true
		return res, nil
	}

	for k := 0; k < o.MaxIter; k++ {
		if err := solver.CheckCancel(ctx); err != nil {
			return res, err
		}
		a.Apply(ap, p)
		pap := kp.Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			res.Iterations = k
			res.Residual = math.Sqrt(rnSq) / normB
			// A cancellation landing inside an iterative preconditioner
			// leaves a zero/degenerate direction; report the cancellation,
			// not a spurious breakdown.
			if err := solver.CheckCancel(ctx); err != nil {
				return res, err
			}
			return res, fmt.Errorf("sparse: FlexibleCG breakdown, p'Ap = %g at iteration %d", pap, k)
		}
		alpha := zr / pap
		// Fused paired update: x += alpha*p, r -= alpha*ap, plus the new
		// residual norm, in one pass (previously two AXPYs, a full copy of
		// r into rPrev, and a Norm2).
		rnSq = kp.AXPY2(x, r, alpha, p, ap)
		rn := math.Sqrt(rnSq)
		res.Iterations = k + 1
		res.Residual = rn / normB
		if rn <= target {
			res.Converged = true
			return res, nil
		}

		apply(z, r)
		// Polak-Ribiere: beta = z'(r - rPrev) / (z_prev' r_prev). Since
		// r - rPrev = -alpha*ap by construction, the difference form reduces
		// to -alpha * z'ap — which kills the rPrev copy entirely and lets
		// one fused pass produce both products the update needs.
		zAp, zrNew := kp.Dot2(z, ap, r)
		beta := -alpha * zAp / zr
		if beta < 0 {
			beta = 0 // restart direction on loss of conjugacy
		}
		zr = zrNew
		if zr <= 0 || math.IsNaN(zr) {
			// The preconditioner stopped acting SPD (z'r must be positive
			// for an SPD-like M^{-1}). A cancelled inner solve also lands
			// here — it returns z = 0 before the next loop-top check — so
			// classify that case as cancellation, not breakdown.
			res.Residual = rn / normB
			if err := solver.CheckCancel(ctx); err != nil {
				return res, err
			}
			return res, fmt.Errorf("sparse: FlexibleCG preconditioner not positive at iteration %d", k)
		}
		kp.XPBYInto(p, z, beta)
	}
	return res, ErrNoConvergence
}
