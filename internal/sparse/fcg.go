package sparse

import (
	"fmt"
	"math"

	"ingrass/internal/vecmath"
)

// FlexibleCG solves A x = b by the flexible (Polak-Ribiere) preconditioned
// conjugate gradient method. Unlike standard PCG, FCG tolerates a
// preconditioner that is itself an iterative solve (e.g. a truncated CG on
// a sparsifier Laplacian) and therefore varies slightly from application to
// application — exactly the setting of sparsifier-preconditioned solvers.
//
// x is the start guess and is overwritten. The preconditioner must be a
// (possibly inexact) SPD-like map dst = M^{-1} src; pass nil for none.
func FlexibleCG(a Operator, x, b []float64, precond func(dst, src []float64), opts *CGOptions) (CGResult, error) {
	n := a.Dim()
	if len(x) != n || len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: FlexibleCG dimension mismatch x=%d b=%d n=%d", len(x), len(b), n)
	}
	o := opts.withDefaults(n)

	normB := vecmath.Norm2(b)
	if normB == 0 {
		vecmath.Zero(x)
		return CGResult{Converged: true}, nil
	}
	target := o.Tol * normB

	r := make([]float64, n)
	rPrev := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	a.Apply(r, x)
	vecmath.Sub(r, b, r)

	apply := func(dst, src []float64) {
		if precond != nil {
			precond(dst, src)
		} else {
			copy(dst, src)
		}
	}

	apply(z, r)
	copy(p, z)
	zr := vecmath.Dot(z, r)

	res := CGResult{Residual: vecmath.Norm2(r) / normB}
	if vecmath.Norm2(r) <= target {
		res.Converged = true
		return res, nil
	}

	for k := 0; k < o.MaxIter; k++ {
		a.Apply(ap, p)
		pap := vecmath.Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			res.Iterations = k
			res.Residual = vecmath.Norm2(r) / normB
			return res, fmt.Errorf("sparse: FlexibleCG breakdown, p'Ap = %g at iteration %d", pap, k)
		}
		alpha := zr / pap
		vecmath.AXPY(x, alpha, p)
		copy(rPrev, r)
		vecmath.AXPY(r, -alpha, ap)

		rn := vecmath.Norm2(r)
		res.Iterations = k + 1
		res.Residual = rn / normB
		if rn <= target {
			res.Converged = true
			return res, nil
		}

		apply(z, r)
		// Polak-Ribiere: beta = z'(r - rPrev) / (z_prev' r_prev); the
		// difference form keeps conjugacy under an inexact preconditioner.
		var num float64
		for i := range z {
			num += z[i] * (r[i] - rPrev[i])
		}
		beta := num / zr
		if beta < 0 {
			beta = 0 // restart direction on loss of conjugacy
		}
		zr = vecmath.Dot(z, r)
		if zr <= 0 || math.IsNaN(zr) {
			// Preconditioner stopped acting SPD; restart from steepest
			// descent rather than aborting.
			copy(p, z)
			zr = vecmath.Dot(z, r)
			if zr <= 0 {
				res.Residual = rn / normB
				return res, fmt.Errorf("sparse: FlexibleCG preconditioner not positive at iteration %d", k)
			}
			continue
		}
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res, ErrNoConvergence
}
