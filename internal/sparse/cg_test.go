package sparse

import (
	"context"
	"math"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// gridGraph builds an r x c grid with unit weights.
func gridGraph(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func TestCGSolvesSPDDense(t *testing.T) {
	// Small SPD system via FuncOperator: A = tridiag(-1, 3, -1).
	const n = 20
	op := &FuncOperator{N: n, Fn: func(dst, x []float64) {
		for i := 0; i < n; i++ {
			s := 3 * x[i]
			if i > 0 {
				s -= x[i-1]
			}
			if i+1 < n {
				s -= x[i+1]
			}
			dst[i] = s
		}
	}}
	b := make([]float64, n)
	vecmath.NewRNG(1).FillNormal(b)
	x := make([]float64, n)
	res, err := CG(context.Background(), op, x, b, nil, nil, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	check := make([]float64, n)
	op.Apply(check, x)
	vecmath.Sub(check, check, b)
	if vecmath.Norm2(check) > 1e-6*vecmath.Norm2(b) {
		t.Fatalf("residual %v", vecmath.Norm2(check))
	}
}

func TestCGZeroRHS(t *testing.T) {
	op := &FuncOperator{N: 3, Fn: func(dst, x []float64) { copy(dst, x) }}
	x := []float64{1, 2, 3}
	res, err := CG(context.Background(), op, x, make([]float64, 3), nil, nil, solver.Options{})
	if err != nil || !res.Converged {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if vecmath.Norm2(x) != 0 {
		t.Fatalf("x = %v, want zero", x)
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	op := &FuncOperator{N: 3, Fn: func(dst, x []float64) { copy(dst, x) }}
	if _, err := CG(context.Background(), op, make([]float64, 2), make([]float64, 3), nil, nil, solver.Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	// A = -I is negative definite; CG must report breakdown, not loop.
	op := &FuncOperator{N: 4, Fn: func(dst, x []float64) {
		for i := range dst {
			dst[i] = -x[i]
		}
	}}
	b := []float64{1, 0, 0, 0}
	x := make([]float64, 4)
	if _, err := CG(context.Background(), op, x, b, nil, nil, solver.Options{}); err == nil {
		t.Fatal("expected breakdown error")
	}
}

func TestCGIterationLimit(t *testing.T) {
	// Force tiny iteration budget on a moderately conditioned problem.
	g := gridGraph(20, 20)
	s := NewLaplacianSolver(g, solver.Options{MaxIter: 2, Tol: 1e-14})
	b := make([]float64, g.NumNodes())
	vecmath.NewRNG(3).FillNormal(b)
	vecmath.CenterMean(b)
	dst := make([]float64, g.NumNodes())
	if _, err := s.Solve(context.Background(), dst, b); err == nil {
		t.Fatal("expected ErrNoConvergence with 2 iterations")
	}
}

func TestLaplacianSolverMatchesDenseOracle(t *testing.T) {
	g := gridGraph(5, 4)
	n := g.NumNodes()
	s := NewLaplacianSolver(g, solver.Options{Tol: 1e-12})
	dense := DenseLaplacian(g)

	r := vecmath.NewRNG(9)
	for trial := 0; trial < 5; trial++ {
		b := make([]float64, n)
		r.FillNormal(b)
		vecmath.CenterMean(b)
		want, err := vecmath.PseudoInverseApply(dense, b)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		if _, err := s.Solve(context.Background(), got, b); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-7 {
				t.Fatalf("trial %d entry %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
	if s.Solves != 5 {
		t.Fatalf("solve counter %d", s.Solves)
	}
}

func TestSolvePairIsPathResistance(t *testing.T) {
	// Path graph: R(0, k) = sum of 1/w over the path.
	g := graph.New(5, 4)
	ws := []float64{1, 2, 4, 0.5}
	for i, w := range ws {
		g.AddEdge(i, i+1, w)
	}
	s := NewLaplacianSolver(g, solver.Options{Tol: 1e-12})
	want := 0.0
	for _, w := range ws {
		want += 1 / w
	}
	got, err := s.SolvePair(context.Background(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-8 {
		t.Fatalf("R(0,4) = %v, want %v", got, want)
	}
	if r, _ := s.SolvePair(context.Background(), 2, 2); r != 0 {
		t.Fatalf("R(2,2) = %v", r)
	}
}

func TestSolvePairParallelEdges(t *testing.T) {
	// Two unit edges in parallel: R = 0.5.
	g := graph.New(2, 2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	s := NewLaplacianSolver(g, solver.Options{Tol: 1e-12})
	got, err := s.SolvePair(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-10 {
		t.Fatalf("R = %v, want 0.5", got)
	}
}

func TestJacobiPrecondZeroDiagonal(t *testing.T) {
	p := NewJacobi([]float64{2, 0, 4})
	dst := make([]float64, 3)
	p.Precond(dst, []float64{2, 3, 8})
	if dst[0] != 1 || dst[1] != 3 || dst[2] != 2 {
		t.Fatalf("precond = %v", dst)
	}
}

func TestJacobiSpeedsUpCG(t *testing.T) {
	// A grid Laplacian with widely varying weights: Jacobi should reduce
	// iterations versus plain CG.
	r := vecmath.NewRNG(5)
	g := graph.New(0, 0)
	const rows, cols = 15, 15
	for i := 0; i < rows*cols; i++ {
		g.AddNode()
	}
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				g.AddEdge(id(i, j), id(i, j+1), math.Pow(10, r.Range(-2, 2)))
			}
			if i+1 < rows {
				g.AddEdge(id(i, j), id(i+1, j), math.Pow(10, r.Range(-2, 2)))
			}
		}
	}
	b := make([]float64, g.NumNodes())
	r.FillNormal(b)
	vecmath.CenterMean(b)

	lop := NewLapOperator(g)
	proj := &ProjectedOperator{Inner: lop}

	xPlain := make([]float64, g.NumNodes())
	plain, errPlain := CG(context.Background(), proj, xPlain, b, nil, nil, solver.Options{Tol: 1e-10, MaxIter: 5000})
	xPre := make([]float64, g.NumNodes())
	pre, errPre := CG(context.Background(), proj, xPre, b, lop.Jacobi(), nil, solver.Options{Tol: 1e-10, MaxIter: 5000})
	if errPlain != nil || errPre != nil {
		t.Fatalf("plain err=%v pre err=%v", errPlain, errPre)
	}
	if pre.Iterations >= plain.Iterations {
		t.Fatalf("Jacobi did not help: %d vs %d iterations", pre.Iterations, plain.Iterations)
	}
}

func TestDenseLaplacianProperties(t *testing.T) {
	g := gridGraph(3, 3)
	l := DenseLaplacian(g)
	if !l.IsSymmetric(0) {
		t.Fatal("Laplacian must be symmetric")
	}
	// Row sums are zero.
	for i := 0; i < l.Rows; i++ {
		if math.Abs(vecmath.Sum(l.Row(i))) > 1e-12 {
			t.Fatalf("row %d sum %v", i, vecmath.Sum(l.Row(i)))
		}
	}
	// Quadratic form agrees with graph.QuadraticForm.
	x := make([]float64, g.NumNodes())
	vecmath.NewRNG(2).FillNormal(x)
	lx := make([]float64, len(x))
	l.MulVec(lx, x)
	if math.Abs(vecmath.Dot(x, lx)-g.QuadraticForm(x)) > 1e-9 {
		t.Fatal("dense quadratic form mismatch")
	}
}

func TestLapOperatorParallelAgrees(t *testing.T) {
	g := gridGraph(40, 40)
	serial := NewLapOperator(g)
	parallel := NewLapOperator(g)
	parallel.SetWorkers(4)
	x := make([]float64, g.NumNodes())
	vecmath.NewRNG(8).FillNormal(x)
	a := make([]float64, len(x))
	b := make([]float64, len(x))
	serial.Apply(a, x)
	parallel.Apply(b, x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-10 {
			t.Fatalf("parallel mismatch at %d", i)
		}
	}
	if serial.Dim() != g.NumNodes() {
		t.Fatal("Dim wrong")
	}
}
