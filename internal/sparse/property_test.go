package sparse

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

func randomConnectedGraph(seed uint64, n, extra int) *graph.Graph {
	r := vecmath.NewRNG(seed)
	g := graph.New(n, n+extra)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[r.Intn(i)], r.Range(0.1, 10))
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, r.Range(0.1, 10))
		}
	}
	return g
}

// Property: the Laplacian solver produces a true pseudo-inverse action —
// L (L^+ b) = b for mean-zero b, and the solution is mean-zero.
func TestSolverPseudoInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnectedGraph(seed, 25, 40)
		s := NewLaplacianSolver(g, solver.Options{Tol: 1e-11})
		r := vecmath.NewRNG(seed ^ 0x5)
		b := make([]float64, 25)
		r.FillNormal(b)
		vecmath.CenterMean(b)
		x := make([]float64, 25)
		if _, err := s.Solve(context.Background(), x, b); err != nil {
			return false
		}
		if math.Abs(vecmath.Sum(x)) > 1e-6*(1+vecmath.NormInf(x)) {
			return false
		}
		lx := make([]float64, 25)
		g.LapMul(lx, x)
		vecmath.Sub(lx, lx, b)
		return vecmath.Norm2(lx) <= 1e-6*vecmath.Norm2(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: effective resistance via SolvePair matches the quadratic-form
// identity R(p, q) = b_pq' L^+ b_pq >= 0 and is symmetric.
func TestSolvePairSymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnectedGraph(seed, 20, 30)
		s := NewLaplacianSolver(g, solver.Options{Tol: 1e-11})
		r := vecmath.NewRNG(seed ^ 0x9)
		for k := 0; k < 8; k++ {
			p, q := r.Intn(20), r.Intn(20)
			a, err1 := s.SolvePair(context.Background(), p, q)
			b, err2 := s.SolvePair(context.Background(), q, p)
			if err1 != nil || err2 != nil {
				return false
			}
			if math.Abs(a-b) > 1e-7*(1+math.Abs(a)) {
				return false
			}
			if p != q && a <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: CG and FlexibleCG agree with the dense oracle on random SPD
// systems (Laplacian + small diagonal shift).
func TestCGAgainstDenseOracleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnectedGraph(seed, 15, 20)
		const shift = 0.5
		lop := NewLapOperator(g)
		op := &FuncOperator{N: 15, Fn: func(dst, x []float64) {
			lop.Apply(dst, x)
			for i := range dst {
				dst[i] += shift * x[i]
			}
		}}
		r := vecmath.NewRNG(seed ^ 0x77)
		b := make([]float64, 15)
		r.FillNormal(b)

		dense := DenseLaplacian(g)
		for i := 0; i < 15; i++ {
			dense.Add(i, i, shift)
		}
		want, err := vecmath.SolveSPD(dense, b)
		if err != nil {
			return false
		}

		x1 := make([]float64, 15)
		if _, err := CG(context.Background(), op, x1, b, nil, nil, solver.Options{Tol: 1e-12}); err != nil {
			return false
		}
		x2 := make([]float64, 15)
		if _, err := FlexibleCG(context.Background(), op, x2, b, nil, nil, solver.Options{Tol: 1e-12}); err != nil {
			return false
		}
		for i := range want {
			if math.Abs(x1[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
			if math.Abs(x2[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
