package sparse

import (
	"errors"
	"fmt"
	"math"

	"ingrass/internal/vecmath"
)

// ErrNoConvergence is returned when an iterative solve exhausts its
// iteration budget before reaching the requested tolerance. The partial
// solution is still returned alongside it, since downstream estimators can
// often tolerate loose solves.
var ErrNoConvergence = errors.New("sparse: iteration limit reached before convergence")

// CGOptions controls the conjugate-gradient solvers.
type CGOptions struct {
	// Tol is the relative residual target ||r|| <= Tol*||b||. Default 1e-8.
	Tol float64
	// MaxIter bounds iterations. Default 10*n (capped at 20000).
	MaxIter int
	// Precond, if non-nil, applies an SPD preconditioner dst = M^{-1} x.
	Precond func(dst, x []float64)
}

func (o *CGOptions) withDefaults(n int) CGOptions {
	out := CGOptions{Tol: 1e-8, MaxIter: 10 * n}
	if out.MaxIter > 20000 {
		out.MaxIter = 20000
	}
	if out.MaxIter < 50 {
		out.MaxIter = 50
	}
	if o != nil {
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		if o.MaxIter > 0 {
			out.MaxIter = o.MaxIter
		}
		out.Precond = o.Precond
	}
	return out
}

// CGResult reports how a solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// CG solves A x = b for a symmetric positive (semi-)definite operator using
// preconditioned conjugate gradients. x is used as the starting guess and
// overwritten with the solution. For singular-but-consistent systems
// (Laplacians with mean-zero b), wrap A in a ProjectedOperator and keep x
// mean-zero.
func CG(a Operator, x, b []float64, opts *CGOptions) (CGResult, error) {
	n := a.Dim()
	if len(x) != n || len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: CG dimension mismatch x=%d b=%d n=%d", len(x), len(b), n)
	}
	o := opts.withDefaults(n)

	normB := vecmath.Norm2(b)
	if normB == 0 {
		vecmath.Zero(x)
		return CGResult{Converged: true}, nil
	}
	target := o.Tol * normB

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	// r = b - A x
	a.Apply(r, x)
	vecmath.Sub(r, b, r)

	applyPrecond := func(dst, src []float64) {
		if o.Precond != nil {
			o.Precond(dst, src)
		} else {
			copy(dst, src)
		}
	}

	applyPrecond(z, r)
	copy(p, z)
	rz := vecmath.Dot(r, z)

	res := CGResult{Residual: vecmath.Norm2(r) / normB}
	if vecmath.Norm2(r) <= target {
		res.Converged = true
		return res, nil
	}

	for k := 0; k < o.MaxIter; k++ {
		a.Apply(ap, p)
		pap := vecmath.Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Negative curvature or breakdown: the operator is not SPD on
			// this subspace (or we've hit the null space numerically).
			res.Iterations = k
			res.Residual = vecmath.Norm2(r) / normB
			return res, fmt.Errorf("sparse: CG breakdown, p'Ap = %g at iteration %d", pap, k)
		}
		alpha := rz / pap
		vecmath.AXPY(x, alpha, p)
		vecmath.AXPY(r, -alpha, ap)

		rn := vecmath.Norm2(r)
		res.Iterations = k + 1
		res.Residual = rn / normB
		if rn <= target {
			res.Converged = true
			return res, nil
		}

		applyPrecond(z, r)
		rzNew := vecmath.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res, ErrNoConvergence
}

// JacobiPrecond returns a diagonal (Jacobi) preconditioner closure for the
// given diagonal. Zero diagonal entries (isolated nodes) pass through
// unscaled.
func JacobiPrecond(diag []float64) func(dst, x []float64) {
	inv := make([]float64, len(diag))
	for i, d := range diag {
		if d > 0 {
			inv[i] = 1 / d
		} else {
			inv[i] = 1
		}
	}
	return func(dst, x []float64) {
		for i := range dst {
			dst[i] = inv[i] * x[i]
		}
	}
}
