package sparse

import (
	"context"
	"fmt"
	"math"

	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// ErrNoConvergence aliases the stack-wide sentinel so existing errors.Is
// checks against the sparse package keep working.
var ErrNoConvergence = solver.ErrNoConvergence

// CGResult reports how a solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// CG solves A x = b for a symmetric positive (semi-)definite operator using
// preconditioned conjugate gradients. x is used as the starting guess and
// overwritten with the solution. For singular-but-consistent systems
// (Laplacians with mean-zero b), wrap A in a ProjectedOperator and keep x
// mean-zero.
//
// ctx is checked before any work and once per iteration; a cancelled or
// expired context aborts the solve with a solver.ErrCancelled-wrapped error
// and the partial iterate left in x. pre may be nil for no preconditioning.
// Scratch comes from ws; pass nil to allocate a private workspace (cold
// paths only).
func CG(ctx context.Context, a Operator, x, b []float64, pre Preconditioner, ws *solver.Workspace, opts solver.Options) (CGResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := a.Dim()
	if len(x) != n || len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: CG dimension mismatch x=%d b=%d n=%d", len(x), len(b), n)
	}
	if ws == nil {
		ws = solver.NewWorkspace(n)
	} else if ws.Dim() != n {
		return CGResult{}, fmt.Errorf("sparse: CG workspace dim %d != n=%d", ws.Dim(), n)
	}
	if err := solver.CheckCancel(ctx); err != nil {
		return CGResult{}, err
	}
	o := opts.WithDefaults(n)

	normB := vecmath.Norm2(b)
	if normB == 0 {
		vecmath.Zero(x)
		return CGResult{Converged: true}, nil
	}
	target := o.Tol * normB

	mark := ws.Mark()
	defer ws.Release(mark)
	r := ws.Take()
	z := ws.Take()
	p := ws.Take()
	ap := ws.Take()

	// Fused vector kernels run on the operator's persistent worker pool when
	// it has one (nil dispatches serially).
	kp := KernelsOf(a)

	// r = b - A x
	a.Apply(r, x)
	vecmath.Sub(r, b, r)

	// With no preconditioner z is r itself: skip the copy passes entirely
	// and fold the z'r product into the residual norm.
	var rz, rnSq float64
	if pre != nil {
		pre.Precond(z, r)
		rz, rnSq = kp.DotNorm(z, r)
	} else {
		z = r
		rnSq = kp.Dot(r, r)
		rz = rnSq
	}
	copy(p, z)

	rn := math.Sqrt(rnSq)
	res := CGResult{Residual: rn / normB}
	if rn <= target {
		res.Converged = true
		return res, nil
	}

	for k := 0; k < o.MaxIter; k++ {
		if err := solver.CheckCancel(ctx); err != nil {
			return res, err
		}
		a.Apply(ap, p)
		pap := kp.Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Negative curvature or breakdown: the operator is not SPD on
			// this subspace (or we've hit the null space numerically).
			res.Iterations = k
			res.Residual = math.Sqrt(rnSq) / normB
			return res, fmt.Errorf("sparse: CG breakdown, p'Ap = %g at iteration %d", pap, k)
		}
		alpha := rz / pap
		// One pass updates the iterate and residual and yields the new
		// residual norm (previously two AXPYs plus a Norm2).
		rnSq = kp.AXPY2(x, r, alpha, p, ap)
		rn := math.Sqrt(rnSq)
		res.Iterations = k + 1
		res.Residual = rn / normB
		if rn <= target {
			res.Converged = true
			return res, nil
		}

		var rzNew float64
		if pre != nil {
			pre.Precond(z, r)
			rzNew = kp.Dot(r, z)
		} else {
			rzNew = rnSq // z aliases r, so z'r is the squared norm just computed
		}
		beta := rzNew / rz
		rz = rzNew
		kp.XPBYInto(p, z, beta)
	}
	return res, ErrNoConvergence
}
