package sparse

import (
	"context"
	"fmt"
	"math"

	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// ErrNoConvergence aliases the stack-wide sentinel so existing errors.Is
// checks against the sparse package keep working.
var ErrNoConvergence = solver.ErrNoConvergence

// CGResult reports how a solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// CG solves A x = b for a symmetric positive (semi-)definite operator using
// preconditioned conjugate gradients. x is used as the starting guess and
// overwritten with the solution. For singular-but-consistent systems
// (Laplacians with mean-zero b), wrap A in a ProjectedOperator and keep x
// mean-zero.
//
// ctx is checked before any work and once per iteration; a cancelled or
// expired context aborts the solve with a solver.ErrCancelled-wrapped error
// and the partial iterate left in x. pre may be nil for no preconditioning.
// Scratch comes from ws; pass nil to allocate a private workspace (cold
// paths only).
func CG(ctx context.Context, a Operator, x, b []float64, pre Preconditioner, ws *solver.Workspace, opts solver.Options) (CGResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := a.Dim()
	if len(x) != n || len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: CG dimension mismatch x=%d b=%d n=%d", len(x), len(b), n)
	}
	if ws == nil {
		ws = solver.NewWorkspace(n)
	} else if ws.Dim() != n {
		return CGResult{}, fmt.Errorf("sparse: CG workspace dim %d != n=%d", ws.Dim(), n)
	}
	if err := solver.CheckCancel(ctx); err != nil {
		return CGResult{}, err
	}
	o := opts.WithDefaults(n)

	normB := vecmath.Norm2(b)
	if normB == 0 {
		vecmath.Zero(x)
		return CGResult{Converged: true}, nil
	}
	target := o.Tol * normB

	mark := ws.Mark()
	defer ws.Release(mark)
	r := ws.Take()
	z := ws.Take()
	p := ws.Take()
	ap := ws.Take()

	// r = b - A x
	a.Apply(r, x)
	vecmath.Sub(r, b, r)

	applyPrecond := func(dst, src []float64) {
		if pre != nil {
			pre.Precond(dst, src)
		} else {
			copy(dst, src)
		}
	}

	applyPrecond(z, r)
	copy(p, z)
	rz := vecmath.Dot(r, z)

	res := CGResult{Residual: vecmath.Norm2(r) / normB}
	if vecmath.Norm2(r) <= target {
		res.Converged = true
		return res, nil
	}

	for k := 0; k < o.MaxIter; k++ {
		if err := solver.CheckCancel(ctx); err != nil {
			return res, err
		}
		a.Apply(ap, p)
		pap := vecmath.Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Negative curvature or breakdown: the operator is not SPD on
			// this subspace (or we've hit the null space numerically).
			res.Iterations = k
			res.Residual = vecmath.Norm2(r) / normB
			return res, fmt.Errorf("sparse: CG breakdown, p'Ap = %g at iteration %d", pap, k)
		}
		alpha := rz / pap
		vecmath.AXPY(x, alpha, p)
		vecmath.AXPY(r, -alpha, ap)

		rn := vecmath.Norm2(r)
		res.Iterations = k + 1
		res.Residual = rn / normB
		if rn <= target {
			res.Converged = true
			return res, nil
		}

		applyPrecond(z, r)
		rzNew := vecmath.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res, ErrNoConvergence
}
