// Package sparse provides the iterative linear-algebra substrate: abstract
// symmetric operators, conjugate-gradient solvers with Jacobi
// preconditioning, and Laplacian-specific wrappers that work in the
// orthogonal complement of the constant vector (a connected Laplacian's
// null space). Exact effective resistances and condition-number estimates
// are computed through these solvers.
//
// Every solve entry point takes the request-scoped contract from
// internal/solver: a context (checked once per iteration), a unified
// solver.Options, and a pooled solver.Workspace for scratch vectors.
package sparse

import (
	"time"

	"ingrass/internal/graph"
	"ingrass/internal/kernel"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// Operator is a symmetric linear operator y = A x applied matrix-free.
type Operator interface {
	// Dim returns the operator's dimension n.
	Dim() int
	// Apply computes dst = A x; dst and x have length Dim() and must not alias.
	Apply(dst, x []float64)
}

// Preconditioner applies an SPD-like map dst = M^{-1} src. Implementations
// used on the hot path are pointer types so passing them through interface
// values never allocates.
type Preconditioner interface {
	Precond(dst, src []float64)
}

// PrecondFunc adapts a closure to the Preconditioner interface.
type PrecondFunc func(dst, src []float64)

// Precond invokes the closure.
func (f PrecondFunc) Precond(dst, src []float64) { f(dst, src) }

// Jacobi is a diagonal preconditioner. Zero diagonal entries (isolated
// nodes) pass through unscaled.
type Jacobi struct {
	inv []float64
}

// NewJacobi builds the diagonal preconditioner for the given diagonal.
func NewJacobi(diag []float64) *Jacobi {
	inv := make([]float64, len(diag))
	for i, d := range diag {
		if d > 0 {
			inv[i] = 1 / d
		} else {
			inv[i] = 1
		}
	}
	return &Jacobi{inv: inv}
}

// Precond computes dst = D^{-1} src.
func (j *Jacobi) Precond(dst, src []float64) {
	for i := range dst {
		dst[i] = j.inv[i] * src[i]
	}
}

// PrecondBlock applies the diagonal preconditioner column-wise, so Jacobi
// serves blocked solves (the inner loop of precond.SolveBlock) directly.
func (j *Jacobi) PrecondBlock(dst, src [][]float64) {
	for c := range dst {
		j.Precond(dst[c], src[c])
	}
}

// LapOperator wraps a CSR graph view as its Laplacian operator, optionally
// applying rows in parallel through a persistent kernel worker pool.
// NewLapOperator also freezes the operator's Jacobi preconditioner and owns
// the workspace pool that all solves against this operator draw scratch
// from.
//
// Parallelism is frozen with SetWorkers before the operator is shared:
// it pins the kernel pool and precomputes the nnz-balanced row partition
// once, so every subsequent Apply dispatches without allocating and
// concurrent solves all observe the same degree. Storage layout is frozen
// the same way with SetFormat: choosing SELL rebuilds the operator arrays —
// CSR, the sliced SELL view, and both partition tables — inside one
// page-aligned kernel.Arena block, and every subsequent Apply/ApplyBlock
// dispatches over the sliced layout. All products stay bit-identical to
// serial CSR regardless of format or parallelism.
type LapOperator struct {
	CSR *graph.CSR

	workers int
	kern    *kernel.Pool // nil when serial
	part    []int        // nnz-balanced row partition, len kern.Workers()+1

	sell      *graph.SELL   // non-nil iff the frozen format is SELL
	chunkPart []int         // slot-balanced chunk partition (SELL + pool only)
	arena     *kernel.Arena // owns the frozen arrays when format is SELL
	padRatio  float64       // predicted (CSR) or actual (SELL) padding ratio

	// spmvObs, when set, observes the wall time of every Apply/ApplyBlock —
	// the service layer bridges it into the per-format SpMV histogram. Nil
	// (the default) adds no timing calls to the hot path.
	spmvObs func(time.Duration)

	jac  *Jacobi
	pool *solver.Pool
}

// Freeze-time auto-format heuristic: SELL pays off when the operator is
// big enough for layout to matter and the σ-sorted padding stays a small
// fraction of the streamed slots. Above the padding cutoff, the wasted
// bandwidth on padded slots outweighs the regular-access win and CSR is
// kept.
const (
	sellAutoMinN       = 512
	sellAutoMaxPadding = 0.35
)

// NewLapOperator freezes g and returns its (serial) Laplacian operator.
// Call SetWorkers before sharing it to enable parallel application.
func NewLapOperator(g *graph.Graph) *LapOperator {
	csr := graph.NewCSR(g)
	return &LapOperator{CSR: csr, jac: NewJacobi(csr.Degree), pool: solver.NewPool(csr.N)}
}

// SetWorkers freezes the operator's parallelism degree: it resolves the
// shared kernel pool for the (GOMAXPROCS-clamped) count and precomputes the
// nnz-balanced row partition the pooled SpMV dispatches over. workers <= 1
// keeps the operator serial. Must be called before the operator is shared
// across goroutines; the frozen-Workers contract (solver.Options.Workers)
// exists exactly so this never races with a solve.
func (l *LapOperator) SetWorkers(workers int) {
	l.kern = kernel.Shared(workers)
	l.workers = l.kern.Workers()
	if l.kern != nil {
		l.part = l.CSR.NNZPartition(l.workers)
		if l.sell != nil {
			l.chunkPart = l.sell.NNZChunkPartition(l.workers)
		}
	} else {
		l.part = nil
		l.chunkPart = nil
	}
}

// SetFormat freezes the operator's sparse storage layout. FormatAuto picks
// SELL when the operator is large enough (N >= 512) and the predicted
// σ-sorted padding ratio stays under the cutoff; FormatCSR/FormatSELL force
// the choice. Choosing SELL rebuilds every frozen array — the CSR, the
// sliced view, and the partition tables — inside one page-aligned arena
// block sized exactly from the footprint predictors, so the whole operator
// is a single contiguous allocation released as a unit when its snapshot
// generation is dropped. Like SetWorkers, call before the operator is
// shared; order relative to SetWorkers does not matter (each refreshes the
// partitions the other depends on).
func (l *LapOperator) SetFormat(f solver.Format) {
	bytes, pad := graph.SellFootprint(l.CSR, 0)
	l.padRatio = pad
	use := f == solver.FormatSELL ||
		(f == solver.FormatAuto && l.CSR.N >= sellAutoMinN && pad <= sellAutoMaxPadding)
	if !use {
		l.sell = nil
		l.chunkPart = nil
		l.arena = nil
		return
	}
	// Exact payload plus per-allocation cache-line padding (one line per
	// array) and the partition tables.
	slack := 16*64 + 16*(l.workers+2)
	arena := kernel.NewArena(l.CSR.ArenaBytes() + bytes + slack)
	l.CSR = l.CSR.CompactInto(arena)
	l.sell = graph.NewSELL(l.CSR, 0, arena)
	l.arena = arena
	l.padRatio = l.sell.PaddingRatio()
	if l.kern != nil {
		l.part = l.CSR.NNZPartition(l.workers)
		l.chunkPart = l.sell.NNZChunkPartition(l.workers)
	}
}

// Format reports the frozen storage layout (FormatCSR until SetFormat
// selects SELL).
func (l *LapOperator) Format() solver.Format {
	if l.sell != nil {
		return solver.FormatSELL
	}
	return solver.FormatCSR
}

// PaddingRatio reports the SELL padding ratio: actual for a SELL-frozen
// operator, predicted (from the footprint pass) after any SetFormat call,
// 0 before one.
func (l *LapOperator) PaddingRatio() float64 { return l.padRatio }

// ArenaStats reports the arena backing a SELL-frozen operator: payload
// bytes handed out, bytes reserved, and block count (1 means fully
// contiguous). All zero for CSR-frozen operators.
func (l *LapOperator) ArenaStats() (used, reserved, blocks int) {
	if l.arena == nil {
		return 0, 0, 0
	}
	return l.arena.Used(), l.arena.Reserved(), l.arena.Blocks()
}

// SetSpMVObserver installs a wall-time observer called after every
// Apply/ApplyBlock (the service layer points it at the per-format SpMV
// duration histogram). A nil observer (the default) keeps the hot path
// free of timing calls. Set before the operator is shared.
func (l *LapOperator) SetSpMVObserver(f func(time.Duration)) { l.spmvObs = f }

// WorkerCount reports the frozen effective parallelism degree (1 = serial).
func (l *LapOperator) WorkerCount() int {
	if l.workers < 1 {
		return 1
	}
	return l.workers
}

// Kernels returns the operator's kernel pool (nil when serial), letting the
// iterative solvers run their fused vector kernels on the same workers.
func (l *LapOperator) Kernels() *kernel.Pool { return l.kern }

// Dim returns the node count.
func (l *LapOperator) Dim() int { return l.CSR.N }

// Apply computes dst = L x over the frozen layout, through the kernel pool
// when the operator was frozen parallel and the product is above the serial
// cutover. Bit-identical to serial CSR in every configuration.
func (l *LapOperator) Apply(dst, x []float64) {
	if l.spmvObs != nil {
		start := time.Now()
		l.applySpMV(dst, x)
		l.spmvObs(time.Since(start))
		return
	}
	l.applySpMV(dst, x)
}

func (l *LapOperator) applySpMV(dst, x []float64) {
	if l.sell != nil {
		l.kern.LapMulSELL(l.sell, l.chunkPart, dst, x)
		return
	}
	l.kern.LapMul(l.CSR, l.part, dst, x)
}

// ApplyBlock computes dst[j] = L x[j] for a block of vectors in one
// structure traversal (see graph.CSR.LapMulMulti and graph.SELL.LapMulMulti),
// through the kernel pool when the operator was frozen parallel. Each
// column is bit-identical to Apply on that column alone.
func (l *LapOperator) ApplyBlock(dst, x [][]float64) {
	if l.spmvObs != nil {
		start := time.Now()
		l.applyBlockSpMV(dst, x)
		l.spmvObs(time.Since(start))
		return
	}
	l.applyBlockSpMV(dst, x)
}

func (l *LapOperator) applyBlockSpMV(dst, x [][]float64) {
	if l.sell != nil {
		l.kern.LapMulMultiSELL(l.sell, l.chunkPart, dst, x)
		return
	}
	l.kern.LapMulMulti(l.CSR, l.part, dst, x)
}

// Diagonal returns the Laplacian diagonal (weighted degrees), which the
// Jacobi preconditioner consumes.
func (l *LapOperator) Diagonal() []float64 { return l.CSR.Degree }

// Jacobi returns the operator's frozen diagonal preconditioner.
func (l *LapOperator) Jacobi() *Jacobi { return l.jac }

// Workspaces returns the operator's scratch pool (vectors of length Dim).
// The pool is safe for concurrent use; each checked-out workspace is
// confined to one solve call tree.
func (l *LapOperator) Workspaces() *solver.Pool { return l.pool }

// KernelHost is implemented by operators that carry a persistent kernel
// worker pool. The iterative solvers probe for it so their fused vector
// kernels run on the same workers as the operator's SpMV; a nil pool (or an
// operator without one) means serial kernels.
type KernelHost interface {
	Kernels() *kernel.Pool
}

// KernelsOf returns the kernel pool behind op (ProjectedOperator forwards
// to its inner operator via its own Kernels method), or nil for operators
// without one.
func KernelsOf(op Operator) *kernel.Pool {
	if h, ok := op.(KernelHost); ok {
		return h.Kernels()
	}
	return nil
}

// ProjectedOperator wraps an operator with pre/post projection onto the
// complement of the all-ones vector, making a singular Laplacian behave as
// a definite operator on its range. All CG solves against Laplacians go
// through this wrapper.
type ProjectedOperator struct {
	Inner Operator
}

// Dim returns the inner dimension.
func (p *ProjectedOperator) Dim() int { return p.Inner.Dim() }

// Kernels forwards the inner operator's kernel pool, if any.
func (p *ProjectedOperator) Kernels() *kernel.Pool { return KernelsOf(p.Inner) }

// Apply computes dst = P A P x where P = I - 11'/n.
func (p *ProjectedOperator) Apply(dst, x []float64) {
	// A Laplacian already annihilates the constant component of x and
	// produces mean-zero output, but projecting both sides guards against
	// numerical drift accumulating across hundreds of CG iterations.
	p.Inner.Apply(dst, x)
	vecmath.CenterMean(dst)
}

// ApplyBlock is Apply over a block: one inner block application (a single
// CSR traversal when the inner operator supports it) followed by the
// per-column projection.
func (p *ProjectedOperator) ApplyBlock(dst, x [][]float64) {
	if bo, ok := p.Inner.(BlockOperator); ok {
		bo.ApplyBlock(dst, x)
	} else {
		for j := range dst {
			p.Inner.Apply(dst[j], x[j])
		}
	}
	for j := range dst {
		vecmath.CenterMean(dst[j])
	}
}

// FuncOperator adapts a closure to the Operator interface; used for
// composite operators such as the condition-number pencil.
type FuncOperator struct {
	N  int
	Fn func(dst, x []float64)
}

// Dim returns N.
func (f *FuncOperator) Dim() int { return f.N }

// Apply invokes the closure.
func (f *FuncOperator) Apply(dst, x []float64) { f.Fn(dst, x) }

// DenseLaplacian materializes the Laplacian of g as a dense matrix.
// Intended for test oracles on small graphs only.
func DenseLaplacian(g *graph.Graph) *vecmath.Dense {
	n := g.NumNodes()
	m := vecmath.NewDense(n, n)
	for _, e := range g.Edges() {
		m.Add(e.U, e.U, e.W)
		m.Add(e.V, e.V, e.W)
		m.Add(e.U, e.V, -e.W)
		m.Add(e.V, e.U, -e.W)
	}
	return m
}
