package sparse

import (
	"context"
	"math"
	"runtime"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

func withMaxProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// withSIMDState pins the vecmath dispatch state for the test and restores it
// afterwards. Asking for SIMD on a machine without it skips the test.
func withSIMDState(t *testing.T, on bool) {
	t.Helper()
	if on && !vecmath.SIMDSupported() {
		t.Skip("SIMD not supported on this machine")
	}
	prev := vecmath.SIMDActive()
	vecmath.SetSIMD(on)
	t.Cleanup(func() { vecmath.SetSIMD(prev) })
}

func frozenOp(g *graph.Graph, f solver.Format, workers int) *LapOperator {
	op := NewLapOperator(g)
	op.SetWorkers(workers)
	op.SetFormat(f)
	return op
}

func firstBitsDiff(a, b []float64) int {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	return -1
}

// The tentpole's central property: every frozen configuration — {CSR, SELL}
// layout × {serial, pooled} execution × {generic, SIMD} vecmath dispatch —
// produces Apply and ApplyBlock results bit-identical to the plain serial
// CSR product, per column, at sizes spanning the pool cutover and chunk
// boundary edge cases (4095 leaves a partial tail chunk, 4096 does not).
func TestLapOperatorCrossFormatBitIdentical(t *testing.T) {
	withMaxProcs(t, 4)
	sizes := []int{10, 4095, 4096}
	if !testing.Short() {
		sizes = append(sizes, 100_000)
	}
	widths := []int{1, 2, 3, 7, 16}
	for _, n := range sizes {
		g := randomConnectedGraph(uint64(n), n, 2*n)
		ref := graph.NewCSR(g)

		maxW := widths[len(widths)-1]
		x := make([][]float64, maxW)
		want := make([][]float64, maxW)
		for j := range x {
			x[j] = make([]float64, n)
			vecmath.NewRNG(uint64(1000*n + j)).FillNormal(x[j])
			want[j] = make([]float64, n)
			ref.LapMul(want[j], x[j])
		}
		got := make([]float64, n)
		dst := make([][]float64, maxW)
		for j := range dst {
			dst[j] = make([]float64, n)
		}

		for _, format := range []solver.Format{solver.FormatCSR, solver.FormatSELL} {
			for _, workers := range []int{0, 3} {
				for _, simd := range []bool{false, true} {
					if simd && !vecmath.SIMDSupported() {
						continue
					}
					prev := vecmath.SIMDActive()
					vecmath.SetSIMD(simd)
					op := frozenOp(g, format, workers)
					if op.Format() != format {
						t.Fatalf("n=%d: forced %v froze as %v", n, format, op.Format())
					}

					op.Apply(got, x[0])
					if i := firstBitsDiff(want[0], got); i >= 0 {
						t.Errorf("n=%d fmt=%v workers=%d simd=%v: Apply differs from serial CSR at %d",
							n, format, workers, simd, i)
					}
					for _, w := range widths {
						op.ApplyBlock(dst[:w], x[:w])
						for j := 0; j < w; j++ {
							if i := firstBitsDiff(want[j], dst[j]); i >= 0 {
								t.Errorf("n=%d fmt=%v workers=%d simd=%v width=%d col=%d: ApplyBlock differs at %d",
									n, format, workers, simd, w, j, i)
							}
						}
					}
					vecmath.SetSIMD(prev)
				}
			}
		}
	}
}

// With the vecmath dispatch state fixed, a full preconditioned solve is a
// deterministic composition of bit-identical SpMVs and vector kernels — so
// the CSR- and SELL-frozen solvers must walk the exact same iterate sequence
// and land on bit-identical solutions.
func TestSolveBitIdenticalAcrossFormats(t *testing.T) {
	withMaxProcs(t, 4)
	n := 2048
	g := randomConnectedGraph(99, n, 3*n)
	b := make([]float64, n)
	vecmath.NewRNG(7).FillNormal(b)
	vecmath.CenterMean(b)

	solve := func(f solver.Format) []float64 {
		s := NewLaplacianSolver(g, solver.Options{Tol: 1e-10, Workers: 3, Format: f})
		x := make([]float64, n)
		if _, err := s.Solve(context.Background(), x, b); err != nil {
			t.Fatalf("format %v: %v", f, err)
		}
		return x
	}
	xCSR := solve(solver.FormatCSR)
	xSELL := solve(solver.FormatSELL)
	if i := firstBitsDiff(xCSR, xSELL); i >= 0 {
		t.Errorf("CSR and SELL solves diverge at component %d: %x vs %x",
			i, math.Float64bits(xCSR[i]), math.Float64bits(xSELL[i]))
	}
}

// SetFormat contract: the auto heuristic freezes SELL only for operators
// that are both large enough and low-padding; a SELL freeze lands every
// frozen array in a single contiguous arena block; and SetWorkers/SetFormat
// commute.
func TestSetFormatHeuristicAndArena(t *testing.T) {
	withMaxProcs(t, 4)

	// Small operator: auto keeps CSR no matter how regular the rows are.
	small := randomConnectedGraph(1, sellAutoMinN/2, sellAutoMinN)
	op := frozenOp(small, solver.FormatAuto, 0)
	if op.Format() != solver.FormatCSR {
		t.Errorf("auto froze SELL for n=%d < %d", small.NumNodes(), sellAutoMinN)
	}
	if u, r, bl := op.ArenaStats(); u != 0 || r != 0 || bl != 0 {
		t.Errorf("CSR-frozen operator reports arena stats %d/%d/%d", u, r, bl)
	}

	// Large low-padding operator: auto upgrades to SELL, fully contiguous.
	big := randomConnectedGraph(2, 4*sellAutoMinN, 8*sellAutoMinN)
	op = frozenOp(big, solver.FormatAuto, 3)
	if op.Format() != solver.FormatSELL {
		t.Fatalf("auto kept CSR for n=%d pad=%.3f", big.NumNodes(), op.PaddingRatio())
	}
	used, reserved, blocks := op.ArenaStats()
	if blocks != 1 {
		t.Errorf("SELL freeze spilled across %d arena blocks, want 1", blocks)
	}
	if used == 0 || used > reserved {
		t.Errorf("arena stats used=%d reserved=%d", used, reserved)
	}
	if pr := op.PaddingRatio(); pr < 0 || pr > sellAutoMaxPadding {
		t.Errorf("auto-SELL padding ratio %.3f outside (0, %.2f]", pr, sellAutoMaxPadding)
	}

	// Star graph: one hub row dominates its chunk, the predicted padding
	// blows past the cutoff, and auto stays CSR — but a forced SELL freeze
	// still works and still matches CSR bitwise.
	starG := graph.New(1024, 1023)
	for v := 1; v < 1024; v++ {
		starG.AddEdge(0, v, 1+float64(v)/7)
	}
	op = frozenOp(starG, solver.FormatAuto, 0)
	if op.Format() != solver.FormatCSR {
		t.Errorf("auto froze SELL for star graph with padding %.3f", op.PaddingRatio())
	}
	forced := frozenOp(starG, solver.FormatSELL, 0)
	if forced.Format() != solver.FormatSELL {
		t.Fatal("forced SELL freeze did not take")
	}
	x := make([]float64, 1024)
	vecmath.NewRNG(3).FillNormal(x)
	want := make([]float64, 1024)
	got := make([]float64, 1024)
	graph.NewCSR(starG).LapMul(want, x)
	forced.Apply(got, x)
	if i := firstBitsDiff(want, got); i >= 0 {
		t.Errorf("forced high-padding SELL differs from CSR at %d", i)
	}

	// Order independence: format-then-workers must behave like
	// workers-then-format.
	a := NewLapOperator(big)
	a.SetFormat(solver.FormatSELL)
	a.SetWorkers(3)
	bOp := frozenOp(big, solver.FormatSELL, 3)
	xb := make([]float64, big.NumNodes())
	vecmath.NewRNG(4).FillNormal(xb)
	da := make([]float64, big.NumNodes())
	db := make([]float64, big.NumNodes())
	a.Apply(da, xb)
	bOp.Apply(db, xb)
	if i := firstBitsDiff(da, db); i >= 0 {
		t.Errorf("SetFormat/SetWorkers order changes the product at %d", i)
	}
}
