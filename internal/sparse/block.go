package sparse

import (
	"context"
	"fmt"
	"math"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// MaxBlockWidth is the widest multi-RHS block the blocked solvers iterate in
// lockstep — bounded by the multi-vector SpMV's per-row accumulator width.
// Callers with more right-hand sides chunk them into blocks of this size.
const MaxBlockWidth = graph.MaxMulti

// BlockOperator is implemented by operators that can apply themselves to a
// whole block of vectors in one structure traversal. The blocked solvers
// probe for it; operators without it are applied column-by-column.
type BlockOperator interface {
	Operator
	ApplyBlock(dst, x [][]float64)
}

// BlockPreconditioner applies an SPD-like map dst[j] = M^{-1} src[j] to
// every column of a block. The blocked flexible CG hands its whole active
// column set to one application, which is what lets an iterative
// preconditioner (precond's truncated inner solve) amortize its own SpMVs
// across the block.
type BlockPreconditioner interface {
	PrecondBlock(dst, src [][]float64)
}

// ActiveColumnsAware is optionally implemented by a BlockPreconditioner
// that needs to know which original columns the next PrecondBlock
// application covers — the active set is compacted as columns converge or
// cancel, so positional indices alone lose column identity. The blocked
// solvers call SetActiveColumns immediately before each application with
// the original column index of each active position; the slice is only
// valid for the duration of that application. precond's blocked state uses
// this to attribute inner-solve trace spans to the right request.
type ActiveColumnsAware interface {
	SetActiveColumns(cols []int)
}

// ColumnResult is one column's outcome of a blocked solve: the usual CG
// stats plus the column's terminal error — nil on convergence,
// ErrNoConvergence on an exhausted budget, a solver.ErrCancelled-wrapped
// error for a cancelled per-column context, or a breakdown diagnosis. A
// column error never aborts the rest of the block.
type ColumnResult struct {
	CGResult
	Err error
}

// BlockSpec carries one blocked solve's per-column inputs and outputs.
// X and B are the iterate and right-hand-side columns (X is the start guess
// and is overwritten); Out receives one ColumnResult per column. ColCtx is
// optional (nil, or one context per column, individual entries may be nil):
// a cancelled column is masked out of the block within one iteration —
// recorded as cancelled in Out — without disturbing the other columns.
type BlockSpec struct {
	X, B   [][]float64
	ColCtx []context.Context
	Out    []ColumnResult
}

// BlockScratch holds the bookkeeping a blocked solve needs beyond its
// scratch vectors: the compacted active-set headers and the per-column
// scalars. It grows to the widest block it has served and is retained, so
// warm blocked solves allocate nothing. Goroutine-confined, like the
// Workspace it accompanies.
type BlockScratch struct {
	x, b, r, z, p, ap [][]float64
	cctx              []context.Context
	col               []int // active slot -> original column index

	normB, target, rz, rnSq, alpha, beta, s1, s2 []float64
}

func (sc *BlockScratch) ensure(w int) {
	if cap(sc.col) >= w {
		return
	}
	sc.x = make([][]float64, w)
	sc.b = make([][]float64, w)
	sc.r = make([][]float64, w)
	sc.z = make([][]float64, w)
	sc.p = make([][]float64, w)
	sc.ap = make([][]float64, w)
	sc.cctx = make([]context.Context, w)
	sc.col = make([]int, w)
	f := make([]float64, 8*w)
	sc.normB, sc.target = f[0:w], f[w:2*w]
	sc.rz, sc.rnSq = f[2*w:3*w], f[3*w:4*w]
	sc.alpha, sc.beta = f[4*w:5*w], f[5*w:6*w]
	sc.s1, sc.s2 = f[6*w:7*w], f[7*w:8*w]
}

// drop swaps active slot i with the last active slot and shrinks the active
// count. Column recurrences are independent, so reordering the compacted
// arrays never changes any column's arithmetic.
func (sc *BlockScratch) drop(i, m int) int {
	l := m - 1
	sc.x[i], sc.x[l] = sc.x[l], sc.x[i]
	sc.b[i], sc.b[l] = sc.b[l], sc.b[i]
	sc.r[i], sc.r[l] = sc.r[l], sc.r[i]
	sc.z[i], sc.z[l] = sc.z[l], sc.z[i]
	sc.p[i], sc.p[l] = sc.p[l], sc.p[i]
	sc.ap[i], sc.ap[l] = sc.ap[l], sc.ap[i]
	sc.cctx[i], sc.cctx[l] = sc.cctx[l], sc.cctx[i]
	sc.col[i], sc.col[l] = sc.col[l], sc.col[i]
	sc.normB[i], sc.normB[l] = sc.normB[l], sc.normB[i]
	sc.target[i], sc.target[l] = sc.target[l], sc.target[i]
	sc.rz[i], sc.rz[l] = sc.rz[l], sc.rz[i]
	sc.rnSq[i], sc.rnSq[l] = sc.rnSq[l], sc.rnSq[i]
	sc.alpha[i], sc.alpha[l] = sc.alpha[l], sc.alpha[i]
	sc.beta[i], sc.beta[l] = sc.beta[l], sc.beta[i]
	sc.s1[i], sc.s1[l] = sc.s1[l], sc.s1[i]
	sc.s2[i], sc.s2[l] = sc.s2[l], sc.s2[i]
	return l
}

// blockApply resolves the block application path once per solve.
func blockApply(a Operator) func(dst, x [][]float64) {
	if bo, ok := a.(BlockOperator); ok {
		return bo.ApplyBlock
	}
	return func(dst, x [][]float64) {
		for j := range dst {
			a.Apply(dst[j], x[j])
		}
	}
}

// checkBlock validates a BlockSpec against an operator and returns the
// width.
func checkBlock(name string, a Operator, spec BlockSpec) (int, error) {
	n := a.Dim()
	w := len(spec.X)
	if len(spec.B) != w || len(spec.Out) != w {
		return 0, fmt.Errorf("sparse: %s block widths X=%d B=%d Out=%d", name, w, len(spec.B), len(spec.Out))
	}
	if w > MaxBlockWidth {
		return 0, fmt.Errorf("sparse: %s width %d exceeds MaxBlockWidth=%d", name, w, MaxBlockWidth)
	}
	if spec.ColCtx != nil && len(spec.ColCtx) != w {
		return 0, fmt.Errorf("sparse: %s ColCtx length %d != width %d", name, len(spec.ColCtx), w)
	}
	for j := 0; j < w; j++ {
		if len(spec.X[j]) != n || len(spec.B[j]) != n {
			return 0, fmt.Errorf("sparse: %s column %d dims x=%d b=%d n=%d", name, j, len(spec.X[j]), len(spec.B[j]), n)
		}
	}
	return w, nil
}

// enterBlock runs the shared solve prologue: per-column norms, zero-rhs
// short-circuits, scratch take-out, and the initial residual block
// r[j] = b[j] - A x[j]. It returns the active column count (compacted into
// sc's slot arrays).
func enterBlock(a Operator, spec BlockSpec, ws *solver.Workspace, sc *BlockScratch, tol float64, aliasZ bool) int {
	m := 0
	for j := range spec.X {
		spec.Out[j] = ColumnResult{}
		nb := vecmath.Norm2(spec.B[j])
		if nb == 0 {
			vecmath.Zero(spec.X[j])
			spec.Out[j].Converged = true
			continue
		}
		sc.col[m] = j
		sc.x[m], sc.b[m] = spec.X[j], spec.B[j]
		sc.normB[m], sc.target[m] = nb, tol*nb
		sc.r[m] = ws.Take()
		if aliasZ {
			// No preconditioner: z is r itself, exactly as in CG.
			sc.z[m] = sc.r[m]
		} else {
			sc.z[m] = ws.Take()
		}
		sc.p[m] = ws.Take()
		sc.ap[m] = ws.Take()
		if spec.ColCtx != nil {
			sc.cctx[m] = spec.ColCtx[j]
		} else {
			sc.cctx[m] = nil
		}
		m++
	}
	if m == 0 {
		return 0
	}
	blockApply(a)(sc.r[:m], sc.x[:m])
	for i := 0; i < m; i++ {
		vecmath.Sub(sc.r[i], sc.b[i], sc.r[i])
	}
	return m
}

// failBlock records err on every still-active column.
func failBlock(spec BlockSpec, sc *BlockScratch, m int, err error) {
	for i := 0; i < m; i++ {
		spec.Out[sc.col[i]].Err = err
	}
}

// maskCancelled drops every active column whose own context is done,
// recording the cancellation; the rest of the block continues. Returns the
// new active count.
func maskCancelled(spec BlockSpec, sc *BlockScratch, m int) int {
	for i := m - 1; i >= 0; i-- {
		if c := sc.cctx[i]; c != nil {
			if err := solver.CheckCancel(c); err != nil {
				spec.Out[sc.col[i]].Err = err
				m = sc.drop(i, m)
			}
		}
	}
	return m
}

// BlockCG solves A x[j] = b[j] for a block of right-hand sides by
// preconditioned conjugate gradients, iterating every column in lockstep:
// each iteration applies A to all active columns in one structure traversal
// (BlockOperator) and runs the per-column recurrences through one fused
// multi-vector kernel dispatch each. Columns are mathematically independent
// — each keeps its own alpha/beta/residual — so a width-1 block is
// bit-identical to CG, and a column masked out at its own convergence,
// cancellation, or breakdown leaves an iterate identical to the one an
// independent solve would have produced.
//
// ctx aborts the whole block; spec.ColCtx entries abort single columns (see
// BlockSpec). Per-column outcomes land in spec.Out; the returned error is
// reserved for structural failures (dimension mismatches) and whole-block
// cancellation. Scratch vectors come from ws, bookkeeping from sc; both are
// goroutine-confined for the duration of the call.
func BlockCG(ctx context.Context, a Operator, spec BlockSpec, pre BlockPreconditioner, ws *solver.Workspace, sc *BlockScratch, opts solver.Options) error {
	if ctx == nil {
		ctx = context.Background()
	}
	w, err := checkBlock("BlockCG", a, spec)
	if err != nil {
		return err
	}
	if w == 0 {
		return nil
	}
	if err := solver.CheckCancel(ctx); err != nil {
		for j := range spec.Out {
			spec.Out[j] = ColumnResult{Err: err}
		}
		return err
	}
	o := opts.WithDefaults(a.Dim())
	kp := KernelsOf(a)
	apply := blockApply(a)
	if ws == nil {
		ws = solver.NewWorkspace(a.Dim())
	}
	if sc == nil {
		sc = &BlockScratch{}
	}
	sc.ensure(w)

	mark := ws.Mark()
	defer ws.Release(mark)

	m := enterBlock(a, spec, ws, sc, o.Tol, pre == nil)
	if m == 0 {
		return nil
	}

	colsAware, _ := pre.(ActiveColumnsAware)
	if pre != nil {
		if colsAware != nil {
			colsAware.SetActiveColumns(sc.col[:m])
		}
		pre.PrecondBlock(sc.z[:m], sc.r[:m])
		kp.DotNormMulti(sc.z[:m], sc.r[:m], sc.rz[:m], sc.rnSq[:m])
	} else {
		kp.DotMulti(sc.r[:m], sc.r[:m], sc.rnSq[:m])
		copy(sc.rz[:m], sc.rnSq[:m])
	}
	for i := 0; i < m; i++ {
		copy(sc.p[i], sc.z[i])
	}
	for i := m - 1; i >= 0; i-- {
		rn := math.Sqrt(sc.rnSq[i])
		out := &spec.Out[sc.col[i]]
		out.Residual = rn / sc.normB[i]
		if rn <= sc.target[i] {
			out.Converged = true
			m = sc.drop(i, m)
		}
	}

	for k := 0; k < o.MaxIter && m > 0; k++ {
		if err := solver.CheckCancel(ctx); err != nil {
			failBlock(spec, sc, m, err)
			return err
		}
		if m = maskCancelled(spec, sc, m); m == 0 {
			break
		}
		apply(sc.ap[:m], sc.p[:m])
		kp.DotMulti(sc.p[:m], sc.ap[:m], sc.s1[:m])
		for i := m - 1; i >= 0; i-- {
			pap := sc.s1[i]
			if pap <= 0 || math.IsNaN(pap) {
				out := &spec.Out[sc.col[i]]
				out.Iterations = k
				out.Residual = math.Sqrt(sc.rnSq[i]) / sc.normB[i]
				out.Err = fmt.Errorf("sparse: BlockCG breakdown, p'Ap = %g at iteration %d (column %d)", pap, k, sc.col[i])
				m = sc.drop(i, m)
				continue
			}
			sc.alpha[i] = sc.rz[i] / pap
		}
		if m == 0 {
			break
		}
		kp.AXPY2Multi(sc.x[:m], sc.r[:m], sc.alpha[:m], sc.p[:m], sc.ap[:m], sc.rnSq[:m])
		for i := m - 1; i >= 0; i-- {
			rn := math.Sqrt(sc.rnSq[i])
			out := &spec.Out[sc.col[i]]
			out.Iterations = k + 1
			out.Residual = rn / sc.normB[i]
			if rn <= sc.target[i] {
				out.Converged = true
				m = sc.drop(i, m)
			}
		}
		if m == 0 {
			break
		}
		if pre != nil {
			if colsAware != nil {
				colsAware.SetActiveColumns(sc.col[:m])
			}
			pre.PrecondBlock(sc.z[:m], sc.r[:m])
			kp.DotMulti(sc.r[:m], sc.z[:m], sc.s1[:m])
		} else {
			copy(sc.s1[:m], sc.rnSq[:m]) // z aliases r: z'r is the norm just computed
		}
		for i := 0; i < m; i++ {
			sc.beta[i] = sc.s1[i] / sc.rz[i]
			sc.rz[i] = sc.s1[i]
		}
		kp.XPBYIntoMulti(sc.p[:m], sc.z[:m], sc.beta[:m])
	}
	for i := 0; i < m; i++ {
		spec.Out[sc.col[i]].Err = ErrNoConvergence
	}
	return nil
}

// BlockFlexibleCG is the blocked counterpart of FlexibleCG: flexible
// (Polak-Ribiere) preconditioned conjugate gradients over a block of
// right-hand sides in lockstep, tolerating an inexact, iteration-varying
// preconditioner — and handing that preconditioner the whole active column
// set per application, so a truncated inner solve (precond.SolveBlock's
// inner BlockCG) traverses its sparsifier CSR once per inner iteration for
// the entire block. Column independence, masking, and context semantics
// match BlockCG; a width-1 block is bit-identical to FlexibleCG.
func BlockFlexibleCG(ctx context.Context, a Operator, spec BlockSpec, pre BlockPreconditioner, ws *solver.Workspace, sc *BlockScratch, opts solver.Options) error {
	if ctx == nil {
		ctx = context.Background()
	}
	w, err := checkBlock("BlockFlexibleCG", a, spec)
	if err != nil {
		return err
	}
	if w == 0 {
		return nil
	}
	if err := solver.CheckCancel(ctx); err != nil {
		for j := range spec.Out {
			spec.Out[j] = ColumnResult{Err: err}
		}
		return err
	}
	o := opts.WithDefaults(a.Dim())
	kp := KernelsOf(a)
	apply := blockApply(a)
	if ws == nil {
		ws = solver.NewWorkspace(a.Dim())
	}
	if sc == nil {
		sc = &BlockScratch{}
	}
	sc.ensure(w)

	colsAware, _ := pre.(ActiveColumnsAware)
	applyPre := func(dst, src [][]float64, cols []int) {
		if pre != nil {
			if colsAware != nil {
				colsAware.SetActiveColumns(cols)
			}
			pre.PrecondBlock(dst, src)
		} else {
			for j := range dst {
				copy(dst[j], src[j])
			}
		}
	}

	mark := ws.Mark()
	defer ws.Release(mark)

	m := enterBlock(a, spec, ws, sc, o.Tol, false)
	if m == 0 {
		return nil
	}

	applyPre(sc.z[:m], sc.r[:m], sc.col[:m])
	for i := 0; i < m; i++ {
		copy(sc.p[i], sc.z[i])
	}
	kp.DotNormMulti(sc.z[:m], sc.r[:m], sc.rz[:m], sc.rnSq[:m])
	for i := m - 1; i >= 0; i-- {
		rn := math.Sqrt(sc.rnSq[i])
		out := &spec.Out[sc.col[i]]
		out.Residual = rn / sc.normB[i]
		if rn <= sc.target[i] {
			out.Converged = true
			m = sc.drop(i, m)
		}
	}

	for k := 0; k < o.MaxIter && m > 0; k++ {
		if err := solver.CheckCancel(ctx); err != nil {
			failBlock(spec, sc, m, err)
			return err
		}
		if m = maskCancelled(spec, sc, m); m == 0 {
			break
		}
		apply(sc.ap[:m], sc.p[:m])
		kp.DotMulti(sc.p[:m], sc.ap[:m], sc.s1[:m])
		for i := m - 1; i >= 0; i-- {
			pap := sc.s1[i]
			if pap <= 0 || math.IsNaN(pap) {
				out := &spec.Out[sc.col[i]]
				out.Iterations = k
				out.Residual = math.Sqrt(sc.rnSq[i]) / sc.normB[i]
				// A cancellation landing inside the iterative preconditioner
				// leaves a degenerate direction; classify it as cancellation,
				// not breakdown (mirrors FlexibleCG).
				if c := sc.cctx[i]; c != nil && solver.CheckCancel(c) != nil {
					out.Err = solver.CheckCancel(c)
				} else if err := solver.CheckCancel(ctx); err != nil {
					out.Err = err
				} else {
					out.Err = fmt.Errorf("sparse: BlockFlexibleCG breakdown, p'Ap = %g at iteration %d (column %d)", pap, k, sc.col[i])
				}
				m = sc.drop(i, m)
				continue
			}
			sc.alpha[i] = sc.rz[i] / pap
		}
		if m == 0 {
			break
		}
		kp.AXPY2Multi(sc.x[:m], sc.r[:m], sc.alpha[:m], sc.p[:m], sc.ap[:m], sc.rnSq[:m])
		for i := m - 1; i >= 0; i-- {
			rn := math.Sqrt(sc.rnSq[i])
			out := &spec.Out[sc.col[i]]
			out.Iterations = k + 1
			out.Residual = rn / sc.normB[i]
			if rn <= sc.target[i] {
				out.Converged = true
				m = sc.drop(i, m)
			}
		}
		if m == 0 {
			break
		}
		applyPre(sc.z[:m], sc.r[:m], sc.col[:m])
		// Polak-Ribiere per column: r - rPrev = -alpha*ap by construction,
		// so beta = -alpha * z'ap / (z_prev' r_prev) — one fused pass yields
		// both products (mirrors FlexibleCG's reduction).
		kp.Dot2Multi(sc.z[:m], sc.ap[:m], sc.r[:m], sc.s1[:m], sc.s2[:m])
		for i := m - 1; i >= 0; i-- {
			beta := -sc.alpha[i] * sc.s1[i] / sc.rz[i]
			if beta < 0 {
				beta = 0 // restart direction on loss of conjugacy
			}
			sc.beta[i] = beta
			sc.rz[i] = sc.s2[i]
			if sc.rz[i] <= 0 || math.IsNaN(sc.rz[i]) {
				out := &spec.Out[sc.col[i]]
				if c := sc.cctx[i]; c != nil && solver.CheckCancel(c) != nil {
					out.Err = solver.CheckCancel(c)
				} else if err := solver.CheckCancel(ctx); err != nil {
					out.Err = err
				} else {
					out.Err = fmt.Errorf("sparse: BlockFlexibleCG preconditioner not positive at iteration %d (column %d)", k, sc.col[i])
				}
				m = sc.drop(i, m)
			}
		}
		if m == 0 {
			break
		}
		kp.XPBYIntoMulti(sc.p[:m], sc.z[:m], sc.beta[:m])
	}
	for i := 0; i < m; i++ {
		spec.Out[sc.col[i]].Err = ErrNoConvergence
	}
	return nil
}
