package sparse

import (
	"context"
	"errors"
	"testing"

	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// cancellingOperator cancels its context during the apply of iteration
// `at`, simulating a client that disconnects mid-solve.
type cancellingOperator struct {
	inner  Operator
	cancel context.CancelFunc
	at     int
	count  int
}

func (c *cancellingOperator) Dim() int { return c.inner.Dim() }

func (c *cancellingOperator) Apply(dst, x []float64) {
	c.count++
	if c.count == c.at {
		c.cancel()
	}
	c.inner.Apply(dst, x)
}

// slowGrid is a system large and ill-conditioned enough that neither solver
// converges within a couple of iterations.
func slowGrid(t testing.TB) (*ProjectedOperator, []float64) {
	t.Helper()
	g := gridGraph(40, 40)
	b := make([]float64, g.NumNodes())
	vecmath.NewRNG(7).FillNormal(b)
	vecmath.CenterMean(b)
	return &ProjectedOperator{Inner: NewLapOperator(g)}, b
}

func TestCGCancelledBeforeStart(t *testing.T) {
	op, b := slowGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, op.Dim())
	res, err := CG(ctx, op, x, b, nil, nil, solver.Options{})
	if !errors.Is(err, solver.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCancelled/context.Canceled, got %v", err)
	}
	if res.Iterations != 0 {
		t.Fatalf("pre-cancelled CG ran %d iterations", res.Iterations)
	}
}

// TestCGCancelMidSolve cancels during iteration 3's operator apply; the
// solve must stop within one iteration of the cancellation.
func TestCGCancelMidSolve(t *testing.T) {
	op, b := slowGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Apply #1 is the initial residual; apply #4 lands inside iteration 3.
	co := &cancellingOperator{inner: op, cancel: cancel, at: 4}
	x := make([]float64, op.Dim())
	res, err := CG(ctx, co, x, b, nil, nil, solver.Options{Tol: 1e-14})
	if !errors.Is(err, solver.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if res.Iterations > 4 {
		t.Fatalf("CG ran %d iterations past a cancel at apply 4", res.Iterations)
	}
	if res.Iterations == 0 {
		t.Fatal("CG should have completed the in-flight iterations before the cancel")
	}
}

func TestFlexibleCGCancelMidSolve(t *testing.T) {
	op, b := slowGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	co := &cancellingOperator{inner: op, cancel: cancel, at: 4}
	x := make([]float64, op.Dim())
	res, err := FlexibleCG(ctx, co, x, b, nil, nil, solver.Options{Tol: 1e-14})
	if !errors.Is(err, solver.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if res.Iterations > 4 {
		t.Fatalf("FlexibleCG ran %d iterations past a cancel at apply 4", res.Iterations)
	}
}

func TestFlexibleCGCancelledBeforeStart(t *testing.T) {
	op, b := slowGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, op.Dim())
	res, err := FlexibleCG(ctx, op, x, b, nil, nil, solver.Options{})
	if !errors.Is(err, solver.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if res.Iterations != 0 {
		t.Fatalf("pre-cancelled FlexibleCG ran %d iterations", res.Iterations)
	}
}

// cancellingPrecond mimics a truncated inner solve whose context is
// cancelled mid-application: it cancels and leaves dst zeroed, exactly
// what precond.solveState produces when the inner CG aborts before its
// first iteration.
type cancellingPrecond struct {
	cancel context.CancelFunc
	at     int
	count  int
}

func (c *cancellingPrecond) Precond(dst, src []float64) {
	c.count++
	if c.count >= c.at {
		c.cancel()
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	copy(dst, src)
}

// TestFlexibleCGCancelInsidePreconditioner is the regression test for the
// misclassification bug: a cancellation landing inside the preconditioner
// leaves z = 0, which used to surface as a spurious "preconditioner not
// positive" breakdown (mapped to HTTP 422) instead of ErrCancelled
// (408/499).
func TestFlexibleCGCancelInsidePreconditioner(t *testing.T) {
	op, b := slowGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pre := &cancellingPrecond{cancel: cancel, at: 3}
	x := make([]float64, op.Dim())
	_, err := FlexibleCG(ctx, op, x, b, pre, nil, solver.Options{Tol: 1e-14})
	if !errors.Is(err, solver.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
}

func TestLaplacianSolverCancel(t *testing.T) {
	g := gridGraph(30, 30)
	s := NewLaplacianSolver(g, solver.Options{Tol: 1e-14})
	b := make([]float64, g.NumNodes())
	vecmath.NewRNG(3).FillNormal(b)
	vecmath.CenterMean(b)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]float64, g.NumNodes())
	res, err := s.Solve(ctx, dst, b)
	if !errors.Is(err, solver.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if res.Iterations != 0 {
		t.Fatalf("pre-cancelled solve ran %d iterations", res.Iterations)
	}
}
