package sparse

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"

	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

// blockRHS builds w mean-zero right-hand sides for an n-node Laplacian.
func blockRHS(n, w int, seed uint64) [][]float64 {
	rng := vecmath.NewRNG(seed)
	bs := make([][]float64, w)
	for j := range bs {
		bs[j] = make([]float64, n)
		rng.FillNormal(bs[j])
		vecmath.CenterMean(bs[j])
	}
	return bs
}

func zeroBlock(n, w int) [][]float64 {
	xs := make([][]float64, w)
	for j := range xs {
		xs[j] = make([]float64, n)
	}
	return xs
}

// bitsEqual reports exact bitwise equality of two vectors.
func bitsEqual(a, b []float64) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestBlockCGWidthOneBitIdentical is the acceptance property: a width-1
// BlockCG must be bit-for-bit the same solve as CG — same iterate, same
// iteration count, same residual — with and without a preconditioner, for
// serial and pooled operators.
func TestBlockCGWidthOneBitIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, workers := range []int{1, 4} {
		for _, usePre := range []bool{false, true} {
			for seed := uint64(1); seed <= 5; seed++ {
				g := randomConnectedGraph(seed, 60, 90)
				op := NewLapOperator(g)
				op.SetWorkers(workers)
				proj := &ProjectedOperator{Inner: op}
				b := blockRHS(g.NumNodes(), 1, seed)[0]

				var pre Preconditioner
				var bpre BlockPreconditioner
				if usePre {
					pre = op.Jacobi()
					bpre = op.Jacobi()
				}
				opts := solver.Options{Tol: 1e-9}

				xCG := make([]float64, g.NumNodes())
				res, errCG := CG(context.Background(), proj, xCG, b, pre, nil, opts)

				xBlk := zeroBlock(g.NumNodes(), 1)
				out := make([]ColumnResult, 1)
				if err := BlockCG(context.Background(), proj, BlockSpec{X: xBlk, B: [][]float64{b}, Out: out}, bpre, nil, nil, opts); err != nil {
					t.Fatalf("seed %d workers %d pre %v: BlockCG: %v", seed, workers, usePre, err)
				}

				if !bitsEqual(xCG, xBlk[0]) {
					t.Fatalf("seed %d workers %d pre %v: width-1 iterate differs from CG", seed, workers, usePre)
				}
				cr := out[0]
				if cr.Iterations != res.Iterations || cr.Converged != res.Converged ||
					math.Float64bits(cr.Residual) != math.Float64bits(res.Residual) {
					t.Fatalf("seed %d workers %d pre %v: stats differ: CG %+v err=%v, block %+v",
						seed, workers, usePre, res, errCG, cr)
				}
				if (errCG == nil) != (cr.Err == nil) {
					t.Fatalf("seed %d workers %d pre %v: error mismatch: CG %v, block %v",
						seed, workers, usePre, errCG, cr.Err)
				}
			}
		}
	}
}

// TestBlockFlexibleCGWidthOneBitIdentical pins the same property for the
// flexible variant (the outer loop of every preconditioned service solve).
func TestBlockFlexibleCGWidthOneBitIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomConnectedGraph(seed, 50, 70)
		op := NewLapOperator(g)
		proj := &ProjectedOperator{Inner: op}
		b := blockRHS(g.NumNodes(), 1, seed+10)[0]
		opts := solver.Options{Tol: 1e-9}

		xF := make([]float64, g.NumNodes())
		res, _ := FlexibleCG(context.Background(), proj, xF, b, op.Jacobi(), nil, opts)

		xBlk := zeroBlock(g.NumNodes(), 1)
		out := make([]ColumnResult, 1)
		if err := BlockFlexibleCG(context.Background(), proj, BlockSpec{X: xBlk, B: [][]float64{b}, Out: out}, op.Jacobi(), nil, nil, opts); err != nil {
			t.Fatalf("seed %d: BlockFlexibleCG: %v", seed, err)
		}
		if !bitsEqual(xF, xBlk[0]) {
			t.Fatalf("seed %d: width-1 flexible iterate differs from FlexibleCG", seed)
		}
		if out[0].Iterations != res.Iterations || out[0].Converged != res.Converged {
			t.Fatalf("seed %d: stats differ: %+v vs %+v", seed, res, out[0])
		}
	}
}

// TestBlockCGMaskedMatchesIndependent is the masking property: columns of a
// blocked solve with per-column convergence masking must match independent
// single-vector solves within tolerance. (The lockstep recurrences are
// mathematically independent, so in practice they agree bit-for-bit; the
// tolerance guards the property, not the implementation.)
func TestBlockCGMaskedMatchesIndependent(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := randomConnectedGraph(seed+20, 80, 140)
		n := g.NumNodes()
		op := NewLapOperator(g)
		proj := &ProjectedOperator{Inner: op}
		const w = 5
		// Structurally different columns (random, localized basis pairs,
		// smooth ramp) converge at different iterations, exercising the
		// masking/compaction path.
		bs := blockRHS(n, w, seed)
		vecmath.Basis(bs[1], 0, n-1)
		vecmath.Basis(bs[2], 1, n/2)
		for i := range bs[3] {
			bs[3][i] = float64(i)
		}
		vecmath.CenterMean(bs[3])
		opts := solver.Options{Tol: 1e-8}

		xs := zeroBlock(n, w)
		out := make([]ColumnResult, w)
		if err := BlockCG(context.Background(), proj, BlockSpec{X: xs, B: bs, Out: out}, op.Jacobi(), nil, nil, opts); err != nil {
			t.Fatalf("seed %d: BlockCG: %v", seed, err)
		}
		iters := make(map[int]bool)
		for j := 0; j < w; j++ {
			if !out[j].Converged {
				t.Fatalf("seed %d column %d did not converge: %+v", seed, j, out[j])
			}
			iters[out[j].Iterations] = true

			solo := make([]float64, n)
			res, err := CG(context.Background(), proj, solo, bs[j], op.Jacobi(), nil, opts)
			if err != nil {
				t.Fatalf("seed %d column %d solo: %v", seed, j, err)
			}
			if res.Iterations != out[j].Iterations {
				t.Errorf("seed %d column %d: %d block iterations vs %d solo", seed, j, out[j].Iterations, res.Iterations)
			}
			num, den := 0.0, vecmath.Norm2(solo)
			for i := range solo {
				d := solo[i] - xs[j][i]
				num += d * d
			}
			if den > 0 && math.Sqrt(num)/den > 1e-10 {
				t.Errorf("seed %d column %d: blocked solution deviates %g from independent solve",
					seed, j, math.Sqrt(num)/den)
			}
		}
		if len(iters) < 2 {
			t.Fatalf("seed %d: columns all converged at the same iteration (%v); masking untested", seed, iters)
		}
	}
}

// TestBlockCGColumnCancellation: a cancelled per-column context masks that
// column (recorded as cancelled) without disturbing the others; a cancelled
// group context aborts every remaining column.
func TestBlockCGColumnCancellation(t *testing.T) {
	g := gridGraph(12, 12)
	n := g.NumNodes()
	op := NewLapOperator(g)
	proj := &ProjectedOperator{Inner: op}
	const w = 3
	bs := blockRHS(n, w, 7)
	xs := zeroBlock(n, w)
	out := make([]ColumnResult, w)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	colCtx := []context.Context{nil, cancelled, nil}
	if err := BlockCG(context.Background(), proj, BlockSpec{X: xs, B: bs, ColCtx: colCtx, Out: out}, op.Jacobi(), nil, nil, solver.Options{Tol: 1e-8}); err != nil {
		t.Fatalf("BlockCG: %v", err)
	}
	if !errors.Is(out[1].Err, solver.ErrCancelled) {
		t.Fatalf("cancelled column: want ErrCancelled, got %v", out[1].Err)
	}
	for _, j := range []int{0, 2} {
		if out[j].Err != nil || !out[j].Converged {
			t.Fatalf("column %d disturbed by neighbor cancellation: %+v", j, out[j])
		}
	}

	// Whole-group cancellation.
	xs2 := zeroBlock(n, w)
	out2 := make([]ColumnResult, w)
	err := BlockCG(cancelled, proj, BlockSpec{X: xs2, B: bs, Out: out2}, op.Jacobi(), nil, nil, solver.Options{})
	if !errors.Is(err, solver.ErrCancelled) {
		t.Fatalf("group cancellation: want ErrCancelled, got %v", err)
	}
	for j := range out2 {
		if !errors.Is(out2[j].Err, solver.ErrCancelled) {
			t.Fatalf("column %d: want ErrCancelled, got %v", j, out2[j].Err)
		}
	}
}

// TestBlockCGZeroAndEmpty covers degenerate inputs: an empty block is a
// no-op and a zero rhs column converges immediately to zero.
func TestBlockCGZeroAndEmpty(t *testing.T) {
	g := gridGraph(6, 6)
	op := NewLapOperator(g)
	proj := &ProjectedOperator{Inner: op}
	if err := BlockCG(context.Background(), proj, BlockSpec{}, nil, nil, nil, solver.Options{}); err != nil {
		t.Fatalf("empty block: %v", err)
	}
	n := g.NumNodes()
	bs := [][]float64{make([]float64, n), blockRHS(n, 1, 3)[0]}
	xs := zeroBlock(n, 2)
	vecmath.Fill(xs[0], 42) // must be overwritten with zeros
	out := make([]ColumnResult, 2)
	if err := BlockCG(context.Background(), proj, BlockSpec{X: xs, B: bs, Out: out}, nil, nil, nil, solver.Options{}); err != nil {
		t.Fatal(err)
	}
	if !out[0].Converged || vecmath.Norm2(xs[0]) != 0 {
		t.Fatalf("zero rhs column: %+v, |x| = %g", out[0], vecmath.Norm2(xs[0]))
	}
	if !out[1].Converged {
		t.Fatalf("nonzero column: %+v", out[1])
	}
}

// TestBlockCGWidthOverflow: a block wider than MaxBlockWidth is rejected
// with a structural error, not a panic.
func TestBlockCGWidthOverflow(t *testing.T) {
	g := gridGraph(4, 4)
	op := NewLapOperator(g)
	n := g.NumNodes()
	w := MaxBlockWidth + 1
	xs, bs := zeroBlock(n, w), blockRHS(n, w, 1)
	out := make([]ColumnResult, w)
	if err := BlockCG(context.Background(), op, BlockSpec{X: xs, B: bs, Out: out}, nil, nil, nil, solver.Options{}); err == nil {
		t.Fatal("want width-overflow error")
	}
}
