// Package batch is the query-execution scheduler of the batched query
// engine: it admits concurrent solve and effective-resistance requests into
// a bounded queue, coalesces requests that target the same snapshot
// generation within a small time/size window, and hands each sealed group
// to an executor that runs it as one blocked multi-RHS solve (see
// sparse.BlockCG and service's group executor).
//
// The scheduler is generic over the execution target T (the service layer
// instantiates it with its *Snapshot), which keeps the grouping machinery
// free of any dependency on the serving layer above it. Two invariants the
// grouping maintains:
//
//   - A coalesced group never spans generations: groups are keyed by the
//     generation the submitter captured, so requests racing a write-batch
//     publication land in distinct groups and each executes against exactly
//     the snapshot its caller saw.
//   - A cancelled request masks its column without aborting its group: the
//     request's context rides into the blocked solve as a per-column
//     context, and the scheduler completes the request's future
//     independently of its groupmates.
//
// Groups are keyed by (generation, option set): coalesced columns share
// one option set, so requests only ever share a block with peers that ask
// for identical solver knobs — silently dropping a custom tolerance would
// be worse than losing the batching win on a rare request. The common case
// (every client sending the same tolerance) coalesces fully.
package batch

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ingrass/internal/solver"
)

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("batch: scheduler closed")

// Options configures a Scheduler. The zero value means all defaults.
type Options struct {
	// Window is how long an open group waits for companions before it seals
	// anyway. Default 200µs — far below a warm solve, so under load groups
	// fill to MaxBlock and the window only bounds idle-time latency.
	Window time.Duration
	// MaxBlock seals a group at this many coalesced right-hand sides.
	// Default 8; the executor's kernels cap it (sparse.MaxBlockWidth).
	MaxBlock int
	// QueueCap bounds admitted-but-unexecuted requests; further submitters
	// block (backpressure) until capacity frees or their context expires.
	// Default 1024.
	QueueCap int
	// Workers is the number of executor goroutines draining sealed groups.
	// Default GOMAXPROCS.
	Workers int
	// OnGroup, when non-nil, is invoked once per executed (or directly
	// recorded) group with its width in right-hand sides — the hook the
	// serving layer uses to feed its block-fill histogram. It runs on
	// executor goroutines and must be cheap and non-blocking.
	OnGroup func(width int)
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 200 * time.Microsecond
	}
	if o.MaxBlock <= 0 {
		o.MaxBlock = 8
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Kind discriminates what a request's column computes.
type Kind uint8

const (
	// KindSolve is a Laplacian solve: B is the right-hand side and the
	// solution lands in X.
	KindSolve Kind = iota
	// KindPair is an effective-resistance query: the executor builds the
	// basis right-hand side for (U, V) from pooled scratch and reads the
	// resistance off the solved column.
	KindPair
)

// Req is one column of a coalesced blocked solve: the request inputs, the
// per-request context (masking its column on cancellation), and the result
// fields the executor fills before the scheduler completes the future.
// Create with fields set, Submit it, then Wait; result fields must not be
// read until Wait (or Done) reports completion.
type Req struct {
	Ctx  context.Context
	Kind Kind
	X, B []float64 // KindSolve: solution (written in place) and rhs
	U, V int       // KindPair: endpoints
	Opts solver.Options

	// Results, owned by the executor until the future completes.
	Iterations int
	Residual   float64
	Converged  bool
	InnerUses  int
	Resistance float64
	Err        error

	gen       uint64
	done      chan struct{}
	submitted time.Time
}

// Done is closed once the request's group has executed (or the request was
// rejected).
func (r *Req) Done() <-chan struct{} { return r.done }

// Gen returns the generation the request executed against.
func (r *Req) Gen() uint64 { return r.gen }

// SubmittedAt returns when the request was admitted by Submit (zero before
// admission). The executor uses it to backdate a batch-group trace span so
// the span covers queue wait as well as execution.
func (r *Req) SubmittedAt() time.Time { return r.submitted }

// Wait blocks until the request completes or ctx is cancelled. A nil error
// means the result fields are safe to read (including a per-column Err);
// ctx.Err() means the caller abandoned the wait and must NOT touch the
// request's buffers — its column is still in flight until Done closes.
func (r *Req) Wait(ctx context.Context) error {
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// groupKey identifies a coalescing unit: requests must agree on both the
// snapshot generation and the full solver option set to share a block.
type groupKey struct {
	gen  uint64
	opts solver.Options
}

// group is one coalescing unit: same-key requests sealed together.
type group[T any] struct {
	target T
	key    groupKey
	reqs   []*Req
	sealed bool
	timer  *time.Timer
}

// Runner executes one sealed group against its target, filling each
// request's result fields. The scheduler completes the futures afterwards.
type Runner[T any] func(target T, reqs []*Req)

// Stats are the scheduler's monitoring counters.
type Stats struct {
	batches   atomic.Uint64 // blocked groups executed
	columns   atomic.Uint64 // right-hand sides across all groups
	coalesced atomic.Uint64 // requests that shared a group with others
	depth     atomic.Int64  // admitted, not yet executed
}

// StatsView is a plain copy of the counters for reporting.
type StatsView struct {
	// BatchesFormed counts executed blocked groups; RequestsCoalesced the
	// requests that rode in a group of width >= 2. ColumnsTotal /
	// BatchesFormed is the average block fill.
	BatchesFormed     uint64
	ColumnsTotal      uint64
	RequestsCoalesced uint64
	QueueDepth        int64
}

// AvgBlockFill returns the mean group width (0 before any group ran).
func (v StatsView) AvgBlockFill() float64 {
	if v.BatchesFormed == 0 {
		return 0
	}
	return float64(v.ColumnsTotal) / float64(v.BatchesFormed)
}

// Scheduler coalesces same-generation requests into blocked groups and
// drives them through a fixed set of executor goroutines. Safe for any
// number of concurrent submitters.
type Scheduler[T any] struct {
	opts Options
	run  Runner[T]

	mu   sync.Mutex
	open map[groupKey]*group[T]

	execQ chan *group[T]
	sem   chan struct{}
	quit  chan struct{}
	wg    sync.WaitGroup
	// inflight counts dispatches between sealing (under mu, closed
	// re-checked) and their send/fail resolution, so Close can wait for
	// them before its final queue drain — otherwise a descheduled dispatch
	// could land a group in execQ after the drain, stranding its futures.
	inflight sync.WaitGroup
	closed   atomic.Bool
	busy     atomic.Int32 // executors currently inside a Runner
	stats    Stats
}

// New starts a scheduler whose sealed groups are executed by run.
func New[T any](opts Options, run Runner[T]) *Scheduler[T] {
	s := &Scheduler[T]{
		opts: opts.withDefaults(),
		run:  run,
		open: make(map[groupKey]*group[T]),
		quit: make(chan struct{}),
	}
	s.execQ = make(chan *group[T], s.opts.Workers)
	s.sem = make(chan struct{}, s.opts.QueueCap)
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.exec()
	}
	return s
}

// Submit admits one request against the given generation/target; it joins
// the open group for (gen, r.Opts) or opens one. solo bypasses coalescing
// entirely (a width-1 group). Submit blocks while the admission queue is
// full; ctx (the request's own context) bounds that wait.
func (s *Scheduler[T]) Submit(ctx context.Context, gen uint64, target T, r *Req, solo bool) error {
	if s.closed.Load() {
		return ErrClosed
	}
	select {
	case s.sem <- struct{}{}:
	default:
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		case <-s.quit:
			return ErrClosed
		}
	}
	r.gen = gen
	r.done = make(chan struct{})
	r.submitted = time.Now()
	s.stats.depth.Add(1)

	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		s.admitRelease(1)
		return ErrClosed
	}
	key := groupKey{gen: gen, opts: r.Opts}
	if solo {
		s.inflight.Add(1)
		s.mu.Unlock()
		s.dispatch(&group[T]{target: target, key: key, reqs: []*Req{r}, sealed: true})
		return nil
	}
	g := s.open[key]
	if g == nil {
		g = &group[T]{target: target, key: key}
		s.open[key] = g
		g.timer = time.AfterFunc(s.opts.Window, func() { s.sealOnTimer(g) })
	}
	g.reqs = append(g.reqs, r)
	if len(g.reqs) >= s.opts.MaxBlock {
		g.sealed = true
		delete(s.open, key)
		g.timer.Stop()
		s.inflight.Add(1)
		s.mu.Unlock()
		s.dispatch(g)
		return nil
	}
	s.mu.Unlock()
	return nil
}

// sealOnTimer seals a group whose coalescing window elapsed. If every
// executor is busy and the group still has room, sealing now would only
// fragment it — execution cannot start until a worker frees anyway — so
// the timer re-arms and the group keeps filling (group-commit batching:
// under sustained load, groups grow to MaxBlock while the previous block
// executes, and the window only ever bounds idle-time latency).
func (s *Scheduler[T]) sealOnTimer(g *group[T]) {
	s.mu.Lock()
	if g.sealed || s.open[g.key] != g {
		s.mu.Unlock()
		return
	}
	if int(s.busy.Load()) >= s.opts.Workers && len(g.reqs) < s.opts.MaxBlock {
		g.timer.Reset(s.opts.Window)
		s.mu.Unlock()
		return
	}
	g.sealed = true
	delete(s.open, g.key)
	s.inflight.Add(1)
	s.mu.Unlock()
	s.dispatch(g)
}

// dispatch hands a sealed group to the executors (or fails it on shutdown).
// Callers hold an inflight token taken under mu; quit being closed bounds
// the send, so the token is always released.
func (s *Scheduler[T]) dispatch(g *group[T]) {
	defer s.inflight.Done()
	select {
	case s.execQ <- g:
	case <-s.quit:
		s.fail(g, ErrClosed)
	}
}

// exec is one executor goroutine: run groups until shutdown.
func (s *Scheduler[T]) exec() {
	defer s.wg.Done()
	for {
		select {
		case g := <-s.execQ:
			s.runGroup(g)
		case <-s.quit:
			return
		}
	}
}

// runGroup executes one group and completes its futures.
func (s *Scheduler[T]) runGroup(g *group[T]) {
	w := len(g.reqs)
	s.admitRelease(w)
	s.recordGroup(w)
	s.busy.Add(1)
	s.run(g.target, g.reqs)
	s.busy.Add(-1)
	for _, r := range g.reqs {
		close(r.done)
	}
}

// recordGroup accounts one executed group of the given width.
func (s *Scheduler[T]) recordGroup(w int) {
	s.stats.batches.Add(1)
	s.stats.columns.Add(uint64(w))
	if w > 1 {
		s.stats.coalesced.Add(uint64(w))
	}
	if s.opts.OnGroup != nil {
		s.opts.OnGroup(w)
	}
}

// RecordDirect accounts a blocked group executed outside the scheduler (the
// explicit SolveBatch / resistance-sweep path), so block-fill stats cover
// every blocked execution.
func (s *Scheduler[T]) RecordDirect(w int) { s.recordGroup(w) }

// admitRelease returns n admission slots.
func (s *Scheduler[T]) admitRelease(n int) {
	s.stats.depth.Add(int64(-n))
	for i := 0; i < n; i++ {
		<-s.sem
	}
}

// fail completes every request of a group with err.
func (s *Scheduler[T]) fail(g *group[T], err error) {
	s.admitRelease(len(g.reqs))
	for _, r := range g.reqs {
		r.Err = err
		close(r.done)
	}
}

// Stats snapshots the counters.
func (s *Scheduler[T]) Stats() StatsView {
	return StatsView{
		BatchesFormed:     s.stats.batches.Load(),
		ColumnsTotal:      s.stats.columns.Load(),
		RequestsCoalesced: s.stats.coalesced.Load(),
		QueueDepth:        s.stats.depth.Load(),
	}
}

// Close stops the executors and fails every request that has not started
// executing. Groups already inside a Runner complete normally.
func (s *Scheduler[T]) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.quit)
	s.wg.Wait()
	s.mu.Lock()
	groups := make([]*group[T], 0, len(s.open))
	for _, g := range s.open {
		g.sealed = true
		g.timer.Stop()
		groups = append(groups, g)
	}
	s.open = map[groupKey]*group[T]{}
	s.mu.Unlock()
	for _, g := range groups {
		s.fail(g, ErrClosed)
	}
	// Wait out dispatches that sealed before closed flipped: quit is
	// closed, so each resolves promptly (enqueue or fail), and the drain
	// below then catches anything that made it into the queue.
	s.inflight.Wait()
	for {
		select {
		case g := <-s.execQ:
			s.fail(g, ErrClosed)
		default:
			return
		}
	}
}
