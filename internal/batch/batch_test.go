package batch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ingrass/internal/solver"
)

// recorder is a test Runner that records the groups it executes.
type recorder struct {
	mu     sync.Mutex
	groups [][]*Req
	block  chan struct{} // if non-nil, each run waits on it
}

func (rc *recorder) run(target string, reqs []*Req) {
	if rc.block != nil {
		<-rc.block
	}
	rc.mu.Lock()
	rc.groups = append(rc.groups, reqs)
	rc.mu.Unlock()
	for _, r := range reqs {
		r.Iterations = len(reqs) // marker: group width
	}
}

func (rc *recorder) widths() []int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]int, len(rc.groups))
	for i, g := range rc.groups {
		out[i] = len(g)
	}
	return out
}

func submitWait(t *testing.T, s *Scheduler[string], gen uint64, r *Req, solo bool) {
	t.Helper()
	if r.Ctx == nil {
		r.Ctx = context.Background()
	}
	if err := s.Submit(r.Ctx, gen, "target", r, solo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
}

// TestCoalescesWithinWindow: requests submitted inside one window against
// one generation share a group.
func TestCoalescesWithinWindow(t *testing.T) {
	rc := &recorder{}
	s := New(Options{Window: 20 * time.Millisecond, MaxBlock: 8}, rc.run)
	defer s.Close()
	reqs := make([]*Req, 4)
	for i := range reqs {
		reqs[i] = &Req{Ctx: context.Background()}
		submitWait(t, s, 7, reqs[i], false)
	}
	for _, r := range reqs {
		if err := r.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if r.Iterations != 4 {
			t.Fatalf("request ran in width-%d group, want 4", r.Iterations)
		}
		if r.Gen() != 7 {
			t.Fatalf("request gen %d, want 7", r.Gen())
		}
	}
	if w := rc.widths(); len(w) != 1 || w[0] != 4 {
		t.Fatalf("groups %v, want [4]", w)
	}
	v := s.Stats()
	if v.BatchesFormed != 1 || v.ColumnsTotal != 4 || v.RequestsCoalesced != 4 || v.QueueDepth != 0 {
		t.Fatalf("stats %+v", v)
	}
	if v.AvgBlockFill() != 4 {
		t.Fatalf("fill %v, want 4", v.AvgBlockFill())
	}
}

// TestSealsAtMaxBlock: the size bound seals a group immediately, without
// waiting for the window.
func TestSealsAtMaxBlock(t *testing.T) {
	rc := &recorder{}
	s := New(Options{Window: time.Hour, MaxBlock: 3}, rc.run)
	defer s.Close()
	reqs := make([]*Req, 3)
	for i := range reqs {
		reqs[i] = &Req{Ctx: context.Background()}
		submitWait(t, s, 1, reqs[i], false)
	}
	for _, r := range reqs {
		if err := r.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if w := rc.widths(); len(w) != 1 || w[0] != 3 {
		t.Fatalf("groups %v, want [3] despite infinite window", w)
	}
}

// TestGenerationsNeverMix: same-window requests against different
// generations form distinct groups — the group-never-spans-generations
// invariant.
func TestGenerationsNeverMix(t *testing.T) {
	rc := &recorder{}
	s := New(Options{Window: 10 * time.Millisecond, MaxBlock: 8}, rc.run)
	defer s.Close()
	var reqs []*Req
	for i := 0; i < 6; i++ {
		r := &Req{Ctx: context.Background()}
		reqs = append(reqs, r)
		submitWait(t, s, uint64(i%2), r, false)
	}
	for _, r := range reqs {
		if err := r.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if len(rc.groups) != 2 {
		t.Fatalf("%d groups, want 2 (one per generation)", len(rc.groups))
	}
	for _, g := range rc.groups {
		gen := g[0].Gen()
		for _, r := range g {
			if r.Gen() != gen {
				t.Fatalf("group mixes generations %d and %d", gen, r.Gen())
			}
		}
	}
}

// TestSoloBypassesCoalescing: a solo request never shares a group, even
// with an open group of its generation.
func TestSoloBypassesCoalescing(t *testing.T) {
	rc := &recorder{}
	s := New(Options{Window: 20 * time.Millisecond, MaxBlock: 8}, rc.run)
	defer s.Close()
	open := &Req{Ctx: context.Background()}
	submitWait(t, s, 3, open, false)
	solo := &Req{Ctx: context.Background(), Opts: solver.Options{Tol: 1e-3}}
	submitWait(t, s, 3, solo, true)
	if err := solo.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if solo.Iterations != 1 {
		t.Fatalf("solo request ran in width-%d group", solo.Iterations)
	}
	if err := open.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	v := s.Stats()
	if v.RequestsCoalesced != 0 {
		t.Fatalf("stats count solo/width-1 requests as coalesced: %+v", v)
	}
}

// TestQueueBoundBlocksAndCancels: a full admission queue blocks Submit
// until the submitter's context expires.
func TestQueueBoundBlocksAndCancels(t *testing.T) {
	rc := &recorder{block: make(chan struct{})}
	s := New(Options{Window: time.Microsecond, MaxBlock: 1, QueueCap: 1, Workers: 1}, rc.run)
	// Unblock the executor before Close waits for it (defers run LIFO).
	defer s.Close()
	defer close(rc.block)
	// First request occupies the single queue slot (its group may start
	// executing and park on rc.block).
	first := &Req{Ctx: context.Background()}
	submitWait(t, s, 1, first, false)
	// Give it a moment to seal+dispatch so the slot state settles either
	// way; the queue stays at capacity until execution starts.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	filled := false
	for !filled {
		r := &Req{Ctx: ctx}
		err := s.Submit(ctx, 1, "t", r, false)
		if errors.Is(err, context.DeadlineExceeded) {
			filled = true
		} else if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
}

// TestCloseFailsPending: Close fails queued requests with ErrClosed and
// rejects later submissions.
func TestCloseFailsPending(t *testing.T) {
	rc := &recorder{block: make(chan struct{})}
	s := New(Options{Window: time.Hour, MaxBlock: 8, Workers: 1}, rc.run)
	pending := &Req{Ctx: context.Background()}
	submitWait(t, s, 1, pending, false)
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	if err := pending.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(pending.Err, ErrClosed) {
		t.Fatalf("pending request err %v, want ErrClosed", pending.Err)
	}
	close(rc.block)
	<-done
	if err := s.Submit(context.Background(), 1, "t", &Req{Ctx: context.Background()}, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Submit: %v, want ErrClosed", err)
	}
}

// TestConcurrentSubmitters hammers Submit from many goroutines across
// generations; every request must complete exactly once with its own
// generation.
func TestConcurrentSubmitters(t *testing.T) {
	var ran atomic.Int64
	s := New(Options{Window: 200 * time.Microsecond, MaxBlock: 4}, func(target string, reqs []*Req) {
		ran.Add(int64(len(reqs)))
	})
	defer s.Close()
	var wg sync.WaitGroup
	const goroutines, per = 8, 25
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := &Req{Ctx: context.Background()}
				if err := s.Submit(context.Background(), uint64(i%3), "t", r, i%5 == 0); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if err := r.Wait(context.Background()); err != nil {
					t.Errorf("Wait: %v", err)
					return
				}
				if r.Gen() != uint64(i%3) {
					t.Errorf("gen %d, want %d", r.Gen(), i%3)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if ran.Load() != goroutines*per {
		t.Fatalf("%d requests executed, want %d", ran.Load(), goroutines*per)
	}
	if d := s.Stats().QueueDepth; d != 0 {
		t.Fatalf("queue depth %d after drain", d)
	}
}
