package repl

import (
	"math/rand"
	"time"
)

// backoff is the follower's reconnect pacing: capped exponential growth
// with full jitter. Jitter matters more than the curve here — a primary
// restart disconnects every follower at once, and without it they would
// hammer the fresh process in lockstep.
type backoff struct {
	min, max time.Duration
	cur      time.Duration
	rng      *rand.Rand
}

// newBackoff builds a backoff stepping from min to max. A non-zero seed
// makes the jitter deterministic for tests.
func newBackoff(min, max time.Duration, seed int64) *backoff {
	if min <= 0 {
		min = 50 * time.Millisecond
	}
	if max < min {
		max = 10 * time.Second
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &backoff{min: min, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay before the next attempt, doubling the envelope up
// to the cap and drawing uniformly from [min, envelope].
func (b *backoff) Next() time.Duration {
	if b.cur == 0 {
		b.cur = b.min
	} else {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	span := int64(b.cur - b.min)
	if span <= 0 {
		return b.min
	}
	return b.min + time.Duration(b.rng.Int63n(span+1))
}

// Reset drops the envelope back to the starting delay after a successful
// connection.
func (b *backoff) Reset() { b.cur = 0 }
