package repl

import (
	"testing"
	"time"
)

func TestBackoffEnvelopeGrowsToCapWithJitterInBounds(t *testing.T) {
	min, max := 10*time.Millisecond, 160*time.Millisecond
	bo := newBackoff(min, max, 42)
	envelope := min
	for i := 0; i < 12; i++ {
		d := bo.Next()
		if d < min || d > envelope {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, min, envelope)
		}
		if envelope < max {
			envelope *= 2
			if envelope > max {
				envelope = max
			}
		}
	}
	// After many attempts the envelope is pinned at the cap; no draw may
	// exceed it.
	for i := 0; i < 50; i++ {
		if d := bo.Next(); d > max {
			t.Fatalf("capped delay %v exceeds max %v", d, max)
		}
	}
}

func TestBackoffSeedIsDeterministic(t *testing.T) {
	a := newBackoff(10*time.Millisecond, time.Second, 7)
	b := newBackoff(10*time.Millisecond, time.Second, 7)
	for i := 0; i < 10; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, da, db)
		}
	}
}

func TestBackoffResetRestartsTheEnvelope(t *testing.T) {
	min := 10 * time.Millisecond
	bo := newBackoff(min, time.Second, 3)
	if d := bo.Next(); d != min {
		t.Fatalf("first delay %v, want exactly min %v", d, min)
	}
	bo.Next()
	bo.Next()
	bo.Reset()
	if d := bo.Next(); d != min {
		t.Fatalf("post-reset delay %v, want exactly min %v", d, min)
	}
}

func TestBackoffDefaultsSanitizeBadInputs(t *testing.T) {
	bo := newBackoff(0, -1, 0) // zero min, max < min, wall-clock seed
	d := bo.Next()
	if d <= 0 || d > 10*time.Second {
		t.Fatalf("sanitized backoff produced %v", d)
	}
}
