package repl

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ingrass/internal/service"
	"ingrass/internal/wal"
)

// FollowerOptions configures a follower.
type FollowerOptions struct {
	// Primary is the primary's base URL (e.g. http://127.0.0.1:8080).
	Primary string
	// ID is the stable follower identity the primary keys retention on.
	// Empty runs anonymously: no retention ref, so the primary may prune
	// past this follower at any checkpoint (it then re-bootstraps).
	ID string
	// Engine is the base configuration for the replica engine (solver,
	// batch scheduler, snapshot retention, obs registry). Durability and
	// maintenance fields are ignored; the engine is forced read-only.
	Engine service.Options
	// MaxStaleness bounds how long reads keep being served after contact
	// with the primary is lost: past it StaleErr reports ErrReplicaStale
	// (sticky until contact resumes, when it heals automatically). 0 means
	// no bound — the follower serves its last applied generation forever.
	MaxStaleness time.Duration
	// FetchTimeout bounds one checkpoint fetch. Default 60s.
	FetchTimeout time.Duration
	// BackoffMin/BackoffMax shape the reconnect backoff envelope.
	// Defaults 50ms / 10s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// BackoffSeed, when non-zero, makes the reconnect jitter deterministic
	// (tests).
	BackoffSeed int64
	// Client overrides the HTTP client (tests). Streaming requests must
	// not carry a client-level timeout; the default client sets only a
	// header timeout.
	Client *http.Client
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.FetchTimeout <= 0 {
		o.FetchTimeout = 60 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 10 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			ResponseHeaderTimeout: 30 * time.Second,
		}}
	}
	return o
}

// Follower replicates a primary into a local read-only engine: bootstrap
// from checkpoint, then stream and apply the record tail, reconnecting
// with capped exponential backoff + jitter. All methods are safe for
// concurrent use.
type Follower struct {
	opts FollowerOptions
	eng  *service.Engine

	applied      atomic.Uint64 // highest generation applied locally
	primaryGen   atomic.Uint64 // primary's last logged generation, as last heard
	primaryCkGen atomic.Uint64 // primary's checkpoint generation, as last heard
	lastContact  atomic.Int64  // UnixNano of the last successful exchange
	ready        atomic.Bool   // sticky: first full catch-up completed

	appliedRecords atomic.Uint64
	bootstraps     atomic.Uint64
	fetchErrors    atomic.Uint64
	gapRefusals    atomic.Uint64
	crcErrors      atomic.Uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	stop   sync.Once
}

// StartFollower bootstraps a follower from the primary's checkpoint
// (retrying with backoff until ctx is done) and starts its replication
// loop. The returned follower already serves reads at the checkpoint
// generation. Stop it with Stop; the caller closes the engine afterwards.
func StartFollower(ctx context.Context, opts FollowerOptions) (*Follower, error) {
	f := &Follower{opts: opts.withDefaults()}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	bo := newBackoff(f.opts.BackoffMin, f.opts.BackoffMax, f.opts.BackoffSeed)
	for {
		err := f.bootstrap(ctx)
		if err == nil {
			break
		}
		f.fetchErrors.Add(1)
		select {
		case <-ctx.Done():
			f.cancel()
			return nil, fmt.Errorf("repl: bootstrap from %s: %w (last error: %v)", f.opts.Primary, ctx.Err(), err)
		case <-time.After(bo.Next()):
		}
	}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Engine returns the replica engine the follower applies into.
func (f *Follower) Engine() *service.Engine { return f.eng }

// Stop ends the replication loop. The engine keeps serving reads at the
// last applied generation until the caller closes it.
func (f *Follower) Stop() {
	f.stop.Do(func() {
		f.cancel()
		f.wg.Wait()
	})
}

// touchContact timestamps a successful exchange with the primary.
func (f *Follower) touchContact() {
	f.lastContact.Store(time.Now().UnixNano())
}

// maybeReady latches readiness once the replica has caught up to the
// primary's position as last observed — the "first full replay completed"
// point health checks and the router key on.
func (f *Follower) maybeReady() {
	if !f.ready.Load() && f.applied.Load() >= f.primaryGen.Load() {
		f.ready.Store(true)
	}
}

// bootstrap fetches the primary's newest checkpoint and (re)bases the
// replica engine on it.
func (f *Follower) bootstrap(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, f.opts.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.opts.Primary+PathCheckpoint, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("repl: checkpoint fetch: %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	ck, err := wal.ParseCheckpoint(data)
	if err != nil {
		return err
	}
	if lg, perr := strconv.ParseUint(resp.Header.Get(HeaderLastGen), 10, 64); perr == nil {
		f.primaryGen.Store(lg)
	}
	f.primaryCkGen.Store(ck.Gen)
	switch {
	case f.eng == nil:
		eng, err := service.NewReplica(ck, f.opts.Engine)
		if err != nil {
			return err
		}
		f.eng = eng
		f.applied.Store(ck.Gen)
	case ck.Gen > f.applied.Load():
		if err := f.eng.ResetReplica(ck); err != nil {
			return err
		}
		f.applied.Store(ck.Gen)
	default:
		// Already at or past this checkpoint; nothing to rebase.
	}
	f.bootstraps.Add(1)
	f.touchContact()
	f.maybeReady()
	return nil
}

// run is the replication loop: stream, apply, reconnect with backoff.
func (f *Follower) run() {
	defer f.wg.Done()
	bo := newBackoff(f.opts.BackoffMin, f.opts.BackoffMax, f.opts.BackoffSeed)
	for {
		if f.ctx.Err() != nil {
			return
		}
		err := f.streamOnce()
		if err == nil {
			// Clean window end — reconnect immediately.
			bo.Reset()
			continue
		}
		if f.ctx.Err() != nil {
			return
		}
		f.fetchErrors.Add(1)
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(bo.Next()):
		}
	}
}

// streamOnce opens one /repl/segments stream from the applied generation
// and applies frames until the window closes. A 409 redirect re-bootstraps
// from the checkpoint. Returns nil on a clean end.
func (f *Follower) streamOnce() error {
	from := f.applied.Load()
	u := f.opts.Primary + PathSegments +
		"?from=" + strconv.FormatUint(from, 10) +
		"&follower=" + url.QueryEscape(f.opts.ID)
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		// Our position was pruned under a newer checkpoint: re-bootstrap.
		var rb redirectBody
		json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&rb)
		return f.bootstrap(f.ctx)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("repl: segment fetch: %s", resp.Status)
	}

	br := bufio.NewReaderSize(resp.Body, 1<<16)
	for {
		marker, payload, err := readStreamFrame(br)
		if err == io.EOF {
			return nil // window closed cleanly
		}
		if err != nil {
			// Torn or corrupted transfer: count it, drop the connection,
			// and re-fetch from the applied generation. The damaged frame
			// is never applied.
			f.crcErrors.Add(1)
			return err
		}
		switch marker {
		case frameHeartbeat:
			hb, err := decodeHeartbeat(payload)
			if err != nil {
				f.crcErrors.Add(1)
				return err
			}
			f.primaryGen.Store(hb.lastGen)
			f.primaryCkGen.Store(hb.ckGen)
			f.touchContact()
			f.maybeReady()
		case frameRecord:
			rec, err := wal.DecodeRecord(payload)
			if err != nil {
				f.crcErrors.Add(1)
				return err
			}
			if err := f.apply(rec); err != nil {
				return err
			}
		}
	}
}

// apply replays one record, refusing generation gaps. A gap means the
// primary's log has a hole our position predates (a degraded-durability
// window healed by a checkpoint): if the primary's checkpoint is ahead,
// re-bootstrap through it; otherwise surface the divergence and keep
// serving the last applied generation.
func (f *Follower) apply(rec wal.BatchRecord) error {
	err := f.eng.ApplyRecord(rec)
	if err == nil {
		if rec.Gen > f.applied.Load() {
			f.applied.Store(rec.Gen)
		}
		f.appliedRecords.Add(1)
		f.touchContact()
		f.maybeReady()
		return nil
	}
	if errors.Is(err, service.ErrGenerationGap) {
		f.gapRefusals.Add(1)
		if f.primaryCkGen.Load() > f.applied.Load() {
			return f.bootstrap(f.ctx)
		}
	}
	return err
}

// Applied returns the highest locally applied generation.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// Ready reports whether the first full catch-up has completed (sticky).
func (f *Follower) Ready() bool { return f.ready.Load() }

// LagGenerations returns how many generations the replica trails the
// primary's last heard position.
func (f *Follower) LagGenerations() uint64 {
	p, a := f.primaryGen.Load(), f.applied.Load()
	if p > a {
		return p - a
	}
	return 0
}

// LagSeconds returns the seconds since the last successful exchange with
// the primary — the staleness clock MaxStaleness cuts off.
func (f *Follower) LagSeconds() float64 {
	last := f.lastContact.Load()
	if last == 0 {
		return 0
	}
	return time.Since(time.Unix(0, last)).Seconds()
}

// StaleErr returns ErrReplicaStale when the replica is past its staleness
// bound, nil otherwise. The condition heals itself: the next successful
// exchange resets the clock.
func (f *Follower) StaleErr() error {
	if f.opts.MaxStaleness <= 0 {
		return nil
	}
	if time.Duration(time.Now().UnixNano()-f.lastContact.Load()) > f.opts.MaxStaleness {
		return ErrReplicaStale
	}
	return nil
}

// FollowerStats is the follower's flat stats block.
type FollowerStats struct {
	Applied        uint64  `json:"applied_generation"`
	PrimaryGen     uint64  `json:"primary_generation"`
	LagGenerations uint64  `json:"lag_generations"`
	LagSeconds     float64 `json:"lag_seconds"`
	Ready          bool    `json:"ready"`
	Stale          bool    `json:"stale"`
	AppliedRecords uint64  `json:"applied_records"`
	Bootstraps     uint64  `json:"bootstraps"`
	FetchErrors    uint64  `json:"fetch_errors"`
	GapRefusals    uint64  `json:"gap_refusals"`
	CRCErrors      uint64  `json:"crc_errors"`
}

// Stats snapshots the follower's replication counters.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		Applied:        f.applied.Load(),
		PrimaryGen:     f.primaryGen.Load(),
		LagGenerations: f.LagGenerations(),
		LagSeconds:     f.LagSeconds(),
		Ready:          f.ready.Load(),
		Stale:          f.StaleErr() != nil,
		AppliedRecords: f.appliedRecords.Load(),
		Bootstraps:     f.bootstraps.Load(),
		FetchErrors:    f.fetchErrors.Load(),
		GapRefusals:    f.gapRefusals.Load(),
		CRCErrors:      f.crcErrors.Load(),
	}
}
