// Package repl is the replication tier: it turns the write-ahead log
// (internal/wal) from a local crash-recovery device into a shipping log so
// read capacity scales with process count.
//
// Three roles:
//
//   - Primary (primary.go) exposes the WAL over HTTP: GET /repl/checkpoint
//     serves the newest checkpoint file verbatim, GET /repl/segments?from=G
//     streams every record after generation G and then long-polls the live
//     tail, interleaving heartbeats that carry the primary's last and
//     checkpoint generations. Registered followers hold retention refs
//     against pruning, bounded by a retention cap so a dead follower cannot
//     wedge GC forever — past the cap it is evicted and must re-bootstrap
//     from a checkpoint.
//
//   - Follower (follower.go) bootstraps from checkpoint ⊕ tail, replays
//     records through the engine's bit-exact recovery path
//     (service.ApplyRecord), serves read-only traffic at its applied
//     generation, and reconnects with capped exponential backoff + jitter.
//     Every frame is CRC-verified and a generation gap is refused — a
//     damaged or missed record is re-fetched, never applied.
//
//   - Router (router.go) fans reads across healthy ready followers (active
//     health checks + passive error ejection, one retry on a different
//     backend) and forwards writes to the primary.
//
// The wire stream is self-framed so it survives any chunking the HTTP
// transport applies:
//
//	marker  (1 byte: 'R' record, 'B' heartbeat)
//	len     uint32 LE, payload length
//	crc     uint32 LE, IEEE CRC-32 of the payload
//	payload
//
// A record payload is the raw WAL record payload (wal.DecodeRecord parses
// it); a heartbeat payload is lastGen + checkpointGen, both uint64 LE.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// HTTP endpoint paths the primary serves and the follower consumes.
const (
	PathCheckpoint = "/repl/checkpoint"
	PathSegments   = "/repl/segments"
	PathStatus     = "/repl/status"
)

// Response headers on checkpoint fetches.
const (
	HeaderCheckpointGen = "X-Ingrass-Checkpoint-Gen"
	HeaderLastGen       = "X-Ingrass-Last-Gen"
)

// ErrReplicaStale reports a follower past its staleness bound: the primary
// has been unreachable longer than MaxStaleness, so reads at the stale
// generation are refused (503) until contact resumes.
var ErrReplicaStale = errors.New("repl: replica stale; primary unreachable past the staleness bound")

// Stream frame markers.
const (
	frameRecord    = byte('R')
	frameHeartbeat = byte('B')
)

// maxFrameBytes mirrors the WAL's payload bound; a framed length beyond it
// is stream damage, not an allocation request.
const maxFrameBytes = 1 << 30

var crcTable = crc32.IEEETable

// errBadFrame marks a stream read that did not parse as a complete,
// checksummed frame — a torn or corrupted transfer. The follower drops the
// connection and re-fetches from its applied generation; nothing damaged is
// ever applied.
var errBadFrame = errors.New("repl: torn or corrupt stream frame")

// writeStreamFrame frames payload under marker and writes it to w.
func writeStreamFrame(w io.Writer, marker byte, payload []byte) error {
	var hdr [9]byte
	hdr[0] = marker
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readStreamFrame reads one frame. It returns io.EOF at a clean stream end
// and errBadFrame for anything that fails the marker/length/CRC checks.
func readStreamFrame(r io.Reader) (byte, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, errBadFrame
	}
	marker := hdr[0]
	if marker != frameRecord && marker != frameHeartbeat {
		return 0, nil, errBadFrame
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, errBadFrame
	}
	length := binary.LittleEndian.Uint32(hdr[1:5])
	if length > maxFrameBytes {
		return 0, nil, errBadFrame
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, errBadFrame
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[5:9]) {
		return 0, nil, errBadFrame
	}
	return marker, payload, nil
}

// heartbeat is the payload of a 'B' frame.
type heartbeat struct {
	lastGen uint64 // highest generation the primary has logged
	ckGen   uint64 // the primary's newest checkpoint generation
}

func encodeHeartbeat(hb heartbeat) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], hb.lastGen)
	binary.LittleEndian.PutUint64(b[8:16], hb.ckGen)
	return b[:]
}

func decodeHeartbeat(payload []byte) (heartbeat, error) {
	if len(payload) != 16 {
		return heartbeat{}, fmt.Errorf("repl: heartbeat payload %d bytes, want 16", len(payload))
	}
	return heartbeat{
		lastGen: binary.LittleEndian.Uint64(payload[0:8]),
		ckGen:   binary.LittleEndian.Uint64(payload[8:16]),
	}, nil
}
