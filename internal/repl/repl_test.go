package repl

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ingrass/internal/core"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/service"
	"ingrass/internal/wal"
)

// The fault-injection tier for the replicated serving path: every test here
// runs real HTTP between a real primary shipper and a real follower, with
// faults (torn frames, crashes, partitions, pruning) injected at the layer
// where they occur in production. Grids are kept small (36 nodes) so the
// whole tier stays fast under -race.

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

// newPrimaryEngine builds a durable engine over a fresh store in dir, with
// an initial generation-0 checkpoint. MaxBatch 1 makes every Add/Delete one
// WAL record, so generations are predictable.
func newPrimaryEngine(t testing.TB, dir string, wopts wal.Options) (*service.Engine, *wal.Store) {
	t.Helper()
	g := grid(6, 6)
	init, err := grass.InitialSparsifier(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := core.NewSparsifier(g, init.H, core.Config{
		TargetCond: 50,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := wal.Open(dir, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteCheckpoint(wal.Checkpoint{Gen: 0, State: sp.PersistentState()}); err != nil {
		t.Fatal(err)
	}
	e := service.New(sp, service.Options{Store: store, MaxBatch: 1})
	t.Cleanup(func() {
		e.Close()
		store.Close()
	})
	return e, store
}

// primaryMux mounts a Primary's handlers the way cmd/ingrass does.
func primaryMux(p *Primary) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc(PathCheckpoint, p.HandleCheckpoint)
	mux.HandleFunc(PathSegments, p.HandleSegments)
	mux.HandleFunc(PathStatus, p.HandleStatus)
	return mux
}

// fastPrimaryOptions keeps streams and heartbeats snappy for tests.
func fastPrimaryOptions() PrimaryOptions {
	return PrimaryOptions{Heartbeat: 25 * time.Millisecond, StreamWindow: 1 * time.Second}
}

// addGen issues one write (one record, one generation). Pairs are unique
// per k so no delete/re-add aliasing rules apply.
func addGen(t testing.TB, e *service.Engine, k int) {
	t.Helper()
	n := 36
	u := k % n
	v := (u + 1 + (k/n)%(n-1)) % n
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := e.Add(ctx, []graph.Edge{{U: u, V: v, W: 0.5 + float64(k%7)*0.25}}); err != nil {
		t.Fatalf("add %d: %v", k, err)
	}
}

func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sameBinaryExport asserts two graphs serialize to identical bytes through
// the binary codec — the bit-identity acceptance property.
func sameBinaryExport(t *testing.T, name string, a, b *graph.Graph) {
	t.Helper()
	var ab, bb bytes.Buffer
	if err := graph.WriteBinary(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatalf("%s: binary exports differ (%d vs %d bytes)", name, ab.Len(), bb.Len())
	}
}

// assertConverged waits until the follower has applied the primary's last
// generation, then proves bit-identity of both graphs at that generation.
func assertConverged(t *testing.T, e *service.Engine, store *wal.Store, f *Follower) {
	t.Helper()
	waitFor(t, 15*time.Second, "follower convergence", func() bool {
		return f.Applied() == store.LastGen()
	})
	ps, rs := e.Current(), f.Engine().Current()
	if ps.Gen != rs.Gen {
		t.Fatalf("generations diverged: primary %d, follower %d", ps.Gen, rs.Gen)
	}
	sameBinaryExport(t, "G", ps.G, rs.G)
	sameBinaryExport(t, "H", ps.H, rs.H)
}

func startTestFollower(t *testing.T, primaryURL, id string, maxStale time.Duration) *Follower {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f, err := StartFollower(ctx, FollowerOptions{
		Primary:      primaryURL,
		ID:           id,
		Engine:       service.Options{MaxBatch: 1},
		MaxStaleness: maxStale,
		BackoffMin:   10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		BackoffSeed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		f.Stop()
		f.Engine().Close()
	})
	return f
}

// flakyProxy sits between follower and primary. It can partition (all
// requests answer 503) and corrupt: flip one byte inside the first record
// frame of a /repl/segments response, corruptBudget times.
type flakyProxy struct {
	target        string
	partitioned   atomic.Bool
	corruptBudget atomic.Int32
	client        *http.Client
}

func newFlakyProxy(t *testing.T, target string) (*flakyProxy, *httptest.Server) {
	t.Helper()
	fp := &flakyProxy{target: target, client: &http.Client{}}
	srv := httptest.NewServer(fp)
	t.Cleanup(srv.Close)
	return fp, srv
}

func (fp *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if fp.partitioned.Load() {
		writeJSONError(w, http.StatusServiceUnavailable, "partitioned")
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, fp.target+r.URL.RequestURI(), nil)
	if err != nil {
		writeJSONError(w, http.StatusBadGateway, err.Error())
		return
	}
	resp, err := fp.client.Do(req)
	if err != nil {
		writeJSONError(w, http.StatusBadGateway, err.Error())
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)

	corrupt := false
	if r.URL.Path == PathSegments && resp.StatusCode == http.StatusOK &&
		fp.corruptBudget.Load() > 0 && fp.corruptBudget.Add(-1) >= 0 {
		corrupt = true
	}
	// The stream leads with a 25-byte heartbeat frame (1 marker + 4 len +
	// 4 crc + 16 payload); offset 31 sits in the CRC field of the first
	// record frame, so the flip is always detected, never applied.
	const flipAt = 31
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	offset := 0
	for {
		n, rerr := resp.Body.Read(buf)
		// A partition severs in-flight streams too, not just new requests.
		if fp.partitioned.Load() {
			return
		}
		if n > 0 {
			b := buf[:n]
			if corrupt && flipAt >= offset && flipAt < offset+n {
				b[flipAt-offset] ^= 0xFF
				corrupt = false
			}
			offset += n
			if _, werr := w.Write(b); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// TestFollowerConvergesBitExactly: bootstrap from checkpoint, stream the
// live tail, end with zero lag and bit-identical binary exports.
func TestFollowerConvergesBitExactly(t *testing.T) {
	e, store := newPrimaryEngine(t, t.TempDir(), wal.Options{Sync: wal.SyncNever})
	p := NewPrimary(store, fastPrimaryOptions())
	defer p.Close()
	srv := httptest.NewServer(primaryMux(p))
	defer srv.Close()

	for k := 0; k < 8; k++ {
		addGen(t, e, k)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	f := startTestFollower(t, srv.URL, "f1", 0)
	if got := f.Applied(); got != 8 {
		t.Fatalf("bootstrap applied %d, want 8", got)
	}
	// Live tail: records written after the follower attached.
	for k := 8; k < 20; k++ {
		addGen(t, e, k)
	}
	assertConverged(t, e, store, f)
	if !f.Ready() {
		t.Fatal("follower not ready after full catch-up")
	}
	if lag := f.LagGenerations(); lag != 0 {
		t.Fatalf("lag %d after convergence", lag)
	}
	waitFor(t, 5*time.Second, "follower registration", func() bool { return p.Followers() == 1 })
}

// TestTornFrameMidStreamIsReFetchedNeverApplied: a byte flipped mid-stream
// must be CRC-detected, the connection dropped, and the record re-fetched
// clean — the follower still converges bit-exactly.
func TestTornFrameMidStreamIsReFetchedNeverApplied(t *testing.T) {
	e, store := newPrimaryEngine(t, t.TempDir(), wal.Options{Sync: wal.SyncNever})
	p := NewPrimary(store, fastPrimaryOptions())
	defer p.Close()
	srv := httptest.NewServer(primaryMux(p))
	defer srv.Close()
	fp, proxy := newFlakyProxy(t, srv.URL)

	for k := 0; k < 10; k++ {
		addGen(t, e, k)
	}
	// Corrupt the first record frame of the next two segment streams.
	fp.corruptBudget.Store(2)
	f := startTestFollower(t, proxy.URL, "f1", 0)
	assertConverged(t, e, store, f)
	if crc := f.Stats().CRCErrors; crc < 1 {
		t.Fatalf("corruption went undetected: %d CRC errors", crc)
	}
	if fp.corruptBudget.Load() > 0 {
		t.Fatal("proxy never injected the corruption")
	}
}

// TestPrimaryCrashRestartUnderLiveFollower: the primary process dies and
// comes back on the same address; no acked write is lost, the follower
// serves reads throughout and converges on the recovered log.
func TestPrimaryCrashRestartUnderLiveFollower(t *testing.T) {
	dir := t.TempDir()
	e, store := newPrimaryEngine(t, dir, wal.Options{Sync: wal.SyncNever})
	p := NewPrimary(store, fastPrimaryOptions())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hsrv := &http.Server{Handler: primaryMux(p)}
	go hsrv.Serve(ln)

	for k := 0; k < 10; k++ {
		addGen(t, e, k)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	f := startTestFollower(t, "http://"+addr, "f1", 0)
	assertConverged(t, e, store, f)

	// Crash: server torn down abruptly, engine and store closed. All ten
	// writes were acknowledged, so all ten must survive.
	hsrv.Close()
	p.Close()
	e.Close()
	store.Close()

	// The follower keeps serving reads at its applied generation.
	genDuringOutage := f.Engine().Current().Gen
	if genDuringOutage != 10 {
		t.Fatalf("follower serving generation %d during outage, want 10", genDuringOutage)
	}
	if err := f.StaleErr(); err != nil {
		t.Fatalf("MaxStaleness=0 follower went stale during outage: %v", err)
	}

	// Restart on the same address from the data directory alone.
	store2, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := service.Recover(store2, service.Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		e2.Close()
		store2.Close()
	})
	if got := e2.Current().Gen; got != 10 {
		t.Fatalf("recovery lost acked writes: at generation %d, want 10", got)
	}
	p2 := NewPrimary(store2, fastPrimaryOptions())
	defer p2.Close()
	var ln2 net.Listener
	waitFor(t, 5*time.Second, "address rebind", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	hsrv2 := &http.Server{Handler: primaryMux(p2)}
	go hsrv2.Serve(ln2)
	defer hsrv2.Close()

	for k := 10; k < 16; k++ {
		addGen(t, e2, k)
	}
	assertConverged(t, e2, store2, f)
}

// TestFollowerRebootstrapsAfterPrune: an (anonymous) follower partitioned
// across a checkpoint that pruned its position must take the 409 redirect,
// re-bootstrap from the checkpoint, and converge.
func TestFollowerRebootstrapsAfterPrune(t *testing.T) {
	// Tiny segments so checkpoints actually prune sealed records.
	e, store := newPrimaryEngine(t, t.TempDir(), wal.Options{Sync: wal.SyncNever, SegmentBytes: 64})
	p := NewPrimary(store, fastPrimaryOptions())
	defer p.Close()
	srv := httptest.NewServer(primaryMux(p))
	defer srv.Close()
	fp, proxy := newFlakyProxy(t, srv.URL)

	for k := 0; k < 6; k++ {
		addGen(t, e, k)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Anonymous follower: no retention ref, so the primary prunes past it
	// freely (the dead-follower-cannot-wedge-GC guarantee, worst case).
	f := startTestFollower(t, proxy.URL, "", 0)
	assertConverged(t, e, store, f)

	fp.partitioned.Store(true)
	for k := 6; k < 14; k++ {
		addGen(t, e, k)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if pg := store.PrunedGen(); pg <= f.Applied() {
		t.Fatalf("prune horizon %d did not pass the follower at %d", pg, f.Applied())
	}
	fp.partitioned.Store(false)

	assertConverged(t, e, store, f)
	if b := f.Stats().Bootstraps; b < 2 {
		t.Fatalf("follower converged without re-bootstrapping (bootstraps=%d)", b)
	}
}

// TestPartitionThenHealConvergesLag: past MaxStaleness a partitioned
// follower refuses reads (sticky); on heal it serves again and lag returns
// to zero.
func TestPartitionThenHealConvergesLag(t *testing.T) {
	e, store := newPrimaryEngine(t, t.TempDir(), wal.Options{Sync: wal.SyncNever})
	p := NewPrimary(store, fastPrimaryOptions())
	defer p.Close()
	srv := httptest.NewServer(primaryMux(p))
	defer srv.Close()
	fp, proxy := newFlakyProxy(t, srv.URL)

	for k := 0; k < 5; k++ {
		addGen(t, e, k)
	}
	f := startTestFollower(t, proxy.URL, "f1", 150*time.Millisecond)
	assertConverged(t, e, store, f)
	if err := f.StaleErr(); err != nil {
		t.Fatalf("fresh follower reports stale: %v", err)
	}

	fp.partitioned.Store(true)
	for k := 5; k < 9; k++ {
		addGen(t, e, k)
	}
	waitFor(t, 5*time.Second, "staleness trip", func() bool {
		return errors.Is(f.StaleErr(), ErrReplicaStale)
	})
	// Sticky while partitioned; the applied generation is frozen.
	frozen := f.Applied()
	time.Sleep(100 * time.Millisecond)
	if !errors.Is(f.StaleErr(), ErrReplicaStale) {
		t.Fatal("staleness not sticky during partition")
	}
	if f.Applied() != frozen {
		t.Fatal("partitioned follower advanced its generation")
	}

	fp.partitioned.Store(false)
	waitFor(t, 10*time.Second, "staleness heal", func() bool { return f.StaleErr() == nil })
	assertConverged(t, e, store, f)
	if lag := f.LagGenerations(); lag != 0 {
		t.Fatalf("lag %d after heal", lag)
	}
}

// TestDivergenceGuardRefusesGap: a stream with a missing generation (and no
// newer checkpoint to re-bootstrap through) must be refused, leaving the
// follower serving its last applied generation rather than diverging.
func TestDivergenceGuardRefusesGap(t *testing.T) {
	e, store := newPrimaryEngine(t, t.TempDir(), wal.Options{Sync: wal.SyncNever})
	p := NewPrimary(store, fastPrimaryOptions())
	defer p.Close()
	for k := 0; k < 5; k++ {
		addGen(t, e, k)
	}
	// Collect the real record payloads, then serve them with gen 3 missing
	// through a lying primary (checkpoint still at generation 0).
	var payloads [][]byte
	if _, _, err := store.IterateFrom(0, func(gen uint64, payload []byte) error {
		if gen != 3 {
			payloads = append(payloads, append([]byte(nil), payload...))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc(PathCheckpoint, p.HandleCheckpoint)
	mux.HandleFunc(PathSegments, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		for _, pl := range payloads {
			if err := writeStreamFrame(w, frameRecord, pl); err != nil {
				return
			}
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	f := startTestFollower(t, srv.URL, "f1", 0)
	waitFor(t, 10*time.Second, "gap refusal", func() bool {
		return f.Stats().GapRefusals >= 1
	})
	if got := f.Applied(); got != 2 {
		t.Fatalf("follower at generation %d, want 2 (stopped before the gap)", got)
	}
	if b := f.Stats().Bootstraps; b != 1 {
		t.Fatalf("follower re-bootstrapped through a stale checkpoint (bootstraps=%d)", b)
	}
}

// TestPrimaryEvictsOverCapFollower: a lagging follower must not pin
// unbounded log bytes — past RetainCapBytes it is evicted and the next
// checkpoint prunes freely (it will re-bootstrap from the checkpoint).
func TestPrimaryEvictsOverCapFollower(t *testing.T) {
	e, store := newPrimaryEngine(t, t.TempDir(), wal.Options{Sync: wal.SyncNever, SegmentBytes: 64})
	p := NewPrimary(store, PrimaryOptions{RetainCapBytes: 1, FollowerTTL: time.Hour})
	defer p.Close()

	// Register while nothing is checkpoint-covered: the laggard holds 0
	// bytes and stays.
	p.touch("laggard", 0)
	if p.Followers() != 1 {
		t.Fatal("touch did not register the follower")
	}

	for k := 0; k < 6; k++ {
		addGen(t, e, k)
	}
	// The checkpoint covers the sealed segments; the laggard's ref at 0 now
	// pins all of them, so pruning stops at the ref...
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if held := p.RetainedBytes(); held <= 1 {
		t.Fatalf("laggard holds %d coverable bytes, want > cap", held)
	}
	// ...and its next fetch trips the cap.
	p.touch("laggard", 0)
	if p.Followers() != 0 || p.Evictions() != 1 {
		t.Fatalf("over-cap follower not evicted (followers %d, evictions %d)",
			p.Followers(), p.Evictions())
	}
	// With the laggard gone a checkpoint prunes freely again.
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if store.PrunedGen() == 0 {
		t.Fatal("evicted follower still wedges pruning")
	}
}

// TestPrimaryExpiresDeadFollower: a follower that stops fetching is TTL-
// evicted so its retention ref cannot wedge GC forever.
func TestPrimaryExpiresDeadFollower(t *testing.T) {
	e, store := newPrimaryEngine(t, t.TempDir(), wal.Options{Sync: wal.SyncNever, SegmentBytes: 64})
	p := NewPrimary(store, PrimaryOptions{FollowerTTL: 120 * time.Millisecond})
	defer p.Close()

	p.touch("dead", 0)
	if p.Followers() != 1 {
		t.Fatal("touch did not register the follower")
	}
	waitFor(t, 5*time.Second, "TTL eviction", func() bool { return p.Followers() == 0 })
	if p.Evictions() < 1 {
		t.Fatal("TTL eviction not counted")
	}

	for k := 0; k < 6; k++ {
		addGen(t, e, k)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if store.PrunedGen() == 0 {
		t.Fatal("dead follower wedged pruning")
	}
}

// TestStreamFrameRoundTrip pins the wire framing: marker, length, CRC.
func TestStreamFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeStreamFrame(&buf, frameRecord, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	hb := heartbeat{lastGen: 42, ckGen: 7}
	if err := writeStreamFrame(&buf, frameHeartbeat, encodeHeartbeat(hb)); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	marker, payload, err := readStreamFrame(r)
	if err != nil || marker != frameRecord || string(payload) != "payload-bytes" {
		t.Fatalf("record frame: %c %q %v", marker, payload, err)
	}
	marker, payload, err = readStreamFrame(r)
	if err != nil || marker != frameHeartbeat {
		t.Fatalf("heartbeat frame: %c %v", marker, err)
	}
	got, err := decodeHeartbeat(payload)
	if err != nil || got != hb {
		t.Fatalf("heartbeat decode: %+v %v", got, err)
	}
	if _, _, err := readStreamFrame(r); err != io.EOF {
		t.Fatalf("end of stream: %v", err)
	}

	// Any flipped byte must fail the read, not pass through.
	raw := buf.Bytes()
	for _, i := range []int{0, 3, 7, 11} {
		damaged := append([]byte(nil), raw...)
		damaged[i] ^= 0xFF
		if _, _, err := readStreamFrame(bytes.NewReader(damaged)); err == nil {
			t.Fatalf("flip at %d went undetected", i)
		}
	}
}
