package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// routedBackend is a scriptable upstream: it answers /healthz from its
// atomic flags and tags every other response with its name, counting
// reads and writes separately.
type routedBackend struct {
	name   string
	role   string
	ready  atomic.Bool
	fail   atomic.Bool // non-healthz requests answer 503
	reads  atomic.Int64
	writes atomic.Int64
	srv    *httptest.Server
}

func newRoutedBackend(t *testing.T, name, role string, ready bool) *routedBackend {
	t.Helper()
	b := &routedBackend{name: name, role: role}
	b.ready.Store(ready)
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			json.NewEncoder(w).Encode(healthzBody{Status: "ok", Role: b.role, Ready: b.ready.Load()})
			return
		}
		if b.fail.Load() {
			writeJSONError(w, http.StatusServiceUnavailable, "injected failure")
			return
		}
		if r.Method == http.MethodGet || r.Method == http.MethodHead {
			b.reads.Add(1)
		} else {
			io.Copy(io.Discard, r.Body)
			b.writes.Add(1)
		}
		fmt.Fprintf(w, `{"served_by":%q}`, b.name)
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func newTestRouter(t *testing.T, primary *routedBackend, replicas ...*routedBackend) (*Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.srv.URL
	}
	rt := NewRouter(RouterOptions{
		Primary:     primary.srv.URL,
		Replicas:    urls,
		HealthEvery: 25 * time.Millisecond,
		EjectFor:    200 * time.Millisecond,
	})
	rt.Start()
	t.Cleanup(rt.Stop)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	return rt, front
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func servedBy(t *testing.T, body string) string {
	t.Helper()
	var v struct {
		ServedBy string `json:"served_by"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("unparseable routed body %q: %v", body, err)
	}
	return v.ServedBy
}

func TestRouterSplitsWritesFromReads(t *testing.T) {
	primary := newRoutedBackend(t, "primary", "primary", true)
	r1 := newRoutedBackend(t, "r1", "follower", true)
	r2 := newRoutedBackend(t, "r2", "follower", true)
	_, front := newTestRouter(t, primary, r1, r2)

	// Writes land on the primary, regardless of healthy replicas.
	for _, path := range []string{"/edges", "/resparsify"} {
		resp, err := http.Post(front.URL+path, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		if body, _ := io.ReadAll(resp.Body); servedBy(t, string(body)) != "primary" {
			t.Fatalf("write to %s served by %s", path, string(body))
		}
		resp.Body.Close()
	}
	req, _ := http.NewRequest(http.MethodDelete, front.URL+"/edges", strings.NewReader(`{}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if w := primary.writes.Load(); w != 3 {
		t.Fatalf("primary saw %d writes, want 3", w)
	}
	if r1.writes.Load()+r2.writes.Load() != 0 {
		t.Fatal("a write leaked to a replica")
	}

	// Reads fan across both replicas and never hit the primary.
	for i := 0; i < 10; i++ {
		if code, _ := get(t, front.URL+"/stats"); code != http.StatusOK {
			t.Fatalf("read %d: status %d", i, code)
		}
	}
	if primary.reads.Load() != 0 {
		t.Fatalf("primary served %d reads with healthy replicas", primary.reads.Load())
	}
	if r1.reads.Load() == 0 || r2.reads.Load() == 0 {
		t.Fatalf("reads not fanned: r1 %d, r2 %d", r1.reads.Load(), r2.reads.Load())
	}
}

func TestRouterRetriesOnDifferentBackendAndEjects(t *testing.T) {
	primary := newRoutedBackend(t, "primary", "primary", true)
	bad := newRoutedBackend(t, "bad", "follower", true)
	good := newRoutedBackend(t, "good", "follower", true)
	bad.fail.Store(true)
	rt, front := newTestRouter(t, primary, bad, good)

	// Every read succeeds: a 503 from bad is retried on good.
	for i := 0; i < 6; i++ {
		code, body := get(t, front.URL+"/stats")
		if code != http.StatusOK {
			t.Fatalf("read %d: status %d (%s)", i, code, body)
		}
		if servedBy(t, body) != "good" {
			t.Fatalf("read %d served by %s", i, body)
		}
	}
	// After the first failure bad is ejected, so later reads stop touching
	// it entirely until the window expires.
	if rt.retries.Load() == 0 {
		t.Fatal("no retry recorded")
	}

	// The ejection window expires and a recovered backend rejoins.
	bad.fail.Store(false)
	waitFor(t, 5*time.Second, "ejection expiry", func() bool {
		get(t, front.URL+"/stats")
		return bad.reads.Load() > 0
	})
}

func TestRouterSkipsColdFollower(t *testing.T) {
	primary := newRoutedBackend(t, "primary", "primary", true)
	cold := newRoutedBackend(t, "cold", "follower", false) // ready:false
	warm := newRoutedBackend(t, "warm", "follower", true)
	_, front := newTestRouter(t, primary, cold, warm)

	for i := 0; i < 8; i++ {
		_, body := get(t, front.URL+"/stats")
		if servedBy(t, body) != "warm" {
			t.Fatalf("read %d served by %s", i, body)
		}
	}
	if cold.reads.Load() != 0 {
		t.Fatalf("cold follower served %d reads before first full replay", cold.reads.Load())
	}

	// The follower finishes its first replay; the next health pass routes
	// to it.
	cold.ready.Store(true)
	waitFor(t, 5*time.Second, "warmed follower joins rotation", func() bool {
		get(t, front.URL+"/stats")
		return cold.reads.Load() > 0
	})
}

func TestRouterFallsBackToPrimaryWithoutReplicas(t *testing.T) {
	primary := newRoutedBackend(t, "primary", "primary", true)
	down := newRoutedBackend(t, "down", "follower", true)
	_, front := newTestRouter(t, primary, down)
	down.srv.Close() // the only replica is unreachable

	waitFor(t, 5*time.Second, "replica marked unhealthy", func() bool {
		_, body := get(t, front.URL+"/stats")
		return servedBy(t, body) == "primary"
	})
	if code, body := get(t, front.URL+"/stats"); code != http.StatusOK || servedBy(t, body) != "primary" {
		t.Fatalf("read without replicas: %d %s", code, body)
	}
}

func TestRouterNeverRetriesWrites(t *testing.T) {
	primary := newRoutedBackend(t, "primary", "primary", true)
	replica := newRoutedBackend(t, "r1", "follower", true)
	primary.fail.Store(true)
	_, front := newTestRouter(t, primary, replica)

	// A failing write surfaces as-is; retrying through a proxy could apply
	// a non-idempotent batch twice.
	resp, err := http.Post(front.URL+"/edges", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failing write surfaced as %d, want 503 passthrough", resp.StatusCode)
	}
	if replica.writes.Load() != 0 {
		t.Fatal("write was retried on a replica")
	}
}

func TestRouterHealthzReportsBackends(t *testing.T) {
	primary := newRoutedBackend(t, "primary", "primary", true)
	r1 := newRoutedBackend(t, "r1", "follower", true)
	rt, front := newTestRouter(t, primary, r1)
	_ = rt

	code, body := get(t, front.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("router healthz: %d", code)
	}
	var hb struct {
		Status   string          `json:"status"`
		Role     string          `json:"role"`
		Backends []routerBackend `json:"backends"`
	}
	if err := json.Unmarshal([]byte(body), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "ok" || hb.Role != "router" || len(hb.Backends) != 2 {
		t.Fatalf("router healthz body: %s", body)
	}
	for _, b := range hb.Backends {
		if !b.Healthy || !b.Ready {
			t.Fatalf("backend %s reported unhealthy in %s", b.URL, body)
		}
	}
	if hb.Backends[0].Role != "primary" || hb.Backends[1].Role != "follower" {
		t.Fatalf("roles not propagated from upstream healthz: %s", body)
	}
}
