package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ingrass/internal/obs"
	"ingrass/internal/obs/trace"
)

// RouterOptions configures the read-fanout router.
type RouterOptions struct {
	// Primary is the write target (and the read fallback of last resort).
	Primary string
	// Replicas are the follower base URLs reads round-robin across.
	Replicas []string
	// HealthEvery is the active health-check interval. Default 500ms.
	HealthEvery time.Duration
	// EjectFor is how long a backend stays out of rotation after a passive
	// failure (transport error, 502, 503). Default 2s.
	EjectFor time.Duration
	// MaxBodyBytes bounds a buffered request body (bodies are buffered so
	// a read can be retried on a different replica). Default 8 MiB.
	MaxBodyBytes int64
	// Client overrides the forwarding HTTP client (tests).
	Client *http.Client
	// Obs, when set, registers router metrics (per-backend request/
	// failure/ejection counters and forward-latency histograms, plus the
	// retry counter) and serves their exposition at GET /metrics.
	Obs *obs.Registry
	// Tracer, when set, roots a client span per routed request, propagates
	// the trace downstream via the traceparent header, and serves
	// GET /debug/requests with backend-side continuations stitched in.
	Tracer *trace.Recorder
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.HealthEvery <= 0 {
		o.HealthEvery = 500 * time.Millisecond
	}
	if o.EjectFor <= 0 {
		o.EjectFor = 2 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// backendState is the router's live view of one upstream.
type backendState struct {
	url          string
	idx          int          // 0 = primary, 1.. = replicas (span backend attr)
	role         atomic.Value // string, as self-reported by /healthz
	healthy      atomic.Bool
	ready        atomic.Bool
	ejectedUntil atomic.Int64 // UnixNano; passive ejection window
	requests     atomic.Uint64
	failures     atomic.Uint64
	ejections    atomic.Uint64
	dur          *obs.Histogram // forward latency (nil without Obs)
}

func (b *backendState) ejected() bool {
	return time.Now().UnixNano() < b.ejectedUntil.Load()
}

func (b *backendState) available() bool {
	return b.healthy.Load() && b.ready.Load() && !b.ejected()
}

// Router is a thin HTTP fan-out: writes (POST/DELETE /edges, POST
// /resparsify) forward to the primary; every other request round-robins
// across healthy, ready, non-ejected replicas with one retry on a
// different backend, falling back to the primary when no replica
// qualifies. Health is tracked actively (periodic /healthz polls that also
// read the follower's ready flag, so a cold follower is never routed to)
// and passively (transport errors and 502/503 eject the backend for
// EjectFor).
type Router struct {
	opts     RouterOptions
	primary  *backendState
	replicas []*backendState
	next     atomic.Uint64
	retries  atomic.Uint64

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewRouter builds a router. Call Start to begin health checking, Stop to
// end it.
func NewRouter(opts RouterOptions) *Router {
	rt := &Router{
		opts:    opts.withDefaults(),
		primary: &backendState{url: opts.Primary},
		quit:    make(chan struct{}),
	}
	for i, u := range opts.Replicas {
		rt.replicas = append(rt.replicas, &backendState{url: u, idx: i + 1})
	}
	if reg := rt.opts.Obs; reg != nil {
		rt.registerMetrics(reg)
	}
	return rt
}

// registerMetrics bridges the router's per-backend atomics into reg. The
// backend label vocabulary is the fixed upstream list, closed at
// construction, so cardinality is bounded by the topology.
func (rt *Router) registerMetrics(reg *obs.Registry) {
	for _, b := range rt.backends() {
		b := b
		lbl := obs.Label{Key: "backend", Value: b.url}
		reg.CounterFunc("ingrass_route_requests_total",
			"Requests forwarded per backend",
			func() float64 { return float64(b.requests.Load()) }, lbl)
		reg.CounterFunc("ingrass_route_failures_total",
			"Forward attempts that failed per backend",
			func() float64 { return float64(b.failures.Load()) }, lbl)
		reg.CounterFunc("ingrass_route_ejections_total",
			"Passive health ejections per backend",
			func() float64 { return float64(b.ejections.Load()) }, lbl)
		b.dur = reg.Histogram("ingrass_route_backend_duration_seconds",
			"Forwarded request latency per backend", obs.ScaleSeconds, lbl)
	}
	reg.CounterFunc("ingrass_route_retries_total",
		"Requests retried on a different backend",
		func() float64 { return float64(rt.retries.Load()) })
}

// backends lists all upstreams, primary first.
func (rt *Router) backends() []*backendState {
	return append([]*backendState{rt.primary}, rt.replicas...)
}

// Start runs one synchronous health pass (so the first request already has
// an honest view) and begins the periodic health loop.
func (rt *Router) Start() {
	rt.healthPass()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		ticker := time.NewTicker(rt.opts.HealthEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				rt.healthPass()
			case <-rt.quit:
				return
			}
		}
	}()
}

// Stop ends the health loop.
func (rt *Router) Stop() {
	rt.once.Do(func() {
		close(rt.quit)
		rt.wg.Wait()
	})
}

// healthzBody is the shape GET /healthz answers with.
type healthzBody struct {
	Status string `json:"status"`
	Role   string `json:"role"`
	Ready  bool   `json:"ready"`
}

func (rt *Router) healthPass() {
	backends := append([]*backendState{rt.primary}, rt.replicas...)
	var wg sync.WaitGroup
	for _, b := range backends {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			client := &http.Client{Timeout: rt.opts.HealthEvery * 2, Transport: rt.opts.Client.Transport}
			resp, err := client.Get(b.url + "/healthz")
			if err != nil {
				b.healthy.Store(false)
				b.ready.Store(false)
				return
			}
			defer resp.Body.Close()
			var hb healthzBody
			if resp.StatusCode != http.StatusOK ||
				json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&hb) != nil ||
				hb.Status != "ok" {
				b.healthy.Store(false)
				b.ready.Store(false)
				return
			}
			b.role.Store(hb.Role)
			b.healthy.Store(true)
			b.ready.Store(hb.Ready)
		}(b)
	}
	wg.Wait()
}

// isWrite classifies mutating requests: everything else (solves,
// resistance queries, exports, stats) is safe to serve from a replica.
func isWrite(r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return false
	}
	switch r.URL.Path {
	case "/edges", "/resparsify":
		return true
	}
	return false
}

// pickReplica returns the next available replica after exclude, or nil.
func (rt *Router) pickReplica(exclude *backendState) *backendState {
	n := len(rt.replicas)
	if n == 0 {
		return nil
	}
	start := rt.next.Add(1)
	for i := 0; i < n; i++ {
		b := rt.replicas[(start+uint64(i))%uint64(n)]
		if b == exclude || !b.available() {
			continue
		}
		return b
	}
	return nil
}

func (rt *Router) eject(b *backendState) {
	b.failures.Add(1)
	b.ejections.Add(1)
	b.ejectedUntil.Store(time.Now().Add(rt.opts.EjectFor).UnixNano())
}

// forward sends the request to backend b and returns the response. body may
// be nil. A nil response with nil error never happens. When root is a live
// span the attempt gets a router_client child span and the chosen backend
// receives the trace via the traceparent header — the backend's own root
// span then parents under this client span, stitching the cross-process
// trace.
func (rt *Router) forward(r *http.Request, b *backendState, body []byte, root trace.Span) (*http.Response, error) {
	b.requests.Add(1)
	u := b.url + r.URL.RequestURI()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	cs := root.StartChild(trace.SpanRouterClient)
	cs.SetAttr(trace.AttrBackend, int64(b.idx))
	if tp := cs.Traceparent(); tp != "" {
		req.Header.Set(trace.TraceparentHeader, tp)
	}
	start := time.Now()
	resp, err := rt.opts.Client.Do(req)
	b.dur.ObserveSince(start)
	if err == nil {
		cs.SetAttr(trace.AttrStatus, int64(resp.StatusCode))
	}
	cs.End()
	return resp, err
}

// copyResponse relays resp to w.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	resp.Body.Close()
}

// retryableStatus marks upstream responses that justify trying another
// backend: the backend itself is refusing (stale replica 503, dead proxy
// hop 502), not the request failing on its merits.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable
}

// routeEndpoint classifies a request path into the closed endpoint
// vocabulary the flight recorder shards by (bounding its cardinality no
// matter what paths clients send).
func routeEndpoint(r *http.Request) string {
	switch r.URL.Path {
	case "/solve":
		return "solve"
	case "/solve/batch":
		return "solve_batch"
	case "/resistance":
		return "resistance"
	case "/resistance/batch":
		return "resistance_batch"
	case "/edges":
		if r.Method == http.MethodDelete {
			return "edges_delete"
		}
		return "edges_add"
	case "/resparsify":
		return "resparsify"
	case "/sparsifier":
		return "sparsifier"
	case "/stats":
		return "stats"
	}
	return "other"
}

// routerStatusWriter captures the final status for trace retention while
// forwarding Flush (the /repl/segments long-poll streams frames).
type routerStatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *routerStatusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *routerStatusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		switch r.URL.Path {
		case "/healthz":
			rt.handleHealthz(w, r)
			return
		case "/metrics":
			if reg := rt.opts.Obs; reg != nil {
				w.Header().Set("Content-Type", obs.ExpositionContentType)
				_ = reg.WritePrometheus(w)
				return
			}
		case "/debug/requests":
			if rt.opts.Tracer != nil {
				rt.handleDebugRequests(w, r)
				return
			}
		}
	}

	root := trace.Span{}
	if rt.opts.Tracer != nil {
		remote, _ := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
		root = rt.opts.Tracer.StartRequest(routeEndpoint(r), remote)
	}
	sw := &routerStatusWriter{ResponseWriter: w, status: http.StatusOK}
	rt.route(sw, r, root)
	if rt.opts.Tracer != nil {
		rt.opts.Tracer.Finish(root, sw.status)
	}
}

// route forwards one request: writes to the primary once, reads across
// replicas with one retry on a different backend.
func (rt *Router) route(w http.ResponseWriter, r *http.Request, root trace.Span) {
	// Buffer the body so a failed read attempt can be replayed elsewhere.
	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, rt.opts.MaxBodyBytes+1))
		r.Body.Close()
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "reading request body")
			return
		}
		if int64(len(body)) > rt.opts.MaxBodyBytes {
			writeJSONError(w, http.StatusRequestEntityTooLarge, "request body exceeds router buffer")
			return
		}
	}

	if isWrite(r) {
		// Writes go to the primary, once: retrying a non-idempotent write
		// through a proxy risks double application.
		resp, err := rt.forward(r, rt.primary, body, root)
		if err != nil {
			writeJSONError(w, http.StatusBadGateway, "primary unreachable: "+err.Error())
			return
		}
		copyResponse(w, resp)
		return
	}

	first := rt.pickReplica(nil)
	if first == nil {
		first = rt.primary
	}
	resp, err := rt.forward(r, first, body, root)
	if err == nil && !retryableStatus(resp.StatusCode) {
		copyResponse(w, resp)
		return
	}
	if resp != nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
	if first != rt.primary {
		rt.eject(first)
	}
	rt.retries.Add(1)

	second := rt.pickReplica(first)
	if second == nil && first != rt.primary {
		second = rt.primary
	}
	if second == nil {
		writeJSONError(w, http.StatusBadGateway, "no backend available")
		return
	}
	resp2, err2 := rt.forward(r, second, body, root)
	if err2 != nil {
		if second != rt.primary {
			rt.eject(second)
		}
		writeJSONError(w, http.StatusBadGateway, "all backends failed: "+err2.Error())
		return
	}
	copyResponse(w, resp2)
}

// handleDebugRequests serves the router's flight recorder with each
// trace's backend-side continuation stitched in: for every retained trace
// the router asks each upstream's /debug/requests for that trace ID and
// embeds whatever the backend retained — one request, one stitched
// cross-process trace.
func (rt *Router) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	var id trace.TraceID
	if q := r.URL.Query().Get("trace"); q != "" {
		parsed, ok := trace.ParseTraceID(q)
		if !ok {
			writeJSONError(w, http.StatusBadRequest, "bad trace id")
			return
		}
		id = parsed
	}
	local := rt.opts.Tracer.Debug(id, r.URL.Query().Get("endpoint"))
	out := make([]*trace.TraceSnapshot, 0, len(local))
	backends := rt.backends()
	for _, t := range local {
		// Shallow copy: the stored snapshot is shared with the flight
		// recorder and must not grow a Remote list per read.
		tc := *t
		tc.Remote = nil
		for _, b := range backends {
			if traces := rt.fetchRemoteTrace(r.Context(), b, tc.TraceID); len(traces) > 0 {
				tc.Remote = append(tc.Remote, trace.RemoteTrace{Backend: b.url, Traces: traces})
			}
		}
		out = append(out, &tc)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(trace.DebugRequests{Traces: out})
}

// fetchRemoteTrace asks backend b for its retained portion of trace id.
// Best-effort: any failure returns nil and the stitched view simply omits
// that backend.
func (rt *Router) fetchRemoteTrace(ctx context.Context, b *backendState, id string) []*trace.TraceSnapshot {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/debug/requests?trace="+id, nil)
	if err != nil {
		return nil
	}
	resp, err := rt.opts.Client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var dr trace.DebugRequests
	if json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&dr) != nil {
		return nil
	}
	return dr.Traces
}

// routerBackend is one upstream's entry in the router's /healthz body.
type routerBackend struct {
	URL      string `json:"url"`
	Role     string `json:"role"`
	Healthy  bool   `json:"healthy"`
	Ready    bool   `json:"ready"`
	Ejected  bool   `json:"ejected"`
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Status   string          `json:"status"`
		Role     string          `json:"role"`
		Ready    bool            `json:"ready"`
		Retries  uint64          `json:"retries"`
		Backends []routerBackend `json:"backends"`
	}{Status: "ok", Role: "router", Ready: true, Retries: rt.retries.Load()}
	for _, b := range append([]*backendState{rt.primary}, rt.replicas...) {
		role, _ := b.role.Load().(string)
		out.Backends = append(out.Backends, routerBackend{
			URL:      b.url,
			Role:     role,
			Healthy:  b.healthy.Load(),
			Ready:    b.ready.Load(),
			Ejected:  b.ejected(),
			Requests: b.requests.Load(),
			Failures: b.failures.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
