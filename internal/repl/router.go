package repl

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// RouterOptions configures the read-fanout router.
type RouterOptions struct {
	// Primary is the write target (and the read fallback of last resort).
	Primary string
	// Replicas are the follower base URLs reads round-robin across.
	Replicas []string
	// HealthEvery is the active health-check interval. Default 500ms.
	HealthEvery time.Duration
	// EjectFor is how long a backend stays out of rotation after a passive
	// failure (transport error, 502, 503). Default 2s.
	EjectFor time.Duration
	// MaxBodyBytes bounds a buffered request body (bodies are buffered so
	// a read can be retried on a different replica). Default 8 MiB.
	MaxBodyBytes int64
	// Client overrides the forwarding HTTP client (tests).
	Client *http.Client
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.HealthEvery <= 0 {
		o.HealthEvery = 500 * time.Millisecond
	}
	if o.EjectFor <= 0 {
		o.EjectFor = 2 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// backendState is the router's live view of one upstream.
type backendState struct {
	url          string
	role         atomic.Value // string, as self-reported by /healthz
	healthy      atomic.Bool
	ready        atomic.Bool
	ejectedUntil atomic.Int64 // UnixNano; passive ejection window
	requests     atomic.Uint64
	failures     atomic.Uint64
}

func (b *backendState) ejected() bool {
	return time.Now().UnixNano() < b.ejectedUntil.Load()
}

func (b *backendState) available() bool {
	return b.healthy.Load() && b.ready.Load() && !b.ejected()
}

// Router is a thin HTTP fan-out: writes (POST/DELETE /edges, POST
// /resparsify) forward to the primary; every other request round-robins
// across healthy, ready, non-ejected replicas with one retry on a
// different backend, falling back to the primary when no replica
// qualifies. Health is tracked actively (periodic /healthz polls that also
// read the follower's ready flag, so a cold follower is never routed to)
// and passively (transport errors and 502/503 eject the backend for
// EjectFor).
type Router struct {
	opts     RouterOptions
	primary  *backendState
	replicas []*backendState
	next     atomic.Uint64
	retries  atomic.Uint64

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewRouter builds a router. Call Start to begin health checking, Stop to
// end it.
func NewRouter(opts RouterOptions) *Router {
	rt := &Router{
		opts:    opts.withDefaults(),
		primary: &backendState{url: opts.Primary},
		quit:    make(chan struct{}),
	}
	for _, u := range opts.Replicas {
		rt.replicas = append(rt.replicas, &backendState{url: u})
	}
	return rt
}

// Start runs one synchronous health pass (so the first request already has
// an honest view) and begins the periodic health loop.
func (rt *Router) Start() {
	rt.healthPass()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		ticker := time.NewTicker(rt.opts.HealthEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				rt.healthPass()
			case <-rt.quit:
				return
			}
		}
	}()
}

// Stop ends the health loop.
func (rt *Router) Stop() {
	rt.once.Do(func() {
		close(rt.quit)
		rt.wg.Wait()
	})
}

// healthzBody is the shape GET /healthz answers with.
type healthzBody struct {
	Status string `json:"status"`
	Role   string `json:"role"`
	Ready  bool   `json:"ready"`
}

func (rt *Router) healthPass() {
	backends := append([]*backendState{rt.primary}, rt.replicas...)
	var wg sync.WaitGroup
	for _, b := range backends {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			client := &http.Client{Timeout: rt.opts.HealthEvery * 2, Transport: rt.opts.Client.Transport}
			resp, err := client.Get(b.url + "/healthz")
			if err != nil {
				b.healthy.Store(false)
				b.ready.Store(false)
				return
			}
			defer resp.Body.Close()
			var hb healthzBody
			if resp.StatusCode != http.StatusOK ||
				json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&hb) != nil ||
				hb.Status != "ok" {
				b.healthy.Store(false)
				b.ready.Store(false)
				return
			}
			b.role.Store(hb.Role)
			b.healthy.Store(true)
			b.ready.Store(hb.Ready)
		}(b)
	}
	wg.Wait()
}

// isWrite classifies mutating requests: everything else (solves,
// resistance queries, exports, stats) is safe to serve from a replica.
func isWrite(r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return false
	}
	switch r.URL.Path {
	case "/edges", "/resparsify":
		return true
	}
	return false
}

// pickReplica returns the next available replica after exclude, or nil.
func (rt *Router) pickReplica(exclude *backendState) *backendState {
	n := len(rt.replicas)
	if n == 0 {
		return nil
	}
	start := rt.next.Add(1)
	for i := 0; i < n; i++ {
		b := rt.replicas[(start+uint64(i))%uint64(n)]
		if b == exclude || !b.available() {
			continue
		}
		return b
	}
	return nil
}

func (rt *Router) eject(b *backendState) {
	b.failures.Add(1)
	b.ejectedUntil.Store(time.Now().Add(rt.opts.EjectFor).UnixNano())
}

// forward sends the request to backend b and returns the response. body may
// be nil. A nil response with nil error never happens.
func (rt *Router) forward(r *http.Request, b *backendState, body []byte) (*http.Response, error) {
	b.requests.Add(1)
	u := b.url + r.URL.RequestURI()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	return rt.opts.Client.Do(req)
}

// copyResponse relays resp to w.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	resp.Body.Close()
}

// retryableStatus marks upstream responses that justify trying another
// backend: the backend itself is refusing (stale replica 503, dead proxy
// hop 502), not the request failing on its merits.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" && r.Method == http.MethodGet {
		rt.handleHealthz(w, r)
		return
	}

	// Buffer the body so a failed read attempt can be replayed elsewhere.
	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, rt.opts.MaxBodyBytes+1))
		r.Body.Close()
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "reading request body")
			return
		}
		if int64(len(body)) > rt.opts.MaxBodyBytes {
			writeJSONError(w, http.StatusRequestEntityTooLarge, "request body exceeds router buffer")
			return
		}
	}

	if isWrite(r) {
		// Writes go to the primary, once: retrying a non-idempotent write
		// through a proxy risks double application.
		resp, err := rt.forward(r, rt.primary, body)
		if err != nil {
			writeJSONError(w, http.StatusBadGateway, "primary unreachable: "+err.Error())
			return
		}
		copyResponse(w, resp)
		return
	}

	first := rt.pickReplica(nil)
	if first == nil {
		first = rt.primary
	}
	resp, err := rt.forward(r, first, body)
	if err == nil && !retryableStatus(resp.StatusCode) {
		copyResponse(w, resp)
		return
	}
	if resp != nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
	if first != rt.primary {
		rt.eject(first)
	}
	rt.retries.Add(1)

	second := rt.pickReplica(first)
	if second == nil && first != rt.primary {
		second = rt.primary
	}
	if second == nil {
		writeJSONError(w, http.StatusBadGateway, "no backend available")
		return
	}
	resp2, err2 := rt.forward(r, second, body)
	if err2 != nil {
		if second != rt.primary {
			rt.eject(second)
		}
		writeJSONError(w, http.StatusBadGateway, "all backends failed: "+err2.Error())
		return
	}
	copyResponse(w, resp2)
}

// routerBackend is one upstream's entry in the router's /healthz body.
type routerBackend struct {
	URL      string `json:"url"`
	Role     string `json:"role"`
	Healthy  bool   `json:"healthy"`
	Ready    bool   `json:"ready"`
	Ejected  bool   `json:"ejected"`
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Status   string          `json:"status"`
		Role     string          `json:"role"`
		Ready    bool            `json:"ready"`
		Retries  uint64          `json:"retries"`
		Backends []routerBackend `json:"backends"`
	}{Status: "ok", Role: "router", Ready: true, Retries: rt.retries.Load()}
	for _, b := range append([]*backendState{rt.primary}, rt.replicas...) {
		role, _ := b.role.Load().(string)
		out.Backends = append(out.Backends, routerBackend{
			URL:      b.url,
			Role:     role,
			Healthy:  b.healthy.Load(),
			Ready:    b.ready.Load(),
			Ejected:  b.ejected(),
			Requests: b.requests.Load(),
			Failures: b.failures.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
