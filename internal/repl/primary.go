package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ingrass/internal/wal"
)

// PrimaryOptions configures the primary-side shipper.
type PrimaryOptions struct {
	// Heartbeat is the interval between 'B' frames on an idle stream (and
	// the follower's liveness signal). Default 2s.
	Heartbeat time.Duration
	// StreamWindow bounds one /repl/segments response; the follower
	// reconnects (resuming from its applied generation) when it elapses,
	// which doubles as the acknowledgement path for retention. Default 30s.
	StreamWindow time.Duration
	// RetainCapBytes bounds the checkpoint-covered segment bytes a single
	// follower's retention ref may hold against pruning. Past it the
	// follower is evicted — a dead follower must not wedge GC forever; a
	// live one re-bootstraps from the checkpoint. <=0 means 256 MiB;
	// negative is not unlimited, it is the default.
	RetainCapBytes int64
	// FollowerTTL expires followers that stopped fetching. Default 60s.
	FollowerTTL time.Duration
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.StreamWindow <= 0 {
		o.StreamWindow = 30 * time.Second
	}
	if o.RetainCapBytes <= 0 {
		o.RetainCapBytes = 256 << 20
	}
	if o.FollowerTTL <= 0 {
		o.FollowerTTL = 60 * time.Second
	}
	return o
}

// followerRef is the primary's bookkeeping for one registered follower.
type followerRef struct {
	ref      *wal.RetainRef
	ackGen   uint64
	lastSeen time.Time
}

// Primary ships a Store's checkpoints and record stream to followers. It
// does not own the store; close order is Primary first, store after.
type Primary struct {
	store *wal.Store
	opts  PrimaryOptions

	mu        sync.Mutex
	followers map[string]*followerRef
	evictions atomic.Uint64
	streams   atomic.Int64 // currently-open segment streams

	quit chan struct{}
	wg   sync.WaitGroup
}

// NewPrimary builds a shipper over store and starts the follower-expiry
// janitor. Stop it with Close.
func NewPrimary(store *wal.Store, opts PrimaryOptions) *Primary {
	p := &Primary{
		store:     store,
		opts:      opts.withDefaults(),
		followers: make(map[string]*followerRef),
		quit:      make(chan struct{}),
	}
	p.wg.Add(1)
	go p.janitor()
	return p
}

// Close stops the janitor and releases every follower's retention ref.
func (p *Primary) Close() {
	select {
	case <-p.quit:
		return
	default:
	}
	close(p.quit)
	p.wg.Wait()
	p.mu.Lock()
	for id, f := range p.followers {
		f.ref.Release()
		delete(p.followers, id)
	}
	p.mu.Unlock()
}

// janitor expires followers that stopped fetching, so their retention refs
// do not pin the log forever.
func (p *Primary) janitor() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.opts.FollowerTTL / 4)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			cutoff := time.Now().Add(-p.opts.FollowerTTL)
			p.mu.Lock()
			for id, f := range p.followers {
				if f.lastSeen.Before(cutoff) {
					f.ref.Release()
					delete(p.followers, id)
					p.evictions.Add(1)
				}
			}
			p.mu.Unlock()
		case <-p.quit:
			return
		}
	}
}

// touch registers or refreshes follower id at acknowledged generation ack,
// then enforces the retention cap: a follower whose ref pins more
// checkpoint-covered bytes than allowed is evicted and will re-bootstrap.
func (p *Primary) touch(id string, ack uint64) {
	if id == "" {
		return
	}
	p.mu.Lock()
	f := p.followers[id]
	if f == nil {
		f = &followerRef{ref: p.store.Retain(ack)}
		p.followers[id] = f
	}
	if ack > f.ackGen {
		f.ackGen = ack
	}
	f.ref.Update(ack)
	f.lastSeen = time.Now()
	held := p.store.CoverableBytes(f.ref.Gen())
	if held > p.opts.RetainCapBytes {
		f.ref.Release()
		delete(p.followers, id)
		p.evictions.Add(1)
	}
	p.mu.Unlock()
}

// HandleCheckpoint serves GET /repl/checkpoint: the newest checkpoint file
// verbatim, with its generation and the log's last generation in headers.
func (p *Primary) HandleCheckpoint(w http.ResponseWriter, r *http.Request) {
	data, gen, err := p.store.CheckpointBytes()
	if err != nil {
		if errors.Is(err, wal.ErrNoCheckpoint) {
			writeJSONError(w, http.StatusNotFound, "no checkpoint yet")
			return
		}
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set(HeaderCheckpointGen, strconv.FormatUint(gen, 10))
	w.Header().Set(HeaderLastGen, strconv.FormatUint(p.store.LastGen(), 10))
	w.Write(data)
}

// redirectBody is the 409 response telling a follower its position was
// pruned and it must re-bootstrap from the checkpoint.
type redirectBody struct {
	Error         string `json:"error"`
	CheckpointGen uint64 `json:"checkpoint_gen"`
}

// HandleSegments serves GET /repl/segments?from=<gen>[&follower=<id>]: a
// framed stream of every record with generation > from, then a long-polled
// live tail with heartbeats, for at most StreamWindow. A from below the
// pruning horizon gets 409 + checkpoint-redirect. The follower parameter
// registers a retention ref; the from value of each fetch doubles as the
// follower's acknowledgement.
func (p *Primary) HandleSegments(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad or missing from parameter")
		return
	}
	fid := q.Get("follower")
	if from < p.store.PrunedGen() {
		ckGen, _ := p.store.CheckpointGen()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(redirectBody{Error: "checkpoint_redirect", CheckpointGen: ckGen})
		return
	}
	p.touch(fid, from)
	p.streams.Add(1)
	defer p.streams.Add(-1)

	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")

	writeHeartbeat := func() error {
		ckGen, _ := p.store.CheckpointGen()
		hb := heartbeat{lastGen: p.store.LastGen(), ckGen: ckGen}
		if err := writeStreamFrame(w, frameHeartbeat, encodeHeartbeat(hb)); err != nil {
			return err
		}
		flush()
		return nil
	}
	// Lead with a heartbeat so the follower learns the primary's position
	// (and can compute lag) before the first record arrives.
	if writeHeartbeat() != nil {
		return
	}

	window := time.NewTimer(p.opts.StreamWindow)
	defer window.Stop()
	hbTicker := time.NewTicker(p.opts.Heartbeat)
	defer hbTicker.Stop()
	ctx := r.Context()
	cur := from
	for {
		// Grab the append signal BEFORE draining, so a record landing
		// between the drain and the wait still wakes us.
		sig := p.store.AppendSignal()
		last, n, err := p.store.IterateFrom(cur, func(gen uint64, payload []byte) error {
			return writeStreamFrame(w, frameRecord, payload)
		})
		cur = last
		if n > 0 {
			flush()
			p.touch(fid, cur)
		}
		if err != nil {
			// ErrPruned mid-stream (a checkpoint overtook the reader) or a
			// write failure (follower gone): either way, end the stream;
			// the follower's next fetch sorts it out (409 or reconnect).
			return
		}
		select {
		case <-sig:
		case <-hbTicker.C:
			if writeHeartbeat() != nil {
				return
			}
		case <-window.C:
			return
		case <-ctx.Done():
			return
		case <-p.quit:
			return
		}
	}
}

// followerStatus is one follower's entry in GET /repl/status.
type followerStatus struct {
	ID           string `json:"id"`
	AckGen       uint64 `json:"ack_generation"`
	LastSeenMS   int64  `json:"last_seen_ms"`
	HeldBytes    int64  `json:"held_bytes"`
	LagBehindLog uint64 `json:"lag_generations"`
}

// StatusView is the JSON body of GET /repl/status.
type StatusView struct {
	LastGen       uint64           `json:"last_generation"`
	CheckpointGen uint64           `json:"checkpoint_generation"`
	PrunedGen     uint64           `json:"pruned_generation"`
	OpenStreams   int64            `json:"open_streams"`
	Evictions     uint64           `json:"follower_evictions"`
	Followers     []followerStatus `json:"followers"`
}

// Status snapshots the primary-side replication state.
func (p *Primary) Status() StatusView {
	lastGen := p.store.LastGen()
	ckGen, _ := p.store.CheckpointGen()
	sv := StatusView{
		LastGen:       lastGen,
		CheckpointGen: ckGen,
		PrunedGen:     p.store.PrunedGen(),
		OpenStreams:   p.streams.Load(),
		Evictions:     p.evictions.Load(),
	}
	p.mu.Lock()
	for id, f := range p.followers {
		var lag uint64
		if lastGen > f.ackGen {
			lag = lastGen - f.ackGen
		}
		sv.Followers = append(sv.Followers, followerStatus{
			ID:           id,
			AckGen:       f.ackGen,
			LastSeenMS:   time.Since(f.lastSeen).Milliseconds(),
			HeldBytes:    p.store.CoverableBytes(f.ref.Gen()),
			LagBehindLog: lag,
		})
	}
	p.mu.Unlock()
	return sv
}

// Followers returns the number of registered followers.
func (p *Primary) Followers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.followers)
}

// Evictions returns the cumulative follower evictions (TTL + retention cap).
func (p *Primary) Evictions() uint64 { return p.evictions.Load() }

// RetainedBytes returns the checkpoint-covered bytes currently pinned by
// the slowest follower (0 with no followers).
func (p *Primary) RetainedBytes() int64 {
	p.mu.Lock()
	var floor uint64
	found := false
	for _, f := range p.followers {
		g := f.ref.Gen()
		if !found || g < floor {
			floor, found = g, true
		}
	}
	p.mu.Unlock()
	if !found {
		return 0
	}
	return p.store.CoverableBytes(floor)
}

// HandleStatus serves GET /repl/status.
func (p *Primary) HandleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p.Status())
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
