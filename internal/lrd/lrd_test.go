package lrd

import (
	"context"
	"math"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/krylov"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func twoCommunities() *graph.Graph {
	// Two dense 10-cliques joined by a single weak bridge: the natural
	// 2-cluster structure that LRD should find early.
	g := graph.New(20, 100)
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			g.AddEdge(a, b, 10)
			g.AddEdge(10+a, 10+b, 10)
		}
	}
	g.AddEdge(0, 10, 0.01)
	return g
}

func TestBuildBasicHierarchy(t *testing.T) {
	g := grid(8, 8)
	d, err := Build(g, Config{Krylov: krylov.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 64 || d.Levels < 2 {
		t.Fatalf("levels=%d n=%d", d.Levels, d.N)
	}
	// Level 0 is singletons.
	if d.NumClusters[0] != 64 || d.MaxClusterSize[0] != 1 {
		t.Fatalf("level 0: %d clusters, max size %d", d.NumClusters[0], d.MaxClusterSize[0])
	}
	// Top level merges the connected graph into one cluster.
	top := d.Levels - 1
	if d.NumClusters[top] != 1 {
		t.Fatalf("top level has %d clusters", d.NumClusters[top])
	}
	// Cluster counts are non-increasing.
	for l := 1; l < d.Levels; l++ {
		if d.NumClusters[l] > d.NumClusters[l-1] {
			t.Fatalf("cluster count increased at level %d: %v", l, d.NumClusters)
		}
	}
	// Sizes at each level sum to N.
	for l := 0; l < d.Levels; l++ {
		var sum int32
		for _, s := range d.ClusterSize[l] {
			sum += s
		}
		if int(sum) != 64 {
			t.Fatalf("level %d sizes sum to %d", l, sum)
		}
	}
}

func TestHierarchyIsNested(t *testing.T) {
	g := grid(10, 10)
	d, err := Build(g, Config{Krylov: krylov.Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// If two nodes share a cluster at level l, they share one at l+1.
	r := vecmath.NewRNG(3)
	for trial := 0; trial < 200; trial++ {
		p, q := r.Intn(100), r.Intn(100)
		for l := 1; l+1 < d.Levels; l++ {
			if d.ClusterID(l, p) == d.ClusterID(l, q) &&
				d.ClusterID(l+1, p) != d.ClusterID(l+1, q) {
				t.Fatalf("nesting violated for (%d,%d) at level %d", p, q, l)
			}
		}
	}
}

func TestSharedLevelAndEmbedding(t *testing.T) {
	g := grid(6, 6)
	d, err := Build(g, Config{Krylov: krylov.Config{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if d.SharedLevel(5, 5) != 0 {
		t.Fatal("same node shares at level 0")
	}
	l := d.SharedLevel(0, 35)
	if l <= 0 || l >= d.Levels {
		t.Fatalf("corner nodes share at level %d", l)
	}
	ev := d.EmbeddingVector(7)
	if len(ev) != d.Levels || ev[0] != 7 {
		t.Fatalf("embedding vector %v", ev)
	}
	// Embedding vectors agree with ClusterID.
	for lv := 0; lv < d.Levels; lv++ {
		if ev[lv] != d.ClusterID(lv, 7) {
			t.Fatal("embedding vector inconsistent")
		}
	}
}

func TestResistanceBoundIsUpperBound(t *testing.T) {
	g := grid(6, 6)
	d, err := Build(g, Config{Krylov: krylov.Config{Seed: 5, Order: 20, Starts: 3}})
	if err != nil {
		t.Fatal(err)
	}
	lap := sparse.NewLaplacianSolver(g, solver.Options{Tol: 1e-10})
	r := vecmath.NewRNG(6)
	violations := 0
	trials := 0
	for trial := 0; trial < 40; trial++ {
		p, q := r.Intn(36), r.Intn(36)
		if p == q {
			continue
		}
		trials++
		exact, err := lap.SolvePair(context.Background(), p, q)
		if err != nil {
			t.Fatal(err)
		}
		bound := d.ResistanceBound(p, q)
		if math.IsInf(bound, 1) {
			t.Fatalf("connected pair (%d,%d) got infinite bound", p, q)
		}
		// The bound uses ESTIMATED resistances, so it is approximate; allow
		// occasional mild violations but not systematic ones.
		if exact > bound*1.5 {
			violations++
		}
	}
	if violations > trials/5 {
		t.Fatalf("resistance bound violated too often: %d/%d", violations, trials)
	}
}

func TestCommunityStructureDetected(t *testing.T) {
	g := twoCommunities()
	d, err := Build(g, Config{Krylov: krylov.Config{Seed: 7, Order: 16}})
	if err != nil {
		t.Fatal(err)
	}
	// At some intermediate level, the two cliques should be separate
	// clusters: nodes within a clique co-clustered before the bridge merges
	// them.
	foundSplit := false
	for l := 1; l < d.Levels-1; l++ {
		if d.ClusterID(l, 0) == d.ClusterID(l, 5) && // same clique together
			d.ClusterID(l, 10) == d.ClusterID(l, 15) &&
			d.ClusterID(l, 0) != d.ClusterID(l, 10) { // cliques apart
			foundSplit = true
			break
		}
	}
	if !foundSplit {
		t.Fatal("LRD failed to separate the two communities at any level")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := graph.New(6, 4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	d, err := Build(g, Config{Krylov: krylov.Config{Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if d.SharedLevel(0, 3) != -1 {
		t.Fatal("cross-component nodes must never share a cluster")
	}
	if !math.IsInf(d.ResistanceBound(0, 5), 1) {
		t.Fatal("cross-component bound must be +Inf")
	}
	if d.SharedLevel(0, 2) < 0 {
		t.Fatal("same-component nodes must share a cluster")
	}
}

func TestFilterLevel(t *testing.T) {
	g := grid(8, 8)
	d, err := Build(g, Config{Krylov: krylov.Config{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	// Large target: deep level allowed; tiny target: level 1.
	deep := d.FilterLevel(1e9)
	shallow := d.FilterLevel(2.0)
	if deep < shallow {
		t.Fatalf("deep=%d < shallow=%d", deep, shallow)
	}
	if shallow < 1 || deep >= d.Levels {
		t.Fatalf("levels out of range: deep=%d shallow=%d", deep, shallow)
	}
	// The chosen level respects the C/2 cluster-size cap when possible.
	c := 16.0
	l := d.FilterLevel(c)
	if l > 1 && float64(d.MaxClusterSize[l]) > c/2 {
		t.Fatalf("filter level %d has max cluster %d > %v", l, d.MaxClusterSize[l], c/2)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(graph.New(0, 0), Config{}); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := graph.New(1, 0)
	d, err := Build(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Levels != 1 || d.NumClusters[0] != 1 {
		t.Fatalf("single node: levels=%d clusters=%v", d.Levels, d.NumClusters)
	}
}

func TestDeterminism(t *testing.T) {
	g := grid(7, 7)
	d1, err := Build(g, Config{Krylov: krylov.Config{Seed: 10}})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(g, Config{Krylov: krylov.Config{Seed: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Levels != d2.Levels {
		t.Fatal("level counts differ across runs")
	}
	for l := 0; l < d1.Levels; l++ {
		for v := 0; v < d1.N; v++ {
			if d1.ClusterID(l, v) != d2.ClusterID(l, v) {
				t.Fatalf("cluster ids differ at level %d node %d", l, v)
			}
		}
	}
}

func TestDiameterMonotonicity(t *testing.T) {
	// The diameter of the cluster containing v must be non-decreasing as
	// levels grow (merging can only extend the bound).
	g := grid(9, 9)
	d, err := Build(g, Config{Krylov: krylov.Config{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < d.N; v += 7 {
		prev := 0.0
		for l := 1; l < d.Levels; l++ {
			cur := d.Diameter[l][d.ClusterID(l, v)]
			if cur < prev-1e-12 {
				t.Fatalf("diameter shrank at level %d for node %d: %v -> %v", l, v, prev, cur)
			}
			prev = cur
		}
	}
}
