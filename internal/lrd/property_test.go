package lrd

import (
	"testing"
	"testing/quick"

	"ingrass/internal/graph"
	"ingrass/internal/krylov"
	"ingrass/internal/vecmath"
)

// randomConnected builds a reproducible connected weighted graph.
func randomConnected(seed uint64, n, extra int) *graph.Graph {
	r := vecmath.NewRNG(seed)
	g := graph.New(n, n+extra)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[r.Intn(i)], r.Range(0.1, 10))
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, r.Range(0.1, 10))
		}
	}
	return g
}

// Property: the hierarchy is laminar — clusters at level l+1 are unions of
// clusters at level l — and cluster counts weakly decrease.
func TestHierarchyLaminarProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed, 40, 60)
		d, err := Build(g, Config{Krylov: krylov.Config{Seed: seed}})
		if err != nil {
			return false
		}
		for l := 0; l+1 < d.Levels; l++ {
			if d.NumClusters[l+1] > d.NumClusters[l] {
				return false
			}
			// Laminar: same cluster at l implies same at l+1. Check via a
			// map from level-l cluster to its level-(l+1) parent.
			parent := make(map[int32]int32)
			for v := 0; v < d.N; v++ {
				c := d.ClusterID(l, v)
				p, ok := parent[c]
				if !ok {
					parent[c] = d.ClusterID(l+1, v)
				} else if p != d.ClusterID(l+1, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: every connected pair shares a cluster at the top level, and the
// resistance bound is finite, positive, and symmetric.
func TestResistanceBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed, 30, 40)
		d, err := Build(g, Config{Krylov: krylov.Config{Seed: seed}})
		if err != nil {
			return false
		}
		r := vecmath.NewRNG(seed ^ 0x123)
		for k := 0; k < 30; k++ {
			p, q := r.Intn(30), r.Intn(30)
			if p == q {
				if d.ResistanceBound(p, q) != 0 {
					return false
				}
				continue
			}
			b1 := d.ResistanceBound(p, q)
			b2 := d.ResistanceBound(q, p)
			if b1 != b2 || b1 <= 0 || b1 != b1 /* NaN */ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: cluster sizes at every level sum to N and match the dense
// renumbering (ids in [0, NumClusters)).
func TestClusterAccountingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed, 25, 30)
		d, err := Build(g, Config{Krylov: krylov.Config{Seed: seed}})
		if err != nil {
			return false
		}
		for l := 0; l < d.Levels; l++ {
			var sum int32
			for _, s := range d.ClusterSize[l] {
				if s <= 0 {
					return false
				}
				sum += s
			}
			if int(sum) != d.N {
				return false
			}
			for v := 0; v < d.N; v++ {
				c := d.ClusterID(l, v)
				if c < 0 || int(c) >= d.NumClusters[l] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: SharedLevel is consistent with ClusterID, i.e. it is the first
// level where the ids coincide.
func TestSharedLevelConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed, 20, 25)
		d, err := Build(g, Config{Krylov: krylov.Config{Seed: seed}})
		if err != nil {
			return false
		}
		r := vecmath.NewRNG(seed ^ 0x456)
		for k := 0; k < 20; k++ {
			p, q := r.Intn(20), r.Intn(20)
			if p == q {
				continue
			}
			l := d.SharedLevel(p, q)
			if l < 0 {
				return false // connected graph: must share eventually
			}
			if d.ClusterID(l, p) != d.ClusterID(l, q) {
				return false
			}
			for ll := 1; ll < l; ll++ {
				if d.ClusterID(ll, p) == d.ClusterID(ll, q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
