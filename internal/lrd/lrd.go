// Package lrd implements the multilevel low-resistance-diameter (LRD)
// decomposition at the heart of inGRASS's setup phase (paper Section
// III-B2, following the HyperEF clustering of Aghdaei & Feng).
//
// Starting from singleton clusters, each level estimates the effective
// resistance of the current (contracted) sparsifier's edges with the Krylov
// embedding, then contracts edges in ascending-resistance order as long as
// the merged cluster's resistance diameter stays within the level's budget.
// Contracted clusters become supernodes of the next level and the budget
// grows geometrically, so after O(log N) levels every connected component
// is a single cluster. Recording each node's cluster index at every level
// yields the O(log N)-dimensional resistance embedding: the resistance
// between any two nodes is bounded by the diameter of the first cluster
// they share.
package lrd

import (
	"fmt"
	"math"
	"sort"

	"ingrass/internal/graph"
	"ingrass/internal/krylov"
)

// Config controls the decomposition.
type Config struct {
	// InitialDiameter is the resistance-diameter budget of level 1.
	// 0 means automatic: twice the median estimated edge resistance.
	InitialDiameter float64
	// Growth multiplies the budget per level. Default 2.
	Growth float64
	// MaxLevels bounds the hierarchy depth. Default ceil(log2 N) + 2.
	// The final level always merges whole connected components so that
	// every connected pair shares a cluster somewhere in the hierarchy.
	MaxLevels int
	// Krylov configures resistance estimation at each level.
	Krylov krylov.Config
}

func (c Config) withDefaults(n int) Config {
	if c.Growth <= 1 {
		c.Growth = 2
	}
	if c.MaxLevels <= 0 {
		c.MaxLevels = 2
		for s := n; s > 1; s >>= 1 {
			c.MaxLevels++
		}
	}
	return c
}

// Decomposition is the multilevel clustering result. Level 0 is the
// singleton level (every node its own cluster with diameter 0); level
// Levels-1 merges whole connected components.
type Decomposition struct {
	N      int
	Levels int
	// clusterID[l][v] is node v's cluster index at level l. Cluster indices
	// at each level are dense in [0, NumClusters[l]).
	clusterID [][]int32
	// NumClusters[l] is the cluster count at level l.
	NumClusters []int
	// Diameter[l][c] is the tracked resistance-diameter upper bound of
	// cluster c at level l.
	Diameter [][]float64
	// Budget[l] is the diameter budget that produced level l (0 for level 0,
	// +Inf for the final component level).
	Budget []float64
	// ClusterSize[l][c] is the node count of cluster c at level l.
	ClusterSize [][]int32
	// MaxClusterSize[l] caches max over ClusterSize[l].
	MaxClusterSize []int
}

// ClusterID returns node v's cluster index at level l.
func (d *Decomposition) ClusterID(l, v int) int32 { return d.clusterID[l][v] }

// EmbeddingVector returns the per-level cluster indices of node v — the
// node's resistance-embedding vector from the paper's Fig. 2.
func (d *Decomposition) EmbeddingVector(v int) []int32 {
	out := make([]int32, d.Levels)
	for l := 0; l < d.Levels; l++ {
		out[l] = d.clusterID[l][v]
	}
	return out
}

// SharedLevel returns the lowest level at which p and q belong to the same
// cluster, or -1 if they never do (different connected components).
func (d *Decomposition) SharedLevel(p, q int) int {
	if p == q {
		return 0
	}
	for l := 1; l < d.Levels; l++ {
		if d.clusterID[l][p] == d.clusterID[l][q] {
			return l
		}
	}
	return -1
}

// ResistanceBound returns the upper bound on the effective resistance
// between p and q implied by the hierarchy: the tracked diameter of the
// first shared cluster. It returns +Inf for disconnected pairs.
func (d *Decomposition) ResistanceBound(p, q int) float64 {
	l := d.SharedLevel(p, q)
	switch {
	case l < 0:
		return math.Inf(1)
	case l == 0:
		return 0
	default:
		return d.Diameter[l][d.clusterID[l][p]]
	}
}

// FilterLevel selects the update-phase filtering level for a target
// condition number C: the deepest level whose largest cluster has at most
// C/2 nodes (paper Section III-C2). It always returns at least level 1 so
// filtering has non-trivial clusters to work with.
func (d *Decomposition) FilterLevel(targetCond float64) int {
	limit := targetCond / 2
	best := 1
	for l := 1; l < d.Levels; l++ {
		if float64(d.MaxClusterSize[l]) <= limit {
			best = l
		}
	}
	return best
}

// Build runs the decomposition on the sparsifier h. h should be connected
// for the hierarchy to terminate at a single cluster; disconnected inputs
// produce one top-level cluster per component.
func Build(h *graph.Graph, cfg Config) (*Decomposition, error) {
	n := h.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("lrd: empty graph")
	}
	cfg = cfg.withDefaults(n)

	d := &Decomposition{N: n}
	// Level 0: singletons.
	lvl0 := make([]int32, n)
	for i := range lvl0 {
		lvl0[i] = int32(i)
	}
	size0 := make([]int32, n)
	for i := range size0 {
		size0[i] = 1
	}
	d.clusterID = append(d.clusterID, lvl0)
	d.NumClusters = append(d.NumClusters, n)
	d.Diameter = append(d.Diameter, make([]float64, n))
	d.Budget = append(d.Budget, 0)
	d.ClusterSize = append(d.ClusterSize, size0)
	d.MaxClusterSize = append(d.MaxClusterSize, 1)

	// The contracted graph at the current top level, plus each supernode's
	// carried diameter and node count.
	cur := h
	carriedDiam := make([]float64, n)
	carriedSize := make([]int32, n)
	for i := range carriedSize {
		carriedSize[i] = 1
	}

	budget := cfg.InitialDiameter
	seed := cfg.Krylov.Seed

	for level := 1; ; level++ {
		if cur.NumNodes() <= 1 {
			break
		}
		final := level >= cfg.MaxLevels
		var resist []float64
		if final {
			budget = math.Inf(1)
			resist = make([]float64, cur.NumEdges())
		} else {
			kcfg := cfg.Krylov
			kcfg.Seed = seed + uint64(level)*0x9e37
			emb, err := krylov.NewEmbedding(cur, kcfg)
			if err != nil {
				return nil, fmt.Errorf("lrd: level %d embedding: %w", level, err)
			}
			resist = emb.EstimateEdges(cur.Edges(), kcfg.Workers)
			if budget == 0 {
				budget = 2 * median(resist)
				if budget <= 0 {
					budget = 1
				}
			}
		}

		order := make([]int, cur.NumEdges())
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return resist[order[a]] < resist[order[b]] })

		uf := graph.NewUnionFind(cur.NumNodes())
		diam := append([]float64(nil), carriedDiam...)
		merged := false
		for _, ei := range order {
			e := cur.Edge(ei)
			ru, rv := uf.Find(e.U), uf.Find(e.V)
			if ru == rv {
				continue
			}
			nd := diam[ru] + diam[rv] + resist[ei]
			if !final && nd > budget {
				continue
			}
			uf.Union(ru, rv)
			diam[uf.Find(ru)] = nd
			merged = true
		}

		// Dense-renumber the new clusters.
		repTo := make(map[int]int32, cur.NumNodes())
		newID := make([]int32, cur.NumNodes())
		var count int32
		for v := 0; v < cur.NumNodes(); v++ {
			r := uf.Find(v)
			id, ok := repTo[r]
			if !ok {
				id = count
				count++
				repTo[r] = id
			}
			newID[v] = id
		}

		// Cluster diameters, sizes in the dense numbering.
		newDiam := make([]float64, count)
		newSize := make([]int32, count)
		for v := 0; v < cur.NumNodes(); v++ {
			r := uf.Find(v)
			newDiam[newID[v]] = diam[r]
			newSize[newID[v]] += carriedSize[v]
		}
		maxSize := 0
		for _, s := range newSize {
			if int(s) > maxSize {
				maxSize = int(s)
			}
		}

		// Per-node cluster ids at this level: compose previous level's map.
		prev := d.clusterID[len(d.clusterID)-1]
		lvl := make([]int32, n)
		for v := 0; v < n; v++ {
			lvl[v] = newID[prev[v]]
		}
		d.clusterID = append(d.clusterID, lvl)
		d.NumClusters = append(d.NumClusters, int(count))
		d.Diameter = append(d.Diameter, newDiam)
		d.Budget = append(d.Budget, budget)
		d.ClusterSize = append(d.ClusterSize, newSize)
		d.MaxClusterSize = append(d.MaxClusterSize, maxSize)

		if int(count) == 1 || final {
			break
		}
		if !merged {
			// Budget too small to merge anything: grow it and retry at the
			// next level (the level we just appended is a no-op copy, which
			// keeps Budget/level bookkeeping aligned).
			budget *= cfg.Growth
			// Avoid unbounded identical levels: jump straight to the
			// smallest merging cost next time.
			if len(order) > 0 {
				minCost := math.Inf(1)
				for _, ei := range order {
					e := cur.Edge(ei)
					if uf.Find(e.U) != uf.Find(e.V) {
						c := resist[ei]
						if c < minCost {
							minCost = c
						}
					}
				}
				if !math.IsInf(minCost, 1) && budget < minCost {
					budget = minCost * 1.01
				}
			}
			continue
		}

		// Contract: build the next-level supergraph with aggregated edge
		// weights (parallel conductances add).
		next := graph.New(int(count), cur.NumEdges()/2)
		agg := make(map[uint64]int, cur.NumEdges()/2)
		for _, e := range cur.Edges() {
			cu, cv := newID[e.U], newID[e.V]
			if cu == cv {
				continue
			}
			k := graph.KeyOf(int(cu), int(cv))
			if i, ok := agg[k]; ok {
				next.AddWeight(i, e.W)
			} else {
				agg[k] = next.AddEdge(int(cu), int(cv), e.W)
			}
		}
		cur = next
		carriedDiam = newDiam
		carriedSize = newSize
		budget *= cfg.Growth
	}

	d.Levels = len(d.clusterID)
	return d, nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}
