// Package sketch implements the paper's "multilevel sparse data structure"
// (setup phase 3): for each LRD level it indexes which cluster pairs are
// already connected by a sparsifier edge and which sparsifier edges lie
// inside each cluster. The update phase consults it to decide, in O(log N)
// per new edge, whether the edge is spectrally unique (include), redundant
// with an existing inter-cluster edge (merge weights), or internal to a
// cluster (discard and redistribute weight).
//
// The structure is maintained incrementally: when the update phase admits a
// new edge into the sparsifier, Register updates every level's indexes.
package sketch

import (
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/lrd"
)

// pairKey packs two dense cluster ids into a map key.
func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// PairInfo describes the sparsifier edges connecting a cluster pair at some
// level.
type PairInfo struct {
	// Edges lists every sparsifier edge index connecting the pair, in
	// registration order. Weight merges of redundant new edges are spread
	// proportionally across them: concentrating the weight on a single
	// representative would overweight that edge relative to the original
	// graph and collapse the pencil's smallest eigenvalue.
	Edges []int
}

// Edge returns the representative (first-registered) edge index.
func (p PairInfo) Edge() int { return p.Edges[0] }

// Count returns the number of edges connecting the pair.
func (p PairInfo) Count() int { return len(p.Edges) }

// Structure is the multilevel cluster-connectivity index for one sparsifier
// graph against one LRD decomposition.
type Structure struct {
	d *lrd.Decomposition
	h *graph.Graph

	// pairs[l] maps cluster-pair key -> PairInfo at level l >= 1.
	pairs []map[uint64]PairInfo
	// intra[l] maps cluster id -> indices of sparsifier edges whose both
	// endpoints lie in that cluster at level l but NOT at level l-1 (the
	// level at which the edge becomes internal). Each edge is stored at
	// exactly one level, keeping memory O(E).
	intra []map[int32][]int
	// children[l][c] lists the level-(l-1) cluster ids contained in level-l
	// cluster c, enabling full descent when collecting a cluster's internal
	// edges.
	children [][][]int32
}

// New indexes the sparsifier h against decomposition d. h must be the graph
// the decomposition was built from (same node set).
func New(d *lrd.Decomposition, h *graph.Graph) (*Structure, error) {
	if h.NumNodes() != d.N {
		return nil, fmt.Errorf("sketch: sparsifier has %d nodes, decomposition %d", h.NumNodes(), d.N)
	}
	s := &Structure{
		d:     d,
		h:     h,
		pairs: make([]map[uint64]PairInfo, d.Levels),
		intra: make([]map[int32][]int, d.Levels),
	}
	for l := 1; l < d.Levels; l++ {
		s.pairs[l] = make(map[uint64]PairInfo)
		s.intra[l] = make(map[int32][]int)
	}

	// Build the cluster containment tree. A level-(l-1) cluster's parent is
	// the level-l cluster of any of its member nodes; scan nodes once per
	// level marking first representatives.
	s.children = make([][][]int32, d.Levels)
	for l := 2; l < d.Levels; l++ {
		s.children[l] = make([][]int32, d.NumClusters[l])
		seen := make([]bool, d.NumClusters[l-1])
		for v := 0; v < d.N; v++ {
			child := d.ClusterID(l-1, v)
			if seen[child] {
				continue
			}
			seen[child] = true
			parent := d.ClusterID(l, v)
			s.children[l][parent] = append(s.children[l][parent], child)
		}
	}

	for ei := range h.Edges() {
		s.Register(ei)
	}
	return s, nil
}

// Advance re-points the structure at h, a longer view of the same
// sparsifier it currently indexes, and registers the edges appended since
// the structure was built. It is the catch-up step for setup bases built
// offline on a COW snapshot: the background rebuild indexes the frozen
// snapshot, then Advance folds in whatever the writer admitted while the
// build ran. Because Register consults only an edge's endpoints and the
// decomposition's (immutable) cluster ids — never edge weights — the result
// is bit-identical to having built the structure against h directly.
func (s *Structure) Advance(h *graph.Graph) error {
	if h.NumNodes() != s.d.N {
		return fmt.Errorf("sketch: advance graph has %d nodes, decomposition %d", h.NumNodes(), s.d.N)
	}
	old := s.h.NumEdges()
	if h.NumEdges() < old {
		return fmt.Errorf("sketch: advance graph has %d edges, structure already indexes %d", h.NumEdges(), old)
	}
	s.h = h
	for ei := old; ei < h.NumEdges(); ei++ {
		s.Register(ei)
	}
	return nil
}

// Decomposition returns the underlying LRD decomposition.
func (s *Structure) Decomposition() *lrd.Decomposition { return s.d }

// Sparsifier returns the indexed sparsifier graph.
func (s *Structure) Sparsifier() *graph.Graph { return s.h }

// Register indexes sparsifier edge ei at every level. Call it after
// appending a new edge to the sparsifier. Registering the same edge twice
// double-counts it; callers own that discipline.
func (s *Structure) Register(ei int) {
	e := s.h.Edge(ei)
	for l := 1; l < s.d.Levels; l++ {
		cu := s.d.ClusterID(l, e.U)
		cv := s.d.ClusterID(l, e.V)
		if cu == cv {
			// The edge becomes internal at this level; record it here only.
			s.intra[l][cu] = append(s.intra[l][cu], ei)
			break
		}
		k := pairKey(cu, cv)
		info := s.pairs[l][k]
		info.Edges = append(info.Edges, ei)
		s.pairs[l][k] = info
	}
}

// ConnectingEdge reports whether some sparsifier edge already connects the
// clusters of p and q at level l, returning the representative edge index.
// It must only be called when p and q are in different clusters at level l.
func (s *Structure) ConnectingEdge(l, p, q int) (int, bool) {
	es := s.PairEdges(l, p, q)
	if len(es) == 0 {
		return -1, false
	}
	return es[0], true
}

// PairEdges returns every sparsifier edge connecting the clusters of p and
// q at level l (nil if none or same cluster). Callers must not modify the
// returned slice.
func (s *Structure) PairEdges(l, p, q int) []int {
	cu := s.d.ClusterID(l, p)
	cv := s.d.ClusterID(l, q)
	if cu == cv {
		return nil
	}
	return s.pairs[l][pairKey(cu, cv)].Edges
}

// PairCount returns how many sparsifier edges connect the clusters of p and
// q at level l (0 if none or same cluster).
func (s *Structure) PairCount(l, p, q int) int {
	return len(s.PairEdges(l, p, q))
}

// SameCluster reports whether p and q share a cluster at level l.
func (s *Structure) SameCluster(l, p, q int) bool {
	return s.d.ClusterID(l, p) == s.d.ClusterID(l, q)
}

// IntraClusterEdges appends to buf every sparsifier edge internal to the
// cluster of node p at level l (edges whose endpoints became co-clustered
// at any level <= l within this cluster's subtree), and returns the
// extended buffer. The update phase redistributes discarded intra-cluster
// weight over these edges. Cost is O(size of the cluster subtree), which
// the filter-level choice bounds by the target condition number.
func (s *Structure) IntraClusterEdges(l, p int, buf []int) []int {
	var descend func(level int, c int32)
	descend = func(level int, c int32) {
		buf = append(buf, s.intra[level][c]...)
		if level >= 2 {
			for _, child := range s.children[level][c] {
				descend(level-1, child)
			}
		}
	}
	descend(l, s.d.ClusterID(l, p))
	return buf
}

// LevelPairs returns the number of connected cluster pairs recorded at
// level l (diagnostic).
func (s *Structure) LevelPairs(l int) int { return len(s.pairs[l]) }

// MemoryFootprint returns a rough count of stored index entries across all
// levels (diagnostic; the paper's O(N log N) claim is observable here).
func (s *Structure) MemoryFootprint() int {
	total := 0
	for l := 1; l < s.d.Levels; l++ {
		total += len(s.pairs[l])
		for _, v := range s.intra[l] {
			total += len(v)
		}
	}
	return total
}
