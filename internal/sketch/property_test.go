package sketch

import (
	"testing"
	"testing/quick"

	"ingrass/internal/graph"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/vecmath"
)

func randomConnected(seed uint64, n, extra int) *graph.Graph {
	r := vecmath.NewRNG(seed)
	g := graph.New(n, n+extra)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[r.Intn(i)], r.Range(0.1, 10))
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, r.Range(0.1, 10))
		}
	}
	return g
}

// Property: on any random connected graph, every sparsifier edge is indexed
// exactly once — either as an intra edge at its shared level or as a
// pair edge at every level below it.
func TestEveryEdgeIndexedOnceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed, 30, 45)
		d, err := lrd.Build(g, lrd.Config{Krylov: krylov.Config{Seed: seed}})
		if err != nil {
			return false
		}
		s, err := New(d, g)
		if err != nil {
			return false
		}
		// Collect intra memberships over all levels and clusters: each edge
		// must appear exactly once (at its shared level).
		counts := make([]int, g.NumEdges())
		for l := 1; l < d.Levels; l++ {
			for v := 0; v < d.N; v++ {
				// Visit each cluster once via its first member.
				if isFirstMember(d, l, v) {
					for _, ei := range s.intra[l][d.ClusterID(l, v)] {
						counts[ei]++
					}
				}
			}
		}
		for ei, e := range g.Edges() {
			sharedLvl := d.SharedLevel(e.U, e.V)
			if sharedLvl <= 0 {
				// Cross-component edges impossible on a connected graph.
				return false
			}
			if counts[ei] != 1 {
				return false
			}
			// Below the shared level the pair index must know the edge.
			for l := 1; l < sharedLvl; l++ {
				if s.PairCount(l, e.U, e.V) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// isFirstMember reports whether v is the lowest-id node of its cluster at
// level l (used to visit each cluster exactly once).
func isFirstMember(d *lrd.Decomposition, l, v int) bool {
	c := d.ClusterID(l, v)
	for u := 0; u < v; u++ {
		if d.ClusterID(l, u) == c {
			return false
		}
	}
	return true
}

// Property: registering an edge then querying ConnectingEdge at any level
// below its shared level returns a valid edge of the same cluster pair.
func TestRegisterQueryRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed, 25, 30)
		d, err := lrd.Build(g, lrd.Config{Krylov: krylov.Config{Seed: seed}})
		if err != nil {
			return false
		}
		s, err := New(d, g)
		if err != nil {
			return false
		}
		r := vecmath.NewRNG(seed ^ 0x8)
		for k := 0; k < 10; k++ {
			u, v := r.Intn(25), r.Intn(25)
			if u == v {
				continue
			}
			ei := g.AddEdge(u, v, r.Range(0.5, 2))
			s.Register(ei)
			shared := d.SharedLevel(u, v)
			for l := 1; l < shared; l++ {
				rep, ok := s.ConnectingEdge(l, u, v)
				if !ok {
					return false
				}
				re := g.Edge(rep)
				if pairKey(d.ClusterID(l, re.U), d.ClusterID(l, re.V)) !=
					pairKey(d.ClusterID(l, u), d.ClusterID(l, v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
