package sketch

import (
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
)

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func build(t *testing.T, g *graph.Graph) (*lrd.Decomposition, *Structure) {
	t.Helper()
	d, err := lrd.Build(g, lrd.Config{Krylov: krylov.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(d, g)
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

func TestNewRejectsMismatch(t *testing.T) {
	g := grid(4, 4)
	d, err := lrd.Build(g, lrd.Config{Krylov: krylov.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(d, grid(3, 3)); err == nil {
		t.Fatal("expected node-count mismatch error")
	}
}

// Brute-force check of pair connectivity against the definition.
func TestPairIndexMatchesBruteForce(t *testing.T) {
	g := grid(6, 6)
	d, s := build(t, g)
	for l := 1; l < d.Levels; l++ {
		// Brute force: recompute pair counts by scanning all edges.
		want := map[uint64]int{}
		for _, e := range g.Edges() {
			cu, cv := d.ClusterID(l, e.U), d.ClusterID(l, e.V)
			if cu != cv {
				want[pairKey(cu, cv)]++
			}
		}
		if len(want) != s.LevelPairs(l) {
			t.Fatalf("level %d: %d pairs indexed, want %d", l, s.LevelPairs(l), len(want))
		}
		for _, e := range g.Edges() {
			cu, cv := d.ClusterID(l, e.U), d.ClusterID(l, e.V)
			if cu != cv {
				if got := s.PairCount(l, e.U, e.V); got != want[pairKey(cu, cv)] {
					t.Fatalf("level %d pair (%d,%d): count %d want %d", l, cu, cv, got, want[pairKey(cu, cv)])
				}
				if _, ok := s.ConnectingEdge(l, e.U, e.V); !ok {
					t.Fatalf("level %d: connecting edge missing for a connected pair", l)
				}
			} else if s.PairCount(l, e.U, e.V) != 0 {
				t.Fatal("same-cluster pair must report count 0")
			}
		}
	}
}

func TestConnectingEdgeIsValid(t *testing.T) {
	g := grid(5, 5)
	d, s := build(t, g)
	for l := 1; l < d.Levels; l++ {
		for _, e := range g.Edges() {
			if s.SameCluster(l, e.U, e.V) {
				continue
			}
			ei, ok := s.ConnectingEdge(l, e.U, e.V)
			if !ok {
				t.Fatal("existing edge not found")
			}
			rep := g.Edge(ei)
			// The representative must connect the same cluster pair.
			cu, cv := d.ClusterID(l, e.U), d.ClusterID(l, e.V)
			ru, rv := d.ClusterID(l, rep.U), d.ClusterID(l, rep.V)
			if pairKey(cu, cv) != pairKey(ru, rv) {
				t.Fatalf("representative edge connects (%d,%d), want (%d,%d)", ru, rv, cu, cv)
			}
		}
	}
}

// Every edge is internal to exactly the clusters of its shared level and
// above; IntraClusterEdges at the top level must therefore return every
// edge of a connected graph.
func TestIntraClusterEdgesTopLevel(t *testing.T) {
	g := grid(5, 5)
	d, s := build(t, g)
	top := d.Levels - 1
	if d.NumClusters[top] != 1 {
		t.Skip("grid did not contract to one cluster")
	}
	all := s.IntraClusterEdges(top, 0, nil)
	seen := map[int]bool{}
	for _, ei := range all {
		if seen[ei] {
			t.Fatalf("edge %d returned twice", ei)
		}
		seen[ei] = true
	}
	if len(all) != g.NumEdges() {
		t.Fatalf("top-level intra edges %d, want all %d", len(all), g.NumEdges())
	}
}

// Intra edges of a cluster must have both endpoints inside that cluster.
func TestIntraClusterEdgesMembership(t *testing.T) {
	g := grid(6, 6)
	d, s := build(t, g)
	for l := 1; l < d.Levels; l++ {
		for v := 0; v < d.N; v += 5 {
			target := d.ClusterID(l, v)
			for _, ei := range s.IntraClusterEdges(l, v, nil) {
				e := g.Edge(ei)
				if d.ClusterID(l, e.U) != target || d.ClusterID(l, e.V) != target {
					t.Fatalf("level %d: edge %d leaks outside cluster %d", l, ei, target)
				}
			}
		}
	}
}

// Registering a new sparsifier edge updates pair indexes at every level
// where the endpoints are in different clusters.
func TestRegisterNewEdge(t *testing.T) {
	g := grid(6, 6)
	d, s := build(t, g)
	// Add a long-range edge between opposite corners.
	p, q := 0, 35
	ei := g.AddEdge(p, q, 2)
	lShared := d.SharedLevel(p, q)
	if lShared <= 1 {
		t.Skip("corners co-clustered too early for this test")
	}
	before := make([]int, d.Levels)
	for l := 1; l < lShared; l++ {
		before[l] = s.PairCount(l, p, q)
	}
	s.Register(ei)
	for l := 1; l < lShared; l++ {
		if got := s.PairCount(l, p, q); got != before[l]+1 {
			t.Fatalf("level %d pair count %d, want %d", l, got, before[l]+1)
		}
		if _, ok := s.ConnectingEdge(l, p, q); !ok {
			t.Fatalf("level %d: new edge not indexed", l)
		}
	}
	// At the shared level it must appear as an intra edge.
	found := false
	for _, x := range s.IntraClusterEdges(lShared, p, nil) {
		if x == ei {
			found = true
		}
	}
	if !found {
		t.Fatal("new edge missing from intra index at its shared level")
	}
}

func TestAccessors(t *testing.T) {
	g := grid(4, 4)
	d, s := build(t, g)
	if s.Decomposition() != d || s.Sparsifier() != g {
		t.Fatal("accessors broken")
	}
	if s.MemoryFootprint() <= 0 {
		t.Fatal("memory footprint should be positive")
	}
}

func TestPairKeySymmetry(t *testing.T) {
	if pairKey(3, 9) != pairKey(9, 3) {
		t.Fatal("pairKey must be symmetric")
	}
	if pairKey(3, 9) == pairKey(3, 8) {
		t.Fatal("distinct pairs collide")
	}
}
