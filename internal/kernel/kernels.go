package kernel

import (
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// Serial cutovers. Dispatching into the pool costs one mutex acquire, one
// atomic publication, and a join receive (~1-2µs on commodity hardware,
// measured by BenchmarkPoolDispatchOverhead), so tiny operations run inline
// instead. The SpMV threshold is expressed in units of work (nnz + 2n:
// one multiply-add per stored entry plus the diagonal term and store per
// row) and sits far below the pre-pool goroutine-spawn breakeven, which is
// what makes parallel SpMV profitable well under 100k nonzeros.
const (
	// SpMVCutover is the minimum SpMV work (nnz + 2n) worth forking.
	SpMVCutover = 16384
	// VecCutover is the minimum vector length worth forking for the
	// single-pass vector kernels (below it, memory bandwidth of one core
	// already saturates the pass).
	VecCutover = 32768
)

// --- SpMV ------------------------------------------------------------------

// lapMulShare computes worker w's rows of dst = (D - A) x over the
// nnz-balanced row partition in the job. Row accumulation order matches
// graph.CSR.LapMul exactly, so pooled and serial products are bit-identical.
func lapMulShare(p *Pool, w int) {
	j := &p.job
	c, x, dst := j.csr, j.x, j.dst
	for u := j.part[w]; u < j.part[w+1]; u++ {
		s := c.Degree[u] * x[u]
		for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
			s -= c.Weights[k] * x[c.ColIdx[k]]
		}
		dst[u] = s
	}
}

// adjMulShare is lapMulShare for the adjacency product dst = A x.
func adjMulShare(p *Pool, w int) {
	j := &p.job
	c, x, dst := j.csr, j.x, j.dst
	for u := j.part[w]; u < j.part[w+1]; u++ {
		var s float64
		for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
			s += c.Weights[k] * x[c.ColIdx[k]]
		}
		dst[u] = s
	}
}

// spmvSerial reports whether an SpMV on c should bypass the pool.
func (p *Pool) spmvSerial(c *graph.CSR, part []int) bool {
	return p == nil || len(part) != p.workers+1 || c.SpMVWork() < SpMVCutover
}

// checkLens panics (in the caller, with a diagnostic) on a vector length
// mismatch. The serial vecmath kernels validate on entry; the pooled paths
// must do the same before publishing a job, or the mismatch would surface
// as a bare index panic inside a worker goroutine and kill the process
// unrecoverably.
func checkLens(kernel string, n int, vecs ...[]float64) {
	for _, v := range vecs {
		if len(v) != n {
			panic(fmt.Sprintf("kernel: %s length mismatch: %d != %d", kernel, len(v), n))
		}
	}
}

// checkSpMV validates a pooled SpMV before its job is published: vector
// lengths must match the matrix and the partition must cover exactly
// [0, N) (boundaries are monotone by NNZPartition's construction, so the
// endpoints suffice). A partition built from a different CSR would
// otherwise leave rows silently stale or index out of range inside a
// worker goroutine.
func checkSpMV(kernel string, c *graph.CSR, part []int, dst, x []float64) {
	checkLens(kernel, c.N, dst, x)
	if part[0] != 0 || part[len(part)-1] != c.N {
		panic(fmt.Sprintf("kernel: %s partition [%d, %d] does not cover N=%d rows",
			kernel, part[0], part[len(part)-1], c.N))
	}
}

// LapMul computes dst = L x over the nnz-balanced row partition part
// (len Workers()+1, from graph.CSR.NNZPartition). A nil pool, a mismatched
// partition width, or sub-cutover work runs the serial kernel.
// Bit-identical to graph.CSR.LapMul for any partition.
func (p *Pool) LapMul(c *graph.CSR, part []int, dst, x []float64) {
	if p.spmvSerial(c, part) {
		c.LapMul(dst, x)
		return
	}
	checkSpMV("LapMul", c, part, dst, x)
	p.mu.Lock()
	p.job = job{csr: c, part: part, dst: dst, x: x}
	p.run(lapMulShare)
	p.mu.Unlock()
}

// AdjMul computes dst = A x over the nnz-balanced row partition part.
func (p *Pool) AdjMul(c *graph.CSR, part []int, dst, x []float64) {
	if p.spmvSerial(c, part) {
		c.AdjMul(dst, x)
		return
	}
	checkSpMV("AdjMul", c, part, dst, x)
	p.mu.Lock()
	p.job = job{csr: c, part: part, dst: dst, x: x}
	p.run(adjMulShare)
	p.mu.Unlock()
}

// --- Fused vector kernels --------------------------------------------------
//
// Parallel reductions accumulate one padded partial per worker and sum the
// partials in worker order: deterministic for a fixed pool width (and fixed
// vecmath dispatch state), though not bit-identical to the serial
// left-to-right order (callers tolerate reduction rounding by construction
// — CG convergence checks, Rayleigh quotients). The element-wise kernels
// are bit-identical to their serial counterparts.
//
// Each share delegates its span to the corresponding vecmath kernel on
// subslices, so the AVX2 bodies (when active) run inside worker spans too —
// the pooled and serial paths always use the same innermost loops.

func dotShare(p *Pool, w int) {
	j := &p.job
	lo, hi := p.span(w, j.n)
	p.partial[w].a = vecmath.Dot(j.x[lo:hi], j.y[lo:hi])
}

func dot2Share(p *Pool, w int) {
	j := &p.job
	lo, hi := p.span(w, j.n)
	sx, sy := vecmath.Dot2(j.dst[lo:hi], j.x[lo:hi], j.y[lo:hi])
	p.partial[w].a = sx
	p.partial[w].b = sy
}

func axpy2Share(p *Pool, w int) {
	j := &p.job
	lo, hi := p.span(w, j.n)
	p.partial[w].a = vecmath.AXPY2(j.dst[lo:hi], j.z[lo:hi], j.alpha, j.x[lo:hi], j.y[lo:hi])
}

func xpbyShare(p *Pool, w int) {
	j := &p.job
	lo, hi := p.span(w, j.n)
	vecmath.XPBYInto(j.dst[lo:hi], j.x[lo:hi], j.beta)
}

// Dot returns the inner product of a and b, forking above the cutover.
func (p *Pool) Dot(a, b []float64) float64 {
	if p == nil || len(a) < VecCutover {
		return vecmath.Dot(a, b)
	}
	checkLens("Dot", len(a), b)
	p.mu.Lock()
	p.job = job{x: a, y: b, n: len(a)}
	p.run(dotShare)
	var s float64
	for w := 0; w < p.workers; w++ {
		s += p.partial[w].a
	}
	p.mu.Unlock()
	return s
}

// Dot2 returns (a·x, a·y) in one pass over the three vectors.
func (p *Pool) Dot2(a, x, y []float64) (ax, ay float64) {
	if p == nil || len(a) < VecCutover {
		return vecmath.Dot2(a, x, y)
	}
	checkLens("Dot2", len(a), x, y)
	p.mu.Lock()
	p.job = job{dst: a, x: x, y: y, n: len(a)}
	p.run(dot2Share)
	for w := 0; w < p.workers; w++ {
		ax += p.partial[w].a
		ay += p.partial[w].b
	}
	p.mu.Unlock()
	return ax, ay
}

// DotNorm returns (a·b, b·b) in one pass.
func (p *Pool) DotNorm(a, b []float64) (ab, bb float64) {
	if p == nil || len(a) < VecCutover {
		return vecmath.DotNorm(a, b)
	}
	return p.Dot2(b, a, b)
}

// AXPY2 performs the paired CG update x += alpha*pv, r -= alpha*ap and
// returns the squared norm of the updated r, all in one pass over the four
// vectors (replacing two AXPYs and a norm: three passes).
func (p *Pool) AXPY2(x, r []float64, alpha float64, pv, ap []float64) float64 {
	if p == nil || len(x) < VecCutover {
		return vecmath.AXPY2(x, r, alpha, pv, ap)
	}
	checkLens("AXPY2", len(x), r, pv, ap)
	p.mu.Lock()
	p.job = job{dst: x, z: r, x: pv, y: ap, alpha: alpha, n: len(x)}
	p.run(axpy2Share)
	var s float64
	for w := 0; w < p.workers; w++ {
		s += p.partial[w].a
	}
	p.mu.Unlock()
	return s
}

// XPBYInto computes dst = x + beta*dst element-wise (the CG search-
// direction update).
func (p *Pool) XPBYInto(dst, x []float64, beta float64) {
	if p == nil || len(dst) < VecCutover {
		vecmath.XPBYInto(dst, x, beta)
		return
	}
	checkLens("XPBYInto", len(dst), x)
	p.mu.Lock()
	p.job = job{dst: dst, x: x, beta: beta, n: len(dst)}
	p.run(xpbyShare)
	p.mu.Unlock()
}
