package kernel

import (
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// Multi-vector kernels: one fork-join dispatch applies an operation to a
// whole block of columns. Each column keeps an independent accumulator over
// the same worker spans as the single-vector kernels, so column j of any
// pooled multi kernel is bit-identical to the corresponding pooled
// single-vector kernel on column j — and, below the cutovers, to the serial
// vecmath composition. That per-column equivalence is what lets the blocked
// CG solvers promise width-1 ≡ CG and masked columns ≡ independent solves.
//
// Cutovers are per-column (same n thresholds as the single kernels): the
// dispatch amortizes over the block, but routing must match the
// single-vector decision at every width for the bit-identity contracts to
// hold across widths.

// checkMulti validates a block against a width and column length before a
// job is published (see checkLens for why validation must precede
// publication).
func checkMulti(kernel string, b, n int, blocks ...[][]float64) {
	for _, blk := range blocks {
		if len(blk) != b {
			panic(fmt.Sprintf("kernel: %s block width mismatch %d != %d", kernel, len(blk), b))
		}
		for _, col := range blk {
			if len(col) != n {
				panic(fmt.Sprintf("kernel: %s column length %d != %d", kernel, len(col), n))
			}
		}
	}
}

// --- Multi SpMV ------------------------------------------------------------

// lapMulMultiShare computes worker w's rows of dst[j] = L x[j] for every
// column, through the width-specialized unrolled range kernels (see
// graph.CSR.LapMulMultiRange). Per-row, per-column accumulation order
// matches lapMulShare (and CSR.LapMul) exactly.
func lapMulMultiShare(p *Pool, w int) {
	j := &p.job
	j.csr.LapMulMultiRange(j.mdst, j.mx, j.part[w], j.part[w+1])
}

// LapMulMulti computes dst[j] = L x[j] for every column over the
// nnz-balanced row partition, traversing the CSR structure once for the
// whole block. A nil pool, a mismatched partition, or sub-cutover work runs
// the serial graph.CSR.LapMulMulti. Each column is bit-identical to a
// LapMul of that column alone.
func (p *Pool) LapMulMulti(c *graph.CSR, part []int, dst, x [][]float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("kernel: LapMulMulti block widths %d/%d", len(dst), len(x)))
	}
	if len(x) == 0 {
		return
	}
	if p.spmvSerial(c, part) || len(x) == 1 {
		c.LapMulMulti(dst, x)
		return
	}
	if len(x) > graph.MaxMulti {
		panic(fmt.Sprintf("kernel: LapMulMulti width %d exceeds MaxMulti=%d", len(x), graph.MaxMulti))
	}
	checkMulti("LapMulMulti", len(x), c.N, dst, x)
	if part[0] != 0 || part[len(part)-1] != c.N {
		panic(fmt.Sprintf("kernel: LapMulMulti partition [%d, %d] does not cover N=%d rows",
			part[0], part[len(part)-1], c.N))
	}
	p.mu.Lock()
	p.job = job{csr: c, part: part, mdst: dst, mx: x}
	p.run(lapMulMultiShare)
	p.mu.Unlock()
}

// --- Fused multi-vector reductions and updates -----------------------------

// The multi shares delegate each column's span to the single-vector
// vecmath kernels on subslices (same innermost loops as the single-vector
// shares, AVX2 included when active), keeping the per-column ≡
// single-vector bit-identity by construction.

func dotMultiShare(p *Pool, w int) {
	j := &p.job
	lo, hi := p.span(w, j.n)
	for col := range j.mx {
		p.partialM[w].a[col] = vecmath.Dot(j.mx[col][lo:hi], j.my[col][lo:hi])
	}
}

func dot2MultiShare(p *Pool, w int) {
	j := &p.job
	lo, hi := p.span(w, j.n)
	for col := range j.mdst {
		sx, sy := vecmath.Dot2(j.mdst[col][lo:hi], j.mx[col][lo:hi], j.my[col][lo:hi])
		p.partialM[w].a[col] = sx
		p.partialM[w].b[col] = sy
	}
}

func axpy2MultiShare(p *Pool, w int) {
	j := &p.job
	lo, hi := p.span(w, j.n)
	for col := range j.mx {
		p.partialM[w].a[col] = vecmath.AXPY2(
			j.mdst[col][lo:hi], j.mz[col][lo:hi], j.mscal[col], j.mx[col][lo:hi], j.my[col][lo:hi])
	}
}

func xpbyMultiShare(p *Pool, w int) {
	j := &p.job
	lo, hi := p.span(w, j.n)
	for col := range j.mdst {
		vecmath.XPBYInto(j.mdst[col][lo:hi], j.mx[col][lo:hi], j.mscal[col])
	}
}

// multiSerial reports whether a multi-vector kernel over b columns of
// length n should bypass the pool: same per-column threshold as the
// single-vector kernels, so routing matches at every width. Widths beyond
// the padMulti slot capacity also run serially (the serial kernels have no
// width cap).
func (p *Pool) multiSerial(b, n int) bool {
	return p == nil || n < VecCutover || b == 0 || b > graph.MaxMulti
}

// colLen returns the column length of a block (0 for an empty block).
func colLen(blk [][]float64) int {
	if len(blk) == 0 {
		return 0
	}
	return len(blk[0])
}

// DotMulti computes out[col] = a[col]·b[col] for every column in one
// dispatch.
func (p *Pool) DotMulti(a, b [][]float64, out []float64) {
	n := colLen(a)
	if p.multiSerial(len(a), n) {
		vecmath.DotMulti(a, b, out)
		return
	}
	checkMulti("DotMulti", len(a), n, b)
	p.mu.Lock()
	p.job = job{mx: a, my: b, n: n}
	p.run(dotMultiShare)
	for col := range a {
		var s float64
		for w := 0; w < p.workers; w++ {
			s += p.partialM[w].a[col]
		}
		out[col] = s
	}
	p.mu.Unlock()
}

// DotNormMulti computes outAB[col], outBB[col] = (a[col]·b[col],
// b[col]·b[col]) per column. Mirrors the single-vector DotNorm routing
// (which runs Dot2(b, a, b) on the pool).
func (p *Pool) DotNormMulti(a, b [][]float64, outAB, outBB []float64) {
	n := colLen(a)
	if p.multiSerial(len(a), n) {
		vecmath.DotNormMulti(a, b, outAB, outBB)
		return
	}
	p.Dot2Multi(b, a, b, outAB, outBB)
}

// Dot2Multi computes outAX[col], outAY[col] = (a[col]·x[col], a[col]·y[col])
// per column in one dispatch.
func (p *Pool) Dot2Multi(a, x, y [][]float64, outAX, outAY []float64) {
	n := colLen(a)
	if p.multiSerial(len(a), n) {
		vecmath.Dot2Multi(a, x, y, outAX, outAY)
		return
	}
	checkMulti("Dot2Multi", len(a), n, x, y)
	p.mu.Lock()
	p.job = job{mdst: a, mx: x, my: y, n: n}
	p.run(dot2MultiShare)
	for col := range a {
		var sx, sy float64
		for w := 0; w < p.workers; w++ {
			sx += p.partialM[w].a[col]
			sy += p.partialM[w].b[col]
		}
		outAX[col] = sx
		outAY[col] = sy
	}
	p.mu.Unlock()
}

// AXPY2Multi performs the paired CG update x[col] += alpha[col]*pv[col],
// r[col] -= alpha[col]*ap[col] per column and writes each updated residual's
// squared norm into outRnSq, all in one dispatch.
func (p *Pool) AXPY2Multi(x, r [][]float64, alpha []float64, pv, ap [][]float64, outRnSq []float64) {
	n := colLen(x)
	if p.multiSerial(len(x), n) {
		vecmath.AXPY2Multi(x, r, alpha, pv, ap, outRnSq)
		return
	}
	checkMulti("AXPY2Multi", len(x), n, r, pv, ap)
	p.mu.Lock()
	p.job = job{mdst: x, mz: r, mx: pv, my: ap, mscal: alpha, n: n}
	p.run(axpy2MultiShare)
	for col := range x {
		var s float64
		for w := 0; w < p.workers; w++ {
			s += p.partialM[w].a[col]
		}
		outRnSq[col] = s
	}
	p.mu.Unlock()
}

// XPBYIntoMulti computes dst[col] = x[col] + beta[col]*dst[col] per column
// in one dispatch.
func (p *Pool) XPBYIntoMulti(dst, x [][]float64, beta []float64) {
	n := colLen(dst)
	if p.multiSerial(len(dst), n) {
		vecmath.XPBYIntoMulti(dst, x, beta)
		return
	}
	checkMulti("XPBYIntoMulti", len(dst), n, x)
	p.mu.Lock()
	p.job = job{mdst: dst, mx: x, mscal: beta, n: n}
	p.run(xpbyMultiShare)
	p.mu.Unlock()
}
