package kernel

import (
	"fmt"
	"unsafe"
)

// Arena is a page-aligned bump allocator for the frozen, pointer-free
// arrays an operator owns for its whole lifetime: CSR row pointers, column
// indices and weights, SELL-C-σ slices, and the kernel partition tables.
//
// Why not plain make: a frozen operator's arrays are built by a dozen
// separate allocations that the heap scatters across spans, so the SpMV
// streams — RowPtr, ColIdx, Weights read in lockstep — interleave across
// distant pages, and each snapshot generation pins a constellation of
// small objects the GC must trace and reclaim individually. An Arena packs
// all of them into one page-aligned block (hugepage-friendly: a single
// contiguous range the OS can back with large TLB entries), so the operator
// is one object to the GC and is released as a unit when its snapshot
// generation is evicted.
//
// Arenas hold only scalar data (float64/int/int32) — never pointers — so
// the GC treats the backing block as opaque bytes. Sub-slices handed out by
// Float64/Int/Int32 keep the whole block alive; dropping the operator (and
// with it every sub-slice) frees the block in one sweep.
//
// An Arena is not safe for concurrent allocation; it is populated once at
// operator freeze time and read-only afterwards.
type Arena struct {
	blocks [][]byte // backing blocks; blocks[0] sized by the caller's hint
	cur    []byte   // aligned active region of the newest block
	off    int      // bump offset into cur
	used   int      // bytes handed out across all blocks
}

const (
	arenaPage  = 4096 // block base alignment (one small page)
	arenaAlign = 64   // per-allocation alignment (one cache line)
)

// NewArena reserves a page-aligned block of at least hint bytes. Size the
// hint from exact array lengths (see sparse.LapOperator's freeze path): a
// correct hint keeps the whole operator in one contiguous block.
// Allocations beyond the hint chain additional blocks rather than failing,
// so an undersized hint costs contiguity, never correctness.
func NewArena(hint int) *Arena {
	a := &Arena{}
	if hint < arenaPage {
		hint = arenaPage
	}
	a.grow(hint)
	return a
}

// grow appends a fresh block with at least need usable bytes after page
// alignment.
func (a *Arena) grow(need int) {
	raw := make([]byte, need+arenaPage-1)
	pad := int(-uintptr(unsafe.Pointer(unsafe.SliceData(raw))) & (arenaPage - 1))
	a.blocks = append(a.blocks, raw)
	a.cur = raw[pad:]
	a.off = 0
}

// take returns a pointer to size bytes, cache-line aligned, growing if the
// active block cannot hold them.
func (a *Arena) take(size int) unsafe.Pointer {
	if size < 0 {
		panic(fmt.Sprintf("kernel: arena allocation of %d bytes", size))
	}
	off := (a.off + arenaAlign - 1) &^ (arenaAlign - 1)
	if off+size > len(a.cur) {
		a.grow(size)
		off = 0
	}
	a.off = off + size
	a.used += size
	return unsafe.Pointer(unsafe.SliceData(a.cur[off:]))
}

// Float64 allocates a zeroed []float64 of length n from the arena.
func (a *Arena) Float64(n int) []float64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(a.take(8*n)), n)
}

// Int allocates a zeroed []int of length n from the arena.
func (a *Arena) Int(n int) []int {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int)(a.take(8*n)), n)
}

// Int32 allocates a zeroed []int32 of length n from the arena.
func (a *Arena) Int32(n int) []int32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(a.take(4*n)), n)
}

// Used reports the bytes handed out (excluding alignment padding).
func (a *Arena) Used() int { return a.used }

// Reserved reports the total backing bytes across all blocks.
func (a *Arena) Reserved() int {
	var t int
	for _, b := range a.blocks {
		t += len(b)
	}
	return t
}

// Blocks reports how many backing blocks the arena chained; 1 means every
// allocation landed in the single contiguous block the hint reserved.
func (a *Arena) Blocks() int { return len(a.blocks) }
