package kernel

import (
	"fmt"

	"ingrass/internal/graph"
)

// Pooled SELL-C-σ kernels. These mirror the CSR entry points in kernels.go
// and multi.go one-for-one, with the partition granularity lifted from rows
// to chunks: a span boundary never lands inside a chunk, so each original
// row is written by exactly one worker and every pooled product stays
// bit-identical to its serial counterpart — which graph.SELL in turn pins
// bit-identical to serial CSR. The partitions come from
// graph.SELL.NNZChunkPartition, balanced on padded slots (what the sliced
// kernels actually stream) rather than raw nnz.

// lapMulSellShare computes worker w's chunks of dst = L x over the sliced
// layout.
func lapMulSellShare(p *Pool, w int) {
	j := &p.job
	j.sell.LapMulChunks(j.dst, j.x, j.part[w], j.part[w+1])
}

func adjMulSellShare(p *Pool, w int) {
	j := &p.job
	j.sell.AdjMulChunks(j.dst, j.x, j.part[w], j.part[w+1])
}

func lapMulMultiSellShare(p *Pool, w int) {
	j := &p.job
	j.sell.LapMulMultiChunks(j.mdst, j.mx, j.part[w], j.part[w+1])
}

// spmvSerialSELL is spmvSerial for the sliced layout: same work cutover,
// expressed in SELL's own work units (padded slots + 2n).
func (p *Pool) spmvSerialSELL(s *graph.SELL, part []int) bool {
	return p == nil || len(part) != p.workers+1 || s.SpMVWork() < SpMVCutover
}

// checkSpMVSELL validates a pooled sliced SpMV before its job is published
// (see checkSpMV): vector lengths against N, partition endpoints against
// the chunk count.
func checkSpMVSELL(kernel string, s *graph.SELL, part []int, dst, x []float64) {
	checkLens(kernel, s.N, dst, x)
	if part[0] != 0 || part[len(part)-1] != s.NumChunks() {
		panic(fmt.Sprintf("kernel: %s partition [%d, %d] does not cover %d chunks",
			kernel, part[0], part[len(part)-1], s.NumChunks()))
	}
}

// LapMulSELL computes dst = L x over the slot-balanced chunk partition part
// (len Workers()+1, from graph.SELL.NNZChunkPartition). A nil pool, a
// mismatched partition width, or sub-cutover work runs the serial sliced
// kernel. Bit-identical to graph.CSR.LapMul for any partition.
func (p *Pool) LapMulSELL(s *graph.SELL, part []int, dst, x []float64) {
	if p.spmvSerialSELL(s, part) {
		s.LapMul(dst, x)
		return
	}
	checkSpMVSELL("LapMulSELL", s, part, dst, x)
	p.mu.Lock()
	p.job = job{sell: s, part: part, dst: dst, x: x}
	p.run(lapMulSellShare)
	p.mu.Unlock()
}

// AdjMulSELL computes dst = A x over the slot-balanced chunk partition.
func (p *Pool) AdjMulSELL(s *graph.SELL, part []int, dst, x []float64) {
	if p.spmvSerialSELL(s, part) {
		s.AdjMul(dst, x)
		return
	}
	checkSpMVSELL("AdjMulSELL", s, part, dst, x)
	p.mu.Lock()
	p.job = job{sell: s, part: part, dst: dst, x: x}
	p.run(adjMulSellShare)
	p.mu.Unlock()
}

// LapMulMultiSELL computes dst[j] = L x[j] for every column over the sliced
// layout, reading each chunk's structure once per column pair. Routing
// mirrors LapMulMulti; each column is bit-identical to a serial CSR LapMul
// of that column alone.
func (p *Pool) LapMulMultiSELL(s *graph.SELL, part []int, dst, x [][]float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("kernel: LapMulMultiSELL block widths %d/%d", len(dst), len(x)))
	}
	if len(x) == 0 {
		return
	}
	if p.spmvSerialSELL(s, part) || len(x) == 1 {
		s.LapMulMulti(dst, x)
		return
	}
	if len(x) > graph.MaxMulti {
		panic(fmt.Sprintf("kernel: LapMulMultiSELL width %d exceeds MaxMulti=%d", len(x), graph.MaxMulti))
	}
	checkMulti("LapMulMultiSELL", len(x), s.N, dst, x)
	if part[0] != 0 || part[len(part)-1] != s.NumChunks() {
		panic(fmt.Sprintf("kernel: LapMulMultiSELL partition [%d, %d] does not cover %d chunks",
			part[0], part[len(part)-1], s.NumChunks()))
	}
	p.mu.Lock()
	p.job = job{sell: s, part: part, mdst: dst, mx: x}
	p.run(lapMulMultiSellShare)
	p.mu.Unlock()
}
