// Package kernel provides the persistent fork-join worker pool behind every
// parallel hot-path primitive in the repository: the nnz-balanced CSR
// Laplacian product and the fused conjugate-gradient vector kernels.
//
// The pre-pool design spawned fresh goroutines and a channel per SpMV call
// — one or more calls per CG iteration, thousands per solve — which both
// allocated on every call (excluding parallel solves from the repo's
// 0-alloc warm-path gate) and paid goroutine start latency far exceeding
// the work below ~100k nonzeros. A Pool instead keeps its workers alive for
// the lifetime of the process: a fork publishes the job through one atomic
// sequence bump, workers spin briefly on that sequence and then park on a
// pre-allocated wake channel, and the join is a single channel receive.
// The steady state allocates nothing.
//
// Ownership: frozen operators (sparse.LapOperator, and through it
// precond.Factorization and every per-snapshot service factorization)
// reference a Pool sized at freeze time from their frozen Workers contract.
// Pools themselves are process-wide singletons keyed by clamped worker
// count (see Shared): snapshot generations come and go with no destructor
// hook, so per-operator pools would leak parked goroutines on every
// eviction. Sharing bounds the process at one pool per distinct worker
// count and at most GOMAXPROCS workers each, while every operator still
// observes its own frozen parallelism degree.
//
// Concurrency contract: any number of goroutines may call Pool methods
// concurrently; each fork-join operation holds an internal mutex for its
// duration, so concurrent solves against one shared pool serialize their
// individual kernels (each of which uses all workers) rather than
// oversubscribing the machine. Kernel bodies must never dispatch back into
// the pool — a nested fork would deadlock on the mutex.
package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ingrass/internal/graph"
)

// kernelFn is one chunk body: it processes worker w's share of the job
// currently published in p.job. Implementations are package-level functions
// so that publishing one never allocates a closure.
type kernelFn func(p *Pool, w int)

// job carries the arguments of the in-flight parallel operation. It is a
// union across kernels; each kernel body reads only its own fields. The
// struct lives inline in the Pool and is rewritten under the pool mutex, so
// publishing a job stores slices and scalars but never allocates.
type job struct {
	csr  *graph.CSR
	sell *graph.SELL // sliced-layout operand of the *SELL kernels
	part []int       // SpMV partition, len workers+1: rows (CSR) or chunks (SELL)

	dst, x, y, z []float64
	alpha, beta  float64
	n            int

	// Multi-vector fields: column blocks and per-column scalars for the
	// blocked kernels. Slice headers only; assigning them allocates nothing.
	mdst, mx, my, mz [][]float64
	mscal            []float64
}

// pad64 keeps per-worker accumulator slots on distinct cache lines so the
// reduction kernels never false-share.
type pad64 struct {
	a, b float64
	_    [48]byte
}

// padMulti is the per-worker reduction slot of the multi-vector kernels:
// one (a, b) accumulator pair per column, padded so adjacent workers' slots
// never share a cache line.
type padMulti struct {
	a, b [graph.MaxMulti]float64
	_    [64]byte
}

// worker is the per-goroutine control block, padded to a cache line so a
// worker flipping its parked flag never invalidates its neighbors'.
type worker struct {
	_      [64]byte
	parked atomic.Bool
	wake   chan struct{} // capacity 1; tokens may go stale (workers re-check)
	_      [64]byte
}

// Pool is a persistent fork-join worker pool of fixed width.
type Pool struct {
	workers int
	spin    int // spin iterations before a worker parks

	// mu serializes fork-join operations end to end: job publication,
	// execution, and completion. Holding it, the caller participates as
	// worker 0.
	mu sync.Mutex

	job     job
	fn      kernelFn
	seq     atomic.Uint32 // bumped once per published job
	pending atomic.Int32  // workers that have not finished their share
	finish  chan struct{} // capacity 1; the last finisher signals the join

	partial  []pad64    // per-worker reduction slots, len workers
	partialM []padMulti // per-worker per-column slots for the multi kernels

	// forks counts fork-join operations dispatched through this pool over
	// its lifetime — the kernel-dispatch rate the observability layer
	// exposes (see SharedForks).
	forks atomic.Uint64

	closed atomic.Bool
	ws     []worker // len workers-1 (the caller is worker 0)
	wg     sync.WaitGroup
}

// clampWorkers bounds a requested worker count to [1, GOMAXPROCS]: more
// workers than processors cannot run and would only add fork/join traffic.
func clampWorkers(workers int) int {
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// New builds a private pool with the given worker count (clamped to
// [1, GOMAXPROCS]). A width-1 pool runs every operation inline and starts
// no goroutines. Callers that cannot guarantee a Close should use Shared.
func New(workers int) *Pool {
	workers = clampWorkers(workers)
	p := &Pool{
		workers:  workers,
		finish:   make(chan struct{}, 1),
		partial:  make([]pad64, workers),
		partialM: make([]padMulti, workers),
	}
	// On a single-processor runtime spinning only steals the publisher's
	// timeslice; park immediately.
	if runtime.GOMAXPROCS(0) > 1 {
		p.spin = 1 << 12
	}
	if workers > 1 {
		p.ws = make([]worker, workers-1)
		for i := range p.ws {
			p.ws[i].wake = make(chan struct{}, 1)
			p.wg.Add(1)
			go p.workerLoop(i)
		}
	}
	return p
}

// Workers returns the pool width; a nil pool reports 1 (serial).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close terminates the worker goroutines. Only pools from New need (and
// accept) closing; shared pools live for the process.
func (p *Pool) Close() {
	if p == nil || p.closed.Swap(true) {
		return
	}
	for i := range p.ws {
		select {
		case p.ws[i].wake <- struct{}{}:
		default:
		}
	}
	p.wg.Wait()
}

// run executes fn's shares for all workers and returns when every share is
// complete. The caller must hold p.mu and have filled p.job.
func (p *Pool) run(fn kernelFn) {
	p.forks.Add(1)
	if p.workers == 1 {
		fn(p, 0)
		return
	}
	p.fn = fn
	p.pending.Store(int32(p.workers))
	p.seq.Add(1)
	for i := range p.ws {
		w := &p.ws[i]
		if w.parked.Load() {
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
	}
	p.finishShare(0)
	// The last finisher (possibly this goroutine) put exactly one token in
	// finish; consuming it completes the join, after which no worker will
	// touch p.job until the next publication.
	<-p.finish
}

// finishShare runs worker w's share of the current job and signals the join
// if it was the last one outstanding.
func (p *Pool) finishShare(w int) {
	p.fn(p, w)
	if p.pending.Add(-1) == 0 {
		p.finish <- struct{}{}
	}
}

// workerLoop is the persistent body of worker i (share index i+1): spin on
// the job sequence, park on the wake channel when idle, run one share per
// observed sequence bump.
func (p *Pool) workerLoop(i int) {
	defer p.wg.Done()
	w := &p.ws[i]
	last := uint32(0)
	for {
		spun := 0
		for p.seq.Load() == last {
			if p.closed.Load() {
				return
			}
			if spun < p.spin {
				spun++
				if spun&63 == 0 {
					runtime.Gosched()
				}
				continue
			}
			// Publication order is seq-bump then parked-check, and seqcst
			// atomics order this parked-store before the seq re-check, so a
			// bump concurrent with parking is either seen here or produces a
			// wake token. Stale tokens from earlier jobs just spin us once.
			w.parked.Store(true)
			if p.seq.Load() != last || p.closed.Load() {
				w.parked.Store(false)
				continue
			}
			<-w.wake
			w.parked.Store(false)
		}
		if p.closed.Load() {
			return
		}
		last = p.seq.Load()
		p.finishShare(i + 1)
	}
}

// span returns worker w's slice bounds for a uniform split of [0, n).
func (p *Pool) span(w, n int) (lo, hi int) {
	return w * n / p.workers, (w + 1) * n / p.workers
}

// Forks returns the number of fork-join operations this pool has run.
func (p *Pool) Forks() uint64 {
	if p == nil {
		return 0
	}
	return p.forks.Load()
}

// Shared pools, one per distinct clamped worker count.
var (
	sharedMu sync.Mutex
	shared   map[int]*Pool
)

// Shared returns the process-wide pool for the given worker count, creating
// it on first use, or nil when the clamped count is 1 (serial — every
// kernel entry point treats a nil *Pool as "run serially"). Shared pools
// are never closed; the process holds at most one per distinct width.
func Shared(workers int) *Pool {
	workers = clampWorkers(workers)
	if workers <= 1 {
		return nil
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if shared == nil {
		shared = make(map[int]*Pool)
	}
	p, ok := shared[workers]
	if !ok {
		p = New(workers)
		shared[workers] = p
	}
	return p
}

// SharedForks sums the fork-join dispatch counts across every shared pool —
// the process-wide parallel-kernel dispatch counter the metrics registry
// bridges as a CounterFunc. Serial (width-1) operations run inline without
// a pool and are intentionally not counted.
func SharedForks() uint64 {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	var total uint64
	for _, p := range shared {
		total += p.forks.Load()
	}
	return total
}
