package kernel

import (
	"math"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// sellFixture builds a graph whose SELL work comfortably exceeds
// SpMVCutover, plus its CSR and SELL views.
func sellFixture(seed uint64, n, m int) (*graph.CSR, *graph.SELL) {
	r := vecmath.NewRNG(seed)
	g := graph.New(n, m)
	for k := 0; k < m; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, r.Range(0.01, 100))
		}
	}
	c := graph.NewCSR(g)
	return c, graph.NewSELL(c, 0, nil)
}

func bitsDiffAt(a, b []float64) int {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	return -1
}

// Pooled SELL products must be bit-identical to serial CSR — the chunk-
// granular partition never splits a chunk, so each row is written by one
// worker with the serial per-row accumulation order.
func TestPooledSELLBitIdenticalToSerialCSR(t *testing.T) {
	withProcs(t, 4)
	c, s := sellFixture(42, 4096, 12000)
	if s.SpMVWork() < SpMVCutover {
		t.Fatalf("fixture too small to exercise the pool: work=%d", s.SpMVWork())
	}
	for _, workers := range []int{2, 3, 4} {
		p := New(workers)
		defer p.Close()
		part := s.NNZChunkPartition(p.Workers())
		x := make([]float64, c.N)
		vecmath.NewRNG(7).FillNormal(x)
		want := make([]float64, c.N)
		got := make([]float64, c.N)

		c.LapMul(want, x)
		p.LapMulSELL(s, part, got, x)
		if i := bitsDiffAt(want, got); i >= 0 {
			t.Errorf("workers=%d: LapMulSELL differs from serial CSR at %d", workers, i)
		}

		c.AdjMul(want, x)
		p.AdjMulSELL(s, part, got, x)
		if i := bitsDiffAt(want, got); i >= 0 {
			t.Errorf("workers=%d: AdjMulSELL differs from serial CSR at %d", workers, i)
		}
	}
}

func TestPooledSELLMultiBitIdenticalPerColumn(t *testing.T) {
	withProcs(t, 4)
	c, s := sellFixture(43, 4096, 12000)
	p := New(4)
	defer p.Close()
	part := s.NNZChunkPartition(p.Workers())
	for _, b := range []int{1, 2, 3, 7, 16} {
		x := make([][]float64, b)
		dst := make([][]float64, b)
		for j := range x {
			x[j] = make([]float64, c.N)
			vecmath.NewRNG(uint64(100 + j)).FillNormal(x[j])
			dst[j] = make([]float64, c.N)
		}
		p.LapMulMultiSELL(s, part, dst, x)
		want := make([]float64, c.N)
		for j := range x {
			c.LapMul(want, x[j])
			if i := bitsDiffAt(want, dst[j]); i >= 0 {
				t.Errorf("width=%d col=%d: pooled SELL multi differs from serial CSR at %d", b, j, i)
			}
		}
	}
}

// Sub-cutover and nil-pool calls must fall back to the serial sliced
// kernels (and still be correct) — mirroring the CSR entry points.
func TestPooledSELLSerialFallbacks(t *testing.T) {
	c, s := sellFixture(44, 64, 160) // far below SpMVCutover
	x := make([]float64, c.N)
	vecmath.NewRNG(9).FillNormal(x)
	want := make([]float64, c.N)
	got := make([]float64, c.N)
	c.LapMul(want, x)

	var nilPool *Pool
	nilPool.LapMulSELL(s, s.NNZChunkPartition(1), got, x)
	if i := bitsDiffAt(want, got); i >= 0 {
		t.Errorf("nil pool: differs at %d", i)
	}

	withProcs(t, 2)
	p := New(2)
	defer p.Close()
	p.LapMulSELL(s, s.NNZChunkPartition(p.Workers()), got, x)
	if i := bitsDiffAt(want, got); i >= 0 {
		t.Errorf("sub-cutover pooled: differs at %d", i)
	}
}
