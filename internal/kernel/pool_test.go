package kernel

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// withProcs raises GOMAXPROCS for the duration of a test so pools widen
// beyond this machine's core count and the fork-join machinery actually
// runs multi-worker (widths are otherwise clamped).
func withProcs(t testing.TB, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func grid(rows, cols int) *graph.Graph {
	g := graph.New(rows*cols, 0)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), 1+0.01*float64(id(r, c)))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), 1+0.02*float64(id(r, c)))
			}
		}
	}
	return g
}

func fillSin(v []float64, phase float64) {
	for i := range v {
		v[i] = math.Sin(float64(i) + phase)
	}
}

func TestClampWorkers(t *testing.T) {
	withProcs(t, 4)
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {3, 3}, {4, 4}, {5, 4}, {1 << 20, 4},
	} {
		if got := clampWorkers(tc.in); got != tc.want {
			t.Errorf("clampWorkers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if p := Shared(1); p != nil {
		t.Error("Shared(1) must be nil (serial)")
	}
	if p := Shared(0); p != nil {
		t.Error("Shared(0) must be nil (serial)")
	}
	if got := Shared(99).Workers(); got != 4 {
		t.Errorf("Shared(99) width %d, want clamp to 4", got)
	}
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Error("nil pool must report width 1")
	}
	nilPool.Close() // must be a no-op, not a panic
}

func TestSharedPoolIsSingleton(t *testing.T) {
	withProcs(t, 4)
	if Shared(3) != Shared(3) {
		t.Error("Shared must return one pool per width")
	}
	if Shared(2) == Shared(3) {
		t.Error("distinct widths must get distinct pools")
	}
}

// TestPooledSpMVMatchesSerialBitForBit pins the determinism contract: the
// pooled product writes each row from exactly one worker with the same
// per-row accumulation order as the serial kernel, so results are
// bit-identical for every width — including widths that do not divide the
// row count and partitions with heavy nnz skew.
func TestPooledSpMVMatchesSerialBitForBit(t *testing.T) {
	withProcs(t, 16)
	graphs := map[string]*graph.Graph{
		"grid":  grid(70, 70),
		"star":  starGraph(5000),
		"empty": withIsolatedRows(grid(60, 60), 500),
	}
	for name, g := range graphs {
		csr := graph.NewCSR(g)
		x := make([]float64, csr.N)
		fillSin(x, 0.3)
		want := make([]float64, csr.N)
		csr.LapMul(want, x)
		wantAdj := make([]float64, csr.N)
		csr.AdjMul(wantAdj, x)
		for _, workers := range []int{2, 3, 7, 16} {
			p := New(workers)
			part := csr.NNZPartition(p.Workers())
			got := make([]float64, csr.N)
			p.LapMul(csr, part, got, x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: LapMul row %d: %v != %v", name, workers, i, got[i], want[i])
				}
			}
			p.AdjMul(csr, part, got, x)
			for i := range wantAdj {
				if got[i] != wantAdj[i] {
					t.Fatalf("%s workers=%d: AdjMul row %d: %v != %v", name, workers, i, got[i], wantAdj[i])
				}
			}
			p.Close()
		}
	}
}

// starGraph is the worst-case nnz skew: one hub row holds half the
// nonzeros, so a row-count partition would give one chunk almost all the
// work.
func starGraph(n int) *graph.Graph {
	g := graph.New(n, 0)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i, 1+0.001*float64(i))
	}
	return g
}

// withIsolatedRows appends k isolated (empty-row) nodes to g.
func withIsolatedRows(g *graph.Graph, k int) *graph.Graph {
	out := graph.New(g.NumNodes()+k, 0)
	for _, e := range g.Edges() {
		out.AddEdge(e.U, e.V, e.W)
	}
	return out
}

// TestPoolSerialFallbacks checks the three serial bypasses: nil pool,
// partition/width mismatch, and sub-cutover work.
func TestPoolSerialFallbacks(t *testing.T) {
	withProcs(t, 4)
	g := grid(10, 10) // work far below SpMVCutover
	csr := graph.NewCSR(g)
	x := make([]float64, csr.N)
	fillSin(x, 1)
	want := make([]float64, csr.N)
	csr.LapMul(want, x)

	var nilPool *Pool
	got := make([]float64, csr.N)
	nilPool.LapMul(csr, nil, got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("nil pool LapMul mismatch")
		}
	}

	p := New(4)
	defer p.Close()
	p.LapMul(csr, csr.NNZPartition(2), got, x) // wrong partition width: serial
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("mismatched-partition LapMul mismatch")
		}
	}
}

// TestPoolHammerSharedAcrossGoroutines drives 16 goroutines through one
// shared pool concurrently under -race: fork-join operations serialize on
// the pool mutex and every caller must get its own correct result.
func TestPoolHammerSharedAcrossGoroutines(t *testing.T) {
	withProcs(t, 8)
	g := grid(64, 64)
	csr := graph.NewCSR(g)
	p := New(4)
	defer p.Close()
	part := csr.NNZPartition(p.Workers())

	want := func(x []float64) []float64 {
		out := make([]float64, csr.N)
		csr.LapMul(out, x)
		return out
	}

	var wg sync.WaitGroup
	for id := 0; id < 16; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			x := make([]float64, csr.N)
			got := make([]float64, csr.N)
			for it := 0; it < 50; it++ {
				fillSin(x, float64(id*100+it))
				p.LapMul(csr, part, got, x)
				w := want(x)
				for i := range w {
					if got[i] != w[i] {
						t.Errorf("goroutine %d iter %d: row %d mismatch", id, it, i)
						return
					}
				}
				if s := p.Dot(x, x); s <= 0 {
					t.Errorf("goroutine %d: x'x = %v", id, s)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}

// TestPoolAllocationFree is the steady-state allocation contract: once a
// pool exists, forking any kernel allocates nothing.
func TestPoolAllocationFree(t *testing.T) {
	withProcs(t, 4)
	g := grid(100, 100)
	csr := graph.NewCSR(g)
	p := New(4)
	defer p.Close()
	part := csr.NNZPartition(p.Workers())
	n := csr.N
	x := make([]float64, n)
	dst := make([]float64, n)
	r := make([]float64, n)
	ap := make([]float64, n)
	fillSin(x, 0)
	fillSin(r, 1)
	fillSin(ap, 2)

	// Long vectors so the vector kernels take the pooled path.
	big := make([]float64, VecCutover+1)
	big2 := make([]float64, VecCutover+1)
	big3 := make([]float64, VecCutover+1)
	big4 := make([]float64, VecCutover+1)
	fillSin(big, 3)
	fillSin(big2, 4)
	fillSin(big3, 5)
	fillSin(big4, 6)

	if allocs := testing.AllocsPerRun(50, func() {
		p.LapMul(csr, part, dst, x)
		_ = p.Dot(big, big2)
		_, _ = p.Dot2(big, big2, big3)
		_ = p.AXPY2(big, big2, 0.25, big3, big4)
		p.XPBYInto(big, big2, 0.5)
	}); allocs > 0 {
		t.Fatalf("pooled kernels allocate %.2f objects/op, want 0", allocs)
	}
}

// TestPooledVectorKernelsMatchSerial compares the pooled vector kernels to
// their serial counterparts. Element-wise outputs must be bit-identical
// (each index is written by exactly one worker with the same expression);
// reductions may differ only by partial-sum rounding.
func TestPooledVectorKernelsMatchSerial(t *testing.T) {
	withProcs(t, 8)
	n := VecCutover + 777 // odd length: uneven spans
	p := New(5)
	defer p.Close()

	mk := func(phase float64) []float64 {
		v := make([]float64, n)
		fillSin(v, phase)
		return v
	}
	relClose := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-12*(math.Abs(a)+math.Abs(b)+1)
	}

	a, b2 := mk(0.1), mk(0.2)
	if got, want := p.Dot(a, b2), vecmath.Dot(a, b2); !relClose(got, want) {
		t.Fatalf("Dot %v vs %v", got, want)
	}
	ax, ay := p.Dot2(a, b2, a)
	sx, sy := vecmath.Dot2(a, b2, a)
	if !relClose(ax, sx) || !relClose(ay, sy) {
		t.Fatalf("Dot2 (%v,%v) vs (%v,%v)", ax, ay, sx, sy)
	}

	x1, r1, pv, ap := mk(1), mk(2), mk(3), mk(4)
	x2 := append([]float64(nil), x1...)
	r2 := append([]float64(nil), r1...)
	gotN := p.AXPY2(x1, r1, 0.75, pv, ap)
	wantN := vecmath.AXPY2(x2, r2, 0.75, pv, ap)
	for i := range x1 {
		if x1[i] != x2[i] || r1[i] != r2[i] {
			t.Fatalf("AXPY2 element %d diverged", i)
		}
	}
	if !relClose(gotN, wantN) {
		t.Fatalf("AXPY2 norm %v vs %v", gotN, wantN)
	}

	d1, d2 := mk(5), append([]float64(nil), mk(5)...)
	z := mk(6)
	p.XPBYInto(d1, z, 0.3)
	vecmath.XPBYInto(d2, z, 0.3)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("XPBYInto element %d diverged", i)
		}
	}
}

// BenchmarkPoolDispatchOverhead measures the pure fork-join cost (publish,
// wake, join) with a trivial body — the number the serial cutovers are
// calibrated against.
func BenchmarkPoolDispatchOverhead(b *testing.B) {
	p := New(runtime.GOMAXPROCS(0))
	defer p.Close()
	v := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.mu.Lock()
		p.job = job{x: v, y: v, n: len(v)}
		p.run(dotShare)
		p.mu.Unlock()
	}
}

// BenchmarkPooledSpMV compares the pooled product against serial at the
// width of this machine.
func BenchmarkPooledSpMV(b *testing.B) {
	g := grid(316, 316) // ~100k nodes
	csr := graph.NewCSR(g)
	x := make([]float64, csr.N)
	dst := make([]float64, csr.N)
	fillSin(x, 0)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csr.LapMul(dst, x)
		}
	})
	b.Run("pool", func(b *testing.B) {
		p := Shared(runtime.GOMAXPROCS(0))
		part := csr.NNZPartition(p.Workers())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.LapMul(csr, part, dst, x)
		}
	})
}
