package kernel

import (
	"testing"
	"unsafe"
)

func TestArenaAlignment(t *testing.T) {
	a := NewArena(1 << 16)
	base := uintptr(unsafe.Pointer(unsafe.SliceData(a.cur)))
	if base%arenaPage != 0 {
		t.Fatalf("arena block base %#x not page aligned", base)
	}
	f := a.Float64(3)
	i := a.Int(5)
	i32 := a.Int32(7)
	for _, p := range []uintptr{
		uintptr(unsafe.Pointer(unsafe.SliceData(f))),
		uintptr(unsafe.Pointer(unsafe.SliceData(i))),
		uintptr(unsafe.Pointer(unsafe.SliceData(i32))),
	} {
		if p%arenaAlign != 0 {
			t.Fatalf("allocation %#x not cache-line aligned", p)
		}
	}
}

func TestArenaSlicesAreDisjointAndZeroed(t *testing.T) {
	a := NewArena(1 << 12)
	f := a.Float64(64)
	g := a.Float64(64)
	for i := range f {
		f[i] = float64(i + 1)
	}
	for i, v := range g {
		if v != 0 {
			t.Fatalf("g[%d] = %v after writing f; slices overlap or not zeroed", i, v)
		}
	}
	ints := a.Int(16)
	for i := range ints {
		ints[i] = -i
	}
	if f[0] != 1 || f[63] != 64 {
		t.Fatalf("f corrupted by later allocations: f[0]=%v f[63]=%v", f[0], f[63])
	}
}

func TestArenaSingleBlockWithinHint(t *testing.T) {
	a := NewArena(1 << 16)
	a.Float64(1000) // 8000B
	a.Int(1000)     // 8000B
	a.Int32(1000)   // 4000B
	if a.Blocks() != 1 {
		t.Fatalf("hinted arena chained %d blocks, want 1", a.Blocks())
	}
	if a.Used() != 20000 {
		t.Fatalf("used = %d, want 20000", a.Used())
	}
}

func TestArenaGrowsBeyondHint(t *testing.T) {
	a := NewArena(arenaPage)
	big := a.Float64(1 << 16) // far beyond the one-page hint
	big[0], big[len(big)-1] = 1, 2
	small := a.Float64(8)
	small[7] = 3
	if a.Blocks() < 2 {
		t.Fatalf("expected chained blocks after overflow, got %d", a.Blocks())
	}
	if big[0] != 1 || big[len(big)-1] != 2 || small[7] != 3 {
		t.Fatal("data corrupted across block growth")
	}
}

func TestArenaZeroLength(t *testing.T) {
	a := NewArena(arenaPage)
	if a.Float64(0) != nil || a.Int(0) != nil || a.Int32(0) != nil {
		t.Fatal("zero-length allocations should be nil")
	}
}
