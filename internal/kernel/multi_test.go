package kernel

import (
	"fmt"
	"math"
	"testing"

	"ingrass/internal/graph"
)

// multiBlock builds a deterministic block of w columns of length n.
func multiBlock(n, w int, seed float64) [][]float64 {
	blk := make([][]float64, w)
	for j := range blk {
		blk[j] = make([]float64, n)
		for i := range blk[j] {
			blk[j][i] = math.Sin(seed + float64(i*(j+2)))
		}
	}
	return blk
}

func cloneBlock(blk [][]float64) [][]float64 {
	out := make([][]float64, len(blk))
	for j := range blk {
		out[j] = append([]float64(nil), blk[j]...)
	}
	return out
}

func requireBitsEqual(t *testing.T, name string, got, want [][]float64) {
	t.Helper()
	for j := range want {
		for i := range want[j] {
			if math.Float64bits(got[j][i]) != math.Float64bits(want[j][i]) {
				t.Fatalf("%s: column %d entry %d: %g != %g", name, j, i, got[j][i], want[j][i])
			}
		}
	}
}

// TestLapMulMultiMatchesLapMul: the serial multi-vector SpMV must be
// bit-identical, column for column, to independent LapMul products — over
// widths, graph shapes (grid and star for nnz skew), and including width 1.
func TestLapMulMultiMatchesLapMul(t *testing.T) {
	star := graph.New(101, 100)
	for i := 1; i <= 100; i++ {
		star.AddEdge(0, i, float64(i))
	}
	for name, g := range map[string]*graph.Graph{"grid": testGrid(40, 40), "star": star} {
		csr := graph.NewCSR(g)
		for _, w := range []int{1, 2, 3, 7, graph.MaxMulti} {
			x := multiBlock(csr.N, w, 1.5)
			dst := multiBlock(csr.N, w, 0)
			csr.LapMulMulti(dst, x)
			want := make([][]float64, w)
			for j := 0; j < w; j++ {
				want[j] = make([]float64, csr.N)
				csr.LapMul(want[j], x[j])
			}
			requireBitsEqual(t, name, dst, want)
		}
	}
}

// TestPoolLapMulMultiMatchesSerial: the pooled multi SpMV must be
// bit-identical to the serial multi (and hence to per-column LapMul) for
// every pool width, above and below the work cutover.
func TestPoolLapMulMultiMatchesSerial(t *testing.T) {
	withProcs(t, 8)
	for _, side := range []int{20, 120} { // below / above SpMVCutover
		csr := graph.NewCSR(testGrid(side, side))
		for _, workers := range []int{2, 3, 7} {
			p := New(workers)
			defer p.Close()
			part := csr.NNZPartition(p.Workers())
			for _, w := range []int{1, 2, 5, graph.MaxMulti} {
				x := multiBlock(csr.N, w, 2.5)
				dst := multiBlock(csr.N, w, 0)
				p.LapMulMulti(csr, part, dst, x)
				want := make([][]float64, w)
				for j := 0; j < w; j++ {
					want[j] = make([]float64, csr.N)
					csr.LapMul(want[j], x[j])
				}
				requireBitsEqual(t, "pool", dst, want)
			}
		}
	}
}

// TestPoolMultiKernelsMatchSingle: each pooled multi-vector kernel must be
// bit-identical, per column, to its pooled single-vector counterpart — the
// property the blocked solvers' width-1 ≡ CG contract rests on. Vector
// lengths straddle VecCutover so both routes are exercised.
func TestPoolMultiKernelsMatchSingle(t *testing.T) {
	withProcs(t, 8)
	for _, n := range []int{1000, VecCutover + 17} {
		for _, workers := range []int{2, 5} {
			p := New(workers)
			defer p.Close()
			const w = 3
			a, b, c := multiBlock(n, w, 1), multiBlock(n, w, 2), multiBlock(n, w, 3)
			alpha := []float64{0.5, -1.25, 2.0}

			out := make([]float64, w)
			p.DotMulti(a, b, out)
			for j := 0; j < w; j++ {
				if want := p.Dot(a[j], b[j]); math.Float64bits(out[j]) != math.Float64bits(want) {
					t.Fatalf("DotMulti n=%d col %d: %g != %g", n, j, out[j], want)
				}
			}

			o1, o2 := make([]float64, w), make([]float64, w)
			p.Dot2Multi(a, b, c, o1, o2)
			for j := 0; j < w; j++ {
				wx, wy := p.Dot2(a[j], b[j], c[j])
				if math.Float64bits(o1[j]) != math.Float64bits(wx) || math.Float64bits(o2[j]) != math.Float64bits(wy) {
					t.Fatalf("Dot2Multi n=%d col %d mismatch", n, j)
				}
			}

			p.DotNormMulti(a, b, o1, o2)
			for j := 0; j < w; j++ {
				wab, wbb := p.DotNorm(a[j], b[j])
				if math.Float64bits(o1[j]) != math.Float64bits(wab) || math.Float64bits(o2[j]) != math.Float64bits(wbb) {
					t.Fatalf("DotNormMulti n=%d col %d mismatch", n, j)
				}
			}

			// AXPY2: run multi and single on separate clones, compare state.
			x1, r1 := cloneBlock(a), cloneBlock(b)
			x2, r2 := cloneBlock(a), cloneBlock(b)
			p.AXPY2Multi(x1, r1, alpha, b, c, o1)
			for j := 0; j < w; j++ {
				want := p.AXPY2(x2[j], r2[j], alpha[j], b[j], c[j])
				if math.Float64bits(o1[j]) != math.Float64bits(want) {
					t.Fatalf("AXPY2Multi n=%d col %d norm mismatch", n, j)
				}
			}
			requireBitsEqual(t, "AXPY2Multi x", x1, x2)
			requireBitsEqual(t, "AXPY2Multi r", r1, r2)

			d1, d2 := cloneBlock(a), cloneBlock(a)
			p.XPBYIntoMulti(d1, b, alpha)
			for j := 0; j < w; j++ {
				p.XPBYInto(d2[j], b[j], alpha[j])
			}
			requireBitsEqual(t, "XPBYIntoMulti", d1, d2)
		}
	}
}

// testGrid builds a side x side unit grid.
func testGrid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

// BenchmarkLapMulMulti compares one blocked product against b independent
// products — the coalescing win at the kernel level.
func BenchmarkLapMulMulti(b *testing.B) {
	csr := graph.NewCSR(testGrid(100, 100))
	for _, w := range []int{1, 4, 8} {
		x := multiBlock(csr.N, w, 1)
		dst := multiBlock(csr.N, w, 0)
		b.Run(benchName("multi", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				csr.LapMulMulti(dst, x)
			}
		})
		b.Run(benchName("independent", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < w; j++ {
					csr.LapMul(dst[j], x[j])
				}
			}
		})
	}
}

func benchName(kind string, w int) string {
	return fmt.Sprintf("%s/width=%d", kind, w)
}
