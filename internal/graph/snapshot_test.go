package graph

import (
	"sync"
	"testing"
)

func buildPath(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n, n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, float64(i+1))
	}
	return g
}

func TestSnapshotIsolation(t *testing.T) {
	g := buildPath(t, 5)
	snap := g.Snapshot()
	wantEdges := snap.NumEdges()
	wantWeight := snap.TotalWeight()

	// Every mutation class on the live graph must be invisible to the snapshot.
	g.AddEdge(0, 4, 10)
	g.SetWeight(0, 99)
	g.ScaleWeight(1, 3)
	g.AddNode()
	g.AddEdge(5, 0, 1)

	if snap.NumEdges() != wantEdges {
		t.Fatalf("snapshot edge count changed: %d -> %d", wantEdges, snap.NumEdges())
	}
	if snap.TotalWeight() != wantWeight {
		t.Fatalf("snapshot total weight changed: %v -> %v", wantWeight, snap.TotalWeight())
	}
	if snap.NumNodes() != 5 {
		t.Fatalf("snapshot node count changed: %d", snap.NumNodes())
	}
	if w := snap.Edge(0).W; w != 1 {
		t.Fatalf("snapshot edge 0 weight changed: %v", w)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid after live mutations: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("live graph invalid after unshare: %v", err)
	}
}

func TestSnapshotMutatingSnapshotLeavesLiveIntact(t *testing.T) {
	g := buildPath(t, 4)
	snap := g.Snapshot()
	snap.AddEdge(0, 3, 7)
	snap.SetWeight(0, 42)
	if g.NumEdges() != 3 {
		t.Fatalf("live graph saw snapshot mutation: %d edges", g.NumEdges())
	}
	if g.Edge(0).W != 1 {
		t.Fatalf("live graph weight changed by snapshot: %v", g.Edge(0).W)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("live: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
}

func TestSnapshotChain(t *testing.T) {
	g := buildPath(t, 3)
	s1 := g.Snapshot()
	g.AddEdge(0, 2, 5)
	s2 := g.Snapshot()
	g.SetWeight(0, 9)
	if s1.NumEdges() != 2 || s2.NumEdges() != 3 {
		t.Fatalf("chained snapshots: got %d and %d edges", s1.NumEdges(), s2.NumEdges())
	}
	if s2.Edge(0).W != 1 {
		t.Fatalf("s2 saw later weight change: %v", s2.Edge(0).W)
	}
	s3 := s2.Snapshot() // snapshot of a snapshot shares until either mutates
	if s3.NumEdges() != 3 || s3.TotalWeight() != s2.TotalWeight() {
		t.Fatalf("snapshot-of-snapshot mismatch")
	}
}

// TestSnapshotConcurrentReads exercises the COW contract under the race
// detector: readers traverse a snapshot while the live graph keeps mutating.
func TestSnapshotConcurrentReads(t *testing.T) {
	g := buildPath(t, 64)
	snap := g.Snapshot()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				var sum float64
				for u := 0; u < snap.NumNodes(); u++ {
					for _, a := range snap.Adj(u) {
						sum += snap.Edge(a.Edge).W
					}
				}
				if sum <= 0 {
					t.Error("snapshot traversal saw no weight")
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		g.AddEdge(i%64, (i+7)%64, 1)
		g.ScaleWeight(i%g.NumEdges(), 1.001)
	}
	wg.Wait()
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
}
