package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary interchange format for graphs, used by the durability subsystem
// (internal/wal) for checkpoints. Unlike the text format in io.go, it is
// lossless: edge weights round-trip as exact IEEE-754 bit patterns and the
// cached total-weight accumulator is carried verbatim, so a decoded graph is
// bit-identical to the encoded one — which is what makes crash recovery
// replay deterministic down to the last ULP.
//
// Layout (all multi-byte integers little-endian, varints are unsigned
// LEB128 as in encoding/binary):
//
//	magic   [4]byte  "IGB1"
//	n       uvarint  node count
//	m       uvarint  edge count
//	tw      uint64   TotalWeight() as math.Float64bits
//	edges   m × { u uvarint, v uvarint, w uint64 (Float64bits) }
//
// Edges appear in index order, so stable edge indices survive the round
// trip. The format carries no checksum of its own; containers that need
// integrity (WAL records, checkpoint files) frame it with a CRC.

var binaryMagic = [4]byte{'I', 'G', 'B', '1'}

// WriteBinary encodes g in the binary interchange format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	putU64 := func(x uint64) error {
		binary.LittleEndian.PutUint64(buf[:8], x)
		_, err := bw.Write(buf[:8])
		return err
	}
	if err := putUvarint(uint64(g.n)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(g.edges))); err != nil {
		return err
	}
	if err := putU64(math.Float64bits(g.totalWeight)); err != nil {
		return err
	}
	for _, e := range g.edges {
		if err := putUvarint(uint64(e.U)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.V)); err != nil {
			return err
		}
		if err := putU64(math.Float64bits(e.W)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a graph written by WriteBinary. The decoded graph is
// bit-identical to the encoded one: edge order, weight bits, and the cached
// total-weight accumulator all round-trip exactly.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad binary magic %q", magic[:])
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: binary node count: %w", err)
	}
	m64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: binary edge count: %w", err)
	}
	const maxDim = 1 << 34 // sanity bound against corrupt headers
	if n64 > maxDim || m64 > maxDim {
		return nil, fmt.Errorf("graph: binary header claims %d nodes, %d edges", n64, m64)
	}
	twBits, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("graph: binary total weight: %w", err)
	}
	n, m := int(n64), int(m64)
	g := New(n, m)
	for i := 0; i < m; i++ {
		u64, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: binary edge %d: %w", i, err)
		}
		v64, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: binary edge %d: %w", i, err)
		}
		wBits, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("graph: binary edge %d: %w", i, err)
		}
		u, v, w := int(u64), int(v64), math.Float64frombits(wBits)
		if u >= n || v >= n || u == v {
			return nil, fmt.Errorf("graph: binary edge %d endpoints (%d, %d) invalid for %d nodes", i, u, v, n)
		}
		if !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("graph: binary edge %d weight %v not positive finite", i, w)
		}
		// Build storage directly instead of AddEdge: the cached totalWeight
		// must come from the file, not from re-accumulation, so that graphs
		// whose accumulator drifted through a long SetWeight history still
		// round-trip bit-exactly.
		idx := len(g.edges)
		g.edges = append(g.edges, Edge{U: u, V: v, W: w})
		g.adj[u] = append(g.adj[u], Arc{To: v, Edge: idx})
		g.adj[v] = append(g.adj[v], Arc{To: u, Edge: idx})
	}
	g.totalWeight = math.Float64frombits(twBits)
	return g, nil
}
