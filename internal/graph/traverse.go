package graph

// Components labels every node with the index of its connected component
// (0-based, in order of discovery from node 0 upward) and returns the labels
// together with the number of components. Isolated nodes form their own
// components.
func Components(g *Graph) (labels []int, count int) {
	n := g.NumNodes()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = count
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, a := range g.Adj(u) {
				if labels[a.To] == -1 {
					labels[a.To] = count
					queue = append(queue, a.To)
				}
			}
		}
		count++
	}
	return labels, count
}

// IsConnected reports whether g has exactly one connected component.
// The empty graph is considered connected.
func IsConnected(g *Graph) bool {
	if g.NumNodes() == 0 {
		return true
	}
	_, c := Components(g)
	return c == 1
}

// BFSOrder returns the nodes reachable from start in breadth-first order,
// along with each node's BFS parent arc (parent[start] = Arc{To: -1}).
// Unreachable nodes do not appear in the order and have parent To == -2.
func BFSOrder(g *Graph, start int) (order []int, parent []Arc) {
	n := g.NumNodes()
	parent = make([]Arc, n)
	for i := range parent {
		parent[i] = Arc{To: -2, Edge: -1}
	}
	parent[start] = Arc{To: -1, Edge: -1}
	order = make([]int, 0, n)
	order = append(order, start)
	for head := 0; head < len(order); head++ {
		u := order[head]
		for _, a := range g.Adj(u) {
			if parent[a.To].To == -2 {
				parent[a.To] = Arc{To: u, Edge: a.Edge}
				order = append(order, a.To)
			}
		}
	}
	return order, parent
}

// EccentricityFrom returns the unweighted hop distances from start
// (-1 for unreachable nodes) and the maximum distance observed.
func EccentricityFrom(g *Graph, start int) (dist []int, ecc int) {
	n := g.NumNodes()
	dist = make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int{start}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range g.Adj(u) {
			if dist[a.To] == -1 {
				dist[a.To] = dist[u] + 1
				if dist[a.To] > ecc {
					ecc = dist[a.To]
				}
				queue = append(queue, a.To)
			}
		}
	}
	return dist, ecc
}

// LargestComponent returns a graph restricted to the largest connected
// component, together with the mapping old node id -> new node id (-1 for
// dropped nodes). Dataset generators use it to guarantee connected inputs.
func LargestComponent(g *Graph) (*Graph, []int) {
	labels, count := Components(g)
	if count <= 1 {
		id := make([]int, g.NumNodes())
		for i := range id {
			id[i] = i
		}
		return g.Clone(), id
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	remap := make([]int, g.NumNodes())
	next := 0
	for i, l := range labels {
		if l == best {
			remap[i] = next
			next++
		} else {
			remap[i] = -1
		}
	}
	sub := New(next, g.NumEdges())
	for _, e := range g.Edges() {
		if remap[e.U] >= 0 && remap[e.V] >= 0 {
			sub.AddEdge(remap[e.U], remap[e.V], e.W)
		}
	}
	return sub, remap
}
